// Unit tests for versioned lock words and the two lock placement modes.
#include <gtest/gtest.h>

#include <set>

#include "locks/lock_table.hpp"
#include "locks/versioned_lock.hpp"

namespace nvhalt {
namespace {

TEST(LockWord, FreshWordIsUnlockedVersionZero) {
  const std::uint64_t w = 0;
  EXPECT_FALSE(lockword::is_locked(w));
  EXPECT_EQ(lockword::version(w), 0u);
}

TEST(LockWord, MakeRoundTrips) {
  const std::uint64_t w = lockword::make(123, true, 17);
  EXPECT_TRUE(lockword::is_locked(w));
  EXPECT_EQ(lockword::owner(w), 17);
  EXPECT_EQ(lockword::version(w), 123u);
}

TEST(LockWord, AcquireBumpsVersionAndSetsOwner) {
  const std::uint64_t w = lockword::make(10, false, 0);
  const std::uint64_t a = lockword::acquired(w, 5);
  EXPECT_TRUE(lockword::is_locked(a));
  EXPECT_EQ(lockword::owner(a), 5);
  EXPECT_EQ(lockword::version(a), 11u);
}

TEST(LockWord, ReleaseBumpsVersionAgain) {
  const std::uint64_t w = lockword::make(10, false, 0);
  const std::uint64_t r = lockword::released(lockword::acquired(w, 5));
  EXPECT_FALSE(lockword::is_locked(r));
  EXPECT_EQ(lockword::version(r), 12u);
  // A full acquire/release cycle always changes the word a reader snapshot
  // compares against.
  EXPECT_NE(r, w);
}

TEST(LockWord, LockedByOther) {
  const std::uint64_t w = lockword::make(3, true, 7);
  EXPECT_TRUE(lockword::locked_by_other(w, 2));
  EXPECT_FALSE(lockword::locked_by_other(w, 7));
  EXPECT_FALSE(lockword::locked_by_other(lockword::make(3, false, 0), 2));
}

TEST(LockWord, MaxThreadIdFits) {
  const std::uint64_t w = lockword::make(1, true, kMaxThreads - 1);
  EXPECT_EQ(lockword::owner(w), kMaxThreads - 1);
}

TEST(LockWord, LargeVersionsSurvive) {
  const std::uint64_t big = (1ULL << 50) + 9;
  const std::uint64_t w = lockword::make(big, false, 0);
  EXPECT_EQ(lockword::version(w), big);
}

TEST(LockSpace, TableModeMapsConsistently) {
  LockSpace ls(LockMode::kTable, 1 << 8, 0);
  const LockRef r1 = ls.ref(1234);
  const LockRef r2 = ls.ref(1234);
  EXPECT_EQ(r1.s, r2.s);
  EXPECT_EQ(r1.loc, r2.loc);
  EXPECT_NE(r1.s, nullptr);
  EXPECT_NE(r1.h, nullptr);
}

TEST(LockSpace, TableModeSharesLocksAcrossAddresses) {
  // With 16 entries and many addresses, some addresses must share a lock.
  LockSpace ls(LockMode::kTable, 16, 0);
  std::set<const void*> distinct;
  for (gaddr_t a = 0; a < 1000; ++a) distinct.insert(ls.ref(a).s);
  EXPECT_LE(distinct.size(), 16u);
  EXPECT_GT(distinct.size(), 1u);
}

TEST(LockSpace, TableModeMapsOneLockPerCacheLine) {
  // Line-granular hashing: all words of one cache line resolve to the same
  // entry (the hw-path lock memo depends on this to touch each lock stripe
  // once per scanned line), and different lines generally differ.
  LockSpace ls(LockMode::kTable, 1 << 8, 0);
  const LockRef first = ls.ref(64);
  for (gaddr_t a = 64; a < 64 + kWordsPerLine; ++a) {
    EXPECT_EQ(ls.ref(a).s, first.s);
    EXPECT_EQ(ls.ref(a).loc, first.loc);
  }
  std::set<const void*> distinct;
  for (gaddr_t a = 0; a < 256 * kWordsPerLine; a += kWordsPerLine)
    distinct.insert(ls.ref(a).s);
  EXPECT_GT(distinct.size(), 100u);  // 256 lines into 256 entries: mostly distinct
}

TEST(LockSpace, ColocatedModeGivesUniqueLockPerWord) {
  LockSpace ls(LockMode::kColocated, 0, 1024);
  std::set<const void*> distinct;
  for (gaddr_t a = 0; a < 1024; ++a) distinct.insert(ls.ref(a).s);
  EXPECT_EQ(distinct.size(), 1024u);
}

TEST(LockSpace, ColocatedLocIdFoldsOntoWord) {
  LockSpace ls(LockMode::kColocated, 0, 64);
  EXPECT_EQ(ls.ref(7).loc, htm::loc_colock(7));
}

TEST(LockSpace, ResetClearsAllLocks) {
  LockSpace ls(LockMode::kTable, 64, 0);
  ls.ref(5).s->store(lockword::make(9, true, 3));
  ls.ref(5).h->store(4);
  ls.reset();
  EXPECT_EQ(ls.ref(5).s->load(), 0u);
  EXPECT_EQ(ls.ref(5).h->load(), 0u);
}

TEST(LockSpace, RejectsNonPowerOfTwoTable) {
  EXPECT_THROW(LockSpace(LockMode::kTable, 100, 0), TmLogicError);
}

}  // namespace
}  // namespace nvhalt
