// Group durable commit (flat-combining fence): pool-level combining
// semantics, cross-writer flush dedup, the one-durable-boundary guarantee
// for combined fences under crash-prefix enumeration (with replayable
// triples cutting inside the join+fence block), a TSan-targeted
// combiner-handoff stress, and the five-TM crash-harness sweep with group
// commit enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "crash_harness.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::CrashHarnessOptions;
using test::CrashImageVerifier;
using test::CrashTraceBundle;
using test::run_crash_workload;

/// Durable value of `word` in a materialized image (0 when absent).
std::uint64_t image_value(const CrashImage& img, std::uint64_t word) {
  const auto it = std::lower_bound(img.words.begin(), img.words.end(), word,
                                   [](const auto& p, std::uint64_t w) { return p.first < w; });
  return (it != img.words.end() && it->first == word) ? it->second : 0;
}

PmemConfig group_pool_config(PersistJournal* journal = nullptr) {
  PmemConfig cfg;
  cfg.capacity_words = std::size_t{1} << 10;
  cfg.raw_words = std::size_t{1} << 10;
  cfg.group_commit = true;
  cfg.journal = journal;
  return cfg;
}

/// Raw word index aligned to the start of a fresh cache line.
std::size_t line_aligned_raw(PmemPool& pool) {
  const std::size_t base = pool.alloc_raw(2 * kWordsPerLine);
  return (base + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
}

TEST(GroupCommitTest, SoloFencerKeepsSoloSemantics) {
  PmemPool pool(group_pool_config());
  const std::size_t w = line_aligned_raw(pool);

  // kAuto with no overlapping fencer takes the solo path outright.
  pool.raw_store(0, w, 11);
  pool.flush_raw(0, w);
  pool.fence(0);
  EXPECT_EQ(pool.raw_load_durable(w), 11u);
  EXPECT_EQ(pool.fence_count(), 1u);
  EXPECT_EQ(pool.fence_group_count(), 0u);
  EXPECT_EQ(pool.fence_combined_count(), 0u);

  // kPreferCombine with nobody to combine with lingers, then leads a
  // batch of one: still exactly one fence, still no group counted.
  pool.raw_store(0, w, 22);
  pool.flush_raw(0, w);
  pool.fence(0, FenceGate::kPreferCombine);
  EXPECT_EQ(pool.raw_load_durable(w), 22u);
  EXPECT_EQ(pool.fence_count(), 2u);
  EXPECT_EQ(pool.fence_group_count(), 0u);
  EXPECT_EQ(pool.fence_combined_count(), 0u);
}

TEST(GroupCommitTest, EmptyQueueFenceIsANoOpUnderGroupCommit) {
  PmemPool pool(group_pool_config());
  pool.fence(0, FenceGate::kPreferCombine);  // nothing flushed: must not linger
  EXPECT_EQ(pool.fence_count(), 0u);
}

/// Two threads in lockstep rounds: each stores a round-unique value into
/// its own word, flushes, and fences with kPreferCombine under a combine
/// window far longer than an OS timeslice — so whichever thread publishes
/// first is still lingering when the other arrives, and the second fencer
/// (seeing two in flight) elects itself leader and drains both queues.
/// Rounds repeat until a combined fence happened (nearly always round one;
/// bounded for robustness on loaded machines).
struct CombinedRun {
  std::array<std::size_t, 2> word{};  // global persistent word index per tid
  std::array<std::uint64_t, 2> final_value{};
  int rounds = 0;
  bool combined = false;
};

constexpr std::uint64_t round_value(int tid, int round) {
  return (static_cast<std::uint64_t>(tid + 1) << 20) | static_cast<std::uint64_t>(round + 1);
}

CombinedRun run_combined_rounds(PmemPool& pool, bool share_line) {
  constexpr int kMaxRounds = 40;
  CombinedRun run;
  const std::size_t base = line_aligned_raw(pool);
  for (int t = 0; t < 2; ++t)
    run.word[static_cast<std::size_t>(t)] =
        share_line ? base + static_cast<std::size_t>(t)
                   : base + static_cast<std::size_t>(t) * kWordsPerLine;

  SpinBarrier barrier(2);
  std::atomic<bool> stop{false};
  std::atomic<int> rounds_done{0};
  const auto worker = [&](int tid) {
    for (int round = 0;; ++round) {
      barrier.arrive_and_wait();
      if (stop.load(std::memory_order_acquire)) return;
      pool.raw_store(tid, run.word[static_cast<std::size_t>(tid)], round_value(tid, round));
      pool.flush_raw(tid, run.word[static_cast<std::size_t>(tid)]);
      pool.fence(tid, FenceGate::kPreferCombine);
      barrier.arrive_and_wait();
      if (tid == 0) {
        rounds_done.store(round + 1, std::memory_order_relaxed);
        if (pool.fence_combined_count() > 0 || round + 1 >= kMaxRounds)
          stop.store(true, std::memory_order_release);
      }
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  run.rounds = rounds_done.load(std::memory_order_relaxed);
  run.combined = pool.fence_combined_count() > 0;
  for (int t = 0; t < 2; ++t)
    run.final_value[static_cast<std::size_t>(t)] = round_value(t, run.rounds - 1);
  return run;
}

TEST(GroupCommitTest, CombinedFenceDrainsEveryMemberAndCountsOnce) {
  PmemConfig cfg = group_pool_config();
  cfg.combine_window_spins = 1u << 25;
  PmemPool pool(cfg);
  const CombinedRun run = run_combined_rounds(pool, /*share_line=*/false);
  ASSERT_TRUE(run.combined) << "no combined fence in " << run.rounds << " rounds";
  EXPECT_GE(pool.fence_group_count(), 1u);

  // Every fence() call with a non-empty queue either issued an ordering
  // fence (solo or leading) or was absorbed into a leader's — nothing is
  // double-counted and nothing is dropped.
  const std::uint64_t calls = 2u * static_cast<std::uint64_t>(run.rounds);
  EXPECT_EQ(pool.fence_count() + pool.fence_combined_count(), calls);

  // The leader drained the member's queue: both threads' last stores are
  // durable even though only one of the final round's fencers fenced.
  EXPECT_EQ(pool.raw_load_durable(run.word[0]), run.final_value[0]);
  EXPECT_EQ(pool.raw_load_durable(run.word[1]), run.final_value[1]);

  // A combined batch of 2+ shows up in the leader's batch histogram
  // (bit_width buckets: batch-of-1 lands in bucket 1, 2-3 in bucket 2...).
  const telemetry::PowHistogram batches = pool.group_batch_hist();
  std::uint64_t multi = 0;
  for (int b = 2; b < telemetry::PowHistogram::kBuckets; ++b)
    multi += batches.bucket_count(b);
  EXPECT_GE(multi, 1u);
}

TEST(GroupCommitTest, SharedLineIsDedupedAcrossCombinedWriters) {
  PmemConfig cfg = group_pool_config();
  cfg.combine_window_spins = 1u << 25;
  PmemPool pool(cfg);
  // Both threads' words share one cache line; each solo round persists the
  // line per-thread, but a combined drain must bill and persist it once.
  const CombinedRun run = run_combined_rounds(pool, /*share_line=*/true);
  ASSERT_TRUE(run.combined) << "no combined fence in " << run.rounds << " rounds";
  // Per-thread queues never self-duplicate here, so every dedup came from
  // the cross-writer union in the combined drain.
  EXPECT_GE(pool.flush_dedup_count(), 1u);
  // The single write-back carried both writers' staged words.
  EXPECT_EQ(pool.raw_load_durable(run.word[0]), run.final_value[0]);
  EXPECT_EQ(pool.raw_load_durable(run.word[1]), run.final_value[1]);
}

// The core soundness property satellite: a combined fence is ONE durable
// boundary. The journal records each member's hand-off (kFenceJoin) and
// the leader's single kFence as a contiguous block; a crash cutting
// anywhere inside the block loses the *entire* batch, and the first cut
// past the kFence makes the entire batch durable. Both cuts are pinned as
// replayable (trace-hash, prefix, seed) triples.
TEST(GroupCommitTest, CombinedFenceIsOneDurableBoundary) {
  PersistJournal journal;
  PmemConfig cfg = group_pool_config(&journal);
  cfg.combine_window_spins = 1u << 25;
  PmemPool pool(cfg);
  const CombinedRun run = run_combined_rounds(pool, /*share_line=*/false);
  ASSERT_TRUE(run.combined) << "no combined fence in " << run.rounds << " rounds";
  const std::vector<PersistEvent> events = journal.events();

  // Locate the first join+fence block.
  std::size_t j = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == PersistEventKind::kFenceJoin) {
      j = i;
      break;
    }
  }
  ASSERT_LT(j, events.size()) << "combined fence left no kFenceJoin in the journal";
  std::size_t f = j;
  while (f < events.size() && events[f].kind == PersistEventKind::kFenceJoin) ++f;
  ASSERT_LT(f, events.size());
  // The block is contiguous: joins, then the covering fence, issued by the
  // leader each join named. No foreign event interleaves.
  ASSERT_EQ(events[f].kind, PersistEventKind::kFence);
  EXPECT_EQ(events[f].tid, static_cast<std::int32_t>(events[j].value));
  const int member = events[j].tid;
  const int leader = events[f].tid;
  ASSERT_NE(member, leader);

  // Joins create no enumeration boundary — only the covering kFence does.
  CrashEnumerator en(events, CrashEnumOptions{});
  const auto& bounds = en.boundaries();
  EXPECT_NE(std::find(bounds.begin(), bounds.end(), f + 1), bounds.end());
  for (const std::size_t b : bounds) EXPECT_FALSE(b > j && b <= f) << "boundary inside block";

  // This round's staged values per thread (the last store before the block).
  std::array<std::uint64_t, 2> batch_val{};
  for (int t = 0; t < 2; ++t) {
    for (std::size_t i = j; i-- > 0;) {
      if (events[i].kind == PersistEventKind::kStore &&
          events[i].word == run.word[static_cast<std::size_t>(t)]) {
        batch_val[static_cast<std::size_t>(t)] = events[i].value;
        break;
      }
    }
    ASSERT_NE(batch_val[static_cast<std::size_t>(t)], 0u);
  }
  // Previous round's values (0 when the combine hit the very first round).
  const auto prev_val = [](std::uint64_t v) {
    return (v & 0xFFFFFu) > 1 ? v - 1 : std::uint64_t{0};
  };

  // Cut inside the block (right before the covering fence): the whole
  // batch — member's lines *and* leader's — is lost together.
  const CrashImage inside = materialize_crash_image(events, f, 0);
  EXPECT_EQ(image_value(inside, run.word[0]), prev_val(batch_val[0]));
  EXPECT_EQ(image_value(inside, run.word[1]), prev_val(batch_val[1]));
  // Cut right after it: the whole batch is durable together.
  const CrashImage after = materialize_crash_image(events, f + 1, 0);
  EXPECT_EQ(image_value(after, run.word[0]), batch_val[0]);
  EXPECT_EQ(image_value(after, run.word[1]), batch_val[1]);

  // Both cuts replay as deterministic triples over the same trace.
  const auto expect_values = [&](std::uint64_t v0, std::uint64_t v1) {
    return [&, v0, v1](const CrashImage& img, std::size_t, std::uint64_t, std::string* why) {
      if (image_value(img, run.word[0]) != v0 || image_value(img, run.word[1]) != v1) {
        *why = "combined-fence image mismatch on replay";
        return false;
      }
      return true;
    };
  };
  EXPECT_FALSE(en.replay(CrashTriple{en.trace_hash(), f, 0},
                         expect_values(prev_val(batch_val[0]), prev_val(batch_val[1])))
                   .has_value());
  EXPECT_FALSE(en.replay(CrashTriple{en.trace_hash(), f + 1, 0},
                         expect_values(batch_val[0], batch_val[1]))
                   .has_value());
}

// TSan target (tsan-concurrency preset): free-running fencers hammer the
// publish / elect-leader / drain / release hand-off with mixed gates and a
// short combine window, so leaders, followers and solo fencers interleave
// every which way. The slot protocol's acquire/release pairing is what
// TSan checks; the counter identity and final durability check that no
// fence was lost or double-served.
TEST(GroupCommitStress, CombinerHandoffUnderChurn) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 300;
  PmemConfig cfg;
  cfg.capacity_words = std::size_t{1} << 10;
  cfg.raw_words = std::size_t{1} << 12;
  cfg.group_commit = true;
  cfg.combine_window_spins = 64;
  PmemPool pool(cfg);
  const std::size_t base = line_aligned_raw(pool);
  std::vector<std::size_t> extra;  // one private line per extra thread
  for (int t = 0; t < kThreads; ++t)
    extra.push_back(t < 2 ? base + static_cast<std::size_t>(t) * kWordsPerLine
                          : pool.alloc_raw(kWordsPerLine));

  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int round = 0; round < kRounds; ++round) {
        pool.raw_store(t, extra[static_cast<std::size_t>(t)],
                       round_value(t, round));
        pool.flush_raw(t, extra[static_cast<std::size_t>(t)]);
        pool.fence(t, (round & 1) != 0 ? FenceGate::kPreferCombine : FenceGate::kAuto);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Conservation: every fence call either issued an ordering fence or was
  // absorbed into one — never both, never neither.
  EXPECT_EQ(pool.fence_count() + pool.fence_combined_count(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
  // Every thread's last round is durable (its own fence or its leader's).
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(pool.raw_load_durable(extra[static_cast<std::size_t>(t)]),
              round_value(t, kRounds - 1));
}

TEST(GroupCommitTest, BundleRoundTripKeepsGroupCommitFlag) {
  CrashHarnessOptions opt;
  opt.transfer_threads = 1;
  opt.counter_threads = 0;
  opt.map_threads = 0;
  opt.txs_per_thread = 2;
  opt.group_commit = true;
  const CrashTraceBundle tr = run_crash_workload(opt);
  const std::string path = ::testing::TempDir() + "/group_commit_bundle.bin";
  test::save_bundle(path, tr);
  const CrashTraceBundle lt = test::load_bundle(path);
  EXPECT_TRUE(lt.opt.group_commit);
  EXPECT_EQ(lt.events, tr.events);
}

// Five-TM acceptance: the mixed crash workload with the combining fence
// enabled recovers consistently at every sampled fence boundary (plus
// adversarial mid-fence subset images). On a loaded or single-core host
// the combiner may rarely engage — the sweep is valid either way, and the
// deterministic pool-level tests above pin the combined-path semantics.
class GroupCommitCrashSweep : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, GroupCommitCrashSweep, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

TEST_P(GroupCommitCrashSweep, EveryBoundaryRecoversWithGroupCommitOn) {
  CrashHarnessOptions opt;
  opt.kind = GetParam();
  opt.txs_per_thread = 8;
  opt.group_commit = true;
  const CrashTraceBundle tr = run_crash_workload(opt);

  CrashEnumOptions eopt;
  eopt.subset_seeds_per_prefix = 1;
  eopt.max_prefixes = 32;
  CrashEnumerator en(tr.events, eopt);
  ASSERT_GT(en.boundaries().size(), 20u) << "workload produced suspiciously few fences";

  CrashImageVerifier verifier(tr);
  const auto failure = en.run(verifier.checker());
  ASSERT_FALSE(failure.has_value())
      << "durable-linearizability violation with group commit at "
      << failure->triple.to_string() << ": " << failure->why;
}

}  // namespace
}  // namespace nvhalt
