// Shared harness for the crash-prefix enumeration checker: a mixed
// multi-threaded workload whose persistence trace is journaled, and a
// verifier that installs any materialized crash image, runs recovery and
// checks durable-linearizability invariants:
//
//   * zero-sum conservation — raw account slots and hashmap-backed account
//     values are only ever moved between, never created or destroyed, so
//     any torn (partially recovered) transaction breaks the sum;
//   * atomicity — per-thread counter pairs (a == b always);
//   * durability — a transaction acknowledged at journal index B must be
//     reflected by every crash prefix >= B;
//   * no resurrection — values beyond the last attempt never appear.
//
// Used by crash_enum_test.cpp (unit + acceptance cases) and the crash_sweep
// CLI tool the CI crash-sweep job runs. Trace bundles round-trip through a
// binary file so a CI failure triple can be replayed locally.
#pragma once

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "pmem/checkpoint.hpp"
#include "pmem/crash_enum.hpp"
#include "structures/tm_hashmap.hpp"
#include "structures/tm_list.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/trace_io.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace nvhalt::test {

struct CrashHarnessOptions {
  TmKind kind = TmKind::kNvHalt;
  int transfer_threads = 3;  // zero-sum transfers over raw account slots
  int counter_threads = 3;   // monotonic (a, b) pair bumps with ack bounds
  int map_threads = 2;       // zero-sum transfers over hashmap values
  /// Delete-heavy churn over a sorted list (insert/remove 50/50). The
  /// hashmap's removes only mark nodes empty, so this is the worker that
  /// actually drives tx.free — allocator free intents and epoch
  /// reclamation get crash coverage only when it is enabled.
  int list_threads = 0;
  int txs_per_thread = 12;
  int accounts = 16;
  int map_accounts = 8;
  int list_keys = 12;
  word_t list_key_base = 9000;
  word_t initial_balance = 100;
  std::uint64_t workload_seed = 0xC0FFEE;

  /// When > 0, transfer thread 0 runs tm.checkpoint() after every N of its
  /// committed transactions, so the journal interleaves checkpoint
  /// truncation/compaction traffic with live commits — the crash-prefix
  /// enumerator then places boundaries inside those windows like anywhere
  /// else (including the torn-checkpoint window between the bitmap
  /// truncation and the watermark flip). Enables the TMs' checkpoint
  /// configuration, which changes the pool's raw layout; bundles record it
  /// so replays reconstruct the same geometry.
  int checkpoint_every = 0;

  /// Enables the persistent flight recorder in both the workload and the
  /// verifier runner (layout-affecting: the recorder reserves raw words, so
  /// bundles record it and replays reconstruct the same geometry). The
  /// verifier then decodes a postmortem from every enumerated crash image
  /// and validates its artifact round-trip.
  bool flight_recorder = false;

  /// Enables the pool's flat-combining group fence in the workload run.
  /// Not layout-affecting (pure fence-path behavior: committers may be
  /// drained by another thread's combined fence, journaled as kFenceJoin
  /// merged into the leader's kFence), but bundles record it so a replayed
  /// verifier reconstructs the run under the same durability semantics.
  bool group_commit = false;

  /// When non-empty, the harness dumps observability artifacts after the
  /// workload quiesces (and before the runner is torn down): `trace_out`
  /// gets a raw nvhalt-trace-v1 file (meaningful only in NVHALT_TELEMETRY
  /// >= 1 builds — empty at level 0), `metrics_out` a MetricsRegistry JSON
  /// snapshot plus its Prometheus rendering at `<metrics_out>.prom`.
  std::string trace_out;
  std::string metrics_out;
};

/// One acknowledged commit: any crash prefix >= bound must reflect value.
struct AckPoint {
  std::size_t bound;
  word_t value;
};

/// Everything needed to re-verify any crash prefix of one workload run.
struct CrashTraceBundle {
  CrashHarnessOptions opt;
  std::vector<PersistEvent> events;
  std::uint64_t trace_hash = 0;
  std::vector<gaddr_t> accounts;
  std::vector<gaddr_t> counter_a, counter_b;
  std::vector<std::vector<AckPoint>> counter_acked;
  std::vector<word_t> counter_attempted;
  /// Journal index after every prefill commit (accounts endowed, map
  /// created and populated) was acknowledged.
  std::size_t prefill_bound = 0;
  word_t map_key_base = 5000;
};

/// Small, enumeration-friendly geometry: recovery scans the full record
/// space per materialized image, so the pool is kept compact.
inline RunnerConfig crash_config(TmKind kind, bool checkpoint = false,
                                 bool flight_recorder = false,
                                 bool group_commit = false) {
  RunnerConfig cfg;
  cfg.kind = kind;
  cfg.pmem.capacity_words = std::size_t{1} << 17;  // 8 allocator segments
  cfg.pmem.raw_words = std::size_t{1} << 16;  // SPHT logs + allocator metadata
  cfg.pmem.track_store_order = false;  // the journal records store order itself
  cfg.htm.stripe_count = std::size_t{1} << 10;
  cfg.nvhalt.lock_table_entries = std::size_t{1} << 10;
  cfg.trinity.lock_table_entries = std::size_t{1} << 10;
  cfg.spht.max_threads = 12;
  cfg.spht.log_words_per_thread = std::size_t{1} << 11;
  cfg.spht.replay_threads = 1;
  if (checkpoint) {
    // Checkpointing changes the raw layout (dirty-line bitmap + watermark
    // region, or SPHT's generation word), so the workload runner and the
    // verifier must agree on this flag — the bundle records it.
    cfg.nvhalt.checkpoint = true;
    cfg.trinity.checkpoint = true;
    cfg.spht.checkpoint = true;
    cfg.pmem.raw_words +=
        CheckpointManager::metadata_words(cfg.pmem.capacity_words) + 2 * kWordsPerLine;
  }
  if (flight_recorder) {
    // The recorder reserves raw words too — same layout-agreement contract
    // as the checkpoint region above.
    cfg.nvhalt.flight_recorder = true;
    cfg.trinity.flight_recorder = true;
    cfg.spht.flight_recorder = true;
    cfg.pmem.raw_words += telemetry::FlightRecorder::metadata_words();
  }
  // Group durable commit is not layout-affecting — it only changes which
  // thread executes a committer's drain and how the journal groups fence
  // events (kFenceJoin merged into one kFence boundary).
  cfg.pmem.group_commit = group_commit;
  return cfg;
}

/// Runs the mixed workload with a journaling pool and returns the bundle.
/// The journal is installed at pool construction, so the trace covers the
/// whole lifetime (TM construction, prefill, workload) against a zero
/// initial durable image — exactly what materialize_crash_image() assumes.
inline CrashTraceBundle run_crash_workload(const CrashHarnessOptions& opt) {
  CrashTraceBundle tr;
  tr.opt = opt;

  // The process-wide trace buffer may hold rings from an earlier workload
  // in the same process; start the requested capture from a clean slate
  // (no workers are running yet, so the producer-quiescence contract holds).
  if (!opt.trace_out.empty()) telemetry::TraceBuffer::instance().clear();

  PersistJournal journal;
  RunnerConfig cfg = crash_config(opt.kind, opt.checkpoint_every > 0, opt.flight_recorder,
                                  opt.group_commit);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  auto& tm = runner.tm();

  for (int i = 0; i < opt.accounts; ++i) tr.accounts.push_back(runner.alloc().raw_alloc(0, 1));
  for (int c = 0; c < opt.counter_threads; ++c) {
    tr.counter_a.push_back(runner.alloc().raw_alloc(0, 1));
    tr.counter_b.push_back(runner.alloc().raw_alloc(0, 1));
  }
  tr.counter_acked.assign(static_cast<std::size_t>(opt.counter_threads), {});
  tr.counter_attempted.assign(static_cast<std::size_t>(opt.counter_threads), 0);

  // Prefill phase (sequential, before any worker): one atomic endowment of
  // every raw account, then the map with its durable root. Crash prefixes
  // inside this phase are enumerated too — the checker only requires the
  // prefill's atomicity there, full sums afterwards.
  tm.run(0, [&](Tx& tx) {
    for (const gaddr_t a : tr.accounts) tx.write(a, opt.initial_balance);
  });
  std::optional<TmHashMap> map;
  if (opt.map_threads > 0 && opt.map_accounts > 0) {
    map.emplace(tm, std::size_t{64});
    for (int i = 0; i < opt.map_accounts; ++i)
      map->insert(0, tr.map_key_base + static_cast<word_t>(i), opt.initial_balance);
  }
  std::optional<TmList> list;
  if (opt.list_threads > 0 && opt.list_keys > 0) {
    list.emplace(tm);
    for (int i = 0; i < opt.list_keys; i += 2) {
      const word_t k = opt.list_key_base + static_cast<word_t>(i);
      list->insert(0, k, k);
    }
  }
  tr.prefill_bound = journal.size();

  const int nthreads =
      opt.transfer_threads + opt.counter_threads + opt.map_threads + opt.list_threads;
  SpinBarrier barrier(nthreads);
  std::vector<std::thread> workers;
  int tid = 0;
  for (int t = 0; t < opt.transfer_threads; ++t, ++tid) {
    const bool checkpointer = t == 0 && opt.checkpoint_every > 0;
    workers.emplace_back([&, tid, checkpointer] {
      Xoshiro256 rng(opt.workload_seed * 31 + static_cast<std::uint64_t>(tid));
      barrier.arrive_and_wait();
      for (int i = 0; i < opt.txs_per_thread; ++i) {
        const std::size_t nacc = tr.accounts.size();
        const std::size_t from = rng.next_bounded(nacc);
        std::size_t to = rng.next_bounded(nacc - 1);
        if (to >= from) ++to;
        const word_t amt = 1 + rng.next_bounded(3);
        tm.run(tid, [&](Tx& tx) {
          const word_t vf = tx.read(tr.accounts[from]);
          const word_t vt = tx.read(tr.accounts[to]);
          if (vf >= amt) {
            tx.write(tr.accounts[from], vf - amt);
            tx.write(tr.accounts[to], vt + amt);
          }
        });
        // Checkpoint mid-workload while every other worker keeps
        // committing: the journal then carries truncation/compaction
        // traffic interleaved with live persist phases, and the enumerator
        // places crash boundaries inside those windows.
        if (checkpointer && (i + 1) % opt.checkpoint_every == 0) tm.checkpoint(tid);
      }
    });
  }
  for (int c = 0; c < opt.counter_threads; ++c, ++tid) {
    workers.emplace_back([&, c, tid] {
      barrier.arrive_and_wait();
      for (word_t i = 1; i <= static_cast<word_t>(opt.txs_per_thread); ++i) {
        tr.counter_attempted[static_cast<std::size_t>(c)] = i;
        const bool ok = tm.run(tid, [&](Tx& tx) {
          tx.write(tr.counter_a[static_cast<std::size_t>(c)], i);
          tx.write(tr.counter_b[static_cast<std::size_t>(c)], i);
        });
        // The durability bound: every journal event of this commit is
        // already recorded by the time run() returns.
        if (ok) tr.counter_acked[static_cast<std::size_t>(c)].push_back({journal.size(), i});
      }
    });
  }
  for (int m = 0; m < opt.map_threads; ++m, ++tid) {
    workers.emplace_back([&, tid] {
      Xoshiro256 rng(opt.workload_seed * 131 + static_cast<std::uint64_t>(tid));
      barrier.arrive_and_wait();
      if (!map) return;
      for (int i = 0; i < opt.txs_per_thread; ++i) {
        const word_t n = static_cast<word_t>(opt.map_accounts);
        const word_t k1 = tr.map_key_base + static_cast<word_t>(rng.next_bounded(n));
        word_t k2 = tr.map_key_base + static_cast<word_t>(rng.next_bounded(n - 1));
        if (k2 >= k1) ++k2;
        const word_t amt = 1 + rng.next_bounded(3);
        tm.run(tid, [&](Tx& tx) {
          word_t v1 = 0, v2 = 0;
          if (!map->contains_in(tx, k1, &v1) || !map->contains_in(tx, k2, &v2)) return;
          if (v1 < amt) return;
          // Value update = remove + reinsert (reuses the empty-marked node
          // in place), keeping the per-key sum zero-sum across the map.
          map->remove_in(tx, k1);
          map->insert_in(tx, k1, v1 - amt);
          map->remove_in(tx, k2);
          map->insert_in(tx, k2, v2 + amt);
        });
      }
    });
  }
  for (int l = 0; l < opt.list_threads; ++l, ++tid) {
    workers.emplace_back([&, tid] {
      Xoshiro256 rng(opt.workload_seed * 977 + static_cast<std::uint64_t>(tid));
      barrier.arrive_and_wait();
      if (!list) return;
      for (int i = 0; i < opt.txs_per_thread; ++i) {
        // Delete-heavy churn: every committed remove frees its node through
        // the transactional allocator (free intent armed at commit, retire
        // into epoch limbo), every insert allocates one back. Values always
        // equal keys so a torn node write is directly observable.
        const word_t key =
            opt.list_key_base + static_cast<word_t>(rng.next_bounded(
                                    static_cast<std::uint64_t>(opt.list_keys)));
        if (rng.next_bounded(2) == 0) {
          list->insert(tid, key, key);
        } else {
          list->remove(tid, key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  if (!opt.trace_out.empty()) {
    const telemetry::TraceDump dump = telemetry::collect_trace_dump();
    if (!telemetry::write_raw_trace_file(opt.trace_out, dump))
      throw TmLogicError("cannot write trace file: " + opt.trace_out);
  }
  if (!opt.metrics_out.empty()) {
    telemetry::MetricsRegistry reg;
    reg.add_tm(tm);
    reg.add_pool(runner.pool());
    reg.add_alloc(runner.alloc());
    const telemetry::MetricsSnapshot snap = reg.snapshot();
    std::ofstream jf(opt.metrics_out);
    jf << snap.to_json() << "\n";
    std::ofstream pf(opt.metrics_out + ".prom");
    pf << snap.to_prometheus();
    if (!jf || !pf)
      throw TmLogicError("cannot write metrics files: " + opt.metrics_out);
  }

  tr.events = journal.events();
  tr.trace_hash = PersistJournal::hash(tr.events);
  return tr;
}

/// Installs materialized crash images into a dedicated runner (constructed
/// with the exact workload configuration, so persistent-layout allocations
/// line up), runs recovery and checks the harness invariants. Reused across
/// images: install_crash_image + recover_data fully reset pool and TM.
class CrashImageVerifier {
 public:
  /// `recovery_skip_nth_revert` forwards to the NV-HALT recovery fault
  /// injection knob (mutation testing); -1 = intact recovery.
  explicit CrashImageVerifier(const CrashTraceBundle& tr, int recovery_skip_nth_revert = -1)
      : tr_(tr), runner_(verifier_config(tr, recovery_skip_nth_revert)) {}

  CrashImageChecker checker() {
    return [this](const CrashImage& img, std::size_t prefix, std::uint64_t, std::string* why) {
      return check(img, prefix, why);
    };
  }

  bool check(const CrashImage& img, std::size_t prefix, std::string* why) {
    auto& tm = runner_.tm();
    auto& pool = runner_.pool();
    pool.install_crash_image(img.words);
    tm.recover_data();

    // ---- 0. Flight-recorder postmortem ---------------------------------
    // Every enumerated crash image must yield a decodable postmortem whose
    // artifact serialization round-trips. Torn recorder tails are expected
    // (the report counts them); what must never happen is recovery failing
    // on recorder state or the artifact failing to parse back.
    if (tr_.opt.flight_recorder) {
      const telemetry::PostmortemReport* pm = tm.last_postmortem();
      if (pm == nullptr)
        return fail(why, prefix, "flight recorder enabled but recovery produced no postmortem");
      telemetry::PostmortemReport rt;
      std::string perr;
      if (!telemetry::parse_postmortem(telemetry::serialize_postmortem(*pm, tm.name()), rt,
                                       nullptr, &perr))
        return fail(why, prefix, "postmortem artifact round-trip failed: ", perr);
      if (rt.total_valid != pm->total_valid || rt.total_torn != pm->total_torn ||
          rt.per_thread.size() != pm->per_thread.size())
        return fail(why, prefix, "postmortem artifact round-trip lost records");
    }

    std::vector<LiveBlock> live;
    // Setup-phase raw allocations are eagerly durable (allocation bit +
    // fence before the address is handed out), so the durable bitmap says
    // exactly which of these blocks existed at this crash boundary —
    // earlier prefixes legitimately predate some of them.
    const auto add_if_allocated = [&](gaddr_t a) {
      if (runner_.alloc().slot_bit(a, 1)) live.push_back({a, 1});
    };
    for (const gaddr_t a : tr_.accounts) add_if_allocated(a);
    for (const gaddr_t a : tr_.counter_a) add_if_allocated(a);
    for (const gaddr_t a : tr_.counter_b) add_if_allocated(a);
    const bool map_used = tr_.opt.map_threads > 0 && tr_.opt.map_accounts > 0;
    const bool have_map = map_used && pool.load_root(0) != 0 && pool.load_root(1) != 0;
    std::optional<TmHashMap> map;
    if (have_map) {
      map.emplace(TmHashMap::attach(tm));
      const auto mb = map->collect_live_blocks();
      live.insert(live.end(), mb.begin(), mb.end());
    }
    const bool list_used = tr_.opt.list_threads > 0 && tr_.opt.list_keys > 0;
    const bool have_list = list_used && pool.load_root(4) != 0;
    std::optional<TmList> list;
    if (have_list) {
      list.emplace(TmList::attach(tm));
      const auto lb = list->collect_live_blocks();
      live.insert(live.end(), lb.begin(), lb.end());
    }
    tm.rebuild_allocator(live);

    // ---- 1. Raw-account conservation ----------------------------------
    const word_t full =
        static_cast<word_t>(tr_.opt.accounts) * tr_.opt.initial_balance;
    word_t sum = 0;
    bool any_nonzero = false;
    tm.run(0, [&](Tx& tx) {
      sum = 0;
      any_nonzero = false;  // the body may be re-executed
      for (const gaddr_t a : tr_.accounts) {
        const word_t v = tx.read(a);
        sum += v;
        any_nonzero |= v != 0;
      }
    });
    if (any_nonzero && sum != full)
      return fail(why, prefix, "account sum broken: torn transfer (sum=", sum, " expected=", full,
                  ")");
    if (!any_nonzero && prefix >= tr_.prefill_bound)
      return fail(why, prefix, "acknowledged prefill lost (all accounts zero)");

    // ---- 2. Counter pairs: atomic, durable, no resurrection -----------
    for (std::size_t c = 0; c < tr_.counter_a.size(); ++c) {
      word_t va = 0, vb = 0;
      tm.run(0, [&](Tx& tx) {
        va = tx.read(tr_.counter_a[c]);
        vb = tx.read(tr_.counter_b[c]);
      });
      if (va != vb)
        return fail(why, prefix, "counter ", c, " torn: a=", va, " b=", vb);
      word_t floor = 0;
      for (const AckPoint& p : tr_.counter_acked[c]) {
        if (p.bound <= prefix) floor = p.value;
      }
      if (va < floor)
        return fail(why, prefix, "counter ", c, " lost acked value ", floor, " (recovered ", va,
                    ")");
      if (va > tr_.counter_attempted[c])
        return fail(why, prefix, "counter ", c, " resurrected unattempted value ", va);
    }

    // ---- 3. Hashmap-account conservation ------------------------------
    if (prefix >= tr_.prefill_bound && map_used) {
      if (!have_map) return fail(why, prefix, "durably published hashmap root lost");
      word_t msum = 0;
      for (int i = 0; i < tr_.opt.map_accounts; ++i) {
        const word_t key = tr_.map_key_base + static_cast<word_t>(i);
        word_t v = 0;
        if (!map->contains(0, key, &v))
          return fail(why, prefix, "acked hashmap account ", key, " lost");
        msum += v;
      }
      const word_t mfull =
          static_cast<word_t>(tr_.opt.map_accounts) * tr_.opt.initial_balance;
      if (msum != mfull)
        return fail(why, prefix, "hashmap sum broken: torn transfer (sum=", msum,
                    " expected=", mfull, ")");
    } else if (have_map) {
      // Mid-prefill crash: transfers have not durably begun, so any
      // present account still carries its initial balance.
      for (int i = 0; i < tr_.opt.map_accounts; ++i) {
        const word_t key = tr_.map_key_base + static_cast<word_t>(i);
        word_t v = 0;
        if (map->contains(0, key, &v) && v != tr_.opt.initial_balance)
          return fail(why, prefix, "hashmap account ", key, " torn during prefill: ", v);
      }
    }

    // ---- 4. List nodes: untorn across delete-heavy churn --------------
    // Every node carries value == key from birth, and removes free whole
    // nodes, so any present key with a mismatched value means a torn node
    // write or a recycled-too-early block surviving recovery.
    if (have_list) {
      for (int i = 0; i < tr_.opt.list_keys; ++i) {
        const word_t key = tr_.opt.list_key_base + static_cast<word_t>(i);
        word_t v = 0;
        if (list->contains(0, key, &v) && v != key)
          return fail(why, prefix, "list node ", key, " torn: value=", v);
      }
    } else if (list_used && prefix >= tr_.prefill_bound) {
      return fail(why, prefix, "durably published list root lost");
    }
    return true;
  }

  TmRunner& runner() { return runner_; }

 private:
  static RunnerConfig verifier_config(const CrashTraceBundle& tr, int skip_nth) {
    RunnerConfig cfg = crash_config(tr.opt.kind, tr.opt.checkpoint_every > 0,
                                    tr.opt.flight_recorder, tr.opt.group_commit);
    cfg.nvhalt.recovery_skip_nth_revert = skip_nth;
    return cfg;
  }

  template <typename... Parts>
  static bool fail(std::string* why, std::size_t prefix, const Parts&... parts) {
    if (why != nullptr) {
      std::ostringstream os;
      os << "[prefix " << prefix << "] ";
      (os << ... << parts);
      *why = os.str();
    }
    return false;
  }

  const CrashTraceBundle& tr_;
  TmRunner runner_;
};

// ---- Bundle persistence (cross-process failure replay) -------------------

namespace detail {
// v5 appends group_commit (fence semantics, not layout), v4
// flight_recorder, v3 checkpoint_every (both layout-affecting: the
// verifier must rebuild the same raw geometry). Old bundles load with the
// missing features off.
inline constexpr std::uint64_t kBundleMagicV2 = 0x4E56484243524232ULL;  // "NVHBCRB2"
inline constexpr std::uint64_t kBundleMagicV3 = 0x4E56484243524233ULL;  // "NVHBCRB3"
inline constexpr std::uint64_t kBundleMagicV4 = 0x4E56484243524234ULL;  // "NVHBCRB4"
inline constexpr std::uint64_t kBundleMagic = 0x4E56484243524235ULL;    // "NVHBCRB5"

inline void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace detail

inline void save_bundle(const std::string& path, const CrashTraceBundle& tr) {
  using detail::put_u64;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw TmLogicError("cannot open bundle file for writing: " + path);
  put_u64(f, detail::kBundleMagic);
  put_u64(f, static_cast<std::uint64_t>(tr.opt.kind));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.transfer_threads));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.counter_threads));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.map_threads));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.list_threads));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.txs_per_thread));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.accounts));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.map_accounts));
  put_u64(f, static_cast<std::uint64_t>(tr.opt.list_keys));
  put_u64(f, tr.opt.list_key_base);
  put_u64(f, tr.opt.initial_balance);
  put_u64(f, tr.opt.workload_seed);
  put_u64(f, static_cast<std::uint64_t>(tr.opt.checkpoint_every));
  put_u64(f, tr.opt.flight_recorder ? 1 : 0);
  put_u64(f, tr.opt.group_commit ? 1 : 0);
  put_u64(f, tr.prefill_bound);
  put_u64(f, tr.map_key_base);
  const auto put_vec = [&f](const std::vector<gaddr_t>& v) {
    put_u64(f, v.size());
    for (const gaddr_t a : v) put_u64(f, a);
  };
  put_vec(tr.accounts);
  put_vec(tr.counter_a);
  put_vec(tr.counter_b);
  put_u64(f, tr.counter_acked.size());
  for (const auto& acks : tr.counter_acked) {
    put_u64(f, acks.size());
    for (const AckPoint& p : acks) {
      put_u64(f, p.bound);
      put_u64(f, p.value);
    }
  }
  put_u64(f, tr.counter_attempted.size());
  for (const word_t v : tr.counter_attempted) put_u64(f, v);
  put_u64(f, tr.events.size());
  for (const PersistEvent& ev : tr.events) {
    put_u64(f, static_cast<std::uint64_t>(ev.kind));
    put_u64(f, static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.tid)));
    put_u64(f, ev.line);
    put_u64(f, ev.word);
    put_u64(f, ev.value);
  }
  put_u64(f, tr.trace_hash);
  if (!f) throw TmLogicError("short write to bundle file: " + path);
}

inline CrashTraceBundle load_bundle(const std::string& path) {
  using detail::get_u64;
  std::ifstream f(path, std::ios::binary);
  if (!f) throw TmLogicError("cannot open bundle file: " + path);
  const std::uint64_t magic = get_u64(f);
  if (magic != detail::kBundleMagic && magic != detail::kBundleMagicV4 &&
      magic != detail::kBundleMagicV3 && magic != detail::kBundleMagicV2)
    throw TmLogicError("not a crash-trace bundle: " + path);
  const bool v5 = magic == detail::kBundleMagic;
  const bool v4 = v5 || magic == detail::kBundleMagicV4;
  const bool v3 = v4 || magic == detail::kBundleMagicV3;
  CrashTraceBundle tr;
  tr.opt.kind = static_cast<TmKind>(get_u64(f));
  tr.opt.transfer_threads = static_cast<int>(get_u64(f));
  tr.opt.counter_threads = static_cast<int>(get_u64(f));
  tr.opt.map_threads = static_cast<int>(get_u64(f));
  tr.opt.list_threads = static_cast<int>(get_u64(f));
  tr.opt.txs_per_thread = static_cast<int>(get_u64(f));
  tr.opt.accounts = static_cast<int>(get_u64(f));
  tr.opt.map_accounts = static_cast<int>(get_u64(f));
  tr.opt.list_keys = static_cast<int>(get_u64(f));
  tr.opt.list_key_base = get_u64(f);
  tr.opt.initial_balance = get_u64(f);
  tr.opt.workload_seed = get_u64(f);
  tr.opt.checkpoint_every = v3 ? static_cast<int>(get_u64(f)) : 0;
  tr.opt.flight_recorder = v4 && get_u64(f) != 0;
  tr.opt.group_commit = v5 && get_u64(f) != 0;
  tr.prefill_bound = get_u64(f);
  tr.map_key_base = get_u64(f);
  const auto get_vec = [&f](std::vector<gaddr_t>& v) {
    v.resize(get_u64(f));
    for (auto& a : v) a = get_u64(f);
  };
  get_vec(tr.accounts);
  get_vec(tr.counter_a);
  get_vec(tr.counter_b);
  tr.counter_acked.resize(get_u64(f));
  for (auto& acks : tr.counter_acked) {
    acks.resize(get_u64(f));
    for (AckPoint& p : acks) {
      p.bound = get_u64(f);
      p.value = get_u64(f);
    }
  }
  tr.counter_attempted.resize(get_u64(f));
  for (auto& v : tr.counter_attempted) v = get_u64(f);
  tr.events.resize(get_u64(f));
  for (PersistEvent& ev : tr.events) {
    ev.kind = static_cast<PersistEventKind>(get_u64(f));
    ev.tid = static_cast<std::int32_t>(static_cast<std::uint32_t>(get_u64(f)));
    ev.line = get_u64(f);
    ev.word = get_u64(f);
    ev.value = get_u64(f);
  }
  tr.trace_hash = get_u64(f);
  if (!f) throw TmLogicError("truncated bundle file: " + path);
  if (tr.trace_hash != PersistJournal::hash(tr.events))
    throw TmLogicError("bundle trace hash mismatch (corrupt file): " + path);
  return tr;
}

}  // namespace nvhalt::test
