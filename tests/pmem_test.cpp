// Unit tests for the simulated persistent memory pool: flush/fence
// semantics, Trinity record layout, crash adversary (spontaneous
// write-back with same-line store ordering), and the crash coordinator.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "pmem/crash_sim.hpp"
#include "pmem/pmem_inspector.hpp"
#include "pmem/pmem_pool.hpp"

namespace nvhalt {
namespace {

PmemConfig small_cfg(bool track_order = true) {
  PmemConfig cfg;
  cfg.capacity_words = 1 << 12;
  cfg.raw_words = 1 << 10;
  cfg.track_store_order = track_order;
  return cfg;
}

TEST(PverPacking, RoundTrips) {
  const std::uint64_t p = pack_pver(17, 123456789);
  EXPECT_EQ(pver_tid(p), 17);
  EXPECT_EQ(pver_seq(p), 123456789u);
}

TEST(PmemPool, VolatileImageStartsZeroAndStores) {
  PmemPool pool(small_cfg());
  EXPECT_EQ(pool.load(5), 0u);
  pool.store(5, 99);
  EXPECT_EQ(pool.load(5), 99u);
}

TEST(PmemPool, RecordWriteStagesTrinityFields) {
  PmemPool pool(small_cfg());
  pool.record_write(/*tid=*/3, /*a=*/7, /*old=*/10, /*new=*/20, /*seq=*/5);
  const PRecord r = pool.read_record(7);
  EXPECT_EQ(r.cur, 20u);
  EXPECT_EQ(r.old, 10u);
  EXPECT_EQ(pver_tid(r.pver), 3);
  EXPECT_EQ(pver_seq(r.pver), 5u);
}

TEST(PmemPool, UnfencedRecordIsNotDurable) {
  PmemPool pool(small_cfg());
  pool.record_write(0, 7, 10, 20, 1);
  EXPECT_EQ(pool.read_durable_record(7).cur, 0u);
  pool.flush_record(0, 7);
  // flush alone is asynchronous; durability arrives at the fence.
  EXPECT_EQ(pool.read_durable_record(7).cur, 0u);
  pool.fence(0);
  EXPECT_EQ(pool.read_durable_record(7).cur, 20u);
}

TEST(PmemPool, FenceOnlyCoversOwnThreadsFlushes) {
  PmemPool pool(small_cfg());
  pool.record_write(0, 7, 0, 20, 1);
  pool.record_write(1, 9, 0, 30, 1);
  pool.flush_record(0, 7);
  pool.flush_record(1, 9);
  pool.fence(0);
  EXPECT_EQ(pool.read_durable_record(7).cur, 20u);
  EXPECT_EQ(pool.read_durable_record(9).cur, 0u);  // thread 1 has not fenced
  pool.fence(1);
  EXPECT_EQ(pool.read_durable_record(9).cur, 30u);
}

TEST(PmemPool, FenceCoalescesSameLineFlushes) {
  // Records are 32 bytes, lines 64: addresses 2 and 3 share a record line.
  // Flushing both counts two requests but the duplicate is coalesced into
  // flush_dedup_count() at enqueue time (O(1) dedup), so the fence
  // persists (and charges) the line once.
  PmemPool pool(small_cfg());
  pool.record_write(0, 2, 0, 20, 1);
  pool.record_write(0, 3, 0, 30, 1);
  pool.flush_record(0, 2);
  pool.flush_record(0, 3);
  EXPECT_EQ(pool.flush_count(), 2u);
  EXPECT_EQ(pool.flush_dedup_count(), 1u);  // coalesced at enqueue
  pool.fence(0);
  EXPECT_EQ(pool.flush_dedup_count(), 1u);
  EXPECT_EQ(pool.read_durable_record(2).cur, 20u);
  EXPECT_EQ(pool.read_durable_record(3).cur, 30u);

  // Distinct lines are not dedup'd.
  pool.record_write(0, 2, 20, 21, 2);
  pool.record_write(0, 8, 0, 80, 2);
  pool.flush_record(0, 2);
  pool.flush_record(0, 8);
  pool.fence(0);
  EXPECT_EQ(pool.flush_dedup_count(), 1u);
  EXPECT_EQ(pool.read_durable_record(2).cur, 21u);
  EXPECT_EQ(pool.read_durable_record(8).cur, 80u);
}

TEST(PmemPool, PverPersistsPerThread) {
  PmemPool pool(small_cfg());
  EXPECT_EQ(pool.load_pver(4), 0u);
  pool.store_pver(4, 9);
  pool.flush_pver(4);
  pool.fence(4);
  EXPECT_EQ(pool.load_pver(4), 9u);
  EXPECT_EQ(pool.load_pver(5), 0u);
}

TEST(PmemPool, RootSlotsPersistImmediately) {
  PmemPool pool(small_cfg());
  pool.store_root_persist(0, 2, 0xABCD);
  EXPECT_EQ(pool.load_root(2), 0xABCDu);
  // Crash with zero write-back probability: only fenced state survives.
  pool.crash(CrashPolicy{0.0, 1});
  EXPECT_EQ(pool.load_root(2), 0xABCDu);
}

TEST(PmemPool, CrashDropsVolatileAndUnflushedState) {
  PmemPool pool(small_cfg());
  pool.store(5, 99);                      // volatile only
  pool.record_write(0, 7, 0, 20, 1);      // staged, never flushed
  pool.record_write(0, 8, 0, 30, 1);      // staged + flushed + fenced
  pool.flush_record(0, 8);
  pool.fence(0);
  pool.crash(CrashPolicy{0.0, 42});
  EXPECT_EQ(pool.load(5), 0u);                  // DRAM gone
  EXPECT_EQ(pool.read_record(7).cur, 0u);       // cache gone
  EXPECT_EQ(pool.read_record(8).cur, 30u);      // durable survived
  EXPECT_EQ(pool.read_durable_record(8).cur, 30u);
}

TEST(PmemPool, CrashWritebackCanPersistUnflushedData) {
  // Spontaneous write-back may persist dirty lines even without a flush;
  // the adversary picks a per-line store-order cut, so across seeds some
  // crashes expose the unflushed store and some do not.
  int persisted = 0, dropped = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    PmemPool pool(small_cfg());
    pool.record_write(0, 7, 0, 20, 1);  // dirty, unflushed
    pool.crash(CrashPolicy{1.0, seed});
    const std::uint64_t cur = pool.read_record(7).cur;
    EXPECT_TRUE(cur == 0 || cur == 20);
    persisted += cur == 20;
    dropped += cur == 0;
  }
  EXPECT_GT(persisted, 0);
  EXPECT_GT(dropped, 0);
}

TEST(PmemPool, CrashWithoutStoreOrderTrackingPersistsWholeLines) {
  PmemConfig cfg = small_cfg(/*track_order=*/false);
  PmemPool pool(cfg);
  pool.record_write(0, 7, 0, 20, 1);  // dirty, unflushed
  pool.crash(CrashPolicy{1.0, 42});
  // Without store-order tracking the adversary is all-or-nothing per line.
  EXPECT_EQ(pool.read_record(7).cur, 20u);
}

TEST(PmemPool, CrashPrefixRespectsSameLineStoreOrder) {
  // Trinity's write order within a record's line is old, pver, cur. A
  // partial write-back must expose only prefixes of that order: it is
  // impossible to see the new `cur` without the new `old`.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    PmemPool pool(small_cfg());
    // Establish a baseline committed record (old=0 -> cur=10).
    pool.record_write(0, 7, 0, 10, 1);
    pool.flush_record(0, 7);
    pool.fence(0);
    // In-flight update 10 -> 20, seq 2, never fenced.
    pool.record_write(0, 7, 10, 20, 2);
    pool.crash(CrashPolicy{1.0, seed});
    const PRecord r = pool.read_record(7);
    const bool cur_new = r.cur == 20;
    const bool pver_new = pver_seq(r.pver) == 2;
    const bool old_new = r.old == 10;
    if (cur_new) {
      EXPECT_TRUE(pver_new) << "seed " << seed;
    }
    if (pver_new) {
      EXPECT_TRUE(old_new) << "seed " << seed;
    }
    // And never anything other than the four legal prefixes.
    EXPECT_TRUE(r.cur == 10 || r.cur == 20) << "seed " << seed;
    EXPECT_TRUE(r.old == 0 || r.old == 10) << "seed " << seed;
  }
}

TEST(PmemPool, RawRegionAllocAndPersistence) {
  PmemPool pool(small_cfg());
  const std::size_t idx = pool.alloc_raw(4);
  const std::size_t idx2 = pool.alloc_raw(4);
  EXPECT_NE(idx, idx2);
  EXPECT_EQ(idx % kWordsPerLine, 0u);  // line aligned
  pool.raw_store(idx, 77);
  EXPECT_EQ(pool.raw_load(idx), 77u);
  EXPECT_EQ(pool.raw_load_durable(idx), 0u);
  pool.flush_raw(0, idx);
  pool.fence(0);
  EXPECT_EQ(pool.raw_load_durable(idx), 77u);
}

TEST(PmemPool, RawRegionExhaustionThrows) {
  PmemConfig cfg = small_cfg();
  cfg.raw_words = 64;
  PmemPool pool(cfg);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) pool.alloc_raw(8);
      },
      TmLogicError);
}

TEST(PmemPool, FlushAndFenceCountersAdvance) {
  PmemPool pool(small_cfg());
  const auto f0 = pool.flush_count();
  const auto n0 = pool.fence_count();
  pool.record_write(0, 3, 0, 1, 1);
  pool.flush_record(0, 3);
  pool.fence(0);
  EXPECT_EQ(pool.flush_count(), f0 + 1);
  EXPECT_EQ(pool.fence_count(), n0 + 1);
}

TEST(PmemPool, DisabledFlushesAreNoOpsAndCrashIsRejected) {
  PmemConfig cfg = small_cfg(false);
  cfg.flushes_enabled = false;
  PmemPool pool(cfg);
  pool.record_write(0, 3, 0, 1, 1);
  pool.flush_record(0, 3);
  pool.fence(0);
  EXPECT_EQ(pool.fence_count(), 0u);
  EXPECT_THROW(pool.crash(CrashPolicy{}), TmLogicError);
}

TEST(PmemPool, RevertRecordRestoresOldValue) {
  PmemPool pool(small_cfg());
  pool.record_write(0, 7, 10, 20, 3);
  pool.revert_record(7);
  const PRecord r = pool.read_record(7);
  EXPECT_EQ(r.cur, 10u);
  EXPECT_EQ(r.old, 10u);
}

TEST(PmemInspector, ReportsInFlightAndDurability) {
  PmemPool pool(small_cfg());
  PmemInspector inspector(pool);

  // Fresh pool: nothing touched.
  PmemReport r = inspector.scan();
  EXPECT_EQ(r.touched_records, 0u);
  EXPECT_EQ(r.in_flight_records, 0u);
  EXPECT_TRUE(r.active_threads.empty());

  // An in-flight write (pver not yet advanced): counted as in-flight and
  // not durable.
  pool.record_write(/*tid=*/2, /*a=*/7, /*old=*/0, /*new=*/9, /*seq=*/0);
  r = inspector.scan();
  EXPECT_EQ(r.touched_records, 1u);
  EXPECT_EQ(r.in_flight_records, 1u);
  EXPECT_GE(r.undurable_records, 1u);

  // Complete the protocol: flush record, bump + flush pVerNum.
  pool.flush_record(2, 7);
  pool.fence(2);
  pool.store_pver(2, 1);
  pool.flush_pver(2);
  pool.fence(2);
  r = inspector.scan();
  EXPECT_EQ(r.in_flight_records, 0u);
  ASSERT_EQ(r.active_threads.size(), 1u);
  EXPECT_EQ(r.active_threads[0], 2);
  EXPECT_EQ(r.thread_pvers[0], 1u);
  EXPECT_FALSE(r.to_string().empty());
}

class FileBackedPmemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "nvhalt_pool_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".pm";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  PmemConfig file_cfg() {
    PmemConfig cfg = small_cfg();
    cfg.backing_path = path_;
    return cfg;
  }
  std::string path_;
};

TEST_F(FileBackedPmemTest, DurableStateSurvivesPoolDestruction) {
  {
    PmemPool pool(file_cfg());
    EXPECT_FALSE(pool.attached_existing());
    pool.record_write(0, 7, 0, 77, 0);
    pool.flush_record(0, 7);
    pool.fence(0);
    pool.store_pver(0, 1);
    pool.flush_pver(0);
    pool.fence(0);
    pool.sync_to_disk();
  }  // process "exits"
  {
    PmemPool pool(file_cfg());
    EXPECT_TRUE(pool.attached_existing());
    // Staged view starts from the previous run's durable image.
    EXPECT_EQ(pool.read_record(7).cur, 77u);
    EXPECT_EQ(pool.load_pver(0), 1u);
    // The volatile image starts empty, as after any crash.
    EXPECT_EQ(pool.load(7), 0u);
  }
}

TEST_F(FileBackedPmemTest, UnfencedStateDoesNotSurviveRestart) {
  {
    PmemPool pool(file_cfg());
    pool.record_write(0, 7, 0, 77, 0);  // staged only, never fenced
  }
  {
    PmemPool pool(file_cfg());
    EXPECT_TRUE(pool.attached_existing());
    EXPECT_EQ(pool.read_record(7).cur, 0u);
  }
}

TEST_F(FileBackedPmemTest, GeometryMismatchIsRejected) {
  { PmemPool pool(file_cfg()); }
  PmemConfig other = file_cfg();
  other.capacity_words *= 2;
  EXPECT_THROW(PmemPool{other}, TmLogicError);
}

TEST_F(FileBackedPmemTest, CrashSimulationWorksOnFileBackedPools) {
  PmemPool pool(file_cfg());
  pool.record_write(0, 9, 0, 5, 0);
  pool.flush_record(0, 9);
  pool.fence(0);
  pool.record_write(0, 10, 0, 6, 1);  // unfenced
  pool.crash(CrashPolicy{0.0, 3});
  EXPECT_EQ(pool.read_record(9).cur, 5u);
  EXPECT_EQ(pool.read_record(10).cur, 0u);
}

TEST(CrashCoordinator, TripsAllCrashPoints) {
  CrashCoordinator c;
  EXPECT_NO_THROW(c.crash_point());
  c.trip();
  EXPECT_TRUE(c.tripped());
  EXPECT_THROW(c.crash_point(), SimulatedPowerFailure);
  c.reset();
  EXPECT_NO_THROW(c.crash_point());
}

TEST(CrashCoordinator, PmemOpsPollTheCoordinator) {
  PmemPool pool(small_cfg());
  CrashCoordinator c;
  pool.set_crash_coordinator(&c);
  pool.record_write(0, 3, 0, 1, 1);  // fine while armed but not tripped
  c.trip();
  EXPECT_THROW(pool.record_write(0, 3, 0, 2, 2), SimulatedPowerFailure);
  EXPECT_THROW(pool.fence(0), SimulatedPowerFailure);
  pool.set_crash_coordinator(nullptr);
  EXPECT_NO_THROW(pool.record_write(0, 3, 0, 2, 2));
}

TEST(PmemPool, EadrMakesEveryStagedStoreDurableOnCrash) {
  PmemConfig cfg = small_cfg();
  cfg.eadr = true;
  PmemPool pool(cfg);
  pool.record_write(0, 7, 0, 20, 1);  // never flushed — eADR does not care
  EXPECT_EQ(pool.fence_count(), 0u);
  pool.fence(0);  // no-op on eADR platforms
  EXPECT_EQ(pool.fence_count(), 0u);
  pool.crash(CrashPolicy{0.0, 1});
  EXPECT_EQ(pool.read_record(7).cur, 20u);
}

TEST(PmemPool, EadrFlushesAreFreeNoOps) {
  PmemConfig cfg = small_cfg();
  cfg.eadr = true;
  cfg.flush_latency_ns = 1000000;  // would be visible if flushes ran
  PmemPool pool(cfg);
  pool.record_write(0, 3, 0, 1, 1);
  const auto t0 = std::chrono::steady_clock::now();
  pool.flush_record(0, 3);
  pool.fence(0);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(), 500);
  EXPECT_EQ(pool.flush_count(), 0u);
}

TEST(PmemPool, CrashIsIdempotentOnDurableState) {
  PmemPool pool(small_cfg());
  pool.record_write(0, 7, 0, 20, 1);
  pool.flush_record(0, 7);
  pool.fence(0);
  pool.crash(CrashPolicy{0.0, 1});
  pool.crash(CrashPolicy{0.0, 2});
  EXPECT_EQ(pool.read_record(7).cur, 20u);
}

}  // namespace
}  // namespace nvhalt
