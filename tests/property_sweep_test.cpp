// Property-based configuration sweeps: the TM invariants (atomicity,
// opacity, conservation, durable linearizability) must hold across the
// whole configuration space — lock-table sizes (more sharing), conflict
// stripe counts (more false conflicts), hardware attempt budgets, spurious
// abort rates, and crash adversary seeds.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::run_threads;
using test::small_config;

// ---- Sweep 1: concurrency-control space -------------------------------

using CcParam = std::tuple<TmKind, int /*lock_table_pow2*/, int /*stripe_pow2*/,
                           int /*htm_attempts*/>;

class CcSweepTest : public ::testing::TestWithParam<CcParam> {};

std::string cc_name(const testing::TestParamInfo<CcParam>& info) {
  const auto& [kind, lt, sp, attempts] = info.param;
  std::string n = tm_kind_name(kind);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n + "_lt" + std::to_string(lt) + "_sp" + std::to_string(sp) + "_a" +
         std::to_string(attempts);
}

INSTANTIATE_TEST_SUITE_P(
    Space, CcSweepTest,
    ::testing::Combine(::testing::Values(TmKind::kNvHalt, TmKind::kNvHaltSp),
                       // 0 = a single lock shared by every address; 4 = heavy
                       // sharing; 12 = realistic.
                       ::testing::Values(0, 4, 12),
                       // 1 = two conflict stripes (almost everything falsely
                       // conflicts); 6, 12 = increasingly realistic.
                       ::testing::Values(1, 6, 12),
                       ::testing::Values(0, 2, 10)),
    cc_name);

TEST_P(CcSweepTest, ConservationAndOpacityHold) {
  const auto& [kind, lt_pow2, sp_pow2, attempts] = GetParam();
  RunnerConfig cfg = small_config(kind);
  cfg.nvhalt.lock_table_entries = std::size_t{1} << lt_pow2;
  cfg.htm.stripe_count = std::size_t{1} << sp_pow2;
  cfg.nvhalt.htm_attempts = attempts;
  TmRunner runner(cfg);
  auto& tm = runner.tm();

  constexpr std::size_t kSlots = 24;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);
  std::atomic<std::uint64_t> violations{0};
  run_threads(3, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 131 + 7);
    for (int i = 0; i < 200; ++i) {
      const gaddr_t x = arr + rng.next_bounded(kSlots);
      const gaddr_t y = arr + rng.next_bounded(kSlots);
      tm.run(tid, [&](Tx& tx) {
        std::int64_t sum = 0;
        for (std::size_t s = 0; s < kSlots; ++s)
          sum += static_cast<std::int64_t>(tx.read(arr + s));
        if (sum != 0) violations.fetch_add(1);
        tx.write(x, tx.read(x) - 1);
        tx.write(y, tx.read(y) + 1);
      });
    }
  });
  EXPECT_EQ(violations.load(), 0u);
  std::int64_t total = 0;
  for (std::size_t s = 0; s < kSlots; ++s)
    total += static_cast<std::int64_t>(runner.pool().load(arr + s));
  EXPECT_EQ(total, 0);
}

// ---- Sweep 2: crash adversary space ------------------------------------

using CrashParam = std::tuple<TmKind, int /*seed*/, int /*writeback_pct*/>;

class CrashSweepTest : public ::testing::TestWithParam<CrashParam> {};

std::string crash_name(const testing::TestParamInfo<CrashParam>& info) {
  const auto& [kind, seed, wb] = info.param;
  std::string n = tm_kind_name(kind);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n + "_seed" + std::to_string(seed) + "_wb" + std::to_string(wb);
}

INSTANTIATE_TEST_SUITE_P(Space, CrashSweepTest,
                         ::testing::Combine(::testing::Values(TmKind::kNvHalt, TmKind::kNvHaltCl,
                                                              TmKind::kNvHaltSp, TmKind::kTrinity,
                                                              TmKind::kSpht),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 30, 100)),
                         crash_name);

TEST_P(CrashSweepTest, PairwiseAtomicityAcrossCrash) {
  const auto& [kind, seed, wb_pct] = GetParam();
  TmRunner runner(small_config(kind));
  auto& tm = runner.tm();
  constexpr int kThreads = 2;
  std::vector<gaddr_t> slots_a, slots_b;
  for (int t = 0; t < kThreads; ++t) {
    slots_a.push_back(runner.alloc().raw_alloc(0, 1));
    slots_b.push_back(runner.alloc().raw_alloc(0, 1));
  }

  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);
  std::vector<word_t> acked(kThreads, 0), attempted(kThreads, 0);
  run_threads(kThreads, [&](int tid) {
    try {
      for (word_t i = 1;; ++i) {
        attempted[static_cast<std::size_t>(tid)] = i;
        if (tm.run(tid, [&](Tx& tx) {
              tx.write(slots_a[static_cast<std::size_t>(tid)], i);
              tx.write(slots_b[static_cast<std::size_t>(tid)], i);
            })) {
          acked[static_cast<std::size_t>(tid)] = i;
        }
        if (i == static_cast<word_t>(50 + seed * 17)) coord.trip();  // self-crash point
      }
    } catch (const SimulatedPowerFailure&) {
    }
  });
  runner.pool().set_crash_coordinator(nullptr);
  runner.pool().crash(
      CrashPolicy{static_cast<double>(wb_pct) / 100.0, static_cast<std::uint64_t>(seed)});
  tm.recover_data();
  std::vector<LiveBlock> live;
  for (const gaddr_t a : slots_a) live.push_back({a, 1});
  for (const gaddr_t a : slots_b) live.push_back({a, 1});
  tm.rebuild_allocator(live);

  for (int t = 0; t < kThreads; ++t) {
    word_t va = 0, vb = 0;
    tm.run(0, [&](Tx& tx) {
      va = tx.read(slots_a[static_cast<std::size_t>(t)]);
      vb = tx.read(slots_b[static_cast<std::size_t>(t)]);
    });
    EXPECT_EQ(va, vb) << "torn transaction, thread " << t;
    EXPECT_GE(va, acked[static_cast<std::size_t>(t)]);
    EXPECT_LE(va, attempted[static_cast<std::size_t>(t)]);
  }
}

// ---- Sweep 3: spurious abort rates on a real structure -------------------

class SpuriousSweepTest : public ::testing::TestWithParam<int /*pct*/> {};

INSTANTIATE_TEST_SUITE_P(Rates, SpuriousSweepTest, ::testing::Values(0, 1, 10, 50),
                         [](const auto& info) { return "pct" + std::to_string(info.param); });

TEST_P(SpuriousSweepTest, AbTreeStaysValidUnderAbortPressure) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.htm.spurious_abort_prob = static_cast<double>(GetParam()) / 100.0;
  TmRunner runner(cfg);
  TmAbTree tree(runner.tm());
  Xoshiro256 rng(19);
  std::size_t net = 0;
  for (int i = 0; i < 800; ++i) {
    const word_t k = 1 + rng.next_bounded(200);
    if (rng.next_bool(0.6)) {
      net += tree.insert(0, k, k) ? 1 : 0;
    } else {
      net -= tree.remove(0, k) ? 1 : 0;
    }
  }
  EXPECT_EQ(tree.size_slow(), net);
  std::string why;
  EXPECT_TRUE(tree.validate_slow(&why)) << why;
}

}  // namespace
}  // namespace nvhalt
