// Tests for the software-path snapshot-extension read-validation cache
// (docs/PROTOCOLS.md): common-case reads skip full read-set revalidation
// while the global commit sequence is unchanged, and a writer commit
// between two reads dooms the reader *before* it can observe an
// inconsistent snapshot — under both the cache (default) and the paper's
// literal validate_every_read mode.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "core/nvhalt_tm.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nvhalt {
namespace {

using test::run_threads;
using test::small_config;

RunnerConfig sw_cfg(bool every_read = false) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.htm_attempts = 0;  // keep every transaction on the software path
  cfg.nvhalt.validate_every_read = every_read;
  return cfg;
}

TEST(ValidationCache, CommitSeqBumpsOnWriterCommitsOnly) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);

  EXPECT_EQ(nv.commit_seq(), 0u);
  ASSERT_TRUE(nv.attempt_sw_once(0, [&](Tx& tx) { tx.write(a, 1); }));
  EXPECT_EQ(nv.commit_seq(), 1u);  // software lock release bumps

  word_t v = 0;
  ASSERT_TRUE(nv.attempt_sw_once(0, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(nv.commit_seq(), 1u);  // read-only commit does not bump

  ASSERT_TRUE(nv.attempt_hw_once(0, [&](Tx& tx) { tx.write(a, 2); }));
  EXPECT_EQ(nv.commit_seq(), 2u);  // hardware lock publication bumps

  ASSERT_TRUE(nv.attempt_hw_once(0, [&](Tx& tx) { (void)tx.read(a); }));
  EXPECT_EQ(nv.commit_seq(), 2u);  // read-only hardware commit does not
}

TEST(ValidationCache, RecoveryResetsCommitSeq) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(nv.attempt_sw_once(0, [&](Tx& tx) { tx.write(a, 7); }));
  ASSERT_GT(nv.commit_seq(), 0u);

  runner.pool().crash(CrashPolicy{0.0, 3});
  nv.recover_data();
  EXPECT_EQ(nv.commit_seq(), 0u);  // volatile metadata, like locks/gclock
  word_t v = 0;
  ASSERT_TRUE(nv.attempt_sw_once(0, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(v, 7u);
}

// The adversarial interleaving of the ISSUE: a writer commits between two
// of a reader's reads. The commit_seq snapshot can no longer extend, the
// forced revalidation sees the moved lock version, and the reader aborts
// without the body ever holding an inconsistent {x, y} pair.
void writer_between_reads(bool every_read, bool hw_writer) {
  TmRunner runner(sw_cfg(every_read));
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(nv.attempt_sw_once(0, [&](Tx& tx) {
    tx.write(x, 5);
    tx.write(y, 5);
  }));

  bool inconsistent_observed = false;
  int entries = 0;
  const bool committed = nv.attempt_sw_once(0, [&](Tx& tx) {
    const word_t vx = tx.read(x);
    if (entries++ == 0) {
      const auto move_unit = [&](Tx& wtx) {
        wtx.write(x, wtx.read(x) - 1);
        wtx.write(y, wtx.read(y) + 1);
      };
      EXPECT_TRUE(hw_writer ? nv.attempt_hw_once(1, move_unit)
                            : nv.attempt_sw_once(1, move_unit));
    }
    const word_t vy = tx.read(y);  // must throw TxConflictAbort
    if (vx + vy != 10) inconsistent_observed = true;
  });
  EXPECT_FALSE(committed);
  EXPECT_FALSE(inconsistent_observed);
}

TEST(ValidationCache, SwWriterBetweenReadsDoomsReader) {
  writer_between_reads(/*every_read=*/false, /*hw_writer=*/false);
}

TEST(ValidationCache, HwWriterBetweenReadsDoomsReader) {
  writer_between_reads(/*every_read=*/false, /*hw_writer=*/true);
}

TEST(ValidationCache, EveryReadModeAlsoDoomsReader) {
  writer_between_reads(/*every_read=*/true, /*hw_writer=*/false);
  writer_between_reads(/*every_read=*/true, /*hw_writer=*/true);
}

// A writer on disjoint addresses moves commit_seq — forcing one full
// revalidation — but must not doom the reader (no false aborts from the
// cache machinery itself).
TEST(ValidationCache, DisjointWriterForcesRevalidationNotAbort) {
  TmRunner runner(sw_cfg());
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);
  // z must be lock-disjoint from x/y, and table-mode locks are hashed per
  // cache line — put it a full line away so it resolves to its own lock.
  const gaddr_t z = runner.alloc().raw_alloc(0, 2 * kWordsPerLine) + kWordsPerLine;
  ASSERT_TRUE(nv.attempt_sw_once(0, [&](Tx& tx) {
    tx.write(x, 5);
    tx.write(y, 5);
  }));

  int entries = 0;
  word_t vx = 0, vy = 0;
  const bool committed = nv.attempt_sw_once(0, [&](Tx& tx) {
    vx = tx.read(x);
    if (entries++ == 0)
      EXPECT_TRUE(nv.attempt_sw_once(1, [&](Tx& wtx) { wtx.write(z, 99); }));
    vy = tx.read(y);
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(vx + vy, 10u);
}

// Concurrent zero-sum stress pinned to the software path, in both
// validation modes: transfers keep the array sum at zero; audits (and
// doomed audit attempts) must never observe a nonzero sum.
class ValidationModeStress : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Modes, ValidationModeStress, ::testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "EveryRead" : "CachedValidation";
                         });

TEST_P(ValidationModeStress, SwPathZeroSumInvariantHolds) {
  TmRunner runner(sw_cfg(GetParam()));
  auto& tm = runner.tm();
  constexpr std::size_t kSlots = 24;
  constexpr int kThreads = 4;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);

  std::atomic<std::uint64_t> violations{0};
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 31 + 7);
    for (int i = 0; i < 300; ++i) {
      if (rng.next_bool(0.5)) {
        const gaddr_t a = arr + rng.next_bounded(kSlots);
        const gaddr_t b = arr + rng.next_bounded(kSlots);
        tm.run(tid, [&](Tx& tx) {
          tx.write(a, tx.read(a) - 1);
          tx.write(b, tx.read(b) + 1);
        });
      } else {
        tm.run(tid, [&](Tx& tx) {
          std::int64_t sum = 0;
          for (std::size_t s = 0; s < kSlots; ++s)
            sum += static_cast<std::int64_t>(tx.read(arr + s));
          if (sum != 0) violations.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(violations.load(), 0u);
}

}  // namespace
}  // namespace nvhalt
