// Shared helpers for NV-HALT test suites.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "util/barrier.hpp"

namespace nvhalt::test {

/// A small, fast configuration for unit tests.
inline RunnerConfig small_config(TmKind kind) {
  RunnerConfig cfg;
  cfg.kind = kind;
  cfg.pmem.capacity_words = std::size_t{1} << 18;
  cfg.pmem.raw_words = std::size_t{1} << 19;  // room for SPHT per-thread logs
  cfg.pmem.track_store_order = true;
  cfg.htm.stripe_count = std::size_t{1} << 12;
  cfg.nvhalt.lock_table_entries = std::size_t{1} << 12;
  cfg.trinity.lock_table_entries = std::size_t{1} << 12;
  cfg.spht.log_words_per_thread = std::size_t{1} << 14;
  cfg.spht.max_threads = 16;
  cfg.spht.replay_threads = 2;
  return cfg;
}

/// All five evaluated TM kinds, for parameterized suites.
inline std::vector<TmKind> all_kinds() {
  return {TmKind::kNvHalt, TmKind::kNvHaltCl, TmKind::kNvHaltSp, TmKind::kTrinity, TmKind::kSpht};
}

inline std::string kind_param_name(const testing::TestParamInfo<TmKind>& info) {
  std::string n = tm_kind_name(info.param);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n;
}

/// Runs `fn(tid)` on `nthreads` threads after a common barrier.
template <typename Fn>
void run_threads(int nthreads, Fn&& fn) {
  SpinBarrier barrier(nthreads);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      fn(t);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace nvhalt::test
