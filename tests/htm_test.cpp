// Unit tests for the simulated RTM: single-thread commit/abort mechanics,
// buffered writes, capacity shaping, spurious aborts, eager conflict
// detection between threads, publication atomicity, and non-transactional
// interactions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "htm/sim_htm.hpp"
#include "htm/htm_tls.hpp"
#include "util/barrier.hpp"

namespace nvhalt::htm {
namespace {

struct Words {
  std::vector<std::atomic<std::uint64_t>> w;
  explicit Words(std::size_t n) : w(n) {
    for (auto& x : w) x.store(0, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t>* at(std::size_t i) { return &w[i]; }
};

TEST(SimHtm, CommitPublishesBufferedWrites) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 42);
  // Buffered: not visible before commit.
  EXPECT_EQ(mem.at(1)->load(), 0u);
  // But visible to the transaction itself.
  EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 42u);
  htm.commit(0);
  EXPECT_EQ(mem.at(1)->load(), 42u);
  EXPECT_EQ(htm.aggregate_stats().commits, 1u);
}

TEST(SimHtm, ExplicitAbortDiscardsWrites) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 42);
  EXPECT_THROW(htm.xabort(0, 0x7), HtmAbort);
  EXPECT_EQ(mem.at(1)->load(), 0u);
  EXPECT_FALSE(htm.thread_in_txn(0));
  EXPECT_EQ(htm.thread_stats(0).aborts[static_cast<int>(AbortCause::kExplicit)], 1u);
}

TEST(SimHtm, XabortCarriesCode) {
  SimHtm htm;
  htm.begin(0);
  try {
    htm.xabort(0, 0xAB);
    FAIL() << "xabort did not throw";
  } catch (const HtmAbort& a) {
    EXPECT_EQ(a.cause, AbortCause::kExplicit);
    EXPECT_EQ(a.code, 0xAB);
  }
}

TEST(SimHtm, InTxnTlsFlagTracksTransaction) {
  SimHtm htm;
  EXPECT_FALSE(in_hw_txn());
  htm.begin(0);
  EXPECT_TRUE(in_hw_txn());
  htm.commit(0);
  EXPECT_FALSE(in_hw_txn());
}

TEST(SimHtm, AbortOnFlushModelsClflush) {
  SimHtm htm;
  htm.begin(0);
  EXPECT_THROW(abort_on_flush(), HtmAbort);
  EXPECT_FALSE(htm.thread_in_txn(0));
  EXPECT_EQ(htm.thread_stats(0).aborts[static_cast<int>(AbortCause::kFlush)], 1u);
}

TEST(SimHtm, AbortOnFlushOutsideTxnIsLogicError) {
  EXPECT_THROW(abort_on_flush(), TmLogicError);
}

TEST(SimHtm, NoNestedTransactions) {
  SimHtm htm;
  htm.begin(0);
  EXPECT_THROW(htm.begin(0), TmLogicError);
  htm.cancel(0);
}

TEST(SimHtm, CancelCleansUpWithoutThrowing) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 5);
  htm.cancel(0);
  EXPECT_EQ(mem.at(1)->load(), 0u);
  EXPECT_FALSE(htm.thread_in_txn(0));
  // And the stripe is usable again.
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 6);
  htm.commit(0);
  EXPECT_EQ(mem.at(1)->load(), 6u);
}

TEST(SimHtm, WriteSetCapacityMatchesL1Shape) {
  HtmConfig cfg;
  cfg.l1_ways = 8;
  cfg.l1_sets = 64;
  SimHtm htm(cfg);
  Words mem(16);
  // Writing lines that all map to L1 set 0: line = loc >> 3, set = line & 63.
  // Address a*512 has line a*64 -> set 0. The 9th such line must abort.
  htm.begin(0);
  bool aborted = false;
  try {
    for (std::uint64_t i = 0; i < 16; ++i)
      htm.store(0, loc_pool(i * 512), mem.at(i), i);
  } catch (const HtmAbort& a) {
    aborted = true;
    EXPECT_EQ(a.cause, AbortCause::kCapacity);
  }
  EXPECT_TRUE(aborted);
  EXPECT_EQ(htm.thread_stats(0).aborts[static_cast<int>(AbortCause::kCapacity)], 1u);
}

TEST(SimHtm, SameLineWritesDoNotCountTwice) {
  SimHtm htm;
  Words mem(64);
  htm.begin(0);
  // 64 writes within 8 lines (8 words per line): far below capacity.
  for (std::uint64_t i = 0; i < 64; ++i) htm.store(0, loc_pool(i), mem.at(i), i);
  EXPECT_NO_THROW(htm.commit(0));
}

TEST(SimHtm, ReadSetCapacityBounded) {
  HtmConfig cfg;
  cfg.max_read_lines = 16;
  SimHtm htm(cfg);
  Words mem(1);
  htm.begin(0);
  bool aborted = false;
  try {
    for (std::uint64_t i = 0; i < 1000; ++i) htm.load(0, loc_pool(i * 8), mem.at(0));
  } catch (const HtmAbort& a) {
    aborted = true;
    EXPECT_EQ(a.cause, AbortCause::kCapacity);
  }
  EXPECT_TRUE(aborted);
}

TEST(SimHtm, SpuriousAbortsInjected) {
  HtmConfig cfg;
  cfg.spurious_abort_prob = 0.5;
  cfg.seed = 99;
  SimHtm htm(cfg);
  Words mem(4);
  int aborts = 0;
  for (int i = 0; i < 100; ++i) {
    htm.begin(0);
    try {
      htm.store(0, loc_pool(1), mem.at(1), 1);
      htm.load(0, loc_pool(2), mem.at(2));
      htm.commit(0);
    } catch (const HtmAbort& a) {
      EXPECT_EQ(a.cause, AbortCause::kSpurious);
      ++aborts;
    }
  }
  EXPECT_GT(aborts, 20);
  EXPECT_LT(aborts, 100);
}

TEST(SimHtm, NontxStoreAbortsTransactionalReader) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 0u);
  // A non-transactional write from another thread invalidates the line.
  std::thread other([&] { htm.nontx_store(1, loc_pool(1), mem.at(1), 7); });
  other.join();
  EXPECT_THROW(htm.load(0, loc_pool(2), mem.at(2)), HtmAbort);
  EXPECT_EQ(mem.at(1)->load(), 7u);
}

TEST(SimHtm, NontxCachedClaimRunMatchesPlainStores) {
  SimHtm htm;
  Words mem(4);
  {
    SimHtm::NontxClaim claim;
    htm.nontx_store_cached(0, loc_pool(1), mem.at(1), 11, claim);
    htm.nontx_store_cached(0, loc_pool(2), mem.at(2), 22, claim);
    htm.nontx_claim_release(claim);
  }
  EXPECT_EQ(mem.at(1)->load(), 11u);
  EXPECT_EQ(mem.at(2)->load(), 22u);
  // The stripe claim is gone: another thread's plain store must complete.
  std::thread other([&] { htm.nontx_store(1, loc_pool(1), mem.at(1), 33); });
  other.join();
  EXPECT_EQ(mem.at(1)->load(), 33u);
}

TEST(SimHtm, NontxCachedClaimReleasedOnExceptionalUnwind) {
  // Regression: the persist loops interleave cached stores with pool calls
  // that throw when the crash coordinator trips mid-run. The claim's
  // destructor must drop the stripe tag on that unwind — a leaked nontx
  // tag has no epoch, so claim_stripe_nontx would otherwise spin on it
  // forever and the next claimant of the stripe would hang.
  SimHtm htm;
  Words mem(4);
  try {
    SimHtm::NontxClaim claim;
    htm.nontx_store_cached(0, loc_pool(1), mem.at(1), 5, claim);
    throw std::runtime_error("simulated crash trip");
  } catch (const std::runtime_error&) {
  }
  // Hangs here if the claim leaked.
  std::thread other([&] { htm.nontx_store(1, loc_pool(1), mem.at(1), 6); });
  other.join();
  EXPECT_EQ(mem.at(1)->load(), 6u);
}

TEST(SimHtm, NontxLoadAbortsTransactionalWriter) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 42);
  std::uint64_t seen = 0xDEAD;
  std::thread other([&] { seen = htm.nontx_load(1, loc_pool(1), mem.at(1)); });
  other.join();
  // The non-transactional read must never observe the buffered value...
  EXPECT_EQ(seen, 0u);
  // ...and the transaction must be doomed.
  EXPECT_THROW(htm.commit(0), HtmAbort);
  EXPECT_EQ(mem.at(1)->load(), 0u);
}

TEST(SimHtm, NontxCasAbortsReadersAndApplies) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  htm.load(0, loc_pool(1), mem.at(1));
  std::thread other([&] {
    std::uint64_t expected = 0;
    EXPECT_TRUE(htm.nontx_cas(1, loc_pool(1), mem.at(1), expected, 9));
  });
  other.join();
  EXPECT_EQ(mem.at(1)->load(), 9u);
  EXPECT_THROW(htm.commit(0), HtmAbort);
}

TEST(SimHtm, TxReadSeesForeignWriterAndSelfAborts) {
  SimHtm htm;
  Words mem(4);
  // Thread 1 holds a transactional write registration on word 1.
  std::atomic<bool> t1_ready{false}, t1_done{false};
  std::thread t1([&] {
    htm.begin(1);
    htm.store(1, loc_pool(1), mem.at(1), 5);
    t1_ready.store(true);
    while (!t1_done.load()) std::this_thread::yield();
    htm.cancel(1);
  });
  while (!t1_ready.load()) std::this_thread::yield();
  htm.begin(0);
  EXPECT_THROW(htm.load(0, loc_pool(1), mem.at(1)), HtmAbort);
  t1_done.store(true);
  t1.join();
}

TEST(SimHtm, TxWriteAbortsConcurrentReader) {
  SimHtm htm;
  Words mem(4);
  std::atomic<bool> r_ready{false}, w_done{false};
  std::atomic<bool> reader_aborted{false};
  std::thread reader([&] {
    htm.begin(1);
    htm.load(1, loc_pool(1), mem.at(1));
    r_ready.store(true);
    while (!w_done.load()) std::this_thread::yield();
    try {
      htm.load(1, loc_pool(2), mem.at(2));
      htm.commit(1);
    } catch (const HtmAbort&) {
      reader_aborted.store(true);
    }
  });
  while (!r_ready.load()) std::this_thread::yield();
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 3);  // requester wins: reader doomed
  htm.commit(0);
  w_done.store(true);
  reader.join();
  EXPECT_TRUE(reader_aborted.load());
  EXPECT_EQ(mem.at(1)->load(), 3u);
}

TEST(SimHtm, ConflictingWritersAtMostOneCommits) {
  SimHtm htm;
  Words mem(4);
  SpinBarrier barrier(2);
  std::atomic<int> commits{0};
  auto worker = [&](int tid) {
    barrier.arrive_and_wait();
    for (int i = 0; i < 200; ++i) {
      htm.begin(tid);
      try {
        const auto v = htm.load(tid, loc_pool(1), mem.at(1));
        htm.store(tid, loc_pool(1), mem.at(1), v + 1);
        htm.commit(tid);
        commits.fetch_add(1);
      } catch (const HtmAbort&) {
      }
    }
  };
  std::thread a(worker, 0), b(worker, 1);
  a.join();
  b.join();
  // Every committed increment must be reflected: lost updates impossible.
  EXPECT_EQ(mem.at(1)->load(), static_cast<std::uint64_t>(commits.load()));
  EXPECT_GT(commits.load(), 0);
}

TEST(SimHtm, PublicationIsAtomicForNontxReaders) {
  // A transaction writes words A and B; a non-transactional reader that
  // observes the new B (written second) must also observe the new A.
  SimHtm htm;
  Words mem(4);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto b = htm.nontx_load(1, loc_pool(2), mem.at(2));
      const auto a = htm.nontx_load(1, loc_pool(1), mem.at(1));
      if (a < b) violation.store(true);  // saw B's update without A's
    }
  });
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    htm.begin(0);
    try {
      htm.store(0, loc_pool(1), mem.at(1), i);
      htm.store(0, loc_pool(2), mem.at(2), i);
      htm.commit(0);
    } catch (const HtmAbort&) {
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(violation.load());
}

TEST(SimHtm, ColocatedLockSharesLineWithItsWord) {
  // A colocated lock write and its word's write must count as one line for
  // capacity purposes (they share a cache line by construction).
  HtmConfig cfg;
  cfg.l1_ways = 2;
  cfg.l1_sets = 1;  // every line maps to set 0: at most 2 distinct lines
  SimHtm htm(cfg);
  Words mem(4);
  htm.begin(0);
  htm.store(0, loc_pool(100), mem.at(0), 1);
  EXPECT_NO_THROW(htm.store(0, loc_colock(100), mem.at(1), 2));  // same line
  EXPECT_NO_THROW(htm.store(0, loc_pool(108), mem.at(2), 3));    // 2nd line
  EXPECT_THROW(htm.store(0, loc_pool(116), mem.at(3), 4), HtmAbort);  // 3rd
}

TEST(SimHtm, NontxFetchAddIsAtomicAndAbortsReaders) {
  SimHtm htm;
  Words mem(2);
  htm.begin(0);
  htm.load(0, loc_pool(1), mem.at(1));
  std::thread other([&] {
    EXPECT_EQ(htm.nontx_fetch_add(1, loc_pool(1), mem.at(1), 5), 0u);
    EXPECT_EQ(htm.nontx_fetch_add(1, loc_pool(1), mem.at(1), 5), 5u);
  });
  other.join();
  EXPECT_EQ(mem.at(1)->load(), 10u);
  EXPECT_THROW(htm.commit(0), HtmAbort);
}

TEST(SimHtm, NontxCasFailureReturnsCurrentValue) {
  SimHtm htm;
  Words mem(2);
  mem.at(0)->store(7);
  std::uint64_t expected = 3;
  EXPECT_FALSE(htm.nontx_cas(0, loc_pool(0), mem.at(0), expected, 9));
  EXPECT_EQ(expected, 7u);
  EXPECT_EQ(mem.at(0)->load(), 7u);
}

TEST(SimHtm, StaleWriterTagIsStolenByNontxRmw) {
  // A transaction registers a writer tag and aborts; before its (never
  // coming, in this scripted test) retry, a non-transactional RMW on the
  // same stripe must be able to claim the stripe.
  SimHtm htm;
  Words mem(2);
  std::atomic<bool> registered{false}, release{false};
  std::thread t1([&] {
    htm.begin(1);
    htm.store(1, loc_pool(1), mem.at(1), 5);
    registered.store(true);
    while (!release.load()) std::this_thread::yield();
    htm.cancel(1);  // cleanup happens only now; tag was stale meanwhile
  });
  while (!registered.load()) std::this_thread::yield();
  // Doom t1 first (a non-tx store aborts the transactional writer), then
  // the RMW claims the stripe even though t1 has not cleaned up yet.
  std::uint64_t expected = 0;
  EXPECT_TRUE(htm.nontx_cas(0, loc_pool(1), mem.at(1), expected, 42));
  EXPECT_EQ(mem.at(1)->load(), 42u);
  release.store(true);
  t1.join();
  // t1's buffered write must not have leaked.
  EXPECT_EQ(mem.at(1)->load(), 42u);
}

TEST(SimHtm, ReadOnlyTxnsDoNotConflictWithEachOther) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  htm.load(0, loc_pool(1), mem.at(1));
  std::thread other([&] {
    htm.begin(1);
    htm.load(1, loc_pool(1), mem.at(1));
    EXPECT_NO_THROW(htm.commit(1));
  });
  other.join();
  EXPECT_NO_THROW(htm.commit(0));
}

TEST(SimHtm, RepeatedReadsOfSameLocationAreCheap) {
  // The first touch registers the stripe; later touches skip registration.
  // This is a semantics test: the value is still conflict-protected.
  SimHtm htm;
  Words mem(2);
  htm.begin(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 0u);
  std::thread other([&] { htm.nontx_store(1, loc_pool(1), mem.at(1), 9); });
  other.join();
  // The repeated-read transaction is doomed despite the registration skip.
  EXPECT_THROW(htm.commit(0), HtmAbort);
}

// ---- Per-line memo fast path ---------------------------------------------
// The two-entry line memo skips re-registration on repeated same-line
// accesses; these tests pin down that the skipped bookkeeping never skips
// conflict detection (the five RTM properties hold on the memoized path).

TEST(SimHtm, MemoHitReadStillDetectsNontxInterference) {
  SimHtm htm;
  Words mem(4);
  htm.begin(0);
  // Two same-line loads: the second is a memo hit that skips registration.
  EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 0u);
  EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 0u);
  std::thread other([&] { htm.nontx_store(1, loc_pool(1), mem.at(1), 7); });
  other.join();
  // A further memo-hit load must still observe the doom: check_self runs
  // on every access, memoized or not.
  EXPECT_THROW(htm.load(0, loc_pool(1), mem.at(1)), HtmAbort);
  EXPECT_EQ(mem.at(1)->load(), 7u);
}

TEST(SimHtm, MemoHitReadStillDetectsWriterConflict) {
  SimHtm htm;
  Words mem(4);
  std::atomic<bool> r_ready{false}, w_done{false};
  std::atomic<bool> reader_aborted{false};
  std::thread reader([&] {
    htm.begin(1);
    htm.load(1, loc_pool(1), mem.at(1));
    htm.load(1, loc_pool(1), mem.at(1));  // warm the memo
    r_ready.store(true);
    while (!w_done.load()) std::this_thread::yield();
    try {
      htm.load(1, loc_pool(1), mem.at(1));  // memo hit; must still see doom
      htm.commit(1);
    } catch (const HtmAbort&) {
      reader_aborted.store(true);
    }
  });
  while (!r_ready.load()) std::this_thread::yield();
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 3);  // requester wins: reader doomed
  htm.commit(0);
  w_done.store(true);
  reader.join();
  EXPECT_TRUE(reader_aborted.load());
  EXPECT_EQ(mem.at(1)->load(), 3u);
}

TEST(SimHtm, MemoHitWriteStillDetectsInterference) {
  SimHtm htm;
  Words mem(8);
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(1), 1);
  std::uint64_t seen = 0xDEAD;
  std::thread other([&] { seen = htm.nontx_load(1, loc_pool(1), mem.at(1)); });
  other.join();
  EXPECT_EQ(seen, 0u);  // buffered value never leaks
  // Same line, different word: the write memo skips re-registration, but
  // the post-access check must still observe the doom.
  EXPECT_THROW(htm.store(0, loc_pool(2), mem.at(2), 2), HtmAbort);
  EXPECT_EQ(mem.at(1)->load(), 0u);
}

TEST(SimHtm, MemoHitReadsDoNotCountTowardReadCapacity) {
  HtmConfig cfg;
  cfg.max_read_lines = 4;
  SimHtm htm(cfg);
  Words mem(64);
  htm.begin(0);
  // Hammer one line, then fill the remaining capacity with distinct lines.
  for (int rep = 0; rep < 100; ++rep) htm.load(0, loc_pool(0), mem.at(0));
  for (std::uint64_t i = 1; i < 4; ++i) htm.load(0, loc_pool(i * 8), mem.at(i));
  // Re-reading tracked lines is free regardless of interleaving...
  for (int rep = 0; rep < 100; ++rep) htm.load(0, loc_pool(0), mem.at(0));
  // ...but a fifth distinct line still trips the capacity bound.
  EXPECT_THROW(htm.load(0, loc_pool(4 * 8), mem.at(4)), HtmAbort);
  EXPECT_EQ(htm.thread_stats(0).aborts[static_cast<int>(AbortCause::kCapacity)], 1u);
}

TEST(SimHtm, MemoResetAtBeginReregistersLines) {
  SimHtm htm;
  Words mem(4);
  // First transaction warms the memo on word 1's line, then commits.
  htm.begin(0);
  htm.load(0, loc_pool(1), mem.at(1));
  htm.commit(0);
  // The next transaction must re-register the line: a memo leaking across
  // begin() would leave this read untracked and the interference unseen.
  htm.begin(0);
  EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 0u);
  std::thread other([&] { htm.nontx_store(1, loc_pool(1), mem.at(1), 9); });
  other.join();
  EXPECT_THROW(htm.load(0, loc_pool(1), mem.at(1)), HtmAbort);
}

TEST(SimHtm, WriteAfterReadUpgradesCleanly) {
  SimHtm htm;
  Words mem(2);
  htm.begin(0);
  const auto v = htm.load(0, loc_pool(1), mem.at(1));
  htm.store(0, loc_pool(1), mem.at(1), v + 1);
  EXPECT_EQ(htm.load(0, loc_pool(1), mem.at(1)), 1u);
  htm.commit(0);
  EXPECT_EQ(mem.at(1)->load(), 1u);
}

TEST(SimHtm, BeginAfterCommitReusesContext) {
  SimHtm htm;
  Words mem(2);
  for (int i = 1; i <= 100; ++i) {
    htm.begin(0);
    htm.store(0, loc_pool(1), mem.at(1), static_cast<std::uint64_t>(i));
    htm.commit(0);
  }
  EXPECT_EQ(mem.at(1)->load(), 100u);
  EXPECT_EQ(htm.thread_stats(0).commits, 100u);
}

TEST(SimHtm, ManyThreadsDisjointStripesAllCommit) {
  SimHtm htm;
  Words mem(64);
  SpinBarrier barrier(4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 200; ++i) {
        htm.begin(t);
        try {
          // Thread-private words: conflicts only via stripe collisions,
          // which the default 2^14-stripe table makes rare.
          const gaddr_t a = static_cast<gaddr_t>(t) * 1024;
          htm.store(t, loc_pool(a), mem.at(static_cast<std::size_t>(t)),
                    static_cast<std::uint64_t>(i));
          htm.commit(t);
        } catch (const HtmAbort&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(mem.at(t)->load(), 199u);
}

TEST(SimHtm, StatsAggregateAcrossThreads) {
  SimHtm htm;
  Words mem(2);
  for (int t = 0; t < 3; ++t) {
    htm.begin(t);
    htm.store(t, loc_pool(static_cast<gaddr_t>(t)), mem.at(0), 1);
    htm.commit(t);
  }
  const HtmStats s = htm.aggregate_stats();
  EXPECT_EQ(s.begins, 3u);
  EXPECT_EQ(s.commits, 3u);
  htm.reset_stats();
  EXPECT_EQ(htm.aggregate_stats().begins, 0u);
}

TEST(SimHtm, ResetClearsConflictState) {
  SimHtm htm;
  Words mem(2);
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(0), 1);
  htm.cancel(0);
  htm.reset();
  // Fresh transactions work after reset.
  htm.begin(0);
  htm.store(0, loc_pool(1), mem.at(0), 2);
  htm.commit(0);
  EXPECT_EQ(mem.at(0)->load(), 2u);
}

}  // namespace
}  // namespace nvhalt::htm
