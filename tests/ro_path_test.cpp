// Tests for the read-only fast path (core/ro_path.cpp; DESIGN.md Sec. 11,
// docs/PROTOCOLS.md "Read-only fast path"): structural silence of RO
// commits (no lock traffic, no commit_seq bump, no journal records),
// counterexample interleavings where a stale snapshot read must be caught
// by validation on both engines, demotion of writing bodies, dynamic
// detection, storm suspension, and RO readers racing committing writers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/nvhalt_tm.hpp"
#include "pmem/crash_enum.hpp"
#include "runtime/retry_policy.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nvhalt {
namespace {

using test::run_threads;
using test::small_config;
using Outcome = NvHaltTm::RoAttemptOutcome;

constexpr auto kRoValidation = static_cast<std::size_t>(telemetry::RoAbortCause::kRoValidation);
constexpr auto kRoDemotion = static_cast<std::size_t>(telemetry::RoAbortCause::kRoDemotion);

NvHaltTm& nv(TmRunner& r) { return dynamic_cast<NvHaltTm&>(r.tm()); }

/// Two addresses a full cache line apart, so table-mode lock hashing (one
/// lock per line) gives each its own lock word.
struct TwoLines {
  gaddr_t x, y;
  explicit TwoLines(TmRunner& r) {
    x = r.alloc().raw_alloc(0, 2 * kWordsPerLine);
    y = x + kWordsPerLine;
  }
};

// ------------------------------------------------ structural silence

/// An RO commit must leave no trace: no lock word moves (acquire/release
/// would bump the version), no commit_seq bump, no flush/fence, and — with
/// a journal installed — not a single persistence event.
void expect_silent_commits(bool hw_engine) {
  PersistJournal journal;
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  auto& tm = nv(runner);
  TwoLines a(runner);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) {
    tx.write(a.x, 3);
    tx.write(a.y, 4);
  }));

  const std::uint64_t lock_x = tm.locks().ref(a.x).s->load();
  const std::uint64_t lock_y = tm.locks().ref(a.y).s->load();
  const std::uint64_t seq = tm.commit_seq();
  const std::uint64_t fences = runner.pool().fence_count();
  const std::uint64_t flushes = runner.pool().flush_count();
  const std::size_t journaled = journal.size();
  const std::uint64_t ro_before = tm.stats().ro_commits;

  for (int i = 0; i < 10; ++i) {
    word_t vx = 0, vy = 0;
    const auto audit = [&](Tx& tx) {
      vx = tx.read(a.x);
      vy = tx.read(a.y);
    };
    ASSERT_EQ(hw_engine ? tm.attempt_ro_hw_once(0, audit) : tm.attempt_ro_sw_once(0, audit),
              Outcome::kCommitted);
    EXPECT_EQ(vx, 3u);
    EXPECT_EQ(vy, 4u);
  }

  EXPECT_EQ(tm.locks().ref(a.x).s->load(), lock_x) << "RO commit touched a lock word";
  EXPECT_EQ(tm.locks().ref(a.y).s->load(), lock_y);
  EXPECT_EQ(tm.commit_seq(), seq) << "RO commit bumped commit_seq";
  EXPECT_EQ(runner.pool().fence_count(), fences) << "RO commit fenced";
  EXPECT_EQ(runner.pool().flush_count(), flushes) << "RO commit flushed";
  EXPECT_EQ(journal.size(), journaled) << "RO commit emitted journal records";
  EXPECT_EQ(tm.stats().ro_commits, ro_before + 10);
}

TEST(RoPathTest, SwCommitIsStructurallySilent) { expect_silent_commits(/*hw_engine=*/false); }
TEST(RoPathTest, HwCommitIsStructurallySilent) { expect_silent_commits(/*hw_engine=*/true); }

// --------------------------------------------- stale-snapshot counterexamples

/// The adversarial interleaving for the snapshot engine, mirroring
/// validation_cache_test: a writer commits between the reader's two reads
/// (distinct lock lines, so the second read cannot piggyback on the first
/// line's pre-image). The moved commit_seq forces a full revalidation at
/// the second first-access, which sees x's advanced lock version and
/// aborts before the body can hold the inconsistent {x, y} pair.
void ro_sw_writer_between_reads(bool hw_writer) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  TwoLines a(runner);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) {
    tx.write(a.x, 5);
    tx.write(a.y, 5);
  }));

  bool inconsistent_observed = false;
  int entries = 0;
  const Outcome r = tm.attempt_ro_sw_once(0, [&](Tx& tx) {
    const word_t vx = tx.read(a.x);
    if (entries++ == 0) {
      const auto move_unit = [&](Tx& wtx) {
        wtx.write(a.x, wtx.read(a.x) - 1);
        wtx.write(a.y, wtx.read(a.y) + 1);
      };
      EXPECT_TRUE(hw_writer ? tm.attempt_hw_once(1, move_unit) : tm.attempt_sw_once(1, move_unit));
    }
    const word_t vy = tx.read(a.y);  // must throw TxConflictAbort
    if (vx + vy != 10) inconsistent_observed = true;
  });
  EXPECT_EQ(r, Outcome::kAborted);
  EXPECT_FALSE(inconsistent_observed);
  EXPECT_GE(tm.telemetry().tx.taxonomy.ro_by_cause[kRoValidation], 1u);
}

TEST(RoPathTest, SwEngineCatchesSwWriterBetweenReads) {
  ro_sw_writer_between_reads(/*hw_writer=*/false);
}
TEST(RoPathTest, SwEngineCatchesHwWriterBetweenReads) {
  ro_sw_writer_between_reads(/*hw_writer=*/true);
}

/// Same interleaving against the invisible-reader hardware engine: the
/// reader's data lines are conflict-tracked even though its lock lines are
/// not, so the writer's publication dooms the attempt eagerly. The writer
/// runs on a real second thread — SimHtm (correctly) rejects opening a
/// second transaction or issuing non-transactional stores from an OS
/// thread that is already inside a hardware transaction.
TEST(RoPathTest, HwEngineCatchesWriterBetweenReads) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  TwoLines a(runner);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) {
    tx.write(a.x, 5);
    tx.write(a.y, 5);
  }));

  std::atomic<int> stage{0};
  std::thread writer([&] {
    while (stage.load(std::memory_order_acquire) < 1) std::this_thread::yield();
    EXPECT_TRUE(tm.attempt_sw_once(1, [&](Tx& wtx) {
      wtx.write(a.x, wtx.read(a.x) - 1);
      wtx.write(a.y, wtx.read(a.y) + 1);
    }));
    stage.store(2, std::memory_order_release);
  });

  bool inconsistent_observed = false;
  int entries = 0;
  const Outcome r = tm.attempt_ro_hw_once(0, [&](Tx& tx) {
    const word_t vx = tx.read(a.x);
    if (entries++ == 0) {
      stage.store(1, std::memory_order_release);
      while (stage.load(std::memory_order_acquire) < 2) std::this_thread::yield();
    }
    const word_t vy = tx.read(a.y);
    if (vx + vy != 10) inconsistent_observed = true;
  });
  stage.store(1, std::memory_order_release);  // unblock on an early abort
  writer.join();
  EXPECT_EQ(r, Outcome::kAborted);
  EXPECT_FALSE(inconsistent_observed);
  EXPECT_GE(tm.telemetry().tx.taxonomy.ro_by_cause[kRoValidation], 1u);
}

/// A writer on a disjoint line moves commit_seq — forcing one snapshot
/// extension — but must not doom the reader (no false aborts from the
/// extension machinery itself).
TEST(RoPathTest, DisjointWriterForcesExtensionNotAbort) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  TwoLines a(runner);
  const gaddr_t z = runner.alloc().raw_alloc(0, 2 * kWordsPerLine) + kWordsPerLine;
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) {
    tx.write(a.x, 5);
    tx.write(a.y, 5);
  }));

  int entries = 0;
  word_t vx = 0, vy = 0;
  const Outcome r = tm.attempt_ro_sw_once(0, [&](Tx& tx) {
    vx = tx.read(a.x);
    if (entries++ == 0) {
      EXPECT_TRUE(tm.attempt_sw_once(1, [&](Tx& wtx) { wtx.write(z, 99); }));
    }
    vy = tx.read(a.y);
  });
  EXPECT_EQ(r, Outcome::kCommitted);
  EXPECT_EQ(vx + vy, 10u);
}

// ------------------------------------------------------------- demotion

TEST(RoPathTest, WritingBodyDemotesBothEngines) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);

  EXPECT_EQ(tm.attempt_ro_sw_once(0, [&](Tx& tx) { tx.write(a, 1); }), Outcome::kDemoted);
  EXPECT_EQ(tm.attempt_ro_hw_once(0, [&](Tx& tx) { tx.write(a, 1); }), Outcome::kDemoted);
  EXPECT_EQ(tm.attempt_ro_sw_once(0, [&](Tx& tx) { (void)tx.alloc(4); }), Outcome::kDemoted);
  EXPECT_EQ(tm.telemetry().tx.taxonomy.ro_by_cause[kRoDemotion], 3u);
  EXPECT_EQ(tm.stats().ro_aborts, 3u);
  EXPECT_EQ(tm.stats().ro_commits, 0u);
}

/// A transaction *hinted* read-only whose body writes anyway must still
/// commit correctly — it is demoted to the general loop, the write lands,
/// and the demotion is visible in the taxonomy.
TEST(RoPathTest, HintedWriterStillCommitsViaGeneralLoop) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);

  ASSERT_TRUE(tm.run(0, TxMode::kReadOnly, [&](Tx& tx) { tx.write(a, 77); }));
  word_t v = 0;
  ASSERT_EQ(tm.attempt_ro_sw_once(0, [&](Tx& tx) { v = tx.read(a); }), Outcome::kCommitted);
  EXPECT_EQ(v, 77u);

  const TmStats s = tm.stats();
  EXPECT_EQ(s.ro_commits, 1u);  // only the audit above
  const auto tax = tm.telemetry().tx.taxonomy;
  EXPECT_GE(tax.ro_by_cause[kRoDemotion], 1u);
  EXPECT_EQ(tax.ro_total(), s.ro_aborts) << "sum-equals-total invariant";
}

// -------------------------------------------------- routing and gating

TEST(RoPathTest, HintedReadOnlyRoutesToFastPath) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 9); }));

  const std::uint64_t before = tm.stats().ro_commits;
  word_t v = 0;
  ASSERT_TRUE(tm.run(0, TxMode::kReadOnly, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(v, 9u);
  EXPECT_EQ(tm.stats().ro_commits, before + 1);
}

/// Unhinted transactions reach the fast path only after a streak of
/// empty-write-set commits (RoPolicy::dynamic_streak, default 8).
TEST(RoPathTest, DynamicStreakRoutesUnhintedReadOnly) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 1); }));

  word_t v = 0;
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(tm.run(0, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(tm.stats().ro_commits, 0u) << "routed before the streak threshold";

  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(tm.stats().ro_commits, 1u) << "streak of 8 should route the 9th";

  // A writing transaction resets the streak.
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 2); }));
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(tm.stats().ro_commits, 1u);
  EXPECT_EQ(v, 2u);
}

/// The ablation configurations must not route: validate_every_read exists
/// to measure the general software path, and the RO protocol leans on the
/// production locking discipline.
TEST(RoPathTest, AblationConfigsDisableRouting) {
  for (const bool every_read : {true, false}) {
    RunnerConfig cfg = small_config(TmKind::kNvHalt);
    cfg.nvhalt.validate_every_read = every_read;
    TmRunner runner(cfg);
    auto& tm = nv(runner);
    const gaddr_t a = runner.alloc().raw_alloc(0, 1);
    ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 1); }));
    word_t v = 0;
    ASSERT_TRUE(tm.run(0, TxMode::kReadOnly, [&](Tx& tx) { v = tx.read(a); }));
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(tm.stats().ro_commits, every_read ? 0u : 1u);
  }
}

TEST(RoPathTest, RoFastPathKnobDisablesRouting) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.ro_fast_path = false;
  TmRunner runner(cfg);
  auto& tm = nv(runner);
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 1); }));
  word_t v = 0;
  ASSERT_TRUE(tm.run(0, TxMode::kReadOnly, [&](Tx& tx) { v = tx.read(a); }));
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(tm.stats().ro_commits, 0u);
}

/// Storm suspension on the routing signal itself (AdaptiveBudget): a
/// window at/above the abort-rate threshold suspends admission for
/// `cooloff` eligible transactions, then routing resumes.
TEST(RoPathTest, StormSuspendsRoutingThenRecovers) {
  runtime::RoPolicy rp;
  rp.enabled = true;
  rp.window = 8;
  rp.storm_abort_rate = 0.5;
  rp.cooloff = 4;
  runtime::AdaptiveBudget b;

  for (int i = 0; i < 8; ++i) b.record_ro(rp, /*aborted=*/i % 2 == 0);  // rate 0.5
  EXPECT_EQ(b.ro_suspended(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(b.admit_ro(rp));
  EXPECT_TRUE(b.admit_ro(rp)) << "routing resumes after the cooloff";

  // A clean window does not suspend.
  for (int i = 0; i < 8; ++i) b.record_ro(rp, /*aborted=*/false);
  EXPECT_TRUE(b.admit_ro(rp));
  // Disabled policy never admits.
  rp.enabled = false;
  EXPECT_FALSE(b.admit_ro(rp));
}

// -------------------------------------------- footprint / index migration

/// More unique lines than ThreadCtx::kRoLinearScanMax: the unique-line set
/// must migrate into the hash index mid-transaction with no lost entries
/// (re-reads of early lines still memo-hit and validate).
TEST(RoPathTest, LargeFootprintMigratesToIndex) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  constexpr std::size_t kLines = 48;  // > kRoLinearScanMax == 32
  const gaddr_t base = runner.alloc().raw_alloc_large(kLines * kWordsPerLine);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) {
    for (std::size_t i = 0; i < kLines; ++i)
      tx.write(base + i * kWordsPerLine, static_cast<word_t>(i + 1));
  }));

  std::uint64_t sum = 0;
  ASSERT_EQ(tm.attempt_ro_sw_once(0,
                                  [&](Tx& tx) {
                                    sum = 0;
                                    for (std::size_t i = 0; i < kLines; ++i)
                                      sum += tx.read(base + i * kWordsPerLine);
                                    // Second sweep: every line is now a
                                    // memo/index hit.
                                    for (std::size_t i = 0; i < kLines; ++i)
                                      sum += tx.read(base + i * kWordsPerLine);
                                  }),
            Outcome::kCommitted);
  EXPECT_EQ(sum, kLines * (kLines + 1));  // 2 * sum(1..kLines)
}

// ------------------------------------------------- empty durable prefix

/// The crash-enumeration view of the structural-silence invariant: an
/// RO-only phase appends nothing to the persistence journal, so every
/// crash image enumerable from that phase is exactly the pre-phase image.
TEST(RoPathTest, RoOnlyPhaseLeavesEmptyDurablePrefix) {
  PersistJournal journal;
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  auto& tm = nv(runner);
  constexpr std::size_t kSlots = 16;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i)
    ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(arr + i, i); }));

  journal.clear();
  std::uint64_t sum = 0;
  for (int round = 0; round < 32; ++round) {
    ASSERT_TRUE(tm.run(0, TxMode::kReadOnly, [&](Tx& tx) {
      sum = 0;
      for (std::size_t i = 0; i < kSlots; ++i) sum += tx.read(arr + i);
    }));
    EXPECT_EQ(sum, kSlots * (kSlots - 1) / 2);
  }
  EXPECT_GE(tm.stats().ro_commits, 32u);
  EXPECT_EQ(journal.size(), 0u) << "RO-only phase journaled persistence events";

  // Enumerating the (empty) phase trace yields a single boundary whose
  // image contains no durable stores — the crash outcome is the pre-phase
  // state no matter where in the RO phase the crash lands.
  CrashEnumerator en(journal.events(), CrashEnumOptions{});
  const auto failure = en.run([](const CrashImage& image, std::size_t, std::uint64_t,
                                 std::string* why) {
    if (!image.words.empty()) {
      if (why) *why = "RO-only trace materialized durable stores";
      return false;
    }
    return true;
  });
  EXPECT_FALSE(failure.has_value());
}

// ------------------------------------------ epoch-based node reclamation

/// Regression for epoch-based reclamation (DESIGN.md Sec. 12): a live RO
/// snapshot pins the reclamation epoch, so a node freed under it must not
/// be physically recycled until the snapshot ends. Pre-EBR the committed
/// free went straight back to the writer's free list and the very next
/// same-class allocation handed the still-readable block out again — a
/// use-after-free against the lock-free snapshot. With the limbo list the
/// re-allocation comes from fresh space while the reader is pinned, and
/// the block returns to circulation only after the reader passes a
/// quiescent point (its next transaction, or deregistration).
TEST(RoPathTest, PinnedRoSnapshotBlocksNodeRecycling) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = nv(runner);
  constexpr std::size_t kNode = 4;

  gaddr_t victim = 0;
  ASSERT_TRUE(tm.run(1, [&](Tx& tx) {
    victim = tx.alloc(kNode);
    tx.write(victim, 0xA11Eu);
  }));

  gaddr_t replacement = 0;
  int entries = 0;
  const Outcome r = tm.attempt_ro_sw_once(0, [&](Tx& tx) {
    const word_t v = tx.read(victim);
    if (entries++ == 0) {
      EXPECT_EQ(v, 0xA11Eu);
      // A writer frees the node while the snapshot is live. The free and
      // the follow-up allocation carry no data writes, so neither moves a
      // lock word and the snapshot stays valid throughout.
      ASSERT_TRUE(tm.attempt_sw_once(1, [&](Tx& wtx) { wtx.free(victim, kNode); }));
      ASSERT_TRUE(tm.attempt_sw_once(1, [&](Tx& wtx) { replacement = wtx.alloc(kNode); }));
      EXPECT_NE(replacement, victim) << "freed node recycled under a pinned RO snapshot";
      EXPECT_GE(runner.alloc().stats().limbo, 1u);
      // The snapshot began before the free committed: the node's contents
      // must still be readable.
      EXPECT_EQ(tx.read(victim), 0xA11Eu);
    }
  });
  EXPECT_EQ(r, Outcome::kCommitted);
  const AllocStats mid = runner.alloc().stats();
  EXPECT_GE(mid.retired, 1u);
  EXPECT_GE(mid.limbo, 1u);

  // QSBR liveness: the reader's reservation persists past the snapshot
  // and catches up at its next attempt boundary (alloc/ebr.hpp). One
  // empty transaction on the reader thread is that quiescent point.
  ASSERT_TRUE(tm.attempt_sw_once(0, [&](Tx&) {}));

  // Reader quiesced: the next committed mutator reclaims the limbo prefix...
  ASSERT_TRUE(tm.attempt_sw_once(1, [&](Tx& wtx) {
    const gaddr_t scratch = wtx.alloc(kNode);
    wtx.free(scratch, kNode);
  }));
  EXPECT_GT(runner.alloc().stats().reclaimed, mid.reclaimed);

  // ...and the victim is back in circulation.
  gaddr_t reused = 0;
  ASSERT_TRUE(tm.attempt_sw_once(1, [&](Tx& wtx) { reused = wtx.alloc(kNode); }));
  EXPECT_EQ(reused, victim) << "reclaimed node never returned to the free lists";
}

// ---------------------------------------------------- concurrent stress

/// RO readers race committing writers across both paths. Named to match
/// the tsan-concurrency preset filter (CMakePresets.json). Writers do
/// zero-sum transfers; hinted RO audits must never observe a nonzero sum,
/// whether they commit on the fast path or after demotion.
class RoPathStress : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(WriterPaths, RoPathStress, ::testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "SwPinnedWriters" : "HybridWriters";
                         });

TEST_P(RoPathStress, RoReadersNeverObserveTornSums) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  if (GetParam()) cfg.nvhalt.htm_attempts = 0;  // all writers on the sw path
  TmRunner runner(cfg);
  auto& tm = nv(runner);
  constexpr std::size_t kSlots = 24;
  constexpr int kThreads = 4;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);

  std::atomic<std::uint64_t> violations{0};
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 131 + 17);
    for (int i = 0; i < 300; ++i) {
      if (rng.next_bool(0.4)) {
        const gaddr_t a = arr + rng.next_bounded(kSlots);
        const gaddr_t b = arr + rng.next_bounded(kSlots);
        tm.run(tid, [&](Tx& tx) {
          tx.write(a, tx.read(a) - 1);
          tx.write(b, tx.read(b) + 1);
        });
      } else {
        tm.run(tid, TxMode::kReadOnly, [&](Tx& tx) {
          std::int64_t sum = 0;
          for (std::size_t s = 0; s < kSlots; ++s)
            sum += static_cast<std::int64_t>(tx.read(arr + s));
          if (sum != 0) violations.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(violations.load(), 0u);

  const TmStats s = tm.stats();
  EXPECT_GT(s.ro_commits, 0u) << "stress never exercised the fast path";
  EXPECT_EQ(s.commits, s.hw_commits + s.sw_commits + s.ro_commits)
      << "every commit attributed to exactly one path";
  EXPECT_EQ(tm.telemetry().tx.taxonomy.ro_total(), s.ro_aborts);
}

}  // namespace
}  // namespace nvhalt
