// Deterministic replays of the paper's counterexample executions
// (Figs. 2, 3, 4). Each figure motivates one piece of NV-HALT's hardware
// instrumentation; the tests disable exactly that piece via debug knobs and
// script the interleaving with direct lock/HTM manipulation, showing that
// the violation appears — and disappears with the instrumentation restored.
#include <gtest/gtest.h>

#include "core/nvhalt_tm.hpp"
#include "htm/htm_types.hpp"
#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::small_config;

RunnerConfig fig_config(bool hw_read_checks, bool hw_acquire_locks,
                        bool validate_every_read) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.hw_read_check_locks = hw_read_checks;
  cfg.nvhalt.hw_acquire_locks = hw_acquire_locks;
  cfg.nvhalt.validate_every_read = validate_every_read;
  cfg.nvhalt.max_sw_retries = 8;  // never hang a scripted test
  return cfg;
}

// Each figure is replayed under both software-path validation modes: the
// default commit_seq snapshot cache and the paper's literal per-read full
// revalidation. The violations (and their fixes) are hardware-path
// phenomena, so the outcome must be identical in both modes.
class OpacityCounterexample : public ::testing::TestWithParam<bool> {
 protected:
  bool validate_every_read() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Validation, OpacityCounterexample, ::testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "EveryRead" : "CachedValidation";
                         });

/// Manually plays the software-path writer of Figs. 2/3 up to the point
/// where it holds its locks and has published x but not yet y — the window
/// in which an uninstrumented hardware reader sees an inconsistent state.
struct MidCommitWriter {
  NvHaltTm& nv;
  gaddr_t x, y;
  std::uint64_t lx_word = 0, ly_word = 0;
  static constexpr int kTid = 1;

  void lock_and_write_x() {
    auto lkx = nv.locks().ref(x);
    auto lky = nv.locks().ref(y);
    lx_word = nv.htm().nontx_load(kTid, lkx.loc, lkx.s);
    std::uint64_t e = lx_word;
    ASSERT_TRUE(nv.htm().nontx_cas(kTid, lkx.loc, lkx.s, e, lockword::acquired(lx_word, kTid)));
    ly_word = nv.htm().nontx_load(kTid, lky.loc, lky.s);
    e = ly_word;
    ASSERT_TRUE(nv.htm().nontx_cas(kTid, lky.loc, lky.s, e, lockword::acquired(ly_word, kTid)));
    // x := x - 1 published; y not yet: the zero-sum invariant is broken in
    // memory but protected by the held locks.
    const word_t vx = nv.pool().load(x);
    nv.htm().nontx_store(kTid, htm::loc_pool(x), nv.pool().word_ptr(x), vx - 1);
  }

  void write_y_and_release() {
    const word_t vy = nv.pool().load(y);
    nv.htm().nontx_store(kTid, htm::loc_pool(y), nv.pool().word_ptr(y), vy + 1);
    auto lkx = nv.locks().ref(x);
    auto lky = nv.locks().ref(y);
    nv.htm().nontx_store(kTid, lkx.loc, lkx.s,
                         lockword::released(lockword::acquired(lx_word, kTid)));
    nv.htm().nontx_store(kTid, lky.loc, lky.s,
                         lockword::released(lockword::acquired(ly_word, kTid)));
  }
};

TEST_P(OpacityCounterexample, Fig2_UninstrumentedHwReadsSeeInconsistentState) {
  TmRunner runner(fig_config(/*hw_read_checks=*/false, /*hw_acquire_locks=*/true,
                             validate_every_read()));
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);

  MidCommitWriter writer{nv, x, y};
  writer.lock_and_write_x();

  // Hardware reader ignores the locks: it commits a snapshot in which x is
  // new but y is old — the Fig. 2 opacity violation.
  std::int64_t sum = 0;
  const bool committed = nv.attempt_hw_once(0, [&](Tx& tx) {
    sum = static_cast<std::int64_t>(tx.read(x)) + static_cast<std::int64_t>(tx.read(y));
  });
  EXPECT_TRUE(committed);
  EXPECT_NE(sum, 0);  // inconsistent: no sequential execution produces this

  writer.write_y_and_release();
}

TEST_P(OpacityCounterexample, Fig3_LockSubscribingHwReadsAbortInstead) {
  TmRunner runner(fig_config(/*hw_read_checks=*/true, /*hw_acquire_locks=*/true,
                             validate_every_read()));
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);

  MidCommitWriter writer{nv, x, y};
  writer.lock_and_write_x();

  // With reads instrumented to check the lock (Fig. 3), the hardware
  // transaction aborts rather than observing the torn state.
  bool body_saw_torn_state = false;
  bool committed = true;
  try {
    committed = nv.attempt_hw_once(0, [&](Tx& tx) {
      const std::int64_t sum =
          static_cast<std::int64_t>(tx.read(x)) + static_cast<std::int64_t>(tx.read(y));
      body_saw_torn_state = sum != 0;
    });
  } catch (const htm::HtmAbort& a) {
    committed = false;
    EXPECT_EQ(a.cause, htm::AbortCause::kExplicit);  // xabort on locked lock
  }
  EXPECT_FALSE(committed);
  EXPECT_FALSE(body_saw_torn_state);

  writer.write_y_and_release();

  // Once the writer is done, the hardware path reads a consistent state.
  std::int64_t sum = 1;
  EXPECT_TRUE(nv.attempt_hw_once(0, [&](Tx& tx) {
    sum = static_cast<std::int64_t>(tx.read(x)) + static_cast<std::int64_t>(tx.read(y));
  }));
  EXPECT_EQ(sum, 0);
}

// Fig. 4: in the persistent setting, reading locks is NOT enough — a
// hardware transaction whose writes are published at xend but not yet
// persisted must keep them protected (via locks held past xend), or a
// later transaction can read and durably commit values derived from data
// that a crash will revert.
TEST_P(OpacityCounterexample, Fig4_PersistWithoutHwLocksViolatesDurability) {
  TmRunner runner(fig_config(/*hw_read_checks=*/true, /*hw_acquire_locks=*/false,
                             validate_every_read()));
  auto& tm = runner.tm();
  auto& pool = runner.pool();
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);

  // T1 writes x = 7 in hardware; the crash coordinator fires at its first
  // post-xend persistence operation, so x is published but never durable.
  CrashCoordinator coord;
  pool.set_crash_coordinator(&coord);
  coord.trip();
  auto& nv = dynamic_cast<NvHaltTm&>(tm);
  bool t1_unwound = false;
  try {
    nv.attempt_hw_once(0, [&](Tx& tx) { tx.write(x, 7); });
  } catch (const SimulatedPowerFailure&) {
    t1_unwound = true;
  }
  ASSERT_TRUE(t1_unwound);
  EXPECT_EQ(pool.load(x), 7u);  // published in volatile memory...
  EXPECT_EQ(pool.read_durable_record(x).cur, 0u);  // ...but not durable
  coord.reset();

  // T2 reads the non-durable x (no lock protects it!) and durably commits
  // y = x + 1 on the software path.
  bool t2_committed = nv.attempt_sw_once(1, [&](Tx& tx) { tx.write(y, tx.read(x) + 1); });
  ASSERT_TRUE(t2_committed);

  // Power failure; T1's write to x was never persisted.
  pool.set_crash_coordinator(nullptr);
  pool.crash(CrashPolicy{0.0, 7});
  tm.recover_data();
  tm.rebuild_allocator({});

  word_t rx = 0, ry = 0;
  tm.run(0, [&](Tx& tx) {
    rx = tx.read(x);
    ry = tx.read(y);
  });
  // The violation: y == 8 implies some execution wrote x == 7 before it,
  // but x == 0 after recovery. No sequential durable history explains this.
  EXPECT_EQ(rx, 0u);
  EXPECT_EQ(ry, 8u);
}

TEST_P(OpacityCounterexample, Fig4Fixed_HwLocksBlockNonDurableReads) {
  TmRunner runner(fig_config(/*hw_read_checks=*/true, /*hw_acquire_locks=*/true,
                             validate_every_read()));
  auto& tm = runner.tm();
  auto& pool = runner.pool();
  auto& nv = dynamic_cast<NvHaltTm&>(tm);
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);

  CrashCoordinator coord;
  pool.set_crash_coordinator(&coord);
  coord.trip();
  bool t1_unwound = false;
  try {
    nv.attempt_hw_once(0, [&](Tx& tx) { tx.write(x, 7); });
  } catch (const SimulatedPowerFailure&) {
    t1_unwound = true;
  }
  ASSERT_TRUE(t1_unwound);
  EXPECT_EQ(pool.load(x), 7u);
  coord.reset();
  pool.set_crash_coordinator(nullptr);

  // With hardware-assisted locking, x's lock is still held by the dead T1:
  // T2 cannot read the non-durable value on either path.
  bool t2_committed = tm.run(1, [&](Tx& tx) { tx.write(y, tx.read(x) + 1); });
  EXPECT_FALSE(t2_committed);  // bounded retries exhausted against the lock

  pool.crash(CrashPolicy{0.0, 7});
  tm.recover_data();
  tm.rebuild_allocator({});

  word_t rx = 1, ry = 1;
  tm.run(0, [&](Tx& tx) {
    rx = tx.read(x);
    ry = tx.read(y);
  });
  // Durably consistent: neither T1's x nor any derived y survived.
  EXPECT_EQ(rx, 0u);
  EXPECT_EQ(ry, 0u);
}

}  // namespace
}  // namespace nvhalt
