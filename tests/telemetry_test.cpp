// Telemetry layer tests: PowHistogram bucketing, TraceRing ordering /
// wraparound / overflow-drop accounting (including a TSan-targeted
// concurrent-writer suite), abort-cause decoding into the per-thread
// taxonomy, the taxonomy-vs-stats agreement invariant across all five TMs,
// AdaptiveBudget window introspection, MetricsRegistry JSON/Prometheus
// export, and the raw-trace/chrome-trace serialization round trip (which
// works at any NVHALT_TELEMETRY level — rings are constructed directly).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

#include "telemetry/histogram.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_io.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

namespace tel = telemetry;
using tel::EventKind;
using tel::PowHistogram;
using tel::TraceEvent;
using tel::TraceRing;

// ---------------------------------------------------------------- histogram

TEST(PowHistogram, BucketsArePowersOfTwo) {
  EXPECT_EQ(PowHistogram::bucket_of(0), 0);
  EXPECT_EQ(PowHistogram::bucket_of(1), 1);
  EXPECT_EQ(PowHistogram::bucket_of(2), 2);
  EXPECT_EQ(PowHistogram::bucket_of(3), 2);
  EXPECT_EQ(PowHistogram::bucket_of(4), 3);
  EXPECT_EQ(PowHistogram::bucket_of(~std::uint64_t{0}), 64);

  EXPECT_EQ(PowHistogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(PowHistogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(PowHistogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(PowHistogram::bucket_upper_bound(64), ~std::uint64_t{0});
}

TEST(PowHistogram, RecordMergeAndQuantiles) {
  PowHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.used_buckets(), 0);
  EXPECT_EQ(h.quantile_bound(0.5), 0u);

  for (std::uint64_t v : {1u, 1u, 2u, 3u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 5.0);
  EXPECT_EQ(h.bucket_count(1), 2u);  // the two 1s
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket_count(7), 1u);  // 100 in [64, 127]
  EXPECT_EQ(h.used_buckets(), 8);
  EXPECT_EQ(h.quantile_bound(0.4), 1u);    // 2 of 5 <= bucket 1's bound
  EXPECT_EQ(h.quantile_bound(0.5), 3u);    // needs bucket 2 ({2, 3})
  EXPECT_EQ(h.quantile_bound(0.99), 127u); // needs the 100

  PowHistogram other;
  other.record(100);
  h.add(other);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(7), 2u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.used_buckets(), 0);
}

// ---------------------------------------------------------------- trace ring

TEST(TraceRing, PreservesOrderBelowCapacity) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i)
    ring.push(EventKind::kHwAttempt, /*cause=*/0xFF, /*tid=*/7, i, /*ticks=*/1000 + i);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].kind, EventKind::kHwAttempt);
    EXPECT_EQ(events[i].tid, 7u);
    EXPECT_EQ(events[i].arg, i);
    EXPECT_EQ(events[i].ticks, 1000 + i);
    EXPECT_EQ(events[i].cause, 0xFF);
  }
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.push(EventKind::kFence, 0xFF, 0, i, i);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);  // exact: pushed - capacity

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].arg, 6 + i);

  ring.clear();
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, HwAbortCarriesCauseByte) {
  TraceRing ring(8);
  ring.push(EventKind::kHwAbort, static_cast<std::uint8_t>(htm::AbortCause::kCapacity),
            3, /*code=*/0xAB, 1);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kHwAbort);
  EXPECT_EQ(events[0].cause, static_cast<std::uint8_t>(htm::AbortCause::kCapacity));
  EXPECT_EQ(events[0].arg, 0xABu);
}

// Concurrent single producer vs a racing snapshotter. The snapshot contract:
// never torn — every returned event was genuinely pushed, in order. Runs
// under the tsan-concurrency preset (suite name is in its filter).
TEST(TraceRingConcurrency, SnapshotsAreNeverTorn) {
  TraceRing ring(64);
  constexpr std::uint64_t kPushes = 20000;
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPushes; ++i)
      ring.push(EventKind::kSwAttempt, 0xFF, 1, i, /*ticks=*/i);
    done.store(true, std::memory_order_release);
  });

  // do-while: even if the producer outruns us entirely, validate at least
  // one snapshot.
  std::uint64_t snapshots = 0;
  std::string violation;
  do {
    const auto events = ring.snapshot();
    ++snapshots;
    // Survivors are a contiguous, strictly increasing slice of the pushed
    // sequence; a torn read would break kind, tid, or the arg progression.
    for (std::size_t i = 0; i < events.size() && violation.empty(); ++i) {
      if (events[i].kind != EventKind::kSwAttempt || events[i].tid != 1 ||
          events[i].arg >= kPushes) {
        violation = "torn event at snapshot index " + std::to_string(i);
      } else if (i > 0 && events[i].arg != events[i - 1].arg + 1) {
        violation = "non-contiguous args " + std::to_string(events[i - 1].arg) +
                    " -> " + std::to_string(events[i].arg);
      }
    }
  } while (violation.empty() && !done.load(std::memory_order_acquire));
  producer.join();
  EXPECT_TRUE(violation.empty()) << violation;
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(ring.pushed(), kPushes);
  EXPECT_EQ(ring.dropped(), kPushes - ring.capacity());
  const auto final_events = ring.snapshot();
  ASSERT_EQ(final_events.size(), ring.capacity());
  EXPECT_EQ(final_events.back().arg, kPushes - 1);
}

TEST(TraceRingConcurrency, BufferCollectGathersPerTidRings) {
  auto& buf = tel::TraceBuffer::instance();
  buf.clear();
  buf.ring(0).push(EventKind::kTxBegin, 0xFF, 0, 0, 1);
  buf.ring(2).push(EventKind::kTxBegin, 0xFF, 2, 0, 2);
  buf.ring(2).push(EventKind::kSwCommit, 0xFF, 2, 0, 3);

  const auto threads = buf.collect();
  ASSERT_EQ(threads.size(), 2u);
  EXPECT_EQ(threads[0].tid, 0);
  EXPECT_EQ(threads[0].events.size(), 1u);
  EXPECT_EQ(threads[1].tid, 2);
  EXPECT_EQ(threads[1].pushed, 2u);
  EXPECT_EQ(threads[1].dropped, 0u);
  buf.clear();
  EXPECT_TRUE(buf.collect().empty());
}

// -------------------------------------------------------- abort taxonomy

TEST(AbortTaxonomy, RecordHwAbortKeepsAllViewsInLockstep) {
  runtime::TxThreadState ts;
  ts.record_hw_abort(0, htm::AbortCause::kConflict);
  ts.record_hw_abort(0, htm::AbortCause::kCapacity);
  ts.record_hw_abort(0, htm::AbortCause::kConflict);
  ts.record_hw_abort(0, htm::AbortCause::kExplicit, /*code=*/0x42);

  EXPECT_EQ(ts.stats.hw_aborts, 4u);
  EXPECT_EQ(ts.tel.taxonomy.hw_total(), 4u);  // never loses history
  EXPECT_EQ(ts.tel.taxonomy.hw_by_cause[0], 2u);  // conflict
  EXPECT_EQ(ts.tel.taxonomy.hw_by_cause[1], 1u);  // capacity
  EXPECT_EQ(ts.tel.taxonomy.hw_by_cause[2], 1u);  // explicit
  EXPECT_EQ(ts.last_hw_abort, htm::AbortCause::kExplicit);
}

TEST(AbortTaxonomy, CapacityAbortsAreDecoded) {
  RunnerConfig cfg = test::small_config(TmKind::kNvHalt);
  cfg.htm.l1_ways = 1;
  cfg.htm.l1_sets = 1;  // any two distinct written lines overflow
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const gaddr_t b = runner.alloc().raw_alloc_large(kWordsPerLine * 4);

  tm.run(0, [&](Tx& tx) {
    tx.write(a, 1);
    tx.write(b + kWordsPerLine * 2, 2);  // different line, different set slot
  });

  const TmStats stats = tm.stats();
  const tel::TmTelemetry t = tm.telemetry();
  EXPECT_GT(stats.hw_aborts, 0u);
  EXPECT_GT(t.tx.taxonomy.hw_by_cause[static_cast<std::size_t>(htm::AbortCause::kCapacity)], 0u);
  EXPECT_EQ(t.tx.taxonomy.hw_total(), stats.hw_aborts);
}

TEST(AbortTaxonomy, SpuriousAbortsAreDecoded) {
  RunnerConfig cfg = test::small_config(TmKind::kNvHalt);
  cfg.htm.spurious_abort_prob = 1.0;  // every hardware access aborts
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);

  tm.run(0, [&](Tx& tx) { tx.write(a, 7); });

  const TmStats stats = tm.stats();
  const tel::TmTelemetry t = tm.telemetry();
  EXPECT_GT(stats.hw_aborts, 0u);
  EXPECT_EQ(t.tx.taxonomy.hw_by_cause[static_cast<std::size_t>(htm::AbortCause::kSpurious)],
            stats.hw_aborts);
  EXPECT_EQ(t.tx.taxonomy.hw_total(), stats.hw_aborts);
}

class TaxonomyAgreementTest : public testing::TestWithParam<TmKind> {};

// The acceptance-criteria invariant, per TM under real contention: the
// taxonomy's per-cause sum equals the aggregated hw_aborts counter exactly,
// and the mirrored sw/user tallies equal their stats counterparts.
TEST_P(TaxonomyAgreementTest, TaxonomySumsMatchStatsExactly) {
  TmRunner runner(test::small_config(GetParam()));
  auto& tm = runner.tm();
  std::vector<gaddr_t> accounts;
  for (int i = 0; i < 4; ++i) accounts.push_back(runner.alloc().raw_alloc(0, 1));

  test::run_threads(4, [&](int t) {
    Xoshiro256 rng(0x7E1E + static_cast<std::uint64_t>(t));
    for (int i = 0; i < 200; ++i) {
      const std::size_t from = rng.next_bounded(accounts.size());
      std::size_t to = rng.next_bounded(accounts.size() - 1);
      if (to >= from) ++to;
      tm.run(t, [&](Tx& tx) {
        const word_t vf = tx.read(accounts[from]);
        const word_t vt = tx.read(accounts[to]);
        tx.write(accounts[from], vf + 1);
        tx.write(accounts[to], vt + 1);
      });
    }
  });

  const TmStats stats = tm.stats();
  const tel::TmTelemetry t = tm.telemetry();
  EXPECT_EQ(t.tx.taxonomy.hw_total(), stats.hw_aborts);
  EXPECT_EQ(t.tx.taxonomy.sw_aborts, stats.sw_aborts);
  EXPECT_EQ(t.tx.taxonomy.user_aborts, stats.user_aborts);
  EXPECT_LE(t.tx.write_set_size.count(), stats.commits);  // at most one per commit

  tm.reset_stats();
  EXPECT_EQ(tm.telemetry().tx.taxonomy.hw_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTms, TaxonomyAgreementTest, testing::ValuesIn(test::all_kinds()),
                         test::kind_param_name);

// ------------------------------------------------------ adaptive introspection

TEST(AdaptiveBudgetStats, WindowCountersAreReadable) {
  runtime::PathPolicy p;
  p.htm_attempts = 8;
  p.adaptive.enabled = true;
  p.adaptive.window = 16;
  runtime::AdaptiveBudget a;
  EXPECT_EQ(a.window_attempts(), 0u);
  EXPECT_DOUBLE_EQ(a.window_abort_rate(), 0.0);
  EXPECT_EQ(a.current_budget(p), 8);

  a.record(p, /*aborted=*/true);
  a.record(p, /*aborted=*/true);
  a.record(p, /*aborted=*/false);
  EXPECT_EQ(a.window_attempts(), 3u);
  EXPECT_EQ(a.window_aborts(), 2u);
  EXPECT_DOUBLE_EQ(a.window_abort_rate(), 2.0 / 3.0);
}

// ------------------------------------------------------------ metrics export

TEST(MetricsRegistry, SnapshotExportsAllFiveTmsAndPool) {
  std::vector<std::unique_ptr<TmRunner>> runners;
  tel::MetricsRegistry reg;
  for (const TmKind kind : test::all_kinds()) {
    runners.push_back(std::make_unique<TmRunner>(test::small_config(kind)));
    TmRunner& r = *runners.back();
    const gaddr_t a = r.alloc().raw_alloc(0, 1);
    for (int i = 0; i < 10; ++i)
      r.tm().run(0, [&](Tx& tx) { tx.write(a, static_cast<word_t>(i)); });
    reg.add_tm(r.tm());
  }
  reg.add_pool(runners.front()->pool(), "nvhalt-pool");

  const tel::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.tms.size(), 5u);
  ASSERT_EQ(snap.pools.size(), 1u);
  for (const tel::TmMetrics& m : snap.tms) {
    EXPECT_GE(m.stats.commits, 10u);
    // The acceptance-criteria agreement check, through the export surface.
    EXPECT_EQ(m.tel.tx.taxonomy.hw_total(), m.stats.hw_aborts);
    EXPECT_EQ(m.tel.tx.taxonomy.sw_aborts, m.stats.sw_aborts);
  }
  EXPECT_GT(snap.pools[0].flush_count, 0u);
  EXPECT_GT(snap.pools[0].fence_count, 0u);
  EXPECT_GT(snap.pools[0].fence_lines.count(), 0u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\":\"nvhalt-metrics-v1\""), std::string::npos);
  for (const TmKind kind : test::all_kinds())
    EXPECT_NE(json.find(std::string("\"name\":\"") + tm_kind_name(kind) + "\""),
              std::string::npos);
  EXPECT_NE(json.find("\"abort_taxonomy\""), std::string::npos);
  EXPECT_NE(json.find("\"nvhalt-pool\""), std::string::npos);
  EXPECT_NE(json.find("\"fence_group_count\""), std::string::npos);
  EXPECT_NE(json.find("\"fence_combined_count\""), std::string::npos);
  EXPECT_NE(json.find("\"group_batch_fences\""), std::string::npos);
  EXPECT_NE(json.find("\"combine_wait_spins\""), std::string::npos);
  // Balanced braces (strings in the report contain no escapes).
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE nvhalt_commits_total counter"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_commits_total{tm=\"NV-HALT\",path=\"hw\"}"), std::string::npos);
  EXPECT_NE(prom.find("cause=\"conflict\""), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_write_set_words_count{tm=\"Trinity\"}"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_pool_fences_total{pool=\"nvhalt-pool\"}"), std::string::npos);
  // Pool counter families must be declared, not scraped as untyped.
  EXPECT_NE(prom.find("# TYPE nvhalt_pool_flushes_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nvhalt_pool_fences_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nvhalt_pool_flush_dedup_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nvhalt_fence_groups_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nvhalt_fence_combined_total counter"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_fence_combined_total{pool=\"nvhalt-pool\"}"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_pool_group_batch_fences_count{pool=\"nvhalt-pool\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(MetricsRegistry, AllocLedgerExportsAndBalances) {
  TmRunner runner(test::small_config(TmKind::kNvHalt));
  tel::MetricsRegistry reg;
  reg.add_alloc(runner.alloc(), "nvhalt-alloc");

  // Churn: allocate a batch, free it, allocate again — enough traffic to
  // retire blocks into limbo and reclaim some of them.
  std::vector<gaddr_t> blocks;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) {
      blocks.clear();
      for (int i = 0; i < 6; ++i) blocks.push_back(tx.alloc(4));
    }));
    ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) {
      for (const gaddr_t b : blocks) tx.free(b, 4);
    }));
  }

  const tel::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.allocs.size(), 1u);
  const tel::AllocMetrics& a = snap.allocs[0];
  EXPECT_GE(a.stats.allocs, 24u);
  EXPECT_GE(a.stats.frees, 24u);
  EXPECT_GT(a.stats.retired, 0u);
  // The reclamation ledger must balance: every retired block is either
  // already reclaimed or still in limbo.
  EXPECT_EQ(a.stats.retired, a.stats.reclaimed + a.stats.limbo);
  if (a.stats.reclaimed > 0) {
    EXPECT_EQ(a.reclaim_latency_ns.count(), a.stats.reclaimed);
  }
  EXPECT_GE(a.global_epoch, 1u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\":\"nvhalt-alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"limbo\":"), std::string::npos);
  EXPECT_NE(json.find("\"orphans_swept\":"), std::string::npos);
  EXPECT_NE(json.find("\"reclaim_latency_ns\""), std::string::npos);
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("nvhalt_alloc_retired_total{alloc=\"nvhalt-alloc\"}"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_alloc_limbo_depth{alloc=\"nvhalt-alloc\"}"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_alloc_orphans_swept_total{alloc=\"nvhalt-alloc\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("nvhalt_alloc_reclaim_latency_ns_count{alloc=\"nvhalt-alloc\"}"),
            std::string::npos);
}

// ------------------------------------------------------------- trace IO

tel::TraceDump sample_dump() {
  tel::TraceDump dump;
  dump.level = 1;
  dump.ticks_per_us = 2.0;
  tel::ThreadTrace t;
  t.tid = 3;
  t.pushed = 5;
  t.dropped = 1;
  t.events.push_back({100, 0, EventKind::kTxBegin, 0xFF, 3});
  t.events.push_back({110, 0, EventKind::kHwAttempt, 0xFF, 3});
  t.events.push_back({120, 0x42, EventKind::kHwAbort,
                      static_cast<std::uint8_t>(htm::AbortCause::kConflict), 3});
  t.events.push_back({130, 9, EventKind::kSwCommit, 0xFF, 3});
  dump.threads.push_back(std::move(t));
  return dump;
}

TEST(TraceIo, RawFormatRoundTrips) {
  const tel::TraceDump dump = sample_dump();
  std::stringstream ss;
  tel::write_raw_trace(ss, dump);

  tel::TraceDump back;
  std::string err;
  ASSERT_TRUE(tel::read_raw_trace(ss, back, &err)) << err;
  EXPECT_EQ(back.level, 1);
  EXPECT_DOUBLE_EQ(back.ticks_per_us, 2.0);
  ASSERT_EQ(back.threads.size(), 1u);
  EXPECT_EQ(back.threads[0].tid, 3);
  EXPECT_EQ(back.threads[0].pushed, 5u);
  EXPECT_EQ(back.threads[0].dropped, 1u);
  ASSERT_EQ(back.threads[0].events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.threads[0].events[i].kind, dump.threads[0].events[i].kind);
    EXPECT_EQ(back.threads[0].events[i].ticks, dump.threads[0].events[i].ticks);
    EXPECT_EQ(back.threads[0].events[i].arg, dump.threads[0].events[i].arg);
    EXPECT_EQ(back.threads[0].events[i].cause, dump.threads[0].events[i].cause);
  }
  EXPECT_EQ(back.total_events(), 4u);
  EXPECT_EQ(back.total_dropped(), 1u);
}

TEST(TraceIo, MalformedInputIsRejectedWithReason) {
  tel::TraceDump dump;
  std::string err;
  {
    std::stringstream ss("bogus\n");
    EXPECT_FALSE(tel::read_raw_trace(ss, dump, &err));
    EXPECT_NE(err.find("bad header"), std::string::npos);
  }
  {
    std::stringstream ss("# nvhalt-trace-v1 level=1 ticks_per_us=1\n"
                         "# ring tid=0 pushed=1 dropped=0\n"
                         "100 not-a-kind 0 0 -\n");
    EXPECT_FALSE(tel::read_raw_trace(ss, dump, &err));
    EXPECT_NE(err.find("unknown event kind"), std::string::npos);
  }
  {
    std::stringstream ss("# nvhalt-trace-v1 level=1 ticks_per_us=1\n"
                         "100 kTxBegin 0 0 -\n");
    EXPECT_FALSE(tel::read_raw_trace(ss, dump, &err));
    EXPECT_NE(err.find("before any ring header"), std::string::npos);
  }
}

TEST(TraceIo, ChromeTracePairsBeginWithOutcome) {
  const tel::TraceDump dump = sample_dump();
  std::stringstream ss;
  tel::write_chrome_trace(ss, dump);
  const std::string json = ss.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // kTxBegin..kSwCommit becomes one complete event spanning 30 ticks =
  // 15 us at 2 ticks/us, starting at ts 0 (timestamps are min-relative).
  EXPECT_NE(json.find("\"name\":\"tx(sw)\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
  // The abort is an instant event carrying its decoded cause.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"conflict\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  // No dangling complete event: exactly one "X".
  std::size_t x_count = 0;
  for (auto pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1))
    ++x_count;
  EXPECT_EQ(x_count, 1u);
}

TEST(TraceIo, CollectTraceDumpMatchesCompiledLevel) {
  const tel::TraceDump dump = tel::collect_trace_dump();
  EXPECT_EQ(dump.level, tel::kLevel);
  if constexpr (tel::kLevel == 0) {
    EXPECT_TRUE(dump.threads.empty());
  } else {
    EXPECT_GT(dump.ticks_per_us, 0.0);
  }
}

}  // namespace
}  // namespace nvhalt
