// Sanitizer stress for epoch-based reclamation (alloc/ebr.hpp): thread
// churn x delete-heavy churn. Every round spawns fresh OS threads that
// register/deregister through the runtime ThreadRegistry while hammering a
// sorted list with 50/50 insert/remove over a small hot key range, so
// nodes cycle continuously through free -> limbo -> reclaim -> realloc.
// Concurrent readers walk the chains the writers are freeing: a block
// recycled before its epoch is safe is a use-after-free under ASan and a
// data race under TSan (the tsan-concurrency preset includes this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "structures/tm_list.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nvhalt {
namespace {

class ReclamationStressTest : public testing::TestWithParam<TmKind> {};

// SPHT is excluded: its structures never free (log-structured heap), so
// there is no reclamation to stress.
INSTANTIATE_TEST_SUITE_P(FreeingTms, ReclamationStressTest,
                         testing::Values(TmKind::kNvHalt, TmKind::kNvHaltCl,
                                         TmKind::kNvHaltSp, TmKind::kTrinity),
                         test::kind_param_name);

constexpr word_t kKeyBase = 100;
constexpr int kKeys = 32;
constexpr int kWriters = 6;
constexpr int kReaders = 2;
constexpr int kRounds = 5;
constexpr int kItersPerThread = 60;

TEST_P(ReclamationStressTest, ThreadChurnDeleteHeavyNeverRecyclesUnderReaders) {
  TmRunner runner(test::small_config(GetParam()));
  TransactionalMemory& tm = runner.tm();
  TmList list(tm);
  {
    ThreadHandle h = tm.register_thread();
    for (int i = 0; i < kKeys; i += 2) {
      const word_t k = kKeyBase + static_cast<word_t>(i);
      ASSERT_TRUE(list.insert(h, k, k));
    }
  }

  for (int round = 0; round < kRounds; ++round) {
    // Fresh OS threads (and recycled registry slots) every round: the
    // reclamation epoch bound comes from the registry's reservation scan,
    // which must stay correct across register/deregister churn.
    test::run_threads(kWriters + kReaders, [&](int t) {
      ThreadHandle h = tm.register_thread();
      Xoshiro256 rng(static_cast<std::uint64_t>(round) * 131 +
                     static_cast<std::uint64_t>(t) + 1);
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const word_t key = kKeyBase + static_cast<word_t>(rng.next_bounded(kKeys));
        if (t < kWriters) {
          if (rng.next_bounded(2) == 0) {
            list.insert(h, key, key);
          } else {
            list.remove(h, key);  // the committed free retires into limbo
          }
        } else {
          word_t v = 0;
          if (list.contains(h, key, &v)) {
            EXPECT_EQ(v, key);
          }
        }
      }
    });
  }

  // Quiescent ledger: every retired block is either reclaimed or still in
  // limbo, and the surviving list is intact (value == key everywhere).
  const AllocStats st = runner.alloc().stats();
  EXPECT_GT(st.frees, 0u);
  EXPECT_GT(st.retired, 0u);
  EXPECT_EQ(st.retired, st.reclaimed + st.limbo);
  ThreadHandle h = tm.register_thread();
  for (int i = 0; i < kKeys; ++i) {
    const word_t k = kKeyBase + static_cast<word_t>(i);
    word_t v = 0;
    if (list.contains(h, k, &v)) {
      EXPECT_EQ(v, k);
    }
  }
}

}  // namespace
}  // namespace nvhalt
