// Thread-churn stress: many short-lived worker threads register, transact
// and deregister against every TM, cycling through far more registrations
// than the registry has slots. Exercises slot reclaim/reuse, per-slot
// context reuse across unrelated OS threads, the zero-sum integrity of
// concurrent transfers across churn generations, and stats aggregation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "test_helpers.hpp"

namespace nvhalt {
namespace {

class ThreadChurnTest : public testing::TestWithParam<TmKind> {};

constexpr int kAccounts = 64;
constexpr word_t kInitialBalance = 1000;

// Concurrency per round stays within the smallest registry in the suite
// (SPHT runs with max_threads = 16 in small_config).
constexpr int kConcurrent = 8;
constexpr int kItersPerThread = 40;

gaddr_t setup_accounts(TransactionalMemory& tm) {
  gaddr_t arr = kNullAddr;
  ThreadHandle h = tm.register_thread();
  EXPECT_TRUE(tm.run(h, [&](Tx& tx) {
    arr = tx.alloc(kAccounts);
    for (int i = 0; i < kAccounts; ++i)
      tx.write(arr + static_cast<gaddr_t>(i), kInitialBalance);
  }));
  return arr;
}

word_t sum_accounts(TransactionalMemory& tm, gaddr_t arr) {
  word_t sum = 0;
  ThreadHandle h = tm.register_thread();
  EXPECT_TRUE(tm.run(h, [&](Tx& tx) {
    sum = 0;
    for (int i = 0; i < kAccounts; ++i) sum += tx.read(arr + static_cast<gaddr_t>(i));
  }));
  return sum;
}

TEST_P(ThreadChurnTest, SlotReuseAcrossManyGenerationsKeepsZeroSum) {
  TmRunner runner(test::small_config(GetParam()));
  TransactionalMemory& tm = runner.tm();
  const gaddr_t arr = setup_accounts(tm);

  // Enough generations that lifetime registrations exceed every slot count
  // in play (kMaxThreads = 128 dense slots, 16 for SPHT).
  const int rounds =
      static_cast<int>(kMaxThreads) / kConcurrent + 2;  // 18 * 8 = 144 workers

  tm.reset_stats();
  std::atomic<std::uint64_t> committed{0};
  std::atomic<int> max_tid_seen{-1};

  for (int round = 0; round < rounds; ++round) {
    test::run_threads(kConcurrent, [&](int t) {
      ThreadHandle h = tm.register_thread();
      int cur = max_tid_seen.load(std::memory_order_relaxed);
      while (h.tid() > cur &&
             !max_tid_seen.compare_exchange_weak(cur, h.tid(), std::memory_order_relaxed)) {
      }
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const gaddr_t from = arr + static_cast<gaddr_t>((t * 7 + iter) % kAccounts);
        const gaddr_t to = arr + static_cast<gaddr_t>((t * 7 + iter + 1) % kAccounts);
        const bool ok = tm.run(h, [&](Tx& tx) {
          const word_t a = tx.read(from);
          const word_t b = tx.read(to);
          tx.write(from, a - 1);
          tx.write(to, b + 1);
        });
        EXPECT_TRUE(ok);
        if (ok) committed.fetch_add(1, std::memory_order_relaxed);
      }
      // Handle destruction releases the slot for the next generation.
    });
  }

  // Churn actually recycled slots: the registry saw more lifetime
  // registrations than it has capacity, while handing out only low ids.
  ThreadRegistry& reg = tm.registry();
  EXPECT_GT(reg.total_registrations(), static_cast<std::uint64_t>(kMaxThreads));
  EXPECT_LT(max_tid_seen.load(), kConcurrent + 1);
  EXPECT_EQ(reg.active(), 0);
  EXPECT_LE(reg.high_water(), kConcurrent + 1);

  // Transfers are zero-sum across all generations.
  EXPECT_EQ(sum_accounts(tm, arr),
            static_cast<word_t>(kAccounts) * kInitialBalance);

  // Stats survived the churn: one commit per successful run (the final
  // sum_accounts transaction adds one more).
  EXPECT_EQ(tm.stats().commits, committed.load() + 1);
}

TEST_P(ThreadChurnTest, ResetStatsClearsAcrossReusedSlots) {
  TmRunner runner(test::small_config(GetParam()));
  TransactionalMemory& tm = runner.tm();
  const gaddr_t arr = setup_accounts(tm);

  test::run_threads(4, [&](int t) {
    ThreadHandle h = tm.register_thread();
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(tm.run(h, [&](Tx& tx) {
        const gaddr_t a = arr + static_cast<gaddr_t>(t);
        tx.write(a, tx.read(a) + 1);
      }));
    }
  });
  EXPECT_GE(tm.stats().commits, 40u);

  tm.reset_stats();
  EXPECT_EQ(tm.stats().commits, 0u);

  // New generation on the recycled slots accumulates from zero.
  test::run_threads(2, [&](int t) {
    ThreadHandle h = tm.register_thread();
    EXPECT_TRUE(tm.run(h, [&](Tx& tx) {
      const gaddr_t a = arr + static_cast<gaddr_t>(t);
      tx.write(a, tx.read(a) + 1);
    }));
  });
  EXPECT_EQ(tm.stats().commits, 2u);
}

TEST_P(ThreadChurnTest, DenseTidBeyondRegistryCapacityThrows) {
  TmRunner runner(test::small_config(GetParam()));
  TransactionalMemory& tm = runner.tm();
  const int cap = tm.registry().capacity();

  EXPECT_THROW(tm.run(cap, [](Tx&) {}), TmLogicError);
  EXPECT_THROW(tm.run(-1, [](Tx&) {}), TmLogicError);
  // The highest in-range dense tid pins its slot and works.
  EXPECT_TRUE(tm.run(cap - 1, [](Tx&) {}));
  EXPECT_TRUE(tm.registry().is_registered(cap - 1));
}

INSTANTIATE_TEST_SUITE_P(AllTms, ThreadChurnTest, testing::ValuesIn(test::all_kinds()),
                         test::kind_param_name);

}  // namespace
}  // namespace nvhalt
