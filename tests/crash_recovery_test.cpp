// Durable-linearizability crash tests.
//
// Harness: worker threads run transactions; at a random instant the crash
// coordinator trips and every thread unwinds at its next crash point
// (possibly mid-commit, mid-flush). The pool then simulates the power
// failure with an adversarial spontaneous-write-back policy, recovery
// runs, and the tests check:
//   (a) every transaction acknowledged before the crash is reflected,
//   (b) multi-word transactions are reflected atomically,
//   (c) the recovered state is a prefix-consistent set of commits,
//   (d) structure invariants hold after recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "structures/tm_hashmap.hpp"
#include "structures/tm_queue.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::small_config;

class CrashRecoveryTest : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, CrashRecoveryTest, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

struct CrashCycleResult {
  std::vector<word_t> acked;      // last acknowledged value per thread
  std::vector<word_t> attempted;  // last attempted value per thread
};

/// Runs `nthreads` workers, each monotonically bumping its own pair of
/// slots (slot_a[i] = slot_b[i] = i), crashes mid-flight, recovers, and
/// returns what was acknowledged.
CrashCycleResult run_crash_cycle(TmRunner& runner, std::vector<gaddr_t>& slots_a,
                                 std::vector<gaddr_t>& slots_b, int nthreads, int crash_after_us,
                                 std::uint64_t crash_seed, double writeback_prob) {
  auto& tm = runner.tm();
  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);

  CrashCycleResult result;
  result.acked.assign(static_cast<std::size_t>(nthreads), 0);
  result.attempted.assign(static_cast<std::size_t>(nthreads), 0);

  std::vector<std::thread> workers;
  for (int t = 0; t < nthreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (word_t i = 1;; ++i) {
          result.attempted[static_cast<std::size_t>(t)] = i;
          const bool ok = tm.run(t, [&](Tx& tx) {
            tx.write(slots_a[static_cast<std::size_t>(t)], i);
            tx.write(slots_b[static_cast<std::size_t>(t)], i);
          });
          if (ok) result.acked[static_cast<std::size_t>(t)] = i;
        }
      } catch (const SimulatedPowerFailure&) {
        // Power failed while this thread was running; it dies here.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(crash_after_us));
  coord.trip();
  for (auto& w : workers) w.join();

  runner.pool().set_crash_coordinator(nullptr);
  runner.pool().crash(CrashPolicy{writeback_prob, crash_seed});
  tm.recover_data();
  std::vector<LiveBlock> live;
  for (const gaddr_t a : slots_a) live.push_back({a, 1});
  for (const gaddr_t a : slots_b) live.push_back({a, 1});
  tm.rebuild_allocator(live);
  return result;
}

TEST_P(CrashRecoveryTest, AckedTransactionsSurviveAtomically) {
  constexpr int kThreads = 4;
  for (const auto& [seed, writeback] :
       std::vector<std::pair<std::uint64_t, double>>{{1, 0.0}, {2, 0.5}, {3, 1.0}}) {
    TmRunner runner(small_config(GetParam()));
    auto& tm = runner.tm();
    std::vector<gaddr_t> slots_a, slots_b;
    for (int t = 0; t < kThreads; ++t) {
      slots_a.push_back(runner.alloc().raw_alloc(0, 1));
      slots_b.push_back(runner.alloc().raw_alloc(0, 1));
    }
    const auto result =
        run_crash_cycle(runner, slots_a, slots_b, kThreads, 3000, seed, writeback);

    for (int t = 0; t < kThreads; ++t) {
      word_t va = 0, vb = 0;
      tm.run(0, [&](Tx& tx) {
        va = tx.read(slots_a[static_cast<std::size_t>(t)]);
        vb = tx.read(slots_b[static_cast<std::size_t>(t)]);
      });
      // (b) atomicity: the pair is never torn.
      EXPECT_EQ(va, vb) << "thread " << t << " seed " << seed;
      // (a) durability: everything acknowledged survived...
      EXPECT_GE(va, result.acked[static_cast<std::size_t>(t)]) << "thread " << t;
      // (c) ...and nothing from the future appeared.
      EXPECT_LE(va, result.attempted[static_cast<std::size_t>(t)]) << "thread " << t;
    }
  }
}

TEST_P(CrashRecoveryTest, RepeatedCrashCyclesStayConsistent) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  constexpr int kThreads = 3;
  std::vector<gaddr_t> slots_a, slots_b;
  for (int t = 0; t < kThreads; ++t) {
    slots_a.push_back(runner.alloc().raw_alloc(0, 1));
    slots_b.push_back(runner.alloc().raw_alloc(0, 1));
  }
  std::vector<word_t> floor(kThreads, 0);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const auto result = run_crash_cycle(runner, slots_a, slots_b, kThreads,
                                        1000 + cycle * 700, 100 + cycle, 0.3);
    for (int t = 0; t < kThreads; ++t) {
      word_t va = 0, vb = 0;
      tm.run(0, [&](Tx& tx) {
        va = tx.read(slots_a[static_cast<std::size_t>(t)]);
        vb = tx.read(slots_b[static_cast<std::size_t>(t)]);
      });
      EXPECT_EQ(va, vb);
      EXPECT_GE(va, result.acked[static_cast<std::size_t>(t)]);
      (void)floor;
    }
  }
}

TEST_P(CrashRecoveryTest, HashMapAckedInsertsSurvive) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  TmHashMap map(tm, 1 << 8);

  constexpr int kThreads = 3;
  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);
  std::vector<std::vector<word_t>> acked(kThreads);
  std::vector<std::vector<word_t>> attempted(kThreads);
  std::atomic<std::size_t> progress{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (word_t i = 1;; ++i) {
          const word_t key = static_cast<word_t>(t) * 100000 + i;
          attempted[static_cast<std::size_t>(t)].push_back(key);
          if (map.insert(t, key, key * 3)) {
            acked[static_cast<std::size_t>(t)].push_back(key);
            progress.fetch_add(1, std::memory_order_release);
          }
        }
      } catch (const SimulatedPowerFailure&) {
      }
    });
  }
  // Wait for real progress before pulling the plug: a fixed sleep trips the
  // crash before the first ack when CI runners are oversubscribed, failing
  // the total_acked > 0 assertion below for want of a workload.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (progress.load(std::memory_order_acquire) < 8 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::microseconds(4000));
  coord.trip();
  for (auto& w : workers) w.join();

  runner.pool().set_crash_coordinator(nullptr);
  runner.pool().crash(CrashPolicy{0.4, 77});
  tm.recover_data();
  TmHashMap recovered = TmHashMap::attach(tm);
  tm.rebuild_allocator(recovered.collect_live_blocks());

  std::size_t total_acked = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_acked += acked[static_cast<std::size_t>(t)].size();
    for (const word_t key : acked[static_cast<std::size_t>(t)]) {
      word_t v = 0;
      EXPECT_TRUE(recovered.contains(0, key, &v)) << "lost acked key " << key;
      EXPECT_EQ(v, key * 3);
    }
    // Present keys are a subset of attempted keys (no phantom data), with
    // correct values.
    for (const word_t key : attempted[static_cast<std::size_t>(t)]) {
      word_t v = 0;
      if (recovered.contains(0, key, &v)) {
        EXPECT_EQ(v, key * 3);
      }
    }
  }
  // The workload made progress before the crash.
  EXPECT_GT(total_acked, 0u);

  // And the recovered map remains fully operational.
  EXPECT_TRUE(recovered.insert(0, 999999, 1));
  EXPECT_TRUE(recovered.contains(0, 999999));
}

TEST_P(CrashRecoveryTest, AbTreeInvariantsHoldAfterCrash) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  TmAbTree tree(tm);
  // Prefill outside the crash window so rebalances happen during it.
  for (word_t k = 2; k <= 600; k += 2) ASSERT_TRUE(tree.insert(0, k, k));

  constexpr int kThreads = 3;
  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 101 + 7);
      try {
        for (;;) {
          const word_t k = 1 + rng.next_bounded(600);
          if (rng.next_bool(0.5)) {
            tree.insert(t, k, k);
          } else {
            tree.remove(t, k);
          }
        }
      } catch (const SimulatedPowerFailure&) {
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(5000));
  coord.trip();
  for (auto& w : workers) w.join();

  runner.pool().set_crash_coordinator(nullptr);
  runner.pool().crash(CrashPolicy{0.5, 31});
  tm.recover_data();
  TmAbTree recovered = TmAbTree::attach(tm);
  tm.rebuild_allocator(recovered.collect_live_blocks());

  // The crash may have landed mid-rebalance; recovery must leave a valid
  // (a,b)-tree with sorted unique keys and correct values.
  std::string why;
  EXPECT_TRUE(recovered.validate_slow(&why)) << why;
  for (const word_t k : recovered.keys_slow()) {
    word_t v = 0;
    ASSERT_TRUE(recovered.contains(0, k, &v));
    EXPECT_EQ(v, k);
  }
  // Still operational.
  EXPECT_TRUE(recovered.insert(0, 100001, 5));
  EXPECT_TRUE(recovered.remove(0, 100001));
}

TEST_P(CrashRecoveryTest, EadrCrashKeepsEverythingCommitted) {
  // On an eADR platform nothing explicit is flushed, yet every committed
  // transaction must survive a crash — and in-flight ones must still be
  // reverted (their persistent version number never advanced).
  RunnerConfig cfg = small_config(GetParam());
  cfg.pmem.eadr = true;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  constexpr int kThreads = 3;
  std::vector<gaddr_t> slots_a, slots_b;
  for (int t = 0; t < kThreads; ++t) {
    slots_a.push_back(runner.alloc().raw_alloc(0, 1));
    slots_b.push_back(runner.alloc().raw_alloc(0, 1));
  }
  const auto result = run_crash_cycle(runner, slots_a, slots_b, kThreads, 3000, 5, 0.0);
  EXPECT_EQ(runner.pool().fence_count(), 0u);  // eADR: zero fences issued
  for (int t = 0; t < kThreads; ++t) {
    word_t va = 0, vb = 0;
    tm.run(0, [&](Tx& tx) {
      va = tx.read(slots_a[static_cast<std::size_t>(t)]);
      vb = tx.read(slots_b[static_cast<std::size_t>(t)]);
    });
    EXPECT_EQ(va, vb);
    EXPECT_GE(va, result.acked[static_cast<std::size_t>(t)]);
    EXPECT_LE(va, result.attempted[static_cast<std::size_t>(t)]);
  }
}

TEST(CrashRecoveryEdge, QueueSurvivesCrashIntact) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  TmQueue q(tm, 64);
  for (word_t v = 1; v <= 20; ++v) ASSERT_TRUE(q.enqueue(0, v));
  word_t out = 0;
  for (word_t v = 1; v <= 5; ++v) ASSERT_TRUE(q.dequeue(0, &out));
  runner.pool().crash(CrashPolicy{0.3, 21});
  tm.recover_data();
  TmQueue recovered = TmQueue::attach(tm);
  tm.rebuild_allocator(recovered.collect_live_blocks());
  EXPECT_EQ(recovered.size_slow(), 15u);
  for (word_t v = 6; v <= 20; ++v) {
    ASSERT_TRUE(recovered.dequeue(0, &out));
    EXPECT_EQ(out, v);  // FIFO order preserved across the crash
  }
}

TEST(CrashRecoveryEdge, CrashBeforeAnyTransactionRecoversToInitialState) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  runner.pool().crash(CrashPolicy{0.0, 5});
  tm.recover_data();
  tm.rebuild_allocator({});
  word_t v = 1;
  tm.run(0, [&](Tx& tx) { v = tx.read(a); });
  EXPECT_EQ(v, 0u);
}

TEST(CrashRecoveryEdge, RecoveryIsIdempotent) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  tm.run(0, [&](Tx& tx) { tx.write(a, 9); });
  runner.pool().crash(CrashPolicy{0.0, 5});
  tm.recover_data();
  tm.recover_data();  // a crash during recovery re-runs it
  tm.rebuild_allocator({});
  word_t v = 0;
  tm.run(0, [&](Tx& tx) { v = tx.read(a); });
  EXPECT_EQ(v, 9u);
}

TEST(CrashRecoveryEdge, UnackedButDurablyCompleteTxnMayLegallySurvive) {
  // A transaction that finished persisting but crashed before returning is
  // allowed (not required) to survive; what recovery must never produce is
  // a torn version of it. Covered by AckedTransactionsSurviveAtomically's
  // va == vb assertion; this test pins the single-threaded flavour.
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const gaddr_t b = runner.alloc().raw_alloc(0, 1);
  tm.run(0, [&](Tx& tx) {
    tx.write(a, 4);
    tx.write(b, 4);
  });
  runner.pool().crash(CrashPolicy{1.0, 9});
  tm.recover_data();
  tm.rebuild_allocator({});
  word_t va = 0, vb = 0;
  tm.run(0, [&](Tx& tx) {
    va = tx.read(a);
    vb = tx.read(b);
  });
  EXPECT_EQ(va, vb);
  EXPECT_EQ(va, 4u);  // it was fully fenced before the crash
}

}  // namespace
}  // namespace nvhalt
