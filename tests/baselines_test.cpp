// Tests for the two baseline TMs: Trinity (TL2 + Trinity persistence) and
// SPHT (global-lock HyTM with per-thread persistent redo logs).
#include <gtest/gtest.h>

#include "baselines/spht/spht_log.hpp"
#include "baselines/spht/spht_tm.hpp"
#include "baselines/trinity/trinity_tm.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::run_threads;
using test::small_config;

// ---- Trinity ------------------------------------------------------------

TEST(Trinity, ReadWriteRoundTrip) {
  TmRunner runner(small_config(TmKind::kTrinity));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  tm.run(0, [&](Tx& tx) { tx.write(a, 11); });
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 11u); });
  EXPECT_STREQ(tm.name(), "Trinity");
}

TEST(Trinity, GlobalClockAdvancesPerWriter) {
  TmRunner runner(small_config(TmKind::kTrinity));
  auto& tri = dynamic_cast<TrinityTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const std::uint64_t v0 = tri.gv();
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 1); });
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 2); });
  EXPECT_EQ(tri.gv(), v0 + 2);
  // Read-only transactions do not advance the clock.
  runner.tm().run(0, [&](Tx& tx) { (void)tx.read(a); });
  EXPECT_EQ(tri.gv(), v0 + 2);
}

TEST(Trinity, CommittedWritesAreDurable) {
  TmRunner runner(small_config(TmKind::kTrinity));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  tm.run(1, [&](Tx& tx) { tx.write(a, 77); });
  const PRecord r = tm.pool().read_durable_record(a);
  EXPECT_EQ(r.cur, 77u);
  EXPECT_EQ(pver_tid(r.pver), 1);
  EXPECT_GT(tm.pool().load_pver(1), pver_seq(r.pver));
}

TEST(Trinity, ConcurrentCountersLoseNoUpdates) {
  TmRunner runner(small_config(TmKind::kTrinity));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  constexpr int kThreads = 4, kIncrements = 300;
  run_threads(kThreads, [&](int tid) {
    for (int i = 0; i < kIncrements; ++i)
      tm.run(tid, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  });
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), kThreads * kIncrements); });
}

TEST(Trinity, SnapshotsAreConsistentUnderConcurrency) {
  TmRunner runner(small_config(TmKind::kTrinity));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const gaddr_t b = runner.alloc().raw_alloc(0, 1);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 500; ++i)
      tm.run(0, [&](Tx& tx) {
        tx.write(a, i);
        tx.write(b, i);
      });
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      tm.run(1, [&](Tx& tx) {
        const word_t x = tx.read(a);
        const word_t y = tx.read(b);
        if (x != y) violation.store(true);
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(violation.load());
}

TEST(Trinity, VoluntaryAbort) {
  TmRunner runner(small_config(TmKind::kTrinity));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  EXPECT_FALSE(tm.run(0, [&](Tx& tx) {
    tx.write(a, 1);
    tx.abort();
  }));
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 0u); });
}

// ---- SPHT log --------------------------------------------------------------

TEST(SphtLog, AppendCollectRoundTrip) {
  PmemConfig pc;
  pc.capacity_words = 1 << 12;
  pc.raw_words = 1 << 12;
  PmemPool pool(pc);
  SphtLog log(pool, /*nthreads=*/2, /*words_per_thread=*/256);

  std::vector<std::pair<gaddr_t, word_t>> w1{{10, 100}, {11, 110}};
  std::vector<std::pair<gaddr_t, word_t>> w2{{20, 200}};
  EXPECT_TRUE(log.append(0, /*ts=*/5, w1));
  EXPECT_TRUE(log.append(1, /*ts=*/7, w2));

  std::vector<SphtLog::TxnRec> recs;
  log.collect(/*max_ts=*/100, recs);
  ASSERT_EQ(recs.size(), 2u);
  // Records from thread 0's log come first in collection order.
  EXPECT_EQ(recs[0].ts, 5u);
  ASSERT_EQ(recs[0].writes.size(), 2u);
  EXPECT_EQ(recs[0].writes[1], (std::pair<gaddr_t, word_t>{11, 110}));
  EXPECT_EQ(recs[1].ts, 7u);
}

TEST(SphtLog, CollectFiltersByMarker) {
  PmemConfig pc;
  pc.capacity_words = 1 << 12;
  pc.raw_words = 1 << 12;
  PmemPool pool(pc);
  SphtLog log(pool, 1, 256);
  std::vector<std::pair<gaddr_t, word_t>> w{{1, 2}};
  log.append(0, 5, w);
  log.append(0, 9, w);
  std::vector<SphtLog::TxnRec> recs;
  log.collect(/*max_ts=*/6, recs);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].ts, 5u);
}

TEST(SphtLog, AppendFailsWhenFullAndTruncateResets) {
  PmemConfig pc;
  pc.capacity_words = 1 << 12;
  pc.raw_words = 1 << 12;
  PmemPool pool(pc);
  SphtLog log(pool, 1, 32);
  std::vector<std::pair<gaddr_t, word_t>> w{{1, 2}, {3, 4}};  // 6 words/record
  EXPECT_TRUE(log.append(0, 1, w));
  EXPECT_TRUE(log.append(0, 2, w));
  EXPECT_TRUE(log.append(0, 3, w));
  EXPECT_TRUE(log.append(0, 4, w));
  EXPECT_TRUE(log.append(0, 5, w));
  EXPECT_FALSE(log.append(0, 6, w));  // 36 > 32 words
  log.truncate_all(0);
  EXPECT_EQ(log.used_words(0), 0u);
  EXPECT_TRUE(log.append(0, 7, w));
}

TEST(SphtLog, RecordsAreDurableOnlyAsWholeUnits) {
  // The head word advances only after the record's lines are fenced: a
  // crash exposes either the whole record or nothing.
  PmemConfig pc;
  pc.capacity_words = 1 << 12;
  pc.raw_words = 1 << 12;
  pc.track_store_order = true;
  PmemPool pool(pc);
  SphtLog log(pool, 1, 256);
  std::vector<std::pair<gaddr_t, word_t>> w{{10, 100}};
  log.append(0, 3, w);
  pool.crash(CrashPolicy{0.0, 4});  // only fenced state survives
  std::vector<SphtLog::TxnRec> recs;
  log.collect(100, recs);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].ts, 3u);
  EXPECT_EQ(recs[0].writes[0].second, 100u);
}

// ---- SPHT ----------------------------------------------------------------

TEST(Spht, ReadWriteRoundTrip) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 11);
  });
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 11u); });
  EXPECT_STREQ(tm.name(), "SPHT");
}

TEST(Spht, CommitsGoThroughHardwareWhenUncontended) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 1);
  });
  for (int i = 0; i < 10; ++i) tm.run(0, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  EXPECT_EQ(tm.stats().hw_commits, 11u);
  EXPECT_EQ(tm.stats().sw_commits, 0u);
}

TEST(Spht, MarkerAdvancesWithWriters) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& spht = dynamic_cast<SphtTm&>(runner.tm());
  gaddr_t a = kNullAddr;
  runner.tm().run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 1);
  });
  const std::uint64_t m1 = spht.durable_marker();
  EXPECT_GT(m1, 0u);
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 2); });
  EXPECT_GT(spht.durable_marker(), m1);
  // Read-only transactions do not advance the marker.
  runner.tm().run(0, [&](Tx& tx) { (void)tx.read(a); });
  EXPECT_EQ(spht.durable_marker(), spht.persistent_marker());
}

TEST(Spht, ReplayBringsNvmHeapUpToDate) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& spht = dynamic_cast<SphtTm&>(runner.tm());
  gaddr_t a = kNullAddr;
  runner.tm().run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 5);
  });
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 6); });
  // Before replay the NVM heap image lags (redo-logging design)...
  EXPECT_EQ(runner.pool().read_record(a).cur, 0u);
  spht.replay(2);
  // ...afterwards it holds the last committed value.
  EXPECT_EQ(runner.pool().read_record(a).cur, 6u);
  EXPECT_EQ(runner.pool().read_durable_record(a).cur, 6u);
}

TEST(Spht, ConcurrentCountersLoseNoUpdates) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 0);
  });
  constexpr int kThreads = 4, kIncrements = 150;
  run_threads(kThreads, [&](int tid) {
    for (int i = 0; i < kIncrements; ++i)
      tm.run(tid, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  });
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), kThreads * kIncrements); });
}

TEST(Spht, SwFallbackUsedWhenHwExhausted) {
  RunnerConfig cfg = small_config(TmKind::kSpht);
  cfg.htm.spurious_abort_prob = 1.0;  // hardware can never commit
  cfg.spht.htm_attempts = 2;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  EXPECT_TRUE(tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 3);
  }));
  const TmStats s = tm.stats();
  EXPECT_EQ(s.sw_commits, 1u);
  EXPECT_EQ(s.hw_aborts, 2u);
  EXPECT_EQ(s.fallbacks, 1u);
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 3u); });
}

TEST(Spht, SwFallbackRollsBackOnUserAbort) {
  RunnerConfig cfg = small_config(TmKind::kSpht);
  cfg.spht.htm_attempts = 0;  // straight to the fallback
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 1);
  });
  EXPECT_FALSE(tm.run(0, [&](Tx& tx) {
    tx.write(a, 99);
    tx.abort();
  }));
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 1u); });
}

TEST(Spht, LogFullTriggersInlineReplay) {
  RunnerConfig cfg = small_config(TmKind::kSpht);
  cfg.spht.log_words_per_thread = 64;  // tiny log: fills after a few txns
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 0);
  });
  for (int i = 1; i <= 50; ++i) tm.run(0, [&](Tx& tx) { tx.write(a, i); });
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 50u); });
  // The inline replays kept the NVM image close to the volatile one.
  auto& spht = dynamic_cast<SphtTm&>(tm);
  spht.replay(1);
  EXPECT_EQ(runner.pool().read_record(a).cur, 50u);
}

TEST(Spht, SnapshotsAreConsistentUnderConcurrency) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr, b = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    b = tx.alloc(1);
    tx.write(a, 0);
    tx.write(b, 0);
  });
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 300; ++i)
      tm.run(0, [&](Tx& tx) {
        tx.write(a, i);
        tx.write(b, i);
      });
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      tm.run(1, [&](Tx& tx) {
        const word_t x = tx.read(a);
        const word_t y = tx.read(b);
        if (x != y) violation.store(true);
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace nvhalt
