// Unit tests for the transaction-aware allocator: size classes, txn
// commit/abort hooks, segment recycling, large blocks, HTM interaction and
// recovery-time reconstruction from a live-block iterator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "alloc/tx_allocator.hpp"
#include "htm/sim_htm.hpp"

namespace nvhalt {
namespace {

PmemConfig pool_cfg(std::size_t words = std::size_t{1} << 18) {
  PmemConfig cfg;
  cfg.capacity_words = words;
  return cfg;
}

TEST(SizeClasses, RoundsUpToSmallestFit) {
  EXPECT_EQ(size_class_for(1), 0);
  EXPECT_EQ(kSizeClasses[static_cast<std::size_t>(size_class_for(3))], 4u);
  EXPECT_EQ(kSizeClasses[static_cast<std::size_t>(size_class_for(33))], 48u);
  EXPECT_EQ(kSizeClasses[static_cast<std::size_t>(size_class_for(128))], 128u);
  EXPECT_EQ(size_class_for(129), -1);
}

TEST(TxAllocator, RawAllocReturnsDistinctAlignedBlocks) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  std::set<gaddr_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const gaddr_t a = alloc.raw_alloc(0, 3);
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_NE(a, kNullAddr);
    EXPECT_LT(a + 4, pool.capacity_words());
  }
}

TEST(TxAllocator, FreeThenAllocReuses) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  const gaddr_t a = alloc.raw_alloc(0, 8);
  alloc.raw_free(0, a, 8);
  EXPECT_EQ(alloc.raw_alloc(0, 8), a);
}

TEST(TxAllocator, TxAllocRolledBackOnAbort) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  const gaddr_t a = alloc.tx_alloc(0, 4);
  alloc.on_abort(0);
  // The aborted allocation is back on the free list.
  EXPECT_EQ(alloc.tx_alloc(0, 4), a);
  alloc.on_commit(0);
}

TEST(TxAllocator, TxFreeDeferredUntilCommit) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  const gaddr_t a = alloc.raw_alloc(0, 4);
  alloc.tx_free(0, a, 4);
  // Before commit the block must not be recycled.
  EXPECT_NE(alloc.tx_alloc(0, 4), a);
  alloc.on_commit(0);
  EXPECT_EQ(alloc.raw_alloc(0, 4), a);
}

TEST(TxAllocator, TxFreeForgottenOnAbort) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  const gaddr_t a = alloc.raw_alloc(0, 4);
  alloc.tx_free(0, a, 4);
  alloc.on_abort(0);
  // The free never happened; the block stays live.
  std::set<gaddr_t> next;
  for (int i = 0; i < 100; ++i) next.insert(alloc.raw_alloc(0, 4));
  EXPECT_EQ(next.count(a), 0u);
}

TEST(TxAllocator, OversizeRequestThrows) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  EXPECT_THROW(alloc.raw_alloc(0, 129), TmLogicError);
}

TEST(TxAllocator, ExhaustionThrows) {
  PmemPool pool(pool_cfg(2 * kSegmentWords + 64));
  TxAllocator alloc(pool);
  EXPECT_THROW(
      {
        for (;;) alloc.raw_alloc(0, 128);
      },
      TmLogicError);
}

TEST(TxAllocator, AllocInsideHwTxnAbortsWhenSlowPathNeeded) {
  PmemPool pool(pool_cfg());
  htm::SimHtm sim;
  TxAllocator alloc(pool);
  // Fresh thread heap: the first allocation needs a segment, which must
  // abort a hardware transaction rather than take a global mutex inside it.
  sim.begin(0);
  try {
    alloc.tx_alloc(0, 4);
    FAIL() << "expected HtmAbort";
  } catch (const htm::HtmAbort& a) {
    EXPECT_EQ(a.cause, htm::AbortCause::kExplicit);
    EXPECT_EQ(a.code, kAllocAbortCode);
  }
  sim.cancel(0);
  // Outside the transaction the same request succeeds and warms the heap.
  const gaddr_t a = alloc.tx_alloc(0, 4);
  alloc.on_commit(0);
  EXPECT_NE(a, kNullAddr);
  // With a warm heap, in-txn allocation succeeds.
  sim.begin(0);
  EXPECT_NE(alloc.tx_alloc(0, 4), kNullAddr);
  sim.cancel(0);
  alloc.on_abort(0);
}

TEST(TxAllocator, LargeAllocSpansSegments) {
  PmemPool pool(pool_cfg(std::size_t{1} << 20));
  TxAllocator alloc(pool);
  const std::size_t n = 3 * kSegmentWords + 5;
  const gaddr_t big = alloc.raw_alloc_large(n);
  const gaddr_t next = alloc.raw_alloc(0, 8);
  EXPECT_GE(next, big + n - 5);  // small allocs land beyond the large block
}

TEST(TxAllocator, ConcurrentAllocationsAreDisjoint) {
  PmemPool pool(pool_cfg(std::size_t{1} << 20));
  TxAllocator alloc(pool);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<gaddr_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(alloc.raw_alloc(t, 4));
    });
  }
  for (auto& th : threads) th.join();
  std::set<gaddr_t> all;
  for (const auto& v : got)
    for (const gaddr_t a : v) EXPECT_TRUE(all.insert(a).second) << "duplicate " << a;
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TxAllocator, RebuildPreservesLiveAndRecyclesRest) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  std::vector<gaddr_t> live_addrs;
  for (int i = 0; i < 100; ++i) {
    const gaddr_t a = alloc.raw_alloc(0, 8);
    if (i % 3 == 0) live_addrs.push_back(a);  // every third survives
  }
  std::vector<LiveBlock> live;
  for (const gaddr_t a : live_addrs) live.push_back({a, 8});
  alloc.rebuild(live);

  // New allocations must avoid every live block.
  std::set<gaddr_t> live_set(live_addrs.begin(), live_addrs.end());
  for (int i = 0; i < 500; ++i) {
    const gaddr_t a = alloc.raw_alloc(1, 8);
    EXPECT_EQ(live_set.count(a), 0u);
  }
}

TEST(TxAllocator, RebuildHandlesLargeBlocks) {
  PmemPool pool(pool_cfg(std::size_t{1} << 20));
  TxAllocator alloc(pool);
  const std::size_t n = 2 * kSegmentWords;
  const gaddr_t big = alloc.raw_alloc_large(n);
  const gaddr_t small = alloc.raw_alloc(0, 4);
  std::vector<LiveBlock> live{{big, static_cast<std::uint32_t>(n)}, {small, 4}};
  alloc.rebuild(live);
  for (int i = 0; i < 1000; ++i) {
    const gaddr_t a = alloc.raw_alloc(0, 4);
    EXPECT_TRUE(a + 4 <= big || a >= big + n) << "allocated inside live large block";
    EXPECT_NE(a, small);
  }
}

TEST(TxAllocator, RebuildRejectsMixedClassSegments) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  // Two live blocks of different classes claimed to be in one segment.
  const gaddr_t base = alloc.heap_begin();
  std::vector<LiveBlock> live{{base, 8}, {base + 16, 4}};
  EXPECT_THROW(alloc.rebuild(live), TmLogicError);
}

TEST(TxAllocator, RebuildRejectsMisalignedBlock) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  const gaddr_t base = alloc.heap_begin();
  std::vector<LiveBlock> live{{base + 3, 8}};  // not a multiple of class 8
  EXPECT_THROW(alloc.rebuild(live), TmLogicError);
}

TEST(TxAllocator, StatsCountAllocsAndSegments) {
  PmemPool pool(pool_cfg());
  TxAllocator alloc(pool);
  alloc.raw_alloc(0, 4);
  alloc.raw_alloc(0, 4);
  const AllocStats s = alloc.stats();
  EXPECT_EQ(s.allocs, 2u);
  EXPECT_GE(s.segments_acquired, 1u);
}

}  // namespace
}  // namespace nvhalt
