// Cross-module integration tests: multiple structures sharing one TM,
// cross-structure transactions, mixed-path execution with spurious aborts,
// full crash/recover/attach cycles, and the TmRunner facade.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "api/root_registry.hpp"
#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "structures/tm_hashmap.hpp"
#include "structures/tm_list.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::run_threads;
using test::small_config;

class IntegrationTest : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, IntegrationTest, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

TEST_P(IntegrationTest, FactoryProducesWorkingSystem) {
  TmRunner runner(small_config(GetParam()));
  EXPECT_STREQ(runner.tm().name(), tm_kind_name(GetParam()));
  gaddr_t a = kNullAddr;
  EXPECT_TRUE(runner.tm().run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 1);
  }));
  EXPECT_NE(a, kNullAddr);
}

TEST_P(IntegrationTest, KindParsingRoundTrips) {
  EXPECT_EQ(tm_kind_from_string(tm_kind_name(GetParam())), GetParam());
}

TEST_P(IntegrationTest, CrossStructureTransactionIsAtomic) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  TmHashMap map(tm, 1 << 6, /*root_slot=*/0);
  TmAbTree tree(tm, /*root_slot=*/2);

  // Move entries from the map to the tree atomically: at all times every
  // key lives in exactly one of the two structures.
  for (word_t k = 1; k <= 50; ++k) map.insert(0, k, k);
  run_threads(3, [&](int tid) {
    if (tid == 0) {
      // Mover: transfers each key map -> tree in one transaction.
      for (word_t k = 1; k <= 50; ++k) {
        tm.run(tid, [&](Tx& tx) {
          word_t v = 0;
          if (map.contains_in(tx, k, &v)) {
            map.remove_in(tx, k);
            tree.insert_in(tx, k, v);
          }
        });
      }
    } else {
      // Auditors: each key is in exactly one structure.
      for (int i = 0; i < 200; ++i) {
        const word_t k = 1 + static_cast<word_t>(i % 50);
        tm.run(tid, [&](Tx& tx) {
          const bool in_map = map.contains_in(tx, k);
          const bool in_tree = tree.contains_in(tx, k);
          EXPECT_NE(in_map, in_tree) << "key " << k << " in both or neither";
        });
      }
    }
  });
  EXPECT_EQ(map.size_slow(), 0u);
  EXPECT_EQ(tree.size_slow(), 50u);
}

TEST_P(IntegrationTest, MixedPathsUnderSpuriousAbortsStayCorrect) {
  RunnerConfig cfg = small_config(GetParam());
  cfg.htm.spurious_abort_prob = 0.02;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  TmAbTree tree(tm);
  std::map<word_t, word_t> ref;
  Xoshiro256 rng(23);
  for (int i = 0; i < 1500; ++i) {
    const word_t k = 1 + rng.next_bounded(300);
    if (rng.next_bool(0.6)) {
      EXPECT_EQ(tree.insert(0, k, k), ref.emplace(k, k).second);
    } else {
      EXPECT_EQ(tree.remove(0, k), ref.erase(k) > 0);
    }
  }
  EXPECT_EQ(tree.size_slow(), ref.size());
  std::string why;
  EXPECT_TRUE(tree.validate_slow(&why)) << why;
}

TEST_P(IntegrationTest, FullCrashRecoverAttachCycleAcrossStructures) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  {
    TmHashMap map(tm, 1 << 6, 0);
    TmAbTree tree(tm, 2);
    TmList list(tm, 4);
    for (word_t k = 1; k <= 100; ++k) {
      map.insert(0, k, k + 1);
      tree.insert(0, k, k + 2);
      if (k <= 20) list.insert(0, k, k + 3);
    }
  }
  runner.pool().crash(CrashPolicy{0.2, 11});
  tm.recover_data();

  TmHashMap map = TmHashMap::attach(tm, 0);
  TmAbTree tree = TmAbTree::attach(tm, 2);
  TmList list = TmList::attach(tm, 4);
  std::vector<LiveBlock> live;
  for (const auto& b : map.collect_live_blocks()) live.push_back(b);
  for (const auto& b : tree.collect_live_blocks()) live.push_back(b);
  for (const auto& b : list.collect_live_blocks()) live.push_back(b);
  tm.rebuild_allocator(live);

  for (word_t k = 1; k <= 100; ++k) {
    word_t v = 0;
    ASSERT_TRUE(map.contains(0, k, &v)) << k;
    EXPECT_EQ(v, k + 1);
    ASSERT_TRUE(tree.contains(0, k, &v)) << k;
    EXPECT_EQ(v, k + 2);
    if (k <= 20) {
      ASSERT_TRUE(list.contains(0, k, &v)) << k;
      EXPECT_EQ(v, k + 3);
    }
  }
  // All structures still work post-recovery (allocator rebuilt correctly).
  for (word_t k = 200; k <= 260; ++k) {
    EXPECT_TRUE(map.insert(0, k, k));
    EXPECT_TRUE(tree.insert(0, k, k));
  }
  std::string why;
  EXPECT_TRUE(tree.validate_slow(&why)) << why;
}

TEST_P(IntegrationTest, PersistenceCostScalesWithWriteSetNotReadSet) {
  if (GetParam() == TmKind::kSpht) GTEST_SKIP() << "SPHT persists via logs, not records";
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  const gaddr_t arr = runner.alloc().raw_alloc_large(64);
  tm.run(0, [&](Tx& tx) {
    for (gaddr_t i = 0; i < 64; ++i) tx.write(arr + i, 1);
  });

  const std::uint64_t flushes_before = runner.pool().flush_count();
  // 20 read-only transactions over the whole array: no flushes.
  for (int i = 0; i < 20; ++i)
    tm.run(0, [&](Tx& tx) {
      for (gaddr_t s = 0; s < 64; ++s) (void)tx.read(arr + s);
    });
  EXPECT_EQ(runner.pool().flush_count(), flushes_before);

  // One single-word writer: exactly one record flush + one pver flush.
  tm.run(0, [&](Tx& tx) { tx.write(arr, 2); });
  EXPECT_EQ(runner.pool().flush_count(), flushes_before + 2);
}

TEST_P(IntegrationTest, StatsAreInternallyConsistent) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  run_threads(2, [&](int tid) {
    for (int i = 0; i < 100; ++i) tm.run(tid, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  });
  const TmStats s = tm.stats();
  EXPECT_EQ(s.commits, 200u);
  EXPECT_EQ(s.commits, s.hw_commits + s.sw_commits + s.ro_commits);
}

TEST(Integration, FileBackedPoolSurvivesRunnerRestart) {
  const std::string path = testing::TempDir() + "nvhalt_restart_test.pool";
  std::remove(path.c_str());
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.pmem.backing_path = path;

  {
    TmRunner runner(cfg);
    ASSERT_FALSE(runner.pool().attached_existing());
    TmAbTree tree(runner.tm(), 2);
    for (word_t k = 1; k <= 300; ++k) ASSERT_TRUE(tree.insert(0, k, k * 5));
    runner.pool().sync_to_disk();
  }  // full teardown: new runner, new HTM, new allocator — only the file remains

  {
    TmRunner runner(cfg);
    ASSERT_TRUE(runner.pool().attached_existing());
    runner.tm().recover_data();
    TmAbTree tree = TmAbTree::attach(runner.tm(), 2);
    runner.tm().rebuild_allocator(tree.collect_live_blocks());
    std::string why;
    EXPECT_TRUE(tree.validate_slow(&why)) << why;
    EXPECT_EQ(tree.size_slow(), 300u);
    for (word_t k = 1; k <= 300; ++k) {
      word_t v = 0;
      ASSERT_TRUE(tree.contains(0, k, &v)) << k;
      EXPECT_EQ(v, k * 5);
    }
    EXPECT_TRUE(tree.insert(0, 1000, 1));
  }
  std::remove(path.c_str());
}

TEST(Integration, RootRegistryNamesSurviveCrash) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  RootRegistry reg(runner.pool());
  EXPECT_EQ(reg.size(), 0);
  EXPECT_FALSE(reg.get("accounts").has_value());

  const gaddr_t a = runner.alloc().raw_alloc(0, 8);
  reg.set(0, "accounts", a);
  reg.set(0, "epoch", 41);
  reg.set(0, "epoch", 42);  // update in place
  EXPECT_EQ(reg.size(), 2);
  EXPECT_EQ(reg.get("accounts").value(), a);
  EXPECT_EQ(reg.get("epoch").value(), 42u);

  runner.pool().crash(CrashPolicy{0.0, 3});
  tm.recover_data();
  RootRegistry after(runner.pool());
  EXPECT_EQ(after.get("accounts").value(), a);
  EXPECT_EQ(after.get("epoch").value(), 42u);
  EXPECT_FALSE(after.get("missing").has_value());

  EXPECT_TRUE(after.erase(0, "epoch"));
  EXPECT_FALSE(after.erase(0, "epoch"));
  EXPECT_EQ(after.size(), 1);
}

TEST(Integration, RootRegistryFullThrows) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  RootRegistry reg(runner.pool());
  for (int i = 0; i < RootRegistry::kCapacity; ++i)
    reg.set(0, "name" + std::to_string(i), static_cast<std::uint64_t>(i));
  EXPECT_THROW(reg.set(0, "one-too-many", 1), TmLogicError);
  // Erasing frees a slot for reuse.
  EXPECT_TRUE(reg.erase(0, "name0"));
  EXPECT_NO_THROW(reg.set(0, "one-too-many", 1));
}

TEST(Integration, InvalidConfigurationsAreRejected) {
  {
    RunnerConfig cfg = small_config(TmKind::kNvHalt);
    cfg.nvhalt.lock_table_entries = 100;  // not a power of two
    EXPECT_THROW(TmRunner{cfg}, TmLogicError);
  }
  {
    RunnerConfig cfg = small_config(TmKind::kNvHalt);
    cfg.htm.stripe_count = 1000;  // not a power of two
    EXPECT_THROW(TmRunner{cfg}, TmLogicError);
  }
  {
    RunnerConfig cfg = small_config(TmKind::kNvHalt);
    cfg.pmem.capacity_words = 1;  // below the minimum
    EXPECT_THROW(TmRunner{cfg}, TmLogicError);
  }
  EXPECT_THROW(tm_kind_from_string("NoSuchTm"), TmLogicError);
}

TEST_P(IntegrationTest, OutOfRangeThreadIdIsRejected) {
  TmRunner runner(small_config(GetParam()));
  EXPECT_THROW(runner.tm().run(kMaxThreads + 1, [](Tx&) {}), TmLogicError);
  EXPECT_THROW(runner.tm().run(-1, [](Tx&) {}), TmLogicError);
}

TEST(Integration, StructureAttachWithoutCreateThrows) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  EXPECT_THROW(TmHashMap::attach(runner.tm(), 10), TmLogicError);
  EXPECT_THROW(TmAbTree::attach(runner.tm(), 10), TmLogicError);
  EXPECT_THROW(TmList::attach(runner.tm(), 10), TmLogicError);
}

TEST(Integration, TwoIndependentRunnersDoNotInterfere) {
  TmRunner r1(small_config(TmKind::kNvHalt));
  TmRunner r2(small_config(TmKind::kTrinity));
  const gaddr_t a1 = r1.alloc().raw_alloc(0, 1);
  const gaddr_t a2 = r2.alloc().raw_alloc(0, 1);
  r1.tm().run(0, [&](Tx& tx) { tx.write(a1, 5); });
  r2.tm().run(0, [&](Tx& tx) { tx.write(a2, 6); });
  r1.tm().run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a1), 5u); });
  r2.tm().run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a2), 6u); });
}

}  // namespace
}  // namespace nvhalt
