// Record-level recovery unit tests: persistent states are constructed by
// hand (as a crash could leave them) and recovery's revert/keep decisions
// are checked word by word — pinning Sec. 3.5's rule: revert exactly the
// records whose {tid, seq} is at/above the owning thread's durable pVerNum.
#include <gtest/gtest.h>

#include "baselines/spht/spht_tm.hpp"
#include "core/nvhalt_tm.hpp"
#include "pmem/crash_sim.hpp"
#include "pmem/pmem_inspector.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::small_config;

class RecoveryUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runner_ = std::make_unique<TmRunner>(small_config(TmKind::kNvHalt));
    pool_ = &runner_->pool();
  }

  /// Writes a committed-looking record set for `tid` at seq and makes it
  /// durable; optionally also advances + persists the thread's pVerNum.
  void persist_txn(int tid, std::initializer_list<std::pair<gaddr_t, word_t>> writes,
                   std::uint64_t seq, bool bump_pver) {
    for (const auto& [a, v] : writes) {
      pool_->record_write(tid, a, pool_->read_record(a).cur, v, seq);
      pool_->flush_record(tid, a);
    }
    pool_->fence(tid);
    if (bump_pver) {
      pool_->store_pver(tid, seq + 1);
      pool_->flush_pver(tid);
      pool_->fence(tid);
    }
  }

  std::unique_ptr<TmRunner> runner_;
  PmemPool* pool_ = nullptr;
};

TEST_F(RecoveryUnitTest, InFlightTxnFullyReverted) {
  // Data durable, pVerNum not: the transaction never durably committed.
  persist_txn(3, {{100, 11}, {101, 12}, {102, 13}}, /*seq=*/0, /*bump_pver=*/false);
  pool_->crash(CrashPolicy{0.0, 1});
  runner_->tm().recover_data();
  EXPECT_EQ(pool_->load(100), 0u);
  EXPECT_EQ(pool_->load(101), 0u);
  EXPECT_EQ(pool_->load(102), 0u);
  // The reversion itself is durable (a crash during recovery re-reverts).
  EXPECT_EQ(pool_->read_durable_record(100).cur, 0u);
}

TEST_F(RecoveryUnitTest, DurablyCommittedTxnKept) {
  persist_txn(3, {{100, 11}, {101, 12}}, /*seq=*/0, /*bump_pver=*/true);
  pool_->crash(CrashPolicy{0.0, 1});
  runner_->tm().recover_data();
  EXPECT_EQ(pool_->load(100), 11u);
  EXPECT_EQ(pool_->load(101), 12u);
}

TEST_F(RecoveryUnitTest, PerThreadDecisionsAreIndependent) {
  persist_txn(1, {{100, 11}}, /*seq=*/0, /*bump_pver=*/true);   // committed
  persist_txn(2, {{200, 22}}, /*seq=*/0, /*bump_pver=*/false);  // in flight
  pool_->crash(CrashPolicy{0.0, 2});
  runner_->tm().recover_data();
  EXPECT_EQ(pool_->load(100), 11u);  // thread 1's write survives
  EXPECT_EQ(pool_->load(200), 0u);   // thread 2's write reverted
}

TEST_F(RecoveryUnitTest, OlderCommitsSurviveNewerInFlightOfSameThread) {
  persist_txn(5, {{100, 7}}, /*seq=*/0, /*bump_pver=*/true);    // pver now 1
  persist_txn(5, {{100, 9}}, /*seq=*/1, /*bump_pver=*/false);   // in flight
  pool_->crash(CrashPolicy{0.0, 3});
  runner_->tm().recover_data();
  // The in-flight overwrite reverts to the *previous committed* value.
  EXPECT_EQ(pool_->load(100), 7u);
}

TEST_F(RecoveryUnitTest, RevertUsesRecordOldNotZero) {
  persist_txn(4, {{150, 40}}, /*seq=*/0, /*bump_pver=*/true);
  persist_txn(4, {{150, 41}}, /*seq=*/1, /*bump_pver=*/true);
  persist_txn(4, {{150, 42}}, /*seq=*/2, /*bump_pver=*/false);  // in flight
  pool_->crash(CrashPolicy{0.0, 4});
  runner_->tm().recover_data();
  EXPECT_EQ(pool_->load(150), 41u);
}

TEST_F(RecoveryUnitTest, VolatileMetadataResetBySpRecovery) {
  RunnerConfig cfg = small_config(TmKind::kNvHaltSp);
  cfg.nvhalt.htm_attempts = 0;  // software commits advance the clock
  TmRunner runner(cfg);
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  for (int i = 0; i < 3; ++i) runner.tm().run(0, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  EXPECT_GT(nv.gclock(), 0u);
  // Jam a lock as a crash would leave it.
  nv.locks().ref(a).s->store(lockword::make(9, true, 3));
  runner.pool().crash(CrashPolicy{0.0, 5});
  runner.tm().recover_data();
  EXPECT_EQ(nv.gclock(), 0u);
  EXPECT_FALSE(lockword::is_locked(nv.locks().ref(a).s->load()));
  // And the TM is immediately usable.
  EXPECT_TRUE(runner.tm().run(0, [&](Tx& tx) { tx.write(a, 1); }));
}

TEST_F(RecoveryUnitTest, InspectorShowsNoInFlightRecordsAfterRecovery) {
  persist_txn(1, {{100, 1}, {101, 2}}, 0, /*bump_pver=*/true);
  persist_txn(2, {{200, 3}}, 0, /*bump_pver=*/false);  // in flight
  pool_->crash(CrashPolicy{0.3, 9});
  PmemInspector inspector(*pool_);
  // Before recovery the in-flight record may be visible...
  const PmemReport before = inspector.scan();
  runner_->tm().recover_data();
  // ...after recovery, never: recovery reverts exactly those records.
  const PmemReport after = inspector.scan();
  EXPECT_EQ(after.in_flight_records, 0u);
  EXPECT_GE(before.in_flight_records, after.in_flight_records);
}

TEST_F(RecoveryUnitTest, InspectorSummarizesAllocatorMetadata) {
  PmemInspector inspector(*pool_);
  // TM-managed allocator: the metadata header is durable from construction.
  AllocDurableSummary s = inspector.scan_alloc(runner_->alloc());
  ASSERT_TRUE(s.metadata_present);
  EXPECT_EQ(s.segment_count, runner_->alloc().segment_count());

  gaddr_t a = kNullAddr, b = kNullAddr;
  ASSERT_TRUE(runner_->tm().run(0, [&](Tx& tx) {
    a = tx.alloc(4);
    b = tx.alloc(4);
    tx.write(a, 1);
    tx.write(b, 2);
  }));
  s = inspector.scan_alloc(runner_->alloc());
  EXPECT_GE(s.watermark, 1u);
  EXPECT_GE(s.used_slots, 2u);
  EXPECT_NE(PmemInspector::alloc_to_string(s).find("watermark="), std::string::npos);

  ASSERT_TRUE(runner_->tm().run(0, [&](Tx& tx) { tx.free(b, 4); }));
  const AllocDurableSummary after = inspector.scan_alloc(runner_->alloc());
  EXPECT_EQ(after.used_slots + 1, s.used_slots);

  // Standalone allocators keep no persistent metadata to summarize.
  PmemPool spool(PmemConfig{});
  TxAllocator salloc(spool);
  EXPECT_FALSE(PmemInspector(spool).scan_alloc(salloc).metadata_present);
}

TEST_F(RecoveryUnitTest, UntouchedWordsRemainZero) {
  persist_txn(1, {{100, 11}}, 0, true);
  pool_->crash(CrashPolicy{0.0, 6});
  runner_->tm().recover_data();
  for (gaddr_t a = 101; a < 140; ++a) EXPECT_EQ(pool_->load(a), 0u);
}

TEST(SphtRecoveryUnit, LogRecordsBeyondDurableMarkerAreDiscarded) {
  TmRunner runner(small_config(TmKind::kSpht));
  auto& spht = dynamic_cast<SphtTm&>(runner.tm());
  gaddr_t a = kNullAddr;
  runner.tm().run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 1);
  });
  const std::uint64_t marker = spht.durable_marker();
  ASSERT_GT(marker, 0u);

  // Hand-append a log record with a timestamp beyond the durable marker —
  // the state a crash leaves when a transaction persisted its log but
  // never finished the ordering protocol (it never returned to its
  // caller, so dropping it is correct).
  // We emulate it by writing a fresh value whose marker persistence we
  // sabotage: crash immediately after the log append via the coordinator.
  // Simpler: craft the log through a second committed txn, then roll the
  // durable marker back in the raw image is not exposed; instead verify
  // the filter using the volatile marker API on replay():
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 2); });
  spht.replay(1);
  EXPECT_EQ(runner.pool().read_record(a).cur, 2u);

  // After a crash, recovery replays only up to the durable marker; since
  // both transactions completed their ordering protocol, both are covered.
  runner.pool().crash(CrashPolicy{0.0, 7});
  runner.tm().recover_data();
  EXPECT_EQ(runner.pool().load(a), 2u);
}

}  // namespace
}  // namespace nvhalt
