// Unit tests for the utility layer: RNG, barrier, function_ref, small maps.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "htm/small_map.hpp"
#include "util/barrier.hpp"
#include "util/function_ref.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace nvhalt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_bounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyCorrect) {
  Xoshiro256 r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ZeroSeedDoesNotProduceZeroStream) {
  Xoshiro256 r(0);
  std::uint64_t acc = 0;
  for (int i = 0; i < 10; ++i) acc |= r.next();
  EXPECT_NE(acc, 0u);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads increments of this phase landed.
        if (counter.load() < (p + 1) * kThreads) failed.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kPhases);
}

TEST(Barrier, RejectsZeroParticipants) { EXPECT_THROW(SpinBarrier(0), TmLogicError); }

TEST(FunctionRef, CallsLambdaWithCapture) {
  int x = 0;
  auto fn = [&x](int v) { x = v; };
  FunctionRef<void(int)> ref(fn);
  ref(42);
  EXPECT_EQ(x, 42);
}

TEST(FunctionRef, ReturnsValue) {
  auto fn = [](int a, int b) { return a * b; };
  FunctionRef<int(int, int)> ref(fn);
  EXPECT_EQ(ref(6, 7), 42);
}

TEST(SmallIndexMap, InsertFindOverwrite) {
  htm::SmallIndexMap m;
  EXPECT_EQ(m.find(5), htm::SmallIndexMap::kNotFound);
  EXPECT_TRUE(m.insert(5, 10));
  EXPECT_EQ(m.find(5), 10u);
  EXPECT_FALSE(m.insert(5, 11));  // overwrite, not new
  EXPECT_EQ(m.find(5), 11u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SmallIndexMap, ClearIsO1AndComplete) {
  htm::SmallIndexMap m;
  for (std::uint64_t i = 0; i < 100; ++i) m.insert(i, static_cast<std::uint32_t>(i));
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(m.find(i), htm::SmallIndexMap::kNotFound);
}

TEST(SmallIndexMap, GrowsBeyondInitialCapacity) {
  htm::SmallIndexMap m(64);
  for (std::uint64_t i = 0; i < 5000; ++i)
    EXPECT_TRUE(m.insert(i * 977, static_cast<std::uint32_t>(i)));
  for (std::uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(m.find(i * 977), i);
}

TEST(SmallIndexMap, SurvivesManyGenerations) {
  htm::SmallIndexMap m(64);
  for (int gen = 0; gen < 1000; ++gen) {
    m.clear();
    m.insert(static_cast<std::uint64_t>(gen), 1);
    EXPECT_EQ(m.find(static_cast<std::uint64_t>(gen)), 1u);
    EXPECT_EQ(m.find(static_cast<std::uint64_t>(gen + 1)), htm::SmallIndexMap::kNotFound);
  }
}

TEST(SmallIndexMap, GenerationWraparoundDoesNotResurrectKeys) {
  htm::SmallIndexMap m(64);
  // Stamp slots with the last pre-wrap generation, then clear across the
  // 32-bit boundary: clear() must restamp every slot dead, or a later
  // generation aliasing the stale stamp would resurrect the dead keys.
  m.set_generation_for_test(0xFFFFFFFFu);
  for (std::uint64_t i = 0; i < 20; ++i) m.insert(i, static_cast<std::uint32_t>(i));
  EXPECT_EQ(m.find(7), 7u);
  m.clear();  // ++gen_ wraps to 0 here
  EXPECT_EQ(m.size(), 0u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(m.find(i), htm::SmallIndexMap::kNotFound);
  // Force the post-wrap counter back onto the stale slots' old stamp; a
  // counter-only wrap would make every dead key live again right here.
  m.set_generation_for_test(0xFFFFFFFFu);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(m.find(i), htm::SmallIndexMap::kNotFound);
  // The map keeps working after the wrap.
  m.set_generation_for_test(1);
  EXPECT_TRUE(m.insert(42, 99));
  EXPECT_EQ(m.find(42), 99u);
}

TEST(SmallSet, GenerationWraparoundDoesNotResurrectKeys) {
  htm::SmallSet s(64);
  s.set_generation_for_test(0xFFFFFFFFu);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_TRUE(s.insert(i));
  EXPECT_TRUE(s.contains(7));
  s.clear();  // wraps
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_FALSE(s.contains(i));
  s.set_generation_for_test(0xFFFFFFFFu);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_FALSE(s.contains(i));
  s.set_generation_for_test(1);
  EXPECT_TRUE(s.insert(42));
  EXPECT_TRUE(s.contains(42));
}

TEST(Zipf, ValuesStayInRange) {
  ZipfGenerator z(1000, 0.99, 7);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(z.next(), 1000u);
}

TEST(Zipf, SkewConcentratesMassOnLowKeys) {
  ZipfGenerator z(10000, 0.99, 11);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) low += z.next() < 100;  // top 1% of keys
  // Under theta=0.99 skew the hottest 1% of keys draw a large share.
  EXPECT_GT(low, n / 4);
}

TEST(Zipf, DeterministicForSameSeed) {
  ZipfGenerator a(500, 0.8, 3), b(500, 0.8, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SmallSet, InsertContainsClear) {
  htm::SmallSet s;
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  s.clear();
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 0u);
}

TEST(SmallSet, GrowsAndKeepsAllKeys) {
  htm::SmallSet s(128);
  std::set<std::uint64_t> ref;
  Xoshiro256 rng(3);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.next();
    EXPECT_EQ(s.insert(k), ref.insert(k).second);
  }
  for (const auto k : ref) EXPECT_TRUE(s.contains(k));
  EXPECT_EQ(s.size(), ref.size());
}

}  // namespace
}  // namespace nvhalt
