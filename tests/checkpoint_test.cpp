// Tests for the checkpoint/compaction subsystem (pmem/checkpoint.hpp,
// DESIGN.md Sec. 13): dirty-line bitmap publication and truncation, the
// double-buffered generation watermark, bounded (delta-since-checkpoint)
// record recovery, SPHT's native log compaction, and the torn-checkpoint
// window — a crash at any fence boundary between checkpoint publication
// and the watermark flip recovers identically from either generation,
// pinned with replayable (hash, prefix, seed) triples.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "baselines/spht/spht_tm.hpp"
#include "baselines/trinity/trinity_tm.hpp"
#include "core/nvhalt_tm.hpp"
#include "core/record_recovery.hpp"
#include "crash_harness.hpp"
#include "pmem/checkpoint.hpp"
#include "pmem/crash_enum.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::crash_config;
using test::kind_param_name;

CheckpointManager* manager_of(TransactionalMemory& tm) {
  if (auto* n = dynamic_cast<NvHaltTm*>(&tm)) return n->checkpoint_manager();
  if (auto* t = dynamic_cast<TrinityTm*>(&tm)) return t->checkpoint_manager();
  return nullptr;
}

/// Durable checkpoint generation of the current durable image. Read
/// quiescently — and before recover_data(), which flips to a fresh
/// generation. SPHT has no CheckpointManager; its compaction generation is
/// a dedicated durable counter.
std::uint64_t durable_generation_of(TransactionalMemory& tm) {
  if (CheckpointManager* m = manager_of(tm)) return m->durable_generation();
  return dynamic_cast<SphtTm&>(tm).checkpoint_generation();
}

TEST(CheckpointBitmapTest, MarkPublishTruncateCycle) {
  TmRunner runner(crash_config(TmKind::kNvHalt, /*checkpoint=*/true));
  auto& tm = runner.tm();
  CheckpointManager* ckpt = manager_of(tm);
  ASSERT_NE(ckpt, nullptr);
  EXPECT_TRUE(ckpt->durable_valid()) << "constructor did not seed generation 0";
  const std::uint64_t gen0 = ckpt->generation();

  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 7); }));
  EXPECT_TRUE(ckpt->durable_dirty(a / 2))
      << "dirty bit not durably published before the record store";
  EXPECT_GE(ckpt->stats().marks, 1u);

  // Hot line: a second commit to an already-published line pays nothing.
  const std::uint64_t marks_before = ckpt->stats().marks;
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 8); }));
  EXPECT_EQ(ckpt->stats().marks, marks_before);

  EXPECT_TRUE(tm.checkpoint(0));
  EXPECT_EQ(ckpt->generation(), gen0 + 1);
  EXPECT_EQ(ckpt->durable_generation(), gen0 + 1);
  EXPECT_TRUE(ckpt->durable_valid());
  EXPECT_FALSE(ckpt->durable_dirty(a / 2)) << "truncation left the dirty bit set";
  EXPECT_GE(ckpt->stats().checkpoints, 1u);
  EXPECT_GE(ckpt->stats().lines_retired, 1u);

  // The volatile shadow was truncated with the bitmap: the next write to
  // the line re-publishes its bit durably.
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 9); }));
  EXPECT_TRUE(ckpt->durable_dirty(a / 2));
  EXPECT_GT(ckpt->stats().marks, marks_before);
}

TEST(CheckpointBitmapTest, DisabledConfigHasNoManager) {
  TmRunner runner(crash_config(TmKind::kNvHalt, /*checkpoint=*/false));
  EXPECT_EQ(manager_of(runner.tm()), nullptr);
  EXPECT_FALSE(runner.tm().checkpoint(0));
}

TEST(CheckpointBoundedRecoveryTest, RevertPassVisitsOnlyDeltaSinceCheckpoint) {
  TmRunner runner(crash_config(TmKind::kNvHalt, /*checkpoint=*/true));
  auto& tm = runner.tm();
  auto& pool = runner.pool();
  std::vector<gaddr_t> slots;
  for (int i = 0; i < 64; ++i) slots.push_back(runner.alloc().raw_alloc(0, 1));
  for (std::size_t i = 0; i < slots.size(); ++i)
    ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(slots[i], 100 + static_cast<word_t>(i)); }));
  ASSERT_TRUE(tm.checkpoint(0));

  // Post-checkpoint delta: one transaction over two slots.
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) {
    tx.write(slots[0], 1000);
    tx.write(slots[1], 2000);
  }));

  pool.crash(CrashPolicy{});
  std::uint64_t durable_pver[kMaxThreads];
  for (int t = 0; t < kMaxThreads; ++t) durable_pver[t] = pool.load_pver(t);

  RecordRecoveryOptions opts;
  opts.workers = 2;
  opts.ckpt = manager_of(tm);
  const RecordRecoveryReport rep = recover_records(pool, durable_pver, opts);
  EXPECT_TRUE(rep.bounded) << "valid checkpoint region but the full scan ran";
  EXPECT_GT(rep.lines_scanned, 0u);
  // The checkpoint retired the 64-slot history; the revert pass visits
  // only the lines the delta transaction dirtied, not the record space.
  EXPECT_LT(rep.lines_scanned, pool.record_lines() / 4);

  // Full recovery on top (reverts are idempotent) and the data survives:
  // pre-checkpoint values live purely in the compacted image.
  tm.recover_data();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    word_t v = 0;
    tm.run(0, [&](Tx& tx) { v = tx.read(slots[i]); });
    const word_t want = i == 0 ? 1000 : i == 1 ? 2000 : 100 + static_cast<word_t>(i);
    EXPECT_EQ(v, want) << "slot " << i;
  }
}

TEST(CheckpointTest, SphtCheckpointAdvancesGenerationAndRecovers) {
  TmRunner runner(crash_config(TmKind::kSpht, /*checkpoint=*/true));
  auto& tm = runner.tm();
  auto& spht = dynamic_cast<SphtTm&>(tm);
  EXPECT_EQ(spht.checkpoint_generation(), 0u);

  std::vector<gaddr_t> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(runner.alloc().raw_alloc(0, 1));
  for (std::size_t i = 0; i < slots.size(); ++i)
    ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(slots[i], 50 + static_cast<word_t>(i)); }));

  ASSERT_TRUE(tm.checkpoint(0));
  EXPECT_EQ(spht.checkpoint_generation(), 1u);

  // Post-compaction commits land in freshly truncated logs; recovery
  // replays only this delta on top of the checkpointed heap image.
  ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(slots[0], 77); }));

  runner.pool().crash(CrashPolicy{});
  tm.recover_data();
  EXPECT_EQ(spht.checkpoint_generation(), 1u);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    word_t v = 0;
    tm.run(0, [&](Tx& tx) { v = tx.read(slots[i]); });
    const word_t want = i == 0 ? 77 : 50 + static_cast<word_t>(i);
    EXPECT_EQ(v, want) << "slot " << i;
  }
}

// ---- The torn-checkpoint window ------------------------------------------
// Enumerates every fence boundary between the instant a checkpoint starts
// and the instant its watermark flip (or SPHT's generation bump) is
// durable. The double-buffered protocol's claim: whichever generation the
// crash leaves named — old with a partially cleared bitmap, or new — the
// recovered user state is identical, because truncation only ever clears
// bits covering durably committed records the revert predicate skips.
class CheckpointTornWindowTest : public testing::TestWithParam<TmKind> {};

TEST_P(CheckpointTornWindowTest, EveryWindowBoundaryRecoversIdentically) {
  const TmKind kind = GetParam();
  PersistJournal journal;
  RunnerConfig cfg = crash_config(kind, /*checkpoint=*/true);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  std::vector<gaddr_t> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(runner.alloc().raw_alloc(0, 1));
  for (word_t round = 1; round <= 3; ++round)
    for (std::size_t i = 0; i < slots.size(); ++i)
      ASSERT_TRUE(
          tm.run(0, [&](Tx& tx) { tx.write(slots[i], round * 100 + static_cast<word_t>(i)); }));

  const std::size_t j0 = journal.size();
  ASSERT_TRUE(tm.checkpoint(0));
  const std::size_t j1 = journal.size();

  const auto events = journal.events();
  CrashEnumerator en(events, CrashEnumOptions{});
  std::vector<std::size_t> window;
  for (const std::size_t b : en.boundaries())
    if (b >= j0 && b <= j1) window.push_back(b);
  // The protocol is multi-fence by construction (open slot, truncate,
  // seal, flip — or replay, marker, truncate, bump), so the enumerator
  // must be able to land strictly inside it.
  ASSERT_GE(window.size(), 3u) << "no fence boundary inside the checkpoint window";

  TmRunner verifier(crash_config(kind, /*checkpoint=*/true));
  std::set<std::uint64_t> generations;
  for (const std::size_t b : window) {
    const CrashImage img = materialize_crash_image(events, b, 0);
    verifier.pool().install_crash_image(img.words);
    generations.insert(durable_generation_of(verifier.tm()));
    verifier.tm().recover_data();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      word_t v = 0;
      verifier.tm().run(0, [&](Tx& tx) { v = tx.read(slots[i]); });
      EXPECT_EQ(v, 300 + static_cast<word_t>(i))
          << "slot " << i << " diverged inside the checkpoint window; replay triple "
          << CrashTriple{en.trace_hash(), b, 0}.to_string();
    }
  }
  // The flip really lands inside the window: boundaries before it name the
  // old generation, boundaries after it the new one — and every one of
  // them recovered to the same state above.
  EXPECT_GE(generations.size(), 2u)
      << "checkpoint window did not span the generation flip";
}

INSTANTIATE_TEST_SUITE_P(Checkpoint, CheckpointTornWindowTest, testing::ValuesIn(all_kinds()),
                         kind_param_name);

}  // namespace
}  // namespace nvhalt
