// Unit tests for the shared TM runtime layer: ThreadRegistry / ThreadHandle
// slot lifecycle, the AdaptiveBudget controller, and the unified retry loop
// driven through a scripted Env.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "runtime/per_thread.hpp"
#include "runtime/retry_policy.hpp"
#include "runtime/thread_registry.hpp"
#include "util/rng.hpp"

namespace nvhalt::runtime {
namespace {

// ---------------------------------------------------------------- registry

TEST(ThreadRegistry, AcquiresLowestFreeSlotFirst) {
  ThreadRegistry reg(8);
  EXPECT_EQ(reg.acquire(), 0);
  EXPECT_EQ(reg.acquire(), 1);
  EXPECT_EQ(reg.acquire(), 2);
  reg.release(1);
  EXPECT_EQ(reg.acquire(), 1);  // reclaimed slot is reused before slot 3
  EXPECT_EQ(reg.acquire(), 3);
}

TEST(ThreadRegistry, CapacityExhaustionThrows) {
  ThreadRegistry reg(2);
  reg.acquire();
  reg.acquire();
  EXPECT_THROW(reg.acquire(), TmLogicError);
  reg.release(0);
  EXPECT_EQ(reg.acquire(), 0);  // space again after a release
}

TEST(ThreadRegistry, CapacityIsClampedToValidRange) {
  EXPECT_EQ(ThreadRegistry(0).capacity(), 1);
  EXPECT_EQ(ThreadRegistry(-5).capacity(), 1);
  EXPECT_EQ(ThreadRegistry(kMaxThreads * 4).capacity(), kMaxThreads);
  EXPECT_EQ(ThreadRegistry(7).capacity(), 7);
}

TEST(ThreadRegistry, ReleaseOfFreeSlotThrows) {
  ThreadRegistry reg(4);
  EXPECT_THROW(reg.release(0), TmLogicError);
  EXPECT_THROW(reg.release(-1), TmLogicError);
  EXPECT_THROW(reg.release(4), TmLogicError);
}

TEST(ThreadRegistry, EnsureRegisteredPinsSlot) {
  ThreadRegistry reg(4);
  reg.ensure_registered(2);
  EXPECT_TRUE(reg.is_registered(2));
  reg.ensure_registered(2);  // idempotent
  EXPECT_EQ(reg.active(), 1);

  // Dynamic acquisition skips the pinned slot.
  EXPECT_EQ(reg.acquire(), 0);
  EXPECT_EQ(reg.acquire(), 1);
  EXPECT_EQ(reg.acquire(), 3);

  // Pinned slots are caller-managed forever: releasing one is a bug.
  EXPECT_THROW(reg.release(2), TmLogicError);
  EXPECT_THROW(reg.ensure_registered(4), TmLogicError);
  EXPECT_THROW(reg.ensure_registered(-1), TmLogicError);
}

TEST(ThreadRegistry, CountersTrackLifecycle) {
  ThreadRegistry reg(4);
  EXPECT_EQ(reg.active(), 0);
  EXPECT_EQ(reg.high_water(), 0);
  EXPECT_EQ(reg.total_registrations(), 0u);

  reg.acquire();
  reg.acquire();
  EXPECT_EQ(reg.active(), 2);
  EXPECT_EQ(reg.high_water(), 2);

  reg.release(0);
  EXPECT_EQ(reg.active(), 1);
  EXPECT_EQ(reg.high_water(), 2);  // high water never recedes

  reg.acquire();  // reuses slot 0
  reg.ensure_registered(3);
  EXPECT_EQ(reg.active(), 3);
  EXPECT_EQ(reg.high_water(), 4);
  EXPECT_EQ(reg.total_registrations(), 4u);  // 3 acquires + 1 pin
}

TEST(ThreadHandle, RaiiReleasesOnDestruction) {
  ThreadRegistry reg(4);
  {
    ThreadHandle h(reg);
    EXPECT_TRUE(h.valid());
    EXPECT_EQ(h.tid(), 0);
    EXPECT_EQ(reg.active(), 1);
  }
  EXPECT_EQ(reg.active(), 0);
  EXPECT_FALSE(reg.is_registered(0));
}

TEST(ThreadHandle, MoveTransfersOwnership) {
  ThreadRegistry reg(4);
  ThreadHandle a(reg);
  const int tid = a.tid();

  ThreadHandle b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from query
  EXPECT_THROW(a.tid(), TmLogicError);
  EXPECT_EQ(b.tid(), tid);
  EXPECT_EQ(reg.active(), 1);

  ThreadHandle c;
  c = std::move(b);
  EXPECT_EQ(c.tid(), tid);
  EXPECT_EQ(reg.active(), 1);

  c.reset();
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(reg.active(), 0);
  c.reset();  // idempotent
}

// ---------------------------------------------------------- adaptive budget

PathPolicy adaptive_policy(int attempts, int window) {
  PathPolicy p;
  p.htm_attempts = attempts;
  p.adaptive.enabled = true;
  p.adaptive.window = window;
  return p;
}

TEST(AdaptiveBudget, DisabledUsesConfiguredAttempts) {
  PathPolicy p;
  p.htm_attempts = 7;
  AdaptiveBudget a;
  EXPECT_EQ(a.budget(p), 7);
  a.record(p, /*aborted=*/true);  // no-op when disabled
  EXPECT_EQ(a.budget(p), 7);
}

TEST(AdaptiveBudget, ShrinksUnderHighAbortRate) {
  const PathPolicy p = adaptive_policy(/*attempts=*/8, /*window=*/4);
  AdaptiveBudget a;
  EXPECT_EQ(a.budget(p), 8);
  for (int i = 0; i < 4; ++i) a.record(p, /*aborted=*/true);
  EXPECT_EQ(a.budget(p), 4);  // halved at the window boundary
  for (int i = 0; i < 4; ++i) a.record(p, /*aborted=*/true);
  EXPECT_EQ(a.budget(p), 2);
}

TEST(AdaptiveBudget, FloorsAtMinAttempts) {
  PathPolicy p = adaptive_policy(/*attempts=*/4, /*window=*/2);
  p.adaptive.min_attempts = 2;
  AdaptiveBudget a;
  for (int i = 0; i < 20; ++i) a.record(p, /*aborted=*/true);
  EXPECT_EQ(a.budget(p), 2);  // never shrinks below the floor
}

TEST(AdaptiveBudget, RegrowsWhenAbortsSubside) {
  const PathPolicy p = adaptive_policy(/*attempts=*/8, /*window=*/4);
  AdaptiveBudget a;
  for (int i = 0; i < 8; ++i) a.record(p, /*aborted=*/true);
  EXPECT_EQ(a.budget(p), 2);
  // Two clean windows grow the budget back by one each.
  for (int i = 0; i < 8; ++i) a.record(p, /*aborted=*/false);
  EXPECT_EQ(a.budget(p), 4);
  // Growth is capped at the configured maximum.
  for (int i = 0; i < 100; ++i) a.record(p, /*aborted=*/false);
  EXPECT_EQ(a.budget(p), 8);
}

TEST(AdaptiveBudget, ResetForgetsAdaptation) {
  const PathPolicy p = adaptive_policy(/*attempts=*/8, /*window=*/2);
  AdaptiveBudget a;
  for (int i = 0; i < 4; ++i) a.record(p, /*aborted=*/true);
  ASSERT_LT(a.budget(p), 8);
  a.reset();
  EXPECT_EQ(a.budget(p), 8);
}

// ------------------------------------------------------------- retry loop

/// Scripted Env: plays back fixed sequences of hardware and software
/// attempt outcomes and records what the loop asked of it.
struct ScriptedEnv {
  std::vector<AttemptStatus> hw;
  std::vector<AttemptStatus> sw;
  int hw_calls = 0;
  int sw_calls = 0;
  int waits = 0;

  AttemptStatus attempt_hw() { return hw.at(static_cast<std::size_t>(hw_calls++)); }
  AttemptStatus attempt_sw() { return sw.at(static_cast<std::size_t>(sw_calls++)); }
  void before_hw_attempt() { ++waits; }
  void crash_point() {}
};

struct LoopFixture {
  TxThreadState ts;
  bool run(const PathPolicy& p, ScriptedEnv& env) {
    return run_retry_loop(p, /*tid=*/0, ts, env);
  }
};

TEST(RunRetryLoop, HardwareCommitShortCircuits) {
  LoopFixture f;
  PathPolicy p;
  p.htm_attempts = 4;
  ScriptedEnv env;
  env.hw = {AttemptStatus::kAborted, AttemptStatus::kCommitted};
  EXPECT_TRUE(f.run(p, env));
  EXPECT_EQ(env.hw_calls, 2);
  EXPECT_EQ(env.sw_calls, 0);
  EXPECT_EQ(env.waits, 2);  // before_hw_attempt precedes every attempt
  EXPECT_EQ(f.ts.stats.fallbacks, 0u);
}

TEST(RunRetryLoop, ExhaustedBudgetFallsBackAndCountsOnce) {
  LoopFixture f;
  PathPolicy p;
  p.htm_attempts = 3;
  ScriptedEnv env;
  env.hw = {AttemptStatus::kAborted, AttemptStatus::kAborted, AttemptStatus::kAborted};
  env.sw = {AttemptStatus::kAborted, AttemptStatus::kCommitted};
  EXPECT_TRUE(f.run(p, env));
  EXPECT_EQ(env.hw_calls, 3);
  EXPECT_EQ(env.sw_calls, 2);
  EXPECT_EQ(f.ts.stats.fallbacks, 1u);
}

TEST(RunRetryLoop, SoftwareOnlyPolicyNeverCountsFallback) {
  LoopFixture f;
  PathPolicy p;  // htm_attempts = 0: Trinity-style pure software
  ScriptedEnv env;
  env.sw = {AttemptStatus::kCommitted};
  EXPECT_TRUE(f.run(p, env));
  EXPECT_EQ(env.hw_calls, 0);
  EXPECT_EQ(env.waits, 0);
  EXPECT_EQ(f.ts.stats.fallbacks, 0u);
}

TEST(RunRetryLoop, CapacityAbortFastFallback) {
  LoopFixture f;
  PathPolicy p;
  p.htm_attempts = 10;
  p.fallback_on_capacity = true;
  ScriptedEnv env;
  env.hw = {AttemptStatus::kAborted};
  // Footprint won't shrink: the loop reads the recorded cause and skips the
  // remaining attempts. Real Envs set this via record_hw_abort.
  f.ts.last_hw_abort = htm::AbortCause::kCapacity;
  env.sw = {AttemptStatus::kCommitted};
  EXPECT_TRUE(f.run(p, env));
  EXPECT_EQ(env.hw_calls, 1);
  EXPECT_EQ(env.sw_calls, 1);
  EXPECT_EQ(f.ts.stats.fallbacks, 1u);
}

TEST(RunRetryLoop, UserAbortReturnsFalseFromEitherPath) {
  {
    LoopFixture f;
    PathPolicy p;
    p.htm_attempts = 2;
    ScriptedEnv env;
    env.hw = {AttemptStatus::kUserAborted};
    EXPECT_FALSE(f.run(p, env));
    EXPECT_EQ(env.sw_calls, 0);
  }
  {
    LoopFixture f;
    PathPolicy p;
    ScriptedEnv env;
    // A software conflict abort retries; only the voluntary abort gives up.
    env.sw = {AttemptStatus::kAborted, AttemptStatus::kUserAborted};
    EXPECT_FALSE(f.run(p, env));
    EXPECT_EQ(env.sw_calls, 2);
  }
}

TEST(RunRetryLoop, MaxSwRetriesBoundsTheSoftwarePath) {
  LoopFixture f;
  PathPolicy p;
  p.max_sw_retries = 2;
  ScriptedEnv env;
  env.sw = std::vector<AttemptStatus>(8, AttemptStatus::kAborted);
  EXPECT_FALSE(f.run(p, env));
  // Initial attempt + max_sw_retries retries.
  EXPECT_EQ(env.sw_calls, 3);
}

TEST(RunRetryLoop, AdaptiveBudgetShrinksAcrossTransactions) {
  LoopFixture f;
  PathPolicy p = adaptive_policy(/*attempts=*/4, /*window=*/8);
  // Every hardware attempt aborts: after enough windows the controller
  // should have shrunk the per-transaction attempt budget to the floor.
  for (int txn = 0; txn < 32; ++txn) {
    ScriptedEnv env;
    env.hw = std::vector<AttemptStatus>(8, AttemptStatus::kAborted);
    env.sw = {AttemptStatus::kCommitted};
    EXPECT_TRUE(f.run(p, env));
  }
  EXPECT_EQ(f.ts.adaptive.budget(p), p.adaptive.min_attempts);
  ScriptedEnv env;
  env.hw = std::vector<AttemptStatus>(8, AttemptStatus::kAborted);
  env.sw = {AttemptStatus::kCommitted};
  EXPECT_TRUE(f.run(p, env));
  EXPECT_EQ(env.hw_calls, 1);  // only the floor's worth of hardware attempts
}

// --------------------------------------------------------------- per-thread

TEST(PerThread, AggregateAndResetCoverAllSlots) {
  struct Ctx : TxThreadState {};
  PerThread<Ctx> slots(4);
  for (int t = 0; t < slots.size(); ++t) {
    slots[t].stats.commits = static_cast<std::uint64_t>(t + 1);
    slots[t].stats.hw_aborts = 2;
  }
  const TmStats agg = aggregate_thread_stats(slots);
  EXPECT_EQ(agg.commits, 1u + 2u + 3u + 4u);
  EXPECT_EQ(agg.hw_aborts, 8u);

  reset_thread_stats(slots);
  EXPECT_EQ(aggregate_thread_stats(slots).commits, 0u);
  EXPECT_EQ(aggregate_thread_stats(slots).hw_aborts, 0u);
}

}  // namespace
}  // namespace nvhalt::runtime
