// Progress tests (paper Sec. 2 "A New Progress Guarantee for Hybrid TM",
// Sec. 3.6 and Fig. 6): O(1)-abortable weak vs strong progressiveness.
#include <gtest/gtest.h>

#include <atomic>

#include "core/nvhalt_tm.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::run_threads;
using test::small_config;

TEST(Progress, HardwareAttemptsAreBoundedByC) {
  // O(1)-abortable: with every hardware access aborting spuriously, a
  // transaction performs exactly C hardware attempts before falling back.
  for (const int c : {0, 1, 5, 10}) {
    RunnerConfig cfg = small_config(TmKind::kNvHalt);
    cfg.htm.spurious_abort_prob = 1.0;
    cfg.nvhalt.htm_attempts = c;
    TmRunner runner(cfg);
    auto& tm = runner.tm();
    const gaddr_t a = runner.alloc().raw_alloc(0, 1);
    EXPECT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 1); }));
    EXPECT_EQ(tm.stats().hw_aborts, static_cast<std::uint64_t>(c));
    EXPECT_EQ(tm.stats().sw_commits, 1u);
  }
}

TEST(Progress, SwAbortsOnlyOnConflict) {
  // Weak progressiveness: an uncontended software transaction never aborts.
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.htm_attempts = 0;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  for (int i = 0; i < 100; ++i) tm.run(0, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  EXPECT_EQ(tm.stats().sw_aborts, 0u);
  EXPECT_EQ(tm.stats().sw_commits, 100u);
}

// The Fig. 6 workload: T1 updates the front of an array then reads the rest
// ascending; T2 updates the back and reads descending. A weakly progressive
// TM can abort both forever; NV-HALT-SP (sorted acquisition + global clock)
// guarantees at least one of any conflicting set commits, so the workload
// always finishes. (gtest's per-test timeout converts a livelock into a
// failure.)
void run_fig6_workload(TransactionalMemory& tm, TxAllocator& alloc, int txns_per_thread) {
  constexpr std::size_t kSlots = 16;
  const gaddr_t arr = alloc.raw_alloc_large(kSlots);
  run_threads(2, [&](int tid) {
    for (int i = 0; i < txns_per_thread; ++i) {
      tm.run(tid, [&](Tx& tx) {
        if (tid == 0) {
          tx.write(arr, tx.read(arr) + 1);
          for (std::size_t s = 1; s < kSlots; ++s) (void)tx.read(arr + s);
        } else {
          tx.write(arr + kSlots - 1, tx.read(arr + kSlots - 1) + 1);
          for (std::size_t s = kSlots - 1; s-- > 0;) (void)tx.read(arr + s);
        }
      });
    }
  });
  // Both threads finished: their updates are all present.
  word_t front = 0, back = 0;
  tm.run(0, [&](Tx& tx) {
    front = tx.read(arr);
    back = tx.read(arr + kSlots - 1);
  });
  EXPECT_EQ(front, static_cast<word_t>(txns_per_thread));
  EXPECT_EQ(back, static_cast<word_t>(txns_per_thread));
}

TEST(Progress, Fig6WorkloadCompletesUnderStrongProgressiveSw) {
  // Pure software path of NV-HALT-SP: strong progressiveness forbids the
  // mutual-abort cycle of Fig. 6.
  RunnerConfig cfg = small_config(TmKind::kNvHaltSp);
  cfg.nvhalt.htm_attempts = 0;
  TmRunner runner(cfg);
  run_fig6_workload(runner.tm(), runner.alloc(), 200);
  // Strongly progressive: at most one of two conflicting txns aborts per
  // "round", so aborts are bounded by commits (no livelock signature).
  const TmStats s = runner.tm().stats();
  EXPECT_EQ(s.commits, 401u);
}

TEST(Progress, Fig6WorkloadCompletesUnderFullNvHaltSp) {
  TmRunner runner(small_config(TmKind::kNvHaltSp));
  run_fig6_workload(runner.tm(), runner.alloc(), 200);
}

TEST(Progress, Fig6WorkloadCompletesUnderWeakWithHwEscape) {
  // Weak NV-HALT has no strong-progress guarantee, but the hardware path +
  // randomized backoff make the Fig. 6 workload terminate in practice; the
  // guarantee difference is probed deterministically below.
  TmRunner runner(small_config(TmKind::kNvHalt));
  run_fig6_workload(runner.tm(), runner.alloc(), 100);
}

TEST(Progress, WeakSwCanAbortBothConflictingTxns) {
  // Deterministic seed of the Fig. 6 mutual-abort: jam a lock so that a
  // weakly progressive software transaction aborts without any transaction
  // committing — allowed by weak, forbidden (for the whole set) by strong.
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.htm_attempts = 0;
  cfg.nvhalt.max_sw_retries = 2;
  TmRunner runner(cfg);
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const gaddr_t b = runner.alloc().raw_alloc(0, 1);
  auto lk = nv.locks().ref(b);
  lk.s->store(lockword::make(1, true, 7));  // as if T2 holds b forever
  EXPECT_FALSE(runner.tm().run(0, [&](Tx& tx) {
    tx.write(a, 1);
    (void)tx.read(b);
  }));
  EXPECT_EQ(runner.tm().stats().commits, 0u);  // nobody won this conflict
}

TEST(Progress, SpSortsWriteSetsSoOpposingOrdersCannotDeadlockAbort) {
  // Two transactions writing {a, b} in opposite program order: under SP the
  // commit-time acquisition order is address-sorted for both, so repeated
  // mutual lock-grab aborts cannot occur; the workload drains quickly.
  RunnerConfig cfg = small_config(TmKind::kNvHaltSp);
  cfg.nvhalt.htm_attempts = 0;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const gaddr_t b = runner.alloc().raw_alloc(0, 1);
  run_threads(2, [&](int tid) {
    for (int i = 0; i < 200; ++i) {
      tm.run(tid, [&](Tx& tx) {
        if (tid == 0) {
          tx.write(a, tx.read(a) + 1);
          tx.write(b, tx.read(b) + 1);
        } else {
          tx.write(b, tx.read(b) + 1);
          tx.write(a, tx.read(a) + 1);
        }
      });
    }
  });
  word_t va = 0, vb = 0;
  tm.run(0, [&](Tx& tx) {
    va = tx.read(a);
    vb = tx.read(b);
  });
  EXPECT_EQ(va, 400u);
  EXPECT_EQ(vb, 400u);
}

TEST(Progress, UserAbortIsNotRetried) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  int body_runs = 0;
  EXPECT_FALSE(tm.run(0, [&](Tx& tx) {
    ++body_runs;
    tx.write(a, 1);
    tx.abort();
  }));
  EXPECT_EQ(body_runs, 1);  // voluntary abort ends the transaction, no retry
}

}  // namespace
}  // namespace nvhalt
