// Opacity stress tests: every transaction body — including attempts that
// later abort — must only ever observe consistent snapshots. The classic
// detector: maintain a zero-sum invariant over an array; any body that
// computes a nonzero sum has seen an inconsistent (non-atomic) state.
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::run_threads;
using test::small_config;

class OpacityStressTest : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, OpacityStressTest, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

TEST_P(OpacityStressTest, ZeroSumInvariantNeverObservedBroken) {
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  constexpr std::size_t kSlots = 32;
  constexpr int kThreads = 4;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);

  std::atomic<std::uint64_t> violations{0};
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 7919 + 13);
    for (int i = 0; i < 400; ++i) {
      if (rng.next_bool(0.5)) {
        // Transfer: move a unit between two random slots (sum stays 0).
        const gaddr_t x = arr + rng.next_bounded(kSlots);
        const gaddr_t y = arr + rng.next_bounded(kSlots);
        tm.run(tid, [&](Tx& tx) {
          tx.write(x, tx.read(x) - 1);
          tx.write(y, tx.read(y) + 1);
        });
      } else {
        // Audit: a full-array read must always sum to zero, even in
        // attempts that subsequently abort.
        tm.run(tid, [&](Tx& tx) {
          std::int64_t sum = 0;
          for (std::size_t s = 0; s < kSlots; ++s)
            sum += static_cast<std::int64_t>(tx.read(arr + s));
          if (sum != 0) violations.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(violations.load(), 0u);
}

TEST_P(OpacityStressTest, ZeroSumHoldsUnderSpuriousAborts) {
  RunnerConfig cfg = small_config(GetParam());
  cfg.htm.spurious_abort_prob = 0.05;  // force frequent path mixing
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  constexpr std::size_t kSlots = 16;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);

  std::atomic<std::uint64_t> violations{0};
  std::array<std::array<std::int64_t, kSlots>, 3> committed_delta{};
  run_threads(3, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 41);
    for (int i = 0; i < 300; ++i) {
      const gaddr_t x = arr + rng.next_bounded(kSlots);
      const gaddr_t y = arr + rng.next_bounded(kSlots);
      const bool ok = tm.run(tid, [&](Tx& tx) {
        std::int64_t sum = 0;
        for (std::size_t s = 0; s < kSlots; ++s)
          sum += static_cast<std::int64_t>(tx.read(arr + s));
        if (sum != 0) violations.fetch_add(1);
        tx.write(x, tx.read(x) - 1);
        tx.write(y, tx.read(y) + 1);
      });
      if (ok) {
        committed_delta[static_cast<std::size_t>(tid)][x - arr] -= 1;
        committed_delta[static_cast<std::size_t>(tid)][y - arr] += 1;
      }
    }
  });
  EXPECT_EQ(violations.load(), 0u);
  for (std::size_t s = 0; s < kSlots; ++s) {
    std::int64_t expect = 0;
    for (int t = 0; t < 3; ++t) expect += committed_delta[static_cast<std::size_t>(t)][s];
    const auto actual = static_cast<std::int64_t>(runner.pool().load(arr + s));
    EXPECT_EQ(actual, expect) << "slot " << s << " diverged from committed deltas";
  }

  std::int64_t final_sum = 0;
  tm.run(0, [&](Tx& tx) {
    final_sum = 0;  // the body may be re-executed after an aborted attempt
    for (std::size_t s = 0; s < kSlots; ++s)
      final_sum += static_cast<std::int64_t>(tx.read(arr + s));
  });
  EXPECT_EQ(final_sum, 0);
}

TEST_P(OpacityStressTest, WriteSkewIsPrevented) {
  // Classic write-skew: two transactions each read both slots and write one.
  // A serializable TM must not let both commit from the same snapshot in a
  // way that violates x + y >= 0 style constraints; here we use the
  // stronger exact-count check.
  TmRunner runner(small_config(GetParam()));
  auto& tm = runner.tm();
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  const gaddr_t y = runner.alloc().raw_alloc(0, 1);
  tm.run(0, [&](Tx& tx) {
    tx.write(x, 100);
    tx.write(y, 100);
  });
  run_threads(2, [&](int tid) {
    for (int i = 0; i < 100; ++i) {
      tm.run(tid, [&](Tx& tx) {
        const word_t vx = tx.read(x);
        const word_t vy = tx.read(y);
        if (vx + vy > 0) {
          // Withdraw 1 from "my" slot only if the combined balance allows.
          const gaddr_t mine = tid == 0 ? x : y;
          const word_t v = tid == 0 ? vx : vy;
          tx.write(mine, v - 1);
        }
      });
    }
  });
  word_t fx = 0, fy = 0;
  tm.run(0, [&](Tx& tx) {
    fx = tx.read(x);
    fy = tx.read(y);
  });
  // 200 decrements guarded by a combined balance of 200: exact drain, no
  // underflow (underflow would wrap to a huge number).
  EXPECT_EQ(fx + fy, 0u);
  EXPECT_LE(fx, 100u);
  EXPECT_LE(fy, 100u);
}

}  // namespace
}  // namespace nvhalt
