// Tests for the persistent flight recorder (telemetry/flight_recorder.hpp):
// header seeding, record round-trips, torn-slot detection against the
// documented on-NVM slot format, recovery cursor adoption, the crash-prefix
// sweep over recorder fence boundaries for all five TMs, a replayable
// torn-record triple, and a TSan-facing concurrency stress
// (FlightRecorderConcurrency, matched by the tsan-concurrency preset).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crash_harness.hpp"
#include "telemetry/flight_recorder.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

namespace tel = telemetry;

using test::all_kinds;
using test::CrashHarnessOptions;
using test::CrashImageVerifier;
using test::CrashTraceBundle;
using test::run_crash_workload;

/// Standalone pool sized for one recorder (header + 128 line-padded rings).
PmemConfig recorder_pool_config() {
  PmemConfig pc;
  pc.capacity_words = std::size_t{1} << 12;
  pc.raw_words = tel::FlightRecorder::metadata_words() + (std::size_t{1} << 10);
  return pc;
}

// The slot format is a durability contract (a postmortem must decode images
// written by older builds), so the test re-derives it from the documented
// constants instead of reaching into the class.
constexpr std::uint64_t kSalt = 0x9E3779B97F4A7C15ULL;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t pack_slot(std::uint32_t seq, tel::EventKind kind, std::uint8_t cause,
                        std::uint16_t arg) {
  return (static_cast<std::uint64_t>(seq) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 24) |
         (static_cast<std::uint64_t>(cause) << 16) | arg;
}

/// Raw index of thread 0's first slot: header line, then ring 0.
std::size_t ring0_base(const tel::FlightRecorder& fr) {
  return fr.base_raw_index() + kWordsPerLine;
}

TEST(FlightRecorderTest, HeaderSeededDurablyOnConstruction) {
  PmemPool pool(recorder_pool_config());
  tel::FlightRecorder fr(pool);
  const tel::PostmortemReport pm = fr.postmortem();
  EXPECT_TRUE(pm.header_valid);
  EXPECT_EQ(pm.slots_per_thread, tel::FlightRecorder::kDefaultSlots);
  EXPECT_EQ(pm.total_valid, 0u);
  EXPECT_EQ(pm.total_torn, 0u);
  EXPECT_TRUE(pm.per_thread.empty());
}

TEST(FlightRecorderTest, RecordRoundTripAndOpenTxReconstruction) {
  if constexpr (tel::kLevel < 1)
    GTEST_SKIP() << "record() compiles to nothing below telemetry level 1";

  PmemPool pool(recorder_pool_config());
  tel::FlightRecorder fr(pool);

  // Thread 0: a closed transaction (begin, lock, commit) plus a fence stamp.
  fr.record(0, tel::EventKind::kTxBegin);
  fr.record(0, tel::EventKind::kLockAcquire, 0xFF, 3);
  fr.record(0, tel::EventKind::kFence, 0xFF, 2);
  fr.record(0, tel::EventKind::kHwCommit);
  pool.fence(0);
  // Thread 1: a transaction still open at "crash", holding one lock.
  fr.record(1, tel::EventKind::kTxBegin);
  fr.record(1, tel::EventKind::kLockAcquire, 0xFF, 1);
  pool.fence(1);

  const tel::PostmortemReport pm = fr.postmortem();
  ASSERT_TRUE(pm.header_valid);
  EXPECT_EQ(pm.total_valid, 6u);
  EXPECT_EQ(pm.total_torn, 0u);
  ASSERT_EQ(pm.per_thread.size(), 2u);

  const tel::FrThreadPostmortem& t0 = pm.per_thread[0];
  EXPECT_EQ(t0.tid, 0);
  EXPECT_EQ(t0.valid, 4u);
  EXPECT_FALSE(t0.open_tx);
  ASSERT_EQ(t0.events.size(), 4u);
  EXPECT_EQ(t0.events.front().kind, tel::EventKind::kTxBegin);
  EXPECT_EQ(t0.events[1].kind, tel::EventKind::kLockAcquire);
  EXPECT_EQ(t0.events[1].arg, 3u);
  EXPECT_EQ(t0.events.back().kind, tel::EventKind::kHwCommit);
  for (std::size_t i = 1; i < t0.events.size(); ++i)
    EXPECT_GT(t0.events[i].seq, t0.events[i - 1].seq) << "records must sort by seq";

  const tel::FrThreadPostmortem& t1 = pm.per_thread[1];
  EXPECT_EQ(t1.tid, 1);
  EXPECT_TRUE(t1.open_tx);
  EXPECT_EQ(t1.held_locks, 1u);

  // The artifact serialization round-trips losslessly.
  const std::string text = tel::serialize_postmortem(pm, "unit");
  tel::PostmortemReport rt;
  std::string tm_name, err;
  ASSERT_TRUE(tel::parse_postmortem(text, rt, &tm_name, &err)) << err;
  EXPECT_EQ(tm_name, "unit");
  EXPECT_EQ(rt.total_valid, pm.total_valid);
  EXPECT_EQ(rt.total_torn, pm.total_torn);
  ASSERT_EQ(rt.per_thread.size(), pm.per_thread.size());
  EXPECT_EQ(rt.per_thread[1].open_tx, true);
  EXPECT_EQ(rt.per_thread[1].held_locks, 1u);
}

TEST(FlightRecorderTest, TornAndZeroSeqSlotsAreCountedNeverFatal) {
  PmemPool pool(recorder_pool_config());
  tel::FlightRecorder fr(pool);
  const std::size_t ring0 = ring0_base(fr);

  // Slot 0: a valid record written in the recorder's own format.
  const std::uint64_t good = pack_slot(1, tel::EventKind::kTxBegin, 0xFF, 0);
  pool.raw_store(0, ring0 + 0, good);
  pool.raw_store(0, ring0 + 1, mix64(good ^ kSalt));
  pool.flush_raw(0, ring0 + 0);
  // Slot 1: w0 durable, checksum missing — the torn shape a crash between
  // the two slot stores leaves behind.
  const std::uint64_t torn = pack_slot(2, tel::EventKind::kHwCommit, 0xFF, 0);
  pool.raw_store(0, ring0 + 2, torn);
  pool.raw_store(0, ring0 + 3, 0xBAD);
  pool.flush_raw(0, ring0 + 2);
  // Slot 2: nonzero payload but zero sequence — also torn, never decoded.
  const std::uint64_t zeroseq = pack_slot(0, tel::EventKind::kSwCommit, 0xFF, 7);
  pool.raw_store(0, ring0 + 4, zeroseq);
  pool.raw_store(0, ring0 + 5, mix64(zeroseq ^ kSalt));
  pool.flush_raw(0, ring0 + 4);
  pool.fence(0);

  const tel::PostmortemReport pm = fr.postmortem();
  ASSERT_TRUE(pm.header_valid);
  EXPECT_EQ(pm.total_valid, 1u);
  EXPECT_EQ(pm.total_torn, 2u);
  ASSERT_EQ(pm.per_thread.size(), 1u);
  EXPECT_EQ(pm.per_thread[0].valid, 1u);
  EXPECT_EQ(pm.per_thread[0].torn, 2u);
  EXPECT_EQ(pm.per_thread[0].events.front().kind, tel::EventKind::kTxBegin);
}

TEST(FlightRecorderTest, OnRecoverResumesSequencesPastDecodedHistory) {
  if constexpr (tel::kLevel < 1)
    GTEST_SKIP() << "record() compiles to nothing below telemetry level 1";

  PmemPool pool(recorder_pool_config());
  tel::FlightRecorder fr(pool);
  fr.record(0, tel::EventKind::kTxBegin);
  fr.record(0, tel::EventKind::kHwCommit);
  pool.fence(0);
  const tel::PostmortemReport before = fr.postmortem();
  const std::uint32_t last = before.per_thread.at(0).last_seq;

  fr.on_recover(0);
  fr.record(0, tel::EventKind::kTxBegin);
  pool.fence(0);

  const tel::PostmortemReport after = fr.postmortem();
  ASSERT_TRUE(after.header_valid);
  const tel::FrThreadPostmortem& t0 = after.per_thread.at(0);
  // kRecovery stamp + the new begin, both sequenced past decoded history.
  bool saw_recovery = false;
  for (const tel::FrEvent& e : t0.events) {
    saw_recovery |= e.kind == tel::EventKind::kRecovery;
    if (e.kind == tel::EventKind::kRecovery || e.seq > last) EXPECT_GT(e.seq, last);
  }
  EXPECT_TRUE(saw_recovery);
  EXPECT_TRUE(t0.open_tx) << "new begin after the recovery stamp is open";
}

// ---- Crash-prefix sweep over recorder fence boundaries, all five TMs ------

class FlightRecorderCrashSweep : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, FlightRecorderCrashSweep, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

TEST_P(FlightRecorderCrashSweep, EveryBoundaryYieldsValidPostmortem) {
  CrashHarnessOptions opt;
  opt.kind = GetParam();
  opt.txs_per_thread = 6;
  opt.flight_recorder = true;
  const CrashTraceBundle tr = run_crash_workload(opt);

  CrashEnumOptions eopt;
  eopt.subset_seeds_per_prefix = 1;
  // The recorder multiplies journal traffic (two stores + flush per
  // lifecycle record); stride-sample the boundaries to keep the suite in
  // tier-1 time while still covering early, mid and tail crash points.
  eopt.max_prefixes = 48;
  CrashEnumerator en(tr.events, eopt);
  ASSERT_GT(en.boundaries().size(), 20u);

  // The verifier's section 0 requires a decodable, round-trippable
  // postmortem from every image on top of the durability invariants.
  CrashImageVerifier verifier(tr);
  const auto failure = en.run(verifier.checker());
  ASSERT_FALSE(failure.has_value())
      << "at " << failure->triple.to_string() << ": " << failure->why;
  EXPECT_GT(en.stats().images_checked, 0u);
}

// ---- Replayable torn-record triple ---------------------------------------

TEST(FlightRecorderTest, TornRecordTripleIsReplayable) {
  // Deterministic single-thread trace: journal a recorder whose slot is cut
  // mid-record by the crash adversary, then pin the (hash, prefix, seed)
  // triple and replay it to the bit-identical torn image.
  PersistJournal journal;
  PmemConfig pc = recorder_pool_config();
  pc.track_store_order = true;
  pc.journal = &journal;
  PmemPool pool(pc);
  tel::FlightRecorder fr(pool);
  const std::size_t ring0 = ring0_base(fr);

  const std::size_t scratch = pool.alloc_raw(kWordsPerLine);

  const std::uint64_t w0 = pack_slot(1, tel::EventKind::kTxBegin, 0xFF, 0);
  pool.raw_store(0, ring0 + 0, w0);
  pool.raw_store(0, ring0 + 1, mix64(w0 ^ kSalt));
  // Another thread's fence while the slot line is still dirty: this plants
  // a crash boundary where the adversary may spontaneously write back a
  // store-order *prefix* of the line — exactly the torn-record window.
  // (A fence with an empty queue journals nothing, so thread 1 flushes a
  // scratch line of its own to make the boundary real.)
  pool.raw_store(1, scratch, 0x5C);
  pool.flush_raw(1, scratch);
  pool.fence(1);
  pool.flush_raw(0, ring0 + 0);
  pool.fence(0);
  const std::vector<PersistEvent> trace = journal.events();
  const std::uint64_t hash = PersistJournal::hash(trace);

  // Hunt the boundary/seed space for an image whose postmortem reports the
  // torn slot (w0 written back, checksum not) under a valid header.
  const auto decode = [&](const CrashImage& img) {
    PmemPool verify_pool(recorder_pool_config());
    tel::FlightRecorder verify_fr(verify_pool);
    verify_pool.install_crash_image(img.words);
    return verify_fr.postmortem();
  };
  CrashEnumerator en(trace, CrashEnumOptions{});
  std::optional<CrashTriple> torn_triple;
  for (const std::size_t prefix : en.boundaries()) {
    for (std::uint64_t s = 0; s <= 32 && !torn_triple; ++s) {
      const std::uint64_t seed = s == 0 ? 0 : en.subset_seed_for(prefix, s);
      const tel::PostmortemReport pm =
          decode(materialize_crash_image(trace, prefix, seed));
      if (pm.header_valid && pm.total_torn == 1 && pm.total_valid == 0)
        torn_triple = CrashTriple{hash, prefix, seed};
    }
    if (torn_triple) break;
  }
  ASSERT_TRUE(torn_triple.has_value())
      << "no enumerated image tears the recorder slot — adversary lost its teeth";

  // The pinned triple replays deterministically: same image, same decode.
  const CrashImage again =
      materialize_crash_image(trace, torn_triple->prefix, torn_triple->subset_seed);
  const tel::PostmortemReport pm = decode(again);
  EXPECT_TRUE(pm.header_valid);
  EXPECT_EQ(pm.total_torn, 1u);
  EXPECT_EQ(pm.total_valid, 0u);
  EXPECT_EQ(PersistJournal::hash(trace), torn_triple->trace_hash);
}

// ---- Concurrency stress (tsan-concurrency preset) -------------------------

TEST(FlightRecorderConcurrency, ConcurrentRecordersStayDisjoint) {
  PmemConfig pc = recorder_pool_config();
  PmemPool pool(pc);
  tel::FlightRecorder fr(pool);

  constexpr int kThreads = 4;
  constexpr int kRecords = 200;  // wraps the 64-slot ring several times
  test::run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kRecords; ++i) {
      fr.record(t, tel::EventKind::kTxBegin);
      fr.record(t, tel::EventKind::kHwCommit, 0xFF, static_cast<std::uint16_t>(i));
      if (i % 8 == 7) pool.fence(t);
    }
    pool.fence(t);
  });

  const tel::PostmortemReport pm = fr.postmortem();
  ASSERT_TRUE(pm.header_valid);
  if constexpr (tel::kLevel >= 1) {
    ASSERT_EQ(pm.per_thread.size(), static_cast<std::size_t>(kThreads));
    for (const tel::FrThreadPostmortem& t : pm.per_thread) {
      // Quiescent full-ring decode: every surviving slot checks out and the
      // ring holds exactly the last slots_per_thread records.
      EXPECT_EQ(t.torn, 0u);
      EXPECT_EQ(t.valid, fr.slots_per_thread());
      EXPECT_EQ(t.last_seq, static_cast<std::uint32_t>(2 * kRecords));
    }
  } else {
    EXPECT_EQ(pm.total_valid, 0u);
  }
}

}  // namespace
}  // namespace nvhalt
