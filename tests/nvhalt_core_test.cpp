// Tests for the NV-HALT TM core: both paths, both variants, both lock
// modes, persistence behaviour, retry policy, and the O(1)-abortable
// progress structure.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/nvhalt_tm.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::run_threads;
using test::small_config;

class NvHaltVariantTest : public ::testing::TestWithParam<TmKind> {
 protected:
  void SetUp() override { runner_ = std::make_unique<TmRunner>(small_config(GetParam())); }
  TransactionalMemory& tm() { return runner_->tm(); }
  std::unique_ptr<TmRunner> runner_;
};

INSTANTIATE_TEST_SUITE_P(AllNvHalt, NvHaltVariantTest,
                         ::testing::Values(TmKind::kNvHalt, TmKind::kNvHaltCl,
                                           TmKind::kNvHaltSp),
                         test::kind_param_name);

TEST_P(NvHaltVariantTest, ReadWriteRoundTrip) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 2);
  EXPECT_TRUE(tm().run(0, [&](Tx& tx) {
    tx.write(a, 7);
    tx.write(a + 1, 8);
  }));
  tm().run(0, [&](Tx& tx) {
    EXPECT_EQ(tx.read(a), 7u);
    EXPECT_EQ(tx.read(a + 1), 8u);
  });
}

TEST_P(NvHaltVariantTest, ReadOwnWritesWithinTxn) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  tm().run(0, [&](Tx& tx) {
    tx.write(a, 1);
    EXPECT_EQ(tx.read(a), 1u);
    tx.write(a, 2);
    EXPECT_EQ(tx.read(a), 2u);
  });
  tm().run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 2u); });
}

TEST_P(NvHaltVariantTest, VoluntaryAbortDiscardsEverything) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  EXPECT_FALSE(tm().run(0, [&](Tx& tx) {
    tx.write(a, 99);
    tx.abort();
  }));
  tm().run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 0u); });
  EXPECT_EQ(tm().stats().user_aborts, 1u);
}

TEST_P(NvHaltVariantTest, CommittedWriteIsDurableRecord) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  tm().run(0, [&](Tx& tx) { tx.write(a, 41); });
  tm().run(0, [&](Tx& tx) { tx.write(a, 42); });
  // Trinity record: durable image holds the new value; old holds the
  // previous committed value; pver names the writing thread.
  const PRecord r = tm().pool().read_durable_record(a);
  EXPECT_EQ(r.cur, 42u);
  EXPECT_EQ(r.old, 41u);
  EXPECT_EQ(pver_tid(r.pver), 0);
  // The durable persistent version number has moved past the record's.
  EXPECT_GT(tm().pool().load_pver(0), pver_seq(r.pver));
}

TEST_P(NvHaltVariantTest, HwPathUsedWhenAvailable) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  for (int i = 0; i < 20; ++i) tm().run(0, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  const TmStats s = tm().stats();
  EXPECT_EQ(s.commits, 20u);
  EXPECT_GT(s.hw_commits, 0u);  // uncontended transactions stay in hardware
}

TEST_P(NvHaltVariantTest, OnHwPathReportedCorrectly) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  bool saw_hw = false;
  tm().run(0, [&](Tx& tx) {
    saw_hw = tx.on_hw_path();
    tx.write(a, 1);
  });
  EXPECT_TRUE(saw_hw);
}

TEST_P(NvHaltVariantTest, LocksReleasedAfterHwCommit) {
  auto& nv = dynamic_cast<NvHaltTm&>(tm());
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  tm().run(0, [&](Tx& tx) { tx.write(a, 5); });
  const std::uint64_t w = nv.locks().ref(a).s->load();
  EXPECT_FALSE(lockword::is_locked(w));
  // The lock cycled through exactly one acquire + release.
  EXPECT_EQ(lockword::version(w), 2u);
}

TEST_P(NvHaltVariantTest, SwPathWorksWhenHwDisabled) {
  RunnerConfig cfg = small_config(GetParam());
  cfg.nvhalt.htm_attempts = 0;  // pure software mode
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = tm.allocator().raw_alloc(0, 1);
  for (int i = 0; i < 10; ++i) tm.run(0, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 10u); });
  const TmStats s = tm.stats();
  EXPECT_EQ(s.hw_commits, 0u);
  EXPECT_EQ(s.sw_commits, 11u);
}

TEST_P(NvHaltVariantTest, SpuriousAbortsFallBackAndStillCommit) {
  RunnerConfig cfg = small_config(GetParam());
  cfg.htm.spurious_abort_prob = 1.0;  // every HW access aborts
  cfg.nvhalt.htm_attempts = 3;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = tm.allocator().raw_alloc(0, 1);
  EXPECT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(a, 9); }));
  const TmStats s = tm.stats();
  EXPECT_EQ(s.sw_commits, 1u);   // fell back
  EXPECT_EQ(s.hw_aborts, 3u);    // exactly C attempts (O(1)-abortable)
  EXPECT_EQ(s.fallbacks, 1u);
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 9u); });
}

TEST_P(NvHaltVariantTest, ConcurrentCountersLoseNoUpdates) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 300;
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  run_threads(kThreads, [&](int tid) {
    for (int i = 0; i < kIncrements; ++i)
      tm().run(tid, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  });
  tm().run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), kThreads * kIncrements); });
}

TEST_P(NvHaltVariantTest, DisjointCountersProceedConcurrently) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 300;
  std::vector<gaddr_t> slots;
  for (int t = 0; t < kThreads; ++t) slots.push_back(tm().allocator().raw_alloc(0, 1));
  run_threads(kThreads, [&](int tid) {
    for (int i = 0; i < kIncrements; ++i)
      tm().run(tid, [&](Tx& tx) { tx.write(slots[tid], tx.read(slots[tid]) + 1); });
  });
  for (int t = 0; t < kThreads; ++t)
    tm().run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(slots[t]), kIncrements); });
}

TEST_P(NvHaltVariantTest, AllocFreeTiedToTxnOutcome) {
  gaddr_t got = kNullAddr;
  EXPECT_FALSE(tm().run(0, [&](Tx& tx) {
    got = tx.alloc(4);
    tx.write(got, 1);
    tx.abort();
  }));
  // The aborted allocation is recycled for the next transaction.
  gaddr_t again = kNullAddr;
  tm().run(0, [&](Tx& tx) { again = tx.alloc(4); });
  EXPECT_EQ(again, got);
}

TEST_P(NvHaltVariantTest, StatsResetWorks) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  tm().run(0, [&](Tx& tx) { tx.write(a, 1); });
  EXPECT_GT(tm().stats().commits, 0u);
  tm().reset_stats();
  EXPECT_EQ(tm().stats().commits, 0u);
}

TEST_P(NvHaltVariantTest, ReadOnlyTxnsCountedAndCheap) {
  const gaddr_t a = tm().allocator().raw_alloc(0, 1);
  tm().run(0, [&](Tx& tx) { tx.write(a, 3); });
  const std::uint64_t fences_before = tm().pool().fence_count();
  for (int i = 0; i < 5; ++i) tm().run(0, [&](Tx& tx) { (void)tx.read(a); });
  // Read-only transactions persist nothing: no fences at all.
  EXPECT_EQ(tm().pool().fence_count(), fences_before);
  EXPECT_EQ(tm().stats().read_only_commits, 5u);
}

// ---- Variant-specific behaviours --------------------------------------

TEST(NvHaltSp, HwAcquireBumpsHVer) {
  TmRunner runner(small_config(TmKind::kNvHaltSp));
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const std::uint64_t h0 = nv.locks().ref(a).h->load();
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 1); });  // HW path
  EXPECT_EQ(runner.tm().stats().hw_commits, 1u);
  EXPECT_EQ(nv.locks().ref(a).h->load(), h0 + 1);
}

TEST(NvHaltSp, SwCommitDoesNotTouchHVer) {
  RunnerConfig cfg = small_config(TmKind::kNvHaltSp);
  cfg.nvhalt.htm_attempts = 0;
  TmRunner runner(cfg);
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 1); });
  EXPECT_EQ(nv.locks().ref(a).h->load(), 0u);
  // But the global software clock advanced.
  EXPECT_GE(nv.gclock(), 1u);
}

TEST(NvHaltWeak, GClockUntouched) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.htm_attempts = 0;
  TmRunner runner(cfg);
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  runner.tm().run(0, [&](Tx& tx) { tx.write(a, 1); });
  EXPECT_EQ(nv.gclock(), 0u);
}

TEST(NvHaltCl, NameReflectsColocatedLocks) {
  TmRunner runner(small_config(TmKind::kNvHaltCl));
  EXPECT_STREQ(runner.tm().name(), "NV-HALT-CL");
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  EXPECT_EQ(nv.locks().mode(), LockMode::kColocated);
}

TEST(NvHaltConfig, NoPersistHwSkipsLockAcquisitionAndFences) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.persist_hw_txns = false;  // ablation NO-PERSISTENT-HTXN
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  const std::uint64_t fences_before = tm.pool().fence_count();
  tm.run(0, [&](Tx& tx) { tx.write(a, 5); });
  EXPECT_EQ(tm.stats().hw_commits, 1u);
  EXPECT_EQ(tm.pool().fence_count(), fences_before);  // nothing persisted
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 5u); });
}

TEST(NvHaltRetryPolicy, CapacityAbortFallsBackImmediatelyWhenEnabled) {
  // A transaction whose footprint exceeds the simulated L1 write capacity
  // aborts with kCapacity on every hardware attempt; the optional policy
  // skips the futile retries.
  for (const bool immediate : {false, true}) {
    RunnerConfig cfg = small_config(TmKind::kNvHalt);
    cfg.htm.l1_ways = 2;
    cfg.htm.l1_sets = 1;  // at most 2 written lines fit
    cfg.nvhalt.htm_attempts = 10;
    cfg.nvhalt.fallback_on_capacity = immediate;
    TmRunner runner(cfg);
    auto& tm = runner.tm();
    const gaddr_t arr = runner.alloc().raw_alloc_large(64);
    EXPECT_TRUE(tm.run(0, [&](Tx& tx) {
      for (gaddr_t i = 0; i < 64; i += 8) tx.write(arr + i, 1);  // 8 lines
    }));
    const TmStats s = tm.stats();
    EXPECT_EQ(s.sw_commits, 1u);
    if (immediate) {
      EXPECT_EQ(s.hw_aborts, 1u);  // one capacity abort, straight to SW
    } else {
      EXPECT_EQ(s.hw_aborts, 10u);  // the paper's fixed-attempt policy
    }
  }
}

TEST(NvHaltEadr, WorksWithoutAnyFencesEndToEnd) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.pmem.eadr = true;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  for (int i = 0; i < 50; ++i) tm.run(0, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  EXPECT_EQ(runner.pool().fence_count(), 0u);
  EXPECT_EQ(runner.pool().flush_count(), 0u);
  tm.run(0, [&](Tx& tx) { EXPECT_EQ(tx.read(a), 50u); });
}

TEST(NvHaltProgress, BoundedSwRetriesReturnFalseUnderPermanentConflict) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.nvhalt.htm_attempts = 0;
  cfg.nvhalt.max_sw_retries = 3;
  TmRunner runner(cfg);
  auto& nv = dynamic_cast<NvHaltTm&>(runner.tm());
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  // Jam the lock as if another thread held it forever.
  auto lk = nv.locks().ref(a);
  lk.s->store(lockword::make(1, true, 7));
  EXPECT_FALSE(runner.tm().run(0, [&](Tx& tx) { tx.write(a, 1); }));
  EXPECT_GE(runner.tm().stats().sw_aborts, 4u);  // initial + 3 retries
}

TEST(NvHaltCapacity, OversizedTransactionsCompleteOnSoftwarePath) {
  // A transaction whose write set exceeds the simulated L1 cannot commit in
  // hardware, ever; the O(1)-abortable structure guarantees it completes on
  // the software path (which has no capacity limit).
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.htm.l1_ways = 2;
  cfg.htm.l1_sets = 2;  // at most 4 written lines fit in "hardware"
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t arr = runner.alloc().raw_alloc_large(1024);
  EXPECT_TRUE(tm.run(0, [&](Tx& tx) {
    for (gaddr_t i = 0; i < 1024; ++i) tx.write(arr + i, i + 1);
  }));
  EXPECT_EQ(tm.stats().sw_commits, 1u);
  EXPECT_EQ(tm.stats().hw_commits, 0u);
  tm.run(0, [&](Tx& tx) {
    for (gaddr_t i = 0; i < 1024; i += 97) EXPECT_EQ(tx.read(arr + i), i + 1);
  });
  // And the whole write set is durable.
  EXPECT_EQ(runner.pool().read_durable_record(arr + 1023).cur, 1024u);
}

TEST(NvHaltCapacity, LargeReadOnlyTransactionsAlsoFallBack) {
  RunnerConfig cfg = small_config(TmKind::kNvHalt);
  cfg.htm.max_read_lines = 8;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t arr = runner.alloc().raw_alloc_large(512);
  tm.run(0, [&](Tx& tx) {
    for (gaddr_t i = 0; i < 512; i += 64) tx.write(arr + i, 1);
  });
  tm.reset_stats();
  word_t sum = 0;
  EXPECT_TRUE(tm.run(0, [&](Tx& tx) {
    sum = 0;
    for (gaddr_t i = 0; i < 512; ++i) sum += tx.read(arr + i);
  }));
  EXPECT_EQ(sum, 8u);
  EXPECT_EQ(tm.stats().sw_commits, 1u);
  EXPECT_EQ(tm.stats().read_only_commits, 1u);
}

TEST(NvHaltTm, RunIsReenterableAcrossManyThreadsAndSlots) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  const gaddr_t arr = runner.alloc().raw_alloc_large(256);
  run_threads(4, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
    for (int i = 0; i < 200; ++i) {
      const gaddr_t x = arr + rng.next_bounded(256);
      const gaddr_t y = arr + rng.next_bounded(256);
      tm.run(tid, [&](Tx& tx) {
        // Move one unit from x to y; total stays zero.
        tx.write(x, tx.read(x) - 1);
        tx.write(y, tx.read(y) + 1);
      });
    }
  });
  std::int64_t total = 0;
  tm.run(0, [&](Tx& tx) {
    total = 0;  // body may be re-executed on abort
    for (gaddr_t i = 0; i < 256; ++i) total += static_cast<std::int64_t>(tx.read(arr + i));
  });
  EXPECT_EQ(total, 0);
}

}  // namespace
}  // namespace nvhalt
