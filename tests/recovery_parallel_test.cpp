// Parallel recovery determinism: recovering the same crash image with 1,
// 2 and 8 workers must produce byte-identical pool state, asserted with
// PmemPool::image_hash (an FNV-1a digest over the volatile, staged and
// durable images). Recovery partitions are contiguous and disjoint and
// every recovery write depends only on its own record, so worker count
// may change scheduling but never the result. Covers all five TMs,
// fence-boundary and adversarial write-back images, and the
// checkpoint-enabled bounded path. The suite name matches the
// tsan-concurrency preset filter so the worker pool runs under TSan.
#include <gtest/gtest.h>

#include <vector>

#include "crash_harness.hpp"
#include "pmem/crash_enum.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::crash_config;
using test::CrashHarnessOptions;
using test::CrashTraceBundle;
using test::kind_param_name;

RunnerConfig recovery_config(TmKind kind, bool checkpoint, int workers) {
  RunnerConfig cfg = crash_config(kind, checkpoint);
  cfg.nvhalt.recovery_threads = workers;
  cfg.trinity.recovery_threads = workers;
  cfg.spht.replay_threads = workers;
  return cfg;
}

/// Recovers `img` in a fresh runner with `workers` recovery threads and
/// returns the post-recovery pool digest.
std::uint64_t recover_hash(TmKind kind, bool checkpoint, int workers, const CrashImage& img) {
  TmRunner runner(recovery_config(kind, checkpoint, workers));
  runner.pool().install_crash_image(img.words);
  runner.tm().recover_data();
  return runner.pool().image_hash();
}

class RecoveryParallelTest : public testing::TestWithParam<TmKind> {
 protected:
  void check_images(bool checkpoint) {
    CrashHarnessOptions opt;
    opt.kind = GetParam();
    opt.txs_per_thread = 8;
    opt.list_threads = 2;
    opt.checkpoint_every = checkpoint ? 3 : 0;
    const CrashTraceBundle tr = test::run_crash_workload(opt);

    // Fence-boundary images at ~25/50/100% of the trace plus one
    // adversarial write-back image at the midpoint.
    CrashEnumerator en(tr.events, CrashEnumOptions{});
    const auto& bs = en.boundaries();
    ASSERT_GE(bs.size(), 4u);
    std::vector<CrashImage> images;
    for (const std::size_t p : {bs[bs.size() / 4], bs[bs.size() / 2], bs.back()})
      images.push_back(materialize_crash_image(tr.events, p, 0));
    images.push_back(materialize_crash_image(tr.events, bs[bs.size() / 2], /*subset_seed=*/7));

    for (std::size_t i = 0; i < images.size(); ++i) {
      const std::uint64_t h1 = recover_hash(GetParam(), checkpoint, 1, images[i]);
      const std::uint64_t h2 = recover_hash(GetParam(), checkpoint, 2, images[i]);
      const std::uint64_t h8 = recover_hash(GetParam(), checkpoint, 8, images[i]);
      EXPECT_EQ(h1, h2) << "image " << i << ": 2-worker recovery diverged from serial";
      EXPECT_EQ(h1, h8) << "image " << i << ": 8-worker recovery diverged from serial";
    }
  }
};

TEST_P(RecoveryParallelTest, ByteIdenticalAcrossWorkerCounts) { check_images(false); }

TEST_P(RecoveryParallelTest, ByteIdenticalWithCheckpointEnabled) { check_images(true); }

INSTANTIATE_TEST_SUITE_P(RecoveryParallel, RecoveryParallelTest, testing::ValuesIn(all_kinds()),
                         kind_param_name);

}  // namespace
}  // namespace nvhalt
