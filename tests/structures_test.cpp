// Tests for the TM-backed data structures, parameterized over all five TMs
// (the structures must behave identically regardless of the TM beneath).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "structures/tm_hashmap.hpp"
#include "structures/tm_list.hpp"
#include "structures/tm_queue.hpp"
#include "structures/tm_skiplist.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::run_threads;
using test::small_config;

class StructuresTest : public ::testing::TestWithParam<TmKind> {
 protected:
  void SetUp() override { runner_ = std::make_unique<TmRunner>(small_config(GetParam())); }
  TransactionalMemory& tm() { return runner_->tm(); }
  std::unique_ptr<TmRunner> runner_;
};

INSTANTIATE_TEST_SUITE_P(AllTms, StructuresTest, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

// ---- Hashmap --------------------------------------------------------------

TEST_P(StructuresTest, HashMapInsertContainsRemove) {
  TmHashMap map(tm(), 1 << 8);
  EXPECT_TRUE(map.insert(0, 42, 100));
  EXPECT_FALSE(map.insert(0, 42, 200));  // duplicate
  word_t v = 0;
  EXPECT_TRUE(map.contains(0, 42, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(map.remove(0, 42));
  EXPECT_FALSE(map.remove(0, 42));
  EXPECT_FALSE(map.contains(0, 42));
}

TEST_P(StructuresTest, HashMapReusesEmptyNodes) {
  TmHashMap map(tm(), 1 << 4);
  for (word_t k = 1; k <= 64; ++k) EXPECT_TRUE(map.insert(0, k, k));
  const auto blocks_before = map.collect_live_blocks().size();
  for (word_t k = 1; k <= 64; ++k) EXPECT_TRUE(map.remove(0, k));
  for (word_t k = 65; k <= 128; ++k) EXPECT_TRUE(map.insert(0, k, k));
  // Empty-marked nodes are recycled in place only within the same bucket;
  // with 16 buckets and uniform keys, reuse keeps node count roughly flat.
  const auto blocks_after = map.collect_live_blocks().size();
  EXPECT_LE(blocks_after, blocks_before + 32);
  EXPECT_EQ(map.size_slow(), 64u);
}

TEST_P(StructuresTest, HashMapManyKeysMatchReference) {
  TmHashMap map(tm(), 1 << 8);
  std::map<word_t, word_t> ref;
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const word_t k = 1 + rng.next_bounded(500);
    const int op = static_cast<int>(rng.next_bounded(3));
    if (op == 0) {
      EXPECT_EQ(map.insert(0, k, k * 10), ref.emplace(k, k * 10).second);
    } else if (op == 1) {
      EXPECT_EQ(map.remove(0, k), ref.erase(k) > 0);
    } else {
      word_t v = 0;
      const bool found = map.contains(0, k, &v);
      EXPECT_EQ(found, ref.count(k) > 0);
      if (found) {
        EXPECT_EQ(v, ref[k]);
      }
    }
  }
  EXPECT_EQ(map.size_slow(), ref.size());
}

TEST_P(StructuresTest, HashMapConcurrentDisjointInserts) {
  TmHashMap map(tm(), 1 << 8);
  constexpr int kThreads = 4, kPerThread = 200;
  run_threads(kThreads, [&](int tid) {
    for (int i = 0; i < kPerThread; ++i) {
      const word_t k = static_cast<word_t>(tid) * 10000 + i + 1;
      EXPECT_TRUE(map.insert(tid, k, k));
    }
  });
  EXPECT_EQ(map.size_slow(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      EXPECT_TRUE(map.contains(0, static_cast<word_t>(t) * 10000 + i + 1));
}

TEST_P(StructuresTest, HashMapConcurrentMixedWorkloadStaysConsistent) {
  TmHashMap map(tm(), 1 << 6);
  constexpr int kThreads = 4;
  constexpr word_t kKeyRange = 64;
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 99);
    for (int i = 0; i < 300; ++i) {
      const word_t k = 1 + rng.next_bounded(kKeyRange);
      const int op = static_cast<int>(rng.next_bounded(3));
      if (op == 0) {
        map.insert(tid, k, k);
      } else if (op == 1) {
        map.remove(tid, k);
      } else {
        word_t v = 0;
        if (map.contains(tid, k, &v)) {
          EXPECT_EQ(v, k);  // values never corrupt
        }
      }
    }
  });
  EXPECT_LE(map.size_slow(), static_cast<std::size_t>(kKeyRange));
}

// ---- (a,b)-tree ------------------------------------------------------------

TEST_P(StructuresTest, AbTreeInsertContainsRemove) {
  TmAbTree tree(tm());
  EXPECT_TRUE(tree.insert(0, 5, 50));
  EXPECT_FALSE(tree.insert(0, 5, 51));
  word_t v = 0;
  EXPECT_TRUE(tree.contains(0, 5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_TRUE(tree.remove(0, 5));
  EXPECT_FALSE(tree.remove(0, 5));
  EXPECT_FALSE(tree.contains(0, 5));
}

TEST_P(StructuresTest, AbTreeSequentialFillAndDrain) {
  TmAbTree tree(tm());
  constexpr word_t kN = 1500;  // forces multiple levels (b = 16)
  for (word_t k = 1; k <= kN; ++k) {
    ASSERT_TRUE(tree.insert(0, k, k * 2));
    if (k % 128 == 0) {
      std::string why;
      ASSERT_TRUE(tree.validate_slow(&why)) << why;
    }
  }
  EXPECT_EQ(tree.size_slow(), kN);
  const auto keys = tree.keys_slow();
  ASSERT_EQ(keys.size(), kN);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (word_t k = 1; k <= kN; ++k) {
    word_t v = 0;
    ASSERT_TRUE(tree.contains(0, k, &v)) << k;
    EXPECT_EQ(v, k * 2);
  }
  for (word_t k = 1; k <= kN; ++k) {
    ASSERT_TRUE(tree.remove(0, k)) << k;
    if (k % 128 == 0) {
      std::string why;
      ASSERT_TRUE(tree.validate_slow(&why)) << why;
    }
  }
  EXPECT_EQ(tree.size_slow(), 0u);
  std::string why;
  EXPECT_TRUE(tree.validate_slow(&why)) << why;
}

TEST_P(StructuresTest, AbTreeRandomOpsMatchReference) {
  TmAbTree tree(tm());
  std::map<word_t, word_t> ref;
  Xoshiro256 rng(17);
  for (int i = 0; i < 4000; ++i) {
    const word_t k = 1 + rng.next_bounded(800);
    const int op = static_cast<int>(rng.next_bounded(3));
    if (op == 0) {
      EXPECT_EQ(tree.insert(0, k, k + 7), ref.emplace(k, k + 7).second);
    } else if (op == 1) {
      EXPECT_EQ(tree.remove(0, k), ref.erase(k) > 0);
    } else {
      word_t v = 0;
      const bool found = tree.contains(0, k, &v);
      EXPECT_EQ(found, ref.count(k) > 0);
      if (found) {
        EXPECT_EQ(v, ref[k]);
      }
    }
    if (i % 500 == 0) {
      std::string why;
      ASSERT_TRUE(tree.validate_slow(&why)) << why << " after op " << i;
    }
  }
  const auto keys = tree.keys_slow();
  ASSERT_EQ(keys.size(), ref.size());
  auto it = ref.begin();
  for (std::size_t i = 0; i < keys.size(); ++i, ++it) EXPECT_EQ(keys[i], it->first);
}

TEST_P(StructuresTest, AbTreeDescendingInsertThenAscendingRemove) {
  TmAbTree tree(tm());
  for (word_t k = 600; k >= 1; --k) ASSERT_TRUE(tree.insert(0, k, k));
  std::string why;
  ASSERT_TRUE(tree.validate_slow(&why)) << why;
  for (word_t k = 1; k <= 600; ++k) ASSERT_TRUE(tree.remove(0, k)) << k;
  EXPECT_EQ(tree.size_slow(), 0u);
}

TEST_P(StructuresTest, AbTreeConcurrentMixedWorkloadKeepsInvariants) {
  TmAbTree tree(tm());
  // Prefill so rebalancing happens from the start.
  for (word_t k = 2; k <= 400; k += 2) ASSERT_TRUE(tree.insert(0, k, k));
  constexpr int kThreads = 4;
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 31 + 1);
    for (int i = 0; i < 250; ++i) {
      const word_t k = 1 + rng.next_bounded(400);
      const int op = static_cast<int>(rng.next_bounded(3));
      if (op == 0) {
        tree.insert(tid, k, k);
      } else if (op == 1) {
        tree.remove(tid, k);
      } else {
        word_t v = 0;
        if (tree.contains(tid, k, &v)) {
          EXPECT_EQ(v, k);
        }
      }
    }
  });
  std::string why;
  EXPECT_TRUE(tree.validate_slow(&why)) << why;
  const auto keys = tree.keys_slow();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());  // unique
}

// ---- Sorted list ------------------------------------------------------------

TEST_P(StructuresTest, ListBasicOperations) {
  TmList list(tm());
  EXPECT_TRUE(list.insert(0, 3, 30));
  EXPECT_TRUE(list.insert(0, 1, 10));
  EXPECT_TRUE(list.insert(0, 2, 20));
  EXPECT_FALSE(list.insert(0, 2, 21));
  EXPECT_EQ(list.size_slow(), 3u);
  word_t v = 0;
  EXPECT_TRUE(list.contains(0, 2, &v));
  EXPECT_EQ(v, 20u);
  EXPECT_TRUE(list.remove(0, 2));
  EXPECT_FALSE(list.contains(0, 2));
  EXPECT_EQ(list.size_slow(), 2u);
}

TEST_P(StructuresTest, ListSumIsTransactionallyConsistent) {
  TmList list(tm());
  // Invariant: values always sum to 100 across two keys.
  list.insert(0, 1, 60);
  list.insert(0, 2, 40);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread mover([&] {
    Xoshiro256 rng(3);
    for (int i = 0; i < 300; ++i) {
      const word_t delta = rng.next_bounded(10);
      tm().run(0, [&](Tx& tx) {
        TmList l = TmList::attach(tm());
        word_t v1 = 0, v2 = 0;
        l.contains_in(tx, 1, &v1);
        l.contains_in(tx, 2, &v2);
        if (v1 >= delta) {
          // Move delta from key 1 to key 2 atomically.
          l.remove_in(tx, 1);
          l.remove_in(tx, 2);
          l.insert_in(tx, 1, v1 - delta);
          l.insert_in(tx, 2, v2 + delta);
        }
      });
    }
    stop.store(true);
  });
  std::thread checker([&] {
    while (!stop.load()) {
      if (list.sum_values(1) != 100u) violation.store(true);
    }
  });
  mover.join();
  checker.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(list.sum_values(0), 100u);
}

TEST_P(StructuresTest, AbTreeRangeScanReturnsSortedWindow) {
  TmAbTree tree(tm());
  for (word_t k = 1; k <= 500; k += 3) ASSERT_TRUE(tree.insert(0, k, k * 2));
  const auto r = tree.range(0, 100, 200);
  ASSERT_FALSE(r.empty());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_GE(r[i].first, 100u);
    EXPECT_LE(r[i].first, 200u);
    EXPECT_EQ(r[i].second, r[i].first * 2);
    if (i > 0) {
      EXPECT_LT(r[i - 1].first, r[i].first);
    }
  }
  // Exact count: keys 100..200 hitting 1 mod 3 -> 102..199 step 3 = 34.
  std::size_t expect = 0;
  for (word_t k = 100; k <= 200; ++k) expect += (k % 3) == 1;
  EXPECT_EQ(r.size(), expect);
  // Boundary behaviour: inclusive on both ends.
  EXPECT_EQ(tree.range(0, 1, 1).size(), 1u);
  EXPECT_TRUE(tree.range(0, 2, 3).empty());
  EXPECT_EQ(tree.range(0, 0, 10000).size(), tree.size_slow());
}

TEST_P(StructuresTest, AbTreeRangeScanIsConsistentUnderConcurrency) {
  TmAbTree tree(tm());
  // Invariant: keys come in pairs (2k, 2k+1) inserted/removed atomically.
  for (word_t k = 0; k < 100; ++k) {
    tm().run(0, [&](Tx& tx) {
      tree.insert_in(tx, 1000 + 2 * k, 1);
      tree.insert_in(tx, 1000 + 2 * k + 1, 1);
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> odd_counts{0};
  std::thread mutator([&] {
    Xoshiro256 rng(3);
    for (int i = 0; i < 200; ++i) {
      const word_t k = rng.next_bounded(100);
      tm().run(0, [&](Tx& tx) {
        if (tree.contains_in(tx, 1000 + 2 * k)) {
          tree.remove_in(tx, 1000 + 2 * k);
          tree.remove_in(tx, 1000 + 2 * k + 1);
        } else {
          tree.insert_in(tx, 1000 + 2 * k, 1);
          tree.insert_in(tx, 1000 + 2 * k + 1, 1);
        }
      });
    }
    stop.store(true);
  });
  std::thread scanner([&] {
    while (!stop.load()) {
      const auto r = tree.range(1, 1000, 1300);
      if (r.size() % 2 != 0) odd_counts.fetch_add(1);  // torn pair observed
    }
  });
  mutator.join();
  scanner.join();
  EXPECT_EQ(odd_counts.load(), 0u);
}

// ---- Skiplist ---------------------------------------------------------------

TEST_P(StructuresTest, SkipListBasicOperations) {
  TmSkipList sl(tm(), /*root_slot=*/8);
  EXPECT_TRUE(sl.insert(0, 5, 50));
  EXPECT_FALSE(sl.insert(0, 5, 51));
  word_t v = 0;
  EXPECT_TRUE(sl.contains(0, 5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_TRUE(sl.remove(0, 5));
  EXPECT_FALSE(sl.remove(0, 5));
  EXPECT_FALSE(sl.contains(0, 5));
}

TEST_P(StructuresTest, SkipListRandomOpsMatchReference) {
  TmSkipList sl(tm(), 8);
  std::map<word_t, word_t> ref;
  Xoshiro256 rng(29);
  for (int i = 0; i < 3000; ++i) {
    const word_t k = 1 + rng.next_bounded(600);
    const int op = static_cast<int>(rng.next_bounded(3));
    if (op == 0) {
      EXPECT_EQ(sl.insert(0, k, k + 3), ref.emplace(k, k + 3).second);
    } else if (op == 1) {
      EXPECT_EQ(sl.remove(0, k), ref.erase(k) > 0);
    } else {
      word_t v = 0;
      const bool found = sl.contains(0, k, &v);
      EXPECT_EQ(found, ref.count(k) > 0);
      if (found) {
        EXPECT_EQ(v, ref[k]);
      }
    }
    if (i % 500 == 0) {
      std::string why;
      ASSERT_TRUE(sl.validate_slow(&why)) << why;
    }
  }
  const auto keys = sl.keys_slow();
  ASSERT_EQ(keys.size(), ref.size());
  auto it = ref.begin();
  for (std::size_t i = 0; i < keys.size(); ++i, ++it) EXPECT_EQ(keys[i], it->first);
}

TEST_P(StructuresTest, SkipListConcurrentMixedWorkloadKeepsInvariants) {
  TmSkipList sl(tm(), 8);
  for (word_t k = 2; k <= 200; k += 2) ASSERT_TRUE(sl.insert(0, k, k));
  run_threads(4, [&](int tid) {
    Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 37 + 5);
    for (int i = 0; i < 200; ++i) {
      const word_t k = 1 + rng.next_bounded(200);
      const int op = static_cast<int>(rng.next_bounded(3));
      if (op == 0) {
        sl.insert(tid, k, k);
      } else if (op == 1) {
        sl.remove(tid, k);
      } else {
        word_t v = 0;
        if (sl.contains(tid, k, &v)) {
          EXPECT_EQ(v, k);
        }
      }
    }
  });
  std::string why;
  EXPECT_TRUE(sl.validate_slow(&why)) << why;
  const auto keys = sl.keys_slow();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(StructuresTest, SkipListSurvivesCrash) {
  TmSkipList sl(tm(), 8);
  for (word_t k = 1; k <= 120; ++k) ASSERT_TRUE(sl.insert(0, k, k * 4));
  tm().pool().crash(CrashPolicy{0.4, 13});
  tm().recover_data();
  TmSkipList recovered = TmSkipList::attach(tm(), 8);
  tm().rebuild_allocator(recovered.collect_live_blocks());
  std::string why;
  EXPECT_TRUE(recovered.validate_slow(&why)) << why;
  for (word_t k = 1; k <= 120; ++k) {
    word_t v = 0;
    ASSERT_TRUE(recovered.contains(0, k, &v)) << k;
    EXPECT_EQ(v, k * 4);
  }
  EXPECT_TRUE(recovered.insert(0, 1000, 1));
  EXPECT_TRUE(recovered.remove(0, 1000));
}

// ---- Bounded FIFO queue -----------------------------------------------------

TEST_P(StructuresTest, QueueFifoOrderSingleThread) {
  TmQueue q(tm(), 64);
  EXPECT_EQ(q.size_slow(), 0u);
  word_t out = 0;
  EXPECT_FALSE(q.dequeue(0, &out));  // empty
  for (word_t v = 1; v <= 50; ++v) EXPECT_TRUE(q.enqueue(0, v));
  EXPECT_EQ(q.size_slow(), 50u);
  for (word_t v = 1; v <= 50; ++v) {
    ASSERT_TRUE(q.dequeue(0, &out));
    EXPECT_EQ(out, v);  // strict FIFO
  }
  EXPECT_FALSE(q.dequeue(0, &out));
}

TEST_P(StructuresTest, QueueRejectsWhenFull) {
  TmQueue q(tm(), 8);
  for (word_t v = 0; v < 8; ++v) EXPECT_TRUE(q.enqueue(0, v));
  EXPECT_FALSE(q.enqueue(0, 99));
  word_t out = 0;
  EXPECT_TRUE(q.dequeue(0, &out));
  EXPECT_TRUE(q.enqueue(0, 99));  // slot reclaimed, wraps around
}

TEST_P(StructuresTest, QueueWrapsAroundManyTimes) {
  TmQueue q(tm(), 8);
  word_t expect = 0, out = 0;
  for (word_t v = 0; v < 1000; ++v) {
    ASSERT_TRUE(q.enqueue(0, v));
    ASSERT_TRUE(q.dequeue(0, &out));
    ASSERT_EQ(out, expect++);
  }
}

TEST_P(StructuresTest, QueueConcurrentProducersConsumersConserveItems) {
  TmQueue q(tm(), 256);
  constexpr int kProducers = 2, kConsumers = 2, kPerProducer = 300;
  std::atomic<std::uint64_t> produced_sum{0}, consumed_sum{0};
  std::atomic<int> consumed_count{0};
  run_threads(kProducers + kConsumers, [&](int tid) {
    if (tid < kProducers) {
      for (int i = 0; i < kPerProducer; ++i) {
        const word_t v = static_cast<word_t>(tid) * 100000 + static_cast<word_t>(i) + 1;
        while (!q.enqueue(tid, v)) {
        }
        produced_sum.fetch_add(v);
      }
    } else {
      word_t out = 0;
      while (consumed_count.load() < kProducers * kPerProducer) {
        if (q.dequeue(tid, &out)) {
          consumed_sum.fetch_add(out);
          consumed_count.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), produced_sum.load());
  EXPECT_EQ(q.size_slow(), 0u);
}

TEST_P(StructuresTest, CollectLiveBlocksCoversEverything) {
  TmHashMap map(tm(), 1 << 4);
  for (word_t k = 1; k <= 20; ++k) map.insert(0, k, k);
  const auto live = map.collect_live_blocks();
  // Bucket array + 20 nodes.
  EXPECT_EQ(live.size(), 21u);
  EXPECT_EQ(live[0].nwords, 16u);
}

}  // namespace
}  // namespace nvhalt
