// crash_sweep: the CI entry point for the crash-prefix enumeration checker.
//
// Default mode runs the mixed 8-thread workload per TM, journals its
// persistence trace and enumerates every fence boundary (plus seeded
// adversarial write-back subsets) within a wall-clock budget, verifying
// durable-linearizability invariants after recovery from each image. On a
// violation it saves the trace bundle and prints a replayable
// (trace-hash, prefix, subset-seed) triple; reproduce locally with:
//
//   crash_sweep --replay <bundle-file> <hash:prefix:seed>
//
// --mutate runs NV-HALT with a deliberately broken recovery (the first
// undo-record revert is skipped) and *expects* the checker to catch it —
// the CI's self-test that the checker has teeth.
//
// The per-TM time budget (ms) defaults from $NVHALT_CRASH_BUDGET (the CI
// knob: small on pull requests, large on the nightly schedule); 0 means
// unlimited.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "crash_harness.hpp"

namespace {

using namespace nvhalt;
using test::CrashHarnessOptions;
using test::CrashImageVerifier;
using test::CrashTraceBundle;

struct SweepArgs {
  std::vector<TmKind> kinds;
  int txs_per_thread = 12;
  // Delete-heavy list churn on by default: CI sweeps should always cover
  // the allocator's free-intent + epoch-reclamation machinery.
  int list_threads = 2;
  // Checkpoint cadence (0 = off): interleaves checkpoint truncation/
  // compaction with live commits so crash boundaries land inside those
  // windows. The CI recovery-sweep step runs with this enabled.
  int checkpoint_every = 0;
  std::uint64_t subset_seeds = 2;
  std::uint64_t budget_ms = env_u64("NVHALT_CRASH_BUDGET", 20000);
  std::uint64_t workload_seed = 0xC0FFEE;
  std::size_t max_prefixes = 0;
  bool mutate = false;
  // Group durable commit: run every TM with the pool's flat-combining
  // fence enabled, so journals carry kFenceJoin merges and crash
  // boundaries land around combined drains.
  bool group_commit = false;
  // Flight recorder: run every TM with the persistent recorder enabled and
  // decode + validate a postmortem from each enumerated crash image.
  bool postmortem = false;
  std::string postmortem_out;
  std::string save_dir = ".";
  std::string replay_bundle;
  std::string replay_triple;
  std::string trace_out;
  std::string metrics_out;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --tm all|nvhalt|nvhalt-cl|nvhalt-sp|trinity|spht   (repeatable)\n"
               "  --txs N           transactions per worker thread (default 12)\n"
               "  --list-threads N  delete-heavy list-churn workers driving tx.free\n"
               "                    through intents + epoch limbo (default 2; 0 disables)\n"
               "  --checkpoint-every N  run tm.checkpoint() every N committed transfers on\n"
               "                    worker 0 (default 0 = checkpointing off)\n"
               "  --seeds N         adversarial subset images per fence boundary (default 2)\n"
               "  --budget-ms N     per-TM time budget; 0 = unlimited\n"
               "                    (default $NVHALT_CRASH_BUDGET or 20000)\n"
               "  --max-prefixes N  stride-sample at most N fence boundaries (default all)\n"
               "  --workload-seed N deterministic workload seed\n"
               "  --save-dir DIR    where failing trace bundles are written (default .)\n"
               "  --group-commit    enable the pool's flat-combining group fence; journals\n"
               "                    then carry combined-drain (kFenceJoin) boundaries\n"
               "  --mutate          run NV-HALT with broken recovery; exit 0 iff caught\n"
               "  --postmortem      enable the persistent flight recorder; every enumerated\n"
               "                    crash image must yield a valid postmortem decode\n"
               "  --postmortem-out FILE  write the final image's postmortem artifact per TM\n"
               "                    (FILE gets a .<tm> suffix; implies --postmortem)\n"
               "  --replay FILE TRIPLE   recheck one hash:prefix:seed triple of a saved bundle\n"
               "  --trace-out FILE  dump a raw telemetry trace per TM (FILE gets a .<tm> suffix;\n"
               "                    needs an NVHALT_TELEMETRY>=1 build to be non-empty)\n"
               "  --metrics-out FILE  dump a metrics JSON snapshot per TM (.<tm> suffix,\n"
               "                    plus Prometheus text at FILE.<tm>.prom)\n",
               argv0);
}

bool parse_triple(const std::string& s, CrashTriple* out) {
  const std::size_t c1 = s.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos : s.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  try {
    out->trace_hash = std::stoull(s.substr(0, c1), nullptr, 16);
    out->prefix = std::stoull(s.substr(c1 + 1, c2 - c1 - 1), nullptr, 10);
    out->subset_seed = std::stoull(s.substr(c2 + 1), nullptr, 10);
  } catch (...) {
    return false;
  }
  return true;
}

bool parse_args(int argc, char** argv, SweepArgs* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--tm") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "all") == 0) {
        a->kinds = {TmKind::kNvHalt, TmKind::kNvHaltCl, TmKind::kNvHaltSp, TmKind::kTrinity,
                    TmKind::kSpht};
      } else {
        a->kinds.push_back(tm_kind_from_string(v));
      }
    } else if (arg == "--txs") {
      const char* v = next();
      if (v == nullptr) return false;
      a->txs_per_thread = std::atoi(v);
    } else if (arg == "--list-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      a->list_threads = std::atoi(v);
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      a->checkpoint_every = std::atoi(v);
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      a->subset_seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      a->budget_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-prefixes") {
      const char* v = next();
      if (v == nullptr) return false;
      a->max_prefixes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workload-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      a->workload_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--save-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      a->save_dir = v;
    } else if (arg == "--group-commit") {
      a->group_commit = true;
    } else if (arg == "--mutate") {
      a->mutate = true;
    } else if (arg == "--postmortem") {
      a->postmortem = true;
    } else if (arg == "--postmortem-out") {
      const char* v = next();
      if (v == nullptr) return false;
      a->postmortem = true;
      a->postmortem_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      a->trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      a->metrics_out = v;
    } else if (arg == "--replay") {
      const char* f = next();
      const char* t = next();
      if (f == nullptr || t == nullptr) return false;
      a->replay_bundle = f;
      a->replay_triple = t;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (a->kinds.empty()) a->kinds = {TmKind::kNvHalt};
  return true;
}

CrashTraceBundle run_workload(const SweepArgs& a, TmKind kind) {
  CrashHarnessOptions opt;
  opt.kind = kind;
  opt.txs_per_thread = a.txs_per_thread;
  opt.list_threads = a.list_threads;
  opt.checkpoint_every = a.checkpoint_every;
  opt.group_commit = a.group_commit;
  opt.flight_recorder = a.postmortem;
  opt.workload_seed = a.workload_seed;
  if (!a.trace_out.empty())
    opt.trace_out = a.trace_out + "." + tm_kind_name(kind);
  if (!a.metrics_out.empty())
    opt.metrics_out = a.metrics_out + "." + tm_kind_name(kind);
  std::printf("[%s] running %d-thread workload (%d txs/thread, seed %llu)...\n",
              tm_kind_name(kind),
              opt.transfer_threads + opt.counter_threads + opt.map_threads + opt.list_threads,
              opt.txs_per_thread, static_cast<unsigned long long>(opt.workload_seed));
  return test::run_crash_workload(opt);
}

CrashEnumOptions enum_options(const SweepArgs& a) {
  CrashEnumOptions eopt;
  eopt.subset_seeds_per_prefix = a.subset_seeds;
  eopt.time_budget_ms = a.budget_ms;
  eopt.max_prefixes = a.max_prefixes;
  return eopt;
}

int report_failure(const SweepArgs& a, TmKind kind, const CrashTraceBundle& tr,
                   const CrashFailure& f) {
  const std::string bundle = a.save_dir + "/crash_failure_" + std::string(tm_kind_name(kind)) +
                             ".bundle";
  test::save_bundle(bundle, tr);
  std::printf("[%s] VIOLATION at triple %s\n", tm_kind_name(kind), f.triple.to_string().c_str());
  std::printf("[%s]   %s\n", tm_kind_name(kind), f.why.c_str());
  std::printf("[%s]   bundle saved to %s — reproduce with:\n", tm_kind_name(kind), bundle.c_str());
  std::printf("[%s]   crash_sweep --replay %s %s\n", tm_kind_name(kind), bundle.c_str(),
              f.triple.to_string().c_str());
  return 1;
}

int run_sweep(const SweepArgs& a) {
  for (const TmKind kind : a.kinds) {
    const CrashTraceBundle tr = run_workload(a, kind);
    CrashEnumerator en(tr.events, enum_options(a));
    CrashImageVerifier verifier(tr);

    // With --postmortem the base checker already validates every image's
    // decode; this wrapper only aggregates the sweep-wide summary.
    std::uint64_t pm_images = 0, pm_torn_images = 0, pm_open_tx_images = 0, pm_torn_total = 0;
    const auto base = verifier.checker();
    const CrashImageChecker checker = [&](const CrashImage& img, std::size_t prefix,
                                          std::uint64_t seed, std::string* why) {
      const bool ok = base(img, prefix, seed, why);
      if (a.postmortem) {
        if (const auto* pm = verifier.runner().tm().last_postmortem()) {
          ++pm_images;
          pm_torn_total += pm->total_torn;
          if (pm->total_torn > 0) ++pm_torn_images;
          for (const auto& tp : pm->per_thread) {
            if (tp.open_tx) {
              ++pm_open_tx_images;
              break;
            }
          }
        }
      }
      return ok;
    };

    const auto failure = en.run(checker);
    if (failure.has_value()) return report_failure(a, kind, tr, *failure);
    const auto& st = en.stats();
    std::printf("[%s] OK: %zu events, %zu/%zu fence boundaries, %zu images checked%s\n",
                tm_kind_name(kind), tr.events.size(), st.prefixes_checked, en.boundaries().size(),
                st.images_checked, st.budget_exhausted ? " (budget exhausted)" : "");
    if (a.postmortem) {
      std::printf("[%s] postmortem: %llu images decoded, %llu with torn tails "
                  "(%llu torn slots), %llu with an open tx at crash\n",
                  tm_kind_name(kind), static_cast<unsigned long long>(pm_images),
                  static_cast<unsigned long long>(pm_torn_images),
                  static_cast<unsigned long long>(pm_torn_total),
                  static_cast<unsigned long long>(pm_open_tx_images));
      if (!a.postmortem_out.empty()) {
        // The artifact captures the last enumerated image's postmortem —
        // the deepest crash boundary the budget reached.
        if (const auto* pm = verifier.runner().tm().last_postmortem()) {
          const std::string path = a.postmortem_out + "." + tm_kind_name(kind);
          std::ofstream f(path);
          f << telemetry::serialize_postmortem(*pm, tm_kind_name(kind));
          if (!f) {
            std::fprintf(stderr, "cannot write postmortem artifact: %s\n", path.c_str());
            return 2;
          }
          std::printf("[%s] postmortem artifact written to %s\n", tm_kind_name(kind),
                      path.c_str());
        }
      }
    }
  }
  return 0;
}

int run_mutate(const SweepArgs& a) {
  const CrashTraceBundle tr = run_workload(a, TmKind::kNvHalt);
  CrashEnumerator en(tr.events, enum_options(a));
  CrashImageVerifier broken(tr, /*recovery_skip_nth_revert=*/0);
  const auto failure = en.run(broken.checker());
  if (!failure.has_value()) {
    std::printf("[mutate] FAILED: broken recovery (skipped first undo revert) was NOT caught\n");
    return 1;
  }
  std::printf("[mutate] OK: broken recovery caught at triple %s\n",
              failure->triple.to_string().c_str());
  std::printf("[mutate]   %s\n", failure->why.c_str());
  return 0;
}

int run_replay(const SweepArgs& a) {
  CrashTriple triple;
  if (!parse_triple(a.replay_triple, &triple)) {
    std::fprintf(stderr, "bad triple '%s' (expected hash:prefix:seed)\n", a.replay_triple.c_str());
    return 2;
  }
  const CrashTraceBundle tr = test::load_bundle(a.replay_bundle);
  std::printf("[replay] bundle %s: %s, %zu events, trace hash %s\n", a.replay_bundle.c_str(),
              tm_kind_name(tr.opt.kind), tr.events.size(),
              CrashTriple{tr.trace_hash, 0, 0}.to_string().c_str());
  CrashEnumerator en(tr.events, CrashEnumOptions{});
  CrashImageVerifier verifier(tr);
  const auto failure = en.replay(triple, verifier.checker());
  if (failure.has_value()) {
    std::printf("[replay] VIOLATION reproduced at %s\n", failure->triple.to_string().c_str());
    std::printf("[replay]   %s\n", failure->why.c_str());
    return 1;
  }
  std::printf("[replay] image at %s recovers consistently\n", triple.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepArgs args;
  if (!parse_args(argc, argv, &args)) return 2;
  try {
    if (!args.replay_bundle.empty()) return run_replay(args);
    if (args.mutate) return run_mutate(args);
    return run_sweep(args);
  } catch (const nvhalt::TmLogicError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
