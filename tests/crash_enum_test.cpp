// Tests for the crash-prefix enumeration checker (pmem/crash_enum.hpp):
// journal recording, deterministic image materialization, replayable
// failure triples, trace/bundle file round-trips, the fence mid-coalesce
// crash-point fix, and the acceptance runs — every fence boundary of an
// 8-thread mixed workload recovers consistently on all five TMs, and a
// deliberately broken recovery is caught with a replayable triple.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "crash_harness.hpp"
#include "pmem/crash_sim.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

using test::all_kinds;
using test::crash_config;
using test::CrashHarnessOptions;
using test::CrashImageVerifier;
using test::CrashTraceBundle;
using test::run_crash_workload;

/// Durable value of `word` in a materialized image (0 when absent).
std::uint64_t image_value(const CrashImage& img, std::uint64_t word) {
  const auto it = std::lower_bound(img.words.begin(), img.words.end(), word,
                                   [](const auto& p, std::uint64_t w) { return p.first < w; });
  return (it != img.words.end() && it->first == word) ? it->second : 0;
}

TEST(CrashJournalTest, RecordsStoresFlushesAndFencesInOrder) {
  PersistJournal journal;
  RunnerConfig cfg = crash_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);

  const std::size_t start = journal.size();
  ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) { tx.write(a, 42); }));
  const auto events = journal.events();
  ASSERT_GT(events.size(), start);

  // The commit staged the record for `a` — old (base+1), pver (base+2),
  // cur (base+0) in Trinity order — then flushed its line and fenced.
  const std::uint64_t base = runner.pool().record_word_base(a);
  std::ptrdiff_t i_old = -1, i_cur = -1, i_flush = -1, i_fence = -1;
  std::uint64_t rec_line = 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    const PersistEvent& ev = events[i];
    if (ev.kind == PersistEventKind::kStore && ev.word == base + 1 && i_old < 0) {
      i_old = static_cast<std::ptrdiff_t>(i);
      rec_line = ev.line;
    }
    if (ev.kind == PersistEventKind::kStore && ev.word == base + 0 && ev.value == 42)
      i_cur = static_cast<std::ptrdiff_t>(i);
    if (ev.kind == PersistEventKind::kFlush && i_cur >= 0 && ev.line == rec_line && i_flush < 0)
      i_flush = static_cast<std::ptrdiff_t>(i);
    if (ev.kind == PersistEventKind::kFence && i_flush >= 0 && i_fence < 0)
      i_fence = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(i_old, 0) << "record old-value store not journaled";
  ASSERT_GE(i_cur, 0) << "record cur-value store not journaled";
  ASSERT_GE(i_flush, 0) << "record line flush not journaled";
  ASSERT_GE(i_fence, 0) << "fence not journaled";
  EXPECT_LT(i_old, i_cur) << "Trinity store order (old before cur) not preserved";
  EXPECT_LT(i_cur, i_flush);
  EXPECT_LT(i_flush, i_fence);

  // The pver bump lands in the raw space (word < raw_space_words).
  bool saw_raw_store = false;
  for (std::size_t i = start; i < events.size(); ++i)
    saw_raw_store |= events[i].kind == PersistEventKind::kStore &&
                     events[i].word < runner.pool().raw_space_words();
  EXPECT_TRUE(saw_raw_store) << "pver store not journaled";
}

TEST(CrashJournalTest, FullPrefixImageMatchesPoolDurableState) {
  PersistJournal journal;
  RunnerConfig cfg = crash_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  std::vector<gaddr_t> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(runner.alloc().raw_alloc(0, 1));
  for (word_t round = 1; round <= 5; ++round)
    for (std::size_t i = 0; i < slots.size(); ++i)
      ASSERT_TRUE(tm.run(0, [&](Tx& tx) { tx.write(slots[i], round * 10 + i); }));

  const auto events = journal.events();
  const CrashImage img = materialize_crash_image(events, events.size(), 0);
  for (const gaddr_t a : slots) {
    const PRecord durable = runner.pool().read_durable_record(a);
    const std::uint64_t base = runner.pool().record_word_base(a);
    EXPECT_EQ(image_value(img, base + 0), durable.cur) << "slot " << a;
    EXPECT_EQ(image_value(img, base + 1), durable.old) << "slot " << a;
    EXPECT_EQ(image_value(img, base + 2), durable.pver) << "slot " << a;
  }
}

TEST(CrashJournalTest, PrefixAtFenceBoundaryReflectsOnlyEarlierCommits) {
  PersistJournal journal;
  RunnerConfig cfg = crash_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  const gaddr_t x = runner.alloc().raw_alloc(0, 1);
  ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) { tx.write(x, 1); }));
  const std::size_t after_first = journal.size();
  ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) { tx.write(x, 2); }));
  const auto events = journal.events();

  // A commit's last persistence event is its pver fence, so the post-commit
  // journal size is one of the enumerator's fence boundaries.
  CrashEnumerator en(events, CrashEnumOptions{});
  EXPECT_NE(std::find(en.boundaries().begin(), en.boundaries().end(), after_first),
            en.boundaries().end());

  TmRunner verifier(crash_config(TmKind::kNvHalt));
  const auto recovered_value = [&](std::size_t prefix) {
    const CrashImage img = materialize_crash_image(events, prefix, 0);
    verifier.pool().install_crash_image(img.words);
    verifier.tm().recover_data();
    // The raw_alloc of x is eagerly durable, so the recovered bitmap says
    // whether x exists at this boundary (prefix 0 predates it).
    std::vector<LiveBlock> live;
    if (verifier.alloc().slot_bit(x, 1)) live.push_back({x, 1});
    verifier.tm().rebuild_allocator(live);
    word_t v = 0;
    verifier.tm().run(0, [&](Tx& tx) { v = tx.read(x); });
    return v;
  };
  EXPECT_EQ(recovered_value(0), 0u);
  EXPECT_EQ(recovered_value(after_first), 1u);
  EXPECT_EQ(recovered_value(events.size()), 2u);
}

TEST(CrashJournalTest, SeededSubsetImagesAreReproducible) {
  CrashHarnessOptions opt;
  opt.txs_per_thread = 6;
  const CrashTraceBundle tr = run_crash_workload(opt);

  CrashEnumOptions eopt;
  CrashEnumerator en1(tr.events, eopt);
  CrashEnumerator en2(tr.events, eopt);
  ASSERT_EQ(en1.trace_hash(), tr.trace_hash);
  ASSERT_GT(en1.boundaries().size(), 2u);

  const std::size_t prefix = en1.boundaries()[en1.boundaries().size() / 2];
  for (std::uint64_t s = 0; s < 3; ++s) {
    // Same triple, independently derived → bit-identical image.
    const std::uint64_t seed1 = en1.subset_seed_for(prefix, s);
    const std::uint64_t seed2 = en2.subset_seed_for(prefix, s);
    ASSERT_EQ(seed1, seed2);
    const CrashImage a = materialize_crash_image(tr.events, prefix, seed1);
    const CrashImage b = materialize_crash_image(tr.events, prefix, seed2);
    EXPECT_EQ(a, b);
  }

  // The subset adversary persists dirty lines on top of the fence image.
  const CrashImage fence_img = materialize_crash_image(tr.events, prefix, 0);
  const CrashImage subset_img =
      materialize_crash_image(tr.events, prefix, en1.subset_seed_for(prefix, 0));
  EXPECT_GE(subset_img.words.size(), fence_img.words.size());
}

TEST(CrashJournalTest, TraceFileRoundTrip) {
  CrashHarnessOptions opt;
  opt.transfer_threads = 1;
  opt.counter_threads = 1;
  opt.map_threads = 0;
  opt.txs_per_thread = 4;
  const CrashTraceBundle tr = run_crash_workload(opt);
  const std::string path = ::testing::TempDir() + "/crash_trace_roundtrip.bin";
  save_trace(path, tr.events);
  const auto loaded = load_trace(path);
  EXPECT_EQ(loaded, tr.events);
  EXPECT_EQ(PersistJournal::hash(loaded), tr.trace_hash);
}

TEST(CrashJournalTest, BundleFileRoundTrip) {
  CrashHarnessOptions opt;
  opt.txs_per_thread = 4;
  const CrashTraceBundle tr = run_crash_workload(opt);
  const std::string path = ::testing::TempDir() + "/crash_bundle_roundtrip.bin";
  test::save_bundle(path, tr);
  const CrashTraceBundle lt = test::load_bundle(path);
  EXPECT_EQ(lt.events, tr.events);
  EXPECT_EQ(lt.trace_hash, tr.trace_hash);
  EXPECT_EQ(lt.accounts, tr.accounts);
  EXPECT_EQ(lt.counter_a, tr.counter_a);
  EXPECT_EQ(lt.counter_b, tr.counter_b);
  EXPECT_EQ(lt.counter_attempted, tr.counter_attempted);
  EXPECT_EQ(lt.prefill_bound, tr.prefill_bound);
  ASSERT_EQ(lt.counter_acked.size(), tr.counter_acked.size());
  for (std::size_t c = 0; c < tr.counter_acked.size(); ++c) {
    ASSERT_EQ(lt.counter_acked[c].size(), tr.counter_acked[c].size());
    for (std::size_t i = 0; i < tr.counter_acked[c].size(); ++i) {
      EXPECT_EQ(lt.counter_acked[c][i].bound, tr.counter_acked[c][i].bound);
      EXPECT_EQ(lt.counter_acked[c][i].value, tr.counter_acked[c][i].value);
    }
  }
  // The loaded bundle drives a verifier just like the fresh one.
  CrashEnumOptions eopt;
  eopt.max_prefixes = 8;
  CrashEnumerator en(lt.events, eopt);
  CrashImageVerifier verifier(lt);
  const auto failure = en.run(verifier.checker());
  EXPECT_FALSE(failure.has_value()) << failure->triple.to_string() << ": " << failure->why;
}

TEST(CrashJournalTest, ReplayRejectsTripleFromDifferentTrace) {
  CrashHarnessOptions opt;
  opt.transfer_threads = 1;
  opt.counter_threads = 0;
  opt.map_threads = 0;
  opt.txs_per_thread = 2;
  const CrashTraceBundle tr = run_crash_workload(opt);
  CrashEnumerator en(tr.events, CrashEnumOptions{});
  const CrashTriple foreign{tr.trace_hash + 1, 0, 0};
  const auto failure = en.replay(
      foreign, [](const CrashImage&, std::size_t, std::uint64_t, std::string*) { return true; });
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->why.find("hash mismatch"), std::string::npos);
}

// Regression for the fence coalescing loop: a power failure must be able to
// strike *between* individual line write-backs of one fence, leaving the
// fence partially persisted. Before the fix, fence() polled the crash
// coordinator only on entry, so a crash could never interrupt the
// line write-back loop and every queued line persisted atomically.
// CrashCoordinator::trip_after makes the placement exact: fence() polls
// once on entry and once before each unique line's write-back, so a
// countdown of 2 + k dies with exactly k lines durable.
TEST(CrashJournalTest, FenceCrashCanLeavePartiallyPersistedQueue) {
  constexpr std::size_t kLines = 32;
  for (const std::size_t target : {std::size_t{1}, kLines / 2, kLines - 1}) {
    PmemConfig cfg;
    cfg.capacity_words = std::size_t{1} << 10;
    cfg.raw_words = kLines * kWordsPerLine + kWordsPerLine;
    PmemPool pool(cfg);
    CrashCoordinator coord;
    pool.set_crash_coordinator(&coord);

    const std::size_t base = pool.alloc_raw(kLines * kWordsPerLine);
    for (std::size_t k = 0; k < kLines; ++k) {
      pool.raw_store(base + k * kWordsPerLine, k + 1);
      pool.flush_raw(0, base + k * kWordsPerLine);
    }

    coord.trip_after(2 + target);  // entry poll, then one poll per line
    EXPECT_THROW(pool.fence(0), SimulatedPowerFailure);

    std::size_t persisted = 0;
    for (std::size_t k = 0; k < kLines; ++k)
      persisted += pool.raw_load_durable(base + k * kWordsPerLine) != 0 ? 1 : 0;
    // fence() persists the duplicate-free queue in enqueue (= allocation)
    // order, so the count of durable lines is exactly the crash placement.
    EXPECT_EQ(persisted, target);
  }
}

// ---- Allocator crash coverage ---------------------------------------------

// A transaction allocates a node, publishes its address into a raw flag and
// crashes at every fence boundary. The durable allocation bit must agree
// with the durability marker everywhere: committed -> bit applied,
// uncommitted -> the armed intent is reverted and the block swept as an
// orphan. At least one boundary falls between the intent's fence and the
// marker, so the sweep itself is exercised, and that image re-derives
// identically for replay.
TEST(CrashEnumAllocTest, AllocThenCrashBeforeCommitIsSweptAsOrphan) {
  PersistJournal journal;
  RunnerConfig cfg = crash_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  const gaddr_t flag = runner.alloc().raw_alloc(0, 1);
  constexpr std::size_t kNode = 4;
  gaddr_t node = 0;
  ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) {
    node = tx.alloc(kNode);
    tx.write(node, 0xFEED);
    tx.write(flag, node);  // durably nonzero iff the alloc committed
  }));
  const auto events = journal.events();

  TmRunner verifier(crash_config(TmKind::kNvHalt));
  CrashEnumerator en(events, CrashEnumOptions{});
  std::uint64_t swept_total = 0;
  std::size_t swept_prefix = events.size() + 1;
  for (const std::size_t prefix : en.boundaries()) {
    const CrashImage img = materialize_crash_image(events, prefix, 0);
    verifier.pool().install_crash_image(img.words);
    verifier.tm().recover_data();
    word_t f = 0;
    verifier.tm().run(0, [&](Tx& tx) { f = tx.read(flag); });
    const bool committed = f != 0;
    EXPECT_EQ(verifier.alloc().slot_bit(node, kNode), committed) << "prefix " << prefix;
    if (committed) {
      EXPECT_EQ(f, node);
    }
    const AllocRecoveryReport& rep = verifier.alloc().last_recovery();
    if (rep.orphans_swept > 0 && swept_prefix > events.size()) swept_prefix = prefix;
    swept_total += rep.orphans_swept;
  }
  ASSERT_GT(swept_total, 0u) << "no boundary ever exercised the orphan sweep";

  const CrashImage again = materialize_crash_image(events, swept_prefix, 0);
  verifier.pool().install_crash_image(again.words);
  verifier.tm().recover_data();
  EXPECT_GT(verifier.alloc().last_recovery().orphans_swept, 0u);
  EXPECT_FALSE(verifier.alloc().slot_bit(node, kNode));
}

// A committed node is freed by a second transaction that crashes at every
// boundary from the free's first event on — including mid-fence subset
// images, where the adversary may persist the bitmap line without the
// marker (or vice versa). Recovery must converge to exactly one owner:
// free committed -> bit clear and the slot reusable once; free uncommitted
// -> the block survives and is never handed out again.
TEST(CrashEnumAllocTest, FreeThenCrashMidFenceNeitherDoubleFreesNorLosesBlock) {
  PersistJournal journal;
  RunnerConfig cfg = crash_config(TmKind::kNvHalt);
  cfg.pmem.journal = &journal;
  TmRunner runner(cfg);
  const gaddr_t flag = runner.alloc().raw_alloc(0, 1);
  constexpr std::size_t kNode = 4;
  gaddr_t node = 0;
  ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) {
    node = tx.alloc(kNode);
    tx.write(node, 0xBEEF);
    tx.write(flag, node);
  }));
  const std::size_t free_begin = journal.size();
  ASSERT_TRUE(runner.tm().run(0, [&](Tx& tx) {
    tx.free(node, kNode);
    tx.write(flag, 0);  // durably zero iff the free committed
  }));
  const auto events = journal.events();

  TmRunner verifier(crash_config(TmKind::kNvHalt));
  CrashEnumerator en(events, CrashEnumOptions{});
  const auto check_image = [&](std::size_t prefix, std::uint64_t seed) {
    const CrashImage img = materialize_crash_image(events, prefix, seed);
    verifier.pool().install_crash_image(img.words);
    verifier.tm().recover_data();
    word_t f = 0;
    verifier.tm().run(0, [&](Tx& tx) { f = tx.read(flag); });
    const bool freed = f == 0;
    EXPECT_EQ(verifier.alloc().slot_bit(node, kNode), !freed)
        << "prefix " << prefix << " seed " << seed;
    std::vector<LiveBlock> live;
    if (verifier.alloc().slot_bit(flag, 1)) live.push_back({flag, 1});
    if (!freed) live.push_back({node, kNode});
    EXPECT_EQ(verifier.alloc().verify_rebuild(live), 0u)
        << "unexpected leak at prefix " << prefix << " seed " << seed;
    // A double-freed slot would be handed out twice; a lost one never.
    std::vector<gaddr_t> got;
    ASSERT_TRUE(verifier.tm().run(0, [&](Tx& tx) {
      got.clear();  // the body may be re-executed
      for (int i = 0; i < 6; ++i) got.push_back(tx.alloc(kNode));
    }));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
        << "duplicate allocation at prefix " << prefix << " seed " << seed;
    if (!freed) {
      EXPECT_EQ(std::find(got.begin(), got.end(), node), got.end())
          << "live block recycled at prefix " << prefix << " seed " << seed;
    }
  };
  for (const std::size_t prefix : en.boundaries()) {
    if (prefix < free_begin) continue;
    check_image(prefix, 0);
    check_image(prefix, en.subset_seed_for(prefix, 0));
    check_image(prefix, en.subset_seed_for(prefix, 1));
  }
}

// Acceptance for the delete-heavy extension: four list-churn threads drive
// tx.free through the intent + limbo machinery while a transfer thread
// keeps the zero-sum invariant in play; every fence boundary (plus two
// mid-fence adversary images each) must recover consistently.
TEST(CrashEnumAllocTest, DeleteHeavyListChurnRecoversAtEveryBoundary) {
  CrashHarnessOptions opt;
  opt.transfer_threads = 1;
  opt.counter_threads = 0;
  opt.map_threads = 0;
  opt.list_threads = 4;
  opt.txs_per_thread = 8;
  const CrashTraceBundle tr = run_crash_workload(opt);

  CrashEnumOptions eopt;
  eopt.subset_seeds_per_prefix = 2;
  CrashEnumerator en(tr.events, eopt);
  ASSERT_GT(en.boundaries().size(), 20u) << "churn produced suspiciously few fences";

  CrashImageVerifier verifier(tr);
  const auto failure = en.run(verifier.checker());
  ASSERT_FALSE(failure.has_value())
      << "allocator crash-consistency violation at " << failure->triple.to_string() << ": "
      << failure->why;
}

// ---- Acceptance: exhaustive enumeration over all five TMs -----------------

class CrashEnumAllTms : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, CrashEnumAllTms, ::testing::ValuesIn(all_kinds()),
                         test::kind_param_name);

TEST_P(CrashEnumAllTms, EveryFenceBoundaryRecoversConsistently) {
  CrashHarnessOptions opt;
  opt.kind = GetParam();
  ASSERT_EQ(opt.transfer_threads + opt.counter_threads + opt.map_threads, 8);
  const CrashTraceBundle tr = run_crash_workload(opt);

  CrashEnumOptions eopt;
  eopt.subset_seeds_per_prefix = 2;
  CrashEnumerator en(tr.events, eopt);
  ASSERT_GT(en.boundaries().size(), 50u) << "workload produced suspiciously few fences";

  CrashImageVerifier verifier(tr);
  const auto failure = en.run(verifier.checker());
  ASSERT_FALSE(failure.has_value())
      << "durable-linearizability violation at " << failure->triple.to_string() << ": "
      << failure->why;
  EXPECT_EQ(en.stats().prefixes_checked, en.boundaries().size());
  EXPECT_EQ(en.stats().images_checked, en.boundaries().size() * (1 + eopt.subset_seeds_per_prefix));
  EXPECT_FALSE(en.stats().budget_exhausted);
}

// ---- Acceptance: mutation testing of recovery -----------------------------

TEST(CrashEnumMutationTest, BrokenRecoveryIsCaughtWithReplayableTriple) {
  CrashHarnessOptions opt;  // NV-HALT: the skip knob lives in its recovery
  const CrashTraceBundle tr = run_crash_workload(opt);

  CrashEnumOptions eopt;
  eopt.subset_seeds_per_prefix = 1;
  CrashEnumerator en(tr.events, eopt);

  // Recovery that silently skips its first undo-record revert leaves a torn
  // transaction behind at some crash prefix; the checker must find it.
  CrashImageVerifier broken(tr, /*recovery_skip_nth_revert=*/0);
  const auto failure = en.run(broken.checker());
  ASSERT_TRUE(failure.has_value()) << "mutated recovery escaped the checker";
  EXPECT_EQ(failure->triple.trace_hash, tr.trace_hash);
  EXPECT_FALSE(failure->why.empty());

  // The triple replays: a fresh broken verifier fails the same image...
  CrashImageVerifier broken_again(tr, 0);
  CrashEnumerator replayer(tr.events, eopt);
  const auto again = replayer.replay(failure->triple, broken_again.checker());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->triple.prefix, failure->triple.prefix);
  EXPECT_EQ(again->triple.subset_seed, failure->triple.subset_seed);

  // ...and intact recovery passes it, isolating the fault to the mutation.
  CrashImageVerifier intact(tr);
  EXPECT_FALSE(replayer.replay(failure->triple, intact.checker()).has_value());
}

}  // namespace
}  // namespace nvhalt
