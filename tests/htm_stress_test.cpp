// Concurrency stress for the SimHtm fast path: hammers the relaxed /
// acquire / release memory orders introduced by the per-line memo audit
// (DESIGN.md Sec. 10) with racing transactional writers, transactional
// readers and non-transactional readers/RMWs. Run under the
// tsan-concurrency preset; the invariants below are exactly what the five
// RTM properties promise, so any downgrade that broke a happens-before
// edge shows up either as a TSan race or as a torn/inconsistent pair.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/sim_htm.hpp"
#include "util/barrier.hpp"

namespace nvhalt::htm {
namespace {

struct Words {
  std::vector<std::atomic<std::uint64_t>> w;
  explicit Words(std::size_t n) : w(n) {
    for (auto& x : w) x.store(0, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t>* at(std::size_t i) { return &w[i]; }
};

// Writers keep two counters on *different* cache lines equal inside one
// transaction; transactional readers assert the pair is never observed
// unequal (publication atomicity + eager conflict detection), and
// non-transactional readers assert each word is monotone (a stale value
// after a commit would mean a lost release/acquire edge).
TEST(HtmFastPathStress, MirroredPairStaysConsistentAcrossPaths) {
  SimHtm htm;
  Words mem(64);
  constexpr std::size_t kA = 0, kB = 8, kC = 16;  // three distinct lines
  constexpr int kWriters = 3, kTxReaders = 3, kNontxReaders = 2;
  constexpr int kOpsPerWriter = 3000;
  std::atomic<int> writers_done{0};
  std::atomic<bool> failed{false};
  SpinBarrier start(kWriters + kTxReaders + kNontxReaders + 1);
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const int tid = w;
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerWriter; ++i) {
        for (;;) {
          try {
            htm.begin(tid);
            const std::uint64_t a = htm.load(tid, loc_pool(kA), mem.at(kA));
            const std::uint64_t a2 = htm.load(tid, loc_pool(kA), mem.at(kA));  // memo hit
            const std::uint64_t b = htm.load(tid, loc_pool(kB), mem.at(kB));
            if (a != a2 || a != b) failed.store(true);
            htm.store(tid, loc_pool(kA), mem.at(kA), a + 1);
            htm.store(tid, loc_pool(kA), mem.at(kA), a + 1);  // buffered overwrite
            htm.store(tid, loc_pool(kB), mem.at(kB), a + 1);
            htm.commit(tid);
            break;
          } catch (const HtmAbort&) {
            // retry
          }
        }
      }
      writers_done.fetch_add(1);
    });
  }

  for (int r = 0; r < kTxReaders; ++r) {
    threads.emplace_back([&, r] {
      const int tid = kWriters + r;
      start.arrive_and_wait();
      while (writers_done.load() < kWriters) {
        try {
          htm.begin(tid);
          const std::uint64_t a = htm.load(tid, loc_pool(kA), mem.at(kA));
          const std::uint64_t a2 = htm.load(tid, loc_pool(kA), mem.at(kA));  // memo hit
          const std::uint64_t b = htm.load(tid, loc_pool(kB), mem.at(kB));
          htm.load(tid, loc_pool(kC), mem.at(kC));
          htm.commit(tid);
          if (a != a2 || a != b) failed.store(true);
        } catch (const HtmAbort&) {
          // doomed snapshot discarded; nothing to check
        }
      }
    });
  }

  for (int r = 0; r < kNontxReaders; ++r) {
    threads.emplace_back([&, r] {
      const int tid = kWriters + kTxReaders + r;
      const std::size_t word = r == 0 ? kA : kB;
      start.arrive_and_wait();
      std::uint64_t last = 0;
      while (writers_done.load() < kWriters) {
        const std::uint64_t v = htm.nontx_load(tid, loc_pool(word), mem.at(word));
        if (v < last) failed.store(true);
        last = v;
      }
    });
  }

  // One thread exercising the nontx RMW claim/release path against the
  // transactional readers of the same line.
  threads.emplace_back([&] {
    const int tid = kWriters + kTxReaders + kNontxReaders;
    start.arrive_and_wait();
    std::uint64_t last = 0;
    while (writers_done.load() < kWriters) {
      const std::uint64_t prev =
          htm.nontx_fetch_add(tid, loc_pool(kC), mem.at(kC), 1);
      if (prev < last) failed.store(true);
      last = prev;
    }
  });

  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  const std::uint64_t expected = static_cast<std::uint64_t>(kWriters) * kOpsPerWriter;
  EXPECT_EQ(mem.at(kA)->load(), expected);
  EXPECT_EQ(mem.at(kB)->load(), expected);
}

// Same-line contention: every access hits one line, so the memo fast path,
// stripe neutralization and reader-abort protocols all collide on a single
// stripe. Lost increments would indicate a broken Dekker pairing between
// add_reader / writer-tag CAS.
TEST(HtmFastPathStress, SingleLineTxIncrementsAreExact) {
  SimHtm htm;
  Words mem(8);
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 2000;
  SpinBarrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        for (;;) {
          try {
            htm.begin(t);
            const std::uint64_t v = htm.load(t, loc_pool(1), mem.at(1));
            htm.store(t, loc_pool(1), mem.at(1), v + 1);
            // Same-line second word: write-memo hit, still tracked.
            htm.store(t, loc_pool(2), mem.at(2), v + 1);
            htm.commit(t);
            break;
          } catch (const HtmAbort&) {
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(mem.at(1)->load(), expected);
  EXPECT_EQ(mem.at(2)->load(), expected);
}

}  // namespace
}  // namespace nvhalt::htm
