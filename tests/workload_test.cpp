// Tests for the reusable workload framework (src/workload).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "structures/tm_hashmap.hpp"
#include "test_helpers.hpp"
#include "workload/workload.hpp"

namespace nvhalt {
namespace {

using test::small_config;

/// In-memory reference structure for framework tests (no TM involved).
class FakeOps final : public workload::KeyedOps {
 public:
  bool insert(int, word_t key, word_t val) override {
    std::lock_guard<std::mutex> g(mu_);
    ++inserts_;
    return map_.emplace(key, val).second;
  }
  bool remove(int, word_t key) override {
    std::lock_guard<std::mutex> g(mu_);
    ++removes_;
    return map_.erase(key) > 0;
  }
  bool contains(int, word_t key) override {
    std::lock_guard<std::mutex> g(mu_);
    ++lookups_;
    return map_.count(key) > 0;
  }

  std::mutex mu_;
  std::map<word_t, word_t> map_;
  std::uint64_t inserts_ = 0, removes_ = 0, lookups_ = 0;
};

TEST(KeyGenerator, UniformKeysSpanTheRange) {
  workload::KeyGenerator gen(workload::KeyDist::kUniform, 100, 7);
  std::map<word_t, int> hist;
  for (int i = 0; i < 20000; ++i) {
    const word_t k = gen.next();
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
    hist[k]++;
  }
  EXPECT_EQ(hist.size(), 100u);  // every key hit at this sample size
}

TEST(KeyGenerator, ZipfKeysAreSkewed) {
  workload::KeyGenerator gen(workload::KeyDist::kZipf, 10000, 7);
  int hot = 0;
  for (int i = 0; i < 20000; ++i) hot += gen.next() <= 100;
  EXPECT_GT(hot, 20000 / 4);
}

TEST(Workload, PrefillReachesExactlyHalf) {
  FakeOps ops;
  workload::prefill_half(ops, 1000, 3);
  EXPECT_EQ(ops.map_.size(), 500u);
  for (const auto& [k, v] : ops.map_) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
    EXPECT_EQ(v, k);
  }
}

TEST(Workload, MixRespectsReadPercentageRoughly) {
  FakeOps ops;
  workload::prefill_half(ops, 256, 3);
  workload::WorkloadSpec spec;
  spec.read_pct = 90;
  spec.threads = 2;
  spec.key_range = 256;
  spec.duration_ms = 60;
  const auto r = workload::run_mixed(ops, spec);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.ops_per_sec, 0.0);
  const double total = static_cast<double>(ops.inserts_ + ops.removes_ + ops.lookups_);
  EXPECT_NEAR(static_cast<double>(ops.lookups_) / total, 0.90, 0.03);
  // Inserts and removes split the remainder roughly evenly.
  EXPECT_NEAR(static_cast<double>(ops.inserts_) / total, 0.05, 0.02);
}

TEST(Workload, ZeroReadPctIsUpdateOnly) {
  FakeOps ops;
  workload::WorkloadSpec spec;
  spec.read_pct = 0;
  spec.threads = 1;
  spec.key_range = 64;
  spec.duration_ms = 30;
  workload::run_mixed(ops, spec);
  EXPECT_EQ(ops.lookups_, 0u);
  EXPECT_GT(ops.inserts_ + ops.removes_, 0u);
}

TEST(Workload, AdapterDrivesRealStructure) {
  TmRunner runner(small_config(TmKind::kNvHalt));
  TmHashMap map(runner.tm(), 1 << 8);
  workload::KeyedOpsAdapter<TmHashMap> ops(map);
  workload::prefill_half(ops, 256, 9);
  EXPECT_EQ(map.size_slow(), 128u);
  workload::WorkloadSpec spec;
  spec.read_pct = 50;
  spec.threads = 2;
  spec.key_range = 256;
  spec.duration_ms = 50;
  const auto r = workload::run_mixed(ops, spec);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_LE(map.size_slow(), 256u);  // keys stay within the range
}

}  // namespace
}  // namespace nvhalt
