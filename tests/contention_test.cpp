// Tests for the lock-contention observatory (locks/contention.hpp): cell
// accounting, score-ranked top-K with decay, the LockSpace stripe mapping
// contract (same address -> same stripe; tallies survive lock reset), and
// the TM-level surface every engine exposes through Tm::contention().
#include <gtest/gtest.h>

#include "locks/lock_table.hpp"
#include "telemetry/metrics_registry.hpp"
#include "test_helpers.hpp"

namespace nvhalt {
namespace {

TEST(ContentionTableTest, CountersAggregateIntoTotals) {
  ContentionTable ct(8);
  ct.on_stall(1, 10);
  ct.on_stall(1, 5);
  ct.on_cas_fail(2);
  ct.on_abort(3);
  ct.on_abort(3);

  const ContentionTotals t = ct.totals();
  EXPECT_EQ(t.stalls, 2u);
  EXPECT_EQ(t.stall_ticks, 15u);
  EXPECT_EQ(t.cas_failures, 1u);
  EXPECT_EQ(t.aborts, 2u);
}

TEST(ContentionTableTest, StripeIndexWrapsModuloTableSize) {
  ContentionTable ct(4);
  ct.on_abort(7);  // 7 % 4 == 3
  const auto top = ct.top_k(4);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].stripe, 3u);
  EXPECT_EQ(top[0].aborts, 1u);
}

TEST(ContentionTableTest, TopKRanksByScoreAndOmitsIdleStripes) {
  ContentionTable ct(16);
  // stripe 0: 1 stall            -> score 1
  // stripe 1: 2 cas failures     -> score 4
  // stripe 2: 1 abort + 1 stall  -> score 5
  ct.on_stall(0, 100);
  ct.on_cas_fail(1);
  ct.on_cas_fail(1);
  ct.on_abort(2);
  ct.on_stall(2, 1);

  const auto top = ct.top_k(2);
  ASSERT_EQ(top.size(), 2u) << "k must truncate";
  EXPECT_EQ(top[0].stripe, 2u);
  EXPECT_EQ(top[0].score(), 5u);
  EXPECT_EQ(top[1].stripe, 1u);
  EXPECT_EQ(top[1].score(), 4u);

  const auto all = ct.top_k(16);
  EXPECT_EQ(all.size(), 3u) << "idle stripes must be omitted";
}

TEST(ContentionTableTest, DecayHalvesAndResetClears) {
  ContentionTable ct(2);
  for (int i = 0; i < 8; ++i) ct.on_abort(0);
  ct.on_stall(1, 7);

  ct.decay_halve();
  ContentionTotals t = ct.totals();
  EXPECT_EQ(t.aborts, 4u);
  EXPECT_EQ(t.stall_ticks, 3u);

  ct.reset();
  t = ct.totals();
  EXPECT_EQ(t.stalls + t.stall_ticks + t.cas_failures + t.aborts, 0u);
}

TEST(ContentionTableTest, ConcurrentBumpsAreLossless) {
  ContentionTable ct(64);
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  test::run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kIters; ++i) {
      ct.on_cas_fail(static_cast<std::size_t>(i));
      ct.on_abort(static_cast<std::size_t>(t));
    }
  });
  const ContentionTotals t = ct.totals();
  EXPECT_EQ(t.cas_failures, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(t.aborts, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(LockSpaceContentionTest, StripeMappingIsStableAndLockResetPreservesTallies) {
  LockSpace ls(LockMode::kTable, /*table_entries=*/1 << 8, /*capacity_words=*/1 << 12);
  const gaddr_t a = 1234;
  const std::size_t s1 = ls.contention_stripe(a);
  const std::size_t s2 = ls.contention_stripe(a);
  EXPECT_EQ(s1, s2);
  EXPECT_LT(s1, ls.contention().stripes());
  // Same cache line -> same lock entry -> same stripe.
  EXPECT_EQ(ls.contention_stripe(a), ls.contention_stripe(a ^ 1));
  // The stripe of an address's own lock resolves back to the same cell.
  EXPECT_EQ(ls.contention_stripe_of_lock(ls.ref(a).s), s1);

  ls.contention().on_abort(s1);
  ls.reset();  // recovery clears lock words, not diagnostics
  EXPECT_EQ(ls.contention().totals().aborts, 1u);
  ls.contention().reset();
  EXPECT_EQ(ls.contention().totals().aborts, 0u);
}

TEST(LockSpaceContentionTest, ColocatedModeMapsIntoTable) {
  LockSpace ls(LockMode::kColocated, 0, /*capacity_words=*/1 << 12);
  const std::size_t s = ls.contention_stripe(99);
  EXPECT_LT(s, ls.contention().stripes());
  EXPECT_EQ(ls.contention_stripe(99), s);
}

// ---- TM surface -----------------------------------------------------------

class ContentionSurface : public ::testing::TestWithParam<TmKind> {};

INSTANTIATE_TEST_SUITE_P(AllTms, ContentionSurface, ::testing::ValuesIn(test::all_kinds()),
                         test::kind_param_name);

TEST_P(ContentionSurface, EveryTmExposesAnObservatory) {
  TmRunner runner(test::small_config(GetParam()));
  auto& tm = runner.tm();
  const ContentionTable* ct = tm.contention();
  ASSERT_NE(ct, nullptr);
  EXPECT_GE(ct->stripes(), 1u);

  // A contended hammer over one word: four threads, one address. The
  // tallies are failure-path-only, so no specific count is guaranteed, but
  // the table must stay coherent and reset_stats must clear it.
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  test::run_threads(4, [&](int t) {
    for (int i = 0; i < 50; ++i)
      runner.tm().run(t, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  });
  word_t v = 0;
  tm.run(0, [&](Tx& tx) { v = tx.read(a); });
  EXPECT_EQ(v, 200u);

  const ContentionTotals before = ct->totals();
  (void)before;
  tm.reset_stats();
  const ContentionTotals after = ct->totals();
  EXPECT_EQ(after.stalls + after.stall_ticks + after.cas_failures + after.aborts, 0u);
}

TEST(ContentionMetricsTest, SnapshotCarriesContentionAndPrometheusRendersIt) {
  TmRunner runner(test::small_config(TmKind::kNvHalt));
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  test::run_threads(4, [&](int t) {
    for (int i = 0; i < 25; ++i)
      runner.tm().run(t, [&](Tx& tx) { tx.write(a, tx.read(a) + 1); });
  });

  telemetry::MetricsRegistry reg;
  reg.add_tm(tm);
  const telemetry::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.tms.size(), 1u);
  EXPECT_TRUE(snap.tms[0].has_contention);
  EXPECT_GE(snap.tms[0].contention_stripes, 1u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"contention\""), std::string::npos);
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE nvhalt_lock_aborts_total counter"), std::string::npos);
  EXPECT_NE(prom.find("nvhalt_lock_stalls_total{"), std::string::npos);
}

}  // namespace
}  // namespace nvhalt
