// One-shot evaluation report: runs a compact version of the paper's whole
// evaluation (Fig. 8 both structures, Fig. 9 ablation, Fig. 6 progress)
// and prints the tables side by side, in the layout of the paper's
// figures. Scale knobs are the usual NVHALT_BENCH_* environment variables.
//
//   $ NVHALT_BENCH_MS=300 ./build/bench/bench_report
//
// With --taxonomy PATH it instead renders a bench_regress abort-taxonomy
// sidecar (BENCH_taxonomy.json) into markdown tables — one per structure,
// abort causes as columns — and exits without running any benchmark.
// With --hw-hotpath PATH it renders a bench_regress hw-hotpath report
// (BENCH_hw_hotpath.json) as a markdown table of per-access fast-path cost.
// With --gap PATH it renders any grid-shaped bench_regress report
// (BENCH_sw_hotpath.json or BENCH_ro_path.json) as a per-cell ratio table
// of every TM against Trinity — the paper's competitiveness claim in one
// markdown table, with a geometric-mean summary row.
// With --recovery PATH it renders a bench_regress recovery-time report
// (BENCH_recovery.json): recovery vs history length (checkpoint off/on)
// and vs parallel replay worker count.
// With --contention PATH it renders a bench_regress lock-contention sidecar
// (BENCH_contention.json) as the per-stripe heatmap: totals per grid cell
// plus the hottest stripes of the most contended cell per TM.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace nvhalt;
using namespace nvhalt::bench;

namespace {

void print_fig8(Structure structure, const char* title, const BenchScale& scale) {
  std::printf("\n== Fig. 8 %s — ops/s (key range %zu, %d ms windows) ==\n", title,
              scale.key_range, scale.duration_ms);
  std::printf("%-8s %-4s", "workload", "thr");
  for (const TmKind kind : fig8_tms()) std::printf(" %12s", tm_kind_name(kind));
  std::printf("\n");
  for (const int read_pct : fig8_read_pcts()) {
    for (const int threads : scale.thread_counts) {
      std::printf("%-8s %-4d", workload_name(read_pct).c_str(), threads);
      for (const TmKind kind : fig8_tms()) {
        BenchParams p;
        p.kind = kind;
        p.structure = structure;
        p.read_pct = read_pct;
        p.threads = threads;
        p.key_range = scale.key_range;
        p.duration_ms = scale.duration_ms;
        p.dist = scale.dist;
        const BenchResult r = run_structure_bench(p);
        std::printf(" %11.0fk", r.ops_per_sec / 1e3);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
}

void print_fig9(const BenchScale& scale) {
  struct Level {
    const char* name;
    bool flushes, eadr, latency, persist;
  };
  const Level levels[] = {
      {"BASE", true, false, true, true},
      {"EADR", false, true, true, true},
      {"NO-FLUSH-FENCE", false, false, true, true},
      {"NO-NVRAM", false, false, false, true},
      {"NO-PERSIST-HTXN", false, false, false, false},
  };
  const int threads = scale.thread_counts.back();
  std::printf("\n== Fig. 9 ablation — (a,b)-tree, t%d, ops/s ==\n", threads);
  std::printf("%-8s %-12s", "workload", "tm");
  for (const auto& l : levels) std::printf(" %16s", l.name);
  std::printf("\n");
  for (const int read_pct : fig8_read_pcts()) {
    for (const TmKind kind : {TmKind::kNvHaltCl, TmKind::kSpht}) {
      std::printf("%-8s %-12s", workload_name(read_pct).c_str(), tm_kind_name(kind));
      for (const auto& l : levels) {
        BenchParams p;
        p.kind = kind;
        p.structure = Structure::kAbTree;
        p.read_pct = read_pct;
        p.threads = threads;
        p.key_range = scale.key_range;
        p.duration_ms = scale.duration_ms;
        p.flushes_enabled = l.flushes;
        p.eadr = l.eadr;
        if (!l.latency) {
          p.flush_latency_ns = 0;
          p.fence_latency_ns = 0;
          p.nvm_store_latency_ns = 0;
        }
        p.persist_htxns = l.persist;
        const BenchResult r = run_structure_bench(p);
        std::printf(" %15.0fk", r.ops_per_sec / 1e3);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
}

// ---- taxonomy markdown rendering (--taxonomy) ----------------------------

/// Workload label for rendered tables: the grid's Zipf-skewed column shares
/// read_pct 50 with the uniform one, so skewed cells get a "-zipf" suffix
/// ("50ro-zipf"). Cells from reports predating the dist field render
/// unchanged.
std::string wl_label(long long read_pct, const std::string& dist) {
  std::string label = workload_name(static_cast<int>(read_pct));
  if (dist == "zipf") label += "-zipf";
  return label;
}

struct TaxonomyCell {
  std::string structure, tm, dist;
  long long read_pct = 0;
  long long commits = 0, hw_aborts = 0, sw_aborts = 0, user_aborts = 0, fallbacks = 0;
  long long ro_commits = 0, ro_aborts = 0;
  long long write_set_p99 = 0;
  long long by_cause[telemetry::kNumAbortCauses] = {};
  long long ro_by_cause[telemetry::kNumRoAbortCauses] = {};
};

/// Line-oriented parse of the sidecar (bench_regress writes one cell
/// object per line, so no general JSON parser is needed).
std::vector<TaxonomyCell> parse_taxonomy(std::ifstream& f) {
  std::vector<TaxonomyCell> cells;
  std::string line;
  while (std::getline(f, line)) {
    const auto str_field = [&line](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": \"";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return {};
      const auto start = pos + needle.size();
      const auto end = line.find('"', start);
      return end == std::string::npos ? std::string{} : line.substr(start, end - start);
    };
    const auto num_field = [&line](const std::string& key) -> long long {
      const std::string needle = "\"" + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return 0;
      return std::atoll(line.c_str() + pos + needle.size());
    };
    TaxonomyCell c;
    c.structure = str_field("structure");
    c.tm = str_field("tm");
    c.dist = str_field("dist");
    if (c.structure.empty() || c.tm.empty()) continue;
    c.read_pct = num_field("read_pct");
    c.commits = num_field("commits");
    c.hw_aborts = num_field("hw_aborts");
    c.sw_aborts = num_field("sw_aborts");
    c.user_aborts = num_field("user_aborts");
    c.fallbacks = num_field("fallbacks");
    c.ro_commits = num_field("ro_commits");
    c.ro_aborts = num_field("ro_aborts");
    c.write_set_p99 = num_field("write_set_p99");
    for (std::size_t i = 0; i < telemetry::kNumAbortCauses; ++i)
      c.by_cause[i] = num_field(htm::abort_cause_name(static_cast<htm::AbortCause>(i)));
    for (std::size_t i = 0; i < telemetry::kNumRoAbortCauses; ++i)
      c.ro_by_cause[i] =
          num_field(telemetry::ro_abort_cause_name(static_cast<telemetry::RoAbortCause>(i)));
    cells.push_back(std::move(c));
  }
  return cells;
}

int render_taxonomy_markdown(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report --taxonomy: cannot open %s\n", path.c_str());
    return 1;
  }
  const std::vector<TaxonomyCell> cells = parse_taxonomy(f);
  if (cells.empty()) {
    std::fprintf(stderr, "bench_report --taxonomy: no cells in %s\n", path.c_str());
    return 1;
  }

  std::printf("# Abort taxonomy (%s)\n", path.c_str());
  for (const char* st : {"abtree", "hashmap"}) {
    bool any = false;
    for (const TaxonomyCell& c : cells) any |= c.structure == st;
    if (!any) continue;
    std::printf("\n## %s\n\n", st);
    std::printf("| workload | tm | commits | hw aborts");
    for (std::size_t i = 0; i < telemetry::kNumAbortCauses; ++i)
      std::printf(" | %s", htm::abort_cause_name(static_cast<htm::AbortCause>(i)));
    std::printf(" | sw aborts | ro commits | ro aborts");
    for (std::size_t i = 0; i < telemetry::kNumRoAbortCauses; ++i)
      std::printf(" | %s", telemetry::ro_abort_cause_name(static_cast<telemetry::RoAbortCause>(i)));
    std::printf(" | fallbacks | wrset p99 |\n");
    std::printf("|---|---|---:|---:");
    for (std::size_t i = 0; i < telemetry::kNumAbortCauses; ++i) std::printf("|---:");
    std::printf("|---:|---:|---:");
    for (std::size_t i = 0; i < telemetry::kNumRoAbortCauses; ++i) std::printf("|---:");
    std::printf("|---:|---:|\n");
    for (const TaxonomyCell& c : cells) {
      if (c.structure != st) continue;
      std::printf("| %s | %s | %lld | %lld", wl_label(c.read_pct, c.dist).c_str(),
                  c.tm.c_str(), c.commits, c.hw_aborts);
      for (std::size_t i = 0; i < telemetry::kNumAbortCauses; ++i)
        std::printf(" | %lld", c.by_cause[i]);
      std::printf(" | %lld | %lld | %lld", c.sw_aborts, c.ro_commits, c.ro_aborts);
      for (std::size_t i = 0; i < telemetry::kNumRoAbortCauses; ++i)
        std::printf(" | %lld", c.ro_by_cause[i]);
      std::printf(" | %lld | %lld |\n", c.fallbacks, c.write_set_p99);
    }
  }
  return 0;
}

// ---- hw-hotpath markdown rendering (--hw-hotpath) ------------------------

/// Renders a bench_regress BENCH_hw_hotpath.json (one point object per
/// line) as a markdown table: per-access cost on the hardware fast path
/// plus the fraction of commits that actually stayed hardware — a
/// hw_commit_frac below ~1.0 flags that the point partially measured the
/// software fallback instead.
int render_hw_hotpath_markdown(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report --hw-hotpath: cannot open %s\n", path.c_str());
    return 1;
  }
  struct Point {
    std::string op;
    long long n = 0;
    double ns_per_op = 0, hw_commit_frac = 0;
  };
  std::vector<Point> pts;
  std::string line, mode = "?";
  while (std::getline(f, line)) {
    const auto mpos = line.find("\"mode\": \"");
    if (mpos != std::string::npos) {
      const auto start = mpos + 9;
      mode = line.substr(start, line.find('"', start) - start);
    }
    const auto num_field = [&line](const char* key) -> double {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::strtod(line.c_str() + pos + needle.size(), nullptr);
    };
    const auto opos = line.find("\"op\": \"");
    if (opos == std::string::npos) continue;
    Point p;
    const auto start = opos + 7;
    p.op = line.substr(start, line.find('"', start) - start);
    p.n = static_cast<long long>(num_field("n"));
    p.ns_per_op = num_field("ns_per_op");
    p.hw_commit_frac = num_field("hw_commit_frac");
    pts.push_back(std::move(p));
  }
  if (pts.empty()) {
    std::fprintf(stderr, "bench_report --hw-hotpath: no points in %s\n", path.c_str());
    return 1;
  }
  std::printf("# Hardware fast-path access cost (%s, %s mode)\n\n", path.c_str(), mode.c_str());
  std::printf("| op | accesses/txn | ns/access | hw commit frac |\n");
  std::printf("|---|---:|---:|---:|\n");
  for (const Point& p : pts)
    std::printf("| %s | %lld | %.1f | %.3f |\n", p.op.c_str(), p.n, p.ns_per_op,
                p.hw_commit_frac);
  return 0;
}

// ---- recovery markdown rendering (--recovery) ----------------------------

struct RecoveryCell {
  std::string tm;
  long long pool_words = 0, history_txs = 0, workers = 0, checkpoint = 0;
  double ms = 0;
};

/// Renders a bench_regress BENCH_recovery.json (one cell object per line)
/// as two markdown tables: recovery time against history length with
/// checkpointing off vs on (the bounded-recovery claim — the "on" row goes
/// flat once history outgrows the checkpoint interval), and recovery time
/// against replay worker count with the parallel speedup over serial.
int render_recovery_markdown(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report --recovery: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<RecoveryCell> cells;
  std::string line, mode = "?";
  while (std::getline(f, line)) {
    const auto mpos = line.find("\"mode\": \"");
    if (mpos != std::string::npos) {
      const auto start = mpos + 9;
      mode = line.substr(start, line.find('"', start) - start);
    }
    const auto str_field = [&line](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": \"";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return {};
      const auto start = pos + needle.size();
      const auto end = line.find('"', start);
      return end == std::string::npos ? std::string{} : line.substr(start, end - start);
    };
    const auto num_field = [&line](const char* key) -> double {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::strtod(line.c_str() + pos + needle.size(), nullptr);
    };
    RecoveryCell c;
    c.tm = str_field("tm");
    c.ms = num_field("ms");
    if (c.tm.empty() || c.ms < 0) continue;
    c.pool_words = static_cast<long long>(num_field("pool_words"));
    c.history_txs = static_cast<long long>(num_field("history_txs"));
    c.workers = static_cast<long long>(num_field("workers"));
    c.checkpoint = static_cast<long long>(num_field("checkpoint"));
    cells.push_back(std::move(c));
  }
  if (cells.empty()) {
    std::fprintf(stderr, "bench_report --recovery: no cells in %s\n", path.c_str());
    return 1;
  }

  std::vector<std::string> tms;
  for (const RecoveryCell& c : cells) {
    bool known = false;
    for (const std::string& t : tms) known |= t == c.tm;
    if (!known) tms.push_back(c.tm);
  }
  const auto sorted_values = [&cells](const auto& pick) {
    std::vector<long long> vals;
    for (const RecoveryCell& c : cells) {
      const long long v = pick(c);
      if (v < 0) continue;
      bool known = false;
      for (const long long k : vals) known |= k == v;
      if (!known) vals.push_back(v);
    }
    for (std::size_t i = 0; i + 1 < vals.size(); ++i)
      for (std::size_t j = i + 1; j < vals.size(); ++j)
        if (vals[j] < vals[i]) std::swap(vals[i], vals[j]);
    return vals;
  };

  std::printf("# Recovery time (%s, %s mode)\n", path.c_str(), mode.c_str());

  // Table 1: history sweep at one worker. Checkpointing bounds recovery by
  // the delta since the last checkpoint, so its row stays flat as history
  // grows; the no-checkpoint row tracks total history.
  const auto hists = sorted_values([](const RecoveryCell& c) {
    return c.workers == 1 ? c.history_txs : -1;
  });
  std::printf("\n## vs history length (1 worker)\n\n| tm | checkpoint |");
  for (const long long h : hists) std::printf(" %lld txs |", h);
  std::printf("\n|---|---|");
  for (std::size_t i = 0; i < hists.size(); ++i) std::printf("---:|");
  std::printf("\n");
  for (const std::string& tm : tms) {
    for (const long long ck : {0, 1}) {
      bool any = false;
      std::string row = "| " + tm + " | " + (ck != 0 ? "on" : "off") + " |";
      for (const long long h : hists) {
        double ms = -1;
        for (const RecoveryCell& c : cells)
          if (c.tm == tm && c.checkpoint == ck && c.workers == 1 && c.history_txs == h) {
            ms = c.ms;
            break;
          }
        char buf[48];
        if (ms < 0) {
          std::snprintf(buf, sizeof buf, " – |");
        } else {
          std::snprintf(buf, sizeof buf, " %.2f ms |", ms);
          any = true;
        }
        row += buf;
      }
      if (any) std::printf("%s\n", row.c_str());
    }
  }

  // Table 2: worker sweep on the no-checkpoint (largest-recovery) cells,
  // with the parallel speedup of the widest worker count over serial.
  const auto workers = sorted_values([](const RecoveryCell& c) {
    return c.checkpoint == 0 ? c.workers : -1;
  });
  const auto pools = sorted_values([](const RecoveryCell& c) {
    return c.checkpoint == 0 && c.workers > 1 ? c.pool_words : -1;
  });
  if (workers.size() > 1 && !pools.empty()) {
    std::printf("\n## vs replay workers (checkpoint off)\n\n| tm | pool words |");
    for (const long long w : workers) std::printf(" w=%lld |", w);
    std::printf(" speedup |\n|---|---:|");
    for (std::size_t i = 0; i < workers.size(); ++i) std::printf("---:|");
    std::printf("---:|\n");
    for (const std::string& tm : tms) {
      for (const long long pool : pools) {
        double serial = -1, widest = -1;
        std::string row = "| " + tm + " | ";
        char buf[48];
        std::snprintf(buf, sizeof buf, "%lld |", pool);
        row += buf;
        bool any = false;
        for (const long long w : workers) {
          double ms = -1;
          for (const RecoveryCell& c : cells)
            if (c.tm == tm && c.checkpoint == 0 && c.pool_words == pool && c.workers == w &&
                c.ms > 0) {
              ms = c.ms;
              break;
            }
          if (ms < 0) {
            std::snprintf(buf, sizeof buf, " – |");
          } else {
            std::snprintf(buf, sizeof buf, " %.2f ms |", ms);
            any = true;
            if (w == 1) serial = ms;
            widest = ms;
          }
          row += buf;
        }
        if (!any) continue;
        if (serial > 0 && widest > 0)
          std::snprintf(buf, sizeof buf, " %.2fx |", serial / widest);
        else
          std::snprintf(buf, sizeof buf, " – |");
        std::printf("%s%s\n", row.c_str(), buf);
      }
    }
  }
  return 0;
}

// ---- contention heatmap rendering (--contention) -------------------------

struct ContentionStripeLine {
  long long stripe = 0, stalls = 0, stall_ticks = 0, cas_failures = 0, aborts = 0, score = 0;
};

struct ContentionCell {
  std::string structure, tm, dist;
  long long read_pct = 0, stripes = 0;
  long long stalls = 0, stall_ticks = 0, cas_failures = 0, aborts = 0;
  std::vector<ContentionStripeLine> top;
};

/// Line-oriented parse of the contention sidecar. The top-K array repeats
/// keys per entry, so it is scanned object by object instead of by a
/// whole-line field lookup.
std::vector<ContentionCell> parse_contention(std::ifstream& f) {
  std::vector<ContentionCell> cells;
  std::string line;
  while (std::getline(f, line)) {
    const auto str_field = [&line](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": \"";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return {};
      const auto start = pos + needle.size();
      const auto end = line.find('"', start);
      return end == std::string::npos ? std::string{} : line.substr(start, end - start);
    };
    const auto top_pos = line.find("\"top\": [");
    const std::string head = top_pos == std::string::npos ? line : line.substr(0, top_pos);
    const auto num_field = [&head](const char* key) -> long long {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = head.find(needle);
      if (pos == std::string::npos) return 0;
      return std::atoll(head.c_str() + pos + needle.size());
    };
    ContentionCell c;
    c.structure = str_field("structure");
    c.tm = str_field("tm");
    c.dist = str_field("dist");
    if (c.structure.empty() || c.tm.empty() || top_pos == std::string::npos) continue;
    c.read_pct = num_field("read_pct");
    c.stripes = num_field("stripes");
    c.stalls = num_field("stalls");
    c.stall_ticks = num_field("stall_ticks");
    c.cas_failures = num_field("cas_failures");
    c.aborts = num_field("aborts");
    std::size_t pos = top_pos + 8;
    while (true) {
      const auto open = line.find('{', pos);
      if (open == std::string::npos) break;
      const auto close = line.find('}', open);
      if (close == std::string::npos) break;
      const std::string obj = line.substr(open, close - open + 1);
      const auto obj_field = [&obj](const char* key) -> long long {
        const std::string needle = std::string("\"") + key + "\": ";
        const auto p = obj.find(needle);
        return p == std::string::npos ? 0 : std::atoll(obj.c_str() + p + needle.size());
      };
      ContentionStripeLine s;
      s.stripe = obj_field("stripe");
      s.stalls = obj_field("stalls");
      s.stall_ticks = obj_field("stall_ticks");
      s.cas_failures = obj_field("cas_failures");
      s.aborts = obj_field("aborts");
      s.score = obj_field("score");
      c.top.push_back(s);
      pos = close + 1;
    }
    cells.push_back(std::move(c));
  }
  return cells;
}

/// Renders a bench_regress contention sidecar (BENCH_contention.json) as
/// the lock-contention heatmap: per structure a totals table over every
/// workload x TM cell, then per structure the hottest stripes of the most
/// abort-heavy cell per TM with a bar scaled to the group's peak score —
/// where in the lock space the workload is actually fighting.
int render_contention_markdown(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report --contention: cannot open %s\n", path.c_str());
    return 1;
  }
  const std::vector<ContentionCell> cells = parse_contention(f);
  if (cells.empty()) {
    std::fprintf(stderr, "bench_report --contention: no cells in %s\n", path.c_str());
    return 1;
  }

  std::printf("# Lock-contention heatmap (%s)\n", path.c_str());
  std::printf("\nFailure-path tallies only (stalls, CAS losses, conflict aborts) — an empty\n"
              "table row means the cell ran contention-free, not that tracking was off.\n");
  for (const char* st : {"abtree", "hashmap"}) {
    bool any = false;
    for (const ContentionCell& c : cells) any |= c.structure == st;
    if (!any) continue;
    std::printf("\n## %s — totals\n\n", st);
    std::printf("| workload | tm | stripes | stalls | stall ticks | cas failures | aborts |\n");
    std::printf("|---|---|---:|---:|---:|---:|---:|\n");
    for (const ContentionCell& c : cells) {
      if (c.structure != st) continue;
      std::printf("| %s | %s | %lld | %lld | %lld | %lld | %lld |\n",
                  wl_label(c.read_pct, c.dist).c_str(), c.tm.c_str(), c.stripes,
                  c.stalls, c.stall_ticks, c.cas_failures, c.aborts);
    }

    // Hot stripes: per TM, the cell with the most attributed aborts (the
    // workload actually fighting), its top stripes bar-scaled to the
    // structure-wide peak score so bars compare across TMs.
    std::vector<const ContentionCell*> hottest;
    for (const ContentionCell& c : cells) {
      if (c.structure != st || c.top.empty()) continue;
      bool found = false;
      for (const ContentionCell*& h : hottest) {
        if (h->tm != c.tm) continue;
        found = true;
        if (c.aborts > h->aborts) h = &c;
      }
      if (!found) hottest.push_back(&c);
    }
    long long peak = 0;
    for (const ContentionCell* h : hottest)
      for (const ContentionStripeLine& s : h->top) peak = std::max(peak, s.score);
    if (peak == 0) continue;
    std::printf("\n## %s — hot stripes\n\n", st);
    std::printf("| tm | workload | stripe | heat | score | stalls | cas | aborts |\n");
    std::printf("|---|---|---:|:---|---:|---:|---:|---:|\n");
    for (const ContentionCell* h : hottest) {
      std::size_t shown = 0;
      for (const ContentionStripeLine& s : h->top) {
        if (shown++ >= 8) break;
        const int bars = static_cast<int>((s.score * 20 + peak - 1) / peak);
        std::string bar;
        for (int b = 0; b < bars; ++b) bar += "█";
        std::printf("| %s | %s | %lld | %s | %lld | %lld | %lld | %lld |\n", h->tm.c_str(),
                    wl_label(h->read_pct, h->dist).c_str(), s.stripe, bar.c_str(),
                    s.score, s.stalls, s.cas_failures, s.aborts);
      }
    }
  }
  return 0;
}

// ---- Trinity-gap markdown rendering (--gap) ------------------------------

struct GapCell {
  std::string structure, tm, dist;
  long long read_pct = 0;
  double ops = 0;
  /// Negative when the report doesn't carry the field (e.g. ro-path).
  double fences_per_op = -1;
};

/// Renders any grid-shaped report (one cell object per line carrying
/// structure / read_pct / tm / ops_per_sec — the main grid and the ro-path
/// report both qualify) as a per-cell ratio table against Trinity, the
/// paper's primary competitor. A geomean row summarizes each column; cells
/// at or above 1.00 are where NV-HALT meets the competitiveness bar.
int render_gap_markdown(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report --gap: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<GapCell> cells;
  std::string line;
  while (std::getline(f, line)) {
    const auto str_field = [&line](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": \"";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return {};
      const auto start = pos + needle.size();
      const auto end = line.find('"', start);
      return end == std::string::npos ? std::string{} : line.substr(start, end - start);
    };
    const auto num_field = [&line](const char* key) -> double {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::strtod(line.c_str() + pos + needle.size(), nullptr);
    };
    GapCell c;
    c.structure = str_field("structure");
    c.tm = str_field("tm");
    c.dist = str_field("dist");
    c.ops = num_field("ops_per_sec");
    if (c.structure.empty() || c.tm.empty() || c.ops < 0) continue;
    c.read_pct = static_cast<long long>(num_field("read_pct"));
    c.fences_per_op = num_field("fences_per_op");
    cells.push_back(std::move(c));
  }
  if (cells.empty()) {
    std::fprintf(stderr, "bench_report --gap: no grid cells in %s\n", path.c_str());
    return 1;
  }

  // Column order: every TM present in the file except the Trinity divisor,
  // in first-appearance order.
  std::vector<std::string> tms;
  for (const GapCell& c : cells) {
    if (c.tm == "Trinity") continue;
    bool known = false;
    for (const std::string& t : tms) known |= t == c.tm;
    if (!known) tms.push_back(c.tm);
  }
  const auto find_cell = [&cells](const std::string& st, long long pct, const std::string& dist,
                                  const std::string& tm) -> const GapCell* {
    for (const GapCell& c : cells)
      if (c.structure == st && c.read_pct == pct && c.dist == dist && c.tm == tm) return &c;
    return nullptr;
  };

  std::printf("# Throughput vs Trinity (%s)\n\n", path.c_str());
  std::printf("Each cell is ops_per_sec(TM) / ops_per_sec(Trinity) on the same workload.\n\n");
  std::printf("| structure | workload |");
  for (const std::string& t : tms) std::printf(" %s |", t.c_str());
  std::printf("\n|---|---|");
  for (std::size_t i = 0; i < tms.size(); ++i) std::printf("---:|");
  std::printf("\n");

  struct Workload {
    long long pct;
    std::string dist;
  };
  const auto workloads_for = [&cells](const char* st) {
    // Row order: unique (read_pct, dist) pairs in file order for this
    // structure — the Zipf-skewed 50ro column is its own row.
    std::vector<Workload> wls;
    for (const GapCell& c : cells) {
      if (c.structure != st) continue;
      bool known = false;
      for (const Workload& w : wls) known |= w.pct == c.read_pct && w.dist == c.dist;
      if (!known) wls.push_back({c.read_pct, c.dist});
    }
    return wls;
  };

  std::vector<double> log_sum(tms.size(), 0.0);
  std::vector<std::size_t> log_n(tms.size(), 0);
  for (const char* st : {"abtree", "hashmap"}) {
    for (const Workload& wl : workloads_for(st)) {
      const GapCell* trinity = find_cell(st, wl.pct, wl.dist, "Trinity");
      if (trinity == nullptr || trinity->ops <= 0) continue;
      std::printf("| %s | %s |", st, wl_label(wl.pct, wl.dist).c_str());
      for (std::size_t i = 0; i < tms.size(); ++i) {
        const GapCell* c = find_cell(st, wl.pct, wl.dist, tms[i]);
        if (c == nullptr) {
          std::printf(" – |");
          continue;
        }
        const double ratio = c->ops / trinity->ops;
        log_sum[i] += std::log(ratio);
        log_n[i]++;
        std::printf(" %.2fx |", ratio);
      }
      std::printf("\n");
    }
  }
  std::printf("| **geomean** | |");
  for (std::size_t i = 0; i < tms.size(); ++i) {
    if (log_n[i] == 0)
      std::printf(" – |");
    else
      std::printf(" **%.2fx** |", std::exp(log_sum[i] / static_cast<double>(log_n[i])));
  }
  std::printf("\n");

  // Update-heavy close-up: the cells where commits actually pay for
  // durability (50% reads and below). Next to the Trinity ratio each TM
  // shows its fences_per_op — the unit the group-commit fence combiner
  // amortizes — so a throughput win (or loss) comes with its fence story.
  bool any_update_heavy = false;
  for (const GapCell& c : cells) any_update_heavy |= c.read_pct <= 50 && c.fences_per_op >= 0;
  if (any_update_heavy) {
    std::printf("\n## Update-heavy cells: durability cost\n\n");
    std::printf("fences/op is per-TM; the ratio column stays ops(TM)/ops(Trinity).\n\n");
    std::printf("| structure | workload | tm | vs Trinity | fences/op | Trinity fences/op |\n");
    std::printf("|---|---|---|---:|---:|---:|\n");
    std::vector<double> uh_log_sum(tms.size(), 0.0);
    std::vector<std::size_t> uh_log_n(tms.size(), 0);
    for (const char* st : {"abtree", "hashmap"}) {
      for (const Workload& wl : workloads_for(st)) {
        if (wl.pct > 50) continue;
        const GapCell* trinity = find_cell(st, wl.pct, wl.dist, "Trinity");
        if (trinity == nullptr || trinity->ops <= 0) continue;
        for (std::size_t i = 0; i < tms.size(); ++i) {
          const GapCell* c = find_cell(st, wl.pct, wl.dist, tms[i]);
          if (c == nullptr) continue;
          const double ratio = c->ops / trinity->ops;
          uh_log_sum[i] += std::log(ratio);
          uh_log_n[i]++;
          std::printf("| %s | %s | %s | %.2fx |", st, wl_label(wl.pct, wl.dist).c_str(),
                      tms[i].c_str(), ratio);
          if (c->fences_per_op >= 0)
            std::printf(" %.3f |", c->fences_per_op);
          else
            std::printf(" – |");
          if (trinity->fences_per_op >= 0)
            std::printf(" %.3f |\n", trinity->fences_per_op);
          else
            std::printf(" – |\n");
        }
      }
    }
    for (std::size_t i = 0; i < tms.size(); ++i) {
      if (uh_log_n[i] == 0) continue;
      std::printf("| **geomean** | | %s | **%.2fx** | | |\n", tms[i].c_str(),
                  std::exp(uh_log_sum[i] / static_cast<double>(uh_log_n[i])));
    }
  }
  return 0;
}

// ---- group-commit markdown rendering (--group) ---------------------------

struct GroupCell {
  long long read_pct = 0, threads = 0;
  bool combine = false;
  double ops = 0, fences_per_op = 0, combined_per_op = 0;
};

/// Renders BENCH_group_commit.json as a solo-vs-combine table: per
/// (threads, workload) row the throughput speedup and the fences_per_op
/// drop the flat-combining fence buys, plus how many fences per op were
/// actually absorbed into another committer's drain (engagement — rows
/// with 0.000 combined/op show the adaptive gate keeping solo latency).
int render_group_markdown(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report --group: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<GroupCell> cells;
  std::string line;
  while (std::getline(f, line)) {
    const auto num_field = [&line](const char* key) -> double {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::strtod(line.c_str() + pos + needle.size(), nullptr);
    };
    if (line.find("\"combine\": ") == std::string::npos) continue;
    GroupCell c;
    c.read_pct = static_cast<long long>(num_field("read_pct"));
    c.threads = static_cast<long long>(num_field("threads"));
    c.combine = line.find("\"combine\": true") != std::string::npos;
    c.ops = num_field("ops_per_sec");
    c.fences_per_op = num_field("fences_per_op");
    c.combined_per_op = num_field("fences_combined_per_op");
    cells.push_back(c);
  }
  if (cells.empty()) {
    std::fprintf(stderr, "bench_report --group: no cells in %s\n", path.c_str());
    return 1;
  }
  const auto find = [&cells](long long threads, long long pct, bool combine) -> const GroupCell* {
    for (const GroupCell& c : cells)
      if (c.threads == threads && c.read_pct == pct && c.combine == combine) return &c;
    return nullptr;
  };
  std::printf("# Group durable commit (%s)\n\n", path.c_str());
  std::printf("NV-HALT / hashmap; solo = fence combining off, combine = flat-combining\n"
              "fence + XPLine write combining. Speedup is ops(combine)/ops(solo).\n\n");
  std::printf("| threads | workload | solo ops/s | combine ops/s | speedup "
              "| solo fences/op | combine fences/op | combined/op |\n");
  std::printf("|---:|---|---:|---:|---:|---:|---:|---:|\n");
  for (const GroupCell& c : cells) {
    if (c.combine) continue;
    const GroupCell* on = find(c.threads, c.read_pct, true);
    if (on == nullptr) continue;
    std::printf("| %lld | %s | %.0f | %.0f | %.2fx | %.3f | %.3f | %.3f |\n", c.threads,
                workload_name(static_cast<int>(c.read_pct)).c_str(), c.ops, on->ops,
                c.ops > 0 ? on->ops / c.ops : 0, c.fences_per_op, on->fences_per_op,
                on->combined_per_op);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--taxonomy") == 0 && i + 1 < argc)
      return render_taxonomy_markdown(argv[i + 1]);
    if (std::strcmp(argv[i], "--hw-hotpath") == 0 && i + 1 < argc)
      return render_hw_hotpath_markdown(argv[i + 1]);
    if (std::strcmp(argv[i], "--gap") == 0 && i + 1 < argc)
      return render_gap_markdown(argv[i + 1]);
    if (std::strcmp(argv[i], "--recovery") == 0 && i + 1 < argc)
      return render_recovery_markdown(argv[i + 1]);
    if (std::strcmp(argv[i], "--contention") == 0 && i + 1 < argc)
      return render_contention_markdown(argv[i + 1]);
    if (std::strcmp(argv[i], "--group") == 0 && i + 1 < argc)
      return render_group_markdown(argv[i + 1]);
    std::fprintf(stderr,
                 "usage: bench_report [--taxonomy PATH] [--hw-hotpath PATH] [--gap PATH] "
                 "[--recovery PATH] [--contention PATH] [--group PATH]\n");
    return 2;
  }
  const BenchScale scale = read_scale_from_env();
  std::printf("NV-HALT evaluation report (simulated HTM + simulated NVM; see EXPERIMENTS.md\n"
              "for the distortion analysis — shapes, not absolute numbers, are meaningful)\n");
  print_fig8(Structure::kAbTree, "row 1: (a,b)-tree", scale);
  print_fig8(Structure::kHashMap, "row 2: hashmap", scale);
  print_fig9(scale);
  std::printf("\nFor Fig. 6 (progress pathology) run build/bench/bench_fig6_livelock;\n"
              "for abort-pressure sensitivity run build/bench/bench_abort_sensitivity.\n");
  return 0;
}
