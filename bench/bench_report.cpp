// One-shot evaluation report: runs a compact version of the paper's whole
// evaluation (Fig. 8 both structures, Fig. 9 ablation, Fig. 6 progress)
// and prints the tables side by side, in the layout of the paper's
// figures. Scale knobs are the usual NVHALT_BENCH_* environment variables.
//
//   $ NVHALT_BENCH_MS=300 ./build/bench/bench_report
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace nvhalt;
using namespace nvhalt::bench;

namespace {

void print_fig8(Structure structure, const char* title, const BenchScale& scale) {
  std::printf("\n== Fig. 8 %s — ops/s (key range %zu, %d ms windows) ==\n", title,
              scale.key_range, scale.duration_ms);
  std::printf("%-8s %-4s", "workload", "thr");
  for (const TmKind kind : fig8_tms()) std::printf(" %12s", tm_kind_name(kind));
  std::printf("\n");
  for (const int read_pct : fig8_read_pcts()) {
    for (const int threads : scale.thread_counts) {
      std::printf("%-8s %-4d", workload_name(read_pct).c_str(), threads);
      for (const TmKind kind : fig8_tms()) {
        BenchParams p;
        p.kind = kind;
        p.structure = structure;
        p.read_pct = read_pct;
        p.threads = threads;
        p.key_range = scale.key_range;
        p.duration_ms = scale.duration_ms;
        p.dist = scale.dist;
        const BenchResult r = run_structure_bench(p);
        std::printf(" %11.0fk", r.ops_per_sec / 1e3);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
}

void print_fig9(const BenchScale& scale) {
  struct Level {
    const char* name;
    bool flushes, eadr, latency, persist;
  };
  const Level levels[] = {
      {"BASE", true, false, true, true},
      {"EADR", false, true, true, true},
      {"NO-FLUSH-FENCE", false, false, true, true},
      {"NO-NVRAM", false, false, false, true},
      {"NO-PERSIST-HTXN", false, false, false, false},
  };
  const int threads = scale.thread_counts.back();
  std::printf("\n== Fig. 9 ablation — (a,b)-tree, t%d, ops/s ==\n", threads);
  std::printf("%-8s %-12s", "workload", "tm");
  for (const auto& l : levels) std::printf(" %16s", l.name);
  std::printf("\n");
  for (const int read_pct : fig8_read_pcts()) {
    for (const TmKind kind : {TmKind::kNvHaltCl, TmKind::kSpht}) {
      std::printf("%-8s %-12s", workload_name(read_pct).c_str(), tm_kind_name(kind));
      for (const auto& l : levels) {
        BenchParams p;
        p.kind = kind;
        p.structure = Structure::kAbTree;
        p.read_pct = read_pct;
        p.threads = threads;
        p.key_range = scale.key_range;
        p.duration_ms = scale.duration_ms;
        p.flushes_enabled = l.flushes;
        p.eadr = l.eadr;
        if (!l.latency) {
          p.flush_latency_ns = 0;
          p.fence_latency_ns = 0;
          p.nvm_store_latency_ns = 0;
        }
        p.persist_htxns = l.persist;
        const BenchResult r = run_structure_bench(p);
        std::printf(" %15.0fk", r.ops_per_sec / 1e3);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  const BenchScale scale = read_scale_from_env();
  std::printf("NV-HALT evaluation report (simulated HTM + simulated NVM; see EXPERIMENTS.md\n"
              "for the distortion analysis — shapes, not absolute numbers, are meaningful)\n");
  print_fig8(Structure::kAbTree, "row 1: (a,b)-tree", scale);
  print_fig8(Structure::kHashMap, "row 2: hashmap", scale);
  print_fig9(scale);
  std::printf("\nFor Fig. 6 (progress pathology) run build/bench/bench_fig6_livelock;\n"
              "for abort-pressure sensitivity run build/bench/bench_abort_sensitivity.\n");
  return 0;
}
