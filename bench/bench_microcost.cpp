// Micro-cost benchmarks for the design choices DESIGN.md calls out:
//   * hardware-path read instrumentation (lock subscription) cost
//   * hardware-assisted locking (write instrumentation) cost
//   * Trinity record persistence cost per written word
//   * software-path full-read-set revalidation cost vs read-set size
// These quantify the per-access overheads behind the Fig. 8/9 shapes.
#include <benchmark/benchmark.h>

#include "api/tm_factory.hpp"

using namespace nvhalt;

namespace {

RunnerConfig micro_cfg(TmKind kind) {
  RunnerConfig cfg;
  cfg.kind = kind;
  cfg.pmem.capacity_words = std::size_t{1} << 18;
  return cfg;
}

// Cost of a read-only hardware transaction over N words, with and without
// lock-subscribing reads (ablation knob hw_read_check_locks).
void BM_HwReadTxn(benchmark::State& state) {
  RunnerConfig cfg = micro_cfg(TmKind::kNvHalt);
  cfg.nvhalt.hw_read_check_locks = state.range(1) != 0;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const auto n = static_cast<std::size_t>(state.range(0));
  const gaddr_t arr = runner.alloc().raw_alloc_large(n);
  word_t sink = 0;
  for (auto _ : state) {
    tm.run(0, [&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) sink += tx.read(arr + i);
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HwReadTxn)
    ->ArgsProduct({{8, 64}, {0, 1}})
    ->ArgNames({"words", "lock_checks"});

// Cost of a writing hardware transaction: lock acquisition + undo logging +
// post-xend persistence, vs the volatile-only configuration.
void BM_HwWriteTxn(benchmark::State& state) {
  RunnerConfig cfg = micro_cfg(TmKind::kNvHalt);
  cfg.nvhalt.persist_hw_txns = state.range(1) != 0;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const auto n = static_cast<std::size_t>(state.range(0));
  const gaddr_t arr = runner.alloc().raw_alloc_large(n);
  word_t v = 0;
  for (auto _ : state) {
    ++v;
    tm.run(0, [&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) tx.write(arr + i, v);
    });
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HwWriteTxn)->ArgsProduct({{1, 8}, {0, 1}})->ArgNames({"words", "persist"});

// Software path: Fig. 1's full read-set revalidation on every read is
// O(n^2) in the read-set size (validate_every_read=1); the default
// commit_seq snapshot cache revalidates only when a writer published,
// making the uncontended case O(n) — the A/B this benchmark measures.
void BM_SwReadTxnScaling(benchmark::State& state) {
  RunnerConfig cfg = micro_cfg(TmKind::kNvHalt);
  cfg.nvhalt.htm_attempts = 0;
  cfg.nvhalt.validate_every_read = state.range(1) != 0;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const auto n = static_cast<std::size_t>(state.range(0));
  const gaddr_t arr = runner.alloc().raw_alloc_large(n);
  word_t sink = 0;
  for (auto _ : state) {
    tm.run(0, [&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) sink += tx.read(arr + i);
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SwReadTxnScaling)
    ->ArgsProduct({{8, 32, 128, 256}, {0, 1}})
    ->ArgNames({"words", "every_read"});

// Trinity (TL2) read-only transactions validate per read against the
// global clock only — O(n), the contrast to the NV-HALT fallback.
void BM_TrinityReadTxnScaling(benchmark::State& state) {
  TmRunner runner(micro_cfg(TmKind::kTrinity));
  auto& tm = runner.tm();
  const auto n = static_cast<std::size_t>(state.range(0));
  const gaddr_t arr = runner.alloc().raw_alloc_large(n);
  word_t sink = 0;
  for (auto _ : state) {
    tm.run(0, [&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) sink += tx.read(arr + i);
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TrinityReadTxnScaling)->Arg(8)->Arg(32)->Arg(128);

// Per-word persistence cost: Trinity record write + flush + fence, at
// different simulated NVM latencies.
void BM_PersistPerWord(benchmark::State& state) {
  RunnerConfig cfg = micro_cfg(TmKind::kNvHalt);
  cfg.pmem.flush_latency_ns = static_cast<std::uint64_t>(state.range(0));
  cfg.pmem.fence_latency_ns = cfg.pmem.flush_latency_ns / 2;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const gaddr_t a = runner.alloc().raw_alloc(0, 1);
  word_t v = 0;
  for (auto _ : state) {
    tm.run(0, [&](Tx& tx) { tx.write(a, ++v); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PersistPerWord)->Arg(0)->Arg(150)->Arg(500)->ArgName("flush_ns");

// SPHT ordering overhead: a single uncontended writer still pays the log
// append + marker persistence on every commit.
void BM_SphtCommitOverhead(benchmark::State& state) {
  RunnerConfig cfg = micro_cfg(TmKind::kSpht);
  cfg.spht.persist_txns = state.range(0) != 0;
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  gaddr_t a = kNullAddr;
  tm.run(0, [&](Tx& tx) {
    a = tx.alloc(1);
    tx.write(a, 0);
  });
  word_t v = 0;
  for (auto _ : state) {
    tm.run(0, [&](Tx& tx) { tx.write(a, ++v); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SphtCommitOverhead)->Arg(1)->Arg(0)->ArgName("persist");

}  // namespace

BENCHMARK_MAIN();
