// Perf-regression reporter: runs a fixed micro-grid (abtree + hashmap,
// 99/90/50/0% read-only, all 5 TMs) plus a software-path read-set scaling
// sweep (validation cache on vs validate_every_read), and emits a
// machine-readable JSON report so every PR leaves a throughput trajectory
// behind. Plain binary — no google-benchmark, no external JSON library.
//
// Usage: bench_regress [--smoke] [--check] [--out PATH]
//   --smoke   truncated ~10s mode (small keys, short windows), used by the
//             perf-smoke CTest target
//   --check   after writing the report, re-read and validate its shape;
//             exit nonzero on a malformed or missing file
//   --out     output path (default: BENCH_sw_hotpath.json in the CWD)
//
// The committed BENCH_sw_hotpath.json at the repo root is a full-mode run
// of this binary. No timing assertions anywhere: the report records
// numbers; humans (and PR descriptions) compare them across revisions.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace nvhalt::bench {
namespace {

struct Options {
  bool smoke = false;
  bool check = false;
  std::string out = "BENCH_sw_hotpath.json";
};

struct ScalingPoint {
  std::size_t reads;
  double ns_per_read;
};

// Software-path read cost vs read-set size, single-threaded and
// latency-free so the validation work itself is what is measured. The
// acceptance bar for the snapshot cache: per-read cost at 256-entry read
// sets stays within a small constant factor of 8-entry sets, instead of
// the superlinear blowup of per-read full revalidation.
std::vector<ScalingPoint> measure_read_scaling(bool every_read, int iters) {
  std::vector<ScalingPoint> out;
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{256}}) {
    RunnerConfig cfg;
    cfg.kind = TmKind::kNvHalt;
    cfg.pmem.capacity_words = std::size_t{1} << 18;
    cfg.nvhalt.htm_attempts = 0;  // force the software path
    cfg.nvhalt.validate_every_read = every_read;
    TmRunner runner(cfg);
    auto& tm = runner.tm();
    const gaddr_t arr = runner.alloc().raw_alloc_large(n);
    word_t sink = 0;
    const auto body = [&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) sink += tx.read(arr + i);
    };
    for (int i = 0; i < 16; ++i) tm.run(0, body);  // warm up
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) tm.run(0, body);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    out.push_back({n, ns / (static_cast<double>(iters) * static_cast<double>(n))});
    if (sink == 0xDEADBEEF) std::fprintf(stderr, "?");  // keep reads observable
  }
  return out;
}

const char* structure_name(Structure s) { return s == Structure::kAbTree ? "abtree" : "hashmap"; }

void emit_scaling(std::ostream& os, const char* key, const std::vector<ScalingPoint>& pts,
                  bool last) {
  os << "    \"" << key << "\": [";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "{\"reads\": " << pts[i].reads << ", \"ns_per_read\": "
       << pts[i].ns_per_read << "}";
  }
  os << "]" << (last ? "" : ",") << "\n";
}

int run_report(const Options& opt) {
  const int scale_iters = opt.smoke ? 300 : 3000;
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-regress-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";

  js << "  \"read_scaling\": {\n";
  emit_scaling(js, "cached", measure_read_scaling(/*every_read=*/false, scale_iters), false);
  emit_scaling(js, "every_read", measure_read_scaling(/*every_read=*/true, scale_iters), true);
  js << "  },\n";

  js << "  \"grid\": [\n";
  bool first = true;
  for (const Structure st : {Structure::kAbTree, Structure::kHashMap}) {
    for (const int read_pct : fig8_read_pcts()) {
      for (const TmKind kind : fig8_tms()) {
        BenchParams p;
        p.kind = kind;
        p.structure = st;
        p.read_pct = read_pct;
        p.threads = 2;
        p.key_range = opt.smoke ? (std::size_t{1} << 10) : (std::size_t{1} << 14);
        p.duration_ms = opt.smoke ? 20 : 150;
        const BenchResult r = run_structure_bench(p);
        js << (first ? "" : ",\n");
        first = false;
        js << "    {\"structure\": \"" << structure_name(st) << "\", \"read_pct\": " << read_pct
           << ", \"tm\": \"" << tm_kind_name(kind) << "\", \"threads\": " << p.threads
           << ", \"ops_per_sec\": " << r.ops_per_sec
           << ", \"flushes_per_op\": " << r.flushes_per_op
           << ", \"fences_per_op\": " << r.fences_per_op
           << ", \"flush_dedup_per_op\": " << r.flush_dedup_per_op << "}";
        std::fprintf(stderr, "%s %dro %s: %.0f ops/s\n", structure_name(st), read_pct,
                     tm_kind_name(kind), r.ops_per_sec);
      }
    }
  }
  js << "\n  ]\n}\n";

  std::ofstream f(opt.out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.out.c_str());
  return 0;
}

/// Output-shape validation for the perf-smoke CTest target: the report
/// must exist, be structurally sound JSON (balanced, right schema tag) and
/// contain every grid cell. Deliberately no timing assertions.
int check_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> errors;

  const auto first = s.find_first_not_of(" \t\r\n");
  const auto last = s.find_last_not_of(" \t\r\n");
  if (first == std::string::npos || s[first] != '{' || s[last] != '}')
    errors.push_back("not a JSON object");

  long depth_brace = 0, depth_bracket = 0;
  bool in_string = false;
  for (const char c : s) {
    if (c == '"') in_string = !in_string;  // report strings contain no escapes
    if (in_string) continue;
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) break;
  }
  if (depth_brace != 0 || depth_bracket != 0 || in_string)
    errors.push_back("unbalanced braces/brackets/quotes");

  const auto count = [&s](const char* needle) {
    std::size_t n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos; pos = s.find(needle, pos + 1)) ++n;
    return n;
  };
  if (s.find("\"schema\": \"nvhalt-bench-regress-v1\"") == std::string::npos)
    errors.push_back("missing/unknown schema tag");
  if (s.find("\"read_scaling\"") == std::string::npos) errors.push_back("missing read_scaling");
  if (count("\"ns_per_read\"") != 6) errors.push_back("read_scaling must have 2x3 points");
  const std::size_t cells = count("\"ops_per_sec\"");
  if (cells != 40) {
    errors.push_back("grid must have 2 structures x 4 workloads x 5 TMs = 40 cells, found " +
                     std::to_string(cells));
  }
  for (const char* tm : {"NV-HALT-SP", "NV-HALT-CL", "Trinity", "SPHT"}) {
    if (s.find(std::string("\"tm\": \"") + tm + "\"") == std::string::npos)
      errors.push_back(std::string("missing TM ") + tm);
  }

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

}  // namespace
}  // namespace nvhalt::bench

int main(int argc, char** argv) {
  nvhalt::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opt.check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_regress [--smoke] [--check] [--out PATH]\n");
      return 2;
    }
  }
  const int rc = nvhalt::bench::run_report(opt);
  if (rc != 0) return rc;
  return opt.check ? nvhalt::bench::check_report(opt.out) : 0;
}
