// Perf-regression reporter: runs a fixed micro-grid (abtree + hashmap,
// 99/90/50/0% read-only uniform plus a 50% Zipf-skewed column, all 5 TMs)
// plus a software-path read-set scaling sweep (validation cache on vs
// validate_every_read), and emits a machine-readable JSON report so every
// PR leaves a throughput trajectory behind. Plain binary — no
// google-benchmark, no external JSON library.
//
// Usage: bench_regress [--smoke] [--check] [--out PATH] [--scaling-out PATH]
//                      [--taxonomy-out PATH] [--hw-out PATH] [--ro-out PATH]
//                      [--alloc-out PATH] [--group-out PATH] [--baseline PATH]
//                      [--hw-baseline PATH] [--ro-baseline PATH]
//                      [--alloc-baseline PATH] [--group-baseline PATH]
//   --smoke        truncated ~10s mode (small keys, short windows), used by
//                  the perf-smoke CTest target
//   --check        after writing the reports, re-read and validate their
//                  shape; exit nonzero on a malformed or missing file
//   --out          main report path (default: BENCH_sw_hotpath.json)
//   --scaling-out  thread-scaling report path (default:
//                  BENCH_thread_scaling.json)
//   --taxonomy-out abort-taxonomy sidecar path, one line per grid cell with
//                  the decoded abort-cause split (default: BENCH_taxonomy.json);
//                  --check additionally asserts each cell's cause counts sum
//   --contention-out per-stripe lock-contention sidecar path, one line per
//                  grid cell with totals + decayed top-K hot stripes
//                  (default: BENCH_contention.json); bench_report
//                  --contention renders it as the stripe heatmap
//                  to its hw_aborts exactly
//   --hw-out       hardware-fast-path access-cost report (ns per
//                  transactional read/write, hw commit fraction), mirroring
//                  the sw read_scaling sweep (default: BENCH_hw_hotpath.json)
//   --ro-out       read-only fast-path report: the read-dominated corner of
//                  the grid (99ro / 95ro, both structures, all TMs) with the
//                  fraction of commits the RO engines actually took
//                  (default: BENCH_ro_path.json); --check asserts the RO
//                  cause counts sum to ro_aborts and that NV-HALT cells
//                  routed most commits through the RO path
//   --baseline     compare the fresh report's grid cells against a previous
//                  report (e.g. the committed BENCH_sw_hotpath.json)
//   --hw-baseline  same for the hw-hotpath report; ns_per_op is a latency,
//                  so the gate ratio is baseline/current
//   --ro-baseline  same cell-wise ops_per_sec gate for the ro-path report
//   --alloc-out    delete-heavy allocator-churn report: 0% reads, Zipfian
//                  keys, skiplist + abtree across the four freeing TMs,
//                  with the epoch retire/reclaim ledger per cell (default:
//                  BENCH_alloc_churn.json); --check asserts the ledger
//                  balances (retired == reclaimed + limbo)
//   --alloc-baseline  same cell-wise ops_per_sec gate for the churn report
//   --group-out    group-durable-commit sweep: NV-HALT on the hashmap,
//                  threads x {50ro, 0ro} x fence combining off/on, each cell
//                  with ops_per_sec + fences_per_op (default:
//                  BENCH_group_commit.json); --check asserts the shape
//   --group-baseline  same cell-wise gate for the group-commit sweep
//
// Besides ops_per_sec, --baseline / --group-baseline also compare
// fences_per_op cell-wise: a fence is the unit the group-commit layer
// exists to amortize, so a fence-count regression is flagged (and gated
// under NVHALT_BENCH_TOLERANCE) even when throughput hides it in noise.
//
// The committed BENCH_sw_hotpath.json / BENCH_thread_scaling.json at the
// repo root are full-mode runs of this binary. By default there are no
// timing assertions anywhere: the reports record numbers; humans (and PR
// descriptions) compare them across revisions, and --baseline prints the
// per-cell deltas. Setting $NVHALT_BENCH_TOLERANCE to a positive fraction
// (e.g. 0.5) turns --baseline into a gate: any grid cell slower than
// baseline * (1 - tolerance) fails the run. CI leaves it unset/0 so shared
// noisy runners stay advisory-not-flaky; the knob exists for controlled
// perf rigs.
//
// Noise discipline: each grid / ro cell is measured best-of-N rounds
// ($NVHALT_BENCH_ROUNDS, default 3 in full mode, 1 in smoke). Measurement
// error on a shared box is one-sided — preemption only subtracts ops — so a
// single 150ms sample can read 40% low while max-of-rounds converges on the
// machine's real capability. Committed baselines are best-of-3; compare
// like with like.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmem/checkpoint.hpp"
#include "structures/tm_abtree.hpp"
#include "structures/tm_hashmap.hpp"
#include "structures/tm_skiplist.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace nvhalt::bench {
namespace {

struct Options {
  bool smoke = false;
  bool check = false;
  std::string out = "BENCH_sw_hotpath.json";
  std::string scaling_out = "BENCH_thread_scaling.json";
  std::string taxonomy_out = "BENCH_taxonomy.json";
  std::string contention_out = "BENCH_contention.json";
  std::string hw_out = "BENCH_hw_hotpath.json";
  std::string ro_out = "BENCH_ro_path.json";
  std::string alloc_out = "BENCH_alloc_churn.json";
  std::string group_out = "BENCH_group_commit.json";
  std::string baseline;
  std::string hw_baseline;
  std::string ro_baseline;
  std::string alloc_baseline;
  std::string group_baseline;
  /// Recovery-time sweep (checkpoint/compaction + parallel replay). Empty
  /// by default: the sweep builds dozens of full pools and crash-recovers
  /// them, so only runs when explicitly requested (the CI bench job and
  /// the committed-baseline refresh pass --recovery-out).
  std::string recovery_out;
  std::string recovery_baseline;
};

/// Fractional tolerance from the environment (e.g. "0.5"); <= 0 or unset
/// means advisory mode — print deltas, never fail.
double bench_tolerance() {
  const char* v = std::getenv("NVHALT_BENCH_TOLERANCE");
  if (v == nullptr || *v == '\0') return 0.0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v || parsed < 0) ? 0.0 : parsed;
}

std::vector<int> scaling_thread_counts(bool smoke) {
  return smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
}

struct ScalingPoint {
  std::size_t reads;
  double ns_per_read;
};

// Software-path read cost vs read-set size, single-threaded and
// latency-free so the validation work itself is what is measured. The
// acceptance bar for the snapshot cache: per-read cost at 256-entry read
// sets stays within a small constant factor of 8-entry sets, instead of
// the superlinear blowup of per-read full revalidation.
std::vector<ScalingPoint> measure_read_scaling(bool every_read, int iters) {
  std::vector<ScalingPoint> out;
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{256}}) {
    RunnerConfig cfg;
    cfg.kind = TmKind::kNvHalt;
    cfg.pmem.capacity_words = std::size_t{1} << 18;
    cfg.nvhalt.htm_attempts = 0;  // force the software path
    cfg.nvhalt.validate_every_read = every_read;
    // This sweep measures the *general* software read path. The bodies are
    // pure reads and the warmup exceeds the dynamic-detection streak, so
    // without this the RO engines would silently take over mid-sweep.
    cfg.nvhalt.ro_fast_path = false;
    TmRunner runner(cfg);
    auto& tm = runner.tm();
    const gaddr_t arr = runner.alloc().raw_alloc_large(n);
    word_t sink = 0;
    const auto body = [&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) sink += tx.read(arr + i);
    };
    for (int i = 0; i < 16; ++i) tm.run(0, body);  // warm up
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) tm.run(0, body);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    out.push_back({n, ns / (static_cast<double>(iters) * static_cast<double>(n))});
    if (sink == 0xDEADBEEF) std::fprintf(stderr, "?");  // keep reads observable
  }
  return out;
}

const char* structure_name(Structure s) { return s == Structure::kAbTree ? "abtree" : "hashmap"; }

// ------------------------------------------------------ hw hotpath sweep

struct HwPoint {
  const char* op;        // "read" or "write"
  std::size_t n;         // transactional accesses per transaction
  double ns_per_op;      // ns per access, attempt loop included
  double hw_commit_frac; // fraction of commits that stayed on the hw path
};

// Hardware fast-path access cost, mirroring the sw read_scaling sweep:
// single-threaded and latency-free so the per-access instrumentation
// (conflict-line registration, lock subscription, memo hits) is what is
// measured rather than simulated NVM latencies. Reads sweep the read-set
// size; writes sweep the write-set size, which additionally pays hardware
// lock acquisition plus undo logging. Write sets stop at 64: beyond that
// the randomly hashed lock-table lines overflow the simulated L1 write
// shape and the point would measure the fallback path instead.
std::vector<HwPoint> measure_hw_hotpath(int iters) {
  std::vector<HwPoint> out;
  const auto measure = [&](const char* op, std::size_t n, bool write) {
    RunnerConfig cfg;
    cfg.kind = TmKind::kNvHalt;
    cfg.pmem.capacity_words = std::size_t{1} << 18;
    // The read points are exactly what dynamic RO detection hunts for;
    // keep them on the general hw path so the memo/subscription cost the
    // report documents is the cost actually measured.
    cfg.nvhalt.ro_fast_path = false;
    TmRunner runner(cfg);
    auto& tm = runner.tm();
    const gaddr_t arr = runner.alloc().raw_alloc_large(n);
    word_t sink = 0;
    const auto body = [&](Tx& tx) {
      if (write) {
        for (std::size_t i = 0; i < n; ++i) tx.write(arr + i, i + 1);
      } else {
        for (std::size_t i = 0; i < n; ++i) sink += tx.read(arr + i);
      }
    };
    for (int i = 0; i < 16; ++i) tm.run(0, body);  // warm up
    tm.reset_stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) tm.run(0, body);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    const TmStats st = tm.stats();
    const double frac =
        st.commits > 0 ? static_cast<double>(st.hw_commits) / static_cast<double>(st.commits) : 0;
    out.push_back({op, n, ns / (static_cast<double>(iters) * static_cast<double>(n)), frac});
    if (sink == 0xDEADBEEF) std::fprintf(stderr, "?");  // keep reads observable
  };
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{256}})
    measure("read", n, false);
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}}) measure("write", n, true);
  return out;
}

int run_hw_report(const Options& opt) {
  const int iters = opt.smoke ? 300 : 3000;
  const std::vector<HwPoint> pts = measure_hw_hotpath(iters);
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-hw-hotpath-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  js << "  \"points\": [\n";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    js << "    {\"op\": \"" << pts[i].op << "\", \"n\": " << pts[i].n
       << ", \"ns_per_op\": " << pts[i].ns_per_op
       << ", \"hw_commit_frac\": " << pts[i].hw_commit_frac << "}"
       << (i + 1 == pts.size() ? "\n" : ",\n");
    std::fprintf(stderr, "hw %s x%zu: %.1f ns/op (hw frac %.2f)\n", pts[i].op, pts[i].n,
                 pts[i].ns_per_op, pts[i].hw_commit_frac);
  }
  js << "  ]\n}\n";

  std::ofstream f(opt.hw_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.hw_out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.hw_out.c_str());
  return 0;
}

// ------------------------------------------------------ read-only path sweep

/// The read-dominated corner of the grid (99ro and 95ro, both structures,
/// all TMs) with read-only-path accounting attached: how many commits the
/// RO engines took, and how often RO attempts bounced. This is the cell
/// family the RO fast path exists for — structure lookups carry
/// TxMode::kReadOnly, so NV-HALT variants route them through the snapshot /
/// invisible-reader engines while Trinity and SPHT run their usual paths —
/// and the committed BENCH_ro_path.json is the PR-over-PR record of the
/// NV-HALT-vs-Trinity gap there.
int run_ro_report(const Options& opt) {
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-ro-path-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  js << "  \"cells\": [\n";
  bool first = true;
  for (const Structure st : {Structure::kAbTree, Structure::kHashMap}) {
    for (const int read_pct : {99, 95}) {
      for (const TmKind kind : fig8_tms()) {
        BenchParams p;
        p.kind = kind;
        p.structure = st;
        p.read_pct = read_pct;
        p.threads = 2;
        p.key_range = opt.smoke ? (std::size_t{1} << 10) : (std::size_t{1} << 14);
        p.duration_ms = opt.smoke ? 20 : 150;
        const BenchResult r = run_structure_bench_best(p, bench_rounds_from_env(opt.smoke));
        const double ro_frac =
            r.tm.commits > 0
                ? static_cast<double>(r.tm.ro_commits) / static_cast<double>(r.tm.commits)
                : 0;
        js << (first ? "" : ",\n");
        first = false;
        js << "    {\"structure\": \"" << structure_name(st) << "\", \"read_pct\": " << read_pct
           << ", \"tm\": \"" << tm_kind_name(kind) << "\", \"threads\": " << p.threads
           << ", \"ops_per_sec\": " << r.ops_per_sec << ", \"commits\": " << r.tm.commits
           << ", \"ro_commits\": " << r.tm.ro_commits << ", \"ro_commit_frac\": " << ro_frac
           << ", \"ro_aborts\": " << r.tm.ro_aborts;
        const auto& t = r.tel.tx.taxonomy;
        for (std::size_t c = 0; c < telemetry::kNumRoAbortCauses; ++c) {
          js << ", \"" << telemetry::ro_abort_cause_name(static_cast<telemetry::RoAbortCause>(c))
             << "\": " << t.ro_by_cause[c];
        }
        js << "}";
        std::fprintf(stderr, "ro %s %dro %s: %.0f ops/s (ro frac %.2f)\n", structure_name(st),
                     read_pct, tm_kind_name(kind), r.ops_per_sec, ro_frac);
      }
    }
  }
  js << "\n  ]\n}\n";

  std::ofstream f(opt.ro_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.ro_out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.ro_out.c_str());
  return 0;
}

// ------------------------------------------------------ allocator churn sweep

/// One delete-heavy churn cell (workload::run_churn): 0% reads, inserts and
/// removes 50/50 over Zipfian keys — every committed remove retires a node
/// through the epoch limbo and every insert wants one back.
workload::ChurnResult measure_alloc_cell(bool skiplist, TmKind kind, bool smoke) {
  const std::size_t key_range = smoke ? (std::size_t{1} << 10) : (std::size_t{1} << 14);

  RunnerConfig cfg;
  cfg.kind = kind;
  std::size_t words = std::size_t{1} << 16;
  while (words < key_range * 10 + (std::size_t{1} << 16)) words <<= 1;
  cfg.pmem.capacity_words = words;
  cfg.pmem.raw_words = TxAllocator::metadata_words(words) + (std::size_t{1} << 16);
  cfg.pmem.track_store_order = false;
  cfg.nvhalt.lock_table_entries = std::size_t{1} << 16;
  cfg.trinity.lock_table_entries = std::size_t{1} << 16;
  TmRunner runner(cfg);
  auto& tm = runner.tm();

  std::unique_ptr<TmSkipList> sl;
  std::unique_ptr<TmAbTree> tree;
  std::unique_ptr<workload::KeyedOps> ops;
  if (skiplist) {
    sl = std::make_unique<TmSkipList>(tm);
    ops = std::make_unique<workload::KeyedOpsAdapter<TmSkipList>>(*sl);
  } else {
    tree = std::make_unique<TmAbTree>(tm);
    ops = std::make_unique<workload::KeyedOpsAdapter<TmAbTree>>(*tree);
  }
  workload::prefill_half(*ops, key_range, 1);
  tm.reset_stats();

  workload::ChurnSpec spec;
  spec.threads = 2;
  spec.key_range = key_range;
  spec.duration_ms = smoke ? 20 : 150;
  return workload::run_churn(*ops, runner.alloc(), spec);
}

/// The allocator-churn report: the delete-heavy corner that the main grid's
/// 0ro cells only graze (uniform keys spread frees thin; Zipf concentrates
/// retire/reclaim traffic on hot segments). Skiplist and abtree cover the
/// two free shapes that actually hit the limbo — per-remove tower nodes vs
/// multi-word leaf/internal blocks freed on merges. The hashmap is out (its
/// removes mark-empty and never free, paper Sec. 5) and so is SPHT (bump
/// chunks, never frees). Cells carry the retire/reclaim ledger next to
/// ops_per_sec, and --alloc-baseline gates ops_per_sec through
/// NVHALT_BENCH_TOLERANCE like every other grid.
int run_alloc_report(const Options& opt) {
  const int rounds = bench_rounds_from_env(opt.smoke);
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-alloc-churn-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  js << "  \"cells\": [\n";
  bool first = true;
  for (const bool skiplist : {true, false}) {
    for (const TmKind kind :
         {TmKind::kNvHalt, TmKind::kNvHaltCl, TmKind::kNvHaltSp, TmKind::kTrinity}) {
      workload::ChurnResult best{};
      for (int i = 0; i < rounds; ++i) {
        workload::ChurnResult r = measure_alloc_cell(skiplist, kind, opt.smoke);
        if (i == 0 || r.mixed.ops_per_sec > best.mixed.ops_per_sec) best = r;
      }
      const char* st = skiplist ? "skiplist" : "abtree";
      js << (first ? "" : ",\n");
      first = false;
      js << "    {\"structure\": \"" << st << "\", \"read_pct\": " << 0 << ", \"tm\": \""
         << tm_kind_name(kind) << "\", \"threads\": " << 2
         << ", \"ops_per_sec\": " << best.mixed.ops_per_sec
         << ", \"allocs\": " << best.alloc.allocs << ", \"frees\": " << best.alloc.frees
         << ", \"retired\": " << best.alloc.retired
         << ", \"reclaimed\": " << best.alloc.reclaimed
         << ", \"limbo\": " << best.alloc.limbo << "}";
      std::fprintf(stderr, "alloc %s churn %s: %.0f ops/s (retired %llu reclaimed %llu)\n", st,
                   tm_kind_name(kind), best.mixed.ops_per_sec,
                   static_cast<unsigned long long>(best.alloc.retired),
                   static_cast<unsigned long long>(best.alloc.reclaimed));
    }
  }
  js << "\n  ]\n}\n";

  std::ofstream f(opt.alloc_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.alloc_out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.alloc_out.c_str());
  return 0;
}

// ------------------------------------------------- group-commit sweep

std::vector<int> group_thread_counts(bool smoke) {
  return smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
}

/// The group-durable-commit sweep: NV-HALT on the hashmap (flat per-op
/// cost, so fence latency dominates the update path), update-heavy
/// workloads only — 50ro and 0ro are where overlapping committers exist to
/// combine. Each (threads, read_pct) point runs twice, fence combining off
/// (today's solo path, wc_block_lines 1) and on (flat-combining fence +
/// XPLine write combining), so BENCH_group_commit.json records both the
/// throughput delta and the fences_per_op drop the layer buys. Cells carry
/// fences_combined_per_op — how many fences per op were absorbed into
/// another committer's drain — so "combining was on but never engaged"
/// (e.g. 1 thread) is visible in the report rather than a silent zero win.
int run_group_report(const Options& opt) {
  const int rounds = bench_rounds_from_env(opt.smoke);
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-group-commit-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  js << "  \"cells\": [\n";
  bool first = true;
  for (const int threads : group_thread_counts(opt.smoke)) {
    for (const int read_pct : {50, 0}) {
      for (const bool combine : {false, true}) {
        BenchParams p;
        p.kind = TmKind::kNvHalt;
        p.structure = Structure::kHashMap;
        p.read_pct = read_pct;
        p.threads = threads;
        p.key_range = opt.smoke ? (std::size_t{1} << 10) : (std::size_t{1} << 14);
        p.duration_ms = opt.smoke ? 20 : 150;
        p.group_commit = combine;
        p.wc_block_lines = combine ? 4 : 1;
        const BenchResult r = run_structure_bench_best(p, rounds);
        js << (first ? "" : ",\n");
        first = false;
        js << "    {\"structure\": \"hashmap\", \"read_pct\": " << read_pct << ", \"tm\": \""
           << tm_kind_name(p.kind) << "\", \"threads\": " << threads
           << ", \"combine\": " << (combine ? "true" : "false")
           << ", \"ops_per_sec\": " << r.ops_per_sec
           << ", \"fences_per_op\": " << r.fences_per_op
           << ", \"flushes_per_op\": " << r.flushes_per_op
           << ", \"fences_combined_per_op\": " << r.fences_combined_per_op << "}";
        std::fprintf(stderr, "group t%d %dro combine=%d: %.0f ops/s, %.3f fences/op\n", threads,
                     read_pct, combine ? 1 : 0, r.ops_per_sec, r.fences_per_op);
      }
    }
  }
  js << "\n  ]\n}\n";

  std::ofstream f(opt.group_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.group_out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.group_out.c_str());
  return 0;
}

/// Shape validation for the group-commit sweep: right schema, a cell per
/// (thread count, workload, combine setting), half the cells combining.
int check_group_report(const std::string& path, bool smoke) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> errors;

  if (s.find("\"schema\": \"nvhalt-bench-group-commit-v1\"") == std::string::npos)
    errors.push_back("missing/unknown group-commit schema tag");

  const auto count = [&s](const char* needle) {
    std::size_t n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos; pos = s.find(needle, pos + 1)) ++n;
    return n;
  };
  const std::size_t expected = group_thread_counts(smoke).size() * 2 * 2;
  if (count("\"ops_per_sec\"") != expected) {
    errors.push_back("group sweep must have " +
                     std::to_string(group_thread_counts(smoke).size()) +
                     " thread counts x 2 workloads x 2 combine settings = " +
                     std::to_string(expected) + " cells");
  }
  if (count("\"combine\": true") != expected / 2 || count("\"combine\": false") != expected / 2)
    errors.push_back("group sweep must split cells evenly between combine on/off");
  if (count("\"fences_per_op\"") != expected)
    errors.push_back("group sweep cells must carry fences_per_op");

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

// ------------------------------------------------------ recovery-time sweep

struct RecoveryCell {
  TmKind kind;
  std::size_t pool_words;
  int history_txs;
  int workers;
  bool checkpoint;
  int checkpoint_every;
  double recover_ms;
};

/// TMs with distinct recovery engines: NV-HALT (record revert scan,
/// bitmap-bounded when checkpointing), Trinity (same engine behind a
/// different commit path) and SPHT (redo-log replay — the one whose
/// recovery work genuinely grows with history until compaction truncates
/// the logs). The NV-HALT lock-granularity variants share NV-HALT's
/// recovery code exactly, so sweeping them would triple the cells for no
/// new signal.
std::vector<TmKind> recovery_tms() {
  return {TmKind::kNvHalt, TmKind::kTrinity, TmKind::kSpht};
}

struct RecoveryScale {
  std::vector<std::size_t> pools;  // [small, mid (history sweep), large]
  int base_history;
};

/// Unlike the throughput grids, the cell coordinates here are
/// mode-independent: a cell's identity is (pool, history, workers, ckpt),
/// so shrinking those in smoke mode would leave the CI smoke run with zero
/// keys in common with the committed full-mode baseline. Smoke instead
/// cuts only the round count (NVHALT_BENCH_ROUNDS), which is safe because
/// this sweep never runs unless --recovery-out is passed explicitly.
RecoveryScale recovery_scale(bool /*smoke*/) {
  return {{std::size_t{1} << 16, std::size_t{1} << 18, std::size_t{1} << 20}, 384};
}

/// One recovery measurement: build a pool, run `history_txs` single-thread
/// transactions of 8 random writes (checkpointing every `checkpoint_every`
/// commits when enabled), crash with write-back disabled, and time
/// recover_data() — the full pipeline (record revert / log replay, volatile
/// rebuild, allocator metadata recovery, checkpoint adoption).
double measure_recovery_ms(TmKind kind, std::size_t pool_words, int history_txs, int workers,
                           bool checkpoint, int checkpoint_every) {
  RunnerConfig cfg;
  cfg.kind = kind;
  cfg.pmem.capacity_words = pool_words;
  cfg.pmem.track_store_order = false;
  cfg.nvhalt.lock_table_entries = std::size_t{1} << 12;
  cfg.trinity.lock_table_entries = std::size_t{1} << 12;
  cfg.nvhalt.recovery_threads = workers;
  cfg.trinity.recovery_threads = workers;
  // Single-threaded writer; the SPHT log must hold the whole checkpoint-off
  // history without tripping the full-log replay mid-workload (which would
  // be an implicit compaction and flatten the very growth being measured).
  cfg.spht.max_threads = 2;
  cfg.spht.replay_threads = workers;
  std::size_t log_words = std::size_t{1} << 10;
  const std::size_t history_words = static_cast<std::size_t>(history_txs) * 8 * 6;
  while (log_words < history_words) log_words <<= 1;
  cfg.spht.log_words_per_thread = log_words;
  cfg.pmem.raw_words =
      static_cast<std::size_t>(cfg.spht.max_threads) * (log_words + 2 * kWordsPerLine) +
      TxAllocator::metadata_words(pool_words) + (std::size_t{1} << 14);
  if (checkpoint) {
    cfg.nvhalt.checkpoint = true;
    cfg.trinity.checkpoint = true;
    cfg.spht.checkpoint = true;
    cfg.pmem.raw_words += CheckpointManager::metadata_words(pool_words) + 2 * kWordsPerLine;
  }
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  const std::size_t array_words = std::min(pool_words / 4, std::size_t{1} << 16);
  const gaddr_t arr = runner.alloc().raw_alloc_large(array_words);
  Xoshiro256 rng(0x12EC0F + static_cast<std::uint64_t>(history_txs));
  for (int i = 0; i < history_txs; ++i) {
    tm.run(0, [&](Tx& tx) {
      for (int w = 0; w < 8; ++w) {
        const gaddr_t a = arr + static_cast<gaddr_t>(rng.next_bounded(array_words));
        tx.write(a, rng.next_bounded(std::uint64_t{1} << 32) + 1);
      }
    });
    if (checkpoint && checkpoint_every > 0 && (i + 1) % checkpoint_every == 0) tm.checkpoint(0);
  }
  runner.pool().crash(CrashPolicy{});
  const auto t0 = std::chrono::steady_clock::now();
  tm.recover_data();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
         1e6;
}

/// The recovery report, two slices of the pool x history x workers cube:
///  * history sweep — mid pool, serial recovery, checkpointing off vs on,
///    history growing 1x/4x/16x past the (fixed) checkpoint cadence. The
///    claim on record: with checkpoints the recovery time stays roughly
///    flat (bounded by delta-since-checkpoint / truncated logs) while
///    SPHT's checkpoint-off replay grows with the log.
///  * worker sweep — checkpointing off (recovery work at its largest),
///    fixed history, all pool sizes x 1/2/8 workers. On multi-core rigs
///    the largest pool shows the 8-vs-1 speedup; the committed baseline
///    records whatever the baseline machine provides.
/// Latency semantics: lower is better, so the baseline gate ratio is
/// base/cur, mirroring --hw-baseline.
int run_recovery_report(const Options& opt) {
  const RecoveryScale sc = recovery_scale(opt.smoke);
  const int rounds = bench_rounds_from_env(opt.smoke);
  const int cadence = std::max(1, sc.base_history / 4);
  std::vector<RecoveryCell> cells;

  for (const TmKind kind : recovery_tms())
    for (const bool ckpt : {false, true})
      for (const int mult : {1, 4, 16})
        cells.push_back(
            {kind, sc.pools[1], sc.base_history * mult, 1, ckpt, ckpt ? cadence : 0, 0});
  for (const TmKind kind : recovery_tms())
    for (const std::size_t pool : sc.pools)
      for (const int workers : {1, 2, 8})
        cells.push_back({kind, pool, sc.base_history * 4, workers, false, 0, 0});

  for (RecoveryCell& c : cells) {
    for (int r = 0; r < rounds; ++r) {
      const double ms = measure_recovery_ms(c.kind, c.pool_words, c.history_txs, c.workers,
                                            c.checkpoint, c.checkpoint_every);
      // Recovery time is a latency; noise is one-sided, so best-of is min.
      if (r == 0 || ms < c.recover_ms) c.recover_ms = ms;
    }
    std::fprintf(stderr, "recovery %s pool=%zu hist=%d w=%d ckpt=%d: %.3f ms\n",
                 tm_kind_name(c.kind), c.pool_words, c.history_txs, c.workers,
                 c.checkpoint ? 1 : 0, c.recover_ms);
  }

  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-recovery-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  js << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RecoveryCell& c = cells[i];
    js << "    {\"tm\": \"" << tm_kind_name(c.kind) << "\", \"pool_words\": " << c.pool_words
       << ", \"history_txs\": " << c.history_txs << ", \"workers\": " << c.workers
       << ", \"checkpoint\": " << (c.checkpoint ? 1 : 0)
       << ", \"checkpoint_every\": " << c.checkpoint_every << ", \"ms\": " << c.recover_ms << "}"
       << (i + 1 == cells.size() ? "\n" : ",\n");
  }
  js << "  ]\n}\n";

  std::ofstream f(opt.recovery_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.recovery_out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.recovery_out.c_str());
  return 0;
}

/// Shape validation for the recovery report: right schema, 18 history-sweep
/// + 27 worker-sweep cells, all three recovery engines present, both
/// checkpoint modes present. Deliberately no timing assertions (single-core
/// CI runners cannot pin speedups); the committed baseline plus the
/// latency-ratio gate carry the regression signal.
int check_recovery_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> errors;

  if (s.find("\"schema\": \"nvhalt-bench-recovery-v1\"") == std::string::npos)
    errors.push_back("missing/unknown recovery schema tag");
  const auto count = [&s](const char* needle) {
    std::size_t n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos; pos = s.find(needle, pos + 1)) ++n;
    return n;
  };
  if (count("\"ms\"") != 45)
    errors.push_back("recovery report must have 18 history + 27 worker cells = 45, found " +
                     std::to_string(count("\"ms\"")));
  for (const char* tm : {"NV-HALT", "Trinity", "SPHT"}) {
    if (s.find(std::string("\"tm\": \"") + tm + "\"") == std::string::npos)
      errors.push_back(std::string("recovery report missing TM ") + tm);
  }
  if (count("\"checkpoint\": 1") == 0) errors.push_back("no checkpoint-enabled recovery cells");
  if (count("\"checkpoint\": 0") == 0) errors.push_back("no checkpoint-off recovery cells");
  for (const char* w : {"\"workers\": 1", "\"workers\": 2", "\"workers\": 8"}) {
    if (s.find(w) == std::string::npos)
      errors.push_back(std::string("recovery report missing sweep point ") + w);
  }

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

std::string read_file(const std::string& path);  // defined with the baseline compares below

/// Recovery baseline compare. Keys identify the full cell coordinate; the
/// metric is a latency, so the ratio is base/cur (higher = faster now),
/// gated through NVHALT_BENCH_TOLERANCE like every other baseline flag.
int compare_recovery_with_baseline(const Options& opt) {
  const auto parse_cells = [](const std::string& text) {
    std::vector<std::pair<std::string, double>> cells;
    std::istringstream is(text);
    std::string line;
    const auto field = [&line](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return {};
      auto v = line.substr(pos + needle.size());
      if (!v.empty() && v[0] == '"') {
        const auto q = v.find('"', 1);
        return q == std::string::npos ? std::string{} : v.substr(1, q - 1);
      }
      return v.substr(0, v.find_first_of(",}"));
    };
    while (std::getline(is, line)) {
      const std::string tm = field("tm");
      const std::string pool = field("pool_words");
      const std::string hist = field("history_txs");
      const std::string workers = field("workers");
      const std::string ckpt = field("checkpoint");
      const std::string ms = field("ms");
      if (tm.empty() || pool.empty() || hist.empty() || workers.empty() || ms.empty()) continue;
      cells.emplace_back(tm + "/p" + pool + "/h" + hist + "/w" + workers + "/c" + ckpt,
                         std::strtod(ms.c_str(), nullptr));
    }
    return cells;
  };
  const std::string base_text = read_file(opt.recovery_baseline);
  if (base_text.empty()) {
    std::fprintf(stderr, "bench_regress --recovery-baseline: cannot read %s\n",
                 opt.recovery_baseline.c_str());
    return 1;
  }
  const auto base_cells = parse_cells(base_text);
  const auto cur_cells = parse_cells(read_file(opt.recovery_out));
  if (base_cells.empty() || cur_cells.empty()) {
    std::fprintf(stderr, "bench_regress --recovery-baseline: no comparable cells\n");
    return 1;
  }
  const bool mode_mismatch = (base_text.find("\"mode\": \"full\"") != std::string::npos) !=
                             (read_file(opt.recovery_out).find("\"mode\": \"full\"") !=
                              std::string::npos);
  if (mode_mismatch)
    std::fprintf(stderr,
                 "bench_regress --recovery-baseline: WARNING smoke/full mode mismatch — "
                 "ratios are indicative only\n");
  const double tolerance = bench_tolerance();
  int violations = 0;
  std::size_t compared = 0;
  for (const auto& [key, cur_ms] : cur_cells) {
    for (const auto& [bkey, base_ms] : base_cells) {
      if (bkey == key && cur_ms > 0) {
        ++compared;
        const double ratio = base_ms / cur_ms;
        const bool slow = tolerance > 0 && ratio < 1.0 - tolerance;
        if (slow) ++violations;
        std::fprintf(stderr, "recovery-baseline %-36s %6.2fx%s\n", key.c_str(), ratio,
                     slow ? "  << REGRESSION" : "");
        break;
      }
    }
  }
  if (tolerance <= 0) {
    std::fprintf(stderr,
                 "bench_regress --recovery-baseline: advisory mode (%zu cells compared, "
                 "set NVHALT_BENCH_TOLERANCE to gate)\n",
                 compared);
    return 0;
  }
  std::fprintf(stderr,
               "bench_regress --recovery-baseline: %d of %zu cells below %.0f%% of baseline\n",
               violations, compared, (1.0 - tolerance) * 100.0);
  return violations == 0 ? 0 : 1;
}

// ------------------------------------------------------ thread scaling sweep

struct ScalingCell {
  TmKind kind;
  int threads;
  std::uint64_t total_ops;
  double ops_per_sec;
};

/// One hashmap data point with dynamically registered workers: every worker
/// claims a slot through tm.register_thread() and drives the structure via
/// the registry-aware ThreadHandle overloads — the registration path the
/// runtime layer added — rather than caller-managed dense tids.
ScalingCell measure_scaling_point(TmKind kind, int threads, bool smoke) {
  const std::size_t key_range = smoke ? (std::size_t{1} << 10) : (std::size_t{1} << 14);
  const int duration_ms = smoke ? 20 : 150;

  RunnerConfig cfg;
  cfg.kind = kind;
  std::size_t words = std::size_t{1} << 16;
  while (words < key_range * 8 + (std::size_t{1} << 16)) words <<= 1;
  cfg.pmem.capacity_words = words;
  cfg.spht.max_threads = std::max(16, threads + 1);
  cfg.spht.log_words_per_thread = std::size_t{1} << 18;
  cfg.pmem.raw_words = static_cast<std::size_t>(cfg.spht.max_threads) *
                           (cfg.spht.log_words_per_thread + 2 * kWordsPerLine) +
                       TxAllocator::metadata_words(words) + (std::size_t{1} << 16);
  cfg.pmem.track_store_order = false;
  cfg.nvhalt.lock_table_entries = std::size_t{1} << 16;
  cfg.trinity.lock_table_entries = std::size_t{1} << 16;
  TmRunner runner(cfg);
  auto& tm = runner.tm();

  std::size_t buckets = 1;
  while (buckets < key_range) buckets <<= 1;
  TmHashMap map(tm, buckets);
  {
    ThreadHandle h = tm.register_thread();
    for (word_t k = 1; k <= key_range; k += 2) map.insert(h, k, k);
  }
  tm.reset_stats();

  SpinBarrier barrier(threads + 1);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> per_thread_ops(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadHandle h = tm.register_thread();
      Xoshiro256 rng(0x5CA11 + static_cast<std::uint64_t>(t));
      barrier.arrive_and_wait();
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const word_t key = 1 + static_cast<word_t>(rng.next_bounded(key_range));
        const std::uint64_t dice = rng.next_bounded(100);
        if (dice < 90) {
          map.contains(h, key);
        } else if (dice < 95) {
          map.insert(h, key, key);
        } else {
          map.remove(h, key);
        }
        ++ops;
      }
      per_thread_ops[static_cast<std::size_t>(t)] = ops;
    });
  }

  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
      1e9;

  ScalingCell c{kind, threads, 0, 0};
  for (const std::uint64_t n : per_thread_ops) c.total_ops += n;
  c.ops_per_sec = secs > 0 ? static_cast<double>(c.total_ops) / secs : 0;
  return c;
}

int run_scaling_report(const Options& opt) {
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-thread-scaling-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  js << "  \"structure\": \"hashmap\",\n";
  js << "  \"read_pct\": 90,\n";
  js << "  \"points\": [\n";
  bool first = true;
  for (const TmKind kind : fig8_tms()) {
    for (const int threads : scaling_thread_counts(opt.smoke)) {
      const ScalingCell c = measure_scaling_point(kind, threads, opt.smoke);
      js << (first ? "" : ",\n");
      first = false;
      js << "    {\"tm\": \"" << tm_kind_name(kind) << "\", \"threads\": " << threads
         << ", \"total_ops\": " << c.total_ops << ", \"ops_per_sec\": " << c.ops_per_sec << "}";
      std::fprintf(stderr, "scaling %s x%d: %.0f ops/s\n", tm_kind_name(kind), threads,
                   c.ops_per_sec);
    }
  }
  js << "\n  ]\n}\n";

  std::ofstream f(opt.scaling_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.scaling_out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.scaling_out.c_str());
  return 0;
}

void emit_scaling(std::ostream& os, const char* key, const std::vector<ScalingPoint>& pts,
                  bool last) {
  os << "    \"" << key << "\": [";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "{\"reads\": " << pts[i].reads << ", \"ns_per_read\": "
       << pts[i].ns_per_read << "}";
  }
  os << "]" << (last ? "" : ",") << "\n";
}

int run_report(const Options& opt) {
  const int scale_iters = opt.smoke ? 300 : 3000;
  std::ostringstream js;
  js << "{\n";
  js << "  \"schema\": \"nvhalt-bench-regress-v1\",\n";
  js << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";

  js << "  \"read_scaling\": {\n";
  emit_scaling(js, "cached", measure_read_scaling(/*every_read=*/false, scale_iters), false);
  emit_scaling(js, "every_read", measure_read_scaling(/*every_read=*/true, scale_iters), true);
  js << "  },\n";

  // Taxonomy sidecar: one line per grid cell with the decoded abort-cause
  // split, so throughput regressions come with their abort story attached.
  std::ostringstream tax;
  tax << "{\n";
  tax << "  \"schema\": \"nvhalt-bench-taxonomy-v1\",\n";
  tax << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  tax << "  \"cells\": [\n";

  // Contention sidecar: one line per grid cell with the lock-contention
  // totals and the top-K hot stripes — bench_report --contention renders
  // this as the per-stripe heatmap.
  std::ostringstream con;
  con << "{\n";
  con << "  \"schema\": \"nvhalt-bench-contention-v1\",\n";
  con << "  \"mode\": \"" << (opt.smoke ? "smoke" : "full") << "\",\n";
  con << "  \"cells\": [\n";

  js << "  \"grid\": [\n";
  bool first = true;
  bool con_first = true;
  // The paper's four uniform workloads plus one Zipf-skewed update column:
  // skew concentrates writers on the same hot lines, which is exactly the
  // regime the group-commit fence combiner and the contention observatory
  // exist for, so the grid keeps one cell of it on record.
  struct GridWorkload {
    int read_pct;
    KeyDist dist;
  };
  std::vector<GridWorkload> workloads;
  for (const int pct : fig8_read_pcts()) workloads.push_back({pct, KeyDist::kUniform});
  workloads.push_back({50, KeyDist::kZipf});
  for (const Structure st : {Structure::kAbTree, Structure::kHashMap}) {
    for (const GridWorkload& wl : workloads) {
      const int read_pct = wl.read_pct;
      const char* dist_name = wl.dist == KeyDist::kZipf ? "zipf" : "uniform";
      for (const TmKind kind : fig8_tms()) {
        BenchParams p;
        p.kind = kind;
        p.structure = st;
        p.read_pct = read_pct;
        p.dist = wl.dist;
        p.threads = 2;
        p.key_range = opt.smoke ? (std::size_t{1} << 10) : (std::size_t{1} << 14);
        p.duration_ms = opt.smoke ? 20 : 150;
        const BenchResult r = run_structure_bench_best(p, bench_rounds_from_env(opt.smoke));
        js << (first ? "" : ",\n");
        tax << (first ? "" : ",\n");
        first = false;
        js << "    {\"structure\": \"" << structure_name(st) << "\", \"read_pct\": " << read_pct
           << ", \"dist\": \"" << dist_name << "\""
           << ", \"tm\": \"" << tm_kind_name(kind) << "\", \"threads\": " << p.threads
           << ", \"ops_per_sec\": " << r.ops_per_sec
           << ", \"flushes_per_op\": " << r.flushes_per_op
           << ", \"fences_per_op\": " << r.fences_per_op
           << ", \"flush_dedup_per_op\": " << r.flush_dedup_per_op << "}";
        const auto& t = r.tel.tx.taxonomy;
        tax << "    {\"structure\": \"" << structure_name(st) << "\", \"read_pct\": " << read_pct
            << ", \"dist\": \"" << dist_name << "\""
            << ", \"tm\": \"" << tm_kind_name(kind) << "\", \"commits\": " << r.tm.commits
            << ", \"hw_aborts\": " << r.tm.hw_aborts;
        for (std::size_t c = 0; c < telemetry::kNumAbortCauses; ++c) {
          tax << ", \"" << htm::abort_cause_name(static_cast<htm::AbortCause>(c))
              << "\": " << t.hw_by_cause[c];
        }
        tax << ", \"sw_aborts\": " << t.sw_aborts << ", \"ro_aborts\": " << r.tm.ro_aborts;
        for (std::size_t c = 0; c < telemetry::kNumRoAbortCauses; ++c) {
          tax << ", \"" << telemetry::ro_abort_cause_name(static_cast<telemetry::RoAbortCause>(c))
              << "\": " << t.ro_by_cause[c];
        }
        tax << ", \"ro_commits\": " << r.tm.ro_commits << ", \"user_aborts\": " << t.user_aborts
            << ", \"fallbacks\": " << r.tm.fallbacks
            << ", \"write_set_p99\": " << r.tel.tx.write_set_size.quantile_bound(0.99) << "}";
        con << (con_first ? "" : ",\n");
        con_first = false;
        con << "    {\"structure\": \"" << structure_name(st) << "\", \"read_pct\": " << read_pct
            << ", \"dist\": \"" << dist_name << "\""
            << ", \"tm\": \"" << tm_kind_name(kind) << "\", \"stripes\": " << r.contention_stripes
            << ", \"stalls\": " << r.contention.stalls
            << ", \"stall_ticks\": " << r.contention.stall_ticks
            << ", \"cas_failures\": " << r.contention.cas_failures
            << ", \"aborts\": " << r.contention.aborts << ", \"top\": [";
        for (std::size_t i = 0; i < r.hot_stripes.size(); ++i) {
          const StripeContention& hs = r.hot_stripes[i];
          con << (i == 0 ? "" : ", ") << "{\"stripe\": " << hs.stripe
              << ", \"stalls\": " << hs.stalls << ", \"stall_ticks\": " << hs.stall_ticks
              << ", \"cas_failures\": " << hs.cas_failures << ", \"aborts\": " << hs.aborts
              << ", \"score\": " << hs.score() << "}";
        }
        con << "]}";
        std::fprintf(stderr, "%s %dro%s %s: %.0f ops/s\n", structure_name(st), read_pct,
                     wl.dist == KeyDist::kZipf ? " zipf" : "", tm_kind_name(kind), r.ops_per_sec);
      }
    }
  }
  js << "\n  ]\n}\n";
  tax << "\n  ]\n}\n";
  con << "\n  ]\n}\n";

  std::ofstream f(opt.out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.out.c_str());
    return 1;
  }
  f << js.str();
  f.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.out.c_str());

  std::ofstream tf(opt.taxonomy_out, std::ios::trunc);
  if (!tf) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n", opt.taxonomy_out.c_str());
    return 1;
  }
  tf << tax.str();
  tf.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.taxonomy_out.c_str());

  std::ofstream cf(opt.contention_out, std::ios::trunc);
  if (!cf) {
    std::fprintf(stderr, "bench_regress: cannot open %s for writing\n",
                 opt.contention_out.c_str());
    return 1;
  }
  cf << con.str();
  cf.close();
  std::fprintf(stderr, "bench_regress: wrote %s\n", opt.contention_out.c_str());
  return 0;
}

/// Output-shape validation for the perf-smoke CTest target: the report
/// must exist, be structurally sound JSON (balanced, right schema tag) and
/// contain every grid cell. Deliberately no timing assertions.
int check_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> errors;

  const auto first = s.find_first_not_of(" \t\r\n");
  const auto last = s.find_last_not_of(" \t\r\n");
  if (first == std::string::npos || s[first] != '{' || s[last] != '}')
    errors.push_back("not a JSON object");

  long depth_brace = 0, depth_bracket = 0;
  bool in_string = false;
  for (const char c : s) {
    if (c == '"') in_string = !in_string;  // report strings contain no escapes
    if (in_string) continue;
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) break;
  }
  if (depth_brace != 0 || depth_bracket != 0 || in_string)
    errors.push_back("unbalanced braces/brackets/quotes");

  const auto count = [&s](const char* needle) {
    std::size_t n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos; pos = s.find(needle, pos + 1)) ++n;
    return n;
  };
  if (s.find("\"schema\": \"nvhalt-bench-regress-v1\"") == std::string::npos)
    errors.push_back("missing/unknown schema tag");
  if (s.find("\"read_scaling\"") == std::string::npos) errors.push_back("missing read_scaling");
  if (count("\"ns_per_read\"") != 6) errors.push_back("read_scaling must have 2x3 points");
  const std::size_t cells = count("\"ops_per_sec\"");
  if (cells != 50) {
    errors.push_back(
        "grid must have 2 structures x 5 workloads (4 uniform + 1 zipf) x 5 TMs = 50 cells, "
        "found " +
        std::to_string(cells));
  }
  if (count("\"dist\": \"zipf\"") != 10)
    errors.push_back("grid must carry 2 structures x 5 TMs = 10 zipf-skewed cells");
  for (const char* tm : {"NV-HALT-SP", "NV-HALT-CL", "Trinity", "SPHT"}) {
    if (s.find(std::string("\"tm\": \"") + tm + "\"") == std::string::npos)
      errors.push_back(std::string("missing TM ") + tm);
  }

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

/// Shape validation for the thread-scaling report: right schema, balanced,
/// one point per (TM, thread count) cell.
int check_scaling_report(const std::string& path, bool smoke) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> errors;

  if (s.find("\"schema\": \"nvhalt-bench-thread-scaling-v1\"") == std::string::npos)
    errors.push_back("missing/unknown scaling schema tag");

  const auto count = [&s](const char* needle) {
    std::size_t n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos; pos = s.find(needle, pos + 1)) ++n;
    return n;
  };
  const std::size_t expected = 5 * scaling_thread_counts(smoke).size();
  if (count("\"ops_per_sec\"") != expected) {
    errors.push_back("scaling must have 5 TMs x " +
                     std::to_string(scaling_thread_counts(smoke).size()) +
                     " thread counts = " + std::to_string(expected) + " points");
  }
  for (const char* tm : {"NV-HALT-SP", "NV-HALT-CL", "Trinity", "SPHT"}) {
    if (s.find(std::string("\"tm\": \"") + tm + "\"") == std::string::npos)
      errors.push_back(std::string("scaling missing TM ") + tm);
  }

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

/// Shape + consistency validation for the taxonomy sidecar: 50 cells, and
/// on every cell the per-cause counts must sum to hw_aborts exactly — the
/// invariant record_hw_abort() maintains at the source.
int check_taxonomy(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> errors;
  std::string line;
  bool saw_schema = false;
  std::size_t cells = 0;
  while (std::getline(f, line)) {
    if (line.find("\"schema\": \"nvhalt-bench-taxonomy-v1\"") != std::string::npos)
      saw_schema = true;
    const auto field = [&line](const std::string& key) -> long long {
      const std::string needle = "\"" + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::atoll(line.c_str() + pos + needle.size());
    };
    const long long hw = field("hw_aborts");
    if (hw < 0) continue;
    ++cells;
    long long by_cause = 0;
    for (std::size_t c = 0; c < telemetry::kNumAbortCauses; ++c)
      by_cause += std::max(0LL, field(htm::abort_cause_name(static_cast<htm::AbortCause>(c))));
    if (by_cause != hw) {
      errors.push_back("cell " + std::to_string(cells) + ": cause sum " +
                       std::to_string(by_cause) + " != hw_aborts " + std::to_string(hw));
    }
    // Same invariant for the read-only path: record_ro_abort() is the only
    // writer of both sides, so any drift means a bookkeeping bug.
    const long long ro = field("ro_aborts");
    if (ro >= 0) {
      long long ro_by_cause = 0;
      for (std::size_t c = 0; c < telemetry::kNumRoAbortCauses; ++c)
        ro_by_cause += std::max(
            0LL, field(telemetry::ro_abort_cause_name(static_cast<telemetry::RoAbortCause>(c))));
      if (ro_by_cause != ro) {
        errors.push_back("cell " + std::to_string(cells) + ": ro cause sum " +
                         std::to_string(ro_by_cause) + " != ro_aborts " + std::to_string(ro));
      }
    }
  }
  if (!saw_schema) errors.push_back("missing/unknown taxonomy schema tag");
  if (cells != 50)
    errors.push_back("taxonomy must have 50 cells, found " + std::to_string(cells));

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

/// Shape + consistency validation for the contention sidecar: 50 cells,
/// every cell carries a stripe count, and every top-K entry's score obeys
/// the published formula (4*aborts + 2*cas_failures + stalls) — the same
/// arithmetic ContentionTable ranks by, so drift means a snapshot bug.
int check_contention(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> errors;
  std::string line;
  bool saw_schema = false;
  std::size_t cells = 0;
  while (std::getline(f, line)) {
    if (line.find("\"schema\": \"nvhalt-bench-contention-v1\"") != std::string::npos)
      saw_schema = true;
    const auto tm_pos = line.find("\"tm\": \"");
    const auto top_pos = line.find("\"top\": [");
    if (tm_pos == std::string::npos || top_pos == std::string::npos) continue;
    ++cells;
    const auto stripes_pos = line.find("\"stripes\": ");
    if (stripes_pos == std::string::npos ||
        std::atoll(line.c_str() + stripes_pos + 11) < 1) {
      errors.push_back("contention cell " + std::to_string(cells) + ": missing stripe count");
      continue;
    }
    // Walk the top-K objects; keys repeat per entry so scan object by object.
    std::size_t pos = top_pos + 8;
    while (true) {
      const auto open = line.find('{', pos);
      if (open == std::string::npos) break;
      const auto close = line.find('}', open);
      if (close == std::string::npos) break;
      const std::string obj = line.substr(open, close - open + 1);
      const auto field = [&obj](const char* key) -> long long {
        const std::string needle = std::string("\"") + key + "\": ";
        const auto p = obj.find(needle);
        return p == std::string::npos ? 0 : std::atoll(obj.c_str() + p + needle.size());
      };
      const long long want = 4 * field("aborts") + 2 * field("cas_failures") + field("stalls");
      if (field("score") != want) {
        errors.push_back("contention cell " + std::to_string(cells) + ": top entry score " +
                         std::to_string(field("score")) + " != recomputed " +
                         std::to_string(want));
      }
      pos = close + 1;
    }
  }
  if (!saw_schema) errors.push_back("missing/unknown contention schema tag");
  if (cells != 50)
    errors.push_back("contention sidecar must have 50 cells, found " + std::to_string(cells));

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

/// Shape validation for the hw-hotpath report: right schema, both ops
/// present, 3 read points + 2 write points.
int check_hw_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> errors;

  if (s.find("\"schema\": \"nvhalt-bench-hw-hotpath-v1\"") == std::string::npos)
    errors.push_back("missing/unknown hw-hotpath schema tag");

  const auto count = [&s](const char* needle) {
    std::size_t n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos; pos = s.find(needle, pos + 1)) ++n;
    return n;
  };
  if (count("\"ns_per_op\"") != 5)
    errors.push_back("hw hotpath must have 3 read + 2 write = 5 points");
  if (count("\"op\": \"read\"") != 3) errors.push_back("hw hotpath missing read points");
  if (count("\"op\": \"write\"") != 2) errors.push_back("hw hotpath missing write points");
  if (count("\"hw_commit_frac\"") != 5)
    errors.push_back("hw hotpath points must carry hw_commit_frac");

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

/// Shape + consistency validation for the ro-path report: 2 structures x
/// 2 workloads x 5 TMs = 20 cells; per cell the RO cause counts must sum
/// to ro_aborts; NV-HALT cells must actually route through the RO engines
/// (majority of commits) while the baselines must report zero RO commits.
int check_ro_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> errors;
  std::string line;
  bool saw_schema = false;
  std::size_t cells = 0;
  while (std::getline(f, line)) {
    if (line.find("\"schema\": \"nvhalt-bench-ro-path-v1\"") != std::string::npos)
      saw_schema = true;
    const auto field = [&line](const std::string& key) -> long long {
      const std::string needle = "\"" + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::atoll(line.c_str() + pos + needle.size());
    };
    const long long ro = field("ro_aborts");
    if (ro < 0 || line.find("\"tm\": \"") == std::string::npos) continue;
    ++cells;
    long long by_cause = 0;
    for (std::size_t c = 0; c < telemetry::kNumRoAbortCauses; ++c)
      by_cause += std::max(
          0LL, field(telemetry::ro_abort_cause_name(static_cast<telemetry::RoAbortCause>(c))));
    if (by_cause != ro) {
      errors.push_back("ro cell " + std::to_string(cells) + ": cause sum " +
                       std::to_string(by_cause) + " != ro_aborts " + std::to_string(ro));
    }
    const bool nvhalt_cell = line.find("\"tm\": \"NV-HALT") != std::string::npos;
    const long long commits = field("ro_commits");
    const long long total = field("commits");
    if (nvhalt_cell) {
      if (total > 0 && commits * 2 <= total) {
        errors.push_back("ro cell " + std::to_string(cells) +
                         ": NV-HALT routed only " + std::to_string(commits) + "/" +
                         std::to_string(total) + " commits through the RO path");
      }
    } else if (commits != 0) {
      errors.push_back("ro cell " + std::to_string(cells) + ": baseline TM reports " +
                       std::to_string(commits) + " ro_commits");
    }
  }
  if (!saw_schema) errors.push_back("missing/unknown ro-path schema tag");
  if (cells != 20)
    errors.push_back("ro-path report must have 20 cells, found " + std::to_string(cells));

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

/// Shape + consistency validation for the alloc-churn report: 2 structures
/// x 4 freeing TMs = 8 cells, and per cell the epoch ledger must balance —
/// everything retired during the phase was either reclaimed or is still in
/// limbo (retire() and reclaim() are the only writers of either side).
int check_alloc_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_regress --check: missing %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> errors;
  std::string line;
  bool saw_schema = false;
  std::size_t cells = 0;
  while (std::getline(f, line)) {
    if (line.find("\"schema\": \"nvhalt-bench-alloc-churn-v1\"") != std::string::npos)
      saw_schema = true;
    const auto field = [&line](const std::string& key) -> long long {
      const std::string needle = "\"" + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return -1;
      return std::atoll(line.c_str() + pos + needle.size());
    };
    const long long retired = field("retired");
    if (retired < 0) continue;
    ++cells;
    const long long reclaimed = field("reclaimed");
    const long long limbo = field("limbo");
    if (retired != reclaimed + limbo) {
      errors.push_back("alloc cell " + std::to_string(cells) + ": retired " +
                       std::to_string(retired) + " != reclaimed " + std::to_string(reclaimed) +
                       " + limbo " + std::to_string(limbo));
    }
    if (line.find("\"tm\": \"SPHT\"") != std::string::npos)
      errors.push_back("alloc churn must not include SPHT (bump allocator, never frees)");
  }
  if (!saw_schema) errors.push_back("missing/unknown alloc-churn schema tag");
  if (cells != 8)
    errors.push_back("alloc-churn report must have 8 cells, found " + std::to_string(cells));

  for (const auto& e : errors) std::fprintf(stderr, "bench_regress --check: %s\n", e.c_str());
  if (errors.empty()) std::fprintf(stderr, "bench_regress --check: %s OK\n", path.c_str());
  return errors.empty() ? 0 : 1;
}

// ------------------------------------------------- baseline comparison

/// One parsed grid cell: a composed workload key plus the two gated
/// metrics. The reports are emitted one grid object per line by this
/// binary, so a line-oriented field scan is a complete parser for them.
/// Optional coordinates (dist, combine) only suffix the key when present,
/// so keys for pre-existing reports are unchanged and old committed
/// baselines stay comparable.
struct ParsedCell {
  std::string key;
  double ops = 0;
  /// Negative when the report doesn't carry the field (ro/alloc reports).
  double fences_per_op = -1;
};

std::vector<ParsedCell> parse_grid_cells(const std::string& text) {
  std::vector<ParsedCell> cells;
  std::istringstream is(text);
  std::string line;
  const auto field = [&line](const char* key) -> std::string {
    const std::string needle = std::string("\"") + key + "\": ";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return {};
    auto v = line.substr(pos + needle.size());
    if (!v.empty() && v[0] == '"') {
      const auto q = v.find('"', 1);
      return q == std::string::npos ? std::string{} : v.substr(1, q - 1);
    }
    return v.substr(0, v.find_first_of(",}"));
  };
  while (std::getline(is, line)) {
    const std::string st = field("structure");
    const std::string tm = field("tm");
    const std::string pct = field("read_pct");
    const std::string ops = field("ops_per_sec");
    if (st.empty() || tm.empty() || pct.empty() || ops.empty()) continue;
    ParsedCell c;
    c.key = st + "/" + pct + "ro";
    if (field("dist") == "zipf") c.key += "-zipf";
    c.key += "/" + tm;
    const std::string threads = field("threads");
    const std::string combine = field("combine");
    if (!combine.empty()) {
      // Group-commit sweep: the same (structure, pct, tm) appears once per
      // thread count and combine setting, so both join the key.
      c.key += "/t" + threads + (combine == "true" ? "/combine" : "/solo");
    }
    c.ops = std::strtod(ops.c_str(), nullptr);
    const std::string fences = field("fences_per_op");
    if (!fences.empty()) c.fences_per_op = std::strtod(fences.c_str(), nullptr);
    cells.push_back(std::move(c));
  }
  return cells;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return {};
  std::stringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

/// Compares a fresh report's grid cells against a baseline report (the
/// main grid, the ro-path/alloc reports and the group-commit sweep all
/// share the cell line shape, so one comparator serves every flag).
/// Advisory by default (prints every cell's ratio, worst first, returns
/// 0); with a positive $NVHALT_BENCH_TOLERANCE it fails when any cell's
/// throughput drops below baseline * (1 - tolerance), or — for reports
/// that carry fences_per_op — when a cell's fence count rises above
/// baseline * (1 + tolerance). Fences are simulated-clock deterministic
/// modulo scheduling, so the fence gate catches durability-cost creep that
/// wall-clock noise would hide.
int compare_grid_files(const char* flag, const std::string& base_path,
                       const std::string& cur_path) {
  const std::string base_text = read_file(base_path);
  if (base_text.empty()) {
    std::fprintf(stderr, "bench_regress %s: cannot read %s\n", flag, base_path.c_str());
    return 1;
  }
  const std::string cur_text = read_file(cur_path);
  const auto base_cells = parse_grid_cells(base_text);
  const auto cur_cells = parse_grid_cells(cur_text);
  if (base_cells.empty() || cur_cells.empty()) {
    std::fprintf(stderr, "bench_regress %s: no comparable grid cells\n", flag);
    return 1;
  }
  const bool mode_mismatch = (base_text.find("\"mode\": \"full\"") != std::string::npos) !=
                             (cur_text.find("\"mode\": \"full\"") != std::string::npos);
  if (mode_mismatch)
    std::fprintf(stderr,
                 "bench_regress %s: WARNING smoke/full mode mismatch — "
                 "ratios are indicative only\n",
                 flag);

  const double tolerance = bench_tolerance();
  struct Delta {
    std::string key;
    double ratio;
    /// cur/base fence ratio, or 0 when either side lacks the field.
    double fence_ratio;
  };
  std::vector<Delta> deltas;
  for (const ParsedCell& cur : cur_cells) {
    for (const ParsedCell& base : base_cells) {
      if (base.key != cur.key || base.ops <= 0) continue;
      Delta d{cur.key, cur.ops / base.ops, 0};
      if (base.fences_per_op > 0 && cur.fences_per_op >= 0)
        d.fence_ratio = cur.fences_per_op / base.fences_per_op;
      deltas.push_back(std::move(d));
      break;
    }
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.ratio < b.ratio; });

  int violations = 0;
  for (const Delta& d : deltas) {
    const bool slow = tolerance > 0 && d.ratio < 1.0 - tolerance;
    const bool fence_regress = tolerance > 0 && d.fence_ratio > 1.0 + tolerance;
    if (slow || fence_regress) ++violations;
    if (d.fence_ratio > 0) {
      std::fprintf(stderr, "baseline %-36s %6.2fx  fences %5.2fx%s%s\n", d.key.c_str(), d.ratio,
                   d.fence_ratio, slow ? "  << REGRESSION" : "",
                   fence_regress ? "  << FENCE REGRESSION" : "");
    } else {
      std::fprintf(stderr, "baseline %-36s %6.2fx%s\n", d.key.c_str(), d.ratio,
                   slow ? "  << REGRESSION" : "");
    }
  }
  if (tolerance <= 0) {
    std::fprintf(stderr, "bench_regress %s: advisory mode (%zu cells compared, "
                         "set NVHALT_BENCH_TOLERANCE to gate)\n",
                 flag, deltas.size());
    return 0;
  }
  std::fprintf(stderr,
               "bench_regress %s: %d of %zu cells outside the %.0f%% tolerance band\n", flag,
               violations, deltas.size(), tolerance * 100.0);
  return violations == 0 ? 0 : 1;
}

/// hw-hotpath baseline compare. Keys are "op/n", the metric is ns_per_op —
/// a *latency*, so the ratio is base/cur (higher = faster now) to keep the
/// same "ratio < 1 - tolerance means regression" gate as the grid compare.
int compare_hw_with_baseline(const Options& opt) {
  const auto parse_points = [](const std::string& text) {
    std::vector<std::pair<std::string, double>> pts;
    std::istringstream is(text);
    std::string line;
    const auto field = [&line](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": ";
      const auto pos = line.find(needle);
      if (pos == std::string::npos) return {};
      auto v = line.substr(pos + needle.size());
      if (!v.empty() && v[0] == '"') {
        const auto q = v.find('"', 1);
        return q == std::string::npos ? std::string{} : v.substr(1, q - 1);
      }
      return v.substr(0, v.find_first_of(",}"));
    };
    while (std::getline(is, line)) {
      const std::string op = field("op");
      const std::string n = field("n");
      const std::string ns = field("ns_per_op");
      if (op.empty() || n.empty() || ns.empty()) continue;
      pts.emplace_back(op + "/" + n, std::strtod(ns.c_str(), nullptr));
    }
    return pts;
  };
  const std::string base_text = read_file(opt.hw_baseline);
  if (base_text.empty()) {
    std::fprintf(stderr, "bench_regress --hw-baseline: cannot read %s\n", opt.hw_baseline.c_str());
    return 1;
  }
  const auto base_pts = parse_points(base_text);
  const auto cur_pts = parse_points(read_file(opt.hw_out));
  if (base_pts.empty() || cur_pts.empty()) {
    std::fprintf(stderr, "bench_regress --hw-baseline: no comparable points\n");
    return 1;
  }
  const double tolerance = bench_tolerance();
  int violations = 0;
  std::size_t compared = 0;
  for (const auto& [key, cur_ns] : cur_pts) {
    for (const auto& [bkey, base_ns] : base_pts) {
      if (bkey == key && cur_ns > 0) {
        ++compared;
        const double ratio = base_ns / cur_ns;
        const bool slow = tolerance > 0 && ratio < 1.0 - tolerance;
        if (slow) ++violations;
        std::fprintf(stderr, "hw-baseline %-12s %6.2fx%s\n", key.c_str(), ratio,
                     slow ? "  << REGRESSION" : "");
        break;
      }
    }
  }
  if (tolerance <= 0) {
    std::fprintf(stderr, "bench_regress --hw-baseline: advisory mode (%zu points compared)\n",
                 compared);
    return 0;
  }
  std::fprintf(stderr, "bench_regress --hw-baseline: %d of %zu points below %.0f%% of baseline\n",
               violations, compared, (1.0 - tolerance) * 100.0);
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace nvhalt::bench

int main(int argc, char** argv) {
  nvhalt::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opt.check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--scaling-out") == 0 && i + 1 < argc) {
      opt.scaling_out = argv[++i];
    } else if (std::strcmp(argv[i], "--taxonomy-out") == 0 && i + 1 < argc) {
      opt.taxonomy_out = argv[++i];
    } else if (std::strcmp(argv[i], "--contention-out") == 0 && i + 1 < argc) {
      opt.contention_out = argv[++i];
    } else if (std::strcmp(argv[i], "--hw-out") == 0 && i + 1 < argc) {
      opt.hw_out = argv[++i];
    } else if (std::strcmp(argv[i], "--ro-out") == 0 && i + 1 < argc) {
      opt.ro_out = argv[++i];
    } else if (std::strcmp(argv[i], "--alloc-out") == 0 && i + 1 < argc) {
      opt.alloc_out = argv[++i];
    } else if (std::strcmp(argv[i], "--alloc-baseline") == 0 && i + 1 < argc) {
      opt.alloc_baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--group-out") == 0 && i + 1 < argc) {
      opt.group_out = argv[++i];
    } else if (std::strcmp(argv[i], "--group-baseline") == 0 && i + 1 < argc) {
      opt.group_baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--hw-baseline") == 0 && i + 1 < argc) {
      opt.hw_baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--ro-baseline") == 0 && i + 1 < argc) {
      opt.ro_baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--recovery-out") == 0 && i + 1 < argc) {
      opt.recovery_out = argv[++i];
    } else if (std::strcmp(argv[i], "--recovery-baseline") == 0 && i + 1 < argc) {
      opt.recovery_baseline = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_regress [--smoke] [--check] [--out PATH] [--scaling-out PATH] "
                   "[--taxonomy-out PATH] [--contention-out PATH] [--hw-out PATH] [--ro-out PATH] "
                   "[--alloc-out PATH] [--group-out PATH] "
                   "[--baseline PATH] [--hw-baseline PATH] [--ro-baseline PATH] "
                   "[--alloc-baseline PATH] [--group-baseline PATH] "
                   "[--recovery-out PATH] [--recovery-baseline PATH]\n");
      return 2;
    }
  }
  int rc = nvhalt::bench::run_report(opt);
  if (rc != 0) return rc;
  rc = nvhalt::bench::run_scaling_report(opt);
  if (rc != 0) return rc;
  rc = nvhalt::bench::run_hw_report(opt);
  if (rc != 0) return rc;
  rc = nvhalt::bench::run_ro_report(opt);
  if (rc != 0) return rc;
  rc = nvhalt::bench::run_alloc_report(opt);
  if (rc != 0) return rc;
  rc = nvhalt::bench::run_group_report(opt);
  if (rc != 0) return rc;
  if (!opt.recovery_out.empty()) {
    rc = nvhalt::bench::run_recovery_report(opt);
    if (rc != 0) return rc;
  }
  if (opt.check) {
    rc = nvhalt::bench::check_report(opt.out);
    const int rc2 = nvhalt::bench::check_scaling_report(opt.scaling_out, opt.smoke);
    const int rc3 = nvhalt::bench::check_taxonomy(opt.taxonomy_out);
    const int rc4 = nvhalt::bench::check_hw_report(opt.hw_out);
    const int rc5 = nvhalt::bench::check_ro_report(opt.ro_out);
    const int rc6 = nvhalt::bench::check_alloc_report(opt.alloc_out);
    const int rc7 = opt.recovery_out.empty()
                        ? 0
                        : nvhalt::bench::check_recovery_report(opt.recovery_out);
    const int rc8 = nvhalt::bench::check_contention(opt.contention_out);
    const int rc9 = nvhalt::bench::check_group_report(opt.group_out, opt.smoke);
    if (rc == 0) rc = rc2;
    if (rc == 0) rc = rc3;
    if (rc == 0) rc = rc4;
    if (rc == 0) rc = rc5;
    if (rc == 0) rc = rc6;
    if (rc == 0) rc = rc7;
    if (rc == 0) rc = rc8;
    if (rc == 0) rc = rc9;
    if (rc != 0) return rc;
  }
  if (!opt.baseline.empty()) {
    rc = nvhalt::bench::compare_grid_files("--baseline", opt.baseline, opt.out);
    if (rc != 0) return rc;
  }
  if (!opt.ro_baseline.empty()) {
    rc = nvhalt::bench::compare_grid_files("--ro-baseline", opt.ro_baseline, opt.ro_out);
    if (rc != 0) return rc;
  }
  if (!opt.alloc_baseline.empty()) {
    rc = nvhalt::bench::compare_grid_files("--alloc-baseline", opt.alloc_baseline, opt.alloc_out);
    if (rc != 0) return rc;
  }
  if (!opt.group_baseline.empty()) {
    rc = nvhalt::bench::compare_grid_files("--group-baseline", opt.group_baseline, opt.group_out);
    if (rc != 0) return rc;
  }
  if (!opt.recovery_baseline.empty() && !opt.recovery_out.empty()) {
    rc = nvhalt::bench::compare_recovery_with_baseline(opt);
    if (rc != 0) return rc;
  }
  if (!opt.hw_baseline.empty()) return nvhalt::bench::compare_hw_with_baseline(opt);
  return rc;
}
