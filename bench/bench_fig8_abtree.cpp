// Figure 8, row 1: (a,b)-tree throughput (ops/sec) vs thread count for the
// five TMs at 99% / 90% / 50% / 0% read-only workloads. One google-benchmark
// entry per (workload, TM, threads) cell; throughput is reported as the
// "ops/s" counter, matching the figure's y-axis.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace nvhalt;
using namespace nvhalt::bench;

namespace {

void bench_cell(benchmark::State& state, TmKind kind, int read_pct, int threads,
                const BenchScale& scale) {
  for (auto _ : state) {
    BenchParams p;
    p.kind = kind;
    p.structure = Structure::kAbTree;
    p.read_pct = read_pct;
    p.threads = threads;
    p.key_range = scale.key_range;
    p.duration_ms = scale.duration_ms;
    p.dist = scale.dist;
    const BenchResult r = run_structure_bench(p);
    state.counters["ops/s"] = r.ops_per_sec;
    state.counters["hw_commit_frac"] =
        r.tm.commits == 0 ? 0.0
                          : static_cast<double>(r.tm.hw_commits) / static_cast<double>(r.tm.commits);
    state.counters["hw_aborts"] = static_cast<double>(r.tm.hw_aborts);
    state.counters["sw_aborts"] = static_cast<double>(r.tm.sw_aborts);
    state.counters["flushes/op"] = r.flushes_per_op;
    state.counters["fences/op"] = r.fences_per_op;
    state.SetItemsProcessed(static_cast<std::int64_t>(r.total_ops));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchScale scale = read_scale_from_env();
  for (const int read_pct : fig8_read_pcts()) {
    for (const TmKind kind : fig8_tms()) {
      for (const int threads : scale.thread_counts) {
        const std::string name = "fig8_abtree/" + workload_name(read_pct) + "/" +
                                 tm_kind_name(kind) + "/t" + std::to_string(threads);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [=](benchmark::State& s) {
                                       bench_cell(s, kind, read_pct, threads, scale);
                                     })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
