// Figure 9: ablation study of NV-HALT-CL and SPHT on the (a,b)-tree,
// progressively removing the three persistence-overhead classes:
//   BASE               — everything on
//   NO-FLUSH-FENCE     — class 1 removed: flush/fence are no-ops
//   NO-NVRAM           — classes 1+2: also DRAM-speed stores (no NVM latency)
//   NO-PERSISTENT-HTXN — classes 1+2+3: also no synchronization for
//                        persisting hardware transactions (volatile-only)
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace nvhalt;
using namespace nvhalt::bench;

namespace {

struct AblationLevel {
  const char* name;
  bool flushes;
  bool eadr;
  bool nvm_latency;
  bool persist_htxns;
};

const AblationLevel kLevels[] = {
    {"BASE", true, false, true, true},
    // Extension beyond the paper's three levels: an eADR platform removes
    // flushes/fences but keeps NVM store latency — between BASE and
    // NO-FLUSH-FENCE in the overhead taxonomy (paper Sec. 5 notes eADR
    // "would not require these instructions").
    {"EADR", false, true, true, true},
    {"NO-FLUSH-FENCE", false, false, true, true},
    {"NO-NVRAM", false, false, false, true},
    {"NO-PERSISTENT-HTXN", false, false, false, false},
};

void bench_cell(benchmark::State& state, TmKind kind, const AblationLevel& level, int read_pct,
                int threads, const BenchScale& scale) {
  for (auto _ : state) {
    BenchParams p;
    p.kind = kind;
    p.structure = Structure::kAbTree;
    p.read_pct = read_pct;
    p.threads = threads;
    p.key_range = scale.key_range;
    p.duration_ms = scale.duration_ms;
    p.flushes_enabled = level.flushes;
    p.eadr = level.eadr;
    if (!level.nvm_latency) {
      p.flush_latency_ns = 0;
      p.fence_latency_ns = 0;
      p.nvm_store_latency_ns = 0;
    }
    p.persist_htxns = level.persist_htxns;
    const BenchResult r = run_structure_bench(p);
    state.counters["ops/s"] = r.ops_per_sec;
    state.SetItemsProcessed(static_cast<std::int64_t>(r.total_ops));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchScale scale = read_scale_from_env();
  const int threads = scale.thread_counts.back();  // the contended point
  for (const int read_pct : fig8_read_pcts()) {
    for (const TmKind kind : {TmKind::kNvHaltCl, TmKind::kSpht}) {
      for (const AblationLevel& level : kLevels) {
        const std::string name = "fig9_ablation/" + workload_name(read_pct) + "/" +
                                 std::string(tm_kind_name(kind)) + "/" + level.name + "/t" +
                                 std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& s) { bench_cell(s, kind, level, read_pct, threads, scale); })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
