// Abort-pressure sensitivity (extension bench).
//
// The paper's update-heavy result (Sec. 5.2) hinges on what happens when
// hardware transactions abort often: SPHT's fallback claims a global lock
// that serializes *everything* (and its subscription aborts every running
// hardware transaction), while NV-HALT falls back to a fine-grained
// software path that preserves disjoint concurrency. On this single-CPU
// container, contention-induced aborts cannot arise naturally, so this
// bench recreates the paper's mechanism by injecting spurious aborts at
// increasing rates and measuring how gracefully each HyTM degrades.
//
// Expected shape (paper Sec. 5.2): as abort pressure rises, SPHT's
// throughput collapses (fallback fraction -> serialized execution), while
// NV-HALT degrades proportionally only to the per-path cost difference.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace nvhalt;
using namespace nvhalt::bench;

namespace {

void bench_cell(benchmark::State& state, TmKind kind, double spurious, int threads,
                const BenchScale& scale) {
  for (auto _ : state) {
    BenchParams p;
    p.kind = kind;
    p.structure = Structure::kAbTree;
    p.read_pct = 50;
    p.threads = threads;
    p.key_range = scale.key_range;
    p.duration_ms = scale.duration_ms;
    p.spurious_abort_prob = spurious;
    const BenchResult r = run_structure_bench(p);
    state.counters["ops/s"] = r.ops_per_sec;
    state.counters["fallback_frac"] =
        r.tm.commits == 0
            ? 0.0
            : static_cast<double>(r.tm.fallbacks) / static_cast<double>(r.tm.commits);
    state.counters["hw_aborts"] = static_cast<double>(r.tm.hw_aborts);
    state.counters["serialized_frac"] = r.serialized_frac;
    state.SetItemsProcessed(static_cast<std::int64_t>(r.total_ops));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchScale scale = read_scale_from_env();
  const int threads = scale.thread_counts.back();
  for (const TmKind kind : {TmKind::kNvHalt, TmKind::kNvHaltCl, TmKind::kSpht}) {
    for (const double spurious : {0.0, 0.01, 0.05, 0.20}) {
      const std::string name = std::string("abort_sensitivity/50ro/") + tm_kind_name(kind) +
                               "/p" + std::to_string(static_cast<int>(spurious * 100)) + "/t" +
                               std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [=](benchmark::State& s) {
                                     bench_cell(s, kind, spurious, threads, scale);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
