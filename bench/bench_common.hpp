// Shared benchmark driver reproducing the paper's methodology (Sec. 5):
// prefill the structure to 50% of its key range, run a timed mixed
// workload with uniformly distributed keys, report throughput in ops/sec.
//
// Scale note: the paper uses 1M keys, 20 s trials and up to 96 threads on
// a 2-socket Optane machine. This container exposes one CPU and no NVM, so
// the defaults are scaled down (keys, duration, thread counts) while
// keeping every algorithmic knob identical; set NVHALT_BENCH_FULL=1 for
// paper-scale parameters. Absolute numbers are not comparable — the
// *shape* (who wins per workload, by what factor) is what EXPERIMENTS.md
// tracks.
//
// Environment overrides:
//   NVHALT_BENCH_MS       measurement window per data point (default 150)
//   NVHALT_BENCH_KEYS     key range (default 16384)
//   NVHALT_BENCH_THREADS  comma list of thread counts (default "1,2,4")
//   NVHALT_BENCH_FULL     1 => 1M keys, 2s windows, threads 1,2,4,8,16
#pragma once

#include <string>
#include <vector>

#include "api/tm_factory.hpp"
#include "locks/contention.hpp"
#include "telemetry/tx_telemetry.hpp"

namespace nvhalt::bench {

enum class Structure { kAbTree, kHashMap };

enum class KeyDist { kUniform, kZipf };

struct BenchParams {
  TmKind kind = TmKind::kNvHalt;
  Structure structure = Structure::kAbTree;
  /// Percentage of operations that are read-only lookups; the rest split
  /// evenly between inserts and removes (paper workloads: 99/90/50/0).
  int read_pct = 90;
  int threads = 1;
  std::size_t key_range = 1 << 14;
  int duration_ms = 150;
  std::uint64_t seed = 1;
  /// Key distribution. The paper uses uniform; Zipf is an extension
  /// probing contention sensitivity (NVHALT_BENCH_ZIPF=1, or the grid's
  /// skewed column).
  KeyDist dist = KeyDist::kUniform;
  /// Skew exponent for kZipf key draws (0.99 = YCSB default).
  double zipf_theta = 0.99;
  /// Injected spurious-abort probability per hardware access (the
  /// abort-pressure sensitivity bench uses this to emulate contention).
  double spurious_abort_prob = 0.0;

  // Simulated NVM cost model (ablation class 1 and 2 knobs).
  bool flushes_enabled = true;
  bool eadr = false;
  std::uint64_t flush_latency_ns = 150;
  std::uint64_t fence_latency_ns = 80;
  std::uint64_t nvm_store_latency_ns = 50;
  /// Ablation class 3: persist hardware transactions.
  bool persist_htxns = true;
  /// Group durable commit (flat-combining fence, PmemConfig::group_commit).
  /// On by default in the grid: solo committers are auto-gated to the solo
  /// path, so uncontended cells keep their latency. BENCH_group_commit.json
  /// sweeps this on/off explicitly.
  bool group_commit = true;
  /// Write-combining block size (PmemConfig::wc_block_lines): 4 lines = one
  /// Optane XPLine per media write-back.
  std::size_t wc_block_lines = 4;
};

struct BenchResult {
  double ops_per_sec = 0;
  std::uint64_t total_ops = 0;
  TmStats tm;
  htm::HtmStats htm;
  /// Hardware-independent persistence-cost proxies: cache-line write-backs
  /// and ordering fences issued during the measured phase. These track the
  /// paper's overhead classes 1-2 without depending on simulated latencies.
  double flushes_per_op = 0;
  double fences_per_op = 0;
  /// Queued flushes coalesced away by fence-time dedupe (same line flushed
  /// twice in one fence epoch, e.g. adjacent Trinity records).
  double flush_dedup_per_op = 0;
  /// Fences absorbed into another thread's combined fence (group commit):
  /// each one is an ordering fence a committer did NOT pay for itself.
  /// Zero when group_commit is off or no two committers ever overlapped.
  double fences_combined_per_op = 0;
  /// SPHT only: fraction of the measurement window during which the global
  /// fallback lock was held, i.e. all concurrency was disabled (paper
  /// Sec. 5.3). Zero for the other TMs.
  double serialized_frac = 0;
  /// Abort taxonomy + histograms for the measured phase (the taxonomy is
  /// live at every telemetry level; latency histograms need level >= 1).
  telemetry::TmTelemetry tel;
  /// Per-stripe lock-contention snapshot (always-on failure-path counters;
  /// absent only for TMs without a contention observatory).
  bool has_contention = false;
  std::size_t contention_stripes = 0;
  ContentionTotals contention;
  std::vector<StripeContention> hot_stripes;
};

/// Runs one data point: build system, prefill to 50%, measure.
BenchResult run_structure_bench(const BenchParams& p);

/// Runs the same data point `rounds` times and returns the round with the
/// highest throughput. On a shared machine each round's measurement error is
/// one-sided (preemption and co-scheduled work only ever subtract ops), so
/// max-of-rounds converges on the machine's uncontended capability while a
/// single sample can be off by 40%+. `rounds <= 1` degenerates to a single
/// run_structure_bench call.
BenchResult run_structure_bench_best(const BenchParams& p, int rounds);

/// Rounds per grid cell: NVHALT_BENCH_ROUNDS if set, else 1 in smoke mode
/// (CI runners are uniformly noisy and the smoke gate is advisory anyway)
/// and 3 in full mode, where the committed baselines are produced.
int bench_rounds_from_env(bool smoke);

/// Reads the environment-scaled defaults.
struct BenchScale {
  std::size_t key_range;
  int duration_ms;
  std::vector<int> thread_counts;
  KeyDist dist = KeyDist::kUniform;
};
BenchScale read_scale_from_env();

/// All five TMs / the paper's four workloads.
std::vector<TmKind> fig8_tms();
std::vector<int> fig8_read_pcts();

std::string workload_name(int read_pct);

}  // namespace nvhalt::bench
