// Figure 6 / Sec. 3.6: the progress pathology that motivates NV-HALT-SP.
// Two threads run the opposing array-scan transactions of Fig. 6 on the
// software path; the weakly progressive variant can abort both conflicting
// transactions repeatedly, the strongly progressive variant guarantees a
// winner per conflict round. The benchmark reports commit throughput and
// the aborts-per-commit ratio for both variants.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "util/barrier.hpp"

using namespace nvhalt;
using namespace nvhalt::bench;

namespace {

struct LivelockResult {
  double commits_per_sec = 0;
  double aborts_per_commit = 0;
};

LivelockResult run_fig6(TmKind kind, int duration_ms, bool hw_path_enabled) {
  RunnerConfig cfg;
  cfg.kind = kind;
  cfg.pmem.capacity_words = std::size_t{1} << 18;
  if (!hw_path_enabled) cfg.nvhalt.htm_attempts = 0;  // pure software paths
  TmRunner runner(cfg);
  auto& tm = runner.tm();
  constexpr std::size_t kSlots = 32;
  const gaddr_t arr = runner.alloc().raw_alloc_large(kSlots);

  std::atomic<bool> stop{false};
  SpinBarrier barrier(3);
  std::uint64_t commits[2] = {0, 0};
  std::thread workers[2];
  for (int tid = 0; tid < 2; ++tid) {
    workers[tid] = std::thread([&, tid] {
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // T1: update the front, read ascending. T2: update the back, read
        // descending — Fig. 6's mutually-aborting pattern.
        tm.run(tid, [&](Tx& tx) {
          if (tid == 0) {
            tx.write(arr, tx.read(arr) + 1);
            for (std::size_t s = 1; s < kSlots; ++s) (void)tx.read(arr + s);
          } else {
            tx.write(arr + kSlots - 1, tx.read(arr + kSlots - 1) + 1);
            for (std::size_t s = kSlots - 1; s-- > 0;) (void)tx.read(arr + s);
          }
        });
        ++commits[tid];
      }
    });
  }
  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  workers[0].join();
  workers[1].join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  LivelockResult r;
  const TmStats s = tm.stats();
  r.commits_per_sec = static_cast<double>(commits[0] + commits[1]) / secs;
  r.aborts_per_commit = s.commits == 0
                            ? 0.0
                            : static_cast<double>(s.sw_aborts + s.hw_aborts) /
                                  static_cast<double>(s.commits);
  return r;
}

void bench_fig6(benchmark::State& state, TmKind kind, bool hw) {
  const BenchScale scale = read_scale_from_env();
  for (auto _ : state) {
    const LivelockResult r = run_fig6(kind, scale.duration_ms, hw);
    state.counters["commits/s"] = r.commits_per_sec;
    state.counters["aborts_per_commit"] = r.aborts_per_commit;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("fig6_livelock/NV-HALT/sw_only",
                               [](benchmark::State& s) { bench_fig6(s, TmKind::kNvHalt, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "fig6_livelock/NV-HALT-SP/sw_only",
      [](benchmark::State& s) { bench_fig6(s, TmKind::kNvHaltSp, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig6_livelock/NV-HALT/full",
                               [](benchmark::State& s) { bench_fig6(s, TmKind::kNvHalt, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig6_livelock/NV-HALT-SP/full",
                               [](benchmark::State& s) { bench_fig6(s, TmKind::kNvHaltSp, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
