#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "baselines/spht/spht_tm.hpp"
#include "structures/tm_abtree.hpp"
#include "structures/tm_hashmap.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace nvhalt::bench {

namespace {

RunnerConfig make_runner_config(const BenchParams& p) {
  RunnerConfig cfg;
  cfg.kind = p.kind;
  // Pool sized for the structure: generous headroom over the prefill.
  const std::size_t data_words =
      p.structure == Structure::kHashMap ? p.key_range * 8 : p.key_range * 10;
  std::size_t words = std::size_t{1} << 16;
  while (words < data_words + (std::size_t{1} << 16)) words <<= 1;
  cfg.pmem.capacity_words = words;
  // Raw region: sized for SPHT's per-thread persistent logs plus slack.
  cfg.spht.max_threads = std::max(16, p.threads);
  cfg.spht.log_words_per_thread = std::size_t{1} << 18;
  cfg.pmem.raw_words =
      static_cast<std::size_t>(cfg.spht.max_threads) *
          (cfg.spht.log_words_per_thread + 2 * kWordsPerLine) +
      TxAllocator::metadata_words(words) + (std::size_t{1} << 16);
  cfg.pmem.flushes_enabled = p.flushes_enabled;
  cfg.pmem.eadr = p.eadr;
  cfg.pmem.flush_latency_ns = p.flush_latency_ns;
  cfg.pmem.fence_latency_ns = p.fence_latency_ns;
  cfg.pmem.nvm_store_latency_ns = p.nvm_store_latency_ns;
  cfg.pmem.track_store_order = false;  // no crash adversary in benchmarks
  cfg.pmem.group_commit = p.group_commit;
  cfg.pmem.wc_block_lines = p.wc_block_lines;
  cfg.htm.seed = p.seed;
  cfg.htm.spurious_abort_prob = p.spurious_abort_prob;
  cfg.nvhalt.persist_hw_txns = p.persist_htxns;
  cfg.nvhalt.lock_table_entries = std::size_t{1} << 16;
  cfg.trinity.lock_table_entries = std::size_t{1} << 16;
  cfg.spht.persist_txns = p.persist_htxns;
  return cfg;
}

}  // namespace

BenchResult run_structure_bench(const BenchParams& p) {
  TmRunner runner(make_runner_config(p));
  auto& tm = runner.tm();

  // Build + 50% prefill.
  std::unique_ptr<TmAbTree> tree_storage;
  std::unique_ptr<TmHashMap> map_storage;
  if (p.structure == Structure::kAbTree) {
    tree_storage = std::make_unique<TmAbTree>(tm);
  } else {
    // The paper's hashmap has as many buckets as keys (1M / 1M).
    std::size_t buckets = 1;
    while (buckets < p.key_range) buckets <<= 1;
    map_storage = std::make_unique<TmHashMap>(tm, buckets);
  }
  TmAbTree* tree = tree_storage.get();
  TmHashMap* map = map_storage.get();

  std::unique_ptr<workload::KeyedOps> ops_holder;
  if (tree != nullptr) {
    ops_holder = std::make_unique<workload::KeyedOpsAdapter<TmAbTree>>(*tree);
  } else {
    ops_holder = std::make_unique<workload::KeyedOpsAdapter<TmHashMap>>(*map);
  }
  workload::KeyedOps* ops = ops_holder.get();

  workload::prefill_half(*ops, p.key_range, p.seed);
  tm.reset_stats();
  runner.htm().reset_stats();
  if (p.kind == TmKind::kSpht) dynamic_cast<SphtTm&>(tm).reset_global_lock_held_ns();
  const std::uint64_t flushes_before = runner.pool().flush_count();
  const std::uint64_t fences_before = runner.pool().fence_count();
  const std::uint64_t dedup_before = runner.pool().flush_dedup_count();
  const std::uint64_t combined_before = runner.pool().fence_combined_count();

  workload::WorkloadSpec spec;
  spec.read_pct = p.read_pct;
  spec.threads = p.threads;
  spec.key_range = p.key_range;
  spec.duration_ms = p.duration_ms;
  spec.dist = p.dist == KeyDist::kUniform ? workload::KeyDist::kUniform
                                          : workload::KeyDist::kZipf;
  spec.zipf_theta = p.zipf_theta;
  spec.seed = p.seed;
  const workload::WorkloadResult w = workload::run_mixed(*ops, spec);
  const double secs = w.seconds;
  const std::uint64_t flushes_measured = runner.pool().flush_count() - flushes_before;
  const std::uint64_t fences_measured = runner.pool().fence_count() - fences_before;
  const std::uint64_t dedup_measured = runner.pool().flush_dedup_count() - dedup_before;
  const std::uint64_t combined_measured = runner.pool().fence_combined_count() - combined_before;
  double serialized_frac = 0;
  if (p.kind == TmKind::kSpht) {
    serialized_frac = static_cast<double>(dynamic_cast<SphtTm&>(tm).global_lock_held_ns()) /
                      (secs * 1e9);
  }

  // SPHT: replay the persistent logs after the measured phase, as the
  // paper configures it (16 replay threads, replay after ops complete).
  // Replay flushes are excluded from the per-op metrics, mirroring the
  // paper's exclusion of replay from throughput.
  if (p.kind == TmKind::kSpht)
    dynamic_cast<SphtTm&>(tm).replay(runner.config().spht.replay_threads);

  BenchResult r;
  r.total_ops = w.total_ops;
  r.ops_per_sec = w.ops_per_sec;
  r.tm = tm.stats();
  r.htm = runner.htm().aggregate_stats();
  r.tel = tm.telemetry();
  if (const ContentionTable* ct = tm.contention()) {
    r.has_contention = true;
    r.contention_stripes = ct->stripes();
    r.contention = ct->totals();
    r.hot_stripes = ct->top_k(16);
  }
  if (r.total_ops > 0) {
    r.flushes_per_op = static_cast<double>(flushes_measured) / static_cast<double>(r.total_ops);
    r.fences_per_op = static_cast<double>(fences_measured) / static_cast<double>(r.total_ops);
    r.flush_dedup_per_op =
        static_cast<double>(dedup_measured) / static_cast<double>(r.total_ops);
    r.fences_combined_per_op =
        static_cast<double>(combined_measured) / static_cast<double>(r.total_ops);
  }
  r.serialized_frac = serialized_frac;
  return r;
}

BenchResult run_structure_bench_best(const BenchParams& p, int rounds) {
  BenchResult best = run_structure_bench(p);
  for (int i = 1; i < rounds; ++i) {
    BenchResult r = run_structure_bench(p);
    if (r.ops_per_sec > best.ops_per_sec) best = std::move(r);
  }
  return best;
}

int bench_rounds_from_env(bool smoke) {
  if (const char* v = std::getenv("NVHALT_BENCH_ROUNDS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return smoke ? 1 : 3;
}

BenchScale read_scale_from_env() {
  BenchScale s;
  const char* full = std::getenv("NVHALT_BENCH_FULL");
  const bool is_full = full != nullptr && full[0] == '1';
  s.key_range = is_full ? (std::size_t{1} << 20) : (std::size_t{1} << 14);
  s.duration_ms = is_full ? 2000 : 150;
  s.thread_counts = is_full ? std::vector<int>{1, 2, 4, 8, 16} : std::vector<int>{1, 2, 4};

  if (const char* ms = std::getenv("NVHALT_BENCH_MS")) s.duration_ms = std::atoi(ms);
  if (const char* keys = std::getenv("NVHALT_BENCH_KEYS"))
    s.key_range = static_cast<std::size_t>(std::atoll(keys));
  if (const char* th = std::getenv("NVHALT_BENCH_THREADS")) {
    s.thread_counts.clear();
    std::stringstream ss(th);
    std::string item;
    while (std::getline(ss, item, ',')) s.thread_counts.push_back(std::atoi(item.c_str()));
  }
  if (const char* z = std::getenv("NVHALT_BENCH_ZIPF")) {
    if (z[0] == '1') s.dist = KeyDist::kZipf;
  }
  return s;
}

std::vector<TmKind> fig8_tms() {
  return {TmKind::kNvHalt, TmKind::kNvHaltCl, TmKind::kNvHaltSp, TmKind::kTrinity,
          TmKind::kSpht};
}

std::vector<int> fig8_read_pcts() { return {99, 90, 50, 0}; }

std::string workload_name(int read_pct) {
  switch (read_pct) {
    case 99: return "99ro";
    case 90: return "90ro";
    case 50: return "50ro";
    case 0: return "0ro";
    default: return std::to_string(read_pct) + "ro";
  }
}

}  // namespace nvhalt::bench
