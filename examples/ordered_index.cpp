// An ordered index on the transactional (a,b)-tree: the paper's primary
// evaluation structure, here used as a durable database-style index with
// concurrent writers, point lookups, and crash recovery with invariant
// validation.
//
//   $ ./examples/ordered_index
#include <cstdio>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "util/rng.hpp"

using namespace nvhalt;

int main() {
  RunnerConfig cfg;
  cfg.kind = TmKind::kNvHaltCl;  // colocated locks: best for tree workloads
  cfg.pmem.capacity_words = 1 << 21;
  cfg.pmem.track_store_order = true;
  TmRunner runner(cfg);
  TransactionalMemory& tm = runner.tm();

  TmAbTree index(tm);

  // Phase 1: concurrent bulk load (uniform keys, as in the paper's setup).
  constexpr int kLoaders = 4;
  constexpr word_t kKeyRange = 20000;
  std::vector<std::thread> loaders;
  for (int t = 0; t < kLoaders; ++t) {
    loaders.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 2000; ++i) {
        const word_t k = 1 + rng.next_bounded(kKeyRange);
        index.insert(t, k, k * 10);
      }
    });
  }
  for (auto& th : loaders) th.join();
  std::printf("loaded %zu keys; tree valid: %s\n", index.size_slow(),
              index.validate_slow() ? "yes" : "no");

  // Phase 2: mixed read/update workload with a crash in the middle of it.
  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);
  std::vector<std::thread> workers;
  for (int t = 0; t < kLoaders; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 101);
      try {
        for (;;) {
          const word_t k = 1 + rng.next_bounded(kKeyRange);
          const auto dice = rng.next_bounded(10);
          if (dice < 5) {
            word_t v = 0;
            if (index.contains(t, k, &v) && v != k * 10) std::abort();  // corruption!
          } else if (dice < 8) {
            index.insert(t, k, k * 10);
          } else {
            index.remove(t, k);
          }
        }
      } catch (const SimulatedPowerFailure&) {
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  coord.trip();
  for (auto& th : workers) th.join();
  runner.pool().set_crash_coordinator(nullptr);
  std::printf("power failed mid-workload\n");

  // Phase 3: recover and validate every (a,b)-tree invariant.
  runner.pool().crash(CrashPolicy{0.5, 7});
  tm.recover_data();
  TmAbTree recovered = TmAbTree::attach(tm);
  tm.rebuild_allocator(recovered.collect_live_blocks());

  std::string why;
  const bool valid = recovered.validate_slow(&why);
  std::printf("recovered %zu keys; tree valid: %s%s%s\n", recovered.size_slow(),
              valid ? "yes" : "NO", valid ? "" : " — ", valid ? "" : why.c_str());

  // Values intact?
  std::size_t wrong = 0;
  for (const word_t k : recovered.keys_slow()) {
    word_t v = 0;
    if (!recovered.contains(0, k, &v) || v != k * 10) ++wrong;
  }
  std::printf("corrupted entries: %zu\n", wrong);

  // Still fully operational.
  const bool works = recovered.insert(0, kKeyRange + 1, 1) && recovered.remove(0, kKeyRange + 1);
  std::printf("post-recovery updates work: %s\n", works ? "yes" : "no");
  return (valid && wrong == 0 && works) ? 0 : 1;
}
