// Quickstart: create an NV-HALT system, run a few durable transactions,
// inspect statistics. Start here.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "api/tm_factory.hpp"

using namespace nvhalt;

int main() {
  // 1. Configure the system: a persistent pool (simulated NVM), the HTM
  //    fast-path simulator, and the NV-HALT TM itself.
  RunnerConfig cfg;
  cfg.kind = TmKind::kNvHalt;          // also: kNvHaltCl, kNvHaltSp, kTrinity, kSpht
  cfg.pmem.capacity_words = 1 << 20;   // 8 MiB of transactional words
  TmRunner runner(cfg);
  TransactionalMemory& tm = runner.tm();

  // 2. Allocate transactional memory. Word 0 is the null address; every
  //    address is a 64-bit word in the persistent pool.
  const gaddr_t counter = runner.alloc().raw_alloc(/*tid=*/0, /*nwords=*/1);
  const gaddr_t pair = runner.alloc().raw_alloc(0, 2);

  // 3. Run transactions. The body may be retried on conflicts; it sees a
  //    consistent snapshot (opacity) and its effects are durable once
  //    run() returns true (durable linearizability).
  const int tid = 0;  // dense thread id in [0, kMaxThreads)
  for (int i = 0; i < 10; ++i) {
    tm.run(tid, [&](Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
  }

  // Multi-word transactions are atomic, both in memory and on "NVM".
  tm.run(tid, [&](Tx& tx) {
    tx.write(pair + 0, 123);
    tx.write(pair + 1, 456);
  });

  // Voluntary aborts leave no trace.
  const bool committed = tm.run(tid, [&](Tx& tx) {
    tx.write(counter, 999);
    tx.abort();  // never mind!
  });

  word_t value = 0;
  tm.run(tid, [&](Tx& tx) { value = tx.read(counter); });
  std::printf("counter = %llu (aborted txn committed: %s)\n",
              static_cast<unsigned long long>(value), committed ? "yes" : "no");

  // 4. Statistics: how many transactions ran in hardware vs software.
  const TmStats s = tm.stats();
  std::printf("%s: %llu commits (%llu hw, %llu sw), %llu hw aborts, %llu fallbacks\n",
              tm.name(), static_cast<unsigned long long>(s.commits),
              static_cast<unsigned long long>(s.hw_commits),
              static_cast<unsigned long long>(s.sw_commits),
              static_cast<unsigned long long>(s.hw_aborts),
              static_cast<unsigned long long>(s.fallbacks));
  return value == 10 && !committed ? 0 : 1;
}
