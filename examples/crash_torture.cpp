// Crash-torture loop: repeatedly runs a concurrent mixed workload over a
// durable (a,b)-tree + hashmap, kills the power at a random instant with an
// adversarial write-back policy, recovers, validates every invariant, and
// goes again — demonstrating that recovery composes across many failures.
//
//   $ ./examples/crash_torture [cycles=5] [tm=NV-HALT]
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "pmem/crash_sim.hpp"
#include "structures/tm_abtree.hpp"
#include "structures/tm_hashmap.hpp"
#include "util/rng.hpp"

using namespace nvhalt;

int main(int argc, char** argv) {
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 5;
  RunnerConfig cfg;
  cfg.kind = argc > 2 ? tm_kind_from_string(argv[2]) : TmKind::kNvHalt;
  cfg.pmem.capacity_words = 1 << 20;
  cfg.pmem.raw_words = 1 << 21;
  cfg.pmem.track_store_order = true;
  TmRunner runner(cfg);
  TransactionalMemory& tm = runner.tm();

  std::optional<TmHashMap> map;
  std::optional<TmAbTree> tree;
  map.emplace(tm, std::size_t{1} << 10, /*root_slot=*/0);
  tree.emplace(tm, /*root_slot=*/2);
  constexpr word_t kKeyRange = 4000;
  constexpr int kThreads = 4;

  Xoshiro256 seeder(2026);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    CrashCoordinator coord;
    runner.pool().set_crash_coordinator(&coord);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t, cycle] {
        Xoshiro256 rng(static_cast<std::uint64_t>(cycle) * 977 + static_cast<std::uint64_t>(t));
        try {
          for (;;) {
            const word_t k = 1 + rng.next_bounded(kKeyRange);
            switch (rng.next_bounded(4)) {
              case 0: tree->insert(t, k, k * 7); break;
              case 1: tree->remove(t, k); break;
              case 2: map->insert(t, k, k * 9); break;
              default: map->remove(t, k); break;
            }
          }
        } catch (const SimulatedPowerFailure&) {
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + cycle * 3));
    coord.trip();
    for (auto& w : workers) w.join();
    runner.pool().set_crash_coordinator(nullptr);

    // Power failure with a fresh adversary each cycle.
    runner.pool().crash(CrashPolicy{0.5, seeder.next()});
    tm.recover_data();
    map.emplace(TmHashMap::attach(tm, 0));
    tree.emplace(TmAbTree::attach(tm, 2));
    std::vector<LiveBlock> live = map->collect_live_blocks();
    for (const auto& b : tree->collect_live_blocks()) live.push_back(b);
    tm.rebuild_allocator(live);

    std::string why;
    const bool tree_ok = tree->validate_slow(&why);
    std::size_t wrong = 0;
    for (const word_t k : tree->keys_slow()) {
      word_t v = 0;
      if (!tree->contains(0, k, &v) || v != k * 7) ++wrong;
    }
    std::printf("cycle %d: recovered tree=%zu keys (%s), map=%zu keys, corrupt=%zu\n",
                cycle, tree->size_slow(), tree_ok ? "valid" : why.c_str(), map->size_slow(),
                wrong);
    if (!tree_ok || wrong != 0) return 1;
  }
  std::printf("all %d crash cycles recovered cleanly\n", cycles);
  return 0;
}
