// A durable key-value store that survives power failures.
//
// Demonstrates the full persistence story: populate a transactional
// hashmap, simulate a power failure at an arbitrary instant (including
// mid-commit), run recovery, re-attach, and verify that every acknowledged
// write survived.
//
//   $ ./examples/persistent_kv_store
#include <cstdio>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "pmem/crash_sim.hpp"
#include "structures/tm_hashmap.hpp"

using namespace nvhalt;

int main() {
  RunnerConfig cfg;
  cfg.kind = TmKind::kNvHaltSp;  // strongest progress guarantee
  cfg.pmem.capacity_words = 1 << 20;
  cfg.pmem.track_store_order = true;  // needed by the crash adversary
  TmRunner runner(cfg);
  TransactionalMemory& tm = runner.tm();

  TmHashMap store(tm, /*buckets=*/1 << 12);

  // Writers insert keys until the "power fails". Each thread remembers the
  // keys whose insert was acknowledged (run() returned).
  constexpr int kWriters = 4;
  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);
  std::vector<std::vector<word_t>> acked(kWriters);
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      try {
        for (word_t i = 1;; ++i) {
          const word_t key = static_cast<word_t>(t) * 1000000 + i;
          if (store.insert(t, key, key * 2)) acked[static_cast<std::size_t>(t)].push_back(key);
        }
      } catch (const SimulatedPowerFailure&) {
        // This thread was running when the power failed.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  coord.trip();  // lights out
  for (auto& w : writers) w.join();
  runner.pool().set_crash_coordinator(nullptr);

  std::size_t acked_total = 0;
  for (const auto& v : acked) acked_total += v.size();
  std::printf("power failure after %zu acknowledged inserts\n", acked_total);

  // The machine reboots: caches and DRAM are gone, NVM (plus whatever the
  // hardware spontaneously wrote back) survives.
  runner.pool().crash(CrashPolicy{/*writeback_probability=*/0.5, /*seed=*/2024});

  // Recovery, phase 1: revert in-flight transactions, rebuild the volatile
  // image from NVM.
  tm.recover_data();

  // Re-attach and rebuild the allocator from the live blocks (the
  // user-supplied iterator of paper Sec. 4).
  TmHashMap recovered = TmHashMap::attach(tm);
  tm.rebuild_allocator(recovered.collect_live_blocks());

  // Every acknowledged insert must be present with the right value.
  std::size_t lost = 0, wrong = 0;
  for (int t = 0; t < kWriters; ++t) {
    for (const word_t key : acked[static_cast<std::size_t>(t)]) {
      word_t v = 0;
      if (!recovered.contains(0, key, &v)) {
        ++lost;
      } else if (v != key * 2) {
        ++wrong;
      }
    }
  }
  std::printf("after recovery: %zu keys present, %zu acked keys lost, %zu corrupted\n",
              recovered.size_slow(), lost, wrong);

  // The store keeps working after recovery.
  const word_t fresh_key = 999999999;  // outside every writer's key space
  const bool works = recovered.insert(0, fresh_key, 4242) && recovered.contains(0, fresh_key);
  std::printf("post-recovery insert works: %s\n", works ? "yes" : "no");

  return (lost == 0 && wrong == 0 && works) ? 0 : 1;
}
