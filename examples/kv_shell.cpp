// A durable key-value store over a *file-backed* pool: durability spans
// real process restarts, not just simulated crashes.
//
//   $ ./examples/kv_shell /tmp/my.pool put 1 100
//   $ ./examples/kv_shell /tmp/my.pool put 2 200
//   $ ./examples/kv_shell /tmp/my.pool get 1      # a separate process!
//   100
//   $ ./examples/kv_shell /tmp/my.pool size
//   2
//
// With no arguments it runs a self-checking demo: writes through one pool
// instance, tears it down ("process exit"), reopens the file with a fresh
// instance and verifies everything is still there.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "api/root_registry.hpp"
#include "api/tm_factory.hpp"
#include "structures/tm_hashmap.hpp"

using namespace nvhalt;

namespace {

constexpr std::size_t kBuckets = 1 << 10;

RunnerConfig pool_config(const std::string& path) {
  RunnerConfig cfg;
  cfg.kind = TmKind::kNvHalt;
  cfg.pmem.capacity_words = 1 << 18;
  cfg.pmem.backing_path = path;
  return cfg;
}

/// Opens (or creates) the store in the pool file and returns it attached.
std::unique_ptr<TmHashMap> open_store(TmRunner& runner) {
  auto& tm = runner.tm();
  RootRegistry reg(runner.pool());
  if (runner.pool().attached_existing()) {
    tm.recover_data();
    if (!reg.get("kv-store").has_value()) {
      std::fprintf(stderr, "pool file holds no kv-store\n");
      std::exit(2);
    }
    auto store = std::make_unique<TmHashMap>(TmHashMap::attach(tm, /*root_slot=*/0));
    tm.rebuild_allocator(store->collect_live_blocks());
    return store;
  }
  auto store = std::make_unique<TmHashMap>(tm, kBuckets, /*root_slot=*/0);
  reg.set(0, "kv-store", 1);  // presence marker
  return store;
}

int run_command(TmRunner& runner, TmHashMap& store, int argc, char** argv) {
  const std::string cmd = argv[0];
  if (cmd == "put" && argc >= 3) {
    const word_t k = std::strtoull(argv[1], nullptr, 10);
    const word_t v = std::strtoull(argv[2], nullptr, 10);
    // Upsert: one transaction, durable when run() returns.
    runner.tm().run(0, [&](Tx& tx) {
      store.remove_in(tx, k);
      store.insert_in(tx, k, v);
    });
    std::printf("ok\n");
    return 0;
  }
  if (cmd == "get" && argc >= 2) {
    const word_t k = std::strtoull(argv[1], nullptr, 10);
    word_t v = 0;
    if (store.contains(0, k, &v)) {
      std::printf("%llu\n", static_cast<unsigned long long>(v));
      return 0;
    }
    std::printf("(nil)\n");
    return 1;
  }
  if (cmd == "del" && argc >= 2) {
    const word_t k = std::strtoull(argv[1], nullptr, 10);
    std::printf("%s\n", store.remove(0, k) ? "ok" : "(nil)");
    return 0;
  }
  if (cmd == "size") {
    std::printf("%zu\n", store.size_slow());
    return 0;
  }
  std::fprintf(stderr, "usage: kv_shell <pool-file> put k v | get k | del k | size\n");
  return 2;
}

int self_demo() {
  const std::string path = "/tmp/nvhalt_kv_shell_demo.pool";
  std::remove(path.c_str());

  {
    TmRunner runner(pool_config(path));
    auto store = open_store(runner);
    for (word_t k = 1; k <= 200; ++k) store->insert(0, k, k * 11);
    store->remove(0, 100);
    runner.pool().sync_to_disk();
    std::printf("run 1: wrote 200 keys, deleted one, exiting\n");
  }  // runner destroyed: the "process" is gone

  int rc = 0;
  {
    TmRunner runner(pool_config(path));
    if (!runner.pool().attached_existing()) {
      std::printf("ERROR: pool file not recognized on reopen\n");
      return 1;
    }
    auto store = open_store(runner);
    std::size_t wrong = 0;
    for (word_t k = 1; k <= 200; ++k) {
      word_t v = 0;
      const bool present = store->contains(0, k, &v);
      if (k == 100 ? present : (!present || v != k * 11)) ++wrong;
    }
    std::printf("run 2: reopened pool, %zu keys present, %zu mismatches\n",
                store->size_slow(), wrong);
    // And it keeps working.
    if (!store->insert(0, 10001, 7)) ++wrong;
    rc = wrong == 0 ? 0 : 1;
  }
  std::remove(path.c_str());
  std::printf("durability across process lifetimes: %s\n", rc == 0 ? "verified" : "FAILED");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return self_demo();
  TmRunner runner(pool_config(argv[1]));
  auto store = open_store(runner);
  const int rc = argc > 2 ? run_command(runner, *store, argc - 2, argv + 2) : 2;
  runner.pool().sync_to_disk();
  return rc;
}
