// A durable job-queue service with exactly-once semantics.
//
// Producers enqueue jobs; workers atomically {dequeue job, record result}
// in one transaction, so a job is never lost and never processed twice —
// even across a power failure in the middle of everything. This is the
// kind of hand-crafted persistent data structure the paper's introduction
// says is "difficult, time consuming and error prone" to build manually;
// on top of a durably-linearizable TM it is ~30 lines of logic.
//
//   $ ./examples/job_queue
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "pmem/crash_sim.hpp"
#include "structures/tm_hashmap.hpp"
#include "structures/tm_queue.hpp"

using namespace nvhalt;

int main() {
  RunnerConfig cfg;
  cfg.kind = TmKind::kNvHaltSp;
  cfg.pmem.capacity_words = 1 << 20;
  cfg.pmem.track_store_order = true;
  TmRunner runner(cfg);
  TransactionalMemory& tm = runner.tm();

  TmQueue queue(tm, /*capacity=*/256, /*root_slot=*/6);       // pending jobs
  TmHashMap results(tm, /*buckets=*/1 << 10, /*root_slot=*/0);  // job -> result

  constexpr word_t kJobs = 3000;
  constexpr int kProducers = 2, kWorkers = 2;

  CrashCoordinator coord;
  runner.pool().set_crash_coordinator(&coord);
  std::atomic<word_t> next_job{1};
  std::vector<std::thread> threads;

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      try {
        for (;;) {
          const word_t job = next_job.fetch_add(1);
          if (job > kJobs) return;
          while (!queue.enqueue(p, job)) {
          }  // back-pressure when full
        }
      } catch (const SimulatedPowerFailure&) {
      }
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    const int tid = kProducers + w;
    threads.emplace_back([&, tid] {
      try {
        for (;;) {
          // One transaction: take the job AND record its result. Atomic,
          // durable: the job can never be lost (dequeued but unprocessed)
          // or doubled (processed but still queued).
          tm.run(tid, [&](Tx& tx) {
            word_t job = 0;
            if (queue.dequeue_in(tx, &job)) results.insert_in(tx, job, job * job);
          });
        }
      } catch (const SimulatedPowerFailure&) {
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  coord.trip();  // power failure mid-service
  for (auto& t : threads) t.join();
  runner.pool().set_crash_coordinator(nullptr);

  runner.pool().crash(CrashPolicy{0.5, 99});
  tm.recover_data();
  TmQueue rqueue = TmQueue::attach(tm, 6);
  TmHashMap rresults = TmHashMap::attach(tm, 0);
  std::vector<LiveBlock> live = rqueue.collect_live_blocks();
  for (const auto& b : rresults.collect_live_blocks()) live.push_back(b);
  tm.rebuild_allocator(live);

  std::printf("after crash: %zu jobs pending, %zu completed\n", rqueue.size_slow(),
              rresults.size_slow());

  // Drain the rest with a fresh worker.
  word_t job = 0;
  while (rqueue.dequeue(0, &job)) rresults.insert(0, job, job * job);

  // Exactly-once check for every job that was durably enqueued: present
  // with the right result, or never enqueued at all (producer died before
  // its enqueue was acknowledged — those jobs were never visible).
  std::size_t done = 0, wrong = 0;
  for (word_t j = 1; j <= kJobs; ++j) {
    word_t v = 0;
    if (rresults.contains(0, j, &v)) {
      ++done;
      if (v != j * j) ++wrong;
    }
  }
  std::printf("completed %zu jobs, %zu with corrupted results\n", done, wrong);
  // Results present exactly once by construction of the hashmap (insert
  // rejects duplicates; a double-processed job would have tripped it).
  const bool ok = wrong == 0 && rqueue.size_slow() == 0 && done > 0;
  std::printf("exactly-once across power failure: %s\n", ok ? "verified" : "FAILED");
  return ok ? 0 : 1;
}
