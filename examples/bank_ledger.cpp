// A concurrent durable bank ledger: the canonical TM workload.
//
// N threads transfer money between accounts while auditors verify, inside
// transactions, that the total balance is conserved — demonstrating
// opacity (auditors never see a torn transfer) and multi-word atomicity.
// Run with a TM name to compare systems:
//
//   $ ./examples/bank_ledger            # NV-HALT
//   $ ./examples/bank_ledger SPHT
//   $ ./examples/bank_ledger Trinity
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/tm_factory.hpp"
#include "util/rng.hpp"

using namespace nvhalt;

int main(int argc, char** argv) {
  RunnerConfig cfg;
  cfg.kind = argc > 1 ? tm_kind_from_string(argv[1]) : TmKind::kNvHalt;
  cfg.pmem.capacity_words = 1 << 20;
  TmRunner runner(cfg);
  TransactionalMemory& tm = runner.tm();

  constexpr std::size_t kAccounts = 256;
  constexpr word_t kInitialBalance = 1000;
  constexpr word_t kTotal = kAccounts * kInitialBalance;
  const gaddr_t accounts = runner.alloc().raw_alloc_large(kAccounts);

  // Seed the ledger in one durable transaction.
  tm.run(0, [&](Tx& tx) {
    for (std::size_t i = 0; i < kAccounts; ++i) tx.write(accounts + i, kInitialBalance);
  });

  constexpr int kTellers = 3;
  constexpr int kTransfersPerTeller = 2000;
  std::atomic<std::uint64_t> audits{0}, audit_failures{0}, rejected{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kTellers; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7 + 1);
      for (int i = 0; i < kTransfersPerTeller; ++i) {
        const gaddr_t from = accounts + rng.next_bounded(kAccounts);
        const gaddr_t to = accounts + rng.next_bounded(kAccounts);
        const word_t amount = 1 + rng.next_bounded(50);
        const bool ok = tm.run(t, [&](Tx& tx) {
          const word_t balance = tx.read(from);
          if (balance < amount) tx.abort();  // insufficient funds
          tx.write(from, balance - amount);
          tx.write(to, tx.read(to) + amount);
        });
        if (!ok) rejected.fetch_add(1);
      }
    });
  }
  // Auditor thread: full-ledger sums inside transactions.
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      word_t sum = 0;
      tm.run(kTellers, [&](Tx& tx) {
        sum = 0;
        for (std::size_t a = 0; a < kAccounts; ++a) sum += tx.read(accounts + a);
      });
      audits.fetch_add(1);
      if (sum != kTotal) audit_failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();

  word_t final_total = 0;
  tm.run(0, [&](Tx& tx) {
    final_total = 0;  // body may be re-executed on abort
    for (std::size_t a = 0; a < kAccounts; ++a) final_total += tx.read(accounts + a);
  });

  const TmStats s = tm.stats();
  std::printf("%s ledger: %d transfers/teller x %d tellers, %llu rejected (insufficient)\n",
              tm.name(), kTransfersPerTeller, kTellers,
              static_cast<unsigned long long>(rejected.load()));
  std::printf("audits: %llu, inconsistent snapshots observed: %llu\n",
              static_cast<unsigned long long>(audits.load()),
              static_cast<unsigned long long>(audit_failures.load()));
  std::printf("final total: %llu (expected %llu)\n",
              static_cast<unsigned long long>(final_total),
              static_cast<unsigned long long>(kTotal));
  std::printf("paths: %llu hw commits, %llu sw commits, %llu hw aborts\n",
              static_cast<unsigned long long>(s.hw_commits),
              static_cast<unsigned long long>(s.sw_commits),
              static_cast<unsigned long long>(s.hw_aborts));
  return (final_total == kTotal && audit_failures.load() == 0) ? 0 : 1;
}
