// Reusable sense-reversing spin barrier for benchmark thread coordination.
#pragma once

#include <atomic>

#include "util/common.hpp"

namespace nvhalt {

/// A reusable barrier for a fixed number of participants. All participants
/// must call arrive_and_wait() the same number of times.
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants);

  /// Blocks until all participants have arrived at this phase.
  void arrive_and_wait();

  int participants() const { return participants_; }

 private:
  const int participants_;
  std::atomic<int> count_;
  std::atomic<int> sense_{0};
};

}  // namespace nvhalt
