#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace nvhalt {

int visible_cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool pin_thread_round_robin(int thread_id) {
#if defined(__linux__)
  const int ncpu = visible_cpu_count();
  if (ncpu <= 1) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(thread_id % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)thread_id;
  return false;
#endif
}

}  // namespace nvhalt
