#include "util/barrier.hpp"

#include <thread>

namespace nvhalt {

SpinBarrier::SpinBarrier(int participants) : participants_(participants), count_(participants) {
  if (participants <= 0) throw TmLogicError("SpinBarrier requires at least one participant");
}

void SpinBarrier::arrive_and_wait() {
  const int my_sense = sense_.load(std::memory_order_acquire);
  if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    count_.store(participants_, std::memory_order_relaxed);
    sense_.store(my_sense + 1, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (sense_.load(std::memory_order_acquire) == my_sense) {
    if (++spins < 128) {
      cpu_relax();
    } else {
      // On oversubscribed machines (this container exposes a single CPU)
      // yielding is essential for forward progress.
      std::this_thread::yield();
    }
  }
}

}  // namespace nvhalt
