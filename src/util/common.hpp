// Common definitions shared across all NV-HALT modules.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace nvhalt {

/// Maximum number of worker threads supported by the runtime. Fixed at
/// compile time so that per-thread conflict-table reader masks and the
/// persistent per-thread version-number array have a static layout.
inline constexpr int kMaxThreads = 128;

/// Simulated cache-line size, in bytes. Matches x86.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Number of 8-byte words per simulated cache line.
inline constexpr std::size_t kWordsPerLine = kCacheLineBytes / sizeof(std::uint64_t);

/// Global address: a word index into the persistent pool. 0 is reserved
/// as the null address (the pool never hands out word 0).
using gaddr_t = std::uint64_t;
inline constexpr gaddr_t kNullAddr = 0;

/// A value stored in one transactional word.
using word_t = std::uint64_t;

/// Thrown on unrecoverable misuse of the library (programming errors).
class TmLogicError : public std::logic_error {
 public:
  explicit TmLogicError(const std::string& what) : std::logic_error(what) {}
};

/// Aligns a type to a cache line to avoid (simulated and real) false sharing.
template <typename T>
struct alignas(kCacheLineBytes) CacheLinePadded {
  T value{};
};

/// Branch prediction hints.
#if defined(__GNUC__)
#define NVHALT_LIKELY(x) __builtin_expect(!!(x), 1)
#define NVHALT_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define NVHALT_LIKELY(x) (x)
#define NVHALT_UNLIKELY(x) (x)
#endif

/// CPU relax for spin loops.
inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace nvhalt
