// Minimal non-owning callable reference (avoids std::function allocation on
// the transaction hot path). The referenced callable must outlive the call.
#pragma once

#include <type_traits>
#include <utility>

namespace nvhalt {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): intentional, mirrors std::function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace nvhalt
