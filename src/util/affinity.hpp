// Thread pinning helper. On the paper's 2-socket machine threads are pinned
// socket-2-first; here we pin round-robin over whatever CPUs exist (a no-op
// on a single-CPU container) so the policy is preserved where it can be.
#pragma once

namespace nvhalt {

/// Pins the calling thread to a CPU chosen round-robin by thread id.
/// Returns false (without failing) if pinning is unsupported or the
/// system exposes a single CPU.
bool pin_thread_round_robin(int thread_id);

/// Number of CPUs visible to this process.
int visible_cpu_count();

}  // namespace nvhalt
