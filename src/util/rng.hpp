// xoshiro256** pseudo-random generator: fast, high-quality, seedable.
// Used by workloads, the spurious-abort injector and the crash adversary.
#pragma once

#include <cstdint>

namespace nvhalt {

/// Deterministic, seedable PRNG (xoshiro256**). Not thread-safe; use one
/// instance per thread.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Returns the next 64-bit pseudo-random value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t next_bounded(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace nvhalt
