// Zipfian key-distribution generator (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases"). The paper's evaluation uses uniform
// keys; the benchmark harness additionally supports a skewed distribution
// as an extension to probe contention sensitivity.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace nvhalt {

class ZipfGenerator {
 public:
  /// Generates values in [0, n) with skew theta (0 = uniform-ish limit,
  /// 0.99 = the YCSB default).
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next() {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    // Exact for small n, sampled + extrapolated for large n (the harness
    // uses ranges up to 2^20; exact summation there costs ~ms once).
    for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  Xoshiro256 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace nvhalt
