#include "telemetry/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "htm/htm_types.hpp"

namespace nvhalt::telemetry {

namespace {

bool kind_from_name(const std::string& name, EventKind& out) {
  for (int k = 0; k < static_cast<int>(EventKind::kNumKinds); ++k) {
    if (name == event_kind_name(static_cast<EventKind>(k))) {
      out = static_cast<EventKind>(k);
      return true;
    }
  }
  return false;
}

bool cause_from_name(const std::string& name, std::uint8_t& out) {
  if (name == "-") {
    out = 0xFF;
    return true;
  }
  for (std::uint8_t c = 0; c < static_cast<std::uint8_t>(htm::AbortCause::kNumCauses); ++c) {
    if (name == htm::abort_cause_name(static_cast<htm::AbortCause>(c))) {
      out = c;
      return true;
    }
  }
  return false;
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::uint64_t TraceDump::total_events() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.events.size();
  return n;
}

std::uint64_t TraceDump::total_dropped() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.dropped;
  return n;
}

TraceDump collect_trace_dump() {
  TraceDump dump;
  if constexpr (kLevel >= 1) {
    dump.ticks_per_us = calibrate_ticks_per_us();
    dump.threads = TraceBuffer::instance().collect();
  }
  return dump;
}

void write_raw_trace(std::ostream& os, const TraceDump& dump) {
  os << "# nvhalt-trace-v1 level=" << dump.level
     << " ticks_per_us=" << dump.ticks_per_us << "\n";
  for (const ThreadTrace& t : dump.threads) {
    os << "# ring tid=" << t.tid << " pushed=" << t.pushed
       << " dropped=" << t.dropped << " capacity=" << t.capacity << "\n";
    for (const TraceEvent& e : t.events) {
      os << e.ticks << ' ' << event_kind_name(e.kind) << ' ' << e.tid << ' '
         << e.arg << ' ';
      if (e.kind == EventKind::kHwAbort &&
          e.cause < static_cast<std::uint8_t>(htm::AbortCause::kNumCauses)) {
        os << htm::abort_cause_name(static_cast<htm::AbortCause>(e.cause));
      } else {
        os << '-';
      }
      os << '\n';
    }
  }
}

bool read_raw_trace(std::istream& is, TraceDump& dump, std::string* err) {
  const auto fail = [&](const std::string& msg) {
    if (err) *err = msg;
    return false;
  };
  dump = TraceDump{};
  dump.threads.clear();

  std::string line;
  if (!std::getline(is, line)) return fail("empty input");
  {
    std::istringstream hs(line);
    std::string hash, magic, level_kv, tpu_kv;
    hs >> hash >> magic >> level_kv >> tpu_kv;
    if (hash != "#" || magic != "nvhalt-trace-v1" ||
        level_kv.rfind("level=", 0) != 0 || tpu_kv.rfind("ticks_per_us=", 0) != 0)
      return fail("bad header: " + line);
    dump.level = std::stoi(level_kv.substr(6));
    dump.ticks_per_us = std::stod(tpu_kv.substr(13));
  }

  ThreadTrace* cur = nullptr;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line);
      std::string hash, tag, tid_kv, pushed_kv, dropped_kv, cap_kv;
      hs >> hash >> tag >> tid_kv >> pushed_kv >> dropped_kv >> cap_kv;
      if (tag != "ring" || tid_kv.rfind("tid=", 0) != 0 ||
          pushed_kv.rfind("pushed=", 0) != 0 || dropped_kv.rfind("dropped=", 0) != 0)
        return fail("bad ring header at line " + std::to_string(lineno));
      ThreadTrace t;
      t.tid = std::stoi(tid_kv.substr(4));
      t.pushed = std::stoull(pushed_kv.substr(7));
      t.dropped = std::stoull(dropped_kv.substr(8));
      // capacity= is optional (pre-v1.1 dumps lack it); when present,
      // dropped counts stay reconstructible from pushed and ring size.
      if (cap_kv.rfind("capacity=", 0) == 0) t.capacity = std::stoull(cap_kv.substr(9));
      dump.threads.push_back(std::move(t));
      cur = &dump.threads.back();
      continue;
    }
    if (!cur) return fail("event before any ring header at line " + std::to_string(lineno));
    std::istringstream es(line);
    std::string kind_name, cause_name;
    TraceEvent e;
    unsigned tid = 0;
    if (!(es >> e.ticks >> kind_name >> tid >> e.arg >> cause_name))
      return fail("malformed event at line " + std::to_string(lineno));
    e.tid = static_cast<std::uint16_t>(tid);
    if (!kind_from_name(kind_name, e.kind))
      return fail("unknown event kind '" + kind_name + "' at line " + std::to_string(lineno));
    if (!cause_from_name(cause_name, e.cause))
      return fail("unknown abort cause '" + cause_name + "' at line " + std::to_string(lineno));
    cur->events.push_back(e);
  }
  return true;
}

void write_chrome_trace(std::ostream& os, const TraceDump& dump) {
  const double tpu = dump.ticks_per_us > 0.0 ? dump.ticks_per_us : 1.0;
  std::uint64_t min_ticks = ~std::uint64_t{0};
  for (const ThreadTrace& t : dump.threads)
    for (const TraceEvent& e : t.events) min_ticks = std::min(min_ticks, e.ticks);
  if (dump.total_events() == 0) min_ticks = 0;

  const auto ts_us = [&](std::uint64_t ticks) {
    return static_cast<double>(ticks - min_ticks) / tpu;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const ThreadTrace& t : dump.threads) {
    // One open transaction per tid at a time: the retry loop is
    // strictly nested, so a simple begin-ticks latch pairs events.
    bool open = false;
    std::uint64_t begin_ticks = 0;
    for (const TraceEvent& e : t.events) {
      switch (e.kind) {
        case EventKind::kTxBegin:
          open = true;
          begin_ticks = e.ticks;
          break;
        case EventKind::kHwCommit:
        case EventKind::kSwCommit:
        case EventKind::kUserAbort: {
          const char* name = e.kind == EventKind::kHwCommit ? "tx(hw)"
                             : e.kind == EventKind::kSwCommit ? "tx(sw)"
                                                              : "tx(user-abort)";
          if (open) {
            comma();
            os << "{\"name\":\"" << name << "\",\"cat\":\"tm\",\"ph\":\"X\",\"ts\":"
               << ts_us(begin_ticks) << ",\"dur\":" << ts_us(e.ticks) - ts_us(begin_ticks)
               << ",\"pid\":0,\"tid\":" << t.tid << ",\"args\":{\"arg\":" << e.arg
               << "}}";
            open = false;
          }
          break;
        }
        default: {
          comma();
          os << "{\"name\":\"";
          json_escape(os, event_kind_name(e.kind));
          os << "\",\"cat\":\"tm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us(e.ticks)
             << ",\"pid\":0,\"tid\":" << t.tid << ",\"args\":{\"arg\":" << e.arg;
          if (e.kind == EventKind::kHwAbort &&
              e.cause < static_cast<std::uint8_t>(htm::AbortCause::kNumCauses)) {
            os << ",\"cause\":\"";
            json_escape(os, htm::abort_cause_name(static_cast<htm::AbortCause>(e.cause)));
            os << "\"";
          }
          if (e.kind == EventKind::kLockStall) {
            // arg packs stripe << 48 | wait ticks — surface both so the
            // viewer can group stalls by contended stripe.
            os << ",\"stripe\":" << (e.arg >> 48)
               << ",\"wait_ticks\":" << (e.arg & ((std::uint64_t{1} << 48) - 1));
          }
          os << "}}";
          break;
        }
      }
    }
  }
  os << "]}";
}

bool write_raw_trace_file(const std::string& path, const TraceDump& dump) {
  std::ofstream os(path);
  if (!os) return false;
  write_raw_trace(os, dump);
  return static_cast<bool>(os);
}

bool write_chrome_trace_file(const std::string& path, const TraceDump& dump) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, dump);
  return static_cast<bool>(os);
}

}  // namespace nvhalt::telemetry
