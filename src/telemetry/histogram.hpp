// Power-of-two-bucket histograms for the telemetry layer.
//
// Bucket b of a PowHistogram counts values v with bit_width(v) == b, i.e.
// bucket 0 holds exactly {0} and bucket b >= 1 holds [2^(b-1), 2^b - 1].
// Recording is one increment plus a bit scan — cheap enough to stay on at
// telemetry level 0 (the "counters only" level) — and merging is a
// bucket-wise add, so per-thread instances aggregate exactly like the
// existing TmThreadStats counters: written by the owning thread, merged at
// quiescent points (stats()/telemetry() snapshots).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace nvhalt::telemetry {

class PowHistogram {
 public:
  /// bit_width of a u64 is in [0, 64]: 65 buckets cover every value.
  static constexpr int kBuckets = 65;

  static int bucket_of(std::uint64_t v) { return std::bit_width(v); }

  /// Inclusive upper bound of bucket b (the Prometheus `le` label).
  static std::uint64_t bucket_upper_bound(int b) {
    if (b <= 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) {
    counts_[static_cast<std::size_t>(bucket_of(v))]++;
    ++count_;
    sum_ += v;
  }

  void add(const PowHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[static_cast<std::size_t>(b)] += o.counts_[static_cast<std::size_t>(b)];
    count_ += o.count_;
    sum_ += o.sum_;
  }

  void reset() { *this = PowHistogram{}; }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t bucket_count(int b) const { return counts_[static_cast<std::size_t>(b)]; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }

  /// Upper bound of the first bucket whose cumulative count reaches
  /// `fraction` of the total (0 when empty). An upper estimate of the
  /// quantile, exact to within one power of two.
  std::uint64_t quantile_bound(double fraction) const {
    if (count_ == 0) return 0;
    const double target = fraction * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += counts_[static_cast<std::size_t>(b)];
      if (static_cast<double>(cum) >= target) return bucket_upper_bound(b);
    }
    return bucket_upper_bound(kBuckets - 1);
  }

  /// Index one past the last non-empty bucket (0 when empty); bounds the
  /// work of exporters.
  int used_buckets() const {
    int hi = 0;
    for (int b = 0; b < kBuckets; ++b)
      if (counts_[static_cast<std::size_t>(b)] != 0) hi = b + 1;
    return hi;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace nvhalt::telemetry
