// Persistent flight recorder: per-thread, NVM-resident rings of compact
// lifecycle records that survive crash(), so every enumerated crash image
// carries an explanation of what was in flight.
//
// Layout (carved from the PmemPool raw region, like CheckpointManager):
// one header line, then kMaxThreads rings of fixed-size two-word slots,
// each ring padded to whole cache lines. A slot is
//
//   w0 = seq[63:32] | kind[31:24] | cause[23:16] | arg[15:0]
//   w1 = mix64(w0 ^ salt)        (checksum)
//
// Slots are two-word aligned within a line (4 slots/line), so a slot never
// straddles a cache line and the pool's x86 same-line store-order prefix
// guarantee applies: on crash, w1 can only be durable if w0 is. A record is
// written through the journal-ordered raw-op path (two journaled raw
// stores + one line flush, NO fence — the record rides the owning thread's
// next protocol fence), so the crash-prefix enumerator places boundaries
// inside recorder writes like anywhere else. The enumerable failure modes
// and their decode rules:
//
//   * all-zero slot        -> empty (never written), skipped silently
//   * w1 != mix64(w0^salt) -> torn (crash between the slot's stores, or a
//                             wrapped overwrite caught mid-line), counted
//                             and skipped — recovery NEVER fails on it
//   * checksum valid       -> decoded; per-thread records sort by seq
//
// Crash-consistency of the recorder itself (DESIGN.md Sec. 14): records
// are advisory, never load-bearing — recovery correctness does not read
// them; the postmortem pass only *reports*. Torn tails therefore cost
// information, not safety.
//
// Level gating: the raw-region reservation depends only on the runtime
// `flight_recorder` config flag (layout is telemetry-level independent, so
// crash bundles replay across build levels), but record() compiles to
// nothing below NVHALT_TELEMETRY >= 1 — a level-0 build pays zero stores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmem/pmem_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/common.hpp"

namespace nvhalt::telemetry {

/// One decoded flight-recorder record.
struct FrEvent {
  std::uint32_t seq = 0;
  EventKind kind = EventKind::kNumKinds;
  std::uint8_t cause = 0xFF;
  std::uint16_t arg = 0;
};

/// Reconstructed "in flight at crash" state of one thread.
struct FrThreadPostmortem {
  int tid = 0;
  std::uint32_t valid = 0;        ///< checksum-verified records decoded
  std::uint32_t torn = 0;         ///< nonzero slots failing the checksum
  std::uint32_t last_seq = 0;     ///< highest decoded sequence number
  bool open_tx = false;           ///< last kTxBegin had no commit/user-abort
  std::uint16_t held_locks = 0;   ///< lock lines acquired in the open tx
  std::uint32_t pending_fence = 0;///< records since the thread's last kFence
  std::uint8_t last_cause = 0xFF; ///< cause byte of the latest caused record
  std::vector<FrEvent> events;    ///< decoded records, oldest first
};

struct PostmortemReport {
  bool header_valid = false;
  int threads = 0;
  std::uint32_t slots_per_thread = 0;
  std::uint64_t total_valid = 0;
  std::uint64_t total_torn = 0;
  std::vector<FrThreadPostmortem> per_thread;  ///< only threads with records

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

/// Text round-trip for tools/postmortem and crash_sweep artifacts
/// (format: "# nvhalt-postmortem-v1 ..." header, "# thread ..." sections,
/// "<seq> <kind> <cause|-> <arg>" record lines).
std::string serialize_postmortem(const PostmortemReport& r, const char* tm_name);
bool parse_postmortem(const std::string& text, PostmortemReport& out,
                      std::string* tm_name = nullptr, std::string* err = nullptr);

/// Chrome-trace bridge: postmortem records as a TraceDump (ticks = seq,
/// ticks_per_us = 1) so trace_io::write_chrome_trace renders it unchanged.
std::vector<ThreadTrace> postmortem_to_traces(const PostmortemReport& r);

class FlightRecorder {
 public:
  static constexpr std::uint32_t kDefaultSlots = 64;  // per thread; 16 lines

  /// Reserves the recorder region from the pool's raw space and durably
  /// seeds the header — unless the pool attached to an existing image, in
  /// which case postmortem()/on_recover() adopt the durable state.
  explicit FlightRecorder(PmemPool& pool, std::uint32_t slots_per_thread = kDefaultSlots);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Raw persistent words the recorder reserves (header line + kMaxThreads
  /// line-padded rings). Pool sizing adds this to raw-word budgets when the
  /// recorder is enabled; disabled configurations keep a byte-identical
  /// layout.
  static std::size_t metadata_words(std::uint32_t slots_per_thread = kDefaultSlots);

  /// Appends one record to `tid`'s ring: two journaled raw stores plus a
  /// line flush on tid's own queue; durability rides the thread's next
  /// protocol fence. Compiles to nothing below telemetry level 1.
  void record(int tid, EventKind kind, std::uint8_t cause = 0xFF,
              std::uint16_t arg = 0) {
    if constexpr (kLevel >= 1) {
      record_impl(tid, kind, cause, arg);
    } else {
      (void)tid; (void)kind; (void)cause; (void)arg;
    }
  }

  /// Quiescent postmortem decode of the *durable* image: validates the
  /// header and every slot checksum, skips torn slots, reconstructs
  /// per-thread in-flight state. Read-only — safe to call before recovery
  /// mutates anything.
  PostmortemReport postmortem() const;

  /// Post-recovery adoption: reseeds the volatile cursors past the highest
  /// durable record of each ring (so new records never collide with decoded
  /// history), rewrites an invalid header, and stamps a kRecovery record on
  /// behalf of `rtid`, fenced durably.
  void on_recover(int rtid);

  std::uint32_t slots_per_thread() const { return slots_; }
  /// Raw index of the recorder region (PmemInspector).
  std::size_t base_raw_index() const { return base_; }

 private:
  static constexpr std::uint64_t kMagic = 0x46524543;  // "FREC"
  static constexpr std::uint64_t kSalt = 0x9E3779B97F4A7C15ULL;

  static std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
  }
  static std::uint64_t pack_header(std::uint32_t slots) {
    return (kMagic << 32) | (static_cast<std::uint64_t>(kMaxThreads) << 16) | slots;
  }
  static std::uint64_t pack_slot(std::uint32_t seq, EventKind kind,
                                 std::uint8_t cause, std::uint16_t arg) {
    return (static_cast<std::uint64_t>(seq) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 24) |
           (static_cast<std::uint64_t>(cause) << 16) | arg;
  }
  static std::uint64_t checksum(std::uint64_t w0) { return mix64(w0 ^ kSalt); }

  std::size_t ring_words() const;  // per-thread, line-padded
  std::size_t thread_base(int tid) const {
    return base_ + kWordsPerLine + static_cast<std::size_t>(tid) * ring_words();
  }

  void record_impl(int tid, EventKind kind, std::uint8_t cause, std::uint16_t arg);

  PmemPool& pool_;
  std::uint32_t slots_;
  std::size_t base_;  // raw index: header line

  /// Volatile write cursors, one per registry slot; each is written only by
  /// its owning thread (on_recover reseeds quiescently).
  struct alignas(kCacheLineBytes) Cursor {
    std::uint32_t seq = 1;  // 0 marks an empty slot, so sequences start at 1
    std::uint32_t pos = 0;
  };
  std::unique_ptr<Cursor[]> cur_;
};

}  // namespace nvhalt::telemetry
