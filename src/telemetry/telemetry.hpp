// Transaction lifecycle tracing: per-thread lock-free rings of fixed-size
// events, gated by the compile-time NVHALT_TELEMETRY level.
//
// Levels (set -DNVHALT_TELEMETRY=<n> at configure time):
//   0  counters only (default). trace1/trace2 compile to nothing; the
//      taxonomy and histograms in TxThreadState stay live (they are plain
//      per-thread increments, same cost class as TmThreadStats).
//   1  lifecycle events: tx begin, hw attempt, decoded abort cause,
//      fallback transition, sw validation/extension, lock acquire/stall,
//      commit, flush-enqueue, fence, durability ack.
//   2  additionally per-access events (every transactional read/write).
//
// TraceRing is single-producer (the owning thread) / any-reader. A slot is
// three relaxed u64 stores (packed meta, arg, timestamp) published by a
// release store of the head counter; a separate started counter is bumped
// before the slot stores. Readers copy the published suffix, then re-read
// the started counter and drop any entry a push started in the meantime may
// have overwritten (including the producer's one in-flight, not-yet-
// published push), so snapshots are torn-free without ever blocking the
// producer. The counters never wrap — `pushed() - capacity` is the exact
// number of dropped (overwritten) events.
#pragma once

#ifndef NVHALT_TELEMETRY
#define NVHALT_TELEMETRY 0
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/common.hpp"

namespace nvhalt::telemetry {

inline constexpr int kLevel = NVHALT_TELEMETRY;

/// Cycle-granularity timestamps: rdtsc where available, steady_clock
/// nanoseconds otherwise. Only relative values within one process run are
/// meaningful; trace_io calibrates ticks-per-microsecond at dump time.
inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Measures ticks per microsecond against steady_clock over ~2 ms. Used by
/// exporters only — never on a transaction path.
double calibrate_ticks_per_us();

enum class EventKind : std::uint8_t {
  kTxBegin = 0,     // arg: 0
  kHwAttempt,       // arg: attempt index within this transaction
  kHwAbort,         // cause field set; arg: abort code (htm::HtmAbort::code)
  kHwCommit,        // arg: 0
  kFallback,        // arg: hw attempts consumed before falling back
  kSwAttempt,       // arg: sw retry index
  kSwValidate,      // arg: read-set size validated
  kSwExtend,        // arg: new snapshot (rv after extension)
  kSwAbort,         // arg: 0
  kSwCommit,        // arg: sw retries consumed before the commit
  kUserAbort,       // arg: 0
  kLockAcquire,     // arg: locks acquired
  kLockStall,       // arg: stripe id << 48 | ticks spent waiting (low 48)
  kFlushEnqueue,    // arg: line index enqueued
  kFence,           // arg: unique lines written back
  kDurabilityAck,   // arg: ticks from commit to durability
  kRoAttempt,       // arg: attempt index within the read-only fast path
  kRoCommit,        // arg: unique lock lines validated
  kRoAbort,         // cause field holds RoAbortCause; arg: 0
  kCheckpoint,      // arg: checkpoint generation (flight recorder)
  kAllocArm,        // arg: armed intent records (flight recorder)
  kAllocApply,      // arg: applied intent records (flight recorder)
  kRecovery,        // arg: 0; first record after a postmortem decode
  kRead,            // level 2; arg: gaddr
  kWrite,           // level 2; arg: gaddr
  kNumKinds
};

const char* event_kind_name(EventKind k);

/// One decoded ring slot. `cause` is only meaningful for kHwAbort (it holds
/// htm::AbortCause as a raw byte); 0xFF elsewhere.
struct TraceEvent {
  std::uint64_t ticks = 0;
  std::uint64_t arg = 0;
  EventKind kind = EventKind::kNumKinds;
  std::uint8_t cause = 0xFF;
  std::uint16_t tid = 0;
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  // power of two

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Producer side (owning thread only). `started_` is bumped (with a
  /// release fence) *before* the slot stores and `head_` only after, so a
  /// reader that observed any of this push's slot words will also observe
  /// the started counter covering it — that is what lets snapshot() discard
  /// exactly the slots an in-flight push may be scribbling, instead of
  /// guessing from the published head alone.
  void push(EventKind kind, std::uint8_t cause, std::uint16_t tid,
            std::uint64_t arg, std::uint64_t ticks) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    started_.store(h + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    const std::size_t base = (static_cast<std::size_t>(h) & mask_) * kWordsPerSlot;
    slots_[base + 0].store(pack_meta(kind, cause, tid), std::memory_order_relaxed);
    slots_[base + 1].store(arg, std::memory_order_relaxed);
    slots_[base + 2].store(ticks, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  void push(EventKind kind, std::uint16_t tid, std::uint64_t arg) {
    push(kind, 0xFF, tid, arg, now_ticks());
  }

  std::size_t capacity() const { return mask_ + 1; }
  /// Total events ever pushed (monotonic).
  std::uint64_t pushed() const { return head_.load(std::memory_order_acquire); }
  /// Events overwritten before any snapshot could see them.
  std::uint64_t dropped() const {
    const std::uint64_t h = pushed();
    return h > capacity() ? h - capacity() : 0;
  }

  /// Torn-free copy of the surviving suffix, oldest first. Safe to call
  /// concurrently with push; entries the producer overwrote during the copy
  /// are discarded.
  std::vector<TraceEvent> snapshot() const;

  /// Producer-quiescent reset (tests and measured-window boundaries).
  void clear() {
    started_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kWordsPerSlot = 3;

  static std::uint64_t pack_meta(EventKind kind, std::uint8_t cause, std::uint16_t tid) {
    return static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) |
           (static_cast<std::uint64_t>(cause) << 8) |
           (static_cast<std::uint64_t>(tid) << 16);
  }
  static void unpack_meta(std::uint64_t meta, TraceEvent& ev) {
    ev.kind = static_cast<EventKind>(meta & 0xFF);
    ev.cause = static_cast<std::uint8_t>((meta >> 8) & 0xFF);
    ev.tid = static_cast<std::uint16_t>((meta >> 16) & 0xFFFF);
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::size_t mask_;
  /// Pushes published (slot words complete) / pushes started (slot words
  /// possibly in flight). started_ >= head_ always; equal when quiescent.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> started_{0};
};

/// Everything one ring held at snapshot time. `capacity` is carried so a
/// saved trace alone can reconstruct dropped() (= pushed - capacity when
/// positive) without knowing the build's ring size.
struct ThreadTrace {
  int tid = 0;
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t capacity = 0;
  std::vector<TraceEvent> events;
};

/// Process-wide table of per-tid rings, one cache-line-padded ring per pool
/// tid. Rings are tid-indexed, not TM-indexed: tids are dense pool slots,
/// and the harness/bench drivers run one TM at a time, so a tid's ring holds
/// that thread's interleaved lifecycle. Each ring still has exactly one
/// producer (the thread registered at that tid), which is all TraceRing
/// requires.
class TraceBuffer {
 public:
  static TraceBuffer& instance();

  TraceRing& ring(int tid) { return rings_[static_cast<std::size_t>(tid)].value; }

  /// Snapshot every non-empty ring, ordered by tid.
  std::vector<ThreadTrace> collect() const;

  /// Producer-quiescent reset of all rings.
  void clear();

 private:
  TraceBuffer();
  struct alignas(kCacheLineBytes) PaddedRing {
    TraceRing value;
  };
  std::unique_ptr<PaddedRing[]> rings_;
};

/// Level-1 lifecycle hook: compiles to nothing below level 1.
inline void trace1(EventKind kind, int tid, std::uint64_t arg = 0,
                   std::uint8_t cause = 0xFF) {
  if constexpr (kLevel >= 1) {
    TraceBuffer::instance().ring(tid).push(kind, cause,
                                           static_cast<std::uint16_t>(tid), arg,
                                           now_ticks());
  } else {
    (void)kind; (void)tid; (void)arg; (void)cause;
  }
}

/// Level-2 per-access hook: compiles to nothing below level 2.
inline void trace2(EventKind kind, int tid, std::uint64_t arg = 0) {
  if constexpr (kLevel >= 2) {
    TraceBuffer::instance().ring(tid).push(kind, 0xFF,
                                           static_cast<std::uint16_t>(tid), arg,
                                           now_ticks());
  } else {
    (void)kind; (void)tid; (void)arg;
  }
}

}  // namespace nvhalt::telemetry
