// Per-thread telemetry counters folded into runtime::TxThreadState and the
// aggregated per-TM view returned by TransactionalMemory::telemetry().
//
// Everything here is live at every NVHALT_TELEMETRY level (these are the
// "counters only" of level 0): plain per-thread increments with the same
// ownership discipline as TmThreadStats — written only by the owning
// thread, merged at quiescent points.
#pragma once

#include <array>
#include <cstdint>

#include "htm/htm_types.hpp"
#include "telemetry/histogram.hpp"

namespace nvhalt::telemetry {

inline constexpr std::size_t kNumAbortCauses =
    static_cast<std::size_t>(htm::AbortCause::kNumCauses);

/// Why a read-only fast-path attempt ended without committing:
///   kRoValidation — a snapshot/lock-word validation failed (either RO
///                   engine), including hardware conflict aborts of an RO
///                   attempt;
///   kRoDemotion   — the body wrote/allocated/freed, so the attempt was
///                   abandoned and the transaction rerouted to the general
///                   path.
enum class RoAbortCause : std::uint8_t { kRoValidation = 0, kRoDemotion, kNumCauses };

inline constexpr std::size_t kNumRoAbortCauses =
    static_cast<std::size_t>(RoAbortCause::kNumCauses);

const char* ro_abort_cause_name(RoAbortCause c);

/// Hardware aborts decoded by htm::AbortCause, read-only fast-path aborts
/// decoded by RoAbortCause, plus the software-path and user abort tallies,
/// in one place. The invariants the metrics exporters and bench_regress
/// --check enforce: sum(hw_by_cause) == TmThreadStats::hw_aborts and
/// sum(ro_by_cause) == TmThreadStats::ro_aborts, exactly — each pair is
/// bumped by a single TxThreadState call site (record_hw_abort /
/// record_ro_abort).
struct AbortTaxonomy {
  std::array<std::uint64_t, kNumAbortCauses> hw_by_cause{};
  std::array<std::uint64_t, kNumRoAbortCauses> ro_by_cause{};
  std::uint64_t sw_aborts = 0;
  std::uint64_t user_aborts = 0;

  std::uint64_t hw_total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : hw_by_cause) t += c;
    return t;
  }

  std::uint64_t ro_total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : ro_by_cause) t += c;
    return t;
  }

  void add(const AbortTaxonomy& o) {
    for (std::size_t i = 0; i < hw_by_cause.size(); ++i) hw_by_cause[i] += o.hw_by_cause[i];
    for (std::size_t i = 0; i < ro_by_cause.size(); ++i) ro_by_cause[i] += o.ro_by_cause[i];
    sw_aborts += o.sw_aborts;
    user_aborts += o.user_aborts;
  }

  void reset() { *this = AbortTaxonomy{}; }
};

/// Per-thread telemetry block. Latencies are in now_ticks() units (rdtsc
/// cycles on x86); sizes are in words/lines as noted.
struct TxTelemetry {
  AbortTaxonomy taxonomy;
  PowHistogram tx_latency_hw;    // ticks, hardware-path commits
  PowHistogram tx_latency_sw;    // ticks, software-path commits
  PowHistogram write_set_size;   // words logged/persisted per committed tx
  PowHistogram ack_latency;      // ticks from commit to durability ack

  void add(const TxTelemetry& o) {
    taxonomy.add(o.taxonomy);
    tx_latency_hw.add(o.tx_latency_hw);
    tx_latency_sw.add(o.tx_latency_sw);
    write_set_size.add(o.write_set_size);
    ack_latency.add(o.ack_latency);
  }

  void reset() {
    taxonomy.reset();
    tx_latency_hw.reset();
    tx_latency_sw.reset();
    write_set_size.reset();
    ack_latency.reset();
  }
};

/// Readable snapshot of one thread's AdaptiveBudget controller window
/// (satellite: the budget and window abort rate used to be private and
/// untestable from benches).
struct AdaptiveSnapshot {
  bool enabled = false;
  int current_budget = 0;
  std::uint64_t window_attempts = 0;
  std::uint64_t window_aborts = 0;
  double window_abort_rate = 0.0;
  // Read-only routing signal (RoPolicy window; see AdaptiveBudget).
  bool ro_enabled = false;
  std::uint64_t ro_window_attempts = 0;
  std::uint64_t ro_window_aborts = 0;
  double ro_window_abort_rate = 0.0;
  /// Eligible transactions still being routed normally after a storm.
  int ro_suspended = 0;
};

/// Aggregated (all registered threads) telemetry for one TM instance, as
/// returned by TransactionalMemory::telemetry(). `adaptive` holds the
/// worst-case (minimum-budget) thread's window: with the controller
/// per-thread, the minimum is the view that explains fallback pressure.
struct TmTelemetry {
  TxTelemetry tx;
  AdaptiveSnapshot adaptive;
};

}  // namespace nvhalt::telemetry
