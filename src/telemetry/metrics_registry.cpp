#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "htm/htm_types.hpp"
#include "telemetry/telemetry.hpp"

namespace nvhalt::telemetry {

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(std::min<int>(n, sizeof(buf) - 1)));
}

void json_hist(std::string& out, const char* key, const PowHistogram& h) {
  append(out, "\"%s\":{\"count\":%llu,\"sum\":%llu,\"mean\":%.2f,\"p50\":%llu,\"p99\":%llu,\"buckets\":[",
         key, static_cast<unsigned long long>(h.count()),
         static_cast<unsigned long long>(h.sum()), h.mean(),
         static_cast<unsigned long long>(h.quantile_bound(0.50)),
         static_cast<unsigned long long>(h.quantile_bound(0.99)));
  const int hi = h.used_buckets();
  for (int b = 0; b < hi; ++b) {
    append(out, "%s%llu", b ? "," : "",
           static_cast<unsigned long long>(h.bucket_count(b)));
  }
  out += "]}";
}

void json_taxonomy(std::string& out, const AbortTaxonomy& t) {
  out += "\"abort_taxonomy\":{";
  for (std::size_t c = 0; c < kNumAbortCauses; ++c) {
    append(out, "%s\"%s\":%llu", c ? "," : "",
           htm::abort_cause_name(static_cast<htm::AbortCause>(c)),
           static_cast<unsigned long long>(t.hw_by_cause[c]));
  }
  for (std::size_t c = 0; c < kNumRoAbortCauses; ++c) {
    append(out, ",\"%s\":%llu", ro_abort_cause_name(static_cast<RoAbortCause>(c)),
           static_cast<unsigned long long>(t.ro_by_cause[c]));
  }
  append(out, ",\"hw_total\":%llu,\"ro_total\":%llu,\"sw_aborts\":%llu,\"user_aborts\":%llu}",
         static_cast<unsigned long long>(t.hw_total()),
         static_cast<unsigned long long>(t.ro_total()),
         static_cast<unsigned long long>(t.sw_aborts),
         static_cast<unsigned long long>(t.user_aborts));
}

void prom_counter(std::string& out, const char* metric, const std::string& labels,
                  std::uint64_t v) {
  append(out, "nvhalt_%s%s %llu\n", metric,
         labels.empty() ? "" : ("{" + labels + "}").c_str(),
         static_cast<unsigned long long>(v));
}

void prom_hist(std::string& out, const char* metric, const std::string& labels,
               const PowHistogram& h) {
  const std::string sep = labels.empty() ? "" : ",";
  std::uint64_t cum = 0;
  const int hi = h.used_buckets();
  for (int b = 0; b < hi; ++b) {
    cum += h.bucket_count(b);
    append(out, "nvhalt_%s_bucket{%s%sle=\"%llu\"} %llu\n", metric, labels.c_str(),
           sep.c_str(),
           static_cast<unsigned long long>(PowHistogram::bucket_upper_bound(b)),
           static_cast<unsigned long long>(cum));
  }
  append(out, "nvhalt_%s_bucket{%s%sle=\"+Inf\"} %llu\n", metric, labels.c_str(),
         sep.c_str(), static_cast<unsigned long long>(h.count()));
  append(out, "nvhalt_%s_sum%s %llu\n", metric,
         labels.empty() ? "" : ("{" + labels + "}").c_str(),
         static_cast<unsigned long long>(h.sum()));
  append(out, "nvhalt_%s_count%s %llu\n", metric,
         labels.empty() ? "" : ("{" + labels + "}").c_str(),
         static_cast<unsigned long long>(h.count()));
}

}  // namespace

void MetricsRegistry::add_tm(TransactionalMemory& tm, std::string label) {
  if (label.empty()) label = tm.name();
  tms_.push_back({&tm, std::move(label)});
}

void MetricsRegistry::add_pool(PmemPool& pool, std::string label) {
  pools_.push_back({&pool, std::move(label)});
}

void MetricsRegistry::add_alloc(const TxAllocator& alloc, std::string label) {
  allocs_.push_back({&alloc, std::move(label)});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const TmEntry& e : tms_) {
    TmMetrics m;
    m.name = e.label;
    m.stats = e.tm->stats();
    m.tel = e.tm->telemetry();
    if (const ContentionTable* ct = e.tm->contention()) {
      m.has_contention = true;
      m.contention_stripes = ct->stripes();
      m.contention = ct->totals();
      m.hot_stripes = ct->top_k(16);
    }
    snap.tms.push_back(std::move(m));
  }
  for (const PoolEntry& e : pools_) {
    PoolMetrics m;
    m.name = e.label;
    m.flush_count = e.pool->flush_count();
    m.fence_count = e.pool->fence_count();
    m.flush_dedup_count = e.pool->flush_dedup_count();
    m.fence_group_count = e.pool->fence_group_count();
    m.fence_combined_count = e.pool->fence_combined_count();
    m.fence_lines = e.pool->fence_flush_hist();
    m.group_batch = e.pool->group_batch_hist();
    m.combine_wait = e.pool->combine_wait_hist();
    snap.pools.push_back(std::move(m));
  }
  for (const AllocEntry& e : allocs_) {
    AllocMetrics m;
    m.name = e.label;
    m.stats = e.alloc->stats();
    m.recovery = e.alloc->last_recovery();
    m.global_epoch = e.alloc->epochs().global_epoch();
    m.reclaim_latency_ns = e.alloc->epochs().reclaim_latency_ns();
    snap.allocs.push_back(std::move(m));
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"schema\":\"nvhalt-metrics-v1\",\"telemetry_level\":";
  append(out, "%d,\"tms\":[", kLevel);
  for (std::size_t i = 0; i < tms.size(); ++i) {
    const TmMetrics& m = tms[i];
    if (i) out += ",";
    append(out,
           "{\"name\":\"%s\",\"commits\":%llu,\"hw_commits\":%llu,\"sw_commits\":%llu,"
           "\"ro_commits\":%llu,\"read_only_commits\":%llu,\"hw_aborts\":%llu,"
           "\"sw_aborts\":%llu,\"ro_aborts\":%llu,"
           "\"fallbacks\":%llu,\"user_aborts\":%llu,",
           m.name.c_str(), static_cast<unsigned long long>(m.stats.commits),
           static_cast<unsigned long long>(m.stats.hw_commits),
           static_cast<unsigned long long>(m.stats.sw_commits),
           static_cast<unsigned long long>(m.stats.ro_commits),
           static_cast<unsigned long long>(m.stats.read_only_commits),
           static_cast<unsigned long long>(m.stats.hw_aborts),
           static_cast<unsigned long long>(m.stats.sw_aborts),
           static_cast<unsigned long long>(m.stats.ro_aborts),
           static_cast<unsigned long long>(m.stats.fallbacks),
           static_cast<unsigned long long>(m.stats.user_aborts));
    json_taxonomy(out, m.tel.tx.taxonomy);
    out += ",";
    json_hist(out, "tx_latency_hw_ticks", m.tel.tx.tx_latency_hw);
    out += ",";
    json_hist(out, "tx_latency_sw_ticks", m.tel.tx.tx_latency_sw);
    out += ",";
    json_hist(out, "write_set_words", m.tel.tx.write_set_size);
    out += ",";
    json_hist(out, "ack_latency_ticks", m.tel.tx.ack_latency);
    if (m.has_contention) {
      append(out,
             ",\"contention\":{\"stripes\":%llu,\"stalls\":%llu,\"stall_ticks\":%llu,"
             "\"cas_failures\":%llu,\"aborts\":%llu,\"top\":[",
             static_cast<unsigned long long>(m.contention_stripes),
             static_cast<unsigned long long>(m.contention.stalls),
             static_cast<unsigned long long>(m.contention.stall_ticks),
             static_cast<unsigned long long>(m.contention.cas_failures),
             static_cast<unsigned long long>(m.contention.aborts));
      for (std::size_t s = 0; s < m.hot_stripes.size(); ++s) {
        const StripeContention& sc = m.hot_stripes[s];
        append(out,
               "%s{\"stripe\":%llu,\"stalls\":%llu,\"stall_ticks\":%llu,"
               "\"cas_failures\":%llu,\"aborts\":%llu,\"score\":%llu}",
               s ? "," : "", static_cast<unsigned long long>(sc.stripe),
               static_cast<unsigned long long>(sc.stalls),
               static_cast<unsigned long long>(sc.stall_ticks),
               static_cast<unsigned long long>(sc.cas_failures),
               static_cast<unsigned long long>(sc.aborts),
               static_cast<unsigned long long>(sc.score()));
      }
      out += "]}";
    }
    append(out,
           ",\"adaptive\":{\"enabled\":%s,\"current_budget\":%d,"
           "\"window_attempts\":%llu,\"window_aborts\":%llu,\"window_abort_rate\":%.4f,"
           "\"ro_enabled\":%s,\"ro_window_attempts\":%llu,\"ro_window_aborts\":%llu,"
           "\"ro_window_abort_rate\":%.4f,\"ro_suspended\":%d}}",
           m.tel.adaptive.enabled ? "true" : "false", m.tel.adaptive.current_budget,
           static_cast<unsigned long long>(m.tel.adaptive.window_attempts),
           static_cast<unsigned long long>(m.tel.adaptive.window_aborts),
           m.tel.adaptive.window_abort_rate,
           m.tel.adaptive.ro_enabled ? "true" : "false",
           static_cast<unsigned long long>(m.tel.adaptive.ro_window_attempts),
           static_cast<unsigned long long>(m.tel.adaptive.ro_window_aborts),
           m.tel.adaptive.ro_window_abort_rate, m.tel.adaptive.ro_suspended);
  }
  out += "],\"pools\":[";
  for (std::size_t i = 0; i < pools.size(); ++i) {
    const PoolMetrics& p = pools[i];
    if (i) out += ",";
    append(out,
           "{\"name\":\"%s\",\"flush_count\":%llu,\"fence_count\":%llu,"
           "\"flush_dedup_count\":%llu,\"fence_group_count\":%llu,"
           "\"fence_combined_count\":%llu,",
           p.name.c_str(), static_cast<unsigned long long>(p.flush_count),
           static_cast<unsigned long long>(p.fence_count),
           static_cast<unsigned long long>(p.flush_dedup_count),
           static_cast<unsigned long long>(p.fence_group_count),
           static_cast<unsigned long long>(p.fence_combined_count));
    json_hist(out, "fence_lines", p.fence_lines);
    out += ",";
    json_hist(out, "group_batch_fences", p.group_batch);
    out += ",";
    json_hist(out, "combine_wait_spins", p.combine_wait);
    out += "}";
  }
  out += "],\"allocs\":[";
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    const AllocMetrics& a = allocs[i];
    if (i) out += ",";
    append(out,
           "{\"name\":\"%s\",\"allocs\":%llu,\"frees\":%llu,\"segments_acquired\":%llu,"
           "\"retired\":%llu,\"reclaimed\":%llu,\"limbo\":%llu,\"orphans_swept\":%llu,"
           "\"leaked_reclaimed\":%llu,\"global_epoch\":%llu,",
           a.name.c_str(), static_cast<unsigned long long>(a.stats.allocs),
           static_cast<unsigned long long>(a.stats.frees),
           static_cast<unsigned long long>(a.stats.segments_acquired),
           static_cast<unsigned long long>(a.stats.retired),
           static_cast<unsigned long long>(a.stats.reclaimed),
           static_cast<unsigned long long>(a.stats.limbo),
           static_cast<unsigned long long>(a.stats.orphans_swept),
           static_cast<unsigned long long>(a.stats.leaked_reclaimed),
           static_cast<unsigned long long>(a.global_epoch));
    append(out,
           "\"recovery\":{\"ran\":%s,\"found_metadata\":%s,\"intents_applied\":%llu,"
           "\"intents_reverted\":%llu,\"intents_skipped\":%llu,\"orphans_swept\":%llu,"
           "\"watermark\":%llu,\"free_slots\":%llu,\"free_segments\":%llu},",
           a.recovery.ran ? "true" : "false", a.recovery.found_metadata ? "true" : "false",
           static_cast<unsigned long long>(a.recovery.intents_applied),
           static_cast<unsigned long long>(a.recovery.intents_reverted),
           static_cast<unsigned long long>(a.recovery.intents_skipped),
           static_cast<unsigned long long>(a.recovery.orphans_swept),
           static_cast<unsigned long long>(a.recovery.watermark),
           static_cast<unsigned long long>(a.recovery.free_slots),
           static_cast<unsigned long long>(a.recovery.free_segments));
    json_hist(out, "reclaim_latency_ns", a.reclaim_latency_ns);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  out += "# HELP nvhalt_commits_total Committed transactions.\n";
  out += "# TYPE nvhalt_commits_total counter\n";
  out += "# HELP nvhalt_hw_aborts_total Hardware aborts by decoded cause.\n";
  out += "# TYPE nvhalt_hw_aborts_total counter\n";
  // Histogram declarations: every _bucket/_sum/_count triple below belongs
  // to one of these families (Prometheus native-histogram ingestion keys
  // off the TYPE line; bare samples are scraped as untyped otherwise).
  out += "# HELP nvhalt_tx_latency_ticks Transaction latency by path.\n";
  out += "# TYPE nvhalt_tx_latency_ticks histogram\n";
  out += "# HELP nvhalt_write_set_words Committed write-set size in words.\n";
  out += "# TYPE nvhalt_write_set_words histogram\n";
  out += "# HELP nvhalt_ack_latency_ticks Durability-ack wait latency.\n";
  out += "# TYPE nvhalt_ack_latency_ticks histogram\n";
  out += "# HELP nvhalt_pool_fence_lines Lines flushed per fence.\n";
  out += "# TYPE nvhalt_pool_fence_lines histogram\n";
  // Pool persistence counter families (flush/fence/dedup were previously
  // emitted bare, which scrapes as untyped — declare them like the rest).
  out += "# HELP nvhalt_pool_flushes_total Cache-line write-backs persisted.\n";
  out += "# TYPE nvhalt_pool_flushes_total counter\n";
  out += "# HELP nvhalt_pool_fences_total Ordering fences issued (a combined drain counts once).\n";
  out += "# TYPE nvhalt_pool_fences_total counter\n";
  out += "# HELP nvhalt_pool_flush_dedup_total Queued flushes coalesced before write-back.\n";
  out += "# TYPE nvhalt_pool_flush_dedup_total counter\n";
  out += "# HELP nvhalt_fence_groups_total Combined drains covering two or more fencers.\n";
  out += "# TYPE nvhalt_fence_groups_total counter\n";
  out += "# HELP nvhalt_fence_combined_total Fences absorbed into another thread's combined drain.\n";
  out += "# TYPE nvhalt_fence_combined_total counter\n";
  out += "# HELP nvhalt_pool_group_batch_fences Fencers covered per combined drain.\n";
  out += "# TYPE nvhalt_pool_group_batch_fences histogram\n";
  out += "# HELP nvhalt_pool_combine_wait_spins Follower spins until leader release.\n";
  out += "# TYPE nvhalt_pool_combine_wait_spins histogram\n";
  out += "# HELP nvhalt_alloc_reclaim_latency_ns Retire-to-reclaim latency.\n";
  out += "# TYPE nvhalt_alloc_reclaim_latency_ns histogram\n";
  // Contention observatory counter families (per-TM totals plus a
  // per-stripe gauge for the decayed top-K heat view).
  out += "# HELP nvhalt_lock_stalls_total Lock-acquire stalls observed.\n";
  out += "# TYPE nvhalt_lock_stalls_total counter\n";
  out += "# HELP nvhalt_lock_stall_ticks_total Ticks spent stalled on locks.\n";
  out += "# TYPE nvhalt_lock_stall_ticks_total counter\n";
  out += "# HELP nvhalt_lock_cas_failures_total Lock-word CAS losses.\n";
  out += "# TYPE nvhalt_lock_cas_failures_total counter\n";
  out += "# HELP nvhalt_lock_aborts_total Aborts attributed to a lock stripe.\n";
  out += "# TYPE nvhalt_lock_aborts_total counter\n";
  out += "# HELP nvhalt_lock_stripe_score Contention score of a hot stripe.\n";
  out += "# TYPE nvhalt_lock_stripe_score gauge\n";
  for (const TmMetrics& m : tms) {
    const std::string tm_label = "tm=\"" + m.name + "\"";
    prom_counter(out, "commits_total", tm_label + ",path=\"hw\"", m.stats.hw_commits);
    prom_counter(out, "commits_total", tm_label + ",path=\"sw\"", m.stats.sw_commits);
    prom_counter(out, "commits_total", tm_label + ",path=\"ro\"", m.stats.ro_commits);
    prom_counter(out, "read_only_commits_total", tm_label, m.stats.read_only_commits);
    prom_counter(out, "fallbacks_total", tm_label, m.stats.fallbacks);
    prom_counter(out, "sw_aborts_total", tm_label, m.tel.tx.taxonomy.sw_aborts);
    prom_counter(out, "user_aborts_total", tm_label, m.tel.tx.taxonomy.user_aborts);
    for (std::size_t c = 0; c < kNumAbortCauses; ++c) {
      prom_counter(out, "hw_aborts_total",
                   tm_label + ",cause=\"" +
                       htm::abort_cause_name(static_cast<htm::AbortCause>(c)) + "\"",
                   m.tel.tx.taxonomy.hw_by_cause[c]);
    }
    for (std::size_t c = 0; c < kNumRoAbortCauses; ++c) {
      prom_counter(out, "ro_aborts_total",
                   tm_label + ",cause=\"" +
                       ro_abort_cause_name(static_cast<RoAbortCause>(c)) + "\"",
                   m.tel.tx.taxonomy.ro_by_cause[c]);
    }
    prom_hist(out, "tx_latency_ticks", tm_label + ",path=\"hw\"", m.tel.tx.tx_latency_hw);
    prom_hist(out, "tx_latency_ticks", tm_label + ",path=\"sw\"", m.tel.tx.tx_latency_sw);
    prom_hist(out, "write_set_words", tm_label, m.tel.tx.write_set_size);
    prom_hist(out, "ack_latency_ticks", tm_label, m.tel.tx.ack_latency);
    append(out, "nvhalt_adaptive_budget{%s} %d\n", tm_label.c_str(),
           m.tel.adaptive.current_budget);
    append(out, "nvhalt_adaptive_window_abort_rate{%s} %.4f\n", tm_label.c_str(),
           m.tel.adaptive.window_abort_rate);
    append(out, "nvhalt_ro_window_abort_rate{%s} %.4f\n", tm_label.c_str(),
           m.tel.adaptive.ro_window_abort_rate);
    append(out, "nvhalt_ro_suspended{%s} %d\n", tm_label.c_str(),
           m.tel.adaptive.ro_suspended);
    if (m.has_contention) {
      prom_counter(out, "lock_stalls_total", tm_label, m.contention.stalls);
      prom_counter(out, "lock_stall_ticks_total", tm_label, m.contention.stall_ticks);
      prom_counter(out, "lock_cas_failures_total", tm_label, m.contention.cas_failures);
      prom_counter(out, "lock_aborts_total", tm_label, m.contention.aborts);
      for (const StripeContention& sc : m.hot_stripes) {
        append(out, "nvhalt_lock_stripe_score{%s,stripe=\"%llu\"} %llu\n",
               tm_label.c_str(), static_cast<unsigned long long>(sc.stripe),
               static_cast<unsigned long long>(sc.score()));
      }
    }
  }
  for (const PoolMetrics& p : pools) {
    const std::string pool_label = "pool=\"" + p.name + "\"";
    prom_counter(out, "pool_flushes_total", pool_label, p.flush_count);
    prom_counter(out, "pool_fences_total", pool_label, p.fence_count);
    prom_counter(out, "pool_flush_dedup_total", pool_label, p.flush_dedup_count);
    prom_counter(out, "fence_groups_total", pool_label, p.fence_group_count);
    prom_counter(out, "fence_combined_total", pool_label, p.fence_combined_count);
    prom_hist(out, "pool_fence_lines", pool_label, p.fence_lines);
    prom_hist(out, "pool_group_batch_fences", pool_label, p.group_batch);
    prom_hist(out, "pool_combine_wait_spins", pool_label, p.combine_wait);
  }
  for (const AllocMetrics& a : allocs) {
    const std::string alloc_label = "alloc=\"" + a.name + "\"";
    prom_counter(out, "alloc_allocs_total", alloc_label, a.stats.allocs);
    prom_counter(out, "alloc_frees_total", alloc_label, a.stats.frees);
    prom_counter(out, "alloc_segments_acquired_total", alloc_label, a.stats.segments_acquired);
    prom_counter(out, "alloc_retired_total", alloc_label, a.stats.retired);
    prom_counter(out, "alloc_reclaimed_total", alloc_label, a.stats.reclaimed);
    prom_counter(out, "alloc_orphans_swept_total", alloc_label, a.stats.orphans_swept);
    prom_counter(out, "alloc_leaked_reclaimed_total", alloc_label, a.stats.leaked_reclaimed);
    append(out, "nvhalt_alloc_limbo_depth{%s} %llu\n", alloc_label.c_str(),
           static_cast<unsigned long long>(a.stats.limbo));
    append(out, "nvhalt_alloc_global_epoch{%s} %llu\n", alloc_label.c_str(),
           static_cast<unsigned long long>(a.global_epoch));
    prom_hist(out, "alloc_reclaim_latency_ns", alloc_label, a.reclaim_latency_ns);
  }
  return out;
}

}  // namespace nvhalt::telemetry
