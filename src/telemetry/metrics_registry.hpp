// MetricsRegistry: one snapshot surface over every TM instance and pool in
// a process, exported as JSON (machine-readable sidecars, tests) and
// Prometheus text exposition format (scrape endpoints, CI artifacts).
//
// Registration stores non-owning pointers — register objects that outlive
// the registry or deregister-by-destroying the registry first. snapshot()
// calls stats()/telemetry() on each TM, so it carries their quiescence
// contract: exact only when no transactions are in flight.
#pragma once

#include <string>
#include <vector>

#include "alloc/tx_allocator.hpp"
#include "api/tm.hpp"
#include "core/tm_stats.hpp"
#include "locks/contention.hpp"
#include "pmem/pmem_pool.hpp"
#include "telemetry/tx_telemetry.hpp"

namespace nvhalt::telemetry {

/// Everything snapshot() captures for one TM instance.
struct TmMetrics {
  std::string name;
  TmStats stats;
  TmTelemetry tel;
  /// Contention observatory (lock-stripe heat), captured when the TM
  /// exposes a ContentionTable (all five TMs do).
  bool has_contention = false;
  std::size_t contention_stripes = 0;
  ContentionTotals contention;
  std::vector<StripeContention> hot_stripes;  // hottest-first, top 16
};

/// Pool-level persistence counters.
struct PoolMetrics {
  std::string name;
  std::uint64_t flush_count = 0;
  std::uint64_t fence_count = 0;
  std::uint64_t flush_dedup_count = 0;
  /// Group durable commit: combined drains led (each one ordering fence
  /// covering >= 2 committers) and fences absorbed into another thread's
  /// drain — every absorbed fence is latency a committer did not pay.
  std::uint64_t fence_group_count = 0;
  std::uint64_t fence_combined_count = 0;
  PowHistogram fence_lines;
  /// Fencers covered per combined drain (leader + members; solo drains
  /// under group_commit record 1).
  PowHistogram group_batch;
  /// Spins a follower waited before its leader released it.
  PowHistogram combine_wait;
};

/// Allocator ledger: alloc/free counters, the epoch-reclamation gauge set
/// (retired / reclaimed / limbo depth, reclaim latency) and what the last
/// metadata recovery found.
struct AllocMetrics {
  std::string name;
  AllocStats stats;
  AllocRecoveryReport recovery;
  std::uint64_t global_epoch = 0;
  PowHistogram reclaim_latency_ns;
};

struct MetricsSnapshot {
  std::vector<TmMetrics> tms;
  std::vector<PoolMetrics> pools;
  std::vector<AllocMetrics> allocs;

  /// One JSON object: {"tms": [...], "pools": [...]}.
  std::string to_json() const;

  /// Prometheus text exposition format (# HELP/# TYPE + samples). Counter
  /// names are prefixed nvhalt_; per-TM series carry a tm="<name>" label,
  /// abort causes a cause= label, histograms the _bucket/_sum/_count
  /// triple with power-of-two le bounds.
  std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  /// Registers a TM under `label` (defaults to tm.name(); pass a label when
  /// snapshotting two instances of the same TM kind).
  void add_tm(TransactionalMemory& tm, std::string label = {});
  void add_pool(PmemPool& pool, std::string label = "pool");
  void add_alloc(const TxAllocator& alloc, std::string label = "alloc");

  MetricsSnapshot snapshot() const;

 private:
  struct TmEntry {
    TransactionalMemory* tm;
    std::string label;
  };
  struct PoolEntry {
    PmemPool* pool;
    std::string label;
  };
  struct AllocEntry {
    const TxAllocator* alloc;
    std::string label;
  };
  std::vector<TmEntry> tms_;
  std::vector<PoolEntry> pools_;
  std::vector<AllocEntry> allocs_;
};

}  // namespace nvhalt::telemetry
