// Trace serialization: a line-oriented raw text format written by
// instrumented binaries (crash_harness, benches) and a converter to the
// chrome://tracing / Perfetto JSON array format, consumed by the
// trace_dump CLI.
//
// Raw format (nvhalt-trace-v1):
//   # nvhalt-trace-v1 level=<n> ticks_per_us=<f>
//   # ring tid=<n> pushed=<n> dropped=<n>
//   <ticks> <kind> <tid> <arg> <cause|->
//   ...
// One `# ring` header per surviving ring, followed by its events oldest
// first. `cause` is an abort-cause name for kHwAbort lines and `-`
// elsewhere. The header records pushed/dropped so overflow accounting
// survives the round-trip even though dropped events themselves do not.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace nvhalt::telemetry {

/// One serializable trace capture: every ring plus the timebase needed to
/// turn tick deltas into wall time.
struct TraceDump {
  int level = kLevel;
  double ticks_per_us = 1.0;
  std::vector<ThreadTrace> threads;

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;
};

/// Snapshot the process-wide TraceBuffer and calibrate the tick rate.
/// Meaningful only in builds with NVHALT_TELEMETRY >= 1 (returns an empty
/// dump at level 0).
TraceDump collect_trace_dump();

void write_raw_trace(std::ostream& os, const TraceDump& dump);

/// Parses the raw format. Returns false (and sets *err when non-null) on a
/// malformed header or event line; events with unknown kinds are rejected,
/// not skipped, so a version bump cannot be silently misread.
bool read_raw_trace(std::istream& is, TraceDump& dump, std::string* err = nullptr);

/// chrome://tracing JSON object format: {"traceEvents": [...]}. Each
/// kTxBegin..{kHwCommit,kSwCommit,kUserAbort} pair on a tid becomes one "X"
/// (complete) event named by its outcome; every other event becomes a
/// thread-scoped "i" (instant) event. Timestamps are microseconds relative
/// to the earliest event in the dump.
void write_chrome_trace(std::ostream& os, const TraceDump& dump);

/// Convenience wrappers writing to a path; return false on I/O failure.
bool write_raw_trace_file(const std::string& path, const TraceDump& dump);
bool write_chrome_trace_file(const std::string& path, const TraceDump& dump);

}  // namespace nvhalt::telemetry
