#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <thread>

#include "telemetry/tx_telemetry.hpp"

namespace nvhalt::telemetry {

const char* ro_abort_cause_name(RoAbortCause c) {
  switch (c) {
    case RoAbortCause::kRoValidation: return "ro_validation";
    case RoAbortCause::kRoDemotion: return "ro_demotion";
    case RoAbortCause::kNumCauses: break;
  }
  return "unknown";
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTxBegin: return "tx_begin";
    case EventKind::kHwAttempt: return "hw_attempt";
    case EventKind::kHwAbort: return "hw_abort";
    case EventKind::kHwCommit: return "hw_commit";
    case EventKind::kFallback: return "fallback";
    case EventKind::kSwAttempt: return "sw_attempt";
    case EventKind::kSwValidate: return "sw_validate";
    case EventKind::kSwExtend: return "sw_extend";
    case EventKind::kSwAbort: return "sw_abort";
    case EventKind::kSwCommit: return "sw_commit";
    case EventKind::kUserAbort: return "user_abort";
    case EventKind::kLockAcquire: return "lock_acquire";
    case EventKind::kLockStall: return "lock_stall";
    case EventKind::kFlushEnqueue: return "flush_enqueue";
    case EventKind::kFence: return "fence";
    case EventKind::kDurabilityAck: return "durability_ack";
    case EventKind::kRoAttempt: return "ro_attempt";
    case EventKind::kRoCommit: return "ro_commit";
    case EventKind::kRoAbort: return "ro_abort";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kAllocArm: return "alloc_arm";
    case EventKind::kAllocApply: return "alloc_apply";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kRead: return "read";
    case EventKind::kWrite: return "write";
    case EventKind::kNumKinds: break;
  }
  return "unknown";
}

double calibrate_ticks_per_us() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = now_ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t c1 = now_ticks();
  const auto t1 = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0)
          .count();
  if (us <= 0.0 || c1 <= c0) return 1.0;
  return static_cast<double>(c1 - c0) / us;
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(new std::atomic<std::uint64_t>[round_up_pow2(std::max<std::size_t>(capacity, 2)) * kWordsPerSlot]{}),
      mask_(round_up_pow2(std::max<std::size_t>(capacity, 2)) - 1) {}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::size_t cap = capacity();
  const std::uint64_t h1 = head_.load(std::memory_order_acquire);
  const std::uint64_t lo1 = h1 > cap ? h1 - cap : 0;

  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(h1 - lo1));
  std::vector<std::uint64_t> seqs;
  seqs.reserve(static_cast<std::size_t>(h1 - lo1));

  for (std::uint64_t seq = lo1; seq < h1; ++seq) {
    const std::size_t base = (static_cast<std::size_t>(seq) & mask_) * kWordsPerSlot;
    TraceEvent ev;
    unpack_meta(slots_[base + 0].load(std::memory_order_relaxed), ev);
    ev.arg = slots_[base + 1].load(std::memory_order_relaxed);
    ev.ticks = slots_[base + 2].load(std::memory_order_relaxed);
    out.push_back(ev);
    seqs.push_back(seq);
  }

  // Any slot a push *started* during (or before) the copy may alias was
  // possibly overwritten — torn — while we copied; discard it. Checking the
  // started counter rather than the published head covers the producer's
  // one in-flight push, whose slot stores can be visible before its head
  // bump. The acquire fence pairs with the release fence in push(): if any
  // of push N's slot words was read above, started_ >= N is read here. The
  // survivors were stable for the whole copy, so their three words are
  // consistent; when the producer is quiescent started_ == head_ and
  // nothing extra is discarded.
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t h2 = started_.load(std::memory_order_relaxed);
  const std::uint64_t lo2 = h2 > cap ? h2 - cap : 0;
  std::size_t keep_from = 0;
  while (keep_from < seqs.size() && seqs[keep_from] < lo2) ++keep_from;
  if (keep_from > 0) out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(keep_from));
  return out;
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer buf;
  return buf;
}

TraceBuffer::TraceBuffer() : rings_(new PaddedRing[kMaxThreads]) {}

std::vector<ThreadTrace> TraceBuffer::collect() const {
  std::vector<ThreadTrace> out;
  for (int tid = 0; tid < kMaxThreads; ++tid) {
    const TraceRing& r = rings_[static_cast<std::size_t>(tid)].value;
    if (r.pushed() == 0) continue;
    ThreadTrace tt;
    tt.tid = tid;
    tt.pushed = r.pushed();
    tt.dropped = r.dropped();
    tt.capacity = r.capacity();
    tt.events = r.snapshot();
    out.push_back(std::move(tt));
  }
  return out;
}

void TraceBuffer::clear() {
  for (int tid = 0; tid < kMaxThreads; ++tid) rings_[static_cast<std::size_t>(tid)].value.clear();
}

}  // namespace nvhalt::telemetry
