#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace nvhalt::telemetry {

namespace {

// Terminal lifecycle kinds: a kTxBegin followed (in seq order) by one of
// these is closed; hw/sw attempt aborts retry within the same transaction
// and do not close it.
bool closes_tx(EventKind k) {
  return k == EventKind::kHwCommit || k == EventKind::kSwCommit ||
         k == EventKind::kUserAbort || k == EventKind::kRoCommit ||
         k == EventKind::kRoAbort;
}

EventKind kind_from_name(const std::string& name) {
  for (int i = 0; i < static_cast<int>(EventKind::kNumKinds); ++i) {
    const auto k = static_cast<EventKind>(i);
    if (name == event_kind_name(k)) return k;
  }
  return EventKind::kNumKinds;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

FlightRecorder::FlightRecorder(PmemPool& pool, std::uint32_t slots_per_thread)
    : pool_(pool),
      slots_(slots_per_thread),
      base_(pool.alloc_raw(metadata_words(slots_per_thread))),
      cur_(new Cursor[kMaxThreads]) {
  if (!pool_.attached_existing()) {
    // Durable header seed; recovery adopts existing images instead.
    pool_.raw_store(0, base_, pack_header(slots_));
    pool_.flush_raw(0, base_);
    pool_.fence(0);
  }
}

std::size_t FlightRecorder::ring_words() const {
  const std::size_t words = static_cast<std::size_t>(slots_) * 2;
  return (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
}

std::size_t FlightRecorder::metadata_words(std::uint32_t slots_per_thread) {
  const std::size_t words = static_cast<std::size_t>(slots_per_thread) * 2;
  const std::size_t ring = (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
  return kWordsPerLine + static_cast<std::size_t>(kMaxThreads) * ring;
}

void FlightRecorder::record_impl(int tid, EventKind kind, std::uint8_t cause,
                                 std::uint16_t arg) {
  Cursor& c = cur_[static_cast<std::size_t>(tid)];
  const std::uint64_t w0 = pack_slot(c.seq, kind, cause, arg);
  const std::size_t idx = thread_base(tid) + static_cast<std::size_t>(c.pos) * 2;
  // Slot words share a cache line (2-word-aligned within the 8-word line),
  // so the pool's same-line store-order prefix means a crash can persist
  // {nothing, w0, w0+w1} — never w1 alone; the checksum catches the torn
  // middle case. No fence: the record rides tid's next protocol fence.
  pool_.raw_store(tid, idx, w0);
  pool_.raw_store(tid, idx + 1, checksum(w0));
  pool_.flush_raw(tid, idx);
  c.seq++;
  c.pos = (c.pos + 1 == slots_) ? 0 : c.pos + 1;
}

PostmortemReport FlightRecorder::postmortem() const {
  PostmortemReport rep;
  const std::uint64_t hdr = pool_.raw_load_durable(base_);
  rep.header_valid = hdr == pack_header(slots_);
  rep.threads = kMaxThreads;
  rep.slots_per_thread = slots_;
  if (!rep.header_valid) return rep;

  for (int tid = 0; tid < kMaxThreads; ++tid) {
    FrThreadPostmortem tp;
    tp.tid = tid;
    const std::size_t tb = thread_base(tid);
    for (std::uint32_t s = 0; s < slots_; ++s) {
      const std::uint64_t w0 = pool_.raw_load_durable(tb + s * 2);
      const std::uint64_t w1 = pool_.raw_load_durable(tb + s * 2 + 1);
      if (w0 == 0 && w1 == 0) continue;  // never written
      if (w1 != checksum(w0) || (w0 >> 32) == 0) {
        tp.torn++;
        continue;
      }
      FrEvent ev;
      ev.seq = static_cast<std::uint32_t>(w0 >> 32);
      ev.kind = static_cast<EventKind>((w0 >> 24) & 0xFF);
      ev.cause = static_cast<std::uint8_t>((w0 >> 16) & 0xFF);
      ev.arg = static_cast<std::uint16_t>(w0 & 0xFFFF);
      tp.events.push_back(ev);
      tp.valid++;
    }
    if (tp.events.empty() && tp.torn == 0) continue;

    std::sort(tp.events.begin(), tp.events.end(),
              [](const FrEvent& a, const FrEvent& b) { return a.seq < b.seq; });
    if (!tp.events.empty()) tp.last_seq = tp.events.back().seq;

    // In-flight reconstruction: the last kTxBegin with no later closing
    // record leaves an open transaction; its kLockAcquire records name how
    // many lock lines were held; everything after the last kFence is the
    // pending (possibly un-durable) persist work.
    std::size_t open_begin = tp.events.size();
    std::size_t last_fence = tp.events.size();
    for (std::size_t i = 0; i < tp.events.size(); ++i) {
      const FrEvent& ev = tp.events[i];
      if (ev.kind == EventKind::kTxBegin) open_begin = i;
      if (closes_tx(ev.kind)) open_begin = tp.events.size();
      if (ev.kind == EventKind::kFence) last_fence = i;
      if (ev.cause != 0xFF) tp.last_cause = ev.cause;
    }
    if (open_begin < tp.events.size()) {
      tp.open_tx = true;
      std::uint32_t held = 0;
      for (std::size_t i = open_begin; i < tp.events.size(); ++i)
        if (tp.events[i].kind == EventKind::kLockAcquire) held += tp.events[i].arg;
      tp.held_locks = static_cast<std::uint16_t>(std::min<std::uint32_t>(held, 0xFFFF));
    }
    tp.pending_fence = static_cast<std::uint32_t>(
        last_fence == tp.events.size() ? tp.events.size() : tp.events.size() - last_fence - 1);

    rep.total_valid += tp.valid;
    rep.total_torn += tp.torn;
    rep.per_thread.push_back(std::move(tp));
  }
  return rep;
}

void FlightRecorder::on_recover(int rtid) {
  const PostmortemReport rep = postmortem();
  for (int tid = 0; tid < kMaxThreads; ++tid) {
    cur_[static_cast<std::size_t>(tid)] = Cursor{};
  }
  for (const FrThreadPostmortem& tp : rep.per_thread) {
    Cursor& c = cur_[static_cast<std::size_t>(tp.tid)];
    c.seq = tp.last_seq + 1;
    // Resume after the highest-seq slot so decoded history is overwritten
    // oldest-first, exactly as live operation would.
    const std::uint64_t filled = tp.valid + tp.torn;
    c.pos = static_cast<std::uint32_t>(filled % slots_);
  }
  if (!rep.header_valid) {
    pool_.raw_store(rtid, base_, pack_header(slots_));
    pool_.flush_raw(rtid, base_);
  }
  record(rtid, EventKind::kRecovery);
  pool_.fence(rtid);
}

std::string PostmortemReport::to_string() const {
  std::string out;
  append(out, "flight recorder postmortem: header %s, %" PRIu64
              " records decoded, %" PRIu64 " torn slot(s) skipped\n",
         header_valid ? "valid" : "INVALID", total_valid, total_torn);
  for (const FrThreadPostmortem& tp : per_thread) {
    append(out, "  thread %d: %u records (%u torn)", tp.tid, tp.valid, tp.torn);
    if (tp.open_tx)
      append(out, ", OPEN tx holding %u lock line(s)", tp.held_locks);
    if (tp.pending_fence > 0)
      append(out, ", %u record(s) past last fence", tp.pending_fence);
    if (tp.last_cause != 0xFF) append(out, ", last cause %u", tp.last_cause);
    if (!tp.events.empty()) {
      append(out, "\n    tail:");
      const std::size_t from = tp.events.size() > 5 ? tp.events.size() - 5 : 0;
      for (std::size_t i = from; i < tp.events.size(); ++i)
        append(out, " %s", event_kind_name(tp.events[i].kind));
    }
    out += "\n";
  }
  return out;
}

std::string serialize_postmortem(const PostmortemReport& r, const char* tm_name) {
  std::string out;
  append(out,
         "# nvhalt-postmortem-v1 tm=%s threads=%d slots=%u header_valid=%d "
         "valid=%" PRIu64 " torn=%" PRIu64 "\n",
         tm_name, r.threads, r.slots_per_thread, r.header_valid ? 1 : 0,
         r.total_valid, r.total_torn);
  for (const FrThreadPostmortem& tp : r.per_thread) {
    append(out,
           "# thread tid=%d valid=%u torn=%u last_seq=%u open_tx=%d "
           "held_locks=%u pending_fence=%u last_cause=%u\n",
           tp.tid, tp.valid, tp.torn, tp.last_seq, tp.open_tx ? 1 : 0,
           tp.held_locks, tp.pending_fence, tp.last_cause);
    for (const FrEvent& ev : tp.events) {
      if (ev.cause == 0xFF)
        append(out, "%u %s - %u\n", ev.seq, event_kind_name(ev.kind), ev.arg);
      else
        append(out, "%u %s %u %u\n", ev.seq, event_kind_name(ev.kind), ev.cause,
               ev.arg);
    }
  }
  return out;
}

bool parse_postmortem(const std::string& text, PostmortemReport& out,
                      std::string* tm_name, std::string* err) {
  auto fail = [&](const std::string& msg) {
    if (err) *err = msg;
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return fail("empty postmortem file");
  {
    std::istringstream hs(line);
    std::string hash, tag;
    hs >> hash >> tag;
    if (hash != "#" || tag != "nvhalt-postmortem-v1")
      return fail("bad postmortem header: " + line);
    std::string kv;
    int hv = 0;
    while (hs >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = kv.substr(0, eq), val = kv.substr(eq + 1);
      if (key == "tm" && tm_name) *tm_name = val;
      else if (key == "threads") out.threads = std::atoi(val.c_str());
      else if (key == "slots") out.slots_per_thread = static_cast<std::uint32_t>(std::atoi(val.c_str()));
      else if (key == "header_valid") hv = std::atoi(val.c_str());
      else if (key == "valid") out.total_valid = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "torn") out.total_torn = std::strtoull(val.c_str(), nullptr, 10);
    }
    out.header_valid = hv != 0;
  }
  FrThreadPostmortem* cur = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ts(line);
      std::string hash, tag;
      ts >> hash >> tag;
      if (tag != "thread") return fail("unexpected section: " + line);
      FrThreadPostmortem tp;
      std::string kv;
      while (ts >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = kv.substr(0, eq), val = kv.substr(eq + 1);
        const long v = std::atol(val.c_str());
        if (key == "tid") tp.tid = static_cast<int>(v);
        else if (key == "valid") tp.valid = static_cast<std::uint32_t>(v);
        else if (key == "torn") tp.torn = static_cast<std::uint32_t>(v);
        else if (key == "last_seq") tp.last_seq = static_cast<std::uint32_t>(v);
        else if (key == "open_tx") tp.open_tx = v != 0;
        else if (key == "held_locks") tp.held_locks = static_cast<std::uint16_t>(v);
        else if (key == "pending_fence") tp.pending_fence = static_cast<std::uint32_t>(v);
        else if (key == "last_cause") tp.last_cause = static_cast<std::uint8_t>(v);
      }
      out.per_thread.push_back(tp);
      cur = &out.per_thread.back();
      continue;
    }
    if (!cur) return fail("record line before any thread section: " + line);
    std::istringstream rs(line);
    std::string kind_name, cause_tok;
    unsigned long seq = 0, arg = 0;
    if (!(rs >> seq >> kind_name >> cause_tok >> arg))
      return fail("bad record line: " + line);
    FrEvent ev;
    ev.seq = static_cast<std::uint32_t>(seq);
    ev.kind = kind_from_name(kind_name);
    if (ev.kind == EventKind::kNumKinds)
      return fail("unknown record kind: " + kind_name);
    ev.cause = cause_tok == "-" ? 0xFF
                                : static_cast<std::uint8_t>(std::atoi(cause_tok.c_str()));
    ev.arg = static_cast<std::uint16_t>(arg);
    cur->events.push_back(ev);
  }
  for (const FrThreadPostmortem& tp : out.per_thread)
    if (tp.events.size() != tp.valid)
      return fail("thread record count mismatch (tid " + std::to_string(tp.tid) + ")");
  return true;
}

std::vector<ThreadTrace> postmortem_to_traces(const PostmortemReport& r) {
  std::vector<ThreadTrace> out;
  for (const FrThreadPostmortem& tp : r.per_thread) {
    ThreadTrace tt;
    tt.tid = tp.tid;
    tt.pushed = tp.valid;
    tt.dropped = 0;
    tt.capacity = r.slots_per_thread;
    for (const FrEvent& ev : tp.events) {
      TraceEvent te;
      te.ticks = ev.seq;  // sequence numbers as the (unitless) timeline
      te.arg = ev.arg;
      te.kind = ev.kind;
      te.cause = ev.cause;
      te.tid = static_cast<std::uint16_t>(tp.tid);
      tt.events.push_back(te);
    }
    out.push_back(std::move(tt));
  }
  return out;
}

}  // namespace nvhalt::telemetry
