// Per-stripe lock-contention accounting (the "contention observatory").
//
// The paper's fine-grained locks make conflict attribution meaningful only
// if it is *per lock line*: TM-global abort counters cannot say which
// stripes a workload is fighting over. ContentionTable keeps one relaxed
// atomic cell per lock stripe and is bumped exclusively on failure paths
// (acquire stalls, CAS failures, conflict aborts) — the same cost class as
// the abort taxonomy, so it stays live at every telemetry level and the
// level-0 bench gate doubles as its overhead check.
//
// The decayed top-K view: decay_halve() halves every counter (callers
// invoke it at window boundaries — bench sampling loops, metrics scrapes),
// so top_k() ranks stripes by *recent* heat rather than lifetime totals.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/common.hpp"

namespace nvhalt {

/// One stripe's contention tallies at snapshot time.
struct StripeContention {
  std::uint64_t stripe = 0;
  std::uint64_t stalls = 0;        ///< acquire waits observed
  std::uint64_t stall_ticks = 0;   ///< total ticks spent in those waits
  std::uint64_t cas_failures = 0;  ///< lock-word CAS losses
  std::uint64_t aborts = 0;        ///< aborts attributed to this stripe
  /// Ranking score: aborts weigh heaviest (they cost a retry), CAS losses
  /// next, bare stalls least.
  std::uint64_t score() const { return 4 * aborts + 2 * cas_failures + stalls; }
};

/// Aggregated totals across all stripes.
struct ContentionTotals {
  std::uint64_t stalls = 0;
  std::uint64_t stall_ticks = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t aborts = 0;
};

class ContentionTable {
 public:
  /// Stripes tracked exactly when the lock table fits; larger/colocated
  /// spaces hash-reduce onto this many cells.
  static constexpr std::size_t kMaxStripes = 4096;

  explicit ContentionTable(std::size_t stripes)
      : n_(std::max<std::size_t>(1, std::min(stripes, kMaxStripes))),
        cells_(new Cell[n_]) {}

  ContentionTable(const ContentionTable&) = delete;
  ContentionTable& operator=(const ContentionTable&) = delete;

  std::size_t stripes() const { return n_; }

  void on_stall(std::size_t s, std::uint64_t ticks) {
    Cell& c = cells_[s % n_];
    c.stalls.fetch_add(1, std::memory_order_relaxed);
    c.stall_ticks.fetch_add(ticks, std::memory_order_relaxed);
    activity_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_cas_fail(std::size_t s) {
    cells_[s % n_].cas_failures.fetch_add(1, std::memory_order_relaxed);
    activity_.fetch_add(2, std::memory_order_relaxed);
  }
  void on_abort(std::size_t s) {
    cells_[s % n_].aborts.fetch_add(1, std::memory_order_relaxed);
    activity_.fetch_add(4, std::memory_order_relaxed);
  }

  /// Score-weighted global contention clock: advances whenever *any* stripe
  /// records a failure-path event. Commit paths compare it against the
  /// value they saw last commit — movement means other writers are fighting
  /// right now, which is exactly when lingering to combine fences pays.
  /// One relaxed load; no per-stripe scan.
  std::uint64_t activity() const { return activity_.load(std::memory_order_relaxed); }

  ContentionTotals totals() const {
    ContentionTotals t;
    for (std::size_t i = 0; i < n_; ++i) {
      t.stalls += cells_[i].stalls.load(std::memory_order_relaxed);
      t.stall_ticks += cells_[i].stall_ticks.load(std::memory_order_relaxed);
      t.cas_failures += cells_[i].cas_failures.load(std::memory_order_relaxed);
      t.aborts += cells_[i].aborts.load(std::memory_order_relaxed);
    }
    return t;
  }

  /// The k hottest stripes by score(), hottest first; stripes with zero
  /// activity are omitted, so the result may be shorter than k.
  std::vector<StripeContention> top_k(std::size_t k) const {
    std::vector<StripeContention> all;
    for (std::size_t i = 0; i < n_; ++i) {
      StripeContention s;
      s.stripe = i;
      s.stalls = cells_[i].stalls.load(std::memory_order_relaxed);
      s.stall_ticks = cells_[i].stall_ticks.load(std::memory_order_relaxed);
      s.cas_failures = cells_[i].cas_failures.load(std::memory_order_relaxed);
      s.aborts = cells_[i].aborts.load(std::memory_order_relaxed);
      if (s.score() > 0 || s.stall_ticks > 0) all.push_back(s);
    }
    std::sort(all.begin(), all.end(),
              [](const StripeContention& a, const StripeContention& b) {
                if (a.score() != b.score()) return a.score() > b.score();
                return a.stripe < b.stripe;
              });
    if (all.size() > k) all.resize(k);
    return all;
  }

  /// Halves every counter (window decay). Concurrent increments may be
  /// halved or not — acceptable for a diagnostic heat view.
  void decay_halve() {
    for (std::size_t i = 0; i < n_; ++i) {
      halve(cells_[i].stalls);
      halve(cells_[i].stall_ticks);
      halve(cells_[i].cas_failures);
      halve(cells_[i].aborts);
    }
  }

  void reset() {
    for (std::size_t i = 0; i < n_; ++i) {
      cells_[i].stalls.store(0, std::memory_order_relaxed);
      cells_[i].stall_ticks.store(0, std::memory_order_relaxed);
      cells_[i].cas_failures.store(0, std::memory_order_relaxed);
      cells_[i].aborts.store(0, std::memory_order_relaxed);
    }
    // The activity clock is deliberately NOT reset: consumers only compare
    // successive readings, and zeroing it mid-run could fake a "moved"
    // delta for a thread that cached a pre-reset value.
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<std::uint64_t> stall_ticks{0};
    std::atomic<std::uint64_t> cas_failures{0};
    std::atomic<std::uint64_t> aborts{0};
  };
  static void halve(std::atomic<std::uint64_t>& a) {
    a.store(a.load(std::memory_order_relaxed) / 2, std::memory_order_relaxed);
  }

  std::size_t n_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> activity_{0};
};

}  // namespace nvhalt
