// Versioned fine-grained locks (paper Sec. 3.1/3.6).
//
// Every transactional address is protected by a versioned lock. The lock
// word packs {version, owner, locked}; following TL2/Fig. 1, acquiring
// bumps the version by one (CAS from the encounter-time word) and releasing
// bumps it again, so a full acquire/release cycle advances the version by
// two and a reader that observes the same unlocked word twice knows no
// write intervened. The owner field is what lets the hardware path treat
// "locked by the current thread" as benign (Fig. 5 lines 3, 7).
//
// NV-HALT-SP extends each lock with a second version, hVer, incremented
// only by hardware transactions (Fig. 7): software commits use it to detect
// conflicts with concurrent hardware transactions after winning the global
// clock CAS.
#pragma once

#include <atomic>
#include <cstdint>

#include "htm/htm_types.hpp"
#include "util/common.hpp"

namespace nvhalt {

/// Value-level helpers for the packed lock word:
///   bit 0      locked flag
///   bits 1..8  owner (tid + 1; 0 when unlocked)
///   bits 9..63 version
namespace lockword {

inline constexpr std::uint64_t kLockedBit = 1;

inline std::uint64_t make(std::uint64_t version, bool locked, int owner_tid) {
  return (version << 9) |
         (locked ? (static_cast<std::uint64_t>(owner_tid + 1) << 1) | kLockedBit : 0);
}
inline bool is_locked(std::uint64_t w) { return (w & kLockedBit) != 0; }
inline int owner(std::uint64_t w) { return static_cast<int>((w >> 1) & 0xFF) - 1; }
inline std::uint64_t version(std::uint64_t w) { return w >> 9; }

/// The word after `w` (which must be unlocked) is acquired by `tid`.
inline std::uint64_t acquired(std::uint64_t w, int tid) {
  return make(version(w) + 1, true, tid);
}

/// The word after a locked word `w` is released.
inline std::uint64_t released(std::uint64_t w) { return make(version(w) + 1, false, 0); }

/// True if `w` is locked by a thread other than `tid`.
inline bool locked_by_other(std::uint64_t w, int tid) {
  return is_locked(w) && owner(w) != tid;
}

}  // namespace lockword

/// One lock: the sLock word plus the hVer counter used by NV-HALT-SP.
/// Both words deliberately live adjacently; conflict tracking treats them
/// as one location (they share a cache line in any real layout).
struct LockEntry {
  std::atomic<std::uint64_t> s{0};
  std::atomic<std::uint64_t> h{0};
};

/// A resolved reference to the lock protecting one address, carrying the
/// conflict-tracking identity of the lock words.
struct LockRef {
  std::atomic<std::uint64_t>* s = nullptr;
  std::atomic<std::uint64_t>* h = nullptr;
  htm::LocId loc = 0;  // identity of both lock words for conflict tracking
};

}  // namespace nvhalt
