#include "locks/lock_table.hpp"

namespace nvhalt {

LockSpace::LockSpace(LockMode mode, std::size_t table_entries, std::size_t capacity_words)
    : mode_(mode),
      contention_(mode == LockMode::kTable ? table_entries
                                           : ContentionTable::kMaxStripes) {
  if (mode_ == LockMode::kTable) {
    if (table_entries == 0 || (table_entries & (table_entries - 1)) != 0)
      throw TmLogicError("lock table size must be a power of two");
    mask_ = table_entries - 1;
    table_ = std::make_unique<PaddedLockEntry[]>(table_entries);
    table_raw_ = table_.get();
  } else {
    colocated_count_ = capacity_words;
    colocated_ = std::make_unique<LockEntry[]>(capacity_words);
    colocated_raw_ = colocated_.get();
  }
}

void LockSpace::reset() {
  if (mode_ == LockMode::kTable) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      table_[i].s.store(0, std::memory_order_relaxed);
      table_[i].h.store(0, std::memory_order_relaxed);
    }
  } else {
    for (std::size_t i = 0; i < colocated_count_; ++i) {
      colocated_[i].s.store(0, std::memory_order_relaxed);
      colocated_[i].h.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace nvhalt
