#include "locks/versioned_lock.hpp"

// lockword helpers are header-only; this translation unit anchors the
// module in the build.
