// Lock placement strategies (paper Sec. 4, "Fine-Grained Locks").
//
// NV-HALT / NV-HALT-SP use a fixed-size hashed lock table as in TL2:
// multiple addresses may map to one lock, but user data layout is
// unaffected. NV-HALT-CL colocates one lock with every word, which lets
// the (simulated) cache fetch the lock together with the data — in this
// codebase that is modelled by giving the colocated lock the same
// conflict-tracking line as its word (see SimHtm::canonical).
#pragma once

#include <cstdint>
#include <memory>

#include "locks/versioned_lock.hpp"
#include "util/common.hpp"

namespace nvhalt {

enum class LockMode { kTable, kColocated };

/// Maps addresses to versioned locks under either placement strategy.
class LockSpace {
 public:
  /// `table_entries` must be a power of two; used only in kTable mode.
  /// `capacity_words` sizes the colocated array in kColocated mode.
  LockSpace(LockMode mode, std::size_t table_entries, std::size_t capacity_words);

  LockSpace(const LockSpace&) = delete;
  LockSpace& operator=(const LockSpace&) = delete;

  LockMode mode() const { return mode_; }

  /// Resolves the lock protecting address `a`.
  LockRef ref(gaddr_t a) {
    if (mode_ == LockMode::kTable) {
      const std::size_t i = hash(a) & mask_;
      LockEntry& e = table_[i];
      return LockRef{&e.s, &e.h, htm::loc_lock(i)};
    }
    LockEntry& e = colocated_[a];
    return LockRef{&e.s, &e.h, htm::loc_colock(a)};
  }

  /// Clears all locks (recovery: locks are volatile metadata).
  void reset();

  std::size_t table_entries() const { return mask_ + 1; }

 private:
  static std::size_t hash(gaddr_t a) {
    std::uint64_t x = a * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(x >> 24);
  }

  LockMode mode_;
  std::size_t mask_ = 0;
  std::size_t colocated_count_ = 0;
  // Table entries are padded to a cache line each (they are shared by many
  // addresses); colocated entries are dense, as they would be in memory.
  struct alignas(kCacheLineBytes) PaddedLockEntry : LockEntry {};
  std::unique_ptr<PaddedLockEntry[]> table_;
  std::unique_ptr<LockEntry[]> colocated_;
};

}  // namespace nvhalt
