// Lock placement strategies (paper Sec. 4, "Fine-Grained Locks").
//
// NV-HALT / NV-HALT-SP use a fixed-size hashed lock table as in TL2:
// multiple addresses may map to one lock, but user data layout is
// unaffected. NV-HALT-CL colocates one lock with every word, which lets
// the (simulated) cache fetch the lock together with the data — in this
// codebase that is modelled by giving the colocated lock the same
// conflict-tracking line as its word (see SimHtm::canonical).
#pragma once

#include <cstdint>
#include <memory>

#include "locks/contention.hpp"
#include "locks/versioned_lock.hpp"
#include "util/common.hpp"

namespace nvhalt {

enum class LockMode { kTable, kColocated };

/// Maps addresses to versioned locks under either placement strategy.
class LockSpace {
 public:
  /// `table_entries` must be a power of two; used only in kTable mode.
  /// `capacity_words` sizes the colocated array in kColocated mode.
  LockSpace(LockMode mode, std::size_t table_entries, std::size_t capacity_words);

  LockSpace(const LockSpace&) = delete;
  LockSpace& operator=(const LockSpace&) = delete;

  LockMode mode() const { return mode_; }

  /// Resolves the lock protecting address `a`. Table mode is the likely
  /// branch: every TM except NV-HALT-CL uses it, and the hw fast path
  /// resolves a lock per access, so the colocated test must not cost the
  /// common case a mispredict (raw pointers, not unique_ptr loads, below).
  ///
  /// Table mode hashes the *cache line* of `a`, not the word: conflict
  /// tracking (and real HTM) is line-granular anyway, so per-word locks
  /// bought no extra concurrency — same-line writers already abort each
  /// other — while costing a sequential scan one fresh lock stripe per
  /// word. With line hashing a node scan resolves one lock entry per
  /// line, which the fast path's lock memo then touches exactly once.
  LockRef ref(gaddr_t a) {
    if (NVHALT_LIKELY(mode_ == LockMode::kTable)) {
      const std::size_t i = hash(a / kWordsPerLine) & mask_;
      LockEntry& e = table_raw_[i];
      return LockRef{&e.s, &e.h, htm::loc_lock(i)};
    }
    LockEntry& e = colocated_raw_[a];
    return LockRef{&e.s, &e.h, htm::loc_colock(a)};
  }

  /// Clears all locks (recovery: locks are volatile metadata). Contention
  /// tallies are deliberately preserved — they are diagnostics of the run,
  /// not lock state; reset them via contention().reset().
  void reset();

  std::size_t table_entries() const { return mask_ + 1; }

  /// Per-stripe contention observatory over this lock space. In table mode
  /// a stripe is the lock-table index (hash-reduced when the table exceeds
  /// ContentionTable::kMaxStripes); colocated entries hash-reduce too.
  ContentionTable& contention() { return contention_; }
  const ContentionTable& contention() const { return contention_; }

  /// The contention stripe covering address `a` — same mapping ref() uses,
  /// reduced to the table size, so attribution and locking agree.
  std::size_t contention_stripe(gaddr_t a) const {
    if (NVHALT_LIKELY(mode_ == LockMode::kTable))
      return (hash(a / kWordsPerLine) & mask_) % contention_.stripes();
    return hash(a) % contention_.stripes();
  }

  /// Stripe of a lock by its sLock word pointer — for attribution sites
  /// (TL2 revalidation) that recorded the lock but not the address.
  std::size_t contention_stripe_of_lock(const std::atomic<std::uint64_t>* lock_s) const {
    const auto* p = reinterpret_cast<const char*>(lock_s);
    if (NVHALT_LIKELY(mode_ == LockMode::kTable)) {
      const auto* b = reinterpret_cast<const char*>(table_raw_);
      return (static_cast<std::size_t>(p - b) / sizeof(PaddedLockEntry)) %
             contention_.stripes();
    }
    const auto* b = reinterpret_cast<const char*>(colocated_raw_);
    return hash(static_cast<gaddr_t>(static_cast<std::size_t>(p - b) / sizeof(LockEntry))) %
           contention_.stripes();
  }

 private:
  static std::size_t hash(gaddr_t a) {
    std::uint64_t x = a * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(x >> 24);
  }

  LockMode mode_;
  ContentionTable contention_;
  std::size_t mask_ = 0;
  std::size_t colocated_count_ = 0;
  // Table entries are padded to a cache line each (they are shared by many
  // addresses); colocated entries are dense, as they would be in memory.
  struct alignas(kCacheLineBytes) PaddedLockEntry : LockEntry {};
  std::unique_ptr<PaddedLockEntry[]> table_;
  std::unique_ptr<LockEntry[]> colocated_;
  // Cached .get() of whichever array is active, so ref() dereferences one
  // raw pointer instead of reloading through the unique_ptr each access.
  PaddedLockEntry* table_raw_ = nullptr;
  LockEntry* colocated_raw_ = nullptr;
};

}  // namespace nvhalt
