// NV-HALT read-only fast path (docs/PROTOCOLS.md "Read-only fast path",
// DESIGN.md Sec. 11): two engines for transactions that are declared — or
// dynamically detected — read-only.
//
// Software engine (NvHaltRoSwTx, TL2-style snapshot reads): samples the
// global commit sequence at begin and performs *raw* acquire loads of pool
// words and lock words — no SimHtm bookkeeping, no read-set entries beyond
// one record per unique lock line, no lock acquisitions, and a commit that
// does nothing at all (every read is validated as it happens). This is the
// same per-read cost class as Trinity's plain loads, which is what lets the
// read-heavy cells compete. Soundness of the raw loads rests on the
// publication order both writer paths share: a writer's lock transition is
// (a) sequenced before its data stores and (b) every published data value
// is a release store, so a reader whose acquire load returns a new value is
// guaranteed to observe the writer's lock word as locked-or-advanced on the
// *subsequent* lock check — a stale value can never pair with a clean lock
// word. The commit-sequence check extends the snapshot across lines exactly
// as the general software path does (docs/PROTOCOLS.md).
//
// Hardware engine (NvHaltRoHwTx, invisible readers): a real hardware
// transaction whose data reads are conflict-tracked as usual but which
// never subscribes to lock lines during the body. Unique lock lines are
// recorded (O(unique lines), reusing the per-line memo trick) and checked
// in one batch immediately before xend: any held lock aborts the attempt.
// The deferred check preserves the durability invariant — a committed-but-
// not-yet-persisted writer still holds its locks, so its non-durable values
// cannot be returned — while making the reader invisible to the writer's
// lock *release*, which on the eager per-read protocol dooms every
// concurrent reader of the line for no semantic reason.
//
// Neither engine writes: a body that writes (or allocates/frees) is demoted
// to the general retry loop, which re-runs it from scratch on the ordinary
// paths. Neither engine bumps the commit sequence, acquires a lock, or
// emits a single journal record/flush/fence — asserted by tests/ro_path_test.
#include "core/nvhalt_internal.hpp"

namespace nvhalt {

namespace {

/// One bit of the per-attempt membership filter for a lock pointer.
/// LockEntry is 16 bytes, so >> 4 strips the always-zero low bits; the
/// Fibonacci multiply spreads table neighbours across the 64 positions.
inline std::uint64_t filter_bit(const std::atomic<std::uint64_t>* lock_s) {
  const std::uint64_t h =
      (reinterpret_cast<std::uintptr_t>(lock_s) >> 4) * 0x9E3779B97F4A7C15ull;
  return std::uint64_t{1} << (h >> 58);
}

/// Hybrid unique-line lookup (ThreadCtx::kRoLinearScanMax). Most lookups
/// are first accesses, so the filter answers them in one bit test; on a
/// (possible) hit, a linear pointer scan of ro_set while it is short — the
/// whole vector is a couple of cache-hot lines, cheaper than hashing for
/// the typical footprint — and the hash index once it has taken over.
/// Templated on the context type so the helpers need no friend access.
template <class Ctx>
std::uint32_t find_line(Ctx& ctx, const std::atomic<std::uint64_t>* lock_s) {
  if (NVHALT_LIKELY((ctx.ro_filter & filter_bit(lock_s)) == 0))
    return htm::SmallIndexMap::kNotFound;
  if (NVHALT_LIKELY(!ctx.ro_indexed)) {
    for (std::uint32_t i = 0; i < ctx.ro_set.size(); ++i)
      if (ctx.ro_set[i].lock_s == lock_s) return i;
    return htm::SmallIndexMap::kNotFound;
  }
  return ctx.ro_index.find(reinterpret_cast<std::uintptr_t>(lock_s));
}

/// Appends a unique line, migrating the whole set into ro_index in one
/// sweep the first time it outgrows the linear-scan threshold.
template <class Ctx, class Ref>
void record_line(Ctx& ctx, const Ref& lk, std::uint64_t seen) {
  ctx.ro_filter |= filter_bit(lk.s);
  if (NVHALT_UNLIKELY(ctx.ro_indexed)) {
    ctx.ro_index.insert(reinterpret_cast<std::uintptr_t>(lk.s),
                        static_cast<std::uint32_t>(ctx.ro_set.size()));
  }
  ctx.ro_set.push_back({lk.s, lk.loc, seen});
  if (NVHALT_UNLIKELY(!ctx.ro_indexed && ctx.ro_set.size() > Ctx::kRoLinearScanMax)) {
    ctx.ro_index.clear();
    for (std::uint32_t i = 0; i < ctx.ro_set.size(); ++i)
      ctx.ro_index.insert(reinterpret_cast<std::uintptr_t>(ctx.ro_set[i].lock_s), i);
    ctx.ro_indexed = true;
  }
}

}  // namespace

/// Tx handle for one read-only software (snapshot) attempt.
class NvHaltRoSwTx final : public Tx {
 public:
  NvHaltRoSwTx(NvHaltTm& tm, NvHaltTm::ThreadCtx& ctx, int tid)
      : tm_(tm), ctx_(ctx), tid_(tid) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, tid_, a);
    LockRef lk = tm_.locks_.ref(a);

    // Memo hit: this attempt already established the line's pre-image
    // (seen_s). A post-value lock check against it suffices — if the value
    // is new, publication order forces the lock load to observe the
    // writer's transition, which cannot equal the pre-image. No snapshot
    // extension either: an unchanged lock word means the value returned is
    // the one the line held at the last full validation, so the read adds
    // no information the snapshot does not already cover. Only a *new*
    // line (below) can extend the read set and needs check_seq().
    if (NVHALT_LIKELY(lk.s == ctx_.ro_memo_lock)) {
      const word_t val = tm_.pool_.word_ptr(a)->load(std::memory_order_acquire);
      if (lk.s->load(std::memory_order_acquire) != ctx_.ro_memo_seen)
        throw TxConflictAbort{};
      return val;
    }

    const std::uint32_t found = find_line(ctx_, lk.s);
    if (found != htm::SmallIndexMap::kNotFound) {
      // Known line, different memo: same post-value check, refresh memo.
      const std::uint64_t seen = ctx_.ro_set[found].seen_s;
      const word_t val = tm_.pool_.word_ptr(a)->load(std::memory_order_acquire);
      if (lk.s->load(std::memory_order_acquire) != seen) throw TxConflictAbort{};
      ctx_.ro_memo_lock = lk.s;
      ctx_.ro_memo_seen = seen;
      return val;
    }

    // First access to this lock line: no pre-image yet, so the value must
    // be sandwiched between two identical unlocked lock snapshots (a
    // single post-value load could match a writer that acquired, published
    // and released entirely between the value load and the lock load).
    const std::uint64_t l1 = lk.s->load(std::memory_order_acquire);
    if (lockword::is_locked(l1)) throw TxConflictAbort{};
    const word_t val = tm_.pool_.word_ptr(a)->load(std::memory_order_acquire);
    if (lk.s->load(std::memory_order_acquire) != l1) throw TxConflictAbort{};

    record_line(ctx_, lk, l1);
    ctx_.ro_memo_lock = lk.s;
    ctx_.ro_memo_seen = l1;
    check_seq();
    return val;
  }

  void write(gaddr_t, word_t) override { throw TxRoDemote{}; }
  gaddr_t alloc(std::size_t) override { throw TxRoDemote{}; }
  void free(gaddr_t, std::size_t) override { throw TxRoDemote{}; }
  bool on_hw_path() const override { return false; }

 private:
  /// TL2 snapshot extension: while the global commit sequence is unchanged
  /// no writer has published since the last validation, so the whole
  /// snapshot (every recorded line) is still consistent. When it moved,
  /// revalidate every line's pre-image and extend the snapshot to the
  /// sequence value read *before* validating.
  void check_seq() {
    const std::uint64_t seq = tm_.commit_seq_.value.load(std::memory_order_acquire);
    if (NVHALT_LIKELY(seq == ctx_.ro_seq)) return;
    for (const auto& e : ctx_.ro_set)
      if (e.lock_s->load(std::memory_order_acquire) != e.seen_s) throw TxConflictAbort{};
    ctx_.ro_seq = seq;
    telemetry::trace1(telemetry::EventKind::kSwExtend, tid_, seq);
  }

  NvHaltTm& tm_;
  NvHaltTm::ThreadCtx& ctx_;
  int tid_;
};

/// Tx handle for one read-only (invisible-reader) hardware attempt.
class NvHaltRoHwTx final : public Tx {
 public:
  NvHaltRoHwTx(NvHaltTm& tm, NvHaltTm::ThreadCtx& ctx, int tid)
      : tm_(tm), ctx_(ctx), tid_(tid) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, tid_, a);
    LockRef lk = tm_.locks_.ref(a);
    // Record the lock line for the pre-commit batch check without loading
    // it (loading would subscribe the line and make this reader visible —
    // any writer's release would doom us). One entry per unique line.
    if (lk.s != ctx_.ro_memo_lock) {
      if (find_line(ctx_, lk.s) == htm::SmallIndexMap::kNotFound)
        record_line(ctx_, lk, 0);
      ctx_.ro_memo_lock = lk.s;
    }
    return tm_.htm_.load(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a));
  }

  void write(gaddr_t, word_t) override { tm_.htm_.xabort(tid_, kRoDemoteAbortCode); }
  gaddr_t alloc(std::size_t) override { tm_.htm_.xabort(tid_, kRoDemoteAbortCode); }
  void free(gaddr_t, std::size_t) override { tm_.htm_.xabort(tid_, kRoDemoteAbortCode); }
  bool on_hw_path() const override { return true; }

 private:
  NvHaltTm& tm_;
  NvHaltTm::ThreadCtx& ctx_;
  int tid_;
};

NvHaltTm::RoAttemptOutcome NvHaltTm::attempt_ro_sw(int tid, TxBody body) {
  // The snapshot engine reads lock-free: the epoch reservation is the
  // only thing standing between this reader and a concurrent free+recycle
  // of a node it is about to read (alloc/ebr.hpp).
  alloc::quiesce_attempt(alloc_.epochs(), tid);
  ThreadCtx& ctx = ctx_[tid];
  ctx.ro_set.clear();
  ctx.ro_filter = 0;
  ctx.ro_indexed = false;
  ctx.ro_memo_lock = nullptr;
  // Initial snapshot: the empty read set is trivially valid here.
  ctx.ro_seq = commit_seq_.value.load(std::memory_order_acquire);

  NvHaltRoSwTx tx(*this, ctx, tid);
  try {
    body(tx);
  } catch (const TxConflictAbort&) {
    ctx.record_ro_abort(tid, telemetry::RoAbortCause::kRoValidation);
    return RoAttemptOutcome::kAborted;
  } catch (const TxRoDemote&) {
    ctx.record_ro_abort(tid, telemetry::RoAbortCause::kRoDemotion);
    return RoAttemptOutcome::kDemoted;
  } catch (const TxUserAbort&) {
    ctx.stats.user_aborts++;
    return RoAttemptOutcome::kUserAborted;
  }
  // Commit is a no-op: every read was validated against the snapshot as it
  // happened, nothing was locked, nothing needs persisting. No allocator
  // hooks either — alloc/free demote before recording anything.
  ctx.stats.commits++;
  ctx.stats.ro_commits++;
  ctx.stats.read_only_commits++;
  telemetry::trace1(telemetry::EventKind::kRoCommit, tid, ctx.ro_set.size());
  return RoAttemptOutcome::kCommitted;
}

NvHaltTm::RoAttemptOutcome NvHaltTm::attempt_ro_hw(int tid, TxBody body) {
  // Invisible readers subscribe nothing until the pre-commit batch check:
  // the epoch reservation keeps freed nodes from being recycled
  // mid-snapshot.
  alloc::quiesce_attempt(alloc_.epochs(), tid);
  ThreadCtx& ctx = ctx_[tid];
  ctx.ro_set.clear();
  ctx.ro_filter = 0;
  ctx.ro_indexed = false;
  ctx.ro_memo_lock = nullptr;

  htm_.begin(tid);
  NvHaltRoHwTx tx(*this, ctx, tid);
  try {
    body(tx);
    // Deferred lock validation: each recorded line is loaded (subscribing
    // it from here to xend) and must be unlocked. A held lock means a
    // writer between xend and durability — its values must not escape this
    // transaction. An already-released lock means the writer's data is
    // durable, and eager conflict detection has vouched for the snapshot.
    for (const auto& e : ctx.ro_set) {
      if (lockword::is_locked(htm_.load(tid, e.lock_loc, e.lock_s)))
        htm_.xabort(tid, kHwLockedAbortCode);
    }
    htm_.commit(tid);  // xend
  } catch (const htm::HtmAbort& a) {
    htm_.cancel(tid);
    if (a.code == kRoDemoteAbortCode) {
      ctx.record_ro_abort(tid, telemetry::RoAbortCause::kRoDemotion);
      return RoAttemptOutcome::kDemoted;
    }
    ctx.record_ro_abort(tid, telemetry::RoAbortCause::kRoValidation);
    return RoAttemptOutcome::kAborted;
  } catch (const TxUserAbort&) {
    htm_.cancel(tid);
    ctx.stats.user_aborts++;
    return RoAttemptOutcome::kUserAborted;
  } catch (...) {
    htm_.cancel(tid);
    throw;
  }
  ctx.stats.commits++;
  ctx.stats.ro_commits++;
  ctx.stats.read_only_commits++;
  telemetry::trace1(telemetry::EventKind::kRoCommit, tid, ctx.ro_set.size());
  return RoAttemptOutcome::kCommitted;
}

NvHaltTm::RoAttemptOutcome NvHaltTm::run_ro(int tid, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  const runtime::RoPolicy& rp = policy_.ro;

  // Snapshot attempts first: they are the cheaper engine (no HTM machinery
  // at all) and in the common low-write-rate regime they commit on the
  // first try. The hardware engine mops up footprints whose lines churn
  // just enough to keep defeating the snapshot check.
  int attempt = 0;
  for (int i = 0; i < rp.sw_attempts; ++i, ++attempt) {
    telemetry::trace1(telemetry::EventKind::kRoAttempt, tid,
                      static_cast<std::uint64_t>(attempt));
    const RoAttemptOutcome r = attempt_ro_sw(tid, body);
    ctx.adaptive.record_ro(rp, r == RoAttemptOutcome::kAborted);
    if (r != RoAttemptOutcome::kAborted) return r;
    runtime::backoff(policy_.backoff, ctx.rng, i + 1);
  }
  for (int i = 0; i < rp.hw_attempts; ++i, ++attempt) {
    telemetry::trace1(telemetry::EventKind::kRoAttempt, tid,
                      static_cast<std::uint64_t>(attempt));
    const RoAttemptOutcome r = attempt_ro_hw(tid, body);
    ctx.adaptive.record_ro(rp, r == RoAttemptOutcome::kAborted);
    if (r != RoAttemptOutcome::kAborted) return r;
    runtime::backoff(policy_.backoff, ctx.rng, i + 1);
  }
  return RoAttemptOutcome::kDemoted;
}

NvHaltTm::RoAttemptOutcome NvHaltTm::attempt_ro_sw_once(int tid, TxBody body) {
  registry().ensure_registered(tid);
  ensure_pver(pool_, tid, ctx_[tid]);
  return attempt_ro_sw(tid, body);
}

NvHaltTm::RoAttemptOutcome NvHaltTm::attempt_ro_hw_once(int tid, TxBody body) {
  registry().ensure_registered(tid);
  ensure_pver(pool_, tid, ctx_[tid]);
  return attempt_ro_hw(tid, body);
}

}  // namespace nvhalt
