#include "core/nvhalt_tm.hpp"

#include <thread>

#include "core/nvhalt_internal.hpp"
#include "pmem/crash_sim.hpp"

namespace nvhalt {

NvHaltTm::NvHaltTm(const NvHaltConfig& cfg, PmemPool& pool, htm::SimHtm& htm, TxAllocator& alloc)
    : cfg_(cfg),
      pool_(pool),
      htm_(htm),
      alloc_(alloc),
      locks_(cfg.lock_mode, cfg.lock_table_entries, pool.capacity_words()) {
  gclock_.value.store(0, std::memory_order_relaxed);
  commit_seq_.value.store(0, std::memory_order_relaxed);
  ctx_ = std::make_unique<ThreadCtx[]>(kMaxThreads);
  for (int t = 0; t < kMaxThreads; ++t) {
    ctx_[t].rng.reseed(0xC0FFEE + static_cast<std::uint64_t>(t));
    ctx_[t].reserve_scratch();
  }
}

NvHaltTm::~NvHaltTm() = default;

const char* NvHaltTm::name() const {
  if (cfg_.variant == Variant::kStrong) return "NV-HALT-SP";
  return cfg_.lock_mode == LockMode::kColocated ? "NV-HALT-CL" : "NV-HALT";
}

TmStats NvHaltTm::stats() const {
  TmStats agg;
  for (int t = 0; t < kMaxThreads; ++t) agg.add(ctx_[t].stats);
  return agg;
}

void NvHaltTm::reset_stats() {
  for (int t = 0; t < kMaxThreads; ++t) ctx_[t].stats.reset();
}

void NvHaltTm::persist_and_bump_pver(int tid, ThreadCtx& ctx) {
  // Trinity-style persistence under held locks (Sec. 3.2): write each
  // record (old value, {tid, pVerNum}, new value), flush it, and update the
  // volatile word; one fence makes the whole write set durable, then the
  // thread's persistent version number is advanced and persisted, marking
  // the transaction durably committed. Only afterwards may locks be
  // released (done by the caller), preserving the invariant that an
  // address is non-durable only while locked.
  for (const ThreadCtx::PersistEnt& e : ctx.persist_buf) {
    pool_.record_write(tid, e.addr, e.old, e.val, ctx.pver);
    pool_.flush_record(tid, e.addr);
    htm_.nontx_store(tid, htm::loc_pool(e.addr), pool_.word_ptr(e.addr), e.val);
  }
  pool_.fence(tid);
  ++ctx.pver;
  pool_.store_pver(tid, ctx.pver);
  pool_.flush_pver(tid);
  pool_.fence(tid);
}

void NvHaltTm::sw_backoff(int tid, int attempt) {
  // Bounded randomized exponential backoff; yields because this container
  // may expose a single CPU.
  ThreadCtx& ctx = ctx_[tid];
  const int cap = attempt < 10 ? (1 << attempt) : 1024;
  const int spins = static_cast<int>(ctx.rng.next_bounded(static_cast<std::uint64_t>(cap)));
  for (int i = 0; i < spins; ++i) cpu_relax();
  if (attempt > 2) std::this_thread::yield();
}

bool NvHaltTm::run(int tid, TxBody body) {
  if (tid < 0 || tid >= kMaxThreads)
    throw TmLogicError("thread id out of range [0, kMaxThreads)");
  ThreadCtx& ctx = ctx_[tid];
  if (!ctx.pver_loaded) {
    ctx.pver = pool_.load_pver(tid);
    ctx.pver_loaded = true;
  }
  if (auto* c = pool_.crash_coordinator()) c->crash_point();

  // O(1)-abortable progress: a fixed number of hardware attempts...
  for (int i = 0; i < cfg_.htm_attempts; ++i) {
    switch (attempt_hw(tid, body)) {
      case AttemptResult::kCommitted: return true;
      case AttemptResult::kUserAborted: return false;
      case AttemptResult::kAborted: break;
    }
    // A capacity abort will recur on every retry of the same footprint;
    // optionally skip straight to the software path.
    if (cfg_.fallback_on_capacity && ctx.last_hw_abort == htm::AbortCause::kCapacity) break;
  }
  if (cfg_.htm_attempts > 0) ctx.stats.fallbacks++;

  // ...then the progressive software path until commit or voluntary abort.
  int retries = 0;
  for (;;) {
    switch (attempt_sw(tid, body)) {
      case AttemptResult::kCommitted: return true;
      case AttemptResult::kUserAborted: return false;
      case AttemptResult::kAborted: break;
    }
    ++retries;
    if (cfg_.max_sw_retries >= 0 && retries > cfg_.max_sw_retries) return false;
    sw_backoff(tid, retries);
    if (auto* c = pool_.crash_coordinator()) c->crash_point();
  }
}

bool NvHaltTm::attempt_hw_once(int tid, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  if (!ctx.pver_loaded) {
    ctx.pver = pool_.load_pver(tid);
    ctx.pver_loaded = true;
  }
  return attempt_hw(tid, body) == AttemptResult::kCommitted;
}

bool NvHaltTm::attempt_sw_once(int tid, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  if (!ctx.pver_loaded) {
    ctx.pver = pool_.load_pver(tid);
    ctx.pver_loaded = true;
  }
  return attempt_sw(tid, body) == AttemptResult::kCommitted;
}

}  // namespace nvhalt
