#include "core/nvhalt_tm.hpp"

#include "core/nvhalt_internal.hpp"
#include "pmem/crash_sim.hpp"

namespace nvhalt {

namespace {

runtime::PathPolicy make_policy(const NvHaltConfig& cfg) {
  runtime::PathPolicy p;
  p.htm_attempts = cfg.htm_attempts;
  p.fallback_on_capacity = cfg.fallback_on_capacity;
  p.max_sw_retries = cfg.max_sw_retries;
  p.adaptive.enabled = cfg.adaptive_htm_budget;
  return p;
}

}  // namespace

NvHaltTm::NvHaltTm(const NvHaltConfig& cfg, PmemPool& pool, htm::SimHtm& htm, TxAllocator& alloc)
    : runtime::TmRuntime(kMaxThreads, make_policy(cfg)),
      cfg_(cfg),
      pool_(pool),
      htm_(htm),
      alloc_(alloc),
      locks_(cfg.lock_mode, cfg.lock_table_entries, pool.capacity_words()),
      ctx_(kMaxThreads) {
  gclock_.value.store(0, std::memory_order_relaxed);
  commit_seq_.value.store(0, std::memory_order_relaxed);
  for (int t = 0; t < ctx_.size(); ++t) {
    ctx_[t].rng.reseed(0xC0FFEE + static_cast<std::uint64_t>(t));
    ctx_[t].reserve_scratch();
  }
}

NvHaltTm::~NvHaltTm() = default;

const char* NvHaltTm::name() const {
  if (cfg_.variant == Variant::kStrong) return "NV-HALT-SP";
  return cfg_.lock_mode == LockMode::kColocated ? "NV-HALT-CL" : "NV-HALT";
}

TmStats NvHaltTm::stats() const { return runtime::aggregate_thread_stats(ctx_); }

void NvHaltTm::reset_stats() { runtime::reset_thread_stats(ctx_); }

telemetry::TmTelemetry NvHaltTm::telemetry() const {
  return runtime::aggregate_thread_telemetry(ctx_, policy_);
}

void NvHaltTm::persist_and_bump_pver(int tid, ThreadCtx& ctx) {
  // Trinity-style persistence under held locks (Sec. 3.2): write each
  // record (old value, {tid, pVerNum}, new value), flush it, and update the
  // volatile word; one fence makes the whole write set durable, then the
  // thread's persistent version number is advanced and persisted, marking
  // the transaction durably committed. Only afterwards may locks be
  // released (done by the caller), preserving the invariant that an
  // address is non-durable only while locked.
  ctx.tel.write_set_size.record(ctx.persist_buf.size());
  for (const ThreadCtx::PersistEnt& e : ctx.persist_buf) {
    pool_.record_write(tid, e.addr, e.old, e.val, ctx.pver);
    pool_.flush_record(tid, e.addr);
    htm_.nontx_store(tid, htm::loc_pool(e.addr), pool_.word_ptr(e.addr), e.val);
  }
  pool_.fence(tid);
  ++ctx.pver;
  pool_.store_pver(tid, ctx.pver);
  pool_.flush_pver(tid);
  pool_.fence(tid);
}

bool NvHaltTm::run_registered(int tid, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  ensure_pver(pool_, tid, ctx);

  struct Env {
    NvHaltTm& tm;
    ThreadCtx& ctx;
    int tid;
    TxBody body;
    runtime::AttemptStatus attempt_hw() { return tm.attempt_hw(tid, body); }
    runtime::AttemptStatus attempt_sw() { return tm.attempt_sw(tid, body); }
    void before_hw_attempt() {}
    void crash_point() {
      if (auto* c = tm.pool_.crash_coordinator()) c->crash_point();
    }
  } env{*this, ctx, tid, body};

  return runtime::run_retry_loop(policy_, tid, ctx, env);
}

bool NvHaltTm::attempt_hw_once(int tid, TxBody body) {
  registry().ensure_registered(tid);
  ensure_pver(pool_, tid, ctx_[tid]);
  return attempt_hw(tid, body) == AttemptResult::kCommitted;
}

bool NvHaltTm::attempt_sw_once(int tid, TxBody body) {
  registry().ensure_registered(tid);
  ensure_pver(pool_, tid, ctx_[tid]);
  return attempt_sw(tid, body) == AttemptResult::kCommitted;
}

}  // namespace nvhalt
