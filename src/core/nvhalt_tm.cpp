#include "core/nvhalt_tm.hpp"

#include <algorithm>

#include "core/nvhalt_internal.hpp"
#include "pmem/checkpoint.hpp"
#include "pmem/crash_sim.hpp"

namespace nvhalt {

namespace {

runtime::PathPolicy make_policy(const NvHaltConfig& cfg) {
  runtime::PathPolicy p;
  p.htm_attempts = cfg.htm_attempts;
  p.fallback_on_capacity = cfg.fallback_on_capacity;
  p.max_sw_retries = cfg.max_sw_retries;
  p.adaptive.enabled = cfg.adaptive_htm_budget;
  // The read-only fast path's validation protocol leans on the production
  // locking discipline: hardware writers must acquire (and hold through
  // persistence) the locks the RO engines validate against, and the
  // paper-literal validate_every_read mode exists for A/B comparison of the
  // *general* software path — routing reads away from it would change what
  // it measures. Ablation configurations therefore disable RO routing.
  p.ro.enabled = cfg.ro_fast_path && cfg.persist_hw_txns && cfg.hw_acquire_locks &&
                 !cfg.validate_every_read;
  return p;
}

}  // namespace

NvHaltTm::NvHaltTm(const NvHaltConfig& cfg, PmemPool& pool, htm::SimHtm& htm, TxAllocator& alloc)
    : runtime::TmRuntime(kMaxThreads, make_policy(cfg)),
      cfg_(cfg),
      pool_(pool),
      htm_(htm),
      alloc_(alloc),
      locks_(cfg.lock_mode, cfg.lock_table_entries, pool.capacity_words()),
      ctx_(kMaxThreads) {
  gclock_.value.store(0, std::memory_order_relaxed);
  commit_seq_.value.store(0, std::memory_order_relaxed);
  for (int t = 0; t < ctx_.size(); ++t) {
    ctx_[t].rng.reseed(0xC0FFEE + static_cast<std::uint64_t>(t));
    ctx_[t].reserve_scratch();
  }
  // TM-managed allocator: persistent metadata, epoch-based reclamation
  // bounded by this registry, and crash recovery from the pool alone.
  alloc_.attach_registry(&registry_);
  // Checkpoint/compaction: reserves its raw region only when enabled, so
  // the default configuration keeps a byte-identical pool layout.
  if (cfg_.checkpoint) ckpt_ = std::make_unique<CheckpointManager>(pool_, &alloc_);
  // Flight recorder: same conditional-reservation discipline. Allocated
  // after the checkpoint region so both subsystems keep stable raw offsets.
  if (cfg_.flight_recorder) {
    frec_ = std::make_unique<telemetry::FlightRecorder>(pool_);
    for (int t = 0; t < ctx_.size(); ++t) ctx_[t].recorder = frec_.get();
  }
}

NvHaltTm::~NvHaltTm() = default;

const char* NvHaltTm::name() const {
  if (cfg_.variant == Variant::kStrong) return "NV-HALT-SP";
  return cfg_.lock_mode == LockMode::kColocated ? "NV-HALT-CL" : "NV-HALT";
}

TmStats NvHaltTm::stats() const { return runtime::aggregate_thread_stats(ctx_); }

void NvHaltTm::reset_stats() {
  runtime::reset_thread_stats(ctx_);
  locks_.contention().reset();
}

telemetry::TmTelemetry NvHaltTm::telemetry() const {
  return runtime::aggregate_thread_telemetry(ctx_, policy_);
}

void NvHaltTm::persist_and_bump_pver(int tid, ThreadCtx& ctx) {
  // Trinity-style persistence under held locks (Sec. 3.2): write each
  // record (old value, {tid, pVerNum}, new value), flush it, and update the
  // volatile word; one fence makes the whole write set durable, then the
  // thread's persistent version number is advanced and persisted, marking
  // the transaction durably committed. Only afterwards may locks be
  // released (done by the caller), preserving the invariant that an
  // address is non-durable only while locked.
  ctx.tel.write_set_size.record(ctx.persist_buf.size());
  // Group-commit hint: if the contention clock moved since our previous
  // commit, other writers are active and the commit fences should linger
  // to combine with theirs; a quiet clock keeps solo fence latency.
  const std::uint64_t activity = locks_.contention().activity();
  const FenceGate gate = activity != ctx.last_contention_activity
                             ? FenceGate::kPreferCombine
                             : FenceGate::kAuto;
  ctx.last_contention_activity = activity;
  // Checkpointing: hold the persist-phase guard across the whole phase
  // (checkpoints drain these), and durably publish the dirty bit of every
  // record line this write set touches BEFORE any record store is staged —
  // the write-barrier invariant bounded recovery rests on. Lines already
  // durably marked this generation cost nothing (shadow bitmap).
  std::shared_lock<std::shared_mutex> persist_phase;
  if (ckpt_) {
    persist_phase = ckpt_->persist_phase();
    bool need_fence = false;
    for (const ThreadCtx::PersistEnt& e : ctx.persist_buf)
      need_fence |= ckpt_->mark(tid, e.addr);
    if (need_fence) {
      pool_.fence(tid);
      ckpt_->commit_marks(tid);
    }
  }
  // Allocator intent record: armed under this transaction's pre-bump
  // pVerNum and flushed with the write set, so it is durable before the
  // marker can be. Recovery replays it iff pver crossed the arm id.
  alloc_.persist_arm(tid, ctx.pver);
  // Structure updates write runs of words within a node's cache lines, so
  // consecutive entries usually share a conflict-table stripe: the cached
  // claim turns the per-word claim/abort-scan/release round into one round
  // per run (see SimHtm::nontx_store_cached for why holding the tag across
  // the run is equivalent).
  htm::SimHtm::NontxClaim claim;
  for (const ThreadCtx::PersistEnt& e : ctx.persist_buf) {
    pool_.record_write(tid, e.addr, e.old, e.val, ctx.pver);
    pool_.flush_record(tid, e.addr);
    htm_.nontx_store_cached(tid, htm::loc_pool(e.addr), pool_.word_ptr(e.addr), e.val, claim);
  }
  htm_.nontx_claim_release(claim);
  // Allocator intent + write-set fence are in flight: note both in the
  // flight recorder so a postmortem names the pending persist work. The
  // records ride the very fence below.
  if (alloc_.has_pending(tid))
    ctx.fr(tid, telemetry::EventKind::kAllocArm);
  ctx.fr(tid, telemetry::EventKind::kFence, 0xFF,
         static_cast<std::uint16_t>(
             std::min<std::size_t>(ctx.persist_buf.size(), 0xFFFF)));
  pool_.fence(tid, gate);
  ++ctx.pver;
  pool_.store_pver(tid, ctx.pver);
  pool_.flush_pver(tid);
  // Allocation-bitmap apply rides the marker's fence: apply-durable
  // implies marker-durable (enqueue order), and recovery re-normalizes
  // the still-armed record idempotently either way.
  const bool applied = alloc_.has_pending(tid);
  alloc_.persist_apply(tid);
  if (applied) ctx.fr(tid, telemetry::EventKind::kAllocApply);
  pool_.fence(tid, gate);
}

bool NvHaltTm::checkpoint(int tid) {
  if (!ckpt_) return false;
  ckpt_->checkpoint(tid);
  if (frec_) {
    ctx_[tid].fr(tid, telemetry::EventKind::kCheckpoint, 0xFF,
                 static_cast<std::uint16_t>(ckpt_->generation() & 0xFFFF));
    pool_.fence(tid);
  }
  return true;
}

bool NvHaltTm::run_registered(int tid, TxMode mode, TxBody body) {
  ThreadCtx& ctx = ctx_[tid];
  ensure_pver(pool_, tid, ctx);

  // Read-only fast path: declared (TxMode::kReadOnly) or dynamically
  // detected (a streak of empty-write-set commits) transactions take the
  // cheap engines first, unless a validation storm has suspended routing
  // (AdaptiveBudget::admit_ro). Demotion falls through to the general loop.
  const runtime::RoPolicy& rp = policy_.ro;
  if (rp.enabled &&
      (mode == TxMode::kReadOnly ||
       (rp.dynamic_streak > 0 && ctx.ro_streak >= rp.dynamic_streak)) &&
      ctx.adaptive.admit_ro(rp)) {
    switch (run_ro(tid, body)) {
      case RoAttemptOutcome::kCommitted:
        ctx.ro_streak++;
        return true;
      case RoAttemptOutcome::kUserAborted:
        return false;
      case RoAttemptOutcome::kDemoted:
      case RoAttemptOutcome::kAborted:
        break;
    }
  }

  struct Env {
    NvHaltTm& tm;
    ThreadCtx& ctx;
    int tid;
    TxBody body;
    runtime::AttemptStatus attempt_hw() { return tm.attempt_hw(tid, body); }
    runtime::AttemptStatus attempt_sw() { return tm.attempt_sw(tid, body); }
    void before_hw_attempt() {}
    void crash_point() {
      if (auto* c = tm.pool_.crash_coordinator()) c->crash_point();
    }
  } env{*this, ctx, tid, body};

  const std::uint64_t ro_before = ctx.stats.read_only_commits;
  const bool ok = runtime::run_retry_loop(policy_, tid, ctx, env);
  // Dynamic detection signal: consecutive commits with an empty write set.
  // (A commit on any path bumps read_only_commits iff nothing was written.)
  if (ok) {
    if (ctx.stats.read_only_commits != ro_before)
      ctx.ro_streak++;
    else
      ctx.ro_streak = 0;
  }
  return ok;
}

bool NvHaltTm::attempt_hw_once(int tid, TxBody body) {
  registry().ensure_registered(tid);
  ensure_pver(pool_, tid, ctx_[tid]);
  return attempt_hw(tid, body) == AttemptResult::kCommitted;
}

bool NvHaltTm::attempt_sw_once(int tid, TxBody body) {
  registry().ensure_registered(tid);
  ensure_pver(pool_, tid, ctx_[tid]);
  return attempt_sw(tid, body) == AttemptResult::kCommitted;
}

}  // namespace nvhalt
