// Shared record-revert recovery engine (NV-HALT + Trinity).
//
// Both TMs colocate the undo history with the data as per-word
// {cur, old, pver} records, so their recovery is the same pass: revert
// every record whose persistent version number is at or above its owning
// thread's durable marker (in-flight at the crash; nobody can have
// observed its value because its lock was still held), then rebuild the
// volatile user image from the records. This module factors that pass out
// of the per-TM recover_data() implementations and adds the two scaling
// levers of ROADMAP open item 4:
//
//  * Bounded recovery: with a valid CheckpointManager region, only record
//    lines whose durable dirty bit is set can hold an in-flight record
//    (write-barrier invariant: the bit is fenced before any record store
//    to the line is staged), so the revert pass visits just the
//    delta-since-checkpoint. The volatile rebuild still covers the whole
//    pool but needs no predicate.
//  * Parallel recovery: both passes split into contiguous disjoint
//    partitions replayed by run_recovery_partitions workers. Every write
//    depends only on its own record, so the recovered image is
//    byte-identical for any worker count (pinned by
//    tests/recovery_parallel_test.cpp via PmemPool::image_hash()).
//
// The fault-injection path (skip_nth_revert >= 0) forces the exact legacy
// serial loop: the mutation tests count reverts in address order, which
// only the serial scan defines.
#pragma once

#include <cstdint>

#include "pmem/pmem_pool.hpp"
#include "util/common.hpp"

namespace nvhalt {

class CheckpointManager;

struct RecordRecoveryOptions {
  int rtid = 0;     ///< serial tid (workers use the dedicated top range)
  int workers = 1;  ///< recovery worker pool size
  /// Fault injection (tests only): leave the nth in-flight record torn.
  /// Forces the serial full scan — revert order is address order.
  int skip_nth_revert = -1;
  /// Checkpoint region; bounded recovery when non-null and durably valid.
  CheckpointManager* ckpt = nullptr;
};

struct RecordRecoveryReport {
  bool bounded = false;            ///< dirty-bitmap-guided revert pass ran
  std::uint64_t lines_scanned = 0; ///< record lines the revert pass visited
  std::uint64_t reverts = 0;       ///< in-flight records reverted
  int workers_used = 1;
};

/// Runs the revert pass and the volatile rebuild over `pool`.
/// `durable_pver[t]` is thread t's durable persistence marker; a record
/// with pver_seq >= durable_pver[pver_tid] and cur != old is in-flight and
/// reverted (persisted idempotently so a crash mid-recovery re-reverts).
/// Quiescent; fences each worker's queue before returning.
RecordRecoveryReport recover_records(PmemPool& pool,
                                     const std::uint64_t (&durable_pver)[kMaxThreads],
                                     const RecordRecoveryOptions& opts);

}  // namespace nvhalt
