// NV-HALT: Non-Volatile Hardware Assisted Locking Transactions.
//
// The paper's primary contribution (Sec. 3): a two-path persistent HyTM in
// which hardware transactions are used mainly to *read and acquire the
// fine-grained versioned locks* that protect data. Locks acquired inside a
// hardware transaction become visible atomically at xend and remain held
// afterwards, protecting the modified addresses while they are persisted
// with Trinity-style colocated undo records; only then are they released.
// The software fallback path is a TL2-style commit-time-locking STM whose
// write set is persisted the same way while its locks are held, so an
// address can be non-durable only while its lock is held — the invariant
// the whole persistence scheme rests on.
//
// Variants (paper Sec. 3.6, 4):
//   * weak progressive  (Variant::kWeak)  — Fig. 1 + Fig. 5
//   * strong progressive (Variant::kStrong, "NV-HALT-SP") — Fig. 7: sorted
//     write-set acquisition, a global software clock whose successful CAS
//     lets commits skip sLock validation, and a per-lock hVer bumped only
//     by hardware transactions so software commits can detect them.
//   * colocated locks ("NV-HALT-CL") — LockMode::kColocated.
//
// NV-HALT is O(1)-abortable (weak/strong) progressive: each transaction
// runs at most `htm_attempts` hardware attempts, then the progressive
// software path until it commits or voluntarily aborts.
#pragma once

#include <atomic>
#include <memory>

#include "api/tm.hpp"
#include "htm/sim_htm.hpp"
#include "htm/small_map.hpp"
#include "locks/lock_table.hpp"
#include "runtime/tm_runtime.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/rng.hpp"

namespace nvhalt {

class CheckpointManager;

enum class Variant { kWeak, kStrong };

struct NvHaltConfig {
  Variant variant = Variant::kWeak;
  LockMode lock_mode = LockMode::kTable;
  std::size_t lock_table_entries = std::size_t{1} << 16;

  /// C in "C-abortable": hardware attempts before falling back.
  int htm_attempts = 10;

  /// Extension: fall back to software immediately on a capacity abort —
  /// the transaction's footprint will not shrink on retry, so further
  /// hardware attempts are wasted. Off by default (the paper uses a fixed
  /// attempt count); probed by the retry-policy ablation benchmark.
  bool fallback_on_capacity = false;

  /// Ablation class 3 (NO-PERSISTENT-HTXN): when false, the hardware path
  /// performs no lock acquisition, no undo logging and no post-xend
  /// persistence — volatile-only hardware transactions.
  bool persist_hw_txns = true;

  // Debug knobs for the paper's counterexample executions. Production
  // configurations leave both true.
  /// Fig. 2 vs Fig. 3: hardware reads subscribe to the address's lock.
  bool hw_read_check_locks = true;
  /// Fig. 4: hardware writes acquire the lock (and hold it past xend).
  bool hw_acquire_locks = true;

  /// Bound on software-path retries; < 0 means retry until commit
  /// (progressive). Tests use small bounds to assert abort behaviour.
  int max_sw_retries = -1;

  /// Adaptive HTM attempt budget (runtime::AdaptivePolicy): shrink the
  /// hardware attempt budget while the recent abort rate is high, grow it
  /// back when attempts start committing. Off by default (the paper uses a
  /// fixed C); finer knobs via TmRuntime::set_path_policy.
  bool adaptive_htm_budget = false;

  /// Fig. 1 revalidates the full read set on every software read — O(n^2)
  /// in reads. By default the software path instead revalidates only when
  /// the global commit sequence has moved since the transaction's last
  /// validated snapshot, which preserves opacity (docs/PROTOCOLS.md) and is
  /// O(1) per read in the common case. Set true to restore the paper's
  /// literal per-read revalidation (A/B comparison, counterexample tests).
  bool validate_every_read = false;

  /// Test-only fault injection: recover_data() skips the Nth undo-record
  /// revert it would otherwise apply (-1 = disabled). The crash-prefix
  /// enumeration checker's mutation test uses this to prove a broken
  /// recovery is caught with a replayable (trace, prefix, seed) triple.
  int recovery_skip_nth_revert = -1;

  /// Checkpoint/compaction (DESIGN.md Sec. 13): maintain a persistent
  /// dirty-line bitmap so checkpoint(tid) can retire accumulated revert
  /// obligations and recovery scans only the delta since the last
  /// checkpoint. Off by default — the checkpoint raw region is allocated
  /// only when enabled, so disabled configurations keep a byte-identical
  /// pool layout.
  bool checkpoint = false;

  /// Recovery worker pool size (parallel record revert + image rebuild).
  /// 1 reproduces the serial recovery path exactly; any count yields a
  /// byte-identical recovered image.
  int recovery_threads = 1;

  /// Persistent flight recorder (telemetry/flight_recorder.hpp): per-thread
  /// NVM-resident rings of checksummed lifecycle records, decoded into an
  /// in-flight postmortem on recover_data(). Off by default — the recorder
  /// raw region is allocated only when enabled, so disabled configurations
  /// keep a byte-identical pool layout. Records are written only at
  /// NVHALT_TELEMETRY >= 1; the reservation is level-independent so crash
  /// images replay across build levels.
  bool flight_recorder = false;

  /// Read-only fast path (docs/PROTOCOLS.md "Read-only fast path"):
  /// transactions hinted TxMode::kReadOnly — or detected via a streak of
  /// empty-write-set commits — run a TL2-style snapshot attempt with zero
  /// lock acquisitions and zero persistence traffic, then an
  /// invisible-reader hardware attempt, before falling into the general
  /// loop. Requires the production protocol (persist_hw_txns +
  /// hw_acquire_locks, and not validate_every_read); silently disabled for
  /// the ablation/counterexample configurations.
  bool ro_fast_path = true;
};

class NvHaltTm final : public runtime::TmRuntime {
 public:
  NvHaltTm(const NvHaltConfig& cfg, PmemPool& pool, htm::SimHtm& htm, TxAllocator& alloc);
  ~NvHaltTm() override;

  void recover_data() override;
  void rebuild_allocator(std::span<const LiveBlock> live) override;
  bool checkpoint(int tid) override;

  PmemPool& pool() override { return pool_; }
  TxAllocator& allocator() override { return alloc_; }
  const char* name() const override;
  TmStats stats() const override;
  void reset_stats() override;
  telemetry::TmTelemetry telemetry() const override;
  const ContentionTable* contention() const override { return &locks_.contention(); }
  const telemetry::PostmortemReport* last_postmortem() const override {
    return last_postmortem_.get();
  }

  const NvHaltConfig& config() const { return cfg_; }
  /// Checkpoint subsystem, or null when cfg.checkpoint is off (tests).
  CheckpointManager* checkpoint_manager() { return ckpt_.get(); }
  /// Flight recorder, or null when cfg.flight_recorder is off.
  telemetry::FlightRecorder* flight_recorder() { return frec_.get(); }
  htm::SimHtm& htm() { return htm_; }
  LockSpace& locks() { return locks_; }
  std::uint64_t gclock() const { return gclock_.value.load(std::memory_order_acquire); }
  std::uint64_t commit_seq() const { return commit_seq_.value.load(std::memory_order_acquire); }

  /// Exposed for scripted counterexample tests: run exactly one hardware
  /// (resp. software) attempt. Returns true on commit; throws
  /// TxConflictAbort / htm::HtmAbort on conflict per path semantics.
  bool attempt_hw_once(int tid, TxBody body);
  bool attempt_sw_once(int tid, TxBody body);

  /// Outcome of one read-only fast-path attempt (the RO engines never
  /// throw to the caller; demotion/abort is folded into the result).
  enum class RoAttemptOutcome { kCommitted, kAborted, kDemoted, kUserAborted };

  /// Exposed for scripted counterexample tests: run exactly one read-only
  /// snapshot (resp. invisible-reader hardware) attempt.
  RoAttemptOutcome attempt_ro_sw_once(int tid, TxBody body);
  RoAttemptOutcome attempt_ro_hw_once(int tid, TxBody body);

 protected:
  /// The unified retry loop (runtime/retry_policy.hpp) with this TM's
  /// hardware/software attempts plugged in, preceded by the read-only
  /// fast path when the transaction is hinted (or detected) read-only.
  bool run_registered(int tid, TxMode mode, TxBody body) override;

 private:
  friend class NvHaltSwTx;
  friend class NvHaltHwTx;
  friend class NvHaltRoSwTx;
  friend class NvHaltRoHwTx;

  struct ThreadCtx;

  using AttemptResult = runtime::AttemptStatus;
  AttemptResult attempt_hw(int tid, TxBody body);
  AttemptResult attempt_sw(int tid, TxBody body);

  /// Read-only fast-path engines (core/ro_path.cpp). attempt_ro_sw is the
  /// TL2-style snapshot attempt (zero lock acquisitions, zero journal
  /// traffic); attempt_ro_hw is the invisible-reader hardware attempt
  /// (deferred lock-word validation). run_ro sequences
  /// ro.sw_attempts + ro.hw_attempts of them and reports kDemoted when all
  /// are exhausted (or the body turned out to write).
  RoAttemptOutcome attempt_ro_sw(int tid, TxBody body);
  RoAttemptOutcome attempt_ro_hw(int tid, TxBody body);
  RoAttemptOutcome run_ro(int tid, TxBody body);

  /// Persists a set of (addr, old, new) triples with Trinity undo records
  /// while the corresponding locks are held, then advances and persists the
  /// calling thread's persistent version number (Sec. 3.2).
  void persist_and_bump_pver(int tid, ThreadCtx& ctx);

  NvHaltConfig cfg_;
  PmemPool& pool_;
  htm::SimHtm& htm_;
  TxAllocator& alloc_;
  LockSpace locks_;

  /// Dirty-line tracking + generation watermark; built only when
  /// cfg_.checkpoint (reserves pool raw space in the constructor).
  std::unique_ptr<CheckpointManager> ckpt_;

  /// Persistent flight recorder; built only when cfg_.flight_recorder
  /// (reserves pool raw space in the constructor).
  std::unique_ptr<telemetry::FlightRecorder> frec_;
  /// Postmortem decoded by the most recent recover_data().
  std::unique_ptr<telemetry::PostmortemReport> last_postmortem_;

  /// Global software clock (NV-HALT-SP only). Accessed through the HTM
  /// simulator so hardware transactions could in principle subscribe to it
  /// (they never do: avoiding that bottleneck is the point of hVer).
  CacheLinePadded<std::atomic<std::uint64_t>> gclock_;

  /// Global commit sequence (htm::kCommitSeqLoc): bumped by every writer —
  /// software commits and lock-publishing hardware commits — before its
  /// locks are released. Software reads snapshot it to make common-case
  /// read validation O(1) (docs/PROTOCOLS.md). Volatile: reset on recovery.
  CacheLinePadded<std::atomic<std::uint64_t>> commit_seq_;

  runtime::PerThread<ThreadCtx> ctx_;
};

}  // namespace nvhalt
