// NV-HALT recovery (paper Sec. 3.5): traverse persistent memory and revert
// any address whose record carries a persistent version number at or above
// the owning thread's durable pVerNum — those belong to transactions whose
// persistence did not durably complete before the crash (their locks were
// still held, so no one can have observed their values). The volatile user
// image is then rebuilt from the records, volatile TM metadata (locks,
// conflict table, clock) is reset, and the allocator state is reconstructed
// from the user-supplied live-block iterator (Sec. 4).
//
// The scan itself lives in core/record_recovery.cpp (shared with Trinity):
// bounded by the checkpoint's dirty-line bitmap when cfg.checkpoint is on,
// and partitioned across cfg.recovery_threads workers either way.
#include "core/nvhalt_internal.hpp"
#include "core/record_recovery.hpp"
#include "pmem/checkpoint.hpp"
#include "telemetry/flight_recorder.hpp"

namespace nvhalt {

void NvHaltTm::recover_data() {
  const int rtid = 0;  // serial tid; workers take the dedicated top range

  // Flight-recorder postmortem first, before any recovery write can touch
  // raw space: a read-only decode of the durable rings (torn tails are
  // counted and skipped — decode never throws, so recovery cannot fail on
  // recorder corruption).
  if (frec_)
    last_postmortem_ =
        std::make_unique<telemetry::PostmortemReport>(frec_->postmortem());

  // Durable per-thread persistent version numbers (staged == durable after
  // PmemPool::crash()).
  std::uint64_t durable_pver[kMaxThreads];
  for (int t = 0; t < kMaxThreads; ++t) durable_pver[t] = pool_.load_pver(t);

  RecordRecoveryOptions ropt;
  ropt.rtid = rtid;
  ropt.workers = cfg_.recovery_threads;
  ropt.skip_nth_revert = cfg_.recovery_skip_nth_revert;
  ropt.ckpt = ckpt_.get();
  recover_records(pool_, durable_pver, ropt);

  // Volatile synchronization metadata did not survive; start clean. This
  // is safe precisely because recovery reverted every address whose lock
  // could have been held at the crash.
  locks_.reset();
  htm_.reset();
  gclock_.value.store(0, std::memory_order_relaxed);
  commit_seq_.value.store(0, std::memory_order_relaxed);

  ctx_.for_each([](ThreadCtx& c) {
    c.pver_loaded = false;
    c.adaptive.reset();
    c.rdset.clear();
    c.wrset.clear();
    c.hw_undo.clear();
    c.hw_locks.clear();
    c.acquired.clear();
  });

  // Allocator state is reconstructed from the pool's own persistent
  // metadata: armed intent records are normalized (applied iff the owning
  // transaction's pre-bump pVerNum crossed the durable marker — the same
  // committed-ness predicate the data pass used above), then the bitmaps
  // and segment headers rebuild the volatile free lists. Crash-orphaned
  // blocks (allocated, never committed) are swept here. No structure
  // traversal is required; rebuild_allocator() below is an optional
  // cross-check.
  alloc_.recover_metadata(
      rtid, [&](int t, std::uint64_t seq) { return seq < durable_pver[t]; },
      cfg_.recovery_threads);

  // Retire the recovered delta as a fresh checkpoint generation so the
  // next crash starts from an empty dirty set (adopts the durable
  // generation, or reseeds a region the crash predated).
  if (ckpt_) ckpt_->recover(rtid);

  // Reseed the recorder cursors past the decoded history and stamp a
  // durable kRecovery record — the first record of the new epoch.
  if (frec_) frec_->on_recover(rtid);
}

void NvHaltTm::rebuild_allocator(std::span<const LiveBlock> live) {
  if (alloc_.tm_managed()) {
    // Metadata already rebuilt the allocator in recover_data(); the live
    // set now serves as a reachability cross-check and leak sweep.
    alloc_.verify_rebuild(live);
    return;
  }
  alloc_.rebuild(live);
}

}  // namespace nvhalt
