// Internal per-thread transaction context shared by the NV-HALT software
// and hardware path translation units. Not part of the public API.
#pragma once

#include <vector>

#include "core/nvhalt_tm.hpp"
#include "htm/small_map.hpp"
#include "locks/versioned_lock.hpp"
#include "runtime/per_thread.hpp"

namespace nvhalt {

/// Stats, RNG, adaptive budget and the pver cache live in the shared
/// runtime::TxThreadState base; this adds NV-HALT's path-specific scratch.
struct alignas(kCacheLineBytes) NvHaltTm::ThreadCtx : runtime::TxThreadState {
  // ---- Software path (Fig. 1) ----------------------------------------
  struct ReadEnt {
    gaddr_t addr;
    std::atomic<std::uint64_t>* lock_s;
    std::atomic<std::uint64_t>* lock_h;
    htm::LocId lock_loc;
    std::uint64_t seen_s;  // encounter-time sLock word
    std::uint64_t seen_h;  // encounter-time hVer (SP only)
  };
  struct WriteEnt {
    gaddr_t addr;
    word_t val;
    std::atomic<std::uint64_t>* lock_s;
    std::atomic<std::uint64_t>* lock_h;
    htm::LocId lock_loc;
    std::uint64_t seen_s;  // encounter-time sLock word (CAS expected value)
  };
  std::vector<ReadEnt> rdset;
  std::vector<WriteEnt> wrset;
  htm::SmallIndexMap wr_index;       // gaddr -> wrset index
  htm::SmallIndexMap lock_dedupe;    // lock pointer -> wrset index that acquired it
  std::vector<std::uint32_t> acquired;  // wrset indices that performed the CAS
  std::uint64_t rv = 0;              // SP: gClock read at TxStart (Fig. 7)
  std::uint64_t validated_seq = 0;   // commit_seq covering the last full validation

  // ---- Hardware path (Fig. 5) -----------------------------------------
  struct HwUndoEnt {
    gaddr_t addr;
    word_t old;
  };
  std::vector<HwUndoEnt> hw_undo;  // thread-local append-only log
  /// Locks acquired inside the HW txn, with the word each acquisition
  /// stored. Nobody mutates a lock held by a live owner (acquire CASes
  /// expect an unlocked pre-image), so the release loop can compute the
  /// released word from this copy instead of re-loading the lock.
  struct HwLockEnt {
    LockRef lk;
    std::uint64_t acq;  // lock word as stored by htmAcquireLock
  };
  std::vector<HwLockEnt> hw_locks;
  bool hw_wrote = false;  // any data store this attempt (RO-commit signal)

  /// One-entry lock memo for the hw fast path: the last lock s-word this
  /// attempt checked, plus its transactionally-observed value. Sound to
  /// reuse because the first check subscribed the lock's line — any foreign
  /// change dooms the transaction before it can commit, so within an
  /// attempt the cached word is the word a re-load would return. Cleared
  /// at each attempt start.
  std::atomic<std::uint64_t>* hw_lock_memo = nullptr;
  std::uint64_t hw_lock_memo_word = 0;

  // ---- Read-only fast path (docs/PROTOCOLS.md) --------------------------
  /// One entry per unique lock line touched by the read-only attempt:
  /// the s-lock word pointer and the word observed when the line was first
  /// read (the pre-image every later validation compares against).
  struct RoEnt {
    std::atomic<std::uint64_t>* lock_s;
    htm::LocId lock_loc;
    std::uint64_t seen_s;
  };
  std::vector<RoEnt> ro_set;
  /// Unique-line lookup is hybrid: while ro_set is short a linear pointer
  /// scan beats hashing (the whole vector is a couple of cache-hot lines),
  /// so ro_index only takes over — populated in one sweep — once the set
  /// outgrows kRoLinearScanMax entries. ro_indexed records the handoff.
  /// ro_filter is a 64-bit membership summary over recorded lock pointers:
  /// most lookups are first accesses (misses), and a clear filter bit
  /// answers them in one test instead of a full scan or hash probe.
  static constexpr std::size_t kRoLinearScanMax = 32;
  htm::SmallIndexMap ro_index;  // lock pointer -> ro_set index
  std::uint64_t ro_filter = 0;
  bool ro_indexed = false;
  /// One-entry memo: the last lock word this RO attempt resolved, so runs
  /// of reads within a line skip the index probe entirely (same O(unique
  /// lines) trick as hw_lock_memo).
  std::atomic<std::uint64_t>* ro_memo_lock = nullptr;
  std::uint64_t ro_memo_seen = 0;
  /// commit_seq covering the last full ro_set validation (TL2 snapshot).
  std::uint64_t ro_seq = 0;
  /// Consecutive empty-write-set commits by this thread (dynamic read-only
  /// detection; see RoPolicy::dynamic_streak).
  int ro_streak = 0;

  // ---- Shared persistence scratch ---------------------------------------
  struct PersistEnt {
    gaddr_t addr;
    word_t old;
    word_t val;
  };
  std::vector<PersistEnt> persist_buf;

  /// Pre-sizes every per-transaction scratch vector once at TM
  /// construction so the steady state never reallocates on the hot path
  /// (clear() keeps capacity; only footprints beyond these grow later).
  void reserve_scratch() {
    rdset.reserve(256);
    wrset.reserve(64);
    acquired.reserve(64);
    persist_buf.reserve(64);
    hw_undo.reserve(64);
    hw_locks.reserve(64);
    ro_set.reserve(256);
  }
};

/// Thrown by the read-only software engine when the body writes (or
/// allocates/frees): the attempt is abandoned and the transaction rerouted
/// to the general path. Internal control flow, never escapes the TM.
struct TxRoDemote {};

/// xabort code used by the hardware path when it encounters a foreign lock.
inline constexpr std::uint8_t kHwLockedAbortCode = 0x7C;

/// xabort code used by the read-only hardware engine when the body writes:
/// the transaction must be demoted to the general path, not retried here.
inline constexpr std::uint8_t kRoDemoteAbortCode = 0x7D;

}  // namespace nvhalt
