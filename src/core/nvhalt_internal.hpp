// Internal per-thread transaction context shared by the NV-HALT software
// and hardware path translation units. Not part of the public API.
#pragma once

#include <vector>

#include "core/nvhalt_tm.hpp"
#include "htm/small_map.hpp"
#include "locks/versioned_lock.hpp"
#include "runtime/per_thread.hpp"

namespace nvhalt {

/// Stats, RNG, adaptive budget and the pver cache live in the shared
/// runtime::TxThreadState base; this adds NV-HALT's path-specific scratch.
struct alignas(kCacheLineBytes) NvHaltTm::ThreadCtx : runtime::TxThreadState {
  // ---- Software path (Fig. 1) ----------------------------------------
  struct ReadEnt {
    gaddr_t addr;
    std::atomic<std::uint64_t>* lock_s;
    std::atomic<std::uint64_t>* lock_h;
    htm::LocId lock_loc;
    std::uint64_t seen_s;  // encounter-time sLock word
    std::uint64_t seen_h;  // encounter-time hVer (SP only)
  };
  struct WriteEnt {
    gaddr_t addr;
    word_t val;
    std::atomic<std::uint64_t>* lock_s;
    std::atomic<std::uint64_t>* lock_h;
    htm::LocId lock_loc;
    std::uint64_t seen_s;  // encounter-time sLock word (CAS expected value)
  };
  std::vector<ReadEnt> rdset;
  std::vector<WriteEnt> wrset;
  htm::SmallIndexMap wr_index;       // gaddr -> wrset index
  htm::SmallIndexMap lock_dedupe;    // lock pointer -> wrset index that acquired it
  std::vector<std::uint32_t> acquired;  // wrset indices that performed the CAS
  std::uint64_t rv = 0;              // SP: gClock read at TxStart (Fig. 7)
  std::uint64_t validated_seq = 0;   // commit_seq covering the last full validation

  // ---- Hardware path (Fig. 5) -----------------------------------------
  struct HwUndoEnt {
    gaddr_t addr;
    word_t old;
  };
  std::vector<HwUndoEnt> hw_undo;  // thread-local append-only log
  htm::SmallSet hw_written;        // addresses written this attempt
  std::vector<LockRef> hw_locks;   // locks acquired inside the HW txn

  /// One-entry lock memo for the hw fast path: the last lock s-word this
  /// attempt checked, plus its transactionally-observed value. Sound to
  /// reuse because the first check subscribed the lock's line — any foreign
  /// change dooms the transaction before it can commit, so within an
  /// attempt the cached word is the word a re-load would return. Cleared
  /// at each attempt start.
  std::atomic<std::uint64_t>* hw_lock_memo = nullptr;
  std::uint64_t hw_lock_memo_word = 0;

  // ---- Shared persistence scratch ---------------------------------------
  struct PersistEnt {
    gaddr_t addr;
    word_t old;
    word_t val;
  };
  std::vector<PersistEnt> persist_buf;

  /// Pre-sizes every per-transaction scratch vector once at TM
  /// construction so the steady state never reallocates on the hot path
  /// (clear() keeps capacity; only footprints beyond these grow later).
  void reserve_scratch() {
    rdset.reserve(256);
    wrset.reserve(64);
    acquired.reserve(64);
    persist_buf.reserve(64);
    hw_undo.reserve(64);
    hw_locks.reserve(64);
  }
};

/// xabort code used by the hardware path when it encounters a foreign lock.
inline constexpr std::uint8_t kHwLockedAbortCode = 0x7C;

}  // namespace nvhalt
