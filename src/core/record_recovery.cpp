#include "core/record_recovery.hpp"

#include <atomic>
#include <vector>

#include "pmem/checkpoint.hpp"
#include "runtime/recovery_pool.hpp"

namespace nvhalt {

namespace {

/// Reverts word `a` if its record was in-flight at the crash, then stores
/// the (possibly reverted) value into the volatile image. The unit of work
/// both the bounded and the full path share; idempotent, so a power
/// failure mid-recovery just means recovery runs again.
inline bool recover_word(PmemPool& pool, int tid, gaddr_t a,
                         const std::uint64_t (&durable_pver)[kMaxThreads]) {
  PRecord r = pool.read_record(a);
  const int wtid = pver_tid(r.pver);
  const std::uint64_t seq = pver_seq(r.pver);
  bool reverted = false;
  if (seq >= durable_pver[wtid] && r.cur != r.old) {
    pool.revert_record(a);
    pool.flush_record(tid, a);
    r.cur = r.old;
    reverted = true;
  }
  pool.store(a, r.cur);
  return reverted;
}

}  // namespace

RecordRecoveryReport recover_records(PmemPool& pool,
                                     const std::uint64_t (&durable_pver)[kMaxThreads],
                                     const RecordRecoveryOptions& opts) {
  RecordRecoveryReport rep;
  const std::size_t cap = pool.capacity_words();

  if (opts.skip_nth_revert >= 0) {
    // Exact legacy serial loop: the mutation tests identify the record to
    // tear by its position in the address-order revert sequence.
    int reverts_seen = 0;
    for (gaddr_t a = 1; a < cap; ++a) {
      PRecord r = pool.read_record(a);
      const int wtid = pver_tid(r.pver);
      const std::uint64_t seq = pver_seq(r.pver);
      if (seq >= durable_pver[wtid] && r.cur != r.old) {
        if (reverts_seen++ == opts.skip_nth_revert) {
          // Fault injection: leave this in-flight record torn.
          pool.store(a, r.cur);
          continue;
        }
        pool.revert_record(a);
        pool.flush_record(opts.rtid, a);
        r.cur = r.old;
        rep.reverts++;
      }
      pool.store(a, r.cur);
    }
    pool.fence(opts.rtid);
    rep.lines_scanned = pool.record_lines();
    return rep;
  }

  std::atomic<std::uint64_t> reverts{0};

  if (opts.ckpt != nullptr && opts.ckpt->durable_valid()) {
    // Bounded path: only durably-dirty lines can hold an in-flight record
    // (the dirty bit is fenced before any record store to the line is
    // staged), so the revert pass visits just the delta-since-checkpoint.
    rep.bounded = true;
    std::vector<std::size_t> dirty;
    const std::size_t rec_lines = opts.ckpt->record_lines();
    for (std::size_t line = 0; line < rec_lines; ++line) {
      if (opts.ckpt->durable_dirty(line)) dirty.push_back(line);
    }
    rep.lines_scanned = dirty.size();

    rep.workers_used = runtime::run_recovery_partitions(
        dirty.size(), opts.workers, opts.rtid,
        [&](int tid, std::size_t lo, std::size_t hi) {
          std::uint64_t local = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const gaddr_t first = static_cast<gaddr_t>(dirty[i] * 2);
            for (gaddr_t a = first; a < first + 2; ++a) {
              if (a < 1 || a >= cap) continue;
              if (recover_word(pool, tid, a, durable_pver)) ++local;
            }
          }
          pool.fence(tid);
          reverts.fetch_add(local, std::memory_order_relaxed);
        });

    // Clean lines still need their volatile image rebuilt — but their
    // records are durably committed, so no predicate and no persistence.
    runtime::run_recovery_partitions(
        cap - 1, opts.workers, opts.rtid, [&](int /*tid*/, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const gaddr_t a = static_cast<gaddr_t>(1 + i);
            if (opts.ckpt->durable_dirty(static_cast<std::size_t>(a) / 2)) continue;
            pool.store(a, pool.read_record(a).cur);
          }
        });
  } else {
    // Full scan (no checkpoint region, or the crash predates its
    // initialization fence): every record is a revert candidate.
    rep.lines_scanned = pool.record_lines();
    rep.workers_used = runtime::run_recovery_partitions(
        cap - 1, opts.workers, opts.rtid, [&](int tid, std::size_t lo, std::size_t hi) {
          std::uint64_t local = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const gaddr_t a = static_cast<gaddr_t>(1 + i);
            if (recover_word(pool, tid, a, durable_pver)) ++local;
          }
          pool.fence(tid);
          reverts.fetch_add(local, std::memory_order_relaxed);
        });
  }

  rep.reverts = reverts.load(std::memory_order_relaxed);
  return rep;
}

}  // namespace nvhalt
