// Transaction outcome statistics, kept per thread and aggregated on demand.
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace nvhalt {

// commits == hw_commits + sw_commits + ro_commits, always: every commit is
// attributed to exactly one path. read_only_commits counts commits with an
// empty write set on *any* path (a superset of ro_commits — the general
// hardware/software paths also commit read-only bodies).
struct TmThreadStats {
  std::uint64_t commits = 0;            // total committed transactions
  std::uint64_t hw_commits = 0;         // committed on the hardware path
  std::uint64_t sw_commits = 0;         // committed on the software path
  std::uint64_t ro_commits = 0;         // committed on the read-only fast path
  std::uint64_t read_only_commits = 0;  // committed with an empty write set
  std::uint64_t hw_aborts = 0;          // hardware attempt aborts (all causes)
  std::uint64_t sw_aborts = 0;          // software attempt conflict aborts
  std::uint64_t ro_aborts = 0;          // read-only fast-path attempt aborts
  std::uint64_t fallbacks = 0;          // transactions that exhausted HW attempts
  std::uint64_t user_aborts = 0;        // voluntary aborts

  void reset() { *this = TmThreadStats{}; }
};

struct TmStats {
  std::uint64_t commits = 0;
  std::uint64_t hw_commits = 0;
  std::uint64_t sw_commits = 0;
  std::uint64_t ro_commits = 0;
  std::uint64_t read_only_commits = 0;
  std::uint64_t hw_aborts = 0;
  std::uint64_t sw_aborts = 0;
  std::uint64_t ro_aborts = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t user_aborts = 0;

  void add(const TmThreadStats& t);
  std::string to_string() const;
};

}  // namespace nvhalt
