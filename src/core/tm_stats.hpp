// Transaction outcome statistics, kept per thread and aggregated on demand.
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace nvhalt {

struct TmThreadStats {
  std::uint64_t commits = 0;            // total committed transactions
  std::uint64_t hw_commits = 0;         // committed on the hardware path
  std::uint64_t sw_commits = 0;         // committed on the software path
  std::uint64_t read_only_commits = 0;  // committed with an empty write set
  std::uint64_t hw_aborts = 0;          // hardware attempt aborts (all causes)
  std::uint64_t sw_aborts = 0;          // software attempt conflict aborts
  std::uint64_t fallbacks = 0;          // transactions that exhausted HW attempts
  std::uint64_t user_aborts = 0;        // voluntary aborts

  void reset() { *this = TmThreadStats{}; }
};

struct TmStats {
  std::uint64_t commits = 0;
  std::uint64_t hw_commits = 0;
  std::uint64_t sw_commits = 0;
  std::uint64_t read_only_commits = 0;
  std::uint64_t hw_aborts = 0;
  std::uint64_t sw_aborts = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t user_aborts = 0;

  void add(const TmThreadStats& t);
  std::string to_string() const;
};

}  // namespace nvhalt
