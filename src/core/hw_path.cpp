// NV-HALT hardware fast path (paper Fig. 5): hardware-assisted locking.
//
// Reads subscribe to the address's versioned lock and xabort if it is held
// by another thread (needed both for opacity against the lock-based
// software path — Fig. 3 — and to avoid observing non-durable data).
// Writes *acquire* the lock inside the hardware transaction; the lock
// becomes visible atomically at xend and stays held afterwards, protecting
// the modified addresses while the post-transaction code persists the undo
// log, bumps the thread's persistent version number, and only then releases
// the locks (Sec. 3.4). This is what Fig. 4 shows is missing from a
// metadata-read-only fast path in the persistent setting.
#include <algorithm>

#include "core/nvhalt_internal.hpp"

namespace nvhalt {

/// Tx handle for one hardware-path attempt. All accesses run inside the
/// simulated hardware transaction; aborts unwind via htm::HtmAbort.
class NvHaltHwTx final : public Tx {
 public:
  NvHaltHwTx(NvHaltTm& tm, NvHaltTm::ThreadCtx& ctx, int tid)
      : tm_(tm),
        ctx_(ctx),
        tid_(tid),
        // Config is immutable for the TM's lifetime; cache the per-access
        // policy bits as plain bools so each read/write pays one register
        // test instead of re-deriving the policy from config fields.
        check_locks_(tm.cfg_.hw_read_check_locks),
        acquire_locks_(tm.cfg_.persist_hw_txns && tm.cfg_.hw_acquire_locks),
        persisting_(tm.cfg_.persist_hw_txns),
        strong_(tm.cfg_.variant == Variant::kStrong) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, tid_, a);
    if (check_locks_) {
      LockRef lk = tm_.locks_.ref(a);
      // Lock memo hit: this attempt already subscribed to and checked this
      // lock word; the cached value is still what a re-load would return
      // (any foreign change dooms us), and it already passed the
      // locked-by-other test, so skip both.
      if (lk.s != ctx_.hw_lock_memo) {
        const std::uint64_t w = tm_.htm_.load(tid_, lk.loc, lk.s);
        if (lockword::locked_by_other(w, tid_)) {
          // Contention cells are plain diagnostics outside the simulated
          // transaction's tracked footprint, so the increment survives the
          // xabort below.
          tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
          tm_.htm_.xabort(tid_, kHwLockedAbortCode);
        }
        ctx_.hw_lock_memo = lk.s;
        ctx_.hw_lock_memo_word = w;
      }
    }
    return tm_.htm_.load(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a));
  }

  void write(gaddr_t a, word_t v) override {
    telemetry::trace2(telemetry::EventKind::kWrite, tid_, a);
    if (acquire_locks_) {
      LockRef lk = tm_.locks_.ref(a);
      // Memo hit where the cached word shows us as owner: nothing to do.
      // (A memo hit from the read path may still show the lock free — we
      // must acquire it below; the memoized word doubles as the pre-image.)
      std::uint64_t w;
      if (lk.s == ctx_.hw_lock_memo) {
        w = ctx_.hw_lock_memo_word;
      } else {
        w = tm_.htm_.load(tid_, lk.loc, lk.s);
        ctx_.hw_lock_memo = lk.s;
        ctx_.hw_lock_memo_word = w;
      }
      if (!lockword::is_locked(w)) {
        // htmAcquireLock (Fig. 7): bump sLockVer; SP also bumps hLockVer.
        const std::uint64_t acq = lockword::acquired(w, tid_);
        tm_.htm_.store(tid_, lk.loc, lk.s, acq);
        ctx_.hw_lock_memo_word = acq;
        if (strong_) {
          const std::uint64_t hv = tm_.htm_.load(tid_, lk.loc, lk.h);
          tm_.htm_.store(tid_, lk.loc, lk.h, hv + 1);
        }
        ctx_.hw_locks.push_back({lk, acq});
      } else if (lockword::owner(w) != tid_) {
        tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
        tm_.htm_.xabort(tid_, kHwLockedAbortCode);
      }
    }
    ctx_.hw_wrote = true;
    if (persisting_) {
      // Undo log: record the pre-transaction value on first write, read
      // out of the fused store (one write-buffer probe for both).
      word_t old;
      if (tm_.htm_.store_prev(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a), v, &old))
        ctx_.hw_undo.push_back({a, old});
    } else {
      tm_.htm_.store(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a), v);
    }
  }

  gaddr_t alloc(std::size_t nwords) override { return tm_.alloc_.tx_alloc(tid_, nwords); }
  void free(gaddr_t a, std::size_t nwords) override { tm_.alloc_.tx_free(tid_, a, nwords); }
  bool on_hw_path() const override { return true; }

 private:
  NvHaltTm& tm_;
  NvHaltTm::ThreadCtx& ctx_;
  int tid_;
  const bool check_locks_;
  const bool acquire_locks_;
  const bool persisting_;
  const bool strong_;
};

NvHaltTm::AttemptResult NvHaltTm::attempt_hw(int tid, TxBody body) {
  // Reclamation epoch: the quiescent refresh keeps this thread's
  // persistent reservation current, so no node this transaction may read
  // can be recycled under it (alloc/ebr.hpp).
  alloc::quiesce_attempt(alloc_.epochs(), tid);
  ThreadCtx& ctx = ctx_[tid];
  ctx.hw_undo.clear();
  ctx.hw_locks.clear();
  ctx.hw_wrote = false;
  ctx.hw_lock_memo = nullptr;  // lock words may change between attempts

  htm_.begin(tid);
  NvHaltHwTx tx(*this, ctx, tid);
  try {
    body(tx);
    htm_.commit(tid);  // xend
  } catch (const htm::HtmAbort& a) {
    htm_.cancel(tid);  // no-op if SimHtm already cleaned up; needed for
                       // HtmAbort raised outside the simulator (allocator)
    alloc_.on_abort(tid);
    ctx.record_hw_abort(tid, a.cause, a.code);
    return AttemptResult::kAborted;
  } catch (const TxUserAbort&) {
    htm_.cancel(tid);
    alloc_.on_abort(tid);
    ctx.stats.user_aborts++;
    return AttemptResult::kUserAborted;
  } catch (...) {
    htm_.cancel(tid);
    alloc_.on_abort(tid);
    throw;
  }

  // The hardware transaction committed: its writes and lock acquisitions
  // are visible. Persist the write set under those locks (flushes must
  // happen outside the transaction — they would have aborted it).
  if (!ctx.hw_locks.empty()) {
    telemetry::trace1(telemetry::EventKind::kLockAcquire, tid, ctx.hw_locks.size());
    // Recorded after xend: the locks are published and held, and recorder
    // writes (raw stores + flushes) would have aborted the transaction.
    ctx.fr(tid, telemetry::EventKind::kLockAcquire, 0xFF,
           static_cast<std::uint16_t>(
               std::min<std::size_t>(ctx.hw_locks.size(), 0xFFFF)));
  }
  if (cfg_.persist_hw_txns && (!ctx.hw_undo.empty() || alloc_.has_pending(tid))) {
    ctx.persist_buf.clear();
    for (const auto& u : ctx.hw_undo)
      ctx.persist_buf.push_back({u.addr, u.old, pool_.load(u.addr)});
    persist_and_bump_pver(tid, ctx);
  }

  // This hardware transaction published lock acquisitions at xend: bump
  // the global commit sequence before releasing them so software readers'
  // validation snapshots are invalidated no later than the writes become
  // sandwich-readable (docs/PROTOCOLS.md). Plain seq_cst fetch_add: no
  // hardware transaction ever tracks the sequence (htm_types.hpp), so
  // conflict-table traffic for it would model nothing.
  if (!ctx.hw_locks.empty())
    commit_seq_.value.fetch_add(1, std::memory_order_seq_cst);

  // Release the hardware-acquired locks; data is durable now. A held lock
  // cannot have changed since xend (acquire CASes expect an unlocked
  // pre-image), so release from the recorded acquisition word.
  htm::SimHtm::NontxClaim claim;
  for (const ThreadCtx::HwLockEnt& hl : ctx.hw_locks)
    htm_.nontx_store_cached(tid, hl.lk.loc, hl.lk.s, lockword::released(hl.acq), claim);
  htm_.nontx_claim_release(claim);

  alloc_.on_commit(tid);
  ctx.stats.commits++;
  ctx.stats.hw_commits++;
  if (!ctx.hw_wrote) ctx.stats.read_only_commits++;
  return AttemptResult::kCommitted;
}

}  // namespace nvhalt
