// NV-HALT software fallback path (paper Fig. 1, plus the NV-HALT-SP
// changes of Fig. 7): a TL2-style commit-time-locking STM with deferred
// (buffered) writes and Trinity undo-record persistence performed while
// the write-set locks are held. Fig. 1 revalidates the full read set on
// every read; by default we instead revalidate only when the global
// commit sequence has moved since the transaction's
// last validated snapshot — O(1) per read in the common case, same
// opacity guarantee (docs/PROTOCOLS.md, "Snapshot-extension read
// validation"; validate_every_read restores the literal protocol).
#include <algorithm>

#include "core/nvhalt_internal.hpp"

namespace nvhalt {

/// Tx handle for one software-path attempt.
class NvHaltSwTx final : public Tx {
 public:
  NvHaltSwTx(NvHaltTm& tm, NvHaltTm::ThreadCtx& ctx, int tid)
      : tm_(tm), ctx_(ctx), tid_(tid) {}

  word_t read(gaddr_t a) override {
    telemetry::trace2(telemetry::EventKind::kRead, tid_, a);
    // Read-own-writes: the write set is buffered until commit.
    const std::uint32_t found = ctx_.wr_index.find(a);
    if (found != htm::SmallIndexMap::kNotFound) return ctx_.wrset[found].val;

    LockRef lk = tm_.locks_.ref(a);
    // TL2-style stable read: value sandwiched between two identical,
    // unlocked lock snapshots. A locked or changed lock means a concurrent
    // conflicting writer — abort (weak progressiveness permits this).
    const std::uint64_t l1 = tm_.htm_.nontx_load(tid_, lk.loc, lk.s);
    if (lockword::is_locked(l1)) {
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
      throw TxConflictAbort{};
    }
    const word_t val = tm_.htm_.nontx_load(tid_, htm::loc_pool(a), tm_.pool_.word_ptr(a));
    std::uint64_t h = 0;
    if (tm_.cfg_.variant == Variant::kStrong)
      h = tm_.htm_.nontx_load(tid_, lk.loc, lk.h);
    const std::uint64_t l2 = tm_.htm_.nontx_load(tid_, lk.loc, lk.s);
    if (l1 != l2) {
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
      throw TxConflictAbort{};
    }

    ctx_.rdset.push_back({a, lk.s, lk.h, lk.loc, l1, h});
    if (NVHALT_UNLIKELY(tm_.cfg_.validate_every_read)) {
      // Fig. 1: "The read set is revalidated on each read" — this is what
      // keeps every snapshot a doomed transaction sees consistent (opacity).
      if (!validate_rdset()) throw TxConflictAbort{};
      return val;
    }
    // Common case: every writer bumps commit_seq before releasing its
    // locks, and values written under a held lock are unreadable (the
    // sandwich above aborts), so an unchanged commit_seq proves no writer
    // published between the last validated snapshot and now — the snapshot
    // extends to this read for free. Only when the sequence moved do we pay
    // the full revalidation, extending the snapshot to the pre-validation
    // sequence value on success.
    // Plain acquire load: no hardware transaction tracks the sequence
    // (htm_types.hpp), and acquire pairs with the writer's seq_cst bump.
    const std::uint64_t seq = tm_.commit_seq_.value.load(std::memory_order_acquire);
    if (NVHALT_UNLIKELY(seq != ctx_.validated_seq)) {
      if (!validate_rdset()) throw TxConflictAbort{};
      ctx_.validated_seq = seq;
      telemetry::trace1(telemetry::EventKind::kSwExtend, tid_, seq);
    }
    return val;
  }

  void write(gaddr_t a, word_t v) override {
    telemetry::trace2(telemetry::EventKind::kWrite, tid_, a);
    const std::uint32_t found = ctx_.wr_index.find(a);
    if (found != htm::SmallIndexMap::kNotFound) {
      ctx_.wrset[found].val = v;
      return;
    }
    LockRef lk = tm_.locks_.ref(a);
    // Encounter-time check: the lock must be free now; its version is the
    // CAS expectation at commit (Fig. 1 / Sec. 3.2).
    const std::uint64_t l = tm_.htm_.nontx_load(tid_, lk.loc, lk.s);
    if (lockword::is_locked(l)) {
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(a));
      throw TxConflictAbort{};
    }
    ctx_.wr_index.insert(a, static_cast<std::uint32_t>(ctx_.wrset.size()));
    ctx_.wrset.push_back({a, v, lk.s, lk.h, lk.loc, l});
  }

  gaddr_t alloc(std::size_t nwords) override { return tm_.alloc_.tx_alloc(tid_, nwords); }
  void free(gaddr_t a, std::size_t nwords) override { tm_.alloc_.tx_free(tid_, a, nwords); }
  bool on_hw_path() const override { return false; }

  /// Read-set validation: every entry must still carry its encounter-time
  /// lock word, or be locked by this thread with exactly one intervening
  /// acquire (our own commit-time acquisition).
  bool validate_rdset() const {
    telemetry::trace1(telemetry::EventKind::kSwValidate, tid_, ctx_.rdset.size());
    for (const auto& e : ctx_.rdset) {
      const std::uint64_t cur = tm_.htm_.nontx_load(tid_, e.lock_loc, e.lock_s);
      if (cur == e.seen_s) continue;
      if (lockword::is_locked(cur) && lockword::owner(cur) == tid_ &&
          lockword::version(cur) == lockword::version(e.seen_s) + 1)
        continue;
      // Attribute the validation failure to the stripe whose lock moved.
      tm_.locks_.contention().on_abort(tm_.locks_.contention_stripe(e.addr));
      return false;
    }
    return true;
  }

  /// Fig. 7 foundHtxConflict: any hVer movement in the read set betrays a
  /// concurrent hardware transaction.
  bool found_htx_conflict() const {
    for (const auto& e : ctx_.rdset) {
      if (tm_.htm_.nontx_load(tid_, e.lock_loc, e.lock_h) != e.seen_h) return true;
    }
    return false;
  }

  /// Commit-time protocol. Throws TxConflictAbort on failure after
  /// releasing anything acquired.
  void commit() {
    if (ctx_.wrset.empty()) {
      if (tm_.alloc_.has_pending(tid_)) {
        // No data words written, but the transaction allocated or freed:
        // the allocator effects still need the arm → marker → apply
        // durability sequence (no locks to hold — reads were validated at
        // read time, and the effects are per-thread allocator state).
        ctx_.persist_buf.clear();
        tm_.persist_and_bump_pver(tid_, ctx_);
        return;
      }
      ctx_.stats.read_only_commits++;
      return;  // read-only: validated on every read, nothing to persist
    }

    if (tm_.cfg_.variant == Variant::kStrong) {
      // Fixed-order acquisition (TL2-style) is half of strong
      // progressiveness: opposing lock orders can no longer deadlock-abort
      // each other forever. Sequential structure updates already produce
      // address-sorted write sets, so check before sorting.
      const auto by_addr = [](const auto& x, const auto& y) { return x.addr < y.addr; };
      if (!std::is_sorted(ctx_.wrset.begin(), ctx_.wrset.end(), by_addr))
        std::sort(ctx_.wrset.begin(), ctx_.wrset.end(), by_addr);
    }

    acquire_locks();

    bool validated = false;
    if (tm_.cfg_.variant == Variant::kStrong) {
      // Fig. 7: a successful CAS on gClock means no software writer
      // committed since TxStart, so sLock validation can be skipped; only
      // hardware transactions (which never touch gClock) must be checked,
      // via the hVer halves of the read locks.
      std::uint64_t expected = ctx_.rv;
      // gClock is software-path-only state (htm_types.hpp): plain seq_cst
      // CAS/fetch_add keep the Fig. 7 ordering without conflict-table cost.
      if (tm_.gclock_.value.compare_exchange_strong(expected, ctx_.rv + 1,
                                                    std::memory_order_seq_cst)) {
        if (found_htx_conflict()) {
          release_acquired();
          throw TxConflictAbort{};
        }
        validated = true;
      }
    }
    if (!validated) {
      if (!validate_rdset()) {
        release_acquired();
        throw TxConflictAbort{};
      }
      if (tm_.cfg_.variant == Variant::kStrong) {
        // Deviation from Fig. 7 (documented in DESIGN.md): a writer whose
        // gClock CAS failed still advances the clock after validating, so
        // that a successful CAS by another transaction genuinely implies
        // "no concurrent software writer" — otherwise the skip-validation
        // branch would be unsound.
        tm_.gclock_.value.fetch_add(1, std::memory_order_seq_cst);
      }
    }

    // Point of no return: locks held, reads valid. Persist + apply.
    ctx_.persist_buf.clear();
    for (const auto& w : ctx_.wrset)
      ctx_.persist_buf.push_back({w.addr, tm_.pool_.load(w.addr), w.val});
    tm_.persist_and_bump_pver(tid_, ctx_);

    // Publication point for the read-validation cache: the bump must
    // happen before any lock release, so a reader whose sandwich read
    // observes our released lock is guaranteed to also observe the moved
    // commit_seq and revalidate (docs/PROTOCOLS.md).
    tm_.commit_seq_.value.fetch_add(1, std::memory_order_seq_cst);

    release_acquired();
  }

 private:
  void acquire_locks() {
    ctx_.lock_dedupe.clear();
    ctx_.acquired.clear();
    for (std::uint32_t i = 0; i < ctx_.wrset.size(); ++i) {
      auto& w = ctx_.wrset[i];
      // Several addresses may share one lock (table mode): the first entry
      // acquires it; later entries must have seen the same version.
      const std::uint64_t key = reinterpret_cast<std::uintptr_t>(w.lock_s);
      const std::uint32_t holder = ctx_.lock_dedupe.find(key);
      if (holder != htm::SmallIndexMap::kNotFound) {
        if (ctx_.wrset[holder].seen_s != w.seen_s) {
          release_acquired();
          throw TxConflictAbort{};
        }
        continue;
      }
      std::uint64_t expected = w.seen_s;
      if (!tm_.htm_.nontx_cas(tid_, w.lock_loc, w.lock_s, expected,
                              lockword::acquired(w.seen_s, tid_))) {
        tm_.locks_.contention().on_cas_fail(tm_.locks_.contention_stripe(w.addr));
        release_acquired();
        throw TxConflictAbort{};
      }
      ctx_.lock_dedupe.insert(key, i);
      ctx_.acquired.push_back(i);
    }
    telemetry::trace1(telemetry::EventKind::kLockAcquire, tid_, ctx_.acquired.size());
    ctx_.fr(tid_, telemetry::EventKind::kLockAcquire, 0xFF,
            static_cast<std::uint16_t>(
                std::min<std::size_t>(ctx_.acquired.size(), 0xFFFF)));
  }

  void release_acquired() {
    for (const std::uint32_t i : ctx_.acquired) {
      const auto& w = ctx_.wrset[i];
      const std::uint64_t held = lockword::acquired(w.seen_s, tid_);
      tm_.htm_.nontx_store(tid_, w.lock_loc, w.lock_s, lockword::released(held));
    }
    ctx_.acquired.clear();
  }

  NvHaltTm& tm_;
  NvHaltTm::ThreadCtx& ctx_;
  int tid_;
};

NvHaltTm::AttemptResult NvHaltTm::attempt_sw(int tid, TxBody body) {
  // Reclamation epoch: the quiescent refresh keeps this thread's
  // persistent reservation current, so no node this transaction may read
  // can be recycled under it (alloc/ebr.hpp).
  alloc::quiesce_attempt(alloc_.epochs(), tid);
  ThreadCtx& ctx = ctx_[tid];
  ctx.rdset.clear();
  ctx.wrset.clear();
  ctx.wr_index.clear();
  if (cfg_.variant == Variant::kStrong)
    ctx.rv = gclock_.value.load(std::memory_order_seq_cst);  // TxStart (Fig. 7)
  // Initial validation snapshot: the empty read set is trivially valid at
  // the commit_seq value read here.
  if (!cfg_.validate_every_read)
    ctx.validated_seq = commit_seq_.value.load(std::memory_order_acquire);

  NvHaltSwTx tx(*this, ctx, tid);
  try {
    body(tx);
    tx.commit();
  } catch (const TxConflictAbort&) {
    alloc_.on_abort(tid);
    ctx.stats.sw_aborts++;
    return AttemptResult::kAborted;
  } catch (const TxUserAbort&) {
    alloc_.on_abort(tid);
    ctx.stats.user_aborts++;
    return AttemptResult::kUserAborted;
  } catch (...) {
    // Foreign exception (e.g. SimulatedPowerFailure): transaction state is
    // abandoned, volatile metadata will be reset by recovery.
    alloc_.on_abort(tid);
    throw;
  }
  alloc_.on_commit(tid);
  ctx.stats.commits++;
  ctx.stats.sw_commits++;
  return AttemptResult::kCommitted;
}

}  // namespace nvhalt
