#include "core/tm_stats.hpp"

#include <sstream>

namespace nvhalt {

void TmStats::add(const TmThreadStats& t) {
  commits += t.commits;
  hw_commits += t.hw_commits;
  sw_commits += t.sw_commits;
  ro_commits += t.ro_commits;
  read_only_commits += t.read_only_commits;
  hw_aborts += t.hw_aborts;
  sw_aborts += t.sw_aborts;
  ro_aborts += t.ro_aborts;
  fallbacks += t.fallbacks;
  user_aborts += t.user_aborts;
}

std::string TmStats::to_string() const {
  std::ostringstream os;
  os << "tm{commits=" << commits << " hw=" << hw_commits << " sw=" << sw_commits
     << " ro=" << ro_commits << " read_only=" << read_only_commits
     << " hw_aborts=" << hw_aborts << " sw_aborts=" << sw_aborts
     << " ro_aborts=" << ro_aborts << " fallbacks=" << fallbacks
     << " user_aborts=" << user_aborts << "}";
  return os.str();
}

}  // namespace nvhalt
