// Persistence-trace journal + deterministic crash-prefix enumeration.
//
// The random-trip CrashCoordinator (crash_sim.hpp) samples a handful of
// crash instants per run and can never reproduce a failure. This module
// turns crash testing into a deterministic, exhaustive tool:
//
//  * A PersistJournal, installed on a PmemPool via PmemConfig::journal,
//    records a linearized trace of every persistence event the pool
//    executes: stores into the staged (cache) image, cacheline flushes
//    queued for the next fence, and the fences themselves.
//  * materialize_crash_image() replays any *prefix* of that trace into the
//    durable NVM image a power failure at that instant would leave behind:
//    fences persist the lines their thread had flushed; optionally a
//    seeded adversary additionally writes back a subset of dirty lines up
//    to a per-line store-order cut (modelling spontaneous cache
//    write-back, honouring x86's same-line ordering guarantee).
//  * A CrashEnumerator walks every fence boundary of the trace (plus the
//    empty and full prefixes), materializes the fence image and a budgeted
//    number of adversarial subset images per boundary, and hands each to a
//    caller-supplied checker that installs the image, runs recovery and
//    verifies invariants. A failing image is reported as a replayable
//    (trace-hash, prefix-index, subset-seed) triple: the same triple over
//    the same trace always reproduces bit-identical durable state.
//
// The journal is test-only instrumentation: when PmemConfig::journal is
// null (the default) the pool's hot paths pay one predicted-untaken branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace nvhalt {

enum class PersistEventKind : std::uint8_t {
  kStore = 0,  // staged-image store: (word, value), line derived for cuts
  kFlush = 1,  // clflushopt/clwb: line queued on tid's flush queue
  kFence = 2,  // sfence: tid's queued lines become durable
  /// Allocator intent annotation (arm/apply of a per-thread alloc/free
  /// record). Carries no durable effect of its own — the underlying raw
  /// stores are journaled as kStore — but lets checkers locate allocator
  /// commit points in the trace. `value` packs the arm id and entry count.
  kAllocMark = 3,
  /// Group-fence membership: thread `tid` handed its flush queue to the
  /// combining leader (`value` = leader tid) whose next kFence persists the
  /// whole batch. The join itself makes nothing durable — the materializer
  /// splices tid's queued lines onto the leader's queue, so the leader's
  /// kFence is the *single* durable boundary covering every member: a
  /// crash between the join and the leader's fence loses the entire batch,
  /// exactly the guarantee that lets followers wait for one shared fence.
  kFenceJoin = 4,
};

/// One entry in the linearized persistence trace. `word` is a global
/// persistent word index (raw space first, then record space — the same
/// unified layout PmemPool::persist_line uses); `line` is the word's
/// simulated cache line.
struct PersistEvent {
  PersistEventKind kind;
  std::int32_t tid;
  std::uint64_t line;
  std::uint64_t word;   // kStore only
  std::uint64_t value;  // kStore only

  bool operator==(const PersistEvent&) const = default;
};

/// Thread-safe append-only journal of persistence events. The mutex
/// serializes concurrent pool operations into one total order; that order
/// *is* the trace's definition of "before the crash" (a valid
/// linearization: every persistent word is written under its lock, so
/// per-word store order is preserved, and each thread's own events keep
/// program order).
class PersistJournal {
 public:
  void on_store(int tid, std::uint64_t line, std::uint64_t word, std::uint64_t value) {
    append({PersistEventKind::kStore, tid, line, word, value});
  }
  void on_flush(int tid, std::uint64_t line) {
    append({PersistEventKind::kFlush, tid, line, 0, 0});
  }
  void on_fence(int tid) { append({PersistEventKind::kFence, tid, 0, 0, 0}); }
  void on_alloc_mark(int tid, std::uint64_t value) {
    append({PersistEventKind::kAllocMark, tid, 0, 0, value});
  }
  /// A combined group fence: each member's queue joins the leader, then the
  /// leader fences once. Appended in one critical section so the
  /// join+fence block stays contiguous in the trace — no foreign event can
  /// interleave between a member's hand-off and the fence that covers it,
  /// matching the pool's execution (the leader drains under the combiner
  /// lock). Enumeration still cuts *inside* the block via non-boundary
  /// prefixes.
  void on_fence_group(int leader, std::span<const int> members) {
    std::lock_guard<std::mutex> g(mu_);
    for (const int m : members)
      events_.push_back({PersistEventKind::kFenceJoin, m, 0, 0,
                         static_cast<std::uint64_t>(leader)});
    events_.push_back({PersistEventKind::kFence, leader, 0, 0, 0});
    count_.store(events_.size(), std::memory_order_release);
  }

  /// Number of events recorded so far. Lock-free: worker threads read this
  /// right after an acknowledged commit to record the durability bound the
  /// checker later enforces ("any prefix >= this index must reflect me").
  std::size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Snapshot of the trace (call quiescently — after workers joined).
  std::vector<PersistEvent> events() const {
    std::lock_guard<std::mutex> g(mu_);
    return events_;
  }

  void clear() {
    std::lock_guard<std::mutex> g(mu_);
    events_.clear();
    count_.store(0, std::memory_order_release);
  }

  /// FNV-1a over the trace contents; identifies a trace in failure triples.
  static std::uint64_t hash(std::span<const PersistEvent> trace);

 private:
  void append(PersistEvent ev) {
    std::lock_guard<std::mutex> g(mu_);
    events_.push_back(ev);
    count_.store(events_.size(), std::memory_order_release);
  }

  mutable std::mutex mu_;
  std::vector<PersistEvent> events_;
  std::atomic<std::size_t> count_{0};
};

/// A crashed NVM image: the durable value of every persistent word that
/// differs from the pool's initial (all-zero) durable state, sorted by
/// word index. Installed into a pool with PmemPool::install_crash_image.
struct CrashImage {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> words;

  bool operator==(const CrashImage&) const = default;
};

/// Replays trace[0, prefix) into the durable image a crash at that instant
/// leaves behind. subset_seed == 0 gives the pure fence-boundary image
/// (only fenced lines are durable); a nonzero seed additionally lets the
/// adversary write back each dirty line with probability 1/2, persisting a
/// seeded store-order prefix of the line (x86 persists same-line stores in
/// order, and a spontaneous write-back at instant T persists each word's
/// latest store before T). Fully deterministic in (trace, prefix, seed).
CrashImage materialize_crash_image(std::span<const PersistEvent> trace, std::size_t prefix,
                                   std::uint64_t subset_seed);

/// A replayable crash instant. Over the same trace (identified by
/// trace_hash), (prefix, subset_seed) rematerializes the exact image.
struct CrashTriple {
  std::uint64_t trace_hash = 0;
  std::size_t prefix = 0;
  std::uint64_t subset_seed = 0;

  std::string to_string() const;
};

struct CrashEnumOptions {
  /// Adversarial subset images sampled per fence boundary (on top of the
  /// deterministic seed-0 fence image).
  std::uint64_t subset_seeds_per_prefix = 2;
  /// Mixed into each boundary's derived subset seeds.
  std::uint64_t base_seed = 1;
  /// Wall-clock budget for the whole enumeration; 0 = unlimited. On
  /// exhaustion the run stops cleanly with stats().budget_exhausted set.
  std::uint64_t time_budget_ms = 0;
  /// If nonzero, stride-sample at most this many fence boundaries (spread
  /// over the whole trace) instead of enumerating every one.
  std::size_t max_prefixes = 0;
};

struct CrashEnumStats {
  std::size_t prefixes_checked = 0;
  std::size_t images_checked = 0;
  bool budget_exhausted = false;
};

struct CrashFailure {
  CrashTriple triple;
  std::string why;
};

/// Verdict callback: install `image`, run recovery, check invariants.
/// Return true if the recovered state is consistent; on false, fill *why.
using CrashImageChecker = std::function<bool(const CrashImage& image, std::size_t prefix,
                                             std::uint64_t subset_seed, std::string* why)>;

class CrashEnumerator {
 public:
  CrashEnumerator(std::vector<PersistEvent> trace, const CrashEnumOptions& opt);

  /// Enumerates crash points in trace order; returns the first failing
  /// image's triple, or nullopt if every checked image passed.
  std::optional<CrashFailure> run(const CrashImageChecker& check);

  /// Rechecks exactly one triple. Refuses (returns a failure explaining
  /// the mismatch) if the triple's trace_hash does not match this trace.
  std::optional<CrashFailure> replay(const CrashTriple& t, const CrashImageChecker& check);

  /// Derived, deterministic subset seed for sample `s` at `prefix`.
  std::uint64_t subset_seed_for(std::size_t prefix, std::uint64_t s) const;

  const CrashEnumStats& stats() const { return stats_; }
  std::uint64_t trace_hash() const { return hash_; }

  /// Crash-point prefixes: 0, one past each fence event, and the full
  /// trace. The unit of "every fence boundary" enumeration.
  const std::vector<std::size_t>& boundaries() const { return boundaries_; }

 private:
  std::vector<PersistEvent> trace_;
  CrashEnumOptions opt_;
  CrashEnumStats stats_;
  std::uint64_t hash_;
  std::vector<std::size_t> boundaries_;
};

// ---- Trace persistence (failure reproduction across processes) ----------

/// Writes the trace (with its hash) to a binary file; throws TmLogicError
/// on I/O failure.
void save_trace(const std::string& path, std::span<const PersistEvent> trace);

/// Loads a trace written by save_trace; validates magic and stored hash.
std::vector<PersistEvent> load_trace(const std::string& path);

/// Reads an unsigned integer from the environment (e.g. the CI's
/// NVHALT_CRASH_BUDGET time box); returns `fallback` when unset/invalid.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

}  // namespace nvhalt
