#include "pmem/crash_enum.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/rng.hpp"

namespace nvhalt {

namespace {

/// splitmix64 finalizer: decorrelates (base_seed, prefix, sample) into a
/// subset seed that is reproducible from the triple alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t PersistJournal::hash(std::span<const PersistEvent> trace) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ULL;  // FNV prime
    }
  };
  for (const PersistEvent& ev : trace) {
    mix(static_cast<std::uint64_t>(ev.kind));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.tid)));
    mix(ev.line);
    mix(ev.word);
    mix(ev.value);
  }
  return h;
}

std::string CrashTriple::to_string() const {
  std::ostringstream os;
  os << std::hex << trace_hash << std::dec << ":" << prefix << ":" << subset_seed;
  return os.str();
}

CrashImage materialize_crash_image(std::span<const PersistEvent> trace, std::size_t prefix,
                                   std::uint64_t subset_seed) {
  if (prefix > trace.size()) throw TmLogicError("crash prefix beyond trace end");

  // Per-line ordered store history and the index of the first store not yet
  // durable (the line's fenced frontier).
  struct LineState {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;  // (word, value)
    std::size_t fenced = 0;
  };
  std::unordered_map<std::uint64_t, LineState> lines;
  std::unordered_map<std::int32_t, std::vector<std::uint64_t>> queues;  // tid -> flushed lines
  std::unordered_map<std::uint64_t, std::uint64_t> durable;             // word -> value

  // A fence persists each queued line *wholesale*: every store recorded for
  // the line so far lands (clflush writes back the full current line, so a
  // neighbouring record's store that preceded the fence persists with it).
  const auto persist_line_upto = [&](LineState& ls, std::size_t upto) {
    for (std::size_t j = ls.fenced; j < upto; ++j) durable[ls.stores[j].first] = ls.stores[j].second;
    if (upto > ls.fenced) ls.fenced = upto;
  };

  for (std::size_t i = 0; i < prefix; ++i) {
    const PersistEvent& ev = trace[i];
    switch (ev.kind) {
      case PersistEventKind::kStore:
        lines[ev.line].stores.emplace_back(ev.word, ev.value);
        break;
      case PersistEventKind::kFlush:
        queues[ev.tid].push_back(ev.line);
        break;
      case PersistEventKind::kFence: {
        auto it = queues.find(ev.tid);
        if (it == queues.end()) break;
        for (const std::uint64_t line : it->second) {
          auto lit = lines.find(line);
          if (lit != lines.end()) persist_line_upto(lit->second, lit->second.stores.size());
        }
        it->second.clear();
        break;
      }
      case PersistEventKind::kAllocMark:
        break;  // annotation only: no durable effect
      case PersistEventKind::kFenceJoin: {
        // Member ev.tid hands its flushed lines to leader ev.value: splice
        // the member queue onto the leader's, so the leader's upcoming
        // kFence persists the union as one durable boundary. A crash here
        // (before that fence) leaves every joined line dirty — the whole
        // batch is lost together.
        auto src = queues.find(ev.tid);
        if (src == queues.end()) break;
        // Move the member's lines out before touching queues[leader]:
        // operator[] may rehash and invalidate `src`.
        std::vector<std::uint64_t> moved = std::move(src->second);
        src->second.clear();
        auto& dst = queues[static_cast<std::int32_t>(ev.value)];
        dst.insert(dst.end(), moved.begin(), moved.end());
        break;
      }
    }
  }

  if (subset_seed != 0) {
    // Spontaneous write-back adversary: each dirty line may have been
    // written back at some instant T before power was lost, persisting a
    // store-order prefix (each word's latest store before T). Deterministic:
    // dirty lines are visited in sorted order with a seeded RNG.
    std::vector<std::uint64_t> dirty;
    for (const auto& [line, ls] : lines)
      if (ls.fenced < ls.stores.size()) dirty.push_back(line);
    std::sort(dirty.begin(), dirty.end());
    Xoshiro256 rng(subset_seed);
    for (const std::uint64_t line : dirty) {
      LineState& ls = lines[line];
      if (!rng.next_bool(0.5)) continue;
      const std::size_t cut =
          ls.fenced + rng.next_bounded(ls.stores.size() - ls.fenced + 1);
      persist_line_upto(ls, cut);
    }
  }

  CrashImage img;
  img.words.assign(durable.begin(), durable.end());
  std::sort(img.words.begin(), img.words.end());
  return img;
}

CrashEnumerator::CrashEnumerator(std::vector<PersistEvent> trace, const CrashEnumOptions& opt)
    : trace_(std::move(trace)), opt_(opt), hash_(PersistJournal::hash(trace_)) {
  boundaries_.push_back(0);
  for (std::size_t i = 0; i < trace_.size(); ++i)
    if (trace_[i].kind == PersistEventKind::kFence) boundaries_.push_back(i + 1);
  if (boundaries_.back() != trace_.size()) boundaries_.push_back(trace_.size());
}

std::uint64_t CrashEnumerator::subset_seed_for(std::size_t prefix, std::uint64_t s) const {
  // Never 0 (0 selects the pure fence image).
  const std::uint64_t seed = mix64(opt_.base_seed ^ mix64(prefix + 1) ^ mix64(s + 1));
  return seed == 0 ? 1 : seed;
}

std::optional<CrashFailure> CrashEnumerator::run(const CrashImageChecker& check) {
  stats_ = CrashEnumStats{};
  const auto start = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (opt_.time_budget_ms == 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return static_cast<std::uint64_t>(elapsed) >= opt_.time_budget_ms;
  };

  // Stride-sample when a prefix cap is set, covering the whole trace
  // instead of just its beginning.
  const std::size_t n = boundaries_.size();
  const std::size_t stride =
      (opt_.max_prefixes != 0 && n > opt_.max_prefixes) ? (n + opt_.max_prefixes - 1) / opt_.max_prefixes
                                                        : 1;

  for (std::size_t b = 0; b < n; b += stride) {
    if (over_budget()) {
      stats_.budget_exhausted = true;
      return std::nullopt;
    }
    const std::size_t prefix = boundaries_[b];
    ++stats_.prefixes_checked;
    for (std::uint64_t s = 0; s <= opt_.subset_seeds_per_prefix; ++s) {
      const std::uint64_t seed = s == 0 ? 0 : subset_seed_for(prefix, s - 1);
      const CrashImage img = materialize_crash_image(trace_, prefix, seed);
      ++stats_.images_checked;
      std::string why;
      if (!check(img, prefix, seed, &why))
        return CrashFailure{CrashTriple{hash_, prefix, seed}, why};
    }
  }
  return std::nullopt;
}

std::optional<CrashFailure> CrashEnumerator::replay(const CrashTriple& t,
                                                    const CrashImageChecker& check) {
  if (t.trace_hash != hash_) {
    std::ostringstream os;
    os << "trace hash mismatch: triple is for " << std::hex << t.trace_hash << ", this trace is "
       << hash_ << " — replay needs the saved trace of the failing run";
    return CrashFailure{t, os.str()};
  }
  const CrashImage img = materialize_crash_image(trace_, t.prefix, t.subset_seed);
  ++stats_.images_checked;
  std::string why;
  if (!check(img, t.prefix, t.subset_seed, &why)) return CrashFailure{t, why};
  return std::nullopt;
}

// ---- Trace file I/O ------------------------------------------------------

namespace {
constexpr std::uint64_t kTraceMagic = 0x4E56485443525431ULL;  // "NVHTCRT1"

void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

void save_trace(const std::string& path, std::span<const PersistEvent> trace) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw TmLogicError("cannot open trace file for writing: " + path);
  put_u64(f, kTraceMagic);
  put_u64(f, trace.size());
  for (const PersistEvent& ev : trace) {
    put_u64(f, static_cast<std::uint64_t>(ev.kind));
    put_u64(f, static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.tid)));
    put_u64(f, ev.line);
    put_u64(f, ev.word);
    put_u64(f, ev.value);
  }
  put_u64(f, PersistJournal::hash(trace));
  if (!f) throw TmLogicError("short write to trace file: " + path);
}

std::vector<PersistEvent> load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw TmLogicError("cannot open trace file: " + path);
  if (get_u64(f) != kTraceMagic) throw TmLogicError("not a crash-trace file: " + path);
  const std::uint64_t n = get_u64(f);
  std::vector<PersistEvent> trace;
  trace.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PersistEvent ev;
    ev.kind = static_cast<PersistEventKind>(get_u64(f));
    ev.tid = static_cast<std::int32_t>(static_cast<std::uint32_t>(get_u64(f)));
    ev.line = get_u64(f);
    ev.word = get_u64(f);
    ev.value = get_u64(f);
    trace.push_back(ev);
  }
  const std::uint64_t stored_hash = get_u64(f);
  if (!f) throw TmLogicError("truncated trace file: " + path);
  if (stored_hash != PersistJournal::hash(trace))
    throw TmLogicError("trace file hash mismatch (corrupt file): " + path);
  return trace;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace nvhalt
