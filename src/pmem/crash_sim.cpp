#include "pmem/crash_sim.hpp"

// CrashCoordinator is header-only; this translation unit anchors the
// module in the build and hosts nothing else.
