#include "pmem/pmem_inspector.hpp"

#include <sstream>

namespace nvhalt {

PmemReport PmemInspector::scan() const {
  PmemReport r;
  std::uint64_t pvers[kMaxThreads];
  for (int t = 0; t < kMaxThreads; ++t) {
    pvers[t] = pool_.load_pver(t);
    if (pvers[t] != 0) {
      r.active_threads.push_back(t);
      r.thread_pvers.push_back(pvers[t]);
    }
  }
  for (gaddr_t a = 1; a < pool_.capacity_words(); ++a) {
    const PRecord staged = pool_.read_record(a);
    if (staged.pver != 0) {
      ++r.touched_records;
      const int tid = pver_tid(staged.pver);
      if (pver_seq(staged.pver) >= pvers[tid] && staged.cur != staged.old)
        ++r.in_flight_records;
    }
    const PRecord durable = pool_.read_durable_record(a);
    if (staged.cur != durable.cur || staged.old != durable.old ||
        staged.pver != durable.pver)
      ++r.undurable_records;
  }
  return r;
}

std::string PmemReport::to_string() const {
  std::ostringstream os;
  os << "pmem{touched=" << touched_records << " in_flight=" << in_flight_records
     << " undurable=" << undurable_records << " threads=[";
  for (std::size_t i = 0; i < active_threads.size(); ++i) {
    if (i != 0) os << ",";
    os << active_threads[i] << ":" << thread_pvers[i];
  }
  os << "]}";
  return os.str();
}

std::string PmemInspector::alloc_to_string(const AllocDurableSummary& s) {
  std::ostringstream os;
  if (!s.metadata_present) return "alloc{no-metadata}";
  os << "alloc{watermark=" << s.watermark << "/" << s.segment_count
     << " free_segs=" << s.free_segments << " large_segs=" << s.large_segments
     << " used_slots=" << s.used_slots << " armed_intents=" << s.armed_intents << "}";
  return os.str();
}

}  // namespace nvhalt
