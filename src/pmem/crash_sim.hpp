// Crash-injection coordinator for durable-linearizability testing.
//
// A test arms the coordinator, runs worker threads, and trips the freeze
// flag at a random instant. Every persistent-memory operation (and the TM
// transaction loop) polls the coordinator; once tripped, workers unwind
// with SimulatedPowerFailure — mid-commit, mid-flush, wherever they happen
// to be — modelling a power failure at an arbitrary instruction boundary.
// The test then joins the workers, calls PmemPool::crash() with an
// adversarial write-back policy, runs recovery, and checks the result.
#pragma once

#include <atomic>

namespace nvhalt {

/// Thrown at a crash point to unwind a worker thread. Deliberately not
/// derived from std::exception so generic catch(std::exception&) handlers
/// in user transaction bodies cannot swallow it.
struct SimulatedPowerFailure {};

class CrashCoordinator {
 public:
  /// Trips the freeze flag: every thread dies at its next crash point.
  void trip() { frozen_.store(true, std::memory_order_release); }

  /// Re-arms the coordinator for another crash cycle.
  void reset() { frozen_.store(false, std::memory_order_release); }

  bool tripped() const { return frozen_.load(std::memory_order_acquire); }

  /// Called from instrumented code. Throws once the coordinator is tripped.
  void crash_point() const {
    if (frozen_.load(std::memory_order_acquire)) throw SimulatedPowerFailure{};
  }

 private:
  std::atomic<bool> frozen_{false};
};

}  // namespace nvhalt
