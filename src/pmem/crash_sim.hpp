// Crash-injection coordinator for durable-linearizability testing.
//
// A test arms the coordinator, runs worker threads, and trips the freeze
// flag at a random instant. Every persistent-memory operation (and the TM
// transaction loop) polls the coordinator; once tripped, workers unwind
// with SimulatedPowerFailure — mid-commit, mid-flush, wherever they happen
// to be — modelling a power failure at an arbitrary instruction boundary.
// The test then joins the workers, calls PmemPool::crash() with an
// adversarial write-back policy, runs recovery, and checks the result.
#pragma once

#include <atomic>

namespace nvhalt {

/// Thrown at a crash point to unwind a worker thread. Deliberately not
/// derived from std::exception so generic catch(std::exception&) handlers
/// in user transaction bodies cannot swallow it.
struct SimulatedPowerFailure {};

class CrashCoordinator {
 public:
  /// Trips the freeze flag: every thread dies at its next crash point.
  void trip() { frozen_.store(true, std::memory_order_release); }

  /// Deterministic variant: the n-th crash point reached from now on (n = 1
  /// means the very next one, across all threads) trips the freeze flag and
  /// throws. Lets tests place a power failure at an exact instruction
  /// boundary — e.g. between two line write-backs of one fence — instead of
  /// racing a wall-clock trip.
  void trip_after(std::uint64_t n) { countdown_.store(n, std::memory_order_release); }

  /// Re-arms the coordinator for another crash cycle.
  void reset() {
    frozen_.store(false, std::memory_order_release);
    countdown_.store(0, std::memory_order_release);
  }

  bool tripped() const { return frozen_.load(std::memory_order_acquire); }

  /// Called from instrumented code. Throws once the coordinator is tripped.
  void crash_point() const {
    if (frozen_.load(std::memory_order_acquire)) throw SimulatedPowerFailure{};
    std::uint64_t c = countdown_.load(std::memory_order_acquire);
    while (c != 0) {
      if (countdown_.compare_exchange_weak(c, c - 1, std::memory_order_acq_rel)) {
        if (c == 1) {
          frozen_.store(true, std::memory_order_release);
          throw SimulatedPowerFailure{};
        }
        break;
      }
    }
  }

 private:
  // crash_point() stays const for callers holding a const coordinator, but
  // a countdown expiry must latch the freeze flag; both words are mutable.
  mutable std::atomic<bool> frozen_{false};
  mutable std::atomic<std::uint64_t> countdown_{0};
};

}  // namespace nvhalt
