#include "pmem/checkpoint.hpp"

#include <bit>
#include <mutex>

#include "alloc/tx_allocator.hpp"

namespace nvhalt {

std::size_t CheckpointManager::metadata_words(std::size_t capacity_words) {
  const std::size_t rec_lines = (capacity_words + 1) / 2;
  const std::size_t bitmap_words = (rec_lines + 63) / 64;
  const std::size_t bitmap_padded =
      (bitmap_words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
  // Watermark line + two generation slot-header lines + bitmap.
  return 3 * kWordsPerLine + bitmap_padded;
}

CheckpointManager::CheckpointManager(PmemPool& pool, TxAllocator* alloc)
    : pool_(pool), alloc_(alloc) {
  rec_lines_ = (pool_.capacity_words() + 1) / 2;
  bitmap_words_ = (rec_lines_ + 63) / 64;
  base_ = pool_.alloc_raw(metadata_words(pool_.capacity_words()));
  bitmap_base_ = base_ + 3 * kWordsPerLine;

  shadow_ = std::make_unique<std::atomic<std::uint64_t>[]>(bitmap_words_);
  for (std::size_t w = 0; w < bitmap_words_; ++w)
    shadow_[w].store(0, std::memory_order_relaxed);
  word_locks_ = std::make_unique<std::atomic_flag[]>(kWordLocks);
  for (std::size_t i = 0; i < kWordLocks; ++i) word_locks_[i].clear();
  pending_ = std::make_unique<PendingMarks[]>(kMaxThreads);

  if (pool_.attached_existing()) return;  // recover() adopts the durable state

  // Seed generation 0 durably: slot 0 sealed, then the watermark. A crash
  // before the final fence leaves an invalid watermark and recovery falls
  // back to the full scan — never an unsound bounded one.
  const int tid = 0;
  pool_.raw_store(tid, slot_idx(0), kSlotComplete);
  pool_.raw_store(tid, slot_idx(0) + 1, 0);
  pool_.flush_raw(tid, slot_idx(0));
  pool_.fence(tid);
  pool_.raw_store(tid, base_, pack_wm(0, 0));
  pool_.flush_raw(tid, base_);
  pool_.fence(tid);
}

bool CheckpointManager::mark(int tid, gaddr_t a) {
  const std::size_t line = static_cast<std::size_t>(a) / 2;
  const std::size_t w = line / 64;
  const std::uint64_t bit = std::uint64_t{1} << (line % 64);
  if (shadow_[w].load(std::memory_order_acquire) & bit) return false;  // durably set

  // Stage the bit (idempotent OR, serialized per word: independent slots
  // of the same bitmap word can be marked concurrently).
  std::atomic_flag& lk = word_locks_[w % kWordLocks];
  while (lk.test_and_set(std::memory_order_acquire)) cpu_relax();
  const std::uint64_t cur = pool_.raw_load(bitmap_word_idx(w));
  if (!(cur & bit)) pool_.raw_store(tid, bitmap_word_idx(w), cur | bit);
  lk.clear(std::memory_order_release);

  // Always flush on OUR queue: another thread may have staged the bit, but
  // its fence can land after our record store — durability of the bit must
  // ride a fence we control and order before our stores.
  pool_.flush_raw(tid, bitmap_word_idx(w));
  pending_[tid].lines.push_back(line);
  stat_marks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CheckpointManager::commit_marks(int tid) {
  auto& p = pending_[tid].lines;
  if (p.empty()) return;
  for (const std::size_t line : p) {
    const std::size_t w = line / 64;
    shadow_[w].fetch_or(std::uint64_t{1} << (line % 64), std::memory_order_acq_rel);
  }
  p.clear();
  stat_mark_fences_.fetch_add(1, std::memory_order_relaxed);
}

void CheckpointManager::truncate_and_flip(int tid, std::uint64_t next_gen) {
  const int next_slot = slot_ ^ 1;

  // (1) Open the inactive generation slot. The watermark still names the
  // old generation, so a crash anywhere below recovers from it.
  pool_.raw_store(tid, slot_idx(next_slot), kSlotInProgress);
  pool_.raw_store(tid, slot_idx(next_slot) + 1, next_gen);
  pool_.flush_raw(tid, slot_idx(next_slot));
  pool_.fence(tid);

  // (2) Truncation/compaction: clear the dirty-line bitmap. Sound even
  // half-done — persist phases are drained, so every bit cleared here
  // covered only durably-committed records the revert predicate skips.
  std::uint64_t retired = 0;
  for (std::size_t w = 0; w < bitmap_words_; ++w) {
    const std::uint64_t v = pool_.raw_load(bitmap_word_idx(w));
    if (v == 0) continue;
    retired += static_cast<std::uint64_t>(std::popcount(v));
    pool_.raw_store(tid, bitmap_word_idx(w), 0);
    pool_.flush_raw(tid, bitmap_word_idx(w));
  }
  pool_.fence(tid);

  // (3) Seal the slot, (4) flip the watermark. Two fences so the
  // crash-prefix enumerator gets a boundary between "new generation
  // sealed" and "new generation active" — the torn-checkpoint window.
  pool_.raw_store(tid, slot_idx(next_slot), kSlotComplete);
  pool_.flush_raw(tid, slot_idx(next_slot));
  pool_.fence(tid);
  pool_.raw_store(tid, base_, pack_wm(next_gen, next_slot));
  pool_.flush_raw(tid, base_);
  pool_.fence(tid);

  for (std::size_t w = 0; w < bitmap_words_; ++w)
    shadow_[w].store(0, std::memory_order_relaxed);
  for (int t = 0; t < kMaxThreads; ++t) pending_[t].lines.clear();
  gen_.store(next_gen, std::memory_order_release);
  slot_ = next_slot;
  stat_checkpoints_.fetch_add(1, std::memory_order_relaxed);
  stat_lines_retired_.fetch_add(retired, std::memory_order_relaxed);
}

void CheckpointManager::checkpoint(int tid) {
  std::unique_lock<std::shared_mutex> x(mu_);
  // Persist phases are drained: every armed allocator intent belongs to a
  // transaction whose apply is durably fenced, so idling the records is
  // pure truncation (recovery would only have re-applied them).
  if (alloc_ != nullptr) alloc_->quiesce_intents(tid);
  truncate_and_flip(tid, gen_.load(std::memory_order_relaxed) + 1);
}

CheckpointStats CheckpointManager::stats() const {
  CheckpointStats s;
  s.checkpoints = stat_checkpoints_.load(std::memory_order_relaxed);
  s.lines_retired = stat_lines_retired_.load(std::memory_order_relaxed);
  s.marks = stat_marks_.load(std::memory_order_relaxed);
  s.mark_fences = stat_mark_fences_.load(std::memory_order_relaxed);
  return s;
}

bool CheckpointManager::durable_valid() const {
  const std::uint64_t wm = pool_.raw_load(base_);
  if ((wm >> 32) != kWmMagic) return false;
  // The watermark must name a sealed slot carrying the same generation
  // (the flip is fenced after the seal, so a valid watermark implies this;
  // checking anyway keeps a corrupted image on the full-scan path).
  const int slot = static_cast<int>(wm & 1);
  const std::uint64_t gen = (wm >> 1) & 0x7FFFFFFFULL;
  return pool_.raw_load(slot_idx(slot)) == kSlotComplete &&
         pool_.raw_load(slot_idx(slot) + 1) == gen;
}

std::uint64_t CheckpointManager::durable_generation() const {
  return (pool_.raw_load(base_) >> 1) & 0x7FFFFFFFULL;
}

bool CheckpointManager::durable_dirty(std::size_t rec_line) const {
  const std::size_t w = rec_line / 64;
  return (pool_.raw_load(bitmap_word_idx(w)) >> (rec_line % 64)) & 1;
}

void CheckpointManager::recover(int tid) {
  // Quiescent: adopt the durable generation (or restart at 0 when the
  // crash predates initialization), then retire the recovered delta as a
  // fresh generation — recovery just reverted or confirmed every dirty
  // record, so the next crash starts from an empty dirty set.
  std::uint64_t gen = 0;
  if (durable_valid()) {
    const std::uint64_t wm = pool_.raw_load(base_);
    slot_ = static_cast<int>(wm & 1);
    gen = (wm >> 1) & 0x7FFFFFFFULL;
  } else {
    slot_ = 1;  // truncate_and_flip seals slot 0 for the reseeded generation
  }
  gen_.store(gen, std::memory_order_relaxed);
  truncate_and_flip(tid, gen + 1);
}

}  // namespace nvhalt
