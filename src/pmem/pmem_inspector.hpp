// Persistent-state inspector: recovery-time diagnostics over the simulated
// NVM image. Answers "what would recovery do right now?" — how many records
// are in-flight (would be reverted), which threads have uncommitted
// persistence epochs, how much of the staged image is not yet durable.
// Used by tests and handy when debugging a recovery problem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/tx_allocator.hpp"
#include "pmem/pmem_pool.hpp"
#include "telemetry/flight_recorder.hpp"

namespace nvhalt {

struct PmemReport {
  /// Words whose record carries a pver at/above its thread's durable
  /// pVerNum (recovery would revert them) and whose cur != old.
  std::uint64_t in_flight_records = 0;
  /// Words ever written through a Trinity record (pver != 0).
  std::uint64_t touched_records = 0;
  /// Words whose staged record differs from the durable one.
  std::uint64_t undurable_records = 0;
  /// Threads with a nonzero persistent version number.
  std::vector<int> active_threads;
  /// Per active thread: durable pVerNum.
  std::vector<std::uint64_t> thread_pvers;

  std::string to_string() const;
};

class PmemInspector {
 public:
  explicit PmemInspector(const PmemPool& pool) : pool_(pool) {}

  /// Scans the whole record space. Must run quiescently.
  PmemReport scan() const;

  /// Summarizes `alloc`'s persistent metadata (segment watermark, free
  /// segments, used slots, armed intent records). Must run quiescently;
  /// `alloc` must be backed by the inspected pool.
  AllocDurableSummary scan_alloc(const TxAllocator& alloc) const { return alloc.durable_summary(); }
  static std::string alloc_to_string(const AllocDurableSummary& s);

  /// Postmortem decode of `fr`'s durable rings (flight recorder must be
  /// backed by the inspected pool). Read-only; must run quiescently.
  telemetry::PostmortemReport scan_recorder(const telemetry::FlightRecorder& fr) const {
    return fr.postmortem();
  }

 private:
  const PmemPool& pool_;
};

}  // namespace nvhalt
