// Checkpoint/compaction subsystem (ROADMAP open item 4, DESIGN.md Sec. 13).
//
// NV-HALT and Trinity colocate their undo history with the data (per-word
// {cur, old, pver} records), so unlike SPHT there is no log to replay —
// but recovery still scans *every* record to decide which in-flight writes
// to revert, an O(pool) pass no matter how little happened since the last
// consistent point. This module bounds that pass by delta-since-checkpoint:
//
//  * A persistent *dirty-line bitmap* over the record lines. Before a
//    persist phase stages any record store to a line, it durably sets the
//    line's bit (store + flush + fence, on the writing thread's own flush
//    queue). The write-barrier invariant this buys: any record line the
//    crash adversary can materialize has a durable dirty bit, so recovery
//    may skip the revert scan for every clean line.
//  * A *double-buffered checkpoint region*: two generation slot headers
//    plus a single packed watermark word naming the active slot. A
//    checkpoint drains all persist phases (writer-side shared lock,
//    checkpoint-side exclusive), durably idles the allocator's armed
//    intent records, opens the inactive slot, truncates the bitmap (the
//    compaction step — cleared bits are exactly the revert obligations
//    retired by the checkpoint), seals the slot, and finally flips the
//    watermark. Every step is separated by the pool's normal flush/fence
//    discipline, so the crash-prefix enumerator can place boundaries
//    inside compaction and truncation like anywhere else.
//
// Torn-checkpoint window: a crash between the bitmap truncation and the
// watermark flip leaves the *old* generation named by the watermark with a
// (partially) cleared bitmap. This is safe by construction — at truncation
// time all persist phases were drained, so every record a cleared bit
// covered belongs to a durably completed transaction (its pver is below
// the owner's durable marker) which the revert predicate would skip
// anyway. Recovery therefore reaches the same state from either
// generation; tests/checkpoint_test.cpp pins this with replayable
// (hash, prefix, seed) triples.
//
// The steady-state cost is one bit-set + fence per line per checkpoint
// interval: once a line's bit is durably set (tracked by a volatile shadow
// bitmap), later writers skip it entirely, so hot lines pay nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "pmem/pmem_pool.hpp"
#include "util/common.hpp"

namespace nvhalt {

class TxAllocator;

struct CheckpointStats {
  std::uint64_t checkpoints = 0;    ///< completed watermark flips
  std::uint64_t lines_retired = 0;  ///< dirty bits cleared by truncation
  std::uint64_t marks = 0;          ///< dirty bits durably published
  std::uint64_t mark_fences = 0;    ///< extra fences paid publishing marks
};

class CheckpointManager {
 public:
  /// Reserves the checkpoint raw region (metadata_words) from the pool and
  /// durably initializes generation 0 unless the pool attached to an
  /// existing image (then recover() adopts the durable state instead).
  /// `alloc` (may be null) is quiesced during checkpoints so a truncated
  /// bitmap never outlives an armed intent record it made redundant.
  CheckpointManager(PmemPool& pool, TxAllocator* alloc);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Raw persistent words of checkpoint metadata for a pool of
  /// `capacity_words` (watermark line + two slot-header lines + the
  /// dirty-line bitmap, line-padded). Pool sizing adds this to raw-region
  /// budgets when checkpointing is enabled; disabled configurations
  /// allocate nothing and keep a byte-identical raw layout.
  static std::size_t metadata_words(std::size_t capacity_words);

  // ---- Writer side (persist phases) ------------------------------------
  /// Shared-mode guard a persist phase must hold from before its first
  /// mark() until after its closing fence. Checkpoints take the exclusive
  /// side, so holding this open is what "drain all persist phases" means.
  std::shared_lock<std::shared_mutex> persist_phase() {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

  /// Stages the dirty bit covering word `a`'s record line and queues its
  /// flush on `tid`'s own queue — even when another thread already staged
  /// the bit, because that thread's fence may come later than our record
  /// store. Returns true when the caller must fence (publishing the bit
  /// durably) before staging any record store to the line; callers batch
  /// marks for a whole write set and pay at most one such fence. Requires
  /// a persist_phase() guard.
  bool mark(int tid, gaddr_t a);

  /// Publishes `tid`'s pending marks to the volatile shadow bitmap. Call
  /// only after the fence that made those bitmap flushes durable.
  void commit_marks(int tid);

  // ---- Checkpoint -------------------------------------------------------
  /// Runs one checkpoint on behalf of `tid`: drains persist phases
  /// (exclusive lock), durably idles armed allocator intents, advances the
  /// double-buffered generation, truncates the dirty bitmap, and flips the
  /// watermark. Safe to call from any registered thread between its own
  /// transactions; concurrent committers block only for the duration.
  void checkpoint(int tid);

  std::uint64_t generation() const { return gen_.load(std::memory_order_acquire); }
  CheckpointStats stats() const;

  // ---- Recovery side (quiescent) ---------------------------------------
  /// True when the durable watermark names a sealed generation — the
  /// precondition for the bounded (bitmap-guided) revert pass. False for
  /// crash images predating the initialization fence; recovery then falls
  /// back to the full scan.
  bool durable_valid() const;
  std::uint64_t durable_generation() const;

  /// Durable dirty bit of record line `rec_line` (= a / 2 for word a).
  bool durable_dirty(std::size_t rec_line) const;
  std::size_t record_lines() const { return rec_lines_; }

  /// Post-recovery adoption: loads the durable generation (or reseeds an
  /// invalid region), then runs one checkpoint so the recovered image
  /// starts a fresh generation with an empty dirty set — sound because
  /// recovery just made every record durably consistent.
  void recover(int tid);

 private:
  static constexpr std::uint64_t kWmMagic = 0x43504B31;  // "CPK1"
  static constexpr std::uint64_t kSlotEmpty = 0;
  static constexpr std::uint64_t kSlotInProgress = 1;
  static constexpr std::uint64_t kSlotComplete = 2;
  // Watermark word: [63:32] magic, [31:1] generation, [0] active slot.
  // One word, stored atomically by the pool, so the flip itself can never
  // tear — the double-buffered slots carry everything else.
  static std::uint64_t pack_wm(std::uint64_t gen, int slot) {
    return (kWmMagic << 32) | ((gen & 0x7FFFFFFFULL) << 1) |
           static_cast<std::uint64_t>(slot & 1);
  }

  std::size_t slot_idx(int slot) const {
    return base_ + (1 + static_cast<std::size_t>(slot)) * kWordsPerLine;
  }
  std::size_t bitmap_word_idx(std::size_t w) const { return bitmap_base_ + w; }

  /// Clears the staged+durable bitmap and flips to `next_gen`; caller
  /// holds mu_ exclusively (or is quiescent recovery).
  void truncate_and_flip(int tid, std::uint64_t next_gen);

  PmemPool& pool_;
  TxAllocator* alloc_;
  std::size_t rec_lines_;
  std::size_t bitmap_words_;
  std::size_t base_;         // raw index: watermark line
  std::size_t bitmap_base_;  // raw index: first bitmap word

  /// Persist phases shared, checkpoints exclusive.
  std::shared_mutex mu_;

  /// Volatile shadow of the durable bitmap: a set bit means the durable
  /// bit is known fenced, so writers skip re-publishing it.
  std::unique_ptr<std::atomic<std::uint64_t>[]> shadow_;

  /// Hashed spinlocks serializing staged read-modify-write of one bitmap
  /// word (slots of different threads share bitmap words).
  static constexpr std::size_t kWordLocks = 64;
  std::unique_ptr<std::atomic_flag[]> word_locks_;

  /// Marks staged+flushed by a thread but not yet covered by its fence.
  struct alignas(kCacheLineBytes) PendingMarks {
    std::vector<std::size_t> lines;
  };
  std::unique_ptr<PendingMarks[]> pending_;

  std::atomic<std::uint64_t> gen_{0};
  int slot_ = 0;

  std::atomic<std::uint64_t> stat_checkpoints_{0};
  std::atomic<std::uint64_t> stat_lines_retired_{0};
  std::atomic<std::uint64_t> stat_marks_{0};
  std::atomic<std::uint64_t> stat_mark_fences_{0};
};

}  // namespace nvhalt
