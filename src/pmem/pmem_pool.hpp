// Simulated persistent memory pool.
//
// The paper's platform is Intel Optane DCPMM in app-direct mode: persistent
// memory exists only as main memory, stores take effect in the volatile
// cache, and the programmer flushes lines (clflushopt/clwb) and fences
// (sfence) to make them durable. The processor may also write back any dirty
// line spontaneously. This module reproduces exactly that persistency model
// in software so the algorithms above it are unchanged:
//
//  * A *volatile image* of user words (what DRAM + caches hold). It is lost
//    on crash.
//  * A *staged* persistent image (what the cache holds of the NVM-mapped
//    region) and a *durable* image (what the NVM media holds). `flush_line`
//    + `fence` copy staged lines to the durable image; a crash keeps only
//    the durable image plus an adversary-chosen subset of dirty lines
//    (modelling spontaneous write-back), honouring x86's guarantee that
//    stores to one cache line never persist out of order.
//  * Per-word Trinity records {cur, old, pver} in the persistent region
//    (paper Sec. 3.2: metadata lives only in persistent memory; the
//    volatile image holds just the user word).
//  * A raw persistent word region for per-thread persistent version
//    numbers, root pointers, and baseline (SPHT) logs.
//
// Simulated NVM latency knobs reproduce the *relative* cost of flush/fence
// (ablation class 1) and of NVM-backed stores (ablation class 2).
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "htm/small_map.hpp"
#include "telemetry/histogram.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace nvhalt {

class PersistJournal;  // pmem/crash_enum.hpp

/// One persistent record per transactional word (Trinity layout). `cur` is
/// the current value, `old` the pre-transaction value, `pver` packs the
/// writing thread id and its persistent version number. Two records fit in
/// one 64-byte line; all three fields of a record share its line, which is
/// what makes Trinity's same-line ordering guarantee usable.
struct PRecord {
  std::uint64_t cur = 0;
  std::uint64_t old = 0;
  std::uint64_t pver = 0;
  std::uint64_t pad = 0;
};
static_assert(sizeof(PRecord) == 32);

/// Packs/unpacks {tid, seq} persistent version tuples (paper Sec. 3.2:
/// "we need to combine the thread ID and the thread's persistent version
/// number since multiple threads might have the same version").
inline std::uint64_t pack_pver(int tid, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(tid) << 48) | (seq & 0xFFFFFFFFFFFFULL);
}
inline int pver_tid(std::uint64_t pver) { return static_cast<int>(pver >> 48); }
inline std::uint64_t pver_seq(std::uint64_t pver) { return pver & 0xFFFFFFFFFFFFULL; }

/// What survives a simulated power failure beyond fenced lines.
struct CrashPolicy {
  /// Probability that a dirty (unfenced) line gets (partially) written back.
  double writeback_probability = 0.0;
  /// Seed for the adversary's choices (cut points within lines).
  std::uint64_t seed = 1;
};

struct PmemConfig {
  /// Number of user words in the pool (word 0 is reserved as null).
  std::size_t capacity_words = 1 << 20;
  /// Extra raw persistent words available via alloc_raw (for baseline logs).
  std::size_t raw_words = 1 << 16;
  /// If false, flush/fence are no-ops (ablation NO-FLUSH-FENCE). Crash
  /// simulation is unavailable in this mode unless `eadr` is set.
  bool flushes_enabled = true;
  /// eADR platform (paper Sec. 1): the cache is flushed to NVM by the
  /// power-failure protection domain, so explicit flushes/fences are
  /// unnecessary — on crash, *all* staged stores are durable. Write
  /// ordering within the persistence protocol still matters and is still
  /// exercised. Implies flush/fence are no-ops regardless of
  /// flushes_enabled.
  bool eadr = false;
  /// Spin-delay applied per flushed line at the next fence, in nanoseconds.
  std::uint64_t flush_latency_ns = 0;
  /// Spin-delay applied per fence, in nanoseconds.
  std::uint64_t fence_latency_ns = 0;
  /// Spin-delay applied per store to the persistent (staged) region, in
  /// nanoseconds. Zero models NO-NVRAM (DRAM-backed mapping).
  std::uint64_t nvm_store_latency_ns = 0;
  /// Track per-line store order so a crash can persist a *prefix* of a
  /// line's stores (needed by the crash adversary; costs memory/time).
  bool track_store_order = false;
  /// When non-empty, the durable image is a memory-mapped file: durability
  /// spans process restarts (run, exit, re-run the same pool file and call
  /// recover_data()). Geometry must match the existing file's.
  std::string backing_path;
  /// Test-only: when set, the pool records every persistence event (staged
  /// store, line flush, fence) into this journal for the crash-prefix
  /// enumeration checker (pmem/crash_enum.hpp). Must outlive the pool.
  /// Installed at construction so TM-constructor-time persistence is
  /// captured too (the materializer assumes a zero initial durable image).
  PersistJournal* journal = nullptr;
  /// Group durable commit (flat-combining fence): when several threads
  /// reach fence() concurrently, one leader drains the union of their
  /// flush queues, dedups same-line flushes across writers, and issues a
  /// *single* ordering fence; followers are released only after the whole
  /// batch is durable. Off by default — unit tests and solo workloads keep
  /// today's exact fence behaviour and latency.
  bool group_commit = false;
  /// Write-combining granularity in cache lines: adjacent-line flushes
  /// within one aligned block are billed as a single ranged write-back
  /// (Optane media writes 256-byte XPLines, i.e. 4 lines). 1 = per-line
  /// billing (today's model). Affects only the simulated latency charge,
  /// never durability semantics.
  std::size_t wc_block_lines = 1;
  /// Spins a fencer invited to combine (FenceGate::kPreferCombine) waits
  /// for a leader before leading itself. Bounds the solo-latency hit when
  /// the contention hint mispredicts.
  std::uint32_t combine_window_spins = 192;
};

/// Caller's hint to fence(): kAuto combines only when another fencer is
/// already in flight (solo committers keep solo latency); kPreferCombine
/// additionally lingers combine_window_spins waiting for company — commit
/// paths pass it when the ContentionTable says other writers are active.
enum class FenceGate : std::uint8_t { kAuto = 0, kPreferCombine = 1 };

/// The simulated persistent heap. Thread-safe for all word/record/raw
/// operations; crash() and recover-time helpers must be called quiescently
/// (the full-system-crash model: all threads stop, then recovery runs).
class PmemPool {
 public:
  explicit PmemPool(const PmemConfig& cfg);
  ~PmemPool();

  PmemPool(const PmemPool&) = delete;
  PmemPool& operator=(const PmemPool&) = delete;

  const PmemConfig& config() const { return cfg_; }
  std::size_t capacity_words() const { return cfg_.capacity_words; }
  /// Record lines covering the word space (2 records per line).
  std::size_t record_lines() const { return record_lines_; }

  // ---- Volatile user image -------------------------------------------
  word_t load(gaddr_t a) const { return vmem_[a].load(std::memory_order_acquire); }
  void store(gaddr_t a, word_t v) { vmem_[a].store(v, std::memory_order_release); }
  std::atomic<word_t>* word_ptr(gaddr_t a) { return &vmem_[a]; }

  // ---- Persistent records (Trinity layout) ---------------------------
  /// Writes the record for word `a` in Trinity order (old, pver, cur) into
  /// the staged persistent image and marks its line dirty. The caller must
  /// hold the word's lock (all call sites do). Does NOT flush.
  void record_write(int tid, gaddr_t a, word_t old_val, word_t new_val, std::uint64_t seq);

  /// Queues the line holding word `a`'s record for write-back at the
  /// caller's next fence (clflushopt/clwb equivalent).
  void flush_record(int tid, gaddr_t a);

  /// Reads the staged record for word `a` (recovery + tests).
  PRecord read_record(gaddr_t a) const;

  /// Reads the *durable* record for word `a` (tests/crash-inspection only).
  PRecord read_durable_record(gaddr_t a) const;

  /// Recovery-time revert: sets record.cur = record.old in the staged image
  /// and marks the line dirty (callers flush + fence afterwards).
  void revert_record(gaddr_t a);

  // ---- Per-thread persistent version numbers --------------------------
  std::uint64_t load_pver(int tid) const;
  /// Stores pVerNum into its staged line and queues the line for flush.
  void store_pver(int tid, std::uint64_t v);
  void flush_pver(int tid);

  // ---- Root slots (persistent named pointers, for recovery) -----------
  // Slots [0, kDirectRootSlots) are for direct use by structures; the
  // remainder backs the named RootRegistry (api/root_registry.hpp).
  static constexpr int kDirectRootSlots = 16;
  static constexpr int kRootSlots = 48;
  std::uint64_t load_root(int slot) const;
  /// Stores + flushes + fences the root slot (roots change rarely).
  void store_root_persist(int tid, int slot, std::uint64_t v);

  // ---- Raw persistent words (baseline logs, markers) ------------------
  /// Bump-allocates `n` raw persistent words; returns the raw index.
  /// Throws if the raw region is exhausted.
  std::size_t alloc_raw(std::size_t n);
  std::uint64_t raw_load(std::size_t idx) const;
  std::uint64_t raw_load_durable(std::size_t idx) const;
  void raw_store(std::size_t idx, std::uint64_t v);
  /// As above, but journals the store under the writing thread's tid so
  /// concurrent raw writers (e.g. allocator metadata) attribute correctly.
  void raw_store(int tid, std::size_t idx, std::uint64_t v);
  void flush_raw(int tid, std::size_t idx);

  /// Annotates the persistence trace with an allocator intent mark
  /// (PersistEventKind::kAllocMark). No durable effect; no-op without a
  /// journal.
  void journal_alloc_mark(int tid, std::uint64_t value);

  // ---- Ordering --------------------------------------------------------
  /// sfence: blocks until all lines the calling thread flushed since its
  /// previous fence are durable. With cfg.group_commit, concurrent fencers
  /// may be combined: one leader persists the union of their queues and
  /// issues one fence for the batch — the caller still returns only once
  /// its own lines are durable.
  void fence(int tid) { fence(tid, FenceGate::kAuto); }
  void fence(int tid, FenceGate gate);

  /// Convenience: flush the record line of `a` and fence (recovery).
  void persist_record_now(int tid, gaddr_t a);

  // ---- Crash simulation ------------------------------------------------
  /// Simulates a full-system power failure: the volatile image is erased,
  /// the durable image is kept, and each dirty line additionally persists a
  /// store-order prefix chosen by the adversary. The staged image is then
  /// reset to the durable image (what recovery will observe). Must be
  /// called with no threads running.
  void crash(const CrashPolicy& policy);

  /// Erases the volatile user image (crash() does this; exposed for tests).
  void clear_volatile();

  /// Resets the pool to the post-crash state a materialized crash image
  /// describes (pmem/crash_enum.hpp): the durable image becomes exactly
  /// {zeros overlaid with `words`}, the staged image is reset to the
  /// durable one, the volatile image and flush queues are cleared, and
  /// store-order tracking is rewound. Each entry is a (global persistent
  /// word index, value) pair in the unified raw-then-record word space.
  /// Must be called quiescently; recovery runs against the result.
  void install_crash_image(std::span<const std::pair<std::uint64_t, std::uint64_t>> words);

  // ---- Persistent word-space geometry (journal/crash-image indexing) ---
  /// Words in the raw region, including pVerNum/root headers and padding.
  std::size_t raw_space_words() const { return raw_lines_ * kWordsPerLine; }
  /// Total persistent words (raw space followed by the record space).
  std::size_t persist_space_words() const { return total_lines_ * kWordsPerLine; }
  /// Global persistent word index of word `a`'s record (4 words/record).
  std::size_t record_word_base(gaddr_t a) const { return raw_space_words() + a * 4; }

  /// Number of fences executed (test observability).
  std::uint64_t fence_count() const { return fence_count_.load(std::memory_order_relaxed); }
  std::uint64_t flush_count() const { return flush_count_.load(std::memory_order_relaxed); }
  /// Flush requests coalesced away because an earlier flush in the same
  /// fence epoch already covered the line (e.g. two Trinity records
  /// sharing one cache line). Counted at enqueue time since fence
  /// coalescing became O(1) (the duplicate never enters the queue); the
  /// per-epoch totals match the former at-fence attribution. Each deduped
  /// line saves one flush_latency_ns charge and one staged->durable copy.
  std::uint64_t flush_dedup_count() const {
    return flush_dedup_count_.load(std::memory_order_relaxed);
  }

  /// Group fences led (each one fence covering >= 2 fencers' queues).
  std::uint64_t fence_group_count() const {
    return fence_group_count_.load(std::memory_order_relaxed);
  }
  /// Follower fences absorbed into a leader's group fence — each one is an
  /// ordering fence that never had to be issued.
  std::uint64_t fence_combined_count() const {
    return fence_combined_count_.load(std::memory_order_relaxed);
  }

  /// Histogram of unique lines written back per fence, merged over all
  /// per-thread queues. Each queue's histogram is written only by the
  /// fencing thread, so call this quiescently (same contract as the TM
  /// stats accessors).
  telemetry::PowHistogram fence_flush_hist() const;

  /// Histogram of participants per group fence (solo fences don't record;
  /// a bucket-2+ entry means real combining happened). Quiescent-only.
  telemetry::PowHistogram group_batch_hist() const;
  /// Histogram of spins a combined follower waited before its leader
  /// released it (combine-wait cost visibility). Quiescent-only.
  telemetry::PowHistogram combine_wait_hist() const;

  /// FNV-1a digest over the volatile, staged and durable images (in that
  /// order). Quiescent-only; used by the parallel-recovery determinism
  /// tests to assert byte-identical recovered state across worker counts.
  std::uint64_t image_hash() const;

  /// True when the pool was constructed over an existing backing file:
  /// the durable image holds a previous run's state; attach by running the
  /// TM's recover_data() before any transaction.
  bool attached_existing() const { return attached_existing_; }

  /// File-backed pools: asks the OS to write the mapping back (durability
  /// against host crashes; process-restart durability needs no call).
  void sync_to_disk() const;

  /// Installs a crash coordinator polled on every persistent operation
  /// (nullptr to disarm). Not thread-safe; set before workers start.
  void set_crash_coordinator(class CrashCoordinator* c) { crash_coord_ = c; }
  class CrashCoordinator* crash_coordinator() const { return crash_coord_; }

 private:
  /// True when flushes/fences do real work (not disabled, not eADR).
  bool flush_active() const { return cfg_.flushes_enabled && !cfg_.eadr; }

  // Line address space: [0, raw_lines_) raw words, then record lines.
  std::size_t raw_line_of(std::size_t raw_idx) const { return raw_idx / kWordsPerLine; }
  std::size_t record_line_of(gaddr_t a) const { return raw_lines_ + a / 2; }

  void mark_store(std::size_t line, std::size_t word_in_space, bool is_raw);
  // Journal hooks (no-ops unless cfg_.journal is set). `word_in_space` is
  // an index within the raw or record space; the hook globalizes it.
  void journal_store(int tid, std::size_t line, std::size_t word_in_space, bool is_raw,
                     std::uint64_t value);
  void journal_flush(int tid, std::size_t line);
  void journal_fence(int tid);
  void journal_fence_group(int leader, std::span<const int> members);
  void map_backing_file(std::size_t raw_words_padded, std::size_t rec_words);
  void persist_line(std::size_t line);          // staged -> durable, whole line
  void persist_line_prefix(std::size_t line, Xoshiro256& rng);  // adversary
  void spin_ns(std::uint64_t ns) const;

  PmemConfig cfg_;
  std::size_t raw_lines_;
  std::size_t record_lines_;
  std::size_t total_lines_;

  std::unique_ptr<std::atomic<word_t>[]> vmem_;

  // Staged and durable persistent images. Stored as atomics for defined
  // concurrent access; persistence operates on 64-bit words.
  // Durable images are atomics too: distinct transactions may fence the
  // same cache line concurrently (two records share a line), so the
  // staged->durable copy must be race-free word-wise. They either live in
  // owned heap storage (default) or inside the mapped backing file.
  std::unique_ptr<std::atomic<std::uint64_t>[]> raw_staged_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> rec_staged_;  // 4 words/record
  std::unique_ptr<std::atomic<std::uint64_t>[]> raw_durable_owned_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> rec_durable_owned_;
  std::atomic<std::uint64_t>* raw_durable_ = nullptr;
  std::atomic<std::uint64_t>* rec_durable_ = nullptr;

  // Backing-file state (empty path => unused).
  void* map_base_ = nullptr;
  std::size_t map_len_ = 0;
  bool attached_existing_ = false;

  // Store-order tracking (only when cfg_.track_store_order).
  std::unique_ptr<std::atomic<std::uint32_t>[]> line_clock_;   // per line
  std::unique_ptr<std::atomic<std::uint32_t>[]> word_stamp_;   // per persistent word
  std::unique_ptr<std::atomic<std::uint32_t>[]> line_fenced_;  // stamp at last persist

  // Per-thread flush queues (lines awaiting the next fence). `lines` is
  // kept duplicate-free at enqueue time via `pending` (an O(1)
  // generation-stamped probe per flush), so fence() is O(unique lines) —
  // no sort+unique pass. Owner-thread only.
  struct alignas(kCacheLineBytes) FlushQueue {
    std::vector<std::size_t> lines;
    htm::SmallSet pending;  // lines currently queued
    /// Unique lines written back per fence (telemetry; owner-thread only).
    telemetry::PowHistogram fence_lines;
    /// Scratch for write-combining block billing (solo path; owner-only).
    std::vector<std::size_t> wc_scratch;
  };

  /// Enqueues `line` on tid's flush queue unless already pending, charging
  /// flush_count_/journal/trace for the request either way and
  /// flush_dedup_count_ when it was a duplicate. Returns newly-queued.
  bool enqueue_flush(int tid, std::size_t line);
  std::unique_ptr<FlushQueue[]> flush_queues_;

  // ---- Flat-combining fence (cfg_.group_commit) ----------------------
  // A fencer publishes kPending on its slot, then alternates between
  // checking the slot (a leader served it: kDone) and trying the combiner
  // lock (lead the batch itself). The alternation makes missed wakeups
  // impossible: an unserved published fencer can always elect itself.
  // Slot histograms are owner-thread-only except batch_lines, which only
  // the combining leader writes — and the leader holds the combiner lock,
  // serializing leaders, while the slot owner is quiescent (spinning on
  // `status`) until released.
  static constexpr std::uint32_t kSlotIdle = 0;
  static constexpr std::uint32_t kSlotPending = 1;
  static constexpr std::uint32_t kSlotDone = 2;
  struct alignas(kCacheLineBytes) CombinerSlot {
    std::atomic<std::uint32_t> status{kSlotIdle};
    /// Participants per group fence led from this slot's thread.
    telemetry::PowHistogram batch_lines;
    /// Spins waited as a served follower (owner-thread only).
    telemetry::PowHistogram wait_spins;
  };
  std::unique_ptr<CombinerSlot[]> combiner_slots_;
  std::atomic<bool> combiner_lock_{false};
  /// Fencers currently inside fence() — the kAuto gate combines only when
  /// this says another fencer overlaps.
  std::atomic<std::uint32_t> fencers_in_flight_{0};
  /// One past the highest tid that ever fenced: bounds the leader's slot
  /// scan (kMaxThreads is 128; scanning all of it per fence would dwarf
  /// the fence itself at low thread counts).
  std::atomic<int> combiner_high_tid_{0};
  // Leader-only scratch (guarded by combiner_lock_).
  std::vector<std::size_t> combine_scratch_;
  std::vector<int> combine_members_;

  void solo_fence(int tid, FlushQueue& fq);
  void group_fence(int tid, FlushQueue& fq, FenceGate gate);
  /// Under combiner_lock_: drain own + pending peers' queues as one batch.
  void lead_group_fence(int tid, FlushQueue& fq);
  /// Simulated-latency charge for persisting `lines` (sorted not
  /// required): distinct wc blocks * flush_latency + fence_latency.
  std::uint64_t persist_charge_ns(std::vector<std::size_t>& scratch,
                                  std::span<const std::size_t> lines) const;

  std::atomic<std::size_t> raw_bump_;
  std::atomic<std::uint64_t> fence_count_{0};
  std::atomic<std::uint64_t> flush_count_{0};
  std::atomic<std::uint64_t> flush_dedup_count_{0};
  std::atomic<std::uint64_t> fence_group_count_{0};
  std::atomic<std::uint64_t> fence_combined_count_{0};

  std::size_t pver_raw_base_;  // raw index of pVerNum[0]
  std::size_t root_raw_base_;  // raw index of root slot 0

  class CrashCoordinator* crash_coord_ = nullptr;
};

}  // namespace nvhalt
