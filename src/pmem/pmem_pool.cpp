#include "pmem/pmem_pool.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <thread>

#include "htm/htm_tls.hpp"
#include "pmem/crash_enum.hpp"
#include "pmem/crash_sim.hpp"
#include "telemetry/telemetry.hpp"

namespace nvhalt {

namespace {
inline void poll_crash(CrashCoordinator* c) {
  if (NVHALT_UNLIKELY(c != nullptr)) c->crash_point();
}
}  // namespace

namespace {
// Raw-region header layout: one line per thread for pVerNum, one line per
// root slot. Keeping each hot persistent scalar on its own line mirrors the
// paper's implementations and avoids simulated same-line interference.
constexpr std::size_t kPverHeaderWords = static_cast<std::size_t>(kMaxThreads) * kWordsPerLine;
constexpr std::size_t kRootHeaderWords = static_cast<std::size_t>(PmemPool::kRootSlots) * kWordsPerLine;

// Backing-file layout: one header page, then the raw durable words, then
// the record durable words.
constexpr std::uint64_t kFileMagic = 0x4E564841'4C54504DULL;  // "NVHALTPM"
constexpr std::uint64_t kFileVersion = 1;
constexpr std::size_t kFileHeaderBytes = 4096;
struct FileHeader {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t capacity_words;
  std::uint64_t raw_words_padded;
  std::uint64_t rec_words;
  std::uint64_t initialized;
};
}  // namespace

PmemPool::PmemPool(const PmemConfig& cfg) : cfg_(cfg) {
  if (cfg_.capacity_words < 2) throw TmLogicError("pool too small");
  const std::size_t raw_total = kPverHeaderWords + kRootHeaderWords + cfg_.raw_words;
  raw_lines_ = (raw_total + kWordsPerLine - 1) / kWordsPerLine;
  record_lines_ = (cfg_.capacity_words + 1) / 2;  // 2 records per line
  total_lines_ = raw_lines_ + record_lines_;

  vmem_ = std::make_unique<std::atomic<word_t>[]>(cfg_.capacity_words);
  for (std::size_t i = 0; i < cfg_.capacity_words; ++i)
    vmem_[i].store(0, std::memory_order_relaxed);

  const std::size_t raw_words_padded = raw_lines_ * kWordsPerLine;
  const std::size_t rec_words = record_lines_ * kWordsPerLine;
  raw_staged_ = std::make_unique<std::atomic<std::uint64_t>[]>(raw_words_padded);
  rec_staged_ = std::make_unique<std::atomic<std::uint64_t>[]>(rec_words);

  if (cfg_.backing_path.empty()) {
    raw_durable_owned_ = std::make_unique<std::atomic<std::uint64_t>[]>(raw_words_padded);
    rec_durable_owned_ = std::make_unique<std::atomic<std::uint64_t>[]>(rec_words);
    raw_durable_ = raw_durable_owned_.get();
    rec_durable_ = rec_durable_owned_.get();
    for (std::size_t i = 0; i < raw_words_padded; ++i)
      raw_durable_[i].store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < rec_words; ++i)
      rec_durable_[i].store(0, std::memory_order_relaxed);
  } else {
    map_backing_file(raw_words_padded, rec_words);
  }
  // The staged (cache) image always starts as a copy of the durable one —
  // a fresh pool sees zeros, an attached pool sees the previous run's
  // durable state (exactly the post-crash view recover_data() expects).
  for (std::size_t i = 0; i < raw_words_padded; ++i)
    raw_staged_[i].store(raw_durable_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  for (std::size_t i = 0; i < rec_words; ++i)
    rec_staged_[i].store(rec_durable_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);

  if (cfg_.track_store_order) {
    line_clock_ = std::make_unique<std::atomic<std::uint32_t>[]>(total_lines_);
    line_fenced_ = std::make_unique<std::atomic<std::uint32_t>[]>(total_lines_);
    word_stamp_ = std::make_unique<std::atomic<std::uint32_t>[]>(total_lines_ * kWordsPerLine);
    for (std::size_t i = 0; i < total_lines_; ++i) {
      line_clock_[i].store(0, std::memory_order_relaxed);
      line_fenced_[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < total_lines_ * kWordsPerLine; ++i)
      word_stamp_[i].store(0, std::memory_order_relaxed);
  }

  flush_queues_ = std::make_unique<FlushQueue[]>(kMaxThreads);
  for (int t = 0; t < kMaxThreads; ++t) flush_queues_[t].lines.reserve(64);
  combiner_slots_ = std::make_unique<CombinerSlot[]>(kMaxThreads);
  combine_scratch_.reserve(256);
  combine_members_.reserve(16);
  raw_bump_.store(kPverHeaderWords + kRootHeaderWords, std::memory_order_relaxed);
  pver_raw_base_ = 0;
  root_raw_base_ = kPverHeaderWords;
}

void PmemPool::map_backing_file(std::size_t raw_words_padded, std::size_t rec_words) {
  const std::size_t payload = (raw_words_padded + rec_words) * sizeof(std::uint64_t);
  map_len_ = kFileHeaderBytes + payload;

  const int fd = ::open(cfg_.backing_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) throw TmLogicError("cannot open backing file: " + cfg_.backing_path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw TmLogicError("cannot stat backing file");
  }
  const bool fresh = st.st_size == 0;
  if (fresh && ::ftruncate(fd, static_cast<off_t>(map_len_)) != 0) {
    ::close(fd);
    throw TmLogicError("cannot size backing file");
  }
  if (!fresh && static_cast<std::size_t>(st.st_size) != map_len_) {
    ::close(fd);
    throw TmLogicError("backing file size does not match the pool geometry");
  }
  map_base_ = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map_base_ == MAP_FAILED) {
    map_base_ = nullptr;
    throw TmLogicError(std::string("mmap failed: ") + std::strerror(errno));
  }

  auto* header = static_cast<FileHeader*>(map_base_);
  auto* words = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<char*>(map_base_) + kFileHeaderBytes);
  raw_durable_ = words;
  rec_durable_ = words + raw_words_padded;

  if (!fresh && header->initialized == 1) {
    if (header->magic != kFileMagic || header->version != kFileVersion)
      throw TmLogicError("backing file is not an NV-HALT pool (bad magic/version)");
    if (header->capacity_words != cfg_.capacity_words ||
        header->raw_words_padded != raw_words_padded || header->rec_words != rec_words)
      throw TmLogicError("backing file geometry does not match the configuration");
    attached_existing_ = true;
    return;
  }
  // Fresh (or never-completed) file: the zero pages from ftruncate are the
  // initial durable image; publish the header last.
  header->magic = kFileMagic;
  header->version = kFileVersion;
  header->capacity_words = cfg_.capacity_words;
  header->raw_words_padded = raw_words_padded;
  header->rec_words = rec_words;
  header->initialized = 1;
}

void PmemPool::sync_to_disk() const {
  if (map_base_ != nullptr) ::msync(map_base_, map_len_, MS_SYNC);
}

PmemPool::~PmemPool() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
}

void PmemPool::spin_ns(std::uint64_t ns) const {
  if (ns == 0) return;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) cpu_relax();
}

void PmemPool::journal_store(int tid, std::size_t line, std::size_t word_in_space, bool is_raw,
                             std::uint64_t value) {
  if (NVHALT_LIKELY(cfg_.journal == nullptr)) return;
  const std::size_t global_word = is_raw ? word_in_space : raw_space_words() + word_in_space;
  cfg_.journal->on_store(tid, line, global_word, value);
}

void PmemPool::journal_flush(int tid, std::size_t line) {
  if (NVHALT_LIKELY(cfg_.journal == nullptr)) return;
  cfg_.journal->on_flush(tid, line);
}

void PmemPool::journal_fence(int tid) {
  if (NVHALT_LIKELY(cfg_.journal == nullptr)) return;
  cfg_.journal->on_fence(tid);
}

void PmemPool::journal_fence_group(int leader, std::span<const int> members) {
  if (NVHALT_LIKELY(cfg_.journal == nullptr)) return;
  // A batch of one is journalled as a plain fence so solo traces are
  // byte-identical with and without group_commit.
  if (members.empty())
    cfg_.journal->on_fence(leader);
  else
    cfg_.journal->on_fence_group(leader, members);
}

void PmemPool::journal_alloc_mark(int tid, std::uint64_t value) {
  if (NVHALT_LIKELY(cfg_.journal == nullptr)) return;
  cfg_.journal->on_alloc_mark(tid, value);
}

void PmemPool::mark_store(std::size_t line, std::size_t word_in_space, bool is_raw) {
  if (!cfg_.track_store_order) return;
  const std::uint32_t stamp = line_clock_[line].fetch_add(1, std::memory_order_acq_rel) + 1;
  const std::size_t global_word =
      is_raw ? word_in_space : raw_lines_ * kWordsPerLine + word_in_space;
  word_stamp_[global_word].store(stamp, std::memory_order_release);
}

void PmemPool::record_write(int tid, gaddr_t a, word_t old_val, word_t new_val,
                            std::uint64_t seq) {
  poll_crash(crash_coord_);
  // Trinity write order within the record's cache line: old, pver, cur.
  // x86 guarantees same-line stores never persist out of order, which the
  // crash adversary honours via per-line store stamps.
  const std::size_t line = record_line_of(a);
  const std::size_t base = a * 4;  // record = 4 u64 words
  rec_staged_[base + 1].store(old_val, std::memory_order_release);
  mark_store(line, base + 1, false);
  journal_store(tid, line, base + 1, false, old_val);
  rec_staged_[base + 2].store(pack_pver(tid, seq), std::memory_order_release);
  mark_store(line, base + 2, false);
  journal_store(tid, line, base + 2, false, pack_pver(tid, seq));
  rec_staged_[base + 0].store(new_val, std::memory_order_release);
  mark_store(line, base + 0, false);
  journal_store(tid, line, base + 0, false, new_val);
  spin_ns(cfg_.nvm_store_latency_ns);
}

bool PmemPool::enqueue_flush(int tid, std::size_t line) {
  FlushQueue& q = flush_queues_[tid];
  // O(1) enqueue-time dedup: a line already pending for this fence epoch
  // never enters the queue again, so fence() needs no sort+unique pass.
  // The request is still journalled and counted (journal ordering and
  // flush_count semantics predate the dedup change); only the coalesced
  // physical write-back disappears, which is what flush_dedup_count_
  // has always measured.
  const bool fresh = q.pending.insert(line);
  if (fresh)
    q.lines.push_back(line);
  else
    flush_dedup_count_.fetch_add(1, std::memory_order_relaxed);
  journal_flush(tid, line);
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  telemetry::trace1(telemetry::EventKind::kFlushEnqueue, tid, line);
  return fresh;
}

void PmemPool::flush_record(int tid, gaddr_t a) {
  if (!flush_active()) return;
  poll_crash(crash_coord_);
  if (htm::in_hw_txn()) htm::abort_on_flush();
  enqueue_flush(tid, record_line_of(a));
}

PRecord PmemPool::read_record(gaddr_t a) const {
  const std::size_t base = a * 4;
  PRecord r;
  r.cur = rec_staged_[base + 0].load(std::memory_order_acquire);
  r.old = rec_staged_[base + 1].load(std::memory_order_acquire);
  r.pver = rec_staged_[base + 2].load(std::memory_order_acquire);
  return r;
}

PRecord PmemPool::read_durable_record(gaddr_t a) const {
  const std::size_t base = a * 4;
  PRecord r;
  r.cur = rec_durable_[base + 0].load(std::memory_order_acquire);
  r.old = rec_durable_[base + 1].load(std::memory_order_acquire);
  r.pver = rec_durable_[base + 2].load(std::memory_order_acquire);
  return r;
}

void PmemPool::revert_record(gaddr_t a) {
  const std::size_t line = record_line_of(a);
  const std::size_t base = a * 4;
  const std::uint64_t old_val = rec_staged_[base + 1].load(std::memory_order_acquire);
  rec_staged_[base + 0].store(old_val, std::memory_order_release);
  mark_store(line, base + 0, false);
  journal_store(0, line, base + 0, false, old_val);
}

std::uint64_t PmemPool::load_pver(int tid) const {
  return raw_staged_[pver_raw_base_ + static_cast<std::size_t>(tid) * kWordsPerLine].load(
      std::memory_order_acquire);
}

void PmemPool::store_pver(int tid, std::uint64_t v) {
  const std::size_t idx = pver_raw_base_ + static_cast<std::size_t>(tid) * kWordsPerLine;
  raw_staged_[idx].store(v, std::memory_order_release);
  mark_store(raw_line_of(idx), idx, true);
  journal_store(tid, raw_line_of(idx), idx, true, v);
  spin_ns(cfg_.nvm_store_latency_ns);
}

void PmemPool::flush_pver(int tid) {
  if (!flush_active()) return;
  if (htm::in_hw_txn()) htm::abort_on_flush();
  const std::size_t idx = pver_raw_base_ + static_cast<std::size_t>(tid) * kWordsPerLine;
  enqueue_flush(tid, raw_line_of(idx));
}

std::uint64_t PmemPool::load_root(int slot) const {
  return raw_staged_[root_raw_base_ + static_cast<std::size_t>(slot) * kWordsPerLine].load(
      std::memory_order_acquire);
}

void PmemPool::store_root_persist(int tid, int slot, std::uint64_t v) {
  const std::size_t idx = root_raw_base_ + static_cast<std::size_t>(slot) * kWordsPerLine;
  raw_staged_[idx].store(v, std::memory_order_release);
  mark_store(raw_line_of(idx), idx, true);
  journal_store(tid, raw_line_of(idx), idx, true, v);
  spin_ns(cfg_.nvm_store_latency_ns);
  if (flush_active()) {
    enqueue_flush(tid, raw_line_of(idx));
    fence(tid);
  }
}

std::size_t PmemPool::alloc_raw(std::size_t n) {
  // Line-align every raw allocation so independent allocations never share
  // a cache line (keeps flush sets disjoint across threads).
  const std::size_t padded = (n + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
  const std::size_t base = raw_bump_.fetch_add(padded, std::memory_order_acq_rel);
  if (base + padded > raw_lines_ * kWordsPerLine)
    throw TmLogicError("raw persistent region exhausted");
  return base;
}

std::uint64_t PmemPool::raw_load(std::size_t idx) const {
  return raw_staged_[idx].load(std::memory_order_acquire);
}

std::uint64_t PmemPool::raw_load_durable(std::size_t idx) const {
  return raw_durable_[idx].load(std::memory_order_acquire);
}

void PmemPool::raw_store(std::size_t idx, std::uint64_t v) {
  raw_store(0, idx, v);
}

void PmemPool::raw_store(int tid, std::size_t idx, std::uint64_t v) {
  raw_staged_[idx].store(v, std::memory_order_release);
  mark_store(raw_line_of(idx), idx, true);
  journal_store(tid, raw_line_of(idx), idx, true, v);
  spin_ns(cfg_.nvm_store_latency_ns);
}

void PmemPool::flush_raw(int tid, std::size_t idx) {
  if (!flush_active()) return;
  if (htm::in_hw_txn()) htm::abort_on_flush();
  enqueue_flush(tid, raw_line_of(idx));
}

void PmemPool::persist_line(std::size_t line) {
  if (cfg_.track_store_order)
    line_fenced_[line].store(line_clock_[line].load(std::memory_order_acquire),
                             std::memory_order_release);
  if (line < raw_lines_) {
    const std::size_t base = line * kWordsPerLine;
    for (std::size_t w = 0; w < kWordsPerLine; ++w)
      raw_durable_[base + w].store(raw_staged_[base + w].load(std::memory_order_acquire),
                                   std::memory_order_release);
  } else {
    const std::size_t base = (line - raw_lines_) * kWordsPerLine;
    for (std::size_t w = 0; w < kWordsPerLine; ++w)
      rec_durable_[base + w].store(rec_staged_[base + w].load(std::memory_order_acquire),
                                   std::memory_order_release);
  }
}

void PmemPool::fence(int tid, FenceGate gate) {
  if (!flush_active()) return;
  poll_crash(crash_coord_);
  FlushQueue& fq = flush_queues_[tid];
  if (fq.lines.empty()) return;
  if (!cfg_.group_commit) {
    solo_fence(tid, fq);
    return;
  }
  // Raise the slot-scan watermark so a combining leader will find us.
  int hi = combiner_high_tid_.load(std::memory_order_relaxed);
  while (hi < tid + 1 &&
         !combiner_high_tid_.compare_exchange_weak(hi, tid + 1, std::memory_order_relaxed)) {
  }
  const std::uint32_t in_flight = fencers_in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  try {
    // Adaptive gate: a lone fencer keeps the solo path (and its latency)
    // unless the caller's contention hint asks it to linger for company.
    if (in_flight < 2 && gate == FenceGate::kAuto)
      solo_fence(tid, fq);
    else
      group_fence(tid, fq, gate);
  } catch (...) {
    fencers_in_flight_.fetch_sub(1, std::memory_order_release);
    throw;
  }
  fencers_in_flight_.fetch_sub(1, std::memory_order_release);
}

void PmemPool::solo_fence(int tid, FlushQueue& fq) {
  auto& q = fq.lines;
  // The queue is duplicate-free by construction (enqueue_flush dedups in
  // O(1)), so write it back in enqueue order — fence cost is O(unique
  // lines), replacing the PR-1 sort+unique pass. Duplicates were charged
  // to flush_dedup_count_ at enqueue time; persisting per unique line is
  // unchanged (the latency charge write-combines adjacent lines when
  // cfg_.wc_block_lines > 1, on a sorted copy — enqueue order here is
  // load-bearing: a crash mid-fence persists a queue-order prefix).
  journal_fence(tid);
  for (const std::size_t line : q) {
    // A power failure can strike between individual line write-backs, so
    // the random-trip tests must be able to crash mid-fence too, leaving
    // a partially persisted fence behind.
    poll_crash(crash_coord_);
    persist_line(line);
  }
  spin_ns(persist_charge_ns(fq.wc_scratch, q));
  fence_count_.fetch_add(1, std::memory_order_relaxed);
  fq.fence_lines.record(q.size());
  telemetry::trace1(telemetry::EventKind::kFence, tid, q.size());
  q.clear();
  fq.pending.clear();
}

void PmemPool::group_fence(int tid, FlushQueue& fq, FenceGate gate) {
  CombinerSlot& slot = combiner_slots_[tid];
  // Publish our queue for a leader to drain. The release store pairs with
  // the leader's acquire load of `status`: everything we wrote into our
  // FlushQueue happens-before the leader reading it.
  slot.status.store(kSlotPending, std::memory_order_release);
  const std::uint32_t window =
      gate == FenceGate::kPreferCombine ? cfg_.combine_window_spins : 0;
  std::uint32_t spins = 0;
  for (;;) {
    // Served: a leader persisted our lines, fenced, and released us. The
    // acquire pairs with the leader's kSlotDone release after its full
    // drain — our lines are durable here.
    if (slot.status.load(std::memory_order_acquire) == kSlotDone) {
      slot.status.store(kSlotIdle, std::memory_order_relaxed);
      slot.wait_spins.record(spins);
      return;
    }
    // Lead ourselves: immediately under kAuto, after the combine window
    // under kPreferCombine, or as soon as a peer overlaps (no point
    // waiting — grabbing the lock now is what combines us with them).
    const bool may_lead =
        spins >= window || fencers_in_flight_.load(std::memory_order_acquire) >= 2;
    if (may_lead && !combiner_lock_.exchange(true, std::memory_order_acquire)) {
      try {
        lead_group_fence(tid, fq);
      } catch (...) {
        combiner_lock_.store(false, std::memory_order_release);
        throw;
      }
      combiner_lock_.store(false, std::memory_order_release);
      return;
    }
    // Alternating slot-check and lock-attempt makes missed wakeups
    // impossible: an unserved published fencer can always elect itself.
    poll_crash(crash_coord_);
    ++spins;
    cpu_relax();
    // Yield only once past the linger window, i.e. when an active leader
    // holds the lock and needs the CPU to finish draining us. Yielding
    // *during* the window would turn every gated-but-unmatched fence into
    // a syscall — costlier than the combine the linger is fishing for.
    if (spins >= window && (spins & 63u) == 0) std::this_thread::yield();
  }
}

void PmemPool::lead_group_fence(int tid, FlushQueue& fq) {
  CombinerSlot& my = combiner_slots_[tid];
  // A previous leader may have served us between our publish and winning
  // the lock; our lines are already durable — nothing to do.
  if (my.status.load(std::memory_order_acquire) == kSlotDone) {
    my.status.store(kSlotIdle, std::memory_order_relaxed);
    return;
  }
  my.status.store(kSlotIdle, std::memory_order_relaxed);  // serving ourselves
  combine_members_.clear();
  const int hi = combiner_high_tid_.load(std::memory_order_acquire);
  for (int t = 0; t < hi; ++t) {
    if (t == tid) continue;
    if (combiner_slots_[t].status.load(std::memory_order_acquire) == kSlotPending)
      combine_members_.push_back(t);
  }
  // Union of every participant's queue, deduped across writers: the same
  // line flushed by two transactions persists (and is billed) once for
  // the whole batch instead of once per fencer.
  combine_scratch_.clear();
  combine_scratch_.insert(combine_scratch_.end(), fq.lines.begin(), fq.lines.end());
  for (const int m : combine_members_) {
    const auto& mq = flush_queues_[m].lines;
    combine_scratch_.insert(combine_scratch_.end(), mq.begin(), mq.end());
  }
  const std::size_t total = combine_scratch_.size();
  std::sort(combine_scratch_.begin(), combine_scratch_.end());
  combine_scratch_.erase(std::unique(combine_scratch_.begin(), combine_scratch_.end()),
                         combine_scratch_.end());
  flush_dedup_count_.fetch_add(total - combine_scratch_.size(), std::memory_order_relaxed);
  // Journal the joins + the single covering fence before persisting
  // (journal-before-persist, same order as the solo path).
  journal_fence_group(tid, combine_members_);
  for (const std::size_t line : combine_scratch_) {
    poll_crash(crash_coord_);
    persist_line(line);
  }
  spin_ns(persist_charge_ns(fq.wc_scratch, combine_scratch_));
  // One ordering fence for the whole batch — each absorbed member is a
  // fence that never had to be issued.
  fence_count_.fetch_add(1, std::memory_order_relaxed);
  if (!combine_members_.empty()) {
    fence_group_count_.fetch_add(1, std::memory_order_relaxed);
    fence_combined_count_.fetch_add(combine_members_.size(), std::memory_order_relaxed);
  }
  my.batch_lines.record(1 + combine_members_.size());
  telemetry::trace1(telemetry::EventKind::kFence, tid, combine_scratch_.size());
  fq.fence_lines.record(fq.lines.size());
  fq.lines.clear();
  fq.pending.clear();
  // Release followers only now, after their lines are durable and the
  // batch's journal fence is recorded: the kSlotDone release-store is the
  // durability ack the member's acquire-load in group_fence pairs with.
  for (const int m : combine_members_) {
    FlushQueue& mq = flush_queues_[m];
    mq.fence_lines.record(mq.lines.size());
    mq.lines.clear();
    mq.pending.clear();
    combiner_slots_[m].status.store(kSlotDone, std::memory_order_release);
  }
}

std::uint64_t PmemPool::persist_charge_ns(std::vector<std::size_t>& scratch,
                                          std::span<const std::size_t> lines) const {
  // Write-combining latency model: adjacent lines within one aligned
  // wc block (an Optane XPLine at wc_block_lines = 4) cost one media
  // write-back. Durability semantics are untouched — only the charge.
  std::size_t units = lines.size();
  if (cfg_.wc_block_lines > 1 && units > 1) {
    scratch.assign(lines.begin(), lines.end());
    for (std::size_t& l : scratch) l /= cfg_.wc_block_lines;
    std::sort(scratch.begin(), scratch.end());
    units = static_cast<std::size_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
  }
  return cfg_.flush_latency_ns * units + cfg_.fence_latency_ns;
}

std::uint64_t PmemPool::image_hash() const {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  };
  for (std::size_t i = 0; i < cfg_.capacity_words; ++i)
    mix(vmem_[i].load(std::memory_order_acquire));
  const std::size_t raw_words_padded = raw_space_words();
  const std::size_t rec_words = record_lines_ * kWordsPerLine;
  for (std::size_t i = 0; i < raw_words_padded; ++i)
    mix(raw_staged_[i].load(std::memory_order_acquire));
  for (std::size_t i = 0; i < rec_words; ++i)
    mix(rec_staged_[i].load(std::memory_order_acquire));
  for (std::size_t i = 0; i < raw_words_padded; ++i)
    mix(raw_durable_[i].load(std::memory_order_acquire));
  for (std::size_t i = 0; i < rec_words; ++i)
    mix(rec_durable_[i].load(std::memory_order_acquire));
  return h;
}

telemetry::PowHistogram PmemPool::fence_flush_hist() const {
  telemetry::PowHistogram h;
  for (int t = 0; t < kMaxThreads; ++t) h.add(flush_queues_[t].fence_lines);
  return h;
}

telemetry::PowHistogram PmemPool::group_batch_hist() const {
  telemetry::PowHistogram h;
  for (int t = 0; t < kMaxThreads; ++t) h.add(combiner_slots_[t].batch_lines);
  return h;
}

telemetry::PowHistogram PmemPool::combine_wait_hist() const {
  telemetry::PowHistogram h;
  for (int t = 0; t < kMaxThreads; ++t) h.add(combiner_slots_[t].wait_spins);
  return h;
}

void PmemPool::persist_record_now(int tid, gaddr_t a) {
  flush_record(tid, a);
  fence(tid);
}

void PmemPool::clear_volatile() {
  for (std::size_t i = 0; i < cfg_.capacity_words; ++i)
    vmem_[i].store(0, std::memory_order_relaxed);
}

void PmemPool::install_crash_image(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> words) {
  const std::size_t raw_words_padded = raw_space_words();
  const std::size_t rec_words = record_lines_ * kWordsPerLine;
  for (std::size_t i = 0; i < raw_words_padded; ++i)
    raw_durable_[i].store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < rec_words; ++i)
    rec_durable_[i].store(0, std::memory_order_relaxed);
  for (const auto& [word, value] : words) {
    if (word >= persist_space_words()) throw TmLogicError("crash image word out of range");
    if (word < raw_words_padded) {
      raw_durable_[word].store(value, std::memory_order_relaxed);
    } else {
      rec_durable_[word - raw_words_padded].store(value, std::memory_order_relaxed);
    }
  }
  // Power was lost: the caches held nothing beyond the durable image.
  for (std::size_t i = 0; i < raw_words_padded; ++i)
    raw_staged_[i].store(raw_durable_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  for (std::size_t i = 0; i < rec_words; ++i)
    rec_staged_[i].store(rec_durable_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  if (cfg_.track_store_order) {
    for (std::size_t i = 0; i < total_lines_; ++i) {
      line_clock_[i].store(0, std::memory_order_relaxed);
      line_fenced_[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < total_lines_ * kWordsPerLine; ++i)
      word_stamp_[i].store(0, std::memory_order_relaxed);
  }
  for (int t = 0; t < kMaxThreads; ++t) {
    flush_queues_[t].lines.clear();
    flush_queues_[t].pending.clear();
    combiner_slots_[t].status.store(kSlotIdle, std::memory_order_relaxed);
  }
  combiner_lock_.store(false, std::memory_order_relaxed);
  fencers_in_flight_.store(0, std::memory_order_relaxed);
  clear_volatile();
}

void PmemPool::persist_line_prefix(std::size_t line, Xoshiro256& rng) {
  if (!cfg_.track_store_order) {
    persist_line(line);
    return;
  }
  // x86 persists same-line stores in order: the adversary picks a cut point
  // in this line's store sequence; stores up to the cut land, later ones
  // are lost with the caches.
  const std::uint32_t clk = line_clock_[line].load(std::memory_order_acquire);
  const std::uint32_t fenced = line_fenced_[line].load(std::memory_order_acquire);
  if (clk <= fenced) return;
  const std::uint32_t cut = fenced + static_cast<std::uint32_t>(
                                         rng.next_bounded(clk - fenced + 1));
  const bool is_raw = line < raw_lines_;
  const std::size_t space_base =
      is_raw ? line * kWordsPerLine : (line - raw_lines_) * kWordsPerLine;
  const std::size_t stamp_base = line * kWordsPerLine;
  for (std::size_t w = 0; w < kWordsPerLine; ++w) {
    const std::uint32_t st = word_stamp_[stamp_base + w].load(std::memory_order_acquire);
    if (st == 0 || st > cut) continue;
    if (is_raw) {
      raw_durable_[space_base + w].store(
          raw_staged_[space_base + w].load(std::memory_order_acquire),
          std::memory_order_release);
    } else {
      rec_durable_[space_base + w].store(
          rec_staged_[space_base + w].load(std::memory_order_acquire),
          std::memory_order_release);
    }
  }
  // Whatever landed is now the durable frontier of this line.
  if (cut > fenced) line_fenced_[line].store(cut, std::memory_order_release);
}

void PmemPool::crash(const CrashPolicy& policy) {
  if (!cfg_.flushes_enabled && !cfg_.eadr)
    throw TmLogicError("crash simulation requires flushes or eADR");
  Xoshiro256 rng(policy.seed);
  if (cfg_.eadr) {
    // eADR: the power-failure protection domain flushes the whole cache;
    // every staged store is durable.
    for (std::size_t line = 0; line < total_lines_; ++line) persist_line(line);
  }
  // Spontaneous write-back: any dirty line may have (partially) persisted.
  for (std::size_t line = 0; line < total_lines_; ++line) {
    bool dirty = false;
    if (cfg_.track_store_order) {
      dirty = line_clock_[line].load(std::memory_order_acquire) >
              line_fenced_[line].load(std::memory_order_acquire);
    } else {
      const bool is_raw = line < raw_lines_;
      const std::size_t base =
          is_raw ? line * kWordsPerLine : (line - raw_lines_) * kWordsPerLine;
      for (std::size_t w = 0; w < kWordsPerLine && !dirty; ++w) {
        const std::uint64_t staged =
            is_raw ? raw_staged_[base + w].load(std::memory_order_acquire)
                   : rec_staged_[base + w].load(std::memory_order_acquire);
        const std::uint64_t durable = is_raw
                                          ? raw_durable_[base + w].load(std::memory_order_acquire)
                                          : rec_durable_[base + w].load(std::memory_order_acquire);
        dirty = staged != durable;
      }
    }
    if (dirty && rng.next_bool(policy.writeback_probability)) persist_line_prefix(line, rng);
  }
  // Power is lost: caches (the staged image) and DRAM (the volatile image)
  // are gone. Recovery will observe exactly the durable image.
  for (std::size_t line = 0; line < total_lines_; ++line) {
    const bool is_raw = line < raw_lines_;
    const std::size_t base = is_raw ? line * kWordsPerLine : (line - raw_lines_) * kWordsPerLine;
    for (std::size_t w = 0; w < kWordsPerLine; ++w) {
      if (is_raw) {
        raw_staged_[base + w].store(raw_durable_[base + w].load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
      } else {
        rec_staged_[base + w].store(rec_durable_[base + w].load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
      }
    }
    if (cfg_.track_store_order)
      line_fenced_[line].store(line_clock_[line].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  }
  for (int t = 0; t < kMaxThreads; ++t) {
    flush_queues_[t].lines.clear();
    flush_queues_[t].pending.clear();
    combiner_slots_[t].status.store(kSlotIdle, std::memory_order_relaxed);
  }
  combiner_lock_.store(false, std::memory_order_relaxed);
  fencers_in_flight_.store(0, std::memory_order_relaxed);
  clear_volatile();
}

}  // namespace nvhalt
