// Transactional (a,b)-tree with a=4, b=16, matching the paper's
// microbenchmark (Sec. 5, Fig. 8 row 1).
//
// B+-tree organisation: internal nodes hold up to b-1 separator keys and up
// to b children; leaves hold up to b (key, value) entries; every key lives
// in a leaf. Updates use top-down preemptive restructuring — full children
// are split and minimal children are fixed (borrow/merge) while descending
// — so one transaction never needs a retained parent stack and its write
// set stays small (good for the hardware path's capacity limits). Updates
// involve "expensive rebalancing operations" exactly as the paper notes,
// which is what drives hardware aborts in the update-heavy workloads.
#pragma once

#include <vector>

#include "api/tm.hpp"

namespace nvhalt {

class TmAbTree {
 public:
  static constexpr std::size_t kA = 4;   // min children / min leaf entries
  static constexpr std::size_t kB = 16;  // max children / max leaf entries

  /// Creates an empty tree in the TM's pool, rooted at `root_slot`.
  TmAbTree(TransactionalMemory& tm, int root_slot = 2);

  /// Attaches to a tree previously created at `root_slot` (post-recovery).
  static TmAbTree attach(TransactionalMemory& tm, int root_slot = 2);

  // ---- Self-contained transactional operations -------------------------
  bool insert(int tid, word_t key, word_t val);  // false if key present
  bool remove(int tid, word_t key);              // false if key absent
  bool contains(int tid, word_t key, word_t* out = nullptr);

  // Registry-aware conveniences: accept the RAII handle from
  // TransactionalMemory::register_thread() instead of a raw dense tid.
  bool insert(ThreadHandle& h, word_t key, word_t val) { return insert(h.tid(), key, val); }
  bool remove(ThreadHandle& h, word_t key) { return remove(h.tid(), key); }
  bool contains(ThreadHandle& h, word_t key, word_t* out = nullptr) {
    return contains(h.tid(), key, out);
  }

  // ---- Composable operations (inside a caller transaction) --------------
  bool insert_in(Tx& tx, word_t key, word_t val);
  bool remove_in(Tx& tx, word_t key);
  bool contains_in(Tx& tx, word_t key, word_t* out = nullptr);

  /// Transactionally collects all (key, value) pairs with lo <= key <= hi,
  /// in ascending key order — a consistent range snapshot.
  std::vector<std::pair<word_t, word_t>> range(int tid, word_t lo, word_t hi);
  std::vector<std::pair<word_t, word_t>> range(ThreadHandle& h, word_t lo, word_t hi) {
    return range(h.tid(), lo, hi);
  }
  void range_in(Tx& tx, word_t lo, word_t hi,
                std::vector<std::pair<word_t, word_t>>& out) const;

  // ---- Quiescent whole-tree helpers -------------------------------------
  std::size_t size_slow() const;
  /// Validates the (a,b)-tree invariants (fill bounds, key ordering,
  /// uniform leaf depth); returns false and fills `why` on violation.
  bool validate_slow(std::string* why = nullptr) const;
  /// In-order key dump (tests).
  std::vector<word_t> keys_slow() const;
  /// Live allocator blocks (every node) for recovery.
  std::vector<LiveBlock> collect_live_blocks() const;

 private:
  TmAbTree(TransactionalMemory& tm, int root_slot, bool attach);

  // Node layout (word offsets). Internal nodes: meta, keys[kB-1],
  // children[kB] -> 32 words. Leaves: meta, keys[kB], vals[kB] -> 33 words.
  // meta packs [leaf:1][count:63]; for internal nodes count = #children.
  static constexpr std::size_t kMeta = 0;
  static constexpr std::size_t kKeys = 1;                       // both kinds
  static constexpr std::size_t kChildren = kKeys + (kB - 1);    // internal
  static constexpr std::size_t kVals = kKeys + kB;              // leaf
  static constexpr std::size_t kInternalWords = 1 + (kB - 1) + kB;  // 32
  static constexpr std::size_t kLeafWords = 1 + kB + kB;            // 33

  static word_t meta_make(bool leaf, std::size_t count) {
    return (static_cast<word_t>(count) << 1) | (leaf ? 1 : 0);
  }
  static bool meta_leaf(word_t m) { return (m & 1) != 0; }
  static std::size_t meta_count(word_t m) { return static_cast<std::size_t>(m >> 1); }

  gaddr_t root_of(Tx& tx) const { return tx.read(root_ptr_); }

  // Descent helpers; all operate inside the caller's transaction.
  gaddr_t new_leaf(Tx& tx) const;
  gaddr_t new_internal(Tx& tx) const;
  void split_child(Tx& tx, gaddr_t parent, std::size_t idx) const;
  void fix_child(Tx& tx, gaddr_t parent, std::size_t idx) const;

  // Non-transactional recursion helpers (quiescent).
  void walk_count(gaddr_t node, std::size_t& n) const;
  bool check_node(gaddr_t node, word_t lo, word_t hi, bool has_lo, bool has_hi, int depth,
                  int& leaf_depth, std::string* why) const;

  TransactionalMemory& tm_;
  int root_slot_;
  gaddr_t root_ptr_;  // pool word holding the root node address
};

}  // namespace nvhalt
