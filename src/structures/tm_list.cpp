#include "structures/tm_list.hpp"

namespace nvhalt {

TmList::TmList(TransactionalMemory& tm, int root_slot, bool attach)
    : tm_(tm), root_slot_(root_slot) {
  if (attach) {
    head_ptr_ = tm_.pool().load_root(root_slot_);
    if (head_ptr_ == kNullAddr) throw TmLogicError("no list at this root slot");
  } else {
    head_ptr_ = tm_.allocator().raw_alloc(0, 1);
    tm_.pool().store_root_persist(0, root_slot_, head_ptr_);
  }
}

TmList::TmList(TransactionalMemory& tm, int root_slot) : TmList(tm, root_slot, false) {}

TmList TmList::attach(TransactionalMemory& tm, int root_slot) {
  return TmList(tm, root_slot, true);
}

bool TmList::insert_in(Tx& tx, word_t key, word_t val) {
  gaddr_t prev = head_ptr_;  // word holding the "next" pointer to rewrite
  gaddr_t cur = tx.read(prev);
  while (cur != kNullAddr) {
    const word_t k = tx.read(cur);
    if (k == key) return false;
    if (k > key) break;
    prev = cur + 2;
    cur = tx.read(prev);
  }
  const gaddr_t node = tx.alloc(kNodeWords);
  tx.write(node + 0, key);
  tx.write(node + 1, val);
  tx.write(node + 2, cur);
  tx.write(prev, node);
  return true;
}

bool TmList::remove_in(Tx& tx, word_t key) {
  gaddr_t prev = head_ptr_;
  gaddr_t cur = tx.read(prev);
  while (cur != kNullAddr) {
    const word_t k = tx.read(cur);
    if (k == key) {
      tx.write(prev, tx.read(cur + 2));
      tx.free(cur, kNodeWords);
      return true;
    }
    if (k > key) return false;
    prev = cur + 2;
    cur = tx.read(prev);
  }
  return false;
}

bool TmList::contains_in(Tx& tx, word_t key, word_t* out) {
  for (gaddr_t cur = tx.read(head_ptr_); cur != kNullAddr; cur = tx.read(cur + 2)) {
    const word_t k = tx.read(cur);
    if (k == key) {
      if (out != nullptr) *out = tx.read(cur + 1);
      return true;
    }
    if (k > key) return false;
  }
  return false;
}

bool TmList::insert(int tid, word_t key, word_t val) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = insert_in(tx, key, val); });
  return r;
}

bool TmList::remove(int tid, word_t key) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = remove_in(tx, key); });
  return r;
}

bool TmList::contains(int tid, word_t key, word_t* out) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = contains_in(tx, key, out); });
  return r;
}

word_t TmList::sum_values(int tid) {
  word_t sum = 0;
  tm_.run(tid, [&](Tx& tx) {
    sum = 0;
    for (gaddr_t cur = tx.read(head_ptr_); cur != kNullAddr; cur = tx.read(cur + 2))
      sum += tx.read(cur + 1);
  });
  return sum;
}

std::size_t TmList::size_slow() const {
  const PmemPool& pool = tm_.pool();
  std::size_t n = 0;
  for (gaddr_t cur = pool.load(head_ptr_); cur != kNullAddr; cur = pool.load(cur + 2)) ++n;
  return n;
}

std::vector<LiveBlock> TmList::collect_live_blocks() const {
  const PmemPool& pool = tm_.pool();
  std::vector<LiveBlock> live;
  live.push_back({head_ptr_, 1});
  for (gaddr_t cur = pool.load(head_ptr_); cur != kNullAddr; cur = pool.load(cur + 2))
    live.push_back({cur, kNodeWords});
  return live;
}

}  // namespace nvhalt
