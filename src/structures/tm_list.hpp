// Transactional sorted singly-linked list. Small, easy to reason about —
// used by tests (long read chains stress read-set validation) and the
// examples. Nodes are freed through the transactional allocator, which
// exercises the commit/abort hooks the paper's Sec. 4 motivates.
#pragma once

#include <vector>

#include "api/tm.hpp"

namespace nvhalt {

class TmList {
 public:
  /// Creates an empty list rooted at pool root slot `root_slot`.
  TmList(TransactionalMemory& tm, int root_slot = 4);

  /// Attaches to an existing list (post-recovery).
  static TmList attach(TransactionalMemory& tm, int root_slot = 4);

  bool insert(int tid, word_t key, word_t val);
  bool remove(int tid, word_t key);
  bool contains(int tid, word_t key, word_t* out = nullptr);

  // Registry-aware conveniences: accept the RAII handle from
  // TransactionalMemory::register_thread() instead of a raw dense tid.
  bool insert(ThreadHandle& h, word_t key, word_t val) { return insert(h.tid(), key, val); }
  bool remove(ThreadHandle& h, word_t key) { return remove(h.tid(), key); }
  bool contains(ThreadHandle& h, word_t key, word_t* out = nullptr) {
    return contains(h.tid(), key, out);
  }

  bool insert_in(Tx& tx, word_t key, word_t val);
  bool remove_in(Tx& tx, word_t key);
  bool contains_in(Tx& tx, word_t key, word_t* out = nullptr);

  /// Sum of all values, in one transaction (snapshot consistency tests).
  word_t sum_values(int tid);
  word_t sum_values(ThreadHandle& h) { return sum_values(h.tid()); }

  std::size_t size_slow() const;
  std::vector<LiveBlock> collect_live_blocks() const;

 private:
  TmList(TransactionalMemory& tm, int root_slot, bool attach);

  static constexpr std::size_t kNodeWords = 3;  // [key][val][next]

  TransactionalMemory& tm_;
  int root_slot_;
  gaddr_t head_ptr_;  // pool word holding the first node address
};

}  // namespace nvhalt
