#include "structures/tm_skiplist.hpp"

namespace nvhalt {

TmSkipList::TmSkipList(TransactionalMemory& tm, int root_slot, std::uint64_t seed, bool attach)
    : tm_(tm), root_slot_(root_slot) {
  rngs_.resize(kMaxThreads);
  for (int t = 0; t < kMaxThreads; ++t)
    rngs_[static_cast<std::size_t>(t)].rng.reseed(seed + static_cast<std::uint64_t>(t) * 77);
  if (attach) {
    head_ = tm_.pool().load_root(root_slot_);
    if (head_ == kNullAddr) throw TmLogicError("no skiplist at this root slot");
  } else {
    head_ = tm_.allocator().raw_alloc(0, node_words(kMaxLevel));
    tm_.pool().store_root_persist(0, root_slot_, head_);
    tm_.run(0, [&](Tx& tx) {
      tx.write(head_ + kKey, 0);
      tx.write(head_ + kVal, 0);
      tx.write(head_ + kHeight, kMaxLevel);
      for (std::size_t l = 0; l < kMaxLevel; ++l) tx.write(head_ + kNext + l, kNullAddr);
    });
  }
}

TmSkipList::TmSkipList(TransactionalMemory& tm, int root_slot, std::uint64_t seed)
    : TmSkipList(tm, root_slot, seed, /*attach=*/false) {}

TmSkipList TmSkipList::attach(TransactionalMemory& tm, int root_slot, std::uint64_t seed) {
  return TmSkipList(tm, root_slot, seed, /*attach=*/true);
}

std::size_t TmSkipList::random_height(int tid) {
  std::size_t h = 1;
  // The height draw is outside transactional state on purpose: retried
  // attempts may draw different heights, which is harmless (the draw only
  // happens when the insert will add a node).
  while (h < kMaxLevel && (rngs_[static_cast<std::size_t>(tid)].rng.next() & 1) != 0) ++h;
  return h;
}

bool TmSkipList::contains_in(Tx& tx, word_t key, word_t* out) {
  gaddr_t pred = head_;
  for (std::size_t l = kMaxLevel; l-- > 0;) {
    for (;;) {
      const gaddr_t next = tx.read(pred + kNext + l);
      if (next == kNullAddr || tx.read(next + kKey) >= key) break;
      pred = next;
    }
  }
  const gaddr_t cand = tx.read(pred + kNext + 0);
  if (cand != kNullAddr && tx.read(cand + kKey) == key) {
    if (out != nullptr) *out = tx.read(cand + kVal);
    return true;
  }
  return false;
}

bool TmSkipList::insert_in(Tx& tx, int tid, word_t key, word_t val) {
  if (key == 0) throw TmLogicError("key 0 is reserved for the skiplist sentinel");
  gaddr_t preds[kMaxLevel];
  gaddr_t pred = head_;
  for (std::size_t l = kMaxLevel; l-- > 0;) {
    for (;;) {
      const gaddr_t next = tx.read(pred + kNext + l);
      if (next == kNullAddr || tx.read(next + kKey) >= key) break;
      pred = next;
    }
    preds[l] = pred;
  }
  const gaddr_t cand = tx.read(preds[0] + kNext + 0);
  if (cand != kNullAddr && tx.read(cand + kKey) == key) return false;

  const std::size_t height = random_height(tid);
  const gaddr_t node = tx.alloc(node_words(height));
  tx.write(node + kKey, key);
  tx.write(node + kVal, val);
  tx.write(node + kHeight, height);
  for (std::size_t l = 0; l < height; ++l) {
    tx.write(node + kNext + l, tx.read(preds[l] + kNext + l));
    tx.write(preds[l] + kNext + l, node);
  }
  return true;
}

bool TmSkipList::remove_in(Tx& tx, word_t key) {
  gaddr_t preds[kMaxLevel];
  gaddr_t pred = head_;
  for (std::size_t l = kMaxLevel; l-- > 0;) {
    for (;;) {
      const gaddr_t next = tx.read(pred + kNext + l);
      if (next == kNullAddr || tx.read(next + kKey) >= key) break;
      pred = next;
    }
    preds[l] = pred;
  }
  const gaddr_t victim = tx.read(preds[0] + kNext + 0);
  if (victim == kNullAddr || tx.read(victim + kKey) != key) return false;

  const std::size_t height = tx.read(victim + kHeight);
  for (std::size_t l = 0; l < height; ++l) {
    // preds[l] precedes the victim at every level the victim occupies.
    if (tx.read(preds[l] + kNext + l) == victim)
      tx.write(preds[l] + kNext + l, tx.read(victim + kNext + l));
  }
  tx.free(victim, node_words(height));
  return true;
}

bool TmSkipList::insert(int tid, word_t key, word_t val) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = insert_in(tx, tid, key, val); });
  return r;
}

bool TmSkipList::remove(int tid, word_t key) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = remove_in(tx, key); });
  return r;
}

bool TmSkipList::contains(int tid, word_t key, word_t* out) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = contains_in(tx, key, out); });
  return r;
}

std::size_t TmSkipList::size_slow() const {
  const PmemPool& pool = tm_.pool();
  std::size_t n = 0;
  for (gaddr_t cur = pool.load(head_ + kNext); cur != kNullAddr; cur = pool.load(cur + kNext))
    ++n;
  return n;
}

bool TmSkipList::validate_slow(std::string* why) const {
  const PmemPool& pool = tm_.pool();
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Level 0: strictly sorted.
  word_t prev = 0;
  for (gaddr_t cur = pool.load(head_ + kNext); cur != kNullAddr;
       cur = pool.load(cur + kNext)) {
    const word_t k = pool.load(cur + kKey);
    if (k <= prev) return fail("level-0 keys unsorted at " + std::to_string(cur));
    const std::size_t h = pool.load(cur + kHeight);
    if (h == 0 || h > kMaxLevel) return fail("bad height at " + std::to_string(cur));
    prev = k;
  }
  // Every higher level must be a (sorted) subsequence of level 0.
  for (std::size_t l = 1; l < kMaxLevel; ++l) {
    gaddr_t lower = pool.load(head_ + kNext + 0);
    for (gaddr_t cur = pool.load(head_ + kNext + l); cur != kNullAddr;
         cur = pool.load(cur + kNext + l)) {
      while (lower != kNullAddr && lower != cur) lower = pool.load(lower + kNext + 0);
      if (lower == kNullAddr)
        return fail("level " + std::to_string(l) + " node not on level 0: " +
                    std::to_string(cur));
      if (pool.load(cur + kHeight) <= l)
        return fail("node on level above its height: " + std::to_string(cur));
    }
  }
  return true;
}

std::vector<word_t> TmSkipList::keys_slow() const {
  const PmemPool& pool = tm_.pool();
  std::vector<word_t> out;
  for (gaddr_t cur = pool.load(head_ + kNext); cur != kNullAddr; cur = pool.load(cur + kNext))
    out.push_back(pool.load(cur + kKey));
  return out;
}

std::vector<LiveBlock> TmSkipList::collect_live_blocks() const {
  const PmemPool& pool = tm_.pool();
  std::vector<LiveBlock> live;
  live.push_back({head_, static_cast<std::uint32_t>(node_words(kMaxLevel))});
  for (gaddr_t cur = pool.load(head_ + kNext); cur != kNullAddr; cur = pool.load(cur + kNext)) {
    const std::size_t h = pool.load(cur + kHeight);
    live.push_back({cur, static_cast<std::uint32_t>(node_words(h))});
  }
  return live;
}

}  // namespace nvhalt
