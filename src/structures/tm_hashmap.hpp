// Transactional chained hashmap, matching the paper's microbenchmark
// (Sec. 5, Fig. 8 row 2): a fixed number of buckets (the paper uses one
// million), separate chaining, and remove operations that *mark nodes
// empty* rather than freeing them — insert reuses an empty node in the
// chain. Works against any TransactionalMemory.
#pragma once

#include <vector>

#include "api/tm.hpp"

namespace nvhalt {

class TmHashMap {
 public:
  /// Keys must be nonzero (0 is the empty-node sentinel).
  static constexpr word_t kEmptyKey = 0;

  /// Creates a fresh map with `buckets` (power of two) chains inside the
  /// TM's pool, recording its root in pool root slot `root_slot`.
  TmHashMap(TransactionalMemory& tm, std::size_t buckets, int root_slot = 0);

  /// Attaches to a map previously created in `root_slot` (post-recovery).
  static TmHashMap attach(TransactionalMemory& tm, int root_slot = 0);

  // ---- Self-contained transactional operations -------------------------
  /// Inserts (key, val); returns false if the key was already present
  /// (value left unchanged, set semantics as in the paper's benchmark).
  bool insert(int tid, word_t key, word_t val);

  /// Removes key; returns false if absent.
  bool remove(int tid, word_t key);

  /// Returns true and sets *out (if non-null) when key is present.
  bool contains(int tid, word_t key, word_t* out = nullptr);

  // Registry-aware conveniences: accept the RAII handle from
  // TransactionalMemory::register_thread() instead of a raw dense tid.
  bool insert(ThreadHandle& h, word_t key, word_t val) { return insert(h.tid(), key, val); }
  bool remove(ThreadHandle& h, word_t key) { return remove(h.tid(), key); }
  bool contains(ThreadHandle& h, word_t key, word_t* out = nullptr) {
    return contains(h.tid(), key, out);
  }

  // ---- Composable operations (inside a caller transaction) --------------
  bool insert_in(Tx& tx, word_t key, word_t val);
  bool remove_in(Tx& tx, word_t key);
  bool contains_in(Tx& tx, word_t key, word_t* out = nullptr);

  /// Non-transactional full walk (quiescent): number of live keys.
  std::size_t size_slow() const;

  /// Enumerates all allocator blocks (bucket array + every node, including
  /// empty-marked ones) for recovery (paper Sec. 4's live-block iterator).
  std::vector<LiveBlock> collect_live_blocks() const;

  std::size_t buckets() const { return buckets_; }
  gaddr_t bucket_array() const { return array_; }

 private:
  TmHashMap(TransactionalMemory& tm, gaddr_t array, std::size_t buckets);

  // Node layout: [key][val][next]; allocated as kNodeWords.
  static constexpr std::size_t kNodeWords = 3;

  std::size_t bucket_of(word_t key) const {
    std::uint64_t x = key * 0x9E3779B97F4A7C15ULL;
    x ^= x >> 29;
    return static_cast<std::size_t>(x) & (buckets_ - 1);
  }

  TransactionalMemory& tm_;
  gaddr_t array_;
  std::size_t buckets_;
};

}  // namespace nvhalt
