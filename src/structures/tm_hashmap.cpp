#include "structures/tm_hashmap.hpp"

namespace nvhalt {

TmHashMap::TmHashMap(TransactionalMemory& tm, gaddr_t array, std::size_t buckets)
    : tm_(tm), array_(array), buckets_(buckets) {}

TmHashMap::TmHashMap(TransactionalMemory& tm, std::size_t buckets, int root_slot) : tm_(tm) {
  if (buckets == 0 || (buckets & (buckets - 1)) != 0)
    throw TmLogicError("bucket count must be a power of two");
  buckets_ = buckets;
  array_ = tm_.allocator().raw_alloc_large(buckets);
  // Bucket heads start null; the zeroed volatile/persistent images already
  // encode that. Record the root durably so attach() works post-crash.
  tm_.pool().store_root_persist(0, root_slot, array_);
  tm_.pool().store_root_persist(0, root_slot + 1, buckets);
}

TmHashMap TmHashMap::attach(TransactionalMemory& tm, int root_slot) {
  const gaddr_t array = tm.pool().load_root(root_slot);
  const std::size_t buckets = tm.pool().load_root(root_slot + 1);
  if (array == kNullAddr || buckets == 0) throw TmLogicError("no hashmap at this root slot");
  return TmHashMap(tm, array, buckets);
}

bool TmHashMap::insert_in(Tx& tx, word_t key, word_t val) {
  if (key == kEmptyKey) throw TmLogicError("key 0 is reserved");
  const gaddr_t bw = array_ + bucket_of(key);
  const gaddr_t head = tx.read(bw);
  gaddr_t empty_slot = kNullAddr;
  for (gaddr_t n = head; n != kNullAddr; n = tx.read(n + 2)) {
    const word_t k = tx.read(n);
    if (k == key) return false;
    if (k == kEmptyKey && empty_slot == kNullAddr) empty_slot = n;
  }
  if (empty_slot != kNullAddr) {
    // Reuse an empty-marked node in place (paper Sec. 5: removes mark
    // nodes empty; inserts recycle them).
    tx.write(empty_slot + 1, val);
    tx.write(empty_slot, key);
    return true;
  }
  const gaddr_t node = tx.alloc(kNodeWords);
  tx.write(node + 0, key);
  tx.write(node + 1, val);
  tx.write(node + 2, head);
  tx.write(bw, node);
  return true;
}

bool TmHashMap::remove_in(Tx& tx, word_t key) {
  const gaddr_t bw = array_ + bucket_of(key);
  for (gaddr_t n = tx.read(bw); n != kNullAddr; n = tx.read(n + 2)) {
    if (tx.read(n) == key) {
      tx.write(n, kEmptyKey);  // mark empty, do not unlink or free
      return true;
    }
  }
  return false;
}

bool TmHashMap::contains_in(Tx& tx, word_t key, word_t* out) {
  const gaddr_t bw = array_ + bucket_of(key);
  for (gaddr_t n = tx.read(bw); n != kNullAddr; n = tx.read(n + 2)) {
    if (tx.read(n) == key) {
      if (out != nullptr) *out = tx.read(n + 1);
      return true;
    }
  }
  return false;
}

bool TmHashMap::insert(int tid, word_t key, word_t val) {
  bool result = false;
  tm_.run(tid, [&](Tx& tx) { result = insert_in(tx, key, val); });
  return result;
}

bool TmHashMap::remove(int tid, word_t key) {
  bool result = false;
  tm_.run(tid, [&](Tx& tx) { result = remove_in(tx, key); });
  return result;
}

bool TmHashMap::contains(int tid, word_t key, word_t* out) {
  bool result = false;
  tm_.run(tid, TxMode::kReadOnly, [&](Tx& tx) { result = contains_in(tx, key, out); });
  return result;
}

std::size_t TmHashMap::size_slow() const {
  const PmemPool& pool = tm_.pool();
  std::size_t count = 0;
  for (std::size_t b = 0; b < buckets_; ++b) {
    for (gaddr_t n = pool.load(array_ + b); n != kNullAddr; n = pool.load(n + 2)) {
      if (pool.load(n) != kEmptyKey) ++count;
    }
  }
  return count;
}

std::vector<LiveBlock> TmHashMap::collect_live_blocks() const {
  PmemPool& pool = tm_.pool();
  std::vector<LiveBlock> live;
  live.push_back({array_, static_cast<std::uint32_t>(buckets_)});
  for (std::size_t b = 0; b < buckets_; ++b) {
    for (gaddr_t n = pool.load(array_ + b); n != kNullAddr; n = pool.load(n + 2)) {
      live.push_back({n, kNodeWords});
    }
  }
  return live;
}

}  // namespace nvhalt
