// Transactional skiplist. A second ordered map (beyond the (a,b)-tree)
// with a very different transaction profile: towers of pointers instead of
// wide nodes, so transactions read long pointer chains (O(log n) nodes,
// each a separate cache line) and writes touch a variable number of
// predecessor towers. Useful for stressing read-set growth on the software
// path and read instrumentation on the hardware path.
#pragma once

#include <string>
#include <vector>

#include "api/tm.hpp"
#include "util/rng.hpp"

namespace nvhalt {

class TmSkipList {
 public:
  static constexpr std::size_t kMaxLevel = 12;

  /// Creates an empty skiplist rooted at pool root slot `root_slot`.
  TmSkipList(TransactionalMemory& tm, int root_slot = 8, std::uint64_t seed = 0xD1CE);

  /// Attaches to an existing skiplist (post-recovery).
  static TmSkipList attach(TransactionalMemory& tm, int root_slot = 8,
                           std::uint64_t seed = 0xD1CE);

  bool insert(int tid, word_t key, word_t val);
  bool remove(int tid, word_t key);
  bool contains(int tid, word_t key, word_t* out = nullptr);

  // Registry-aware conveniences: accept the RAII handle from
  // TransactionalMemory::register_thread() instead of a raw dense tid.
  bool insert(ThreadHandle& h, word_t key, word_t val) { return insert(h.tid(), key, val); }
  bool remove(ThreadHandle& h, word_t key) { return remove(h.tid(), key); }
  bool contains(ThreadHandle& h, word_t key, word_t* out = nullptr) {
    return contains(h.tid(), key, out);
  }

  bool insert_in(Tx& tx, int tid, word_t key, word_t val);
  bool remove_in(Tx& tx, word_t key);
  bool contains_in(Tx& tx, word_t key, word_t* out = nullptr);

  std::size_t size_slow() const;
  /// Checks level-0 ordering and that every level is a sublist of the
  /// level below.
  bool validate_slow(std::string* why = nullptr) const;
  std::vector<word_t> keys_slow() const;
  std::vector<LiveBlock> collect_live_blocks() const;

 private:
  TmSkipList(TransactionalMemory& tm, int root_slot, std::uint64_t seed, bool attach);

  // Node layout: [key][val][height][next_0 .. next_{height-1}].
  static constexpr std::size_t kKey = 0;
  static constexpr std::size_t kVal = 1;
  static constexpr std::size_t kHeight = 2;
  static constexpr std::size_t kNext = 3;
  static std::size_t node_words(std::size_t height) { return kNext + height; }

  /// Geometric tower height in [1, kMaxLevel] (p = 1/2), per-thread RNG.
  std::size_t random_height(int tid);

  TransactionalMemory& tm_;
  int root_slot_;
  gaddr_t head_;  // sentinel node of height kMaxLevel
  struct alignas(kCacheLineBytes) PerThreadRng {
    Xoshiro256 rng;
  };
  std::vector<PerThreadRng> rngs_;
};

}  // namespace nvhalt
