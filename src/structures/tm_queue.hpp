// Transactional bounded FIFO queue (ring buffer). Not part of the paper's
// evaluation; included as an additional substrate consumer exercising
// multi-word transactions with head/tail contention, and used by tests and
// the examples.
#pragma once

#include <vector>

#include "api/tm.hpp"

namespace nvhalt {

class TmQueue {
 public:
  /// Creates a queue with `capacity` slots (power of two), rooted at pool
  /// root slot `root_slot`.
  TmQueue(TransactionalMemory& tm, std::size_t capacity, int root_slot = 6);

  /// Attaches to an existing queue (post-recovery).
  static TmQueue attach(TransactionalMemory& tm, int root_slot = 6);

  /// Enqueues v; returns false when full.
  bool enqueue(int tid, word_t v);
  /// Dequeues into *out; returns false when empty.
  bool dequeue(int tid, word_t* out);

  // Registry-aware conveniences: accept the RAII handle from
  // TransactionalMemory::register_thread() instead of a raw dense tid.
  bool enqueue(ThreadHandle& h, word_t v) { return enqueue(h.tid(), v); }
  bool dequeue(ThreadHandle& h, word_t* out) { return dequeue(h.tid(), out); }

  bool enqueue_in(Tx& tx, word_t v);
  bool dequeue_in(Tx& tx, word_t* out);

  /// Size observed in its own transaction.
  std::size_t size(int tid);
  std::size_t size(ThreadHandle& h) { return size(h.tid()); }

  std::size_t size_slow() const;
  std::size_t capacity() const { return capacity_; }
  std::vector<LiveBlock> collect_live_blocks() const;

 private:
  TmQueue(TransactionalMemory& tm, int root_slot, bool attach, std::size_t capacity);

  // Header layout: [head][tail][capacity]; buffer follows separately.
  static constexpr std::size_t kHead = 0;
  static constexpr std::size_t kTail = 1;
  static constexpr std::size_t kCap = 2;
  static constexpr std::size_t kHeaderWords = 3;

  TransactionalMemory& tm_;
  int root_slot_;
  gaddr_t header_;
  gaddr_t buffer_;
  std::size_t capacity_;
};

}  // namespace nvhalt
