#include "structures/tm_queue.hpp"

namespace nvhalt {

TmQueue::TmQueue(TransactionalMemory& tm, int root_slot, bool attach, std::size_t capacity)
    : tm_(tm), root_slot_(root_slot) {
  if (attach) {
    header_ = tm_.pool().load_root(root_slot_);
    buffer_ = tm_.pool().load_root(root_slot_ + 1);
    if (header_ == kNullAddr || buffer_ == kNullAddr)
      throw TmLogicError("no queue at this root slot");
    capacity_ = tm_.pool().load(header_ + kCap);
  } else {
    if (capacity == 0 || (capacity & (capacity - 1)) != 0)
      throw TmLogicError("queue capacity must be a power of two");
    capacity_ = capacity;
    header_ = tm_.allocator().raw_alloc(0, kHeaderWords);
    buffer_ = capacity <= 128 ? tm_.allocator().raw_alloc(0, capacity)
                              : tm_.allocator().raw_alloc_large(capacity);
    tm_.pool().store_root_persist(0, root_slot_, header_);
    tm_.pool().store_root_persist(0, root_slot_ + 1, buffer_);
    // Install the header durably so attach() after a crash sees a
    // consistent (empty) queue.
    tm_.run(0, [&](Tx& tx) {
      tx.write(header_ + kHead, 0);
      tx.write(header_ + kTail, 0);
      tx.write(header_ + kCap, capacity_);
    });
  }
}

TmQueue::TmQueue(TransactionalMemory& tm, std::size_t capacity, int root_slot)
    : TmQueue(tm, root_slot, /*attach=*/false, capacity) {}

TmQueue TmQueue::attach(TransactionalMemory& tm, int root_slot) {
  return TmQueue(tm, root_slot, /*attach=*/true, 0);
}

bool TmQueue::enqueue_in(Tx& tx, word_t v) {
  const word_t head = tx.read(header_ + kHead);
  const word_t tail = tx.read(header_ + kTail);
  if (tail - head == capacity_) return false;  // full
  tx.write(buffer_ + (tail & (capacity_ - 1)), v);
  tx.write(header_ + kTail, tail + 1);
  return true;
}

bool TmQueue::dequeue_in(Tx& tx, word_t* out) {
  const word_t head = tx.read(header_ + kHead);
  const word_t tail = tx.read(header_ + kTail);
  if (head == tail) return false;  // empty
  if (out != nullptr) *out = tx.read(buffer_ + (head & (capacity_ - 1)));
  tx.write(header_ + kHead, head + 1);
  return true;
}

bool TmQueue::enqueue(int tid, word_t v) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = enqueue_in(tx, v); });
  return r;
}

bool TmQueue::dequeue(int tid, word_t* out) {
  bool r = false;
  tm_.run(tid, [&](Tx& tx) { r = dequeue_in(tx, out); });
  return r;
}

std::size_t TmQueue::size(int tid) {
  std::size_t n = 0;
  tm_.run(tid, [&](Tx& tx) {
    n = static_cast<std::size_t>(tx.read(header_ + kTail) - tx.read(header_ + kHead));
  });
  return n;
}

std::size_t TmQueue::size_slow() const {
  const PmemPool& pool = tm_.pool();
  return static_cast<std::size_t>(pool.load(header_ + kTail) - pool.load(header_ + kHead));
}

std::vector<LiveBlock> TmQueue::collect_live_blocks() const {
  return {{header_, kHeaderWords}, {buffer_, static_cast<std::uint32_t>(capacity_)}};
}

}  // namespace nvhalt
