#include "structures/tm_abtree.hpp"

#include <string>

namespace nvhalt {

namespace {
constexpr word_t kReservedKey = 0;  // keys must be nonzero
}

TmAbTree::TmAbTree(TransactionalMemory& tm, int root_slot, bool attach)
    : tm_(tm), root_slot_(root_slot) {
  if (attach) {
    root_ptr_ = tm_.pool().load_root(root_slot_);
    if (root_ptr_ == kNullAddr) throw TmLogicError("no abtree at this root slot");
  } else {
    root_ptr_ = tm_.allocator().raw_alloc(0, 1);
    tm_.pool().store_root_persist(0, root_slot_, root_ptr_);
    // The empty tree is a leaf with zero entries, installed transactionally
    // so it is durable.
    tm_.run(0, [&](Tx& tx) {
      const gaddr_t leaf = new_leaf(tx);
      tx.write(root_ptr_, leaf);
    });
  }
}

TmAbTree::TmAbTree(TransactionalMemory& tm, int root_slot)
    : TmAbTree(tm, root_slot, /*attach=*/false) {}

TmAbTree TmAbTree::attach(TransactionalMemory& tm, int root_slot) {
  return TmAbTree(tm, root_slot, /*attach=*/true);
}

gaddr_t TmAbTree::new_leaf(Tx& tx) const {
  const gaddr_t n = tx.alloc(kLeafWords);
  tx.write(n + kMeta, meta_make(true, 0));
  return n;
}

gaddr_t TmAbTree::new_internal(Tx& tx) const {
  const gaddr_t n = tx.alloc(kInternalWords);
  tx.write(n + kMeta, meta_make(false, 0));
  return n;
}

// Routes `key` within an internal node: returns the child index to follow.
// Separator convention: child i holds keys < keys[i]; child i+1 holds keys
// >= keys[i].
static std::size_t route(Tx& tx, gaddr_t node, std::size_t nchildren, word_t key,
                         std::size_t keys_off) {
  std::size_t idx = 0;
  while (idx + 1 < nchildren && key >= tx.read(node + keys_off + idx)) ++idx;
  return idx;
}

void TmAbTree::split_child(Tx& tx, gaddr_t parent, std::size_t idx) const {
  const gaddr_t child = tx.read(parent + kChildren + idx);
  const word_t cm = tx.read(child + kMeta);
  const std::size_t pcount = meta_count(tx.read(parent + kMeta));
  word_t separator;
  gaddr_t right;

  if (meta_leaf(cm)) {
    // Full leaf (kB entries): keep the low half, move the high half.
    right = new_leaf(tx);
    const std::size_t keep = kB / 2;
    for (std::size_t i = keep; i < kB; ++i) {
      tx.write(right + kKeys + (i - keep), tx.read(child + kKeys + i));
      tx.write(right + kVals + (i - keep), tx.read(child + kVals + i));
    }
    tx.write(right + kMeta, meta_make(true, kB - keep));
    tx.write(child + kMeta, meta_make(true, keep));
    separator = tx.read(right + kKeys);  // smallest key of the right leaf
  } else {
    // Full internal node (kB children, kB-1 keys): middle key moves up.
    right = new_internal(tx);
    const std::size_t keep = kB / 2;  // children kept on the left
    separator = tx.read(child + kKeys + (keep - 1));
    for (std::size_t i = keep; i < kB; ++i)
      tx.write(right + kChildren + (i - keep), tx.read(child + kChildren + i));
    for (std::size_t i = keep; i < kB - 1; ++i)
      tx.write(right + kKeys + (i - keep), tx.read(child + kKeys + i));
    tx.write(right + kMeta, meta_make(false, kB - keep));
    tx.write(child + kMeta, meta_make(false, keep));
  }

  // Insert the separator and the right sibling into the parent at idx.
  for (std::size_t i = pcount - 1; i > idx; --i) {
    tx.write(parent + kKeys + i, tx.read(parent + kKeys + i - 1));
    tx.write(parent + kChildren + i + 1, tx.read(parent + kChildren + i));
  }
  tx.write(parent + kKeys + idx, separator);
  tx.write(parent + kChildren + idx + 1, right);
  tx.write(parent + kMeta, meta_make(false, pcount + 1));
}

bool TmAbTree::insert_in(Tx& tx, word_t key, word_t val) {
  if (key == kReservedKey) throw TmLogicError("key 0 is reserved");
  gaddr_t root = tx.read(root_ptr_);
  {
    const word_t rm = tx.read(root + kMeta);
    // Full means kB entries (leaf) or kB children (internal).
    if (meta_count(rm) == kB) {
      // Grow the tree: a new root with the old root as its only child,
      // then split that child.
      const gaddr_t nr = new_internal(tx);
      tx.write(nr + kChildren + 0, root);
      tx.write(nr + kMeta, meta_make(false, 1));
      split_child(tx, nr, 0);
      tx.write(root_ptr_, nr);
      root = nr;
    }
  }

  gaddr_t node = root;
  for (;;) {
    const word_t m = tx.read(node + kMeta);
    const std::size_t count = meta_count(m);
    if (meta_leaf(m)) {
      // Sorted insert into a non-full leaf.
      std::size_t pos = 0;
      while (pos < count) {
        const word_t k = tx.read(node + kKeys + pos);
        if (k == key) return false;
        if (k > key) break;
        ++pos;
      }
      for (std::size_t i = count; i > pos; --i) {
        tx.write(node + kKeys + i, tx.read(node + kKeys + i - 1));
        tx.write(node + kVals + i, tx.read(node + kVals + i - 1));
      }
      tx.write(node + kKeys + pos, key);
      tx.write(node + kVals + pos, val);
      tx.write(node + kMeta, meta_make(true, count + 1));
      return true;
    }

    std::size_t idx = route(tx, node, count, key, kKeys);
    gaddr_t child = tx.read(node + kChildren + idx);
    const word_t chm = tx.read(child + kMeta);
    if (meta_count(chm) == kB) {
      split_child(tx, node, idx);
      // Re-route: the separator now at keys[idx] decides the side.
      if (key >= tx.read(node + kKeys + idx)) ++idx;
      child = tx.read(node + kChildren + idx);
    }
    node = child;
  }
}

void TmAbTree::fix_child(Tx& tx, gaddr_t parent, std::size_t idx) const {
  const std::size_t pcount = meta_count(tx.read(parent + kMeta));
  const gaddr_t child = tx.read(parent + kChildren + idx);
  const word_t cm = tx.read(child + kMeta);
  const bool leaf = meta_leaf(cm);
  const std::size_t ccount = meta_count(cm);

  const gaddr_t left = idx > 0 ? tx.read(parent + kChildren + idx - 1) : kNullAddr;
  const gaddr_t right = idx + 1 < pcount ? tx.read(parent + kChildren + idx + 1) : kNullAddr;
  const std::size_t lcount = left != kNullAddr ? meta_count(tx.read(left + kMeta)) : 0;
  const std::size_t rcount = right != kNullAddr ? meta_count(tx.read(right + kMeta)) : 0;

  if (left != kNullAddr && lcount > kA) {
    // Borrow the left sibling's last entry/child.
    if (leaf) {
      for (std::size_t i = ccount; i > 0; --i) {
        tx.write(child + kKeys + i, tx.read(child + kKeys + i - 1));
        tx.write(child + kVals + i, tx.read(child + kVals + i - 1));
      }
      tx.write(child + kKeys + 0, tx.read(left + kKeys + lcount - 1));
      tx.write(child + kVals + 0, tx.read(left + kVals + lcount - 1));
      tx.write(child + kMeta, meta_make(true, ccount + 1));
      tx.write(left + kMeta, meta_make(true, lcount - 1));
      tx.write(parent + kKeys + idx - 1, tx.read(child + kKeys + 0));
    } else {
      for (std::size_t i = ccount; i > 0; --i)
        tx.write(child + kChildren + i, tx.read(child + kChildren + i - 1));
      for (std::size_t i = ccount - 1; i > 0; --i)
        tx.write(child + kKeys + i, tx.read(child + kKeys + i - 1));
      tx.write(child + kKeys + 0, tx.read(parent + kKeys + idx - 1));
      tx.write(child + kChildren + 0, tx.read(left + kChildren + lcount - 1));
      tx.write(parent + kKeys + idx - 1, tx.read(left + kKeys + lcount - 2));
      tx.write(child + kMeta, meta_make(false, ccount + 1));
      tx.write(left + kMeta, meta_make(false, lcount - 1));
    }
    return;
  }

  if (right != kNullAddr && rcount > kA) {
    // Borrow the right sibling's first entry/child.
    if (leaf) {
      tx.write(child + kKeys + ccount, tx.read(right + kKeys + 0));
      tx.write(child + kVals + ccount, tx.read(right + kVals + 0));
      for (std::size_t i = 0; i + 1 < rcount; ++i) {
        tx.write(right + kKeys + i, tx.read(right + kKeys + i + 1));
        tx.write(right + kVals + i, tx.read(right + kVals + i + 1));
      }
      tx.write(child + kMeta, meta_make(true, ccount + 1));
      tx.write(right + kMeta, meta_make(true, rcount - 1));
      tx.write(parent + kKeys + idx, tx.read(right + kKeys + 0));
    } else {
      tx.write(child + kKeys + ccount - 1, tx.read(parent + kKeys + idx));
      tx.write(child + kChildren + ccount, tx.read(right + kChildren + 0));
      tx.write(parent + kKeys + idx, tx.read(right + kKeys + 0));
      for (std::size_t i = 0; i + 1 < rcount; ++i)
        tx.write(right + kChildren + i, tx.read(right + kChildren + i + 1));
      for (std::size_t i = 0; i + 2 < rcount; ++i)
        tx.write(right + kKeys + i, tx.read(right + kKeys + i + 1));
      tx.write(child + kMeta, meta_make(false, ccount + 1));
      tx.write(right + kMeta, meta_make(false, rcount - 1));
    }
    return;
  }

  // No sibling can lend: merge. Merge `child` into `left` when possible,
  // otherwise merge `right` into `child`; either way the separator between
  // the merged pair folds down and the parent loses one child.
  const bool with_left = left != kNullAddr;
  const gaddr_t dst = with_left ? left : child;
  const gaddr_t src = with_left ? child : right;
  const std::size_t sep_idx = with_left ? idx - 1 : idx;  // parent key between dst|src
  const std::size_t dcount = with_left ? lcount : ccount;
  const std::size_t scount = with_left ? ccount : rcount;

  if (leaf) {
    for (std::size_t i = 0; i < scount; ++i) {
      tx.write(dst + kKeys + dcount + i, tx.read(src + kKeys + i));
      tx.write(dst + kVals + dcount + i, tx.read(src + kVals + i));
    }
    tx.write(dst + kMeta, meta_make(true, dcount + scount));
    tx.free(src, kLeafWords);
  } else {
    tx.write(dst + kKeys + dcount - 1, tx.read(parent + kKeys + sep_idx));
    for (std::size_t i = 0; i < scount; ++i)
      tx.write(dst + kChildren + dcount + i, tx.read(src + kChildren + i));
    for (std::size_t i = 0; i + 1 < scount; ++i)
      tx.write(dst + kKeys + dcount + i, tx.read(src + kKeys + i));
    tx.write(dst + kMeta, meta_make(false, dcount + scount));
    tx.free(src, kInternalWords);
  }

  // Remove the separator and the src child slot from the parent.
  for (std::size_t i = sep_idx; i + 2 < pcount; ++i)
    tx.write(parent + kKeys + i, tx.read(parent + kKeys + i + 1));
  for (std::size_t i = sep_idx + 1; i + 1 < pcount; ++i)
    tx.write(parent + kChildren + i, tx.read(parent + kChildren + i + 1));
  tx.write(parent + kMeta, meta_make(false, pcount - 1));
}

bool TmAbTree::remove_in(Tx& tx, word_t key) {
  gaddr_t node = tx.read(root_ptr_);
  bool at_root = true;
  for (;;) {
    const word_t m = tx.read(node + kMeta);
    const std::size_t count = meta_count(m);
    if (meta_leaf(m)) {
      std::size_t pos = 0;
      while (pos < count && tx.read(node + kKeys + pos) != key) ++pos;
      if (pos == count) return false;
      for (std::size_t i = pos; i + 1 < count; ++i) {
        tx.write(node + kKeys + i, tx.read(node + kKeys + i + 1));
        tx.write(node + kVals + i, tx.read(node + kVals + i + 1));
      }
      tx.write(node + kMeta, meta_make(true, count - 1));
      return true;
    }

    std::size_t idx = route(tx, node, count, key, kKeys);
    gaddr_t child = tx.read(node + kChildren + idx);
    if (meta_count(tx.read(child + kMeta)) == kA) {
      // Preemptive fix: never descend into a minimal child.
      fix_child(tx, node, idx);
      if (at_root && meta_count(tx.read(node + kMeta)) == 1) {
        // The root lost its last separator: shrink the tree.
        const gaddr_t only = tx.read(node + kChildren + 0);
        tx.write(root_ptr_, only);
        tx.free(node, kInternalWords);
        node = only;
        continue;
      }
      idx = route(tx, node, meta_count(tx.read(node + kMeta)), key, kKeys);
      child = tx.read(node + kChildren + idx);
    }
    node = child;
    at_root = false;
  }
}

bool TmAbTree::contains_in(Tx& tx, word_t key, word_t* out) {
  gaddr_t node = tx.read(root_ptr_);
  for (;;) {
    const word_t m = tx.read(node + kMeta);
    const std::size_t count = meta_count(m);
    if (meta_leaf(m)) {
      for (std::size_t i = 0; i < count; ++i) {
        if (tx.read(node + kKeys + i) == key) {
          if (out != nullptr) *out = tx.read(node + kVals + i);
          return true;
        }
      }
      return false;
    }
    node = tx.read(node + kChildren + route(tx, node, count, key, kKeys));
  }
}

void TmAbTree::range_in(Tx& tx, word_t lo, word_t hi,
                        std::vector<std::pair<word_t, word_t>>& out) const {
  auto rec = [&](auto&& self, gaddr_t node) -> void {
    const word_t m = tx.read(node + kMeta);
    const std::size_t count = meta_count(m);
    if (meta_leaf(m)) {
      for (std::size_t i = 0; i < count; ++i) {
        const word_t k = tx.read(node + kKeys + i);
        if (k < lo) continue;
        if (k > hi) return;
        out.emplace_back(k, tx.read(node + kVals + i));
      }
      return;
    }
    // Child i covers keys in [keys[i-1], keys[i]); visit children whose
    // interval intersects [lo, hi].
    for (std::size_t i = 0; i < count; ++i) {
      if (i > 0 && tx.read(node + kKeys + i - 1) > hi) return;  // all further >= lower bound > hi
      if (i + 1 < count && tx.read(node + kKeys + i) <= lo) continue;  // all keys < keys[i] <= lo
      self(self, tx.read(node + kChildren + i));
    }
  };
  rec(rec, tx.read(root_ptr_));
}

std::vector<std::pair<word_t, word_t>> TmAbTree::range(int tid, word_t lo, word_t hi) {
  std::vector<std::pair<word_t, word_t>> out;
  tm_.run(tid, TxMode::kReadOnly, [&](Tx& tx) {
    out.clear();  // the body may be re-executed on abort
    range_in(tx, lo, hi, out);
  });
  return out;
}

bool TmAbTree::insert(int tid, word_t key, word_t val) {
  bool result = false;
  tm_.run(tid, [&](Tx& tx) { result = insert_in(tx, key, val); });
  return result;
}

bool TmAbTree::remove(int tid, word_t key) {
  bool result = false;
  tm_.run(tid, [&](Tx& tx) { result = remove_in(tx, key); });
  return result;
}

bool TmAbTree::contains(int tid, word_t key, word_t* out) {
  bool result = false;
  tm_.run(tid, TxMode::kReadOnly, [&](Tx& tx) { result = contains_in(tx, key, out); });
  return result;
}

void TmAbTree::walk_count(gaddr_t node, std::size_t& n) const {
  const PmemPool& pool = tm_.pool();
  const word_t m = pool.load(node + kMeta);
  if (meta_leaf(m)) {
    n += meta_count(m);
    return;
  }
  for (std::size_t i = 0; i < meta_count(m); ++i) walk_count(pool.load(node + kChildren + i), n);
}

std::size_t TmAbTree::size_slow() const {
  std::size_t n = 0;
  walk_count(tm_.pool().load(root_ptr_), n);
  return n;
}

bool TmAbTree::check_node(gaddr_t node, word_t lo, word_t hi, bool has_lo, bool has_hi,
                          int depth, int& leaf_depth, std::string* why) const {
  const PmemPool& pool = tm_.pool();
  const word_t m = pool.load(node + kMeta);
  const std::size_t count = meta_count(m);
  const bool is_root = depth == 0;
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = std::string(msg) + " at node " + std::to_string(node);
    return false;
  };

  if (meta_leaf(m)) {
    if (count > kB) return fail("leaf overflow");
    if (!is_root && count < kA) return fail("leaf underflow");
    word_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const word_t k = pool.load(node + kKeys + i);
      if (i > 0 && k <= prev) return fail("leaf keys unsorted");
      if (has_lo && k < lo) return fail("leaf key below bound");
      if (has_hi && k >= hi) return fail("leaf key above bound");
      prev = k;
    }
    if (leaf_depth == -1) leaf_depth = depth;
    if (leaf_depth != depth) return fail("uneven leaf depth");
    return true;
  }

  if (count > kB) return fail("internal overflow");
  if (!is_root && count < kA) return fail("internal underflow");
  if (is_root && count < 2) return fail("internal root with < 2 children");
  for (std::size_t i = 0; i + 1 < count; ++i) {
    const word_t k = pool.load(node + kKeys + i);
    if (i > 0 && k <= pool.load(node + kKeys + i - 1)) return fail("separators unsorted");
    if (has_lo && k < lo) return fail("separator below bound");
    if (has_hi && k >= hi) return fail("separator above bound");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const word_t clo = i == 0 ? lo : pool.load(node + kKeys + i - 1);
    const bool chas_lo = i == 0 ? has_lo : true;
    const word_t chi = i + 1 == count ? hi : pool.load(node + kKeys + i);
    const bool chas_hi = i + 1 == count ? has_hi : true;
    if (!check_node(pool.load(node + kChildren + i), clo, chi, chas_lo, chas_hi, depth + 1,
                    leaf_depth, why))
      return false;
  }
  return true;
}

bool TmAbTree::validate_slow(std::string* why) const {
  int leaf_depth = -1;
  return check_node(tm_.pool().load(root_ptr_), 0, 0, false, false, 0, leaf_depth, why);
}

std::vector<word_t> TmAbTree::keys_slow() const {
  std::vector<word_t> out;
  const PmemPool& pool = tm_.pool();
  auto rec = [&](auto&& self, gaddr_t node) -> void {
    const word_t m = pool.load(node + kMeta);
    const std::size_t count = meta_count(m);
    if (meta_leaf(m)) {
      for (std::size_t i = 0; i < count; ++i) out.push_back(pool.load(node + kKeys + i));
      return;
    }
    for (std::size_t i = 0; i < count; ++i) self(self, pool.load(node + kChildren + i));
  };
  rec(rec, pool.load(root_ptr_));
  return out;
}

std::vector<LiveBlock> TmAbTree::collect_live_blocks() const {
  const PmemPool& pool = tm_.pool();
  std::vector<LiveBlock> live;
  live.push_back({root_ptr_, 1});
  auto rec = [&](auto&& self, gaddr_t node) -> void {
    const word_t m = pool.load(node + kMeta);
    if (meta_leaf(m)) {
      live.push_back({node, kLeafWords});
      return;
    }
    live.push_back({node, kInternalWords});
    for (std::size_t i = 0; i < meta_count(m); ++i) self(self, pool.load(node + kChildren + i));
  };
  rec(rec, pool.load(root_ptr_));
  return live;
}

}  // namespace nvhalt
