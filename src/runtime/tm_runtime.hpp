// TmRuntime: the shared runtime base of all five TMs.
//
// Owns the pieces the TMs used to hand-roll independently:
//   * a ThreadRegistry (dynamic registration, slot reuse, dense-tid
//     compatibility shim),
//   * the per-instance PathPolicy driving the unified retry loop
//     (runtime/retry_policy.hpp),
//   * the run(tid, body) entry point: registry bounds check / slot pinning,
//     then dispatch into the TM's run_registered.
//
// A TM derives from TmRuntime, keeps its per-thread contexts in a
// PerThread<Ctx> whose Ctx derives from TxThreadState, and implements
// run_registered by handing its attempt primitives to run_retry_loop
// through a small Env adapter.
#pragma once

#include "api/tm.hpp"
#include "runtime/per_thread.hpp"
#include "runtime/retry_policy.hpp"
#include "runtime/thread_registry.hpp"

namespace nvhalt::runtime {

class TmRuntime : public TransactionalMemory {
 public:
  ThreadRegistry& registry() final { return registry_; }

  /// The path/retry policy in force for this TM instance.
  const PathPolicy& path_policy() const { return policy_; }

  /// Replaces the policy. Must be called quiescently (no transactions in
  /// flight) — the loop reads the policy without synchronization.
  void set_path_policy(const PathPolicy& p) { policy_ = p; }

  using TransactionalMemory::run;

  bool run(int tid, TxBody body) final {
    registry_.ensure_registered(tid);
    return run_registered(tid, TxMode::kUpdate, body);
  }

  bool run(int tid, TxMode mode, TxBody body) final {
    registry_.ensure_registered(tid);
    return run_registered(tid, mode, body);
  }

 protected:
  TmRuntime(int registry_capacity, const PathPolicy& policy)
      : registry_(registry_capacity), policy_(policy) {}

  /// Runs one transaction on a registered slot (the unified retry loop with
  /// this TM's attempt primitives plugged in). `mode` is the caller's
  /// access-pattern hint; TMs without a read-only fast path ignore it.
  virtual bool run_registered(int tid, TxMode mode, TxBody body) = 0;

  /// Lazily loads a slot's persistent version number from the pool header
  /// (reset by recovery via TxThreadState::pver_loaded).
  static void ensure_pver(PmemPool& pool, int tid, TxThreadState& ts) {
    if (!ts.pver_loaded) {
      ts.pver = pool.load_pver(tid);
      ts.pver_loaded = true;
    }
  }

  ThreadRegistry registry_;
  PathPolicy policy_;
};

}  // namespace nvhalt::runtime
