// The single implementation of the transaction retry loop shared by all
// five TMs (NV-HALT, NV-HALT-CL, NV-HALT-SP, Trinity, SPHT).
//
// Brown's HTM-template line of work and Brown & Ravi's concurrency-cost
// analysis both show that fallback-path policy — how many hardware attempts,
// when to give up early, how to back off — is where hybrid TMs win or lose.
// Before this layer existed each TM hand-rolled its own copy of the loop and
// they had drifted (different backoff bounds, a fallback result mistaken for
// a commit). Now the loop lives here once, and each TM supplies only its
// attempt primitives through a small Env adapter; the knobs are a PathPolicy
// value configurable per TM instance (TmRuntime::set_path_policy).
//
// Loop shape (paper Fig. 1/5/7 attempt ordering, O(1)-abortability):
//   1. at most `budget` hardware attempts, where budget is htm_attempts or
//      the adaptive controller's current value;
//   2. optional fast-fallback on a capacity abort (the footprint will not
//      shrink on retry) and optional backoff between hardware attempts
//      (SPHT's historical behaviour);
//   3. then software attempts until commit / voluntary abort / the
//      max_sw_retries bound, with bounded randomized exponential backoff
//      between attempts.
#pragma once

#include <algorithm>

#include "core/tm_stats.hpp"
#include "htm/htm_types.hpp"
#include "telemetry/telemetry.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace nvhalt::runtime {

/// Bounded randomized exponential backoff. The spin count for attempt k is
/// drawn uniformly from [0, min(1 << min(k, shift_cap), max_spins)); from
/// yield_after attempts on the thread additionally yields, because this
/// container may expose a single CPU. One definition for every TM — the
/// seed TMs disagreed by an off-by-one in the draw bound (SPHT drew from
/// cap + 1, the others from cap); the unified policy draws from cap.
struct BackoffPolicy {
  int shift_cap = 10;
  int max_spins = 1024;
  int yield_after = 2;
};

/// Adaptive HTM attempt budget: when the recent hardware abort rate is high
/// (capacity/conflict pressure), attempts are mostly wasted work before the
/// inevitable fallback, so the budget shrinks; when attempts start
/// committing again it grows back toward the configured maximum.
struct AdaptivePolicy {
  bool enabled = false;
  /// Hardware attempts per adaptation window.
  int window = 64;
  /// Halve the budget when the window abort rate reaches this...
  double high_abort_rate = 0.75;
  /// ...and grow it by one when the rate falls to this.
  double low_abort_rate = 0.25;
  /// Floor for the shrunken budget (stays >= 1 so the fast path is probed).
  int min_attempts = 1;
};

/// Read-only fast-path routing policy (NV-HALT; see docs/PROTOCOLS.md
/// "Read-only fast path"). A transaction hinted TxMode::kReadOnly — or
/// dynamically detected as read-only — first runs `sw_attempts` snapshot
/// attempts (lock-free unlocked reads validated against commit_seq), then
/// `hw_attempts` invisible-reader hardware attempts (deferred lock-word
/// validation), then demotes to the general retry loop. The windowed
/// read-only abort rate suspends routing during validation storms.
struct RoPolicy {
  bool enabled = false;
  /// Snapshot (software) read-only attempts before trying hardware.
  int sw_attempts = 4;
  /// Invisible-reader hardware attempts before demoting to the full loop.
  int hw_attempts = 2;
  /// Route an *unhinted* transaction to the read-only path once this many
  /// consecutive transactions by the thread committed with an empty write
  /// set; 0 disables dynamic detection (hinted routing still applies).
  int dynamic_streak = 8;
  /// Read-only attempts per storm-detection window.
  int window = 64;
  /// Suspend read-only routing when the window abort rate reaches this.
  double storm_abort_rate = 0.5;
  /// Eligible transactions routed to the general path per suspension.
  int cooloff = 64;
};

/// The per-TM-instance path/retry policy (the loop's knobs).
struct PathPolicy {
  /// C in "C-abortable": hardware attempts before falling back; 0 means
  /// software-only (Trinity, or NV-HALT with the fast path disabled).
  int htm_attempts = 0;
  /// Fall back immediately on a capacity abort.
  bool fallback_on_capacity = false;
  /// Back off between failed hardware attempts (SPHT does; NV-HALT's fixed
  /// attempt burst does not).
  bool backoff_between_hw = false;
  /// Bound on software-path retries; < 0 retries until commit (progressive).
  int max_sw_retries = -1;
  BackoffPolicy backoff;
  AdaptivePolicy adaptive;
  RoPolicy ro;
};

/// Outcome of one hardware or software attempt.
enum class AttemptStatus { kCommitted, kAborted, kUserAborted };

/// Per-thread state of the adaptive budget controller. Plain data, no
/// locking: each instance belongs to one registry slot.
class AdaptiveBudget {
 public:
  /// Current hardware attempt budget under `p` (== p.htm_attempts until the
  /// controller has adapted, or when adaptation is disabled).
  int budget(const PathPolicy& p) const {
    if (!p.adaptive.enabled || budget_ < 0) return p.htm_attempts;
    return budget_;
  }

  /// Records one hardware attempt outcome and adapts at window boundaries.
  void record(const PathPolicy& p, bool aborted) {
    if (!p.adaptive.enabled) return;
    if (budget_ < 0) budget_ = p.htm_attempts;
    ++window_attempts_;
    if (aborted) ++window_aborts_;
    if (window_attempts_ < p.adaptive.window) return;
    const double rate =
        static_cast<double>(window_aborts_) / static_cast<double>(window_attempts_);
    if (rate >= p.adaptive.high_abort_rate)
      budget_ = std::max(p.adaptive.min_attempts, budget_ / 2);
    else if (rate <= p.adaptive.low_abort_rate)
      budget_ = std::min(p.htm_attempts, budget_ + 1);
    window_attempts_ = 0;
    window_aborts_ = 0;
  }

  void reset() { *this = AdaptiveBudget{}; }

  // ---- Read-only routing signal (RoPolicy) -----------------------------
  // A second, independent window over read-only fast-path attempts: when a
  // validation storm pushes the windowed RO abort rate past the policy
  // threshold, routing is suspended for `cooloff` eligible transactions,
  // which then take the general path (whose commit-time locking makes
  // progress where optimistic snapshots keep failing).

  /// Records one read-only fast-path attempt outcome.
  void record_ro(const RoPolicy& rp, bool aborted) {
    ++ro_window_attempts_;
    if (aborted) ++ro_window_aborts_;
    if (ro_window_attempts_ < rp.window) return;
    const double rate =
        static_cast<double>(ro_window_aborts_) / static_cast<double>(ro_window_attempts_);
    if (rate >= rp.storm_abort_rate) ro_suspended_ = rp.cooloff;
    ro_window_attempts_ = 0;
    ro_window_aborts_ = 0;
  }

  /// Consults (and advances) the suspension state for one eligible
  /// transaction: false while cooling off after a storm.
  bool admit_ro(const RoPolicy& rp) {
    if (!rp.enabled) return false;
    if (ro_suspended_ > 0) {
      --ro_suspended_;
      return false;
    }
    return true;
  }

  // Readable controller state (benches and the metrics registry; see
  // telemetry::AdaptiveSnapshot). current_budget is budget() under a name
  // that reads as an observation rather than a decision.
  int current_budget(const PathPolicy& p) const { return budget(p); }
  std::uint64_t window_attempts() const { return static_cast<std::uint64_t>(window_attempts_); }
  std::uint64_t window_aborts() const { return static_cast<std::uint64_t>(window_aborts_); }
  /// Abort rate of the in-progress window (0 when the window is empty).
  double window_abort_rate() const {
    return window_attempts_ == 0
               ? 0.0
               : static_cast<double>(window_aborts_) / static_cast<double>(window_attempts_);
  }
  std::uint64_t ro_window_attempts() const {
    return static_cast<std::uint64_t>(ro_window_attempts_);
  }
  std::uint64_t ro_window_aborts() const { return static_cast<std::uint64_t>(ro_window_aborts_); }
  double ro_window_abort_rate() const {
    return ro_window_attempts_ == 0
               ? 0.0
               : static_cast<double>(ro_window_aborts_) / static_cast<double>(ro_window_attempts_);
  }
  /// Eligible transactions still to be routed normally after a storm.
  int ro_suspended() const { return ro_suspended_; }

 private:
  int budget_ = -1;  // -1: not yet adapted, use the configured maximum
  int window_attempts_ = 0;
  int window_aborts_ = 0;
  int ro_window_attempts_ = 0;
  int ro_window_aborts_ = 0;
  int ro_suspended_ = 0;
};

/// The one backoff implementation (see BackoffPolicy).
void backoff(const BackoffPolicy& b, Xoshiro256& rng, int attempt);

/// Runs one transaction through the unified retry loop. `State` is a
/// TxThreadState (taken as a template parameter so this header need not
/// include per_thread.hpp, which includes this one); the loop uses its
/// stats, rng, adaptive controller, telemetry block and last_hw_abort.
/// `Env` supplies the TM-specific primitives:
///   AttemptStatus attempt_hw();     // one hardware attempt; on abort the
///                                   // Env must have called
///                                   // State::record_hw_abort(tid, cause)
///   AttemptStatus attempt_sw();     // one software attempt
///   void before_hw_attempt();       // e.g. SPHT waits for the fallback lock
///   void crash_point();             // crash-injection hook (may throw)
/// Capacity fast-fallback reads State::last_hw_abort, which
/// record_hw_abort keeps current — the old Env::hw_abort_was_capacity()
/// adapter is gone.
///
/// Telemetry: lifecycle events (tx begin, hw attempt, fallback, sw attempt,
/// commits/aborts) are emitted at NVHALT_TELEMETRY >= 1, and per-path
/// commit latency is recorded into tx_latency_hw/sw at the same level; at
/// level 0 all of it compiles out (no timestamps are ever taken).
/// Returns true on commit, false on voluntary abort or retry exhaustion.
template <typename State, typename Env>
bool run_retry_loop(const PathPolicy& pol, int tid, State& ts, Env&& env) {
  namespace tel = nvhalt::telemetry;
  env.crash_point();
  tel::trace1(tel::EventKind::kTxBegin, tid);
  ts.fr(tid, tel::EventKind::kTxBegin);
  [[maybe_unused]] std::uint64_t t0 = 0;
  if constexpr (tel::kLevel >= 1) t0 = tel::now_ticks();

  const int budget = ts.adaptive.budget(pol);
  int hw_attempts_made = 0;
  for (int i = 0; i < budget; ++i) {
    env.before_hw_attempt();
    tel::trace1(tel::EventKind::kHwAttempt, tid, static_cast<std::uint64_t>(i));
    ++hw_attempts_made;
    switch (env.attempt_hw()) {
      case AttemptStatus::kCommitted:
        ts.adaptive.record(pol, /*aborted=*/false);
        tel::trace1(tel::EventKind::kHwCommit, tid);
        ts.fr(tid, tel::EventKind::kHwCommit);
        if constexpr (tel::kLevel >= 1) ts.tel.tx_latency_hw.record(tel::now_ticks() - t0);
        return true;
      case AttemptStatus::kUserAborted:
        ts.adaptive.record(pol, /*aborted=*/false);
        tel::trace1(tel::EventKind::kUserAbort, tid);
        ts.fr(tid, tel::EventKind::kUserAbort);
        return false;
      case AttemptStatus::kAborted:
        break;
    }
    ts.adaptive.record(pol, /*aborted=*/true);
    // A capacity abort recurs on every retry of the same footprint;
    // optionally skip straight to the software path.
    if (pol.fallback_on_capacity && ts.last_hw_abort == htm::AbortCause::kCapacity) break;
    if (pol.backoff_between_hw) backoff(pol.backoff, ts.rng, i + 1);
  }
  if (budget > 0) {
    ts.stats.fallbacks++;
    tel::trace1(tel::EventKind::kFallback, tid, static_cast<std::uint64_t>(hw_attempts_made));
  }

  // Software path until commit or voluntary abort (progressive), bounded by
  // max_sw_retries when configured.
  int retries = 0;
  for (;;) {
    tel::trace1(tel::EventKind::kSwAttempt, tid, static_cast<std::uint64_t>(retries));
    switch (env.attempt_sw()) {
      case AttemptStatus::kCommitted:
        tel::trace1(tel::EventKind::kSwCommit, tid, static_cast<std::uint64_t>(retries));
        ts.fr(tid, tel::EventKind::kSwCommit, 0xFF,
              static_cast<std::uint16_t>(std::min(retries, 0xFFFF)));
        if constexpr (tel::kLevel >= 1) ts.tel.tx_latency_sw.record(tel::now_ticks() - t0);
        return true;
      case AttemptStatus::kUserAborted:
        tel::trace1(tel::EventKind::kUserAbort, tid);
        ts.fr(tid, tel::EventKind::kUserAbort);
        return false;
      case AttemptStatus::kAborted:
        tel::trace1(tel::EventKind::kSwAbort, tid);
        ts.fr(tid, tel::EventKind::kSwAbort);
        break;
    }
    ++retries;
    if (pol.max_sw_retries >= 0 && retries > pol.max_sw_retries) return false;
    backoff(pol.backoff, ts.rng, retries);
    env.crash_point();
  }
}

}  // namespace nvhalt::runtime
