// Dynamic thread registry: the runtime-layer replacement for caller-managed
// dense thread ids.
//
// Every TM owns one ThreadRegistry (via TmRuntime). Worker threads either
//   * register dynamically — ThreadHandle h = tm.register_thread(); — and
//     run transactions through the handle (slots are reclaimed on handle
//     destruction and reused by later registrants, so arbitrarily many
//     threads can come and go as long as no more than capacity() are
//     registered at once), or
//   * keep using the historical dense-tid API, run(tid, body), which pins
//     the slot `tid` on first use and never releases it (the compatibility
//     shim: a caller-managed id is a registration the caller promises to
//     manage forever).
//
// Slots are handed out lowest-free-first so dense iteration up to
// high_water() covers every slot that ever ran a transaction — this is the
// bound stats aggregation and per-thread resets use.
//
// Registration is deliberately mutex-based: it happens once per thread
// lifetime (not per transaction), and the mutex gives the release→reacquire
// happens-before edge that makes per-slot context reuse race-free. Only the
// is-registered fast-path check on run(tid, ...) is lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "util/common.hpp"

namespace nvhalt::runtime {

class ThreadRegistry {
 public:
  /// Capacity is clamped to [1, kMaxThreads]: persistent per-thread
  /// structures (pVerNum slots, conflict-table reader masks) have a static
  /// kMaxThreads layout, so a slot index must stay below it.
  explicit ThreadRegistry(int capacity = kMaxThreads);

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  /// Claims the lowest free slot. Throws TmLogicError when all capacity()
  /// slots are registered.
  int acquire();

  /// Returns a slot claimed by acquire(). Throws on a slot that is free or
  /// pinned (pinned slots are caller-managed and never released).
  void release(int slot);

  /// Compatibility shim for the dense-tid API: marks `slot` as permanently
  /// registered. Idempotent and cheap when already registered (one acquire
  /// load). Throws TmLogicError when slot is outside [0, capacity()).
  void ensure_registered(int slot);

  bool is_registered(int slot) const {
    return slot >= 0 && slot < capacity_ &&
           slots_[slot].state.load(std::memory_order_acquire) != kFree;
  }

  int capacity() const { return capacity_; }

  /// Currently registered slots (handles + pinned).
  int active() const { return active_.load(std::memory_order_acquire); }

  /// One past the highest slot ever registered: the dense bound for stats
  /// aggregation and per-thread iteration.
  int high_water() const { return high_water_.load(std::memory_order_acquire); }

  /// Lifetime acquire/pin count — exceeds capacity() once slots have been
  /// reclaimed and reused (what the churn tests assert).
  std::uint64_t total_registrations() const {
    return total_registrations_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint8_t kFree = 0;
  static constexpr std::uint8_t kHandle = 1;  // released by ThreadHandle
  static constexpr std::uint8_t kPinned = 2;  // dense-tid shim, never released

  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint8_t> state{kFree};
  };

  void note_registered_locked(int slot);

  const int capacity_;
  std::unique_ptr<Slot[]> slots_;
  /// Serializes registration state changes; see header comment.
  mutable std::mutex mu_;
  std::atomic<int> active_{0};
  std::atomic<int> high_water_{0};
  std::atomic<std::uint64_t> total_registrations_{0};
};

/// RAII registration: claims a slot on construction, releases it on
/// destruction. Move-only; a moved-from handle is empty.
class ThreadHandle {
 public:
  ThreadHandle() = default;
  explicit ThreadHandle(ThreadRegistry& reg) : reg_(&reg), tid_(reg.acquire()) {}
  ~ThreadHandle() { reset(); }

  ThreadHandle(const ThreadHandle&) = delete;
  ThreadHandle& operator=(const ThreadHandle&) = delete;
  ThreadHandle(ThreadHandle&& o) noexcept : reg_(o.reg_), tid_(o.tid_) {
    o.reg_ = nullptr;
    o.tid_ = -1;
  }
  ThreadHandle& operator=(ThreadHandle&& o) noexcept {
    if (this != &o) {
      reset();
      reg_ = o.reg_;
      tid_ = o.tid_;
      o.reg_ = nullptr;
      o.tid_ = -1;
    }
    return *this;
  }

  /// The dense slot id this handle holds. Throws on an empty handle.
  int tid() const {
    if (reg_ == nullptr) throw TmLogicError("tid() on an empty ThreadHandle");
    return tid_;
  }

  bool valid() const { return reg_ != nullptr; }
  explicit operator bool() const { return valid(); }

  /// Releases the slot early (idempotent).
  void reset() {
    if (reg_ != nullptr) {
      reg_->release(tid_);
      reg_ = nullptr;
      tid_ = -1;
    }
  }

 private:
  ThreadRegistry* reg_ = nullptr;
  int tid_ = -1;
};

}  // namespace nvhalt::runtime
