#include "runtime/thread_registry.hpp"

#include <algorithm>
#include <string>

namespace nvhalt::runtime {

ThreadRegistry::ThreadRegistry(int capacity)
    : capacity_(std::clamp(capacity, 1, kMaxThreads)),
      slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(capacity_))) {}

void ThreadRegistry::note_registered_locked(int slot) {
  active_.fetch_add(1, std::memory_order_acq_rel);
  total_registrations_.fetch_add(1, std::memory_order_acq_rel);
  int hw = high_water_.load(std::memory_order_relaxed);
  while (slot + 1 > hw &&
         !high_water_.compare_exchange_weak(hw, slot + 1, std::memory_order_acq_rel)) {
  }
}

int ThreadRegistry::acquire() {
  std::lock_guard<std::mutex> lk(mu_);
  for (int s = 0; s < capacity_; ++s) {
    if (slots_[s].state.load(std::memory_order_relaxed) == kFree) {
      slots_[s].state.store(kHandle, std::memory_order_release);
      note_registered_locked(s);
      return s;
    }
  }
  throw TmLogicError("ThreadRegistry: all " + std::to_string(capacity_) +
                     " slots are registered");
}

void ThreadRegistry::release(int slot) {
  std::lock_guard<std::mutex> lk(mu_);
  if (slot < 0 || slot >= capacity_)
    throw TmLogicError("ThreadRegistry::release: slot out of range");
  const std::uint8_t st = slots_[slot].state.load(std::memory_order_relaxed);
  if (st == kFree) throw TmLogicError("ThreadRegistry::release: slot is not registered");
  if (st == kPinned)
    throw TmLogicError("ThreadRegistry::release: slot is pinned by the dense-tid API");
  slots_[slot].state.store(kFree, std::memory_order_release);
  active_.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadRegistry::ensure_registered(int slot) {
  if (slot < 0 || slot >= capacity_)
    throw TmLogicError("thread id out of range [0, " + std::to_string(capacity_) + ")");
  if (slots_[slot].state.load(std::memory_order_acquire) != kFree) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (slots_[slot].state.load(std::memory_order_relaxed) != kFree) return;
  slots_[slot].state.store(kPinned, std::memory_order_release);
  note_registered_locked(slot);
}

}  // namespace nvhalt::runtime
