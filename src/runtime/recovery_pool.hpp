// Parallel recovery worker pool (ROADMAP open item 4).
//
// Recovery work over the pool decomposes into disjoint contiguous
// partitions (record ranges, dirty-line lists, log write sets, allocator
// segments), each replayed by a dedicated worker. Workers take tids from
// the TOP of the pool's thread range (kMaxThreads - 1 - w) — the same
// convention SPHT's replay workers established in spht_replay.cpp — so
// their flush queues can never collide with live threads' queues, and
// each worker fences on its own tid.
//
// The join below is the merge/quiesce barrier: run_partitioned returns
// only once every partition is fully applied (or unwound), so callers may
// declare the pool open immediately afterwards. A SimulatedPowerFailure
// in any worker is latched and rethrown on the calling thread after the
// barrier, preserving the crash-unwinding contract of serial recovery.
//
// Determinism: partitions are contiguous and disjoint and every write a
// worker performs depends only on its partition's content, so the final
// (volatile + staged + durable) image is byte-identical for any worker
// count — pinned by tests/recovery_parallel_test.cpp via
// PmemPool::image_hash().
#pragma once

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "pmem/crash_sim.hpp"
#include "util/common.hpp"

namespace nvhalt::runtime {

/// Runs body(worker_tid, lo, hi) over `n` items split into at most
/// `workers` contiguous partitions. With one worker (or one item) the body
/// runs inline on `serial_tid` — the exact serial recovery path. Returns
/// the worker count actually used.
template <typename Body>
int run_recovery_partitions(std::size_t n, int workers, int serial_tid, Body&& body) {
  if (n == 0) return 0;
  // serial_tid plus the top-of-range worker tids must stay distinct.
  workers = std::min<int>({workers, kMaxThreads - 1, static_cast<int>(std::min<std::size_t>(
                                                         n, std::size_t{kMaxThreads}))});
  if (workers <= 1) {
    body(serial_tid, std::size_t{0}, n);
    return 1;
  }
  const std::size_t per =
      (n + static_cast<std::size_t>(workers) - 1) / static_cast<std::size_t>(workers);
  std::atomic<bool> power_failed{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        const std::size_t lo = static_cast<std::size_t>(w) * per;
        const std::size_t hi = std::min(n, lo + per);
        if (lo < hi) body(kMaxThreads - 1 - w, lo, hi);
      } catch (const SimulatedPowerFailure&) {
        // Recovery work is idempotent (reverts and redo application); a
        // power failure mid-recovery means recovery simply runs again.
        power_failed.store(true, std::memory_order_release);
      }
    });
  }
  for (auto& t : threads) t.join();  // merge/quiesce barrier
  if (power_failed.load(std::memory_order_acquire)) throw SimulatedPowerFailure{};
  return workers;
}

}  // namespace nvhalt::runtime
