// Unified per-thread state for the TM runtime layer.
//
// TxThreadState is the slice of per-thread context every TM needs — outcome
// stats, the backoff RNG, the adaptive-budget controller, and the cached
// persistent version number. Each TM's ThreadCtx derives from it and adds
// its path-specific scratch (read/write sets, redo/undo logs, ...).
//
// PerThread<Ctx> replaces the hand-rolled `make_unique<ThreadCtx[]>` blocks:
// a fixed-size array of cache-line-aligned per-slot contexts indexed by
// registry slot id, with the stats aggregation/reset helpers all five TMs
// previously duplicated (and in one case sized inconsistently).
#pragma once

#include <memory>

#include "core/tm_stats.hpp"
#include "htm/htm_types.hpp"
#include "runtime/retry_policy.hpp"
#include "util/rng.hpp"

namespace nvhalt::runtime {

/// Per-registry-slot runtime state shared by every TM's thread context.
struct TxThreadState {
  TmThreadStats stats;
  Xoshiro256 rng;
  AdaptiveBudget adaptive;

  /// Cached persistent version number (loaded lazily from the pool header
  /// the first time a slot runs a transaction, invalidated by recovery).
  std::uint64_t pver = 0;
  bool pver_loaded = false;

  /// Cause of the most recent hardware-path abort (drives the
  /// fallback-on-capacity policy). Unused by software-only TMs.
  htm::AbortCause last_hw_abort = htm::AbortCause::kConflict;
};

/// Fixed-size array of cache-line-aligned per-slot contexts, indexed by the
/// dense slot ids a ThreadRegistry hands out.
template <typename Ctx>
class PerThread {
 public:
  explicit PerThread(int n) : n_(n), slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(n))) {}

  Ctx& operator[](int i) { return slots_[i].ctx; }
  const Ctx& operator[](int i) const { return slots_[i].ctx; }

  int size() const { return n_; }

  template <typename F>
  void for_each(F&& f) {
    for (int i = 0; i < n_; ++i) f(slots_[i].ctx);
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    Ctx ctx;
  };

  int n_;
  std::unique_ptr<Slot[]> slots_;
};

/// Aggregates every slot's TmThreadStats (Ctx must derive from
/// TxThreadState or expose a `stats` member).
template <typename Ctx>
TmStats aggregate_thread_stats(const PerThread<Ctx>& per_thread) {
  TmStats agg;
  for (int i = 0; i < per_thread.size(); ++i) agg.add(per_thread[i].stats);
  return agg;
}

template <typename Ctx>
void reset_thread_stats(PerThread<Ctx>& per_thread) {
  per_thread.for_each([](Ctx& c) { c.stats.reset(); });
}

}  // namespace nvhalt::runtime
