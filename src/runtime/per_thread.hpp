// Unified per-thread state for the TM runtime layer.
//
// TxThreadState is the slice of per-thread context every TM needs — outcome
// stats, the backoff RNG, the adaptive-budget controller, and the cached
// persistent version number. Each TM's ThreadCtx derives from it and adds
// its path-specific scratch (read/write sets, redo/undo logs, ...).
//
// PerThread<Ctx> replaces the hand-rolled `make_unique<ThreadCtx[]>` blocks:
// a fixed-size array of cache-line-aligned per-slot contexts indexed by
// registry slot id, with the stats aggregation/reset helpers all five TMs
// previously duplicated (and in one case sized inconsistently).
#pragma once

#include <memory>

#include "core/tm_stats.hpp"
#include "htm/htm_types.hpp"
#include "runtime/retry_policy.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tx_telemetry.hpp"
#include "util/rng.hpp"

namespace nvhalt::runtime {

/// Per-registry-slot runtime state shared by every TM's thread context.
struct TxThreadState {
  TmThreadStats stats;
  Xoshiro256 rng;
  AdaptiveBudget adaptive;

  /// Telemetry counters (abort taxonomy + latency/size histograms). Live at
  /// every NVHALT_TELEMETRY level; see telemetry/tx_telemetry.hpp.
  telemetry::TxTelemetry tel;

  /// Cached persistent version number (loaded lazily from the pool header
  /// the first time a slot runs a transaction, invalidated by recovery).
  std::uint64_t pver = 0;
  bool pver_loaded = false;

  /// Cause of the most recent hardware-path abort (drives the
  /// fallback-on-capacity policy). Unused by software-only TMs.
  htm::AbortCause last_hw_abort = htm::AbortCause::kConflict;

  /// ContentionTable::activity() reading at this thread's previous commit.
  /// Movement between commits means other writers are failing on locks
  /// right now — the hint that makes commit fences linger to combine
  /// (FenceGate::kPreferCombine). Cheap: one relaxed load per commit.
  std::uint64_t last_contention_activity = 0;

  /// Owning TM's persistent flight recorder, or null when disabled (the
  /// config default). Set once at TM construction for every slot.
  telemetry::FlightRecorder* recorder = nullptr;

  /// Flight-recorder hook: appends a persistent lifecycle record when the
  /// TM has a recorder and the build is at telemetry level >= 1; otherwise
  /// free. The read-only fast path never calls this — it commits with zero
  /// journal records (structurally asserted) and the recorder keeps it so.
  void fr(int tid, telemetry::EventKind kind, std::uint8_t cause = 0xFF,
          std::uint16_t arg = 0) {
    if constexpr (telemetry::kLevel >= 1) {
      if (recorder != nullptr) recorder->record(tid, kind, cause, arg);
    } else {
      (void)tid; (void)kind; (void)cause; (void)arg;
    }
  }

  /// The one place a hardware abort is accounted: bumps the coarse counter,
  /// the per-cause taxonomy, and the retry policy's last-cause in lockstep
  /// so they can never disagree (last_hw_abort alone used to lose history).
  /// `code` is the xabort code for explicit aborts (trace payload only).
  void record_hw_abort(int tid, htm::AbortCause c, std::uint8_t code = 0) {
    stats.hw_aborts++;
    last_hw_abort = c;
    tel.taxonomy.hw_by_cause[static_cast<std::size_t>(c)]++;
    telemetry::trace1(telemetry::EventKind::kHwAbort, tid, code,
                      static_cast<std::uint8_t>(c));
    fr(tid, telemetry::EventKind::kHwAbort, static_cast<std::uint8_t>(c), code);
  }

  /// The one place a read-only fast-path abort is accounted, mirroring
  /// record_hw_abort: sum(ro_by_cause) == stats.ro_aborts by construction.
  void record_ro_abort(int tid, telemetry::RoAbortCause c) {
    stats.ro_aborts++;
    tel.taxonomy.ro_by_cause[static_cast<std::size_t>(c)]++;
    telemetry::trace1(telemetry::EventKind::kRoAbort, tid, 0,
                      static_cast<std::uint8_t>(c));
  }
};

/// Fixed-size array of cache-line-aligned per-slot contexts, indexed by the
/// dense slot ids a ThreadRegistry hands out.
template <typename Ctx>
class PerThread {
 public:
  explicit PerThread(int n) : n_(n), slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(n))) {}

  Ctx& operator[](int i) { return slots_[i].ctx; }
  const Ctx& operator[](int i) const { return slots_[i].ctx; }

  int size() const { return n_; }

  template <typename F>
  void for_each(F&& f) {
    for (int i = 0; i < n_; ++i) f(slots_[i].ctx);
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    Ctx ctx;
  };

  int n_;
  std::unique_ptr<Slot[]> slots_;
};

/// Aggregates every slot's TmThreadStats (Ctx must derive from
/// TxThreadState or expose a `stats` member).
template <typename Ctx>
TmStats aggregate_thread_stats(const PerThread<Ctx>& per_thread) {
  TmStats agg;
  for (int i = 0; i < per_thread.size(); ++i) agg.add(per_thread[i].stats);
  return agg;
}

template <typename Ctx>
void reset_thread_stats(PerThread<Ctx>& per_thread) {
  per_thread.for_each([](Ctx& c) {
    c.stats.reset();
    c.tel.reset();
  });
}

/// Aggregates every slot's telemetry block into a per-TM view. The
/// taxonomy's sw/user tallies are mirrored from TmThreadStats here (they
/// are not tracked twice per-thread), so they agree with stats() by
/// construction; hw_by_cause comes from record_hw_abort, which bumps
/// stats.hw_aborts at the same site — sum(hw_by_cause) == hw_aborts
/// exactly. The adaptive snapshot reports the minimum-budget thread's
/// window: the view that explains fallback pressure.
template <typename Ctx>
telemetry::TmTelemetry aggregate_thread_telemetry(const PerThread<Ctx>& per_thread,
                                                  const PathPolicy& pol) {
  telemetry::TmTelemetry agg;
  agg.adaptive.enabled = pol.adaptive.enabled;
  agg.adaptive.current_budget = pol.htm_attempts;
  agg.adaptive.ro_enabled = pol.ro.enabled;
  for (int i = 0; i < per_thread.size(); ++i) {
    const Ctx& c = per_thread[i];
    agg.tx.add(c.tel);
    agg.tx.taxonomy.sw_aborts += c.stats.sw_aborts;
    agg.tx.taxonomy.user_aborts += c.stats.user_aborts;
    const int b = c.adaptive.current_budget(pol);
    if (i == 0 || b < agg.adaptive.current_budget) {
      agg.adaptive.current_budget = b;
      agg.adaptive.window_attempts = c.adaptive.window_attempts();
      agg.adaptive.window_aborts = c.adaptive.window_aborts();
      agg.adaptive.window_abort_rate = c.adaptive.window_abort_rate();
    }
    // The read-only routing view is worst-case too: report the most
    // suspended thread's window (ties broken by abort rate) — the thread
    // explaining why eligible transactions are not taking the cheap path.
    const bool worse = c.adaptive.ro_suspended() > agg.adaptive.ro_suspended ||
                       (c.adaptive.ro_suspended() == agg.adaptive.ro_suspended &&
                        c.adaptive.ro_window_abort_rate() > agg.adaptive.ro_window_abort_rate);
    if (i == 0 || worse) {
      agg.adaptive.ro_window_attempts = c.adaptive.ro_window_attempts();
      agg.adaptive.ro_window_aborts = c.adaptive.ro_window_aborts();
      agg.adaptive.ro_window_abort_rate = c.adaptive.ro_window_abort_rate();
      agg.adaptive.ro_suspended = c.adaptive.ro_suspended();
    }
  }
  return agg;
}

}  // namespace nvhalt::runtime
