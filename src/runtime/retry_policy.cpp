#include "runtime/retry_policy.hpp"

#include <thread>

namespace nvhalt::runtime {

void backoff(const BackoffPolicy& b, Xoshiro256& rng, int attempt) {
  const int cap =
      std::min(attempt < b.shift_cap ? (1 << attempt) : (1 << b.shift_cap), b.max_spins);
  const int spins = static_cast<int>(rng.next_bounded(static_cast<std::uint64_t>(cap)));
  for (int i = 0; i < spins; ++i) cpu_relax();
  if (attempt > b.yield_after) std::this_thread::yield();
}

}  // namespace nvhalt::runtime
