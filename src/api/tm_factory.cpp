#include "api/tm_factory.hpp"

namespace nvhalt {

const char* tm_kind_name(TmKind k) {
  switch (k) {
    case TmKind::kNvHalt: return "NV-HALT";
    case TmKind::kNvHaltCl: return "NV-HALT-CL";
    case TmKind::kNvHaltSp: return "NV-HALT-SP";
    case TmKind::kTrinity: return "Trinity";
    case TmKind::kSpht: return "SPHT";
  }
  return "?";
}

TmKind tm_kind_from_string(const std::string& s) {
  if (s == "NV-HALT" || s == "nvhalt") return TmKind::kNvHalt;
  if (s == "NV-HALT-CL" || s == "nvhalt-cl") return TmKind::kNvHaltCl;
  if (s == "NV-HALT-SP" || s == "nvhalt-sp") return TmKind::kNvHaltSp;
  if (s == "Trinity" || s == "trinity") return TmKind::kTrinity;
  if (s == "SPHT" || s == "spht") return TmKind::kSpht;
  throw TmLogicError("unknown TM kind: " + s);
}

TmRunner::TmRunner(const RunnerConfig& cfg) : cfg_(cfg) {
  pool_ = std::make_unique<PmemPool>(cfg_.pmem);
  htm_ = std::make_unique<htm::SimHtm>(cfg_.htm);
  alloc_ = std::make_unique<TxAllocator>(*pool_);

  switch (cfg_.kind) {
    case TmKind::kNvHalt:
    case TmKind::kNvHaltCl:
    case TmKind::kNvHaltSp: {
      NvHaltConfig nc = cfg_.nvhalt;
      if (cfg_.kind == TmKind::kNvHaltCl) {
        nc.lock_mode = LockMode::kColocated;
        nc.variant = Variant::kWeak;
      } else if (cfg_.kind == TmKind::kNvHaltSp) {
        nc.lock_mode = LockMode::kTable;
        nc.variant = Variant::kStrong;
      } else {
        nc.lock_mode = LockMode::kTable;
        nc.variant = Variant::kWeak;
      }
      tm_ = std::make_unique<NvHaltTm>(nc, *pool_, *htm_, *alloc_);
      break;
    }
    case TmKind::kTrinity:
      tm_ = std::make_unique<TrinityTm>(cfg_.trinity, *pool_, *alloc_);
      break;
    case TmKind::kSpht:
      tm_ = std::make_unique<SphtTm>(cfg_.spht, *pool_, *htm_, *alloc_);
      break;
  }
}

TmRunner::~TmRunner() = default;

}  // namespace nvhalt
