#include "api/root_registry.hpp"

namespace nvhalt {

std::uint64_t RootRegistry::hash_name(const std::string& name) {
  // FNV-1a, with 0 reserved as the empty-slot marker.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h == 0 ? 1 : h;
}

void RootRegistry::set(int tid, const std::string& name, std::uint64_t value) {
  const std::uint64_t h = hash_name(name);
  int free_entry = -1;
  for (int e = 0; e < kCapacity; ++e) {
    const std::uint64_t cur = pool_.load_root(name_slot(e));
    if (cur == h) {
      pool_.store_root_persist(tid, value_slot(e), value);
      return;
    }
    if (cur == 0 && free_entry < 0) free_entry = e;
  }
  if (free_entry < 0) throw TmLogicError("root registry full");
  // Value first, then name: a crash in between leaves an unnamed (hence
  // invisible) value, never a name pointing at garbage.
  pool_.store_root_persist(tid, value_slot(free_entry), value);
  pool_.store_root_persist(tid, name_slot(free_entry), h);
}

std::optional<std::uint64_t> RootRegistry::get(const std::string& name) const {
  const std::uint64_t h = hash_name(name);
  for (int e = 0; e < kCapacity; ++e) {
    if (pool_.load_root(name_slot(e)) == h) return pool_.load_root(value_slot(e));
  }
  return std::nullopt;
}

bool RootRegistry::erase(int tid, const std::string& name) {
  const std::uint64_t h = hash_name(name);
  for (int e = 0; e < kCapacity; ++e) {
    if (pool_.load_root(name_slot(e)) == h) {
      pool_.store_root_persist(tid, name_slot(e), 0);
      return true;
    }
  }
  return false;
}

int RootRegistry::size() const {
  int n = 0;
  for (int e = 0; e < kCapacity; ++e) n += pool_.load_root(name_slot(e)) != 0;
  return n;
}

}  // namespace nvhalt
