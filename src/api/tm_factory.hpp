// Bundles a persistent pool, HTM simulator, allocator and one of the five
// evaluated TMs behind a single owner, so tests/benches/examples construct
// a complete system in one line.
#pragma once

#include <memory>
#include <string>

#include "api/tm.hpp"
#include "baselines/spht/spht_tm.hpp"
#include "baselines/trinity/trinity_tm.hpp"
#include "core/nvhalt_tm.hpp"

namespace nvhalt {

/// The five systems of the paper's evaluation (Fig. 8/9).
enum class TmKind { kNvHalt, kNvHaltCl, kNvHaltSp, kTrinity, kSpht };

const char* tm_kind_name(TmKind k);
TmKind tm_kind_from_string(const std::string& s);

struct RunnerConfig {
  TmKind kind = TmKind::kNvHalt;
  PmemConfig pmem;
  htm::HtmConfig htm;
  NvHaltConfig nvhalt;      // used by the three NV-HALT kinds
  TrinityConfig trinity;    // used by kTrinity
  SphtConfig spht;          // used by kSpht
};

class TmRunner {
 public:
  explicit TmRunner(const RunnerConfig& cfg);
  ~TmRunner();

  TmRunner(const TmRunner&) = delete;
  TmRunner& operator=(const TmRunner&) = delete;

  TransactionalMemory& tm() { return *tm_; }
  PmemPool& pool() { return *pool_; }
  htm::SimHtm& htm() { return *htm_; }
  TxAllocator& alloc() { return *alloc_; }
  const RunnerConfig& config() const { return cfg_; }

 private:
  RunnerConfig cfg_;
  std::unique_ptr<PmemPool> pool_;
  std::unique_ptr<htm::SimHtm> htm_;
  std::unique_ptr<TxAllocator> alloc_;
  std::unique_ptr<TransactionalMemory> tm_;
};

}  // namespace nvhalt
