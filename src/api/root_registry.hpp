// Named persistent roots.
//
// Structures accept raw root-slot indices; applications that manage many
// persistent objects want names instead. The registry maps short names to
// 64-bit values (usually gaddrs or slot indices) in the reserved upper
// root-slot range, durably: entries survive crashes and are found again by
// name after recovery.
//
// Crash consistency: an entry is (name-hash slot, value slot); the value
// is persisted before the name, so a name, once visible, always refers to
// a fully-persisted value.
#pragma once

#include <optional>
#include <string>

#include "pmem/pmem_pool.hpp"

namespace nvhalt {

class RootRegistry {
 public:
  explicit RootRegistry(PmemPool& pool) : pool_(pool) {}

  static constexpr int kCapacity = (PmemPool::kRootSlots - PmemPool::kDirectRootSlots) / 2;

  /// Creates or updates the named root. Durable when it returns.
  /// Throws TmLogicError when the registry is full.
  void set(int tid, const std::string& name, std::uint64_t value);

  /// Looks the name up; empty when absent.
  std::optional<std::uint64_t> get(const std::string& name) const;

  /// Removes the name. Returns false when absent.
  bool erase(int tid, const std::string& name);

  /// Number of occupied entries.
  int size() const;

 private:
  static std::uint64_t hash_name(const std::string& name);
  static int name_slot(int entry) { return PmemPool::kDirectRootSlots + 2 * entry; }
  static int value_slot(int entry) { return PmemPool::kDirectRootSlots + 2 * entry + 1; }

  PmemPool& pool_;
};

}  // namespace nvhalt
