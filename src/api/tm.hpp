// Public transactional-memory interface.
//
// All five TMs evaluated in the paper (NV-HALT, NV-HALT-CL, NV-HALT-SP,
// Trinity, SPHT) implement this word-based interface, so data structures,
// tests and benchmarks are TM-agnostic.
//
// Usage:
//   tm.run(tid, [&](Tx& tx) {
//     word_t v = tx.read(a);
//     tx.write(b, v + 1);
//   });
//
// The body may be executed multiple times (aborted attempts are retried),
// so it must not have side effects other than through the Tx handle.
#pragma once

#include <span>

#include "alloc/tx_allocator.hpp"
#include "core/tm_stats.hpp"
#include "pmem/pmem_pool.hpp"
#include "runtime/thread_registry.hpp"
#include "telemetry/tx_telemetry.hpp"
#include "util/common.hpp"
#include "util/function_ref.hpp"

namespace nvhalt {

class ContentionTable;  // locks/contention.hpp
namespace telemetry {
struct PostmortemReport;  // telemetry/flight_recorder.hpp
}

// Thread identity is managed by the runtime layer's registry; the handle
// and registry types are part of the public TM surface.
using runtime::ThreadHandle;
using runtime::ThreadRegistry;

/// Caller's declaration of a transaction's access pattern. kReadOnly is a
/// *hint*: a TM may route the transaction to a cheaper read-only protocol
/// (NV-HALT's lock-free snapshot path); a body that writes anyway is
/// demoted to the general path and still commits correctly. TMs without a
/// dedicated read-only path ignore the hint.
enum class TxMode { kUpdate, kReadOnly };

/// Thrown by user code (or Tx::abort) to voluntarily abort the current
/// transaction; run() then returns false without retrying.
struct TxUserAbort {};

/// Internal control-flow exception: the software path detected a conflict
/// and the attempt will be retried. Not part of the public API surface but
/// visible so tests can assert on it.
struct TxConflictAbort {};

/// Handle to the current transaction attempt.
class Tx {
 public:
  /// Transactional read of one word.
  virtual word_t read(gaddr_t a) = 0;

  /// Transactional write of one word.
  virtual void write(gaddr_t a, word_t v) = 0;

  /// Allocates nwords within this transaction (undone on abort).
  virtual gaddr_t alloc(std::size_t nwords) = 0;

  /// Frees a block at commit of this transaction.
  virtual void free(gaddr_t a, std::size_t nwords) = 0;

  /// True when this attempt runs on the hardware fast path.
  virtual bool on_hw_path() const = 0;

  /// Voluntarily aborts the transaction (no retry).
  [[noreturn]] void abort() { throw TxUserAbort{}; }

 protected:
  ~Tx() = default;
};

using TxBody = FunctionRef<void(Tx&)>;

/// A durably-linearizable word-based transactional memory.
class TransactionalMemory {
 public:
  virtual ~TransactionalMemory() = default;

  /// Executes `body` as one atomic durable transaction on behalf of the
  /// thread slot `tid` (a dense id in [0, registry().capacity())). Retries
  /// internally on conflicts/aborts. Returns true if the transaction
  /// committed, false if the body voluntarily aborted.
  ///
  /// Compatibility shim over the registry: the first use of a tid pins its
  /// slot permanently (the caller manages the id's lifetime, as all
  /// pre-registry code did). New code should prefer register_thread() and
  /// the ThreadHandle overload, which reclaim slots on handle destruction.
  virtual bool run(int tid, TxBody body) = 0;

  /// run() with an access-pattern hint (TxMode::kReadOnly routes to a TM's
  /// read-only fast path where one exists). The default ignores the hint.
  virtual bool run(int tid, TxMode mode, TxBody body) {
    (void)mode;
    return run(tid, body);
  }

  /// Runs `body` on behalf of a dynamically registered thread.
  bool run(ThreadHandle& h, TxBody body) { return run(h.tid(), body); }
  bool run(ThreadHandle& h, TxMode mode, TxBody body) { return run(h.tid(), mode, body); }

  /// This TM's thread registry (slot lifetime, capacity, churn counters).
  virtual ThreadRegistry& registry() = 0;

  /// Claims a slot for the calling thread; released when the handle dies.
  ThreadHandle register_thread() { return ThreadHandle(registry()); }

  /// Durably retires the revert/replay obligations accumulated so far — a
  /// checkpoint — so the next recovery is bounded by the delta since this
  /// call (DESIGN.md Sec. 13). Callable from any registered thread between
  /// its own transactions; concurrent committers block only for the
  /// duration. Returns false when this TM (or its configuration) does not
  /// checkpoint; the default is that no-op.
  virtual bool checkpoint(int tid) {
    (void)tid;
    return false;
  }

  /// Post-crash recovery: restores the volatile image from the durable
  /// state (reverting in-flight transactions / replaying logs), resets
  /// volatile TM metadata, and reconstructs the allocator from the pool's
  /// own persistent metadata (DESIGN.md Sec. 12) — no live-block iterator
  /// required, unlike the paper's volatile-allocator assumption (Sec. 4).
  /// Must be called quiescently, before any new transactions.
  virtual void recover_data() = 0;

  /// Complete recovery from the pool alone.
  void recover() { recover_data(); }

  /// Optional recovery cross-check: validates the recovered allocator
  /// metadata against the live blocks a structure walk discovered, and
  /// sweeps marked-used blocks no structure owns. (For a standalone —
  /// never TM-attached — allocator this is the authoritative rebuild, the
  /// paper's Sec. 4 protocol.)
  virtual void rebuild_allocator(std::span<const LiveBlock> live) = 0;

  /// Recovery plus the live-set cross-check / leak sweep.
  void recover(std::span<const LiveBlock> live) {
    recover_data();
    rebuild_allocator(live);
  }

  virtual PmemPool& pool() = 0;
  virtual TxAllocator& allocator() = 0;
  virtual const char* name() const = 0;
  virtual TmStats stats() const = 0;
  virtual void reset_stats() = 0;

  /// Aggregated telemetry (abort taxonomy, latency/size histograms,
  /// adaptive-budget window). Same quiescence contract as stats(): callable
  /// any time, exact only when no transactions are in flight.
  virtual telemetry::TmTelemetry telemetry() const = 0;

  /// Per-stripe lock-contention observatory, or null for TMs without one.
  /// Same quiescence contract as stats().
  virtual const ContentionTable* contention() const { return nullptr; }

  /// The flight-recorder postmortem decoded by the most recent
  /// recover_data() call, or null when the recorder is disabled (the
  /// default) or recovery has not run. Owned by the TM; valid until the
  /// next recover_data().
  virtual const telemetry::PostmortemReport* last_postmortem() const {
    return nullptr;
  }
};

}  // namespace nvhalt
