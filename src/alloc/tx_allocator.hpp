// Transaction-aware allocator over the persistent pool (paper Sec. 4).
//
// Allocation and freeing are tied to transaction outcomes: memory
// allocated during a transaction is returned if the transaction aborts,
// and frees are deferred until the transaction commits, so an abort can
// never leak and a doomed transaction can never recycle memory another
// thread still reads.
//
// Unlike the paper — which assumes a volatile allocator rebuilt from a
// user-supplied live-block iterator — allocator *metadata* here is
// persistent: per-segment allocation bitmaps, segment class headers and a
// segment watermark live in the pool's raw region, and per-transaction
// alloc/free effects are journaled through small per-thread intent
// records armed before the transaction's durability marker and applied
// after it (DESIGN.md Sec. 12 has the full crash argument). Recovery
// reconstructs the allocator from the pool alone; rebuild from live
// blocks survives as an optional cross-check (verify_rebuild) and as the
// authoritative path for standalone allocators (rebuild).
//
// Reuse safety: when attached to a runtime ThreadRegistry the allocator
// routes committed frees through epoch-based reclamation (alloc/ebr.hpp)
// so lock-free read-only snapshots never observe a recycled node. The
// durable allocation bit is still cleared at commit — a crash destroys
// every reader, so persistence and synchronization stay decoupled.
//
// Allocation from per-thread heaps is transaction-neutral: it touches no
// shared transactional state, so it cannot abort a hardware transaction.
// Acquiring a fresh segment, however, is global work; done inside a
// hardware transaction it would abort it on real hardware, and we model
// exactly that by raising an explicit HTM abort (code kAllocAbortCode) so
// the attempt is retried with a pre-warmed heap or falls back to software.
//
// Contract for the non-transactional interface in attached (TM-managed)
// mode: raw_alloc/raw_free/raw_alloc_large are setup-phase operations.
// They persist their effects eagerly (store + flush + fence) and must not
// interleave with transactional traffic on the same addresses — a stale
// intent record re-applied at recovery would win over a later raw_free of
// the same slot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "alloc/ebr.hpp"
#include "alloc/segment.hpp"
#include "pmem/pmem_pool.hpp"
#include "util/common.hpp"

namespace nvhalt {

/// xabort code used when allocation needs global work inside a HW txn.
inline constexpr std::uint8_t kAllocAbortCode = 0xA1;

struct LiveBlock {
  gaddr_t addr;
  std::uint32_t nwords;
};

struct AllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t segments_acquired = 0;
  // Epoch-based reclamation (attached mode; all zero standalone).
  std::uint64_t retired = 0;    ///< frees moved into limbo at commit
  std::uint64_t reclaimed = 0;  ///< limbo entries made reusable
  std::uint64_t limbo = 0;      ///< retired - reclaimed (current depth)
  // Recovery outcomes (cumulative over recover_metadata/verify_rebuild).
  std::uint64_t orphans_swept = 0;      ///< uncommitted-at-crash allocs reverted
  std::uint64_t leaked_reclaimed = 0;   ///< marked-used blocks no structure owns
};

/// What recover_metadata() found and did (inspector/telemetry surface).
struct AllocRecoveryReport {
  bool ran = false;
  bool found_metadata = false;
  std::uint64_t intents_applied = 0;   ///< entries of committed records re-applied
  std::uint64_t intents_reverted = 0;  ///< entries of uncommitted records undone
  std::uint64_t intents_skipped = 0;   ///< partially-armed records ignored
  std::uint64_t orphans_swept = 0;     ///< alloc entries among the reverted
  std::uint64_t watermark = 0;         ///< durable segment high-water mark
  std::uint64_t free_slots = 0;        ///< slots rebuilt onto free lists
  std::uint64_t free_segments = 0;     ///< whole segments rebuilt as free
};

/// What the persistent metadata says right now (PmemInspector surface):
/// a quiescent snapshot of the state recovery would start from.
struct AllocDurableSummary {
  bool metadata_present = false;
  std::uint64_t watermark = 0;        ///< segments ever carved
  std::uint64_t segment_count = 0;    ///< total heap segments
  std::uint64_t free_segments = 0;    ///< virgin/recycled below the watermark
  std::uint64_t used_slots = 0;       ///< set allocation bits (class segments)
  std::uint64_t large_segments = 0;   ///< segments inside large extents
  std::uint64_t armed_intents = 0;    ///< PREPARED records recovery would normalize
};

class TxAllocator {
 public:
  /// Manages words [heap_begin, pool.capacity_words()). heap_begin defaults
  /// to one line past null so word 0 is never handed out. Reserves the
  /// persistent metadata region (metadata_words) from the pool's raw space.
  explicit TxAllocator(PmemPool& pool, gaddr_t heap_begin = kWordsPerLine);

  TxAllocator(const TxAllocator&) = delete;
  TxAllocator& operator=(const TxAllocator&) = delete;

  /// Raw words of persistent metadata for a pool of `capacity_words`
  /// (header + per-segment headers/bitmaps + per-thread intent records).
  /// Pool sizing helpers add this to their raw-region budgets.
  static std::size_t metadata_words(std::size_t capacity_words,
                                    gaddr_t heap_begin = kWordsPerLine);

  // ---- Transactional interface ----------------------------------------
  /// Allocates within the calling thread's current transaction. The block
  /// is recorded and returned to the heap if the transaction aborts.
  gaddr_t tx_alloc(int tid, std::size_t nwords);

  /// Defers the free until the current transaction commits.
  void tx_free(int tid, gaddr_t a, std::size_t nwords);

  /// True when `tid` has uncommitted alloc/free effects — the TM must run
  /// its persist path (arm + marker + apply) even with an empty write set.
  bool has_pending(int tid) const {
    const ThreadHeap& h = heaps_[static_cast<std::size_t>(tid)];
    return !h.pending_allocs.empty() || !h.pending_frees.empty();
  }

  /// Transaction outcome hooks, called by the TM runtime. on_commit runs
  /// on every commit, so the no-effects case (no pending alloc/free and
  /// an empty limbo list) must stay an inline early return.
  void on_commit(int tid) {
    if (!has_pending(tid) && (!tm_managed_ || ebr_.limbo_empty(tid))) return;
    on_commit_slow(tid);
  }
  void on_abort(int tid);

  // ---- Crash consistency (TM persist path; attached mode only) ---------
  /// Writes `tid`'s pending alloc/free effects into its persistent intent
  /// record, tagged with the transaction's durability arm id (the
  /// pre-bump pVerNum). The TM calls this before the fence that precedes
  /// its durability marker, so an armed record is always durable before
  /// the marker can be. Throws TmLogicError when a transaction carries
  /// more than kIntentEntries alloc+free effects.
  void persist_arm(int tid, std::uint64_t arm_id);

  /// Applies `tid`'s armed effects to the persistent bitmaps (alloc → set
  /// bit, free → clear bit). The TM calls this after flushing its marker
  /// and before its closing fence; the record stays armed until the next
  /// persist_arm overwrites it, and recovery re-normalizes it either way.
  void persist_apply(int tid);

  /// Durably idles every armed intent record (checkpoint truncation).
  /// Caller must have drained all persist phases: with no arm/apply in
  /// flight, every PREPARED record belongs to a transaction whose apply is
  /// already durably fenced, so idling it only removes work recovery would
  /// have re-done idempotently. Fences on `tid` when anything was idled.
  void quiesce_intents(int tid);

  // ---- Non-transactional interface (setup / tests) ---------------------
  gaddr_t raw_alloc(int tid, std::size_t nwords);
  void raw_free(int tid, gaddr_t a, std::size_t nwords);

  /// Allocates a large contiguous block (whole segments) outside any
  /// transaction — e.g. a hash table's bucket array. Never recycled.
  gaddr_t raw_alloc_large(std::size_t nwords) { return raw_alloc_large(0, nwords); }
  gaddr_t raw_alloc_large(int tid, std::size_t nwords);

  // ---- Runtime integration ---------------------------------------------
  /// Puts the allocator into TM-managed mode: persistent metadata is
  /// maintained (eagerly for raw ops, via arm/apply for transactions) and
  /// committed frees defer physical reuse through epoch-based
  /// reclamation bounded by the registry's reservation scan. Called once
  /// by the owning TM's constructor; standalone allocators stay volatile
  /// with immediate reuse (seed semantics).
  void attach_registry(const runtime::ThreadRegistry* reg);
  bool tm_managed() const { return tm_managed_; }

  /// Epoch service (transaction attempts pin/unpin through this).
  alloc::EpochService& epochs() { return ebr_; }
  const alloc::EpochService& epochs() const { return ebr_; }

  // ---- Recovery ---------------------------------------------------------
  /// Decides whether the transaction that armed `arm_id` on `tid` is
  /// durably committed (NV-HALT/Trinity: arm_id < durable pVerNum[tid]).
  using CommitPredicate = std::function<bool(int tid, std::uint64_t arm_id)>;

  /// Reconstructs allocator state from persistent metadata alone:
  /// normalizes every armed intent record (committed → apply, uncommitted
  /// → revert, sweeping orphaned allocations), then rebuilds free lists
  /// and the segment watermark from the durable bitmaps and headers.
  /// Runs quiescently on recovery thread `rtid`; fences once at the end.
  /// `workers` parallelizes the read-only bitmap scans of Phase 2 across
  /// the recovery worker pool; intent normalization and every metadata
  /// write stay serial on `rtid` in segment order, so the rebuilt state
  /// (and the durable image) is identical for any worker count.
  AllocRecoveryReport recover_metadata(int rtid, const CommitPredicate& committed,
                                       int workers = 1);
  const AllocRecoveryReport& last_recovery() const { return last_recovery_; }

  /// Optional cross-check of persistent metadata against structure
  /// reachability: throws TmLogicError when a live block is not marked
  /// allocated (lost block) or disagrees with segment geometry; reclaims
  /// marked-used blocks no structure owns (crash leaks outside the intent
  /// protocol) and returns how many it reclaimed.
  std::uint64_t verify_rebuild(std::span<const LiveBlock> live);

  /// Rebuilds the volatile allocator state from the set of live blocks
  /// (paper Sec. 4: "the user must provide an iterator that the allocator
  /// can utilize to determine which parts of memory are in use"). The
  /// authoritative path for standalone allocators; TM-managed recovery
  /// uses recover_metadata + verify_rebuild instead.
  void rebuild(std::span<const LiveBlock> live);

  /// Drops all volatile state back to a pristine heap (tests).
  void reset();

  AllocStats stats() const;
  gaddr_t heap_begin() const { return space_.heap_begin; }
  std::size_t segment_count() const { return space_.segment_count; }

  // ---- Persistent metadata geometry (inspector / tests) -----------------
  /// Intent entries per thread record; one transaction may allocate+free
  /// at most this many blocks.
  static constexpr std::size_t kIntentEntries = 12;

  std::size_t meta_base() const { return meta_base_; }
  std::uint64_t durable_watermark() const;
  /// Durable allocation bit of the slot holding `a` (class segments only).
  bool slot_bit(gaddr_t a, std::uint32_t nwords) const;

  /// Scans the persistent metadata (headers, bitmaps, intent records).
  /// Must run quiescently; all-zero with metadata_present=false when the
  /// allocator is standalone or the header never became durable.
  AllocDurableSummary durable_summary() const;

 private:
  // Metadata layout (raw words, all line-aligned):
  //   [meta_base_]                 header line: magic, watermark,
  //                                segment_count, heap_begin
  //   [intent_base_]               kMaxThreads * kIntentWords intent records
  //   [seg_hdr_base_]              segment_count * kWordsPerLine headers
  //   [bitmap_base_]               segment_count * kBitmapWords bitmaps
  static constexpr std::uint64_t kMetaMagic = 0xA110C8ED50105EEDull;
  static constexpr std::size_t kIntentWords = 32;  // state line + 12 entries
  static constexpr std::size_t kBitmapWords = kSegmentWords / 64;
  // Segment header states (word 0 of the header line).
  static constexpr std::uint64_t kSegVirgin = 0;       // never carved / recycled
  static constexpr std::uint64_t kSegLargeHead = 100;  // word 1 = extent in segments
  static constexpr std::uint64_t kSegLargeBody = 101;
  // Intent record phases (low bits of state word 0; count in the rest).
  static constexpr std::uint64_t kIntentIdle = 0;
  static constexpr std::uint64_t kIntentPrepared = 1;

  struct ClassHeap {
    std::vector<gaddr_t> free_list;
    gaddr_t bump_base = kNullAddr;  // current segment base, or null
    std::size_t bump_slot = 0;      // next fresh slot in the segment
  };

  struct alignas(kCacheLineBytes) ThreadHeap {
    std::vector<ClassHeap> classes;  // one per size class
    std::vector<LiveBlock> pending_allocs;
    std::vector<LiveBlock> pending_frees;
    AllocStats stats;
  };

  /// Allocates from the per-thread heap only; returns null if it needs a
  /// fresh segment.
  gaddr_t fast_alloc(int tid, int cls);

  /// Acquires a segment for (tid, cls). Must not run inside a HW txn.
  void acquire_segment(int tid, int cls);

  /// Pulls a batch from the global reclaimed list for (tid, cls).
  void refill_from_global(int tid, int cls);

  gaddr_t alloc_impl(int tid, std::size_t nwords, bool in_txn);
  void push_free(int tid, gaddr_t a, std::size_t nwords);

  // ---- Persistent metadata helpers -------------------------------------
  std::size_t intent_base(int tid) const {
    return intent_base_ + static_cast<std::size_t>(tid) * kIntentWords;
  }
  std::size_t seg_hdr_idx(std::size_t seg) const {
    return seg_hdr_base_ + seg * kWordsPerLine;
  }
  std::size_t bitmap_idx(std::size_t seg, std::size_t slot) const {
    return bitmap_base_ + seg * kBitmapWords + slot / 64;
  }

  /// Stores + queues a flush of one metadata word on `tid`'s queue.
  void meta_store(int tid, std::size_t idx, std::uint64_t v);

  /// Read-modify-write of one allocation bit under the segment's spinlock
  /// (slots handed to different threads can share a bitmap word).
  void write_slot_bit(int tid, gaddr_t addr, std::uint32_t nwords, bool set);

  /// Marks a freshly carved segment's class header and advances the
  /// durable watermark; caller holds global_mu_.
  void persist_carve(int tid, std::size_t seg, std::uint64_t state, std::uint64_t extra);

  bool metadata_present() const { return pool_.raw_load(meta_base_) == kMetaMagic; }

  /// Hands a reclaimed (or recovered-free) slot back to `tid`'s heap
  /// without recounting it as a new free.
  void restock(int tid, gaddr_t a, std::uint32_t nwords);

  /// Out-of-line tail of on_commit: retire pending frees into limbo and
  /// drain the reclaimable prefix (attached), or release frees to the
  /// free lists (standalone).
  void on_commit_slow(int tid);

  PmemPool& pool_;
  SegmentSpace space_;

  std::mutex global_mu_;
  std::size_t seg_bump_ = 0;                            // next never-used segment
  std::vector<std::size_t> free_segments_;               // fully recycled segments
  std::vector<std::vector<gaddr_t>> global_free_;        // reclaimed blocks per class

  std::vector<ThreadHeap> heaps_;

  // TM-managed mode (persistent metadata + epoch-based reclamation).
  bool tm_managed_ = false;
  alloc::EpochService ebr_;
  std::size_t meta_base_ = 0;
  std::size_t intent_base_ = 0;
  std::size_t seg_hdr_base_ = 0;
  std::size_t bitmap_base_ = 0;
  std::unique_ptr<std::atomic_flag[]> seg_locks_;
  AllocRecoveryReport last_recovery_;
  std::uint64_t orphans_swept_total_ = 0;
  std::uint64_t leaked_reclaimed_total_ = 0;
};

}  // namespace nvhalt
