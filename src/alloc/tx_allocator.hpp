// Transaction-aware allocator over the persistent pool (paper Sec. 4).
//
// Allocation and freeing are tied to transaction outcomes: memory
// allocated during a transaction is returned if the transaction aborts,
// and frees are deferred until the transaction commits, so an abort can
// never leak and a doomed transaction can never recycle memory another
// thread still reads. The allocator's internal state is *volatile* —
// unlike Trinity's — and is reconstructed during recovery from a
// user-supplied iterator over live blocks.
//
// Allocation from per-thread heaps is transaction-neutral: it touches no
// shared transactional state, so it cannot abort a hardware transaction.
// Acquiring a fresh segment, however, is global work; done inside a
// hardware transaction it would abort it on real hardware, and we model
// exactly that by raising an explicit HTM abort (code kAllocAbortCode) so
// the attempt is retried with a pre-warmed heap or falls back to software.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "alloc/segment.hpp"
#include "pmem/pmem_pool.hpp"
#include "util/common.hpp"

namespace nvhalt {

/// xabort code used when allocation needs global work inside a HW txn.
inline constexpr std::uint8_t kAllocAbortCode = 0xA1;

struct LiveBlock {
  gaddr_t addr;
  std::uint32_t nwords;
};

struct AllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t segments_acquired = 0;
};

class TxAllocator {
 public:
  /// Manages words [heap_begin, pool.capacity_words()). heap_begin defaults
  /// to one line past null so word 0 is never handed out.
  explicit TxAllocator(PmemPool& pool, gaddr_t heap_begin = kWordsPerLine);

  TxAllocator(const TxAllocator&) = delete;
  TxAllocator& operator=(const TxAllocator&) = delete;

  // ---- Transactional interface ----------------------------------------
  /// Allocates within the calling thread's current transaction. The block
  /// is recorded and returned to the heap if the transaction aborts.
  gaddr_t tx_alloc(int tid, std::size_t nwords);

  /// Defers the free until the current transaction commits.
  void tx_free(int tid, gaddr_t a, std::size_t nwords);

  /// Transaction outcome hooks, called by the TM runtime.
  void on_commit(int tid);
  void on_abort(int tid);

  // ---- Non-transactional interface (setup / tests) ---------------------
  gaddr_t raw_alloc(int tid, std::size_t nwords);
  void raw_free(int tid, gaddr_t a, std::size_t nwords);

  /// Allocates a large contiguous block (whole segments) outside any
  /// transaction — e.g. a hash table's bucket array. Never recycled.
  gaddr_t raw_alloc_large(std::size_t nwords);

  // ---- Recovery ---------------------------------------------------------
  /// Rebuilds the volatile allocator state from the set of live blocks
  /// (paper Sec. 4: "the user must provide an iterator that the allocator
  /// can utilize to determine which parts of memory are in use").
  void rebuild(std::span<const LiveBlock> live);

  /// Drops all state back to a pristine heap (tests).
  void reset();

  AllocStats stats() const;
  gaddr_t heap_begin() const { return space_.heap_begin; }
  std::size_t segment_count() const { return space_.segment_count; }

 private:
  struct ClassHeap {
    std::vector<gaddr_t> free_list;
    gaddr_t bump_base = kNullAddr;  // current segment base, or null
    std::size_t bump_slot = 0;      // next fresh slot in the segment
  };

  struct alignas(kCacheLineBytes) ThreadHeap {
    std::vector<ClassHeap> classes;  // one per size class
    std::vector<LiveBlock> pending_allocs;
    std::vector<LiveBlock> pending_frees;
    AllocStats stats;
  };

  /// Allocates from the per-thread heap only; returns null if it needs a
  /// fresh segment.
  gaddr_t fast_alloc(int tid, int cls);

  /// Acquires a segment for (tid, cls). Must not run inside a HW txn.
  void acquire_segment(int tid, int cls);

  /// Pulls a batch from the global reclaimed list for (tid, cls).
  void refill_from_global(int tid, int cls);

  gaddr_t alloc_impl(int tid, std::size_t nwords, bool in_txn);
  void push_free(int tid, gaddr_t a, std::size_t nwords);

  PmemPool& pool_;
  SegmentSpace space_;

  std::mutex global_mu_;
  std::size_t seg_bump_ = 0;                            // next never-used segment
  std::vector<std::size_t> free_segments_;               // fully recycled segments
  std::vector<std::vector<gaddr_t>> global_free_;        // reclaimed blocks per class

  std::vector<ThreadHeap> heaps_;
};

}  // namespace nvhalt
