#include "alloc/ebr.hpp"

#include "runtime/thread_registry.hpp"

namespace nvhalt::alloc {

int EpochService::scan_bound() const {
  if (registry_ == nullptr) return kMaxThreads;
  const int hw = registry_->high_water();
  return hw < kMaxThreads ? hw : kMaxThreads;
}

void EpochService::quiesce_slow(int tid, std::uint64_t e) {
  auto& r = slots_[static_cast<std::size_t>(tid)].value.epoch;
  // Announce-then-verify: publish a candidate epoch, then re-read the
  // global. If the global moved past the announcement a reclaimer may
  // already have scanned past this slot, so chase it until stable. (The
  // inline fast path already handled the already-announced case: a
  // reservation equal to the current global was published with an
  // earlier seq_cst store, so any retirement this thread could endanger
  // carries an epoch >= e, and entries below e were unlinked before this
  // attempt began.)
  for (;;) {
    r.store(e, std::memory_order_seq_cst);
    const std::uint64_t cur = global_.load(std::memory_order_seq_cst);
    if (cur == e) return;
    e = cur;
  }
}

void EpochService::unpin(int tid) {
  slots_[static_cast<std::size_t>(tid)].value.epoch.store(kIdle, std::memory_order_seq_cst);
}

std::uint64_t EpochService::min_active() const {
  std::uint64_t m = kIdle;
  const int bound = scan_bound();
  for (int s = 0; s < bound; ++s) {
    // A released registry slot is outside any transaction, so its stale
    // persistent reservation is dead weight and must not gate reclaim
    // (the slot's next owner re-announces before touching shared nodes;
    // a fresh snapshot cannot reach anything already retired).
    if (registry_ != nullptr && !registry_->is_registered(s)) continue;
    const std::uint64_t e = slots_[static_cast<std::size_t>(s)].value.epoch.load(
        std::memory_order_seq_cst);
    if (e < m) m = e;
  }
  return m;
}

void EpochService::try_advance() {
  const std::uint64_t e = global_.load(std::memory_order_seq_cst);
  const int bound = scan_bound();
  for (int s = 0; s < bound; ++s) {
    if (registry_ != nullptr && !registry_->is_registered(s)) continue;
    const std::uint64_t r = slots_[static_cast<std::size_t>(s)].value.epoch.load(
        std::memory_order_seq_cst);
    if (r != kIdle && r != e) return;  // a straggler is still in an older epoch
  }
  std::uint64_t expected = e;
  global_.compare_exchange_strong(expected, e + 1, std::memory_order_seq_cst);
}

void EpochService::retire(int tid, gaddr_t addr, std::uint32_t nwords) {
  auto& l = limbo_[static_cast<std::size_t>(tid)].value;
  l.entries.push_back(LimboEntry{addr, nwords, global_.load(std::memory_order_seq_cst), now_ns()});
  l.retired.fetch_add(1, std::memory_order_relaxed);
  try_advance();
}

std::size_t EpochService::reclaim(int tid, const ReclaimFn& fn) {
  auto& l = limbo_[static_cast<std::size_t>(tid)].value;
  if (l.entries.empty()) return 0;
  const std::uint64_t safe_below = min_active();
  std::size_t n = 0;
  const std::uint64_t now = now_ns();
  while (!l.entries.empty() && l.entries.front().epoch < safe_below) {
    const LimboEntry& e = l.entries.front();
    fn(e.addr, e.nwords);
    l.latency_ns.record(now >= e.retire_ns ? now - e.retire_ns : 0);
    l.entries.pop_front();
    ++n;
  }
  if (n != 0) l.reclaimed.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void EpochService::reset() {
  for (auto& padded : limbo_) {
    auto& l = padded.value;
    l.entries.clear();
    l.retired.store(0, std::memory_order_relaxed);
    l.reclaimed.store(0, std::memory_order_relaxed);
    l.latency_ns.reset();
  }
  for (auto& s : slots_) s.value.epoch.store(kIdle, std::memory_order_relaxed);
  global_.store(1, std::memory_order_relaxed);
}

std::uint64_t EpochService::retired_total() const {
  std::uint64_t n = 0;
  for (const auto& l : limbo_) n += l.value.retired.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t EpochService::reclaimed_total() const {
  std::uint64_t n = 0;
  for (const auto& l : limbo_) n += l.value.reclaimed.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t EpochService::limbo_depth() const {
  const std::uint64_t retired = retired_total();
  const std::uint64_t reclaimed = reclaimed_total();
  return retired >= reclaimed ? retired - reclaimed : 0;
}

telemetry::PowHistogram EpochService::reclaim_latency_ns() const {
  telemetry::PowHistogram h;
  for (const auto& l : limbo_) h.add(l.value.latency_ns);
  return h;
}

}  // namespace nvhalt::alloc
