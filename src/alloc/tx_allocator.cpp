#include "alloc/tx_allocator.hpp"

#include <algorithm>

#include "htm/htm_tls.hpp"
#include "htm/htm_types.hpp"
#include "runtime/recovery_pool.hpp"

namespace nvhalt {

namespace {

/// Intent entry payload: addr | nwords | kind, tag-protected by word 1.
constexpr std::uint64_t kKindAlloc = 0;
constexpr std::uint64_t kKindFree = 1;

std::uint64_t pack_entry(gaddr_t addr, std::uint32_t nwords, std::uint64_t kind) {
  return (static_cast<std::uint64_t>(addr) << 12) | (static_cast<std::uint64_t>(nwords) << 1) |
         kind;
}
gaddr_t entry_addr(std::uint64_t w) { return w >> 12; }
std::uint32_t entry_nwords(std::uint64_t w) { return static_cast<std::uint32_t>((w >> 1) & 0x7FF); }
std::uint64_t entry_kind(std::uint64_t w) { return w & 1; }
std::uint64_t entry_tag(std::uint64_t arm_id) { return (arm_id << 1) | 1; }

class SegSpinGuard {
 public:
  explicit SegSpinGuard(std::atomic_flag& f) : f_(f) {
    while (f_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  ~SegSpinGuard() { f_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& f_;
};

}  // namespace

std::size_t TxAllocator::metadata_words(std::size_t capacity_words, gaddr_t heap_begin) {
  const std::size_t segs = SegmentSpace(heap_begin, capacity_words).segment_count;
  return kWordsPerLine + static_cast<std::size_t>(kMaxThreads) * kIntentWords +
         segs * (kWordsPerLine + kBitmapWords);
}

TxAllocator::TxAllocator(PmemPool& pool, gaddr_t heap_begin)
    : pool_(pool), space_(heap_begin, pool.capacity_words()) {
  if (space_.segment_count == 0)
    throw TmLogicError("pool too small for at least one allocator segment");
  heaps_.resize(kMaxThreads);
  for (auto& h : heaps_) h.classes.resize(kSizeClasses.size());
  global_free_.resize(kSizeClasses.size());

  // Reserve the persistent metadata region unconditionally so the layout
  // is deterministic across a crash/recovery pair of runners regardless of
  // when (or whether) the owning TM attaches.
  meta_base_ = pool_.alloc_raw(metadata_words(pool.capacity_words(), heap_begin));
  intent_base_ = meta_base_ + kWordsPerLine;
  seg_hdr_base_ = intent_base_ + static_cast<std::size_t>(kMaxThreads) * kIntentWords;
  bitmap_base_ = seg_hdr_base_ + space_.segment_count * kWordsPerLine;
  seg_locks_ = std::make_unique<std::atomic_flag[]>(space_.segment_count);
}

void TxAllocator::attach_registry(const runtime::ThreadRegistry* reg) {
  tm_managed_ = true;
  ebr_.attach_registry(reg);
  if (!metadata_present()) {
    // Fresh pool: seed the header. Word order within the line puts the
    // magic last, so a partially persisted line reads as "no metadata".
    meta_store(0, meta_base_ + 1, 0);  // watermark
    meta_store(0, meta_base_ + 2, space_.segment_count);
    meta_store(0, meta_base_ + 3, space_.heap_begin);
    meta_store(0, meta_base_, kMetaMagic);
    pool_.fence(0);
  }
}

void TxAllocator::meta_store(int tid, std::size_t idx, std::uint64_t v) {
  pool_.raw_store(tid, idx, v);
  pool_.flush_raw(tid, idx);
}

void TxAllocator::write_slot_bit(int tid, gaddr_t addr, std::uint32_t nwords, bool set) {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("slot bit update outside size classes");
  const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
  const std::size_t seg = space_.segment_of(addr);
  const std::size_t slot = space_.slot_of(addr, cw);
  const std::size_t idx = bitmap_idx(seg, slot);
  const std::uint64_t mask = std::uint64_t{1} << (slot % 64);
  // Slots handed to different threads can share a bitmap word, so the
  // read-modify-write serializes per segment.
  SegSpinGuard g(seg_locks_[seg]);
  const std::uint64_t cur = pool_.raw_load(idx);
  meta_store(tid, idx, set ? (cur | mask) : (cur & ~mask));
}

void TxAllocator::persist_carve(int tid, std::size_t seg, std::uint64_t state,
                                std::uint64_t extra) {
  meta_store(tid, seg_hdr_idx(seg) + 1, extra);
  meta_store(tid, seg_hdr_idx(seg), state);
}

gaddr_t TxAllocator::fast_alloc(int tid, int cls) {
  ClassHeap& ch = heaps_[tid].classes[static_cast<std::size_t>(cls)];
  if (!ch.free_list.empty()) {
    const gaddr_t a = ch.free_list.back();
    ch.free_list.pop_back();
    return a;
  }
  if (ch.bump_base != kNullAddr) {
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
    if (ch.bump_slot < SegmentSpace::slots_per_segment(cw)) {
      return ch.bump_base + (ch.bump_slot++) * cw;
    }
    ch.bump_base = kNullAddr;
  }
  return kNullAddr;
}

void TxAllocator::refill_from_global(int tid, int cls) {
  std::lock_guard<std::mutex> g(global_mu_);
  auto& gf = global_free_[static_cast<std::size_t>(cls)];
  if (gf.empty()) return;
  auto& fl = heaps_[tid].classes[static_cast<std::size_t>(cls)].free_list;
  const std::size_t take = std::min<std::size_t>(gf.size(), 64);
  fl.insert(fl.end(), gf.end() - static_cast<std::ptrdiff_t>(take), gf.end());
  gf.resize(gf.size() - take);
}

void TxAllocator::acquire_segment(int tid, int cls) {
  std::size_t seg;
  {
    std::lock_guard<std::mutex> g(global_mu_);
    bool fresh = false;
    if (!free_segments_.empty()) {
      seg = free_segments_.back();
      free_segments_.pop_back();
    } else {
      if (seg_bump_ >= space_.segment_count) throw TmLogicError("persistent heap exhausted");
      seg = seg_bump_++;
      fresh = true;
    }
    if (tm_managed_) {
      // Durable carve: class header (and watermark, for fresh segments)
      // are fenced before any slot of the segment can be handed out.
      persist_carve(tid, seg, 1 + static_cast<std::uint64_t>(cls), 0);
      if (fresh) meta_store(tid, meta_base_ + 1, seg_bump_);
      pool_.fence(tid);
    }
  }
  ClassHeap& ch = heaps_[tid].classes[static_cast<std::size_t>(cls)];
  ch.bump_base = space_.segment_base(seg);
  ch.bump_slot = 0;
  heaps_[tid].stats.segments_acquired++;
}

gaddr_t TxAllocator::alloc_impl(int tid, std::size_t nwords, bool in_txn) {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("allocation exceeds largest size class");
  gaddr_t a = fast_alloc(tid, cls);
  if (a == kNullAddr) {
    // Global work (mutex, possibly fresh segment) cannot run inside a
    // hardware transaction; on real RTM it would abort anyway.
    if (htm::in_hw_txn()) throw htm::HtmAbort{htm::AbortCause::kExplicit, kAllocAbortCode};
    if (tm_managed_) {
      // Epoch-deferred frees come home before we reach for shared space.
      ebr_.reclaim(tid, [this, tid](gaddr_t ra, std::uint32_t rn) { restock(tid, ra, rn); });
      a = fast_alloc(tid, cls);
    }
    if (a == kNullAddr) {
      refill_from_global(tid, cls);
      a = fast_alloc(tid, cls);
      if (a == kNullAddr) {
        acquire_segment(tid, cls);
        a = fast_alloc(tid, cls);
      }
    }
  }
  heaps_[tid].stats.allocs++;
  if (in_txn)
    heaps_[tid].pending_allocs.push_back({a, static_cast<std::uint32_t>(nwords)});
  return a;
}

gaddr_t TxAllocator::tx_alloc(int tid, std::size_t nwords) {
  return alloc_impl(tid, nwords, /*in_txn=*/true);
}

gaddr_t TxAllocator::raw_alloc(int tid, std::size_t nwords) {
  const gaddr_t a = alloc_impl(tid, nwords, /*in_txn=*/false);
  if (tm_managed_) {
    // Non-transactional setup allocation: persist the bit eagerly.
    write_slot_bit(tid, a, static_cast<std::uint32_t>(nwords), true);
    pool_.fence(tid);
  }
  return a;
}

gaddr_t TxAllocator::raw_alloc_large(int tid, std::size_t nwords) {
  if (htm::in_hw_txn()) throw htm::HtmAbort{htm::AbortCause::kExplicit, kAllocAbortCode};
  const std::size_t nsegs = (nwords + kSegmentWords - 1) / kSegmentWords;
  std::lock_guard<std::mutex> g(global_mu_);
  if (seg_bump_ + nsegs > space_.segment_count) throw TmLogicError("persistent heap exhausted");
  const std::size_t first = seg_bump_;
  seg_bump_ += nsegs;
  if (tm_managed_) {
    persist_carve(tid, first, kSegLargeHead, nsegs);
    for (std::size_t s = first + 1; s < first + nsegs; ++s)
      persist_carve(tid, s, kSegLargeBody, 0);
    meta_store(tid, meta_base_ + 1, seg_bump_);
    pool_.fence(tid);
  }
  return space_.segment_base(first);
}

void TxAllocator::push_free(int tid, gaddr_t a, std::size_t nwords) {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("free exceeds largest size class");
  heaps_[tid].classes[static_cast<std::size_t>(cls)].free_list.push_back(a);
  heaps_[tid].stats.frees++;
}

void TxAllocator::restock(int tid, gaddr_t a, std::uint32_t nwords) {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("restock outside size classes");
  heaps_[tid].classes[static_cast<std::size_t>(cls)].free_list.push_back(a);
}

void TxAllocator::tx_free(int tid, gaddr_t a, std::size_t nwords) {
  heaps_[tid].pending_frees.push_back({a, static_cast<std::uint32_t>(nwords)});
}

void TxAllocator::raw_free(int tid, gaddr_t a, std::size_t nwords) {
  if (tm_managed_) {
    write_slot_bit(tid, a, static_cast<std::uint32_t>(nwords), false);
    pool_.fence(tid);
  }
  push_free(tid, a, nwords);
}

void TxAllocator::persist_arm(int tid, std::uint64_t arm_id) {
  if (!tm_managed_) return;
  ThreadHeap& h = heaps_[tid];
  const std::size_t count = h.pending_allocs.size() + h.pending_frees.size();
  if (count == 0) return;
  if (count > kIntentEntries)
    throw TmLogicError("allocator intent record overflow: one transaction carries more than " +
                       std::to_string(kIntentEntries) + " alloc/free effects");
  const std::size_t base = intent_base(tid);
  std::size_t i = 0;
  const std::uint64_t tag = entry_tag(arm_id);
  auto put_entry = [&](const LiveBlock& b, std::uint64_t kind) {
    const std::size_t e = base + kWordsPerLine + i * 2;
    // Payload before tag (same line): a durable tag implies a durable
    // payload under the store-order crash adversary.
    meta_store(tid, e, pack_entry(b.addr, b.nwords, kind));
    meta_store(tid, e + 1, tag);
    ++i;
  };
  for (const LiveBlock& b : h.pending_allocs) put_entry(b, kKindAlloc);
  for (const LiveBlock& b : h.pending_frees) put_entry(b, kKindFree);
  // State line: arm id before phase|count (same line, same argument).
  meta_store(tid, base + 1, arm_id);
  meta_store(tid, base, (static_cast<std::uint64_t>(count) << 2) | kIntentPrepared);
  pool_.journal_alloc_mark(tid, (arm_id << 8) | static_cast<std::uint64_t>(count));
}

void TxAllocator::persist_apply(int tid) {
  if (!tm_managed_) return;
  ThreadHeap& h = heaps_[tid];
  if (h.pending_allocs.empty() && h.pending_frees.empty()) return;
  // No disarm write: the record stays armed until the next persist_arm
  // overwrites it, and recovery re-normalizes it idempotently. (An eager
  // disarm could persist ahead of the marker and hide stray apply bits
  // from recovery.)
  for (const LiveBlock& b : h.pending_allocs) write_slot_bit(tid, b.addr, b.nwords, true);
  for (const LiveBlock& b : h.pending_frees) write_slot_bit(tid, b.addr, b.nwords, false);
  pool_.journal_alloc_mark(tid, 1);
}

void TxAllocator::on_commit_slow(int tid) {
  ThreadHeap& h = heaps_[tid];
  if (tm_managed_) {
    // Physical reuse defers through the epoch limbo: a lock-free RO
    // snapshot begun before this commit may still read the freed nodes.
    for (const LiveBlock& b : h.pending_frees) {
      ebr_.retire(tid, b.addr, b.nwords);
      h.stats.frees++;
    }
    h.pending_frees.clear();
    h.pending_allocs.clear();
    ebr_.reclaim(tid, [this, tid](gaddr_t ra, std::uint32_t rn) { restock(tid, ra, rn); });
    return;
  }
  // Frees take effect only now that the transaction is durably committed.
  for (const LiveBlock& b : h.pending_frees) push_free(tid, b.addr, b.nwords);
  h.pending_frees.clear();
  h.pending_allocs.clear();
}

void TxAllocator::on_abort(int tid) {
  ThreadHeap& h = heaps_[tid];
  // The transaction never happened: its allocations return to the heap and
  // its frees are forgotten. (Nothing durable to undo: intent records are
  // armed only on the commit path.)
  for (const LiveBlock& b : h.pending_allocs) push_free(tid, b.addr, b.nwords);
  h.pending_allocs.clear();
  h.pending_frees.clear();
}

void TxAllocator::reset() {
  std::lock_guard<std::mutex> g(global_mu_);
  seg_bump_ = 0;
  free_segments_.clear();
  for (auto& gf : global_free_) gf.clear();
  for (auto& h : heaps_) {
    for (auto& ch : h.classes) {
      ch.free_list.clear();
      ch.bump_base = kNullAddr;
      ch.bump_slot = 0;
    }
    h.pending_allocs.clear();
    h.pending_frees.clear();
  }
  ebr_.reset();
}

std::uint64_t TxAllocator::durable_watermark() const {
  return pool_.raw_load(meta_base_ + 1);
}

bool TxAllocator::slot_bit(gaddr_t a, std::uint32_t nwords) const {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("slot bit query outside size classes");
  const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
  const std::size_t seg = space_.segment_of(a);
  const std::size_t slot = space_.slot_of(a, cw);
  return (pool_.raw_load(bitmap_idx(seg, slot)) >> (slot % 64)) & 1;
}

void TxAllocator::quiesce_intents(int tid) {
  if (!tm_managed_ || !metadata_present()) return;
  bool idled = false;
  for (int t = 0; t < kMaxThreads; ++t) {
    const std::size_t base = intent_base(t);
    if ((pool_.raw_load(base) & 3) != kIntentPrepared) continue;
    // Persist phases are drained (checkpoint holds the exclusive side), so
    // this record's transaction has durably applied its effects; idling it
    // only removes recovery's idempotent re-application.
    meta_store(tid, base, kIntentIdle);
    meta_store(tid, base + 1, 0);
    idled = true;
  }
  if (idled) pool_.fence(tid);
}

AllocDurableSummary TxAllocator::durable_summary() const {
  AllocDurableSummary s;
  if (!tm_managed_ || !metadata_present()) return s;
  s.metadata_present = true;
  s.segment_count = space_.segment_count;
  std::uint64_t wm = pool_.raw_load(meta_base_ + 1);
  if (wm > space_.segment_count) wm = space_.segment_count;
  s.watermark = wm;
  for (int tid = 0; tid < kMaxThreads; ++tid) {
    if ((pool_.raw_load(intent_base(tid)) & 3) == kIntentPrepared) ++s.armed_intents;
  }
  for (std::size_t seg = 0; seg < wm;) {
    const std::uint64_t hdr = pool_.raw_load(seg_hdr_idx(seg));
    if (hdr == kSegVirgin) {
      ++s.free_segments;
      ++seg;
      continue;
    }
    if (hdr == kSegLargeHead || hdr == kSegLargeBody) {
      const std::uint64_t extent =
          hdr == kSegLargeHead ? pool_.raw_load(seg_hdr_idx(seg) + 1) : 1;
      const std::uint64_t step =
          extent == 0 || seg + extent > space_.segment_count ? 1 : extent;
      s.large_segments += step;
      seg += static_cast<std::size_t>(step);
      continue;
    }
    if (hdr >= 1 && hdr <= kSizeClasses.size()) {
      const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(hdr - 1)];
      const std::size_t slots = SegmentSpace::slots_per_segment(cw);
      for (std::size_t slot = 0; slot < slots; ++slot) {
        if ((pool_.raw_load(bitmap_idx(seg, slot)) >> (slot % 64)) & 1) ++s.used_slots;
      }
    }
    ++seg;
  }
  return s;
}

AllocRecoveryReport TxAllocator::recover_metadata(int rtid, const CommitPredicate& committed,
                                                 int workers) {
  AllocRecoveryReport rep;
  rep.ran = true;

  // Start from pristine volatile state; limbo entries die with the crash
  // (their durable bits are already cleared, so the bitmap scan below
  // rebuilds them straight onto free lists).
  reset();

  if (!tm_managed_ || !metadata_present()) {
    if (tm_managed_) {
      // The crash predates the metadata header fence: nothing was ever
      // allocated durably. Re-seed the header.
      meta_store(rtid, meta_base_ + 1, 0);
      meta_store(rtid, meta_base_ + 2, space_.segment_count);
      meta_store(rtid, meta_base_ + 3, space_.heap_begin);
      meta_store(rtid, meta_base_, kMetaMagic);
      pool_.fence(rtid);
    }
    last_recovery_ = rep;
    return rep;
  }
  rep.found_metadata = true;

  // Phase 1: normalize every armed intent record. A record with all entry
  // tags matching its arm id was fully armed (the arm rides the fence
  // before the durability marker); apply it if its transaction committed,
  // revert it otherwise — both are idempotent absolute bit writes, so a
  // record whose apply already (partially) persisted normalizes the same
  // way. Partially armed records can only belong to uncommitted
  // transactions whose apply never ran: skipping them is safe.
  for (int tid = 0; tid < kMaxThreads; ++tid) {
    const std::size_t base = intent_base(tid);
    const std::uint64_t state = pool_.raw_load(base);
    if ((state & 3) != kIntentPrepared) continue;
    const std::uint64_t count = state >> 2;
    const std::uint64_t arm_id = pool_.raw_load(base + 1);
    if (count == 0 || count > kIntentEntries) {
      rep.intents_skipped++;
      continue;
    }
    bool valid = true;
    for (std::uint64_t e = 0; e < count; ++e) {
      if (pool_.raw_load(base + kWordsPerLine + e * 2 + 1) != entry_tag(arm_id)) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      rep.intents_skipped++;
      continue;
    }
    const bool did_commit = committed(tid, arm_id);
    for (std::uint64_t e = 0; e < count; ++e) {
      const std::uint64_t w = pool_.raw_load(base + kWordsPerLine + e * 2);
      const bool is_alloc = entry_kind(w) == kKindAlloc;
      const bool bit = did_commit ? is_alloc : !is_alloc;
      write_slot_bit(rtid, entry_addr(w), entry_nwords(w), bit);
      if (did_commit) {
        rep.intents_applied++;
      } else {
        rep.intents_reverted++;
        if (is_alloc) rep.orphans_swept++;
      }
    }
    // Disarm (safe here: recovery is quiescent and fences before any new
    // transaction can arm).
    meta_store(rtid, base, kIntentIdle);
    meta_store(rtid, base + 1, 0);
  }

  // Phase 2: rebuild volatile state from the durable headers and bitmaps.
  // The header walk is serial — large-object extents make blind segment
  // partitioning unsound (a partition could start inside an extent) — and
  // so is every metadata write. Only the per-segment slot-bit scans, pure
  // reads over disjoint bitmaps, fan out across the recovery worker pool;
  // the in-order merge below then replays the serial path's stores and
  // free-list pushes exactly, so the rebuilt state is identical for any
  // worker count.
  std::uint64_t wm = pool_.raw_load(meta_base_ + 1);
  if (wm > space_.segment_count) wm = space_.segment_count;
  rep.watermark = wm;
  seg_bump_ = static_cast<std::size_t>(wm);

  struct SegScan {
    std::size_t seg;
    int cls;
    std::size_t used = 0;
    std::vector<gaddr_t> free_slots;
  };
  struct WalkItem {
    std::size_t seg;
    std::uint64_t hdr;
    std::ptrdiff_t scan = -1;  // index into `scans` for class segments
  };
  std::vector<WalkItem> walk;
  std::vector<SegScan> scans;
  for (std::size_t seg = 0; seg < wm;) {
    const std::uint64_t s = pool_.raw_load(seg_hdr_idx(seg));
    if (s == kSegVirgin) {
      walk.push_back({seg, s, -1});
      ++seg;
      continue;
    }
    if (s == kSegLargeHead) {
      const std::uint64_t extent = pool_.raw_load(seg_hdr_idx(seg) + 1);
      if (extent == 0 || seg + extent > space_.segment_count)
        throw TmLogicError("corrupt large-object extent in allocator metadata");
      seg += extent;
      continue;
    }
    if (s == kSegLargeBody)
      throw TmLogicError("orphan large-object body segment in allocator metadata");
    if (s < 1 || s > kSizeClasses.size())
      throw TmLogicError("corrupt allocator segment header");
    walk.push_back({seg, s, static_cast<std::ptrdiff_t>(scans.size())});
    scans.push_back({seg, static_cast<int>(s) - 1, 0, {}});
    ++seg;
  }

  runtime::run_recovery_partitions(
      scans.size(), workers, rtid, [&](int /*wtid*/, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          SegScan& sc = scans[i];
          const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(sc.cls)];
          const std::size_t slots = SegmentSpace::slots_per_segment(cw);
          const gaddr_t sbase = space_.segment_base(sc.seg);
          for (std::size_t slot = 0; slot < slots; ++slot) {
            if ((pool_.raw_load(bitmap_idx(sc.seg, slot)) >> (slot % 64)) & 1) {
              ++sc.used;
            } else {
              sc.free_slots.push_back(sbase + slot * cw);
            }
          }
        }
      });

  for (const WalkItem& it : walk) {
    if (it.hdr == kSegVirgin) {
      free_segments_.push_back(it.seg);
      rep.free_segments++;
      continue;
    }
    const SegScan& sc = scans[static_cast<std::size_t>(it.scan)];
    if (sc.used == 0) {
      // Every slot came home: recycle the segment whole for any class.
      meta_store(rtid, seg_hdr_idx(it.seg), kSegVirgin);
      free_segments_.push_back(it.seg);
      rep.free_segments++;
    } else {
      for (const gaddr_t a : sc.free_slots) {
        global_free_[static_cast<std::size_t>(sc.cls)].push_back(a);
        rep.free_slots++;
      }
    }
  }
  pool_.fence(rtid);

  orphans_swept_total_ += rep.orphans_swept;
  last_recovery_ = rep;
  return rep;
}

std::uint64_t TxAllocator::verify_rebuild(std::span<const LiveBlock> live) {
  if (!tm_managed_ || !metadata_present()) {
    if (!live.empty())
      throw TmLogicError("live blocks reported but no persistent allocator metadata");
    return 0;
  }
  const std::uint64_t wm = durable_watermark();

  // Pass 1: every live block must agree with the durable metadata.
  struct SegUsed {
    std::vector<bool> used;
  };
  std::vector<SegUsed> segs(space_.segment_count);
  for (const LiveBlock& b : live) {
    if (b.addr < space_.heap_begin) throw TmLogicError("live block below heap");
    const std::size_t seg = space_.segment_of(b.addr);
    if (seg >= space_.segment_count) throw TmLogicError("live block beyond heap");
    if (seg >= wm) throw TmLogicError("live block beyond the durable segment watermark");
    const std::uint64_t s = pool_.raw_load(seg_hdr_idx(seg));
    if (s == kSegLargeHead || s == kSegLargeBody) {
      // Large extent (raw_alloc_large): classified by the header, not the
      // block size — small arrays are carved as whole segments too. The
      // block must start at its head segment and fit the recorded extent.
      if (s != kSegLargeHead || b.addr != space_.segment_base(seg))
        throw TmLogicError("large-extent live block not at its head segment");
      const std::uint64_t extent = pool_.raw_load(seg_hdr_idx(seg) + 1);
      if (extent == 0 || seg + extent > wm)
        throw TmLogicError("large live block beyond the durable watermark");
      if (b.addr + b.nwords > space_.segment_base(seg) + extent * kSegmentWords)
        throw TmLogicError("large live block exceeds its recorded extent");
      for (std::size_t body = seg + 1; body < seg + extent; ++body) {
        if (pool_.raw_load(seg_hdr_idx(body)) != kSegLargeBody)
          throw TmLogicError("large live block with corrupt body segment");
      }
      continue;
    }
    const int cls = size_class_for(b.nwords);
    if (cls < 0) throw TmLogicError("oversize live block outside a large extent");
    if (s != 1 + static_cast<std::uint64_t>(cls))
      throw TmLogicError("live block class disagrees with persistent segment header");
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
    if ((b.addr - space_.segment_base(seg)) % cw != 0)
      throw TmLogicError("live block not aligned to its size class slot");
    const std::size_t slot = space_.slot_of(b.addr, cw);
    if (!slot_bit(b.addr, b.nwords))
      throw TmLogicError("live block not marked allocated in persistent metadata (lost block)");
    auto& su = segs[seg];
    if (su.used.empty()) su.used.assign(SegmentSpace::slots_per_segment(cw), false);
    su.used[slot] = true;
  }

  // Pass 2: sweep marked-used slots no structure owns (leaks outside the
  // intent protocol, e.g. crash-orphaned setup allocations) back onto the
  // free lists, durably.
  std::uint64_t leaked = 0;
  {
    std::lock_guard<std::mutex> g(global_mu_);
    for (std::size_t seg = 0; seg < wm; ++seg) {
      const std::uint64_t s = pool_.raw_load(seg_hdr_idx(seg));
      if (s < 1 || s > kSizeClasses.size()) continue;  // virgin or large
      const int cls = static_cast<int>(s) - 1;
      const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
      const std::size_t slots = SegmentSpace::slots_per_segment(cw);
      const gaddr_t sbase = space_.segment_base(seg);
      const auto& su = segs[seg];
      for (std::size_t slot = 0; slot < slots; ++slot) {
        const bool bit = (pool_.raw_load(bitmap_idx(seg, slot)) >> (slot % 64)) & 1;
        const bool is_live = !su.used.empty() && su.used[slot];
        if (bit && !is_live) {
          write_slot_bit(0, sbase + slot * cw, cw, false);
          global_free_[static_cast<std::size_t>(cls)].push_back(sbase + slot * cw);
          ++leaked;
        }
      }
    }
  }
  if (leaked != 0) pool_.fence(0);
  leaked_reclaimed_total_ += leaked;
  return leaked;
}

void TxAllocator::rebuild(std::span<const LiveBlock> live) {
  reset();
  if (live.empty()) return;

  // Pass 1: derive each touched segment's size class from its live blocks
  // and mark used slots.
  struct SegInfo {
    int cls = -1;
    std::vector<bool> used;
  };
  std::vector<SegInfo> segs(space_.segment_count);
  std::size_t max_seg = 0;
  for (const LiveBlock& b : live) {
    if (b.addr < space_.heap_begin) throw TmLogicError("live block below heap");
    const std::size_t seg = space_.segment_of(b.addr);
    if (seg >= space_.segment_count) throw TmLogicError("live block beyond heap");
    const int cls = size_class_for(b.nwords);
    if (cls < 0) {
      // Large block: occupies whole segments, never recycled.
      const std::size_t nsegs = (b.nwords + kSegmentWords - 1) / kSegmentWords;
      for (std::size_t s = seg; s < seg + nsegs; ++s) {
        if (segs[s].cls >= 0)
          throw TmLogicError("small live block inside a large-object segment");
        segs[s].cls = -2;  // large-object segment: excluded from free lists
        max_seg = std::max(max_seg, s);
      }
      continue;
    }
    SegInfo& si = segs[seg];
    if (si.cls == -2) throw TmLogicError("small live block inside a large-object segment");
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
    if (si.cls == -1) {
      si.cls = cls;
      si.used.assign(SegmentSpace::slots_per_segment(cw), false);
    } else if (si.cls != cls) {
      throw TmLogicError("live blocks of mixed size classes within one segment");
    }
    const std::size_t slot = space_.slot_of(b.addr, cw);
    if ((b.addr - space_.segment_base(seg)) % cw != 0)
      throw TmLogicError("live block not aligned to its size class slot");
    si.used[slot] = true;
    max_seg = std::max(max_seg, seg);
  }

  // Pass 2: free slots of touched segments go to the global reclaimed
  // lists (threads refill from there in batches); untouched segments below
  // the high-water mark are recycled whole.
  seg_bump_ = max_seg + 1;
  for (std::size_t seg = 0; seg < seg_bump_; ++seg) {
    SegInfo& si = segs[seg];
    if (si.cls == -2) continue;  // large object: fully in use
    if (si.cls == -1) {
      free_segments_.push_back(seg);
      continue;
    }
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(si.cls)];
    const gaddr_t base = space_.segment_base(seg);
    for (std::size_t slot = 0; slot < si.used.size(); ++slot) {
      if (si.used[slot]) continue;
      global_free_[static_cast<std::size_t>(si.cls)].push_back(base + slot * cw);
    }
  }
}

AllocStats TxAllocator::stats() const {
  AllocStats agg;
  for (const auto& h : heaps_) {
    agg.allocs += h.stats.allocs;
    agg.frees += h.stats.frees;
    agg.segments_acquired += h.stats.segments_acquired;
  }
  agg.retired = ebr_.retired_total();
  agg.reclaimed = ebr_.reclaimed_total();
  agg.limbo = ebr_.limbo_depth();
  agg.orphans_swept = orphans_swept_total_;
  agg.leaked_reclaimed = leaked_reclaimed_total_;
  return agg;
}

}  // namespace nvhalt
