#include "alloc/tx_allocator.hpp"

#include <algorithm>

#include "htm/htm_tls.hpp"
#include "htm/htm_types.hpp"

namespace nvhalt {

TxAllocator::TxAllocator(PmemPool& pool, gaddr_t heap_begin)
    : pool_(pool), space_(heap_begin, pool.capacity_words()) {
  if (space_.segment_count == 0)
    throw TmLogicError("pool too small for at least one allocator segment");
  heaps_.resize(kMaxThreads);
  for (auto& h : heaps_) h.classes.resize(kSizeClasses.size());
  global_free_.resize(kSizeClasses.size());
}

gaddr_t TxAllocator::fast_alloc(int tid, int cls) {
  ClassHeap& ch = heaps_[tid].classes[static_cast<std::size_t>(cls)];
  if (!ch.free_list.empty()) {
    const gaddr_t a = ch.free_list.back();
    ch.free_list.pop_back();
    return a;
  }
  if (ch.bump_base != kNullAddr) {
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
    if (ch.bump_slot < SegmentSpace::slots_per_segment(cw)) {
      return ch.bump_base + (ch.bump_slot++) * cw;
    }
    ch.bump_base = kNullAddr;
  }
  return kNullAddr;
}

void TxAllocator::refill_from_global(int tid, int cls) {
  std::lock_guard<std::mutex> g(global_mu_);
  auto& gf = global_free_[static_cast<std::size_t>(cls)];
  if (gf.empty()) return;
  auto& fl = heaps_[tid].classes[static_cast<std::size_t>(cls)].free_list;
  const std::size_t take = std::min<std::size_t>(gf.size(), 64);
  fl.insert(fl.end(), gf.end() - static_cast<std::ptrdiff_t>(take), gf.end());
  gf.resize(gf.size() - take);
}

void TxAllocator::acquire_segment(int tid, int cls) {
  std::size_t seg;
  {
    std::lock_guard<std::mutex> g(global_mu_);
    if (!free_segments_.empty()) {
      seg = free_segments_.back();
      free_segments_.pop_back();
    } else {
      if (seg_bump_ >= space_.segment_count) throw TmLogicError("persistent heap exhausted");
      seg = seg_bump_++;
    }
  }
  ClassHeap& ch = heaps_[tid].classes[static_cast<std::size_t>(cls)];
  ch.bump_base = space_.segment_base(seg);
  ch.bump_slot = 0;
  heaps_[tid].stats.segments_acquired++;
}

gaddr_t TxAllocator::alloc_impl(int tid, std::size_t nwords, bool in_txn) {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("allocation exceeds largest size class");
  gaddr_t a = fast_alloc(tid, cls);
  if (a == kNullAddr) {
    // Global work (mutex, possibly fresh segment) cannot run inside a
    // hardware transaction; on real RTM it would abort anyway.
    if (htm::in_hw_txn()) throw htm::HtmAbort{htm::AbortCause::kExplicit, kAllocAbortCode};
    refill_from_global(tid, cls);
    a = fast_alloc(tid, cls);
    if (a == kNullAddr) {
      acquire_segment(tid, cls);
      a = fast_alloc(tid, cls);
    }
  }
  heaps_[tid].stats.allocs++;
  if (in_txn)
    heaps_[tid].pending_allocs.push_back({a, static_cast<std::uint32_t>(nwords)});
  return a;
}

gaddr_t TxAllocator::tx_alloc(int tid, std::size_t nwords) {
  return alloc_impl(tid, nwords, /*in_txn=*/true);
}

gaddr_t TxAllocator::raw_alloc(int tid, std::size_t nwords) {
  return alloc_impl(tid, nwords, /*in_txn=*/false);
}

gaddr_t TxAllocator::raw_alloc_large(std::size_t nwords) {
  if (htm::in_hw_txn()) throw htm::HtmAbort{htm::AbortCause::kExplicit, kAllocAbortCode};
  const std::size_t nsegs = (nwords + kSegmentWords - 1) / kSegmentWords;
  std::lock_guard<std::mutex> g(global_mu_);
  if (seg_bump_ + nsegs > space_.segment_count) throw TmLogicError("persistent heap exhausted");
  const std::size_t first = seg_bump_;
  seg_bump_ += nsegs;
  return space_.segment_base(first);
}

void TxAllocator::push_free(int tid, gaddr_t a, std::size_t nwords) {
  const int cls = size_class_for(nwords);
  if (cls < 0) throw TmLogicError("free exceeds largest size class");
  heaps_[tid].classes[static_cast<std::size_t>(cls)].free_list.push_back(a);
  heaps_[tid].stats.frees++;
}

void TxAllocator::tx_free(int tid, gaddr_t a, std::size_t nwords) {
  heaps_[tid].pending_frees.push_back({a, static_cast<std::uint32_t>(nwords)});
}

void TxAllocator::raw_free(int tid, gaddr_t a, std::size_t nwords) { push_free(tid, a, nwords); }

void TxAllocator::on_commit(int tid) {
  ThreadHeap& h = heaps_[tid];
  // Frees take effect only now that the transaction is durably committed.
  for (const LiveBlock& b : h.pending_frees) push_free(tid, b.addr, b.nwords);
  h.pending_frees.clear();
  h.pending_allocs.clear();
}

void TxAllocator::on_abort(int tid) {
  ThreadHeap& h = heaps_[tid];
  // The transaction never happened: its allocations return to the heap and
  // its frees are forgotten.
  for (const LiveBlock& b : h.pending_allocs) push_free(tid, b.addr, b.nwords);
  h.pending_allocs.clear();
  h.pending_frees.clear();
}

void TxAllocator::reset() {
  std::lock_guard<std::mutex> g(global_mu_);
  seg_bump_ = 0;
  free_segments_.clear();
  for (auto& gf : global_free_) gf.clear();
  for (auto& h : heaps_) {
    for (auto& ch : h.classes) {
      ch.free_list.clear();
      ch.bump_base = kNullAddr;
      ch.bump_slot = 0;
    }
    h.pending_allocs.clear();
    h.pending_frees.clear();
  }
}

void TxAllocator::rebuild(std::span<const LiveBlock> live) {
  reset();
  if (live.empty()) return;

  // Pass 1: derive each touched segment's size class from its live blocks
  // and mark used slots.
  struct SegInfo {
    int cls = -1;
    std::vector<bool> used;
  };
  std::vector<SegInfo> segs(space_.segment_count);
  std::size_t max_seg = 0;
  for (const LiveBlock& b : live) {
    if (b.addr < space_.heap_begin) throw TmLogicError("live block below heap");
    const std::size_t seg = space_.segment_of(b.addr);
    if (seg >= space_.segment_count) throw TmLogicError("live block beyond heap");
    const int cls = size_class_for(b.nwords);
    if (cls < 0) {
      // Large block: occupies whole segments, never recycled.
      const std::size_t nsegs = (b.nwords + kSegmentWords - 1) / kSegmentWords;
      for (std::size_t s = seg; s < seg + nsegs; ++s) {
        if (segs[s].cls >= 0)
          throw TmLogicError("small live block inside a large-object segment");
        segs[s].cls = -2;  // large-object segment: excluded from free lists
        max_seg = std::max(max_seg, s);
      }
      continue;
    }
    SegInfo& si = segs[seg];
    if (si.cls == -2) throw TmLogicError("small live block inside a large-object segment");
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(cls)];
    if (si.cls == -1) {
      si.cls = cls;
      si.used.assign(SegmentSpace::slots_per_segment(cw), false);
    } else if (si.cls != cls) {
      throw TmLogicError("live blocks of mixed size classes within one segment");
    }
    const std::size_t slot = space_.slot_of(b.addr, cw);
    if ((b.addr - space_.segment_base(seg)) % cw != 0)
      throw TmLogicError("live block not aligned to its size class slot");
    si.used[slot] = true;
    max_seg = std::max(max_seg, seg);
  }

  // Pass 2: free slots of touched segments go to the global reclaimed
  // lists (threads refill from there in batches); untouched segments below
  // the high-water mark are recycled whole.
  seg_bump_ = max_seg + 1;
  for (std::size_t seg = 0; seg < seg_bump_; ++seg) {
    SegInfo& si = segs[seg];
    if (si.cls == -2) continue;  // large object: fully in use
    if (si.cls == -1) {
      free_segments_.push_back(seg);
      continue;
    }
    const std::uint32_t cw = kSizeClasses[static_cast<std::size_t>(si.cls)];
    const gaddr_t base = space_.segment_base(seg);
    for (std::size_t slot = 0; slot < si.used.size(); ++slot) {
      if (si.used[slot]) continue;
      global_free_[static_cast<std::size_t>(si.cls)].push_back(base + slot * cw);
    }
  }
}

AllocStats TxAllocator::stats() const {
  AllocStats agg;
  for (const auto& h : heaps_) {
    agg.allocs += h.stats.allocs;
    agg.frees += h.stats.frees;
    agg.segments_acquired += h.stats.segments_acquired;
  }
  return agg;
}

}  // namespace nvhalt
