// Epoch-based reclamation for the transactional allocator.
//
// The PR 6 read-only fast path reads lock-free: an in-flight RO snapshot
// can hold a pointer to a node that a concurrent writer `tx.free`s at
// commit. Handing that slot straight back to an allocator free list would
// let the next insert recycle the node under the reader (the classic
// use-after-free of Brown's HTM tree template, solved there — as here —
// with epochs). EpochService defers *volatile* reuse of a freed slot until
// every thread registered in the runtime's ThreadRegistry has passed the
// retirement epoch.
//
// Protocol (QSBR-flavoured epochs: persistent reservations, quiescent
// refresh at attempt boundaries):
//   * a thread's per-slot reservation persists across transactions; every
//     transaction attempt starts with quiesce(), which re-announces the
//     reservation only when the global epoch has moved since the last
//     announcement (the common case is two loads and a branch — the
//     fenced announce-then-verify store happens at most once per global
//     epoch bump per thread, not once per transaction);
//   * committed frees retire into the owner thread's limbo list stamped
//     with the current global epoch;
//   * a limbo entry with retire epoch `re` is physically reusable once
//     `re < min(active reservations)`; reservations of registry slots
//     that have been released no longer count (a deregistered thread is
//     outside any transaction, so its stale announcement is dead weight);
//   * the global epoch advances (CAS, at retire time) whenever every
//     active reservation has caught up with it.
//
// The fence-free fast path is sound because the skipped store is exactly
// the value already announced: the reservation was published with a
// seq_cst store no later than the previous attempt, so any retirement
// this thread could endanger carries an epoch >= the reservation, and a
// retirement with a smaller epoch was unlinked before this attempt's
// snapshot began and is unreachable from it. The liveness contract is
// QSBR's: a registered thread that stops transacting without
// deregistering stalls epoch advance (and therefore reclamation) until
// its next attempt — ThreadHandle's RAII deregistration bounds this to
// the handle's scope.
//
// Persistence is deliberately decoupled from synchronization (the
// "Persistence and Synchronization: Friends or Foes?" argument): the
// durable allocation bit for a freed slot is cleared at commit time, not
// at reclaim time. A crash destroys every reader along with its pins, so
// recovery may rebuild free lists directly from the durable bitmaps;
// limbo lists are volatile and simply dropped.
//
// Thread-safety: quiesce/unpin/retire/reclaim on slot `tid` are owner-thread
// operations; reservations and the global epoch are shared atomics. The
// aggregate accessors (limbo_depth etc.) read relaxed per-slot counters
// and may be called concurrently as gauges; the histogram accessor is
// quiescent-only like the TM stats accessors.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>

#include "telemetry/histogram.hpp"
#include "util/common.hpp"

namespace nvhalt::runtime {
class ThreadRegistry;
}

namespace nvhalt::alloc {

class EpochService {
 public:
  /// Reservation value of an unpinned slot.
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  /// Limbo-entry consumer: (addr, nwords) of a now-safe block.
  using ReclaimFn = std::function<void(gaddr_t, std::uint32_t)>;

  /// Enables epoch participation. The registry bounds reservation scans
  /// (high_water) — without one the service stays detached and retire()
  /// must not be called (standalone allocators reuse frees immediately).
  void attach_registry(const runtime::ThreadRegistry* reg) { registry_ = reg; }
  bool attached() const { return registry_ != nullptr; }

  std::uint64_t global_epoch() const { return global_.load(std::memory_order_seq_cst); }

  /// Quiescent-state refresh for slot `tid` at a transaction-attempt
  /// boundary. When the reservation already announces the current global
  /// epoch this is two loads and a branch (kept inline: it runs on every
  /// transaction, including ~40ns RO fast-path commits); otherwise it
  /// re-announces with the fenced announce-then-verify loop. The
  /// reservation persists after the attempt — there is no per-attempt
  /// unpin. The relaxed read of the own slot is exact (owner-written).
  void quiesce(int tid) {
    const std::uint64_t e = global_.load(std::memory_order_seq_cst);
    if (slots_[static_cast<std::size_t>(tid)].value.epoch.load(std::memory_order_relaxed) == e)
      return;
    quiesce_slow(tid, e);
  }

  /// True when slot `tid` has no limbo entries — the commit-hook fast
  /// path (inline for the same reason as quiesce).
  bool limbo_empty(int tid) const {
    return limbo_[static_cast<std::size_t>(tid)].value.entries.empty();
  }
  /// Clears slot `tid`'s reservation. Only needed when a slot should stop
  /// constraining reclamation without its registry slot being released
  /// (scans already ignore released slots).
  void unpin(int tid);
  bool pinned(int tid) const {
    return slots_[static_cast<std::size_t>(tid)].value.epoch.load(std::memory_order_acquire) !=
           kIdle;
  }

  /// Moves a committed free into `tid`'s limbo list stamped with the
  /// current epoch, then opportunistically tries to advance the epoch.
  void retire(int tid, gaddr_t addr, std::uint32_t nwords);

  /// Hands every safe entry at the front of `tid`'s limbo list to `fn`
  /// (entries are epoch-monotone, so safety is a prefix property).
  /// Returns the number of blocks reclaimed.
  std::size_t reclaim(int tid, const ReclaimFn& fn);

  /// Drops all limbo entries without reclaiming (recovery: the crash
  /// destroyed every reader, and the durable bitmaps already record the
  /// frees — the rebuilt free lists own those slots now).
  void reset();

  // ---- Telemetry (relaxed gauges; histogram is quiescent-only) ---------
  std::uint64_t retired_total() const;
  std::uint64_t reclaimed_total() const;
  std::uint64_t limbo_depth() const;
  telemetry::PowHistogram reclaim_latency_ns() const;

 private:
  struct Reservation {
    std::atomic<std::uint64_t> epoch{kIdle};
  };

  struct LimboEntry {
    gaddr_t addr;
    std::uint32_t nwords;
    std::uint64_t epoch;
    std::uint64_t retire_ns;
  };

  struct LimboList {
    std::deque<LimboEntry> entries;  // owner-thread only
    std::atomic<std::uint64_t> retired{0};
    std::atomic<std::uint64_t> reclaimed{0};
    telemetry::PowHistogram latency_ns;  // owner-thread write, quiescent read
  };

  /// Announce-then-verify re-announcement: publish candidate epoch `e`,
  /// re-read the global, chase until stable.
  void quiesce_slow(int tid, std::uint64_t e);

  /// One past the highest slot that may hold a reservation.
  int scan_bound() const;

  /// Smallest active reservation, or kIdle when nothing is pinned.
  std::uint64_t min_active() const;

  /// Advances the global epoch iff every active reservation equals it.
  void try_advance();

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
  }

  const runtime::ThreadRegistry* registry_ = nullptr;
  std::atomic<std::uint64_t> global_{1};
  CacheLinePadded<Reservation> slots_[kMaxThreads];
  CacheLinePadded<LimboList> limbo_[kMaxThreads];
};

/// Quiescent-state refresh at the top of one transaction attempt. No-op
/// when the service is detached (standalone allocators without a runtime
/// registry). The reservation persists past the attempt; see the QSBR
/// liveness contract in the header comment.
inline void quiesce_attempt(EpochService& es, int tid) {
  if (es.attached()) es.quiesce(tid);
}

}  // namespace nvhalt::alloc
