#include "alloc/segment.hpp"

// Segment geometry is header-only; this translation unit anchors the
// module in the build.
