// Segment geometry for the transactional allocator.
//
// The allocator (paper Sec. 4, "Memory Allocation in Transactions") is
// mimalloc-flavoured: the heap is carved into fixed-size segments, each
// dedicated to one size class and owned by one thread at a time. Keeping
// per-thread free lists outside the transactional word space means
// allocation does not inflate transaction write sets — the paper's stated
// reason for not running the allocator on top of the TM.
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace nvhalt {

/// Words per segment. Every segment serves exactly one size class.
inline constexpr std::size_t kSegmentWords = std::size_t{1} << 14;

/// Allocation size classes, in words. Chosen to cover the data-structure
/// node sizes used in the evaluation ((a,b)-tree nodes are 34/35 words).
inline constexpr std::array<std::uint32_t, 10> kSizeClasses = {1, 2, 4, 8, 16, 32, 48, 64, 96, 128};

/// Returns the index of the smallest class holding `nwords`, or -1 if the
/// request exceeds the largest class.
inline int size_class_for(std::size_t nwords) {
  for (std::size_t i = 0; i < kSizeClasses.size(); ++i) {
    if (kSizeClasses[i] >= nwords) return static_cast<int>(i);
  }
  return -1;
}

/// Geometry of the segmented heap within [heap_begin, heap_end) words.
struct SegmentSpace {
  gaddr_t heap_begin = 0;
  std::size_t segment_count = 0;

  SegmentSpace() = default;
  SegmentSpace(gaddr_t begin, gaddr_t end)
      : heap_begin(begin), segment_count((end - begin) / kSegmentWords) {}

  gaddr_t segment_base(std::size_t seg) const { return heap_begin + seg * kSegmentWords; }

  /// Segment containing address `a`; caller guarantees a >= heap_begin.
  std::size_t segment_of(gaddr_t a) const { return (a - heap_begin) / kSegmentWords; }

  std::size_t slot_of(gaddr_t a, std::uint32_t class_words) const {
    return (a - segment_base(segment_of(a))) / class_words;
  }

  static std::size_t slots_per_segment(std::uint32_t class_words) {
    return kSegmentWords / class_words;
  }
};

}  // namespace nvhalt
