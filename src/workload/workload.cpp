#include "workload/workload.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "util/affinity.hpp"
#include "util/barrier.hpp"

namespace nvhalt::workload {

void prefill_half(KeyedOps& ops, std::size_t key_range, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::size_t inserted = 0;
  const std::size_t target = key_range / 2;
  while (inserted < target) {
    const word_t k = 1 + rng.next_bounded(key_range);
    if (ops.insert(0, k, k)) ++inserted;
  }
}

WorkloadResult run_mixed(KeyedOps& ops, const WorkloadSpec& spec) {
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(spec.threads), 0);
  SpinBarrier barrier(spec.threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(spec.threads));
  for (int t = 0; t < spec.threads; ++t) {
    workers.emplace_back([&, t] {
      pin_thread_round_robin(t);
      KeyGenerator gen(spec.dist, spec.key_range,
                       spec.seed * 1000003 + static_cast<std::uint64_t>(t),
                       spec.zipf_theta);
      barrier.arrive_and_wait();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const word_t k = gen.next();
        const std::uint64_t dice = gen.dice();
        if (dice < static_cast<std::uint64_t>(spec.read_pct)) {
          ops.contains(t, k);
        } else if ((dice & 1) == 0) {
          ops.insert(t, k, k);
        } else {
          ops.remove(t, k);
        }
        ++n;
      }
      counts[static_cast<std::size_t>(t)] = n;
    });
  }
  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(spec.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  WorkloadResult r;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  for (const auto n : counts) r.total_ops += n;
  r.ops_per_sec = static_cast<double>(r.total_ops) / r.seconds;
  return r;
}

ChurnResult run_churn(KeyedOps& ops, const TxAllocator& alloc, const ChurnSpec& spec) {
  const AllocStats before = alloc.stats();
  WorkloadSpec ws;
  ws.read_pct = 0;
  ws.threads = spec.threads;
  ws.key_range = spec.key_range;
  ws.duration_ms = spec.duration_ms;
  ws.dist = KeyDist::kZipf;
  ws.seed = spec.seed;
  ChurnResult r;
  r.mixed = run_mixed(ops, ws);
  const AllocStats after = alloc.stats();
  r.alloc.allocs = after.allocs - before.allocs;
  r.alloc.frees = after.frees - before.frees;
  r.alloc.segments_acquired = after.segments_acquired - before.segments_acquired;
  r.alloc.retired = after.retired - before.retired;
  r.alloc.reclaimed = after.reclaimed - before.reclaimed;
  r.alloc.limbo = after.limbo;
  r.alloc.orphans_swept = after.orphans_swept;
  r.alloc.leaked_reclaimed = after.leaked_reclaimed;
  return r;
}

}  // namespace nvhalt::workload
