// Reusable workload framework implementing the paper's evaluation
// methodology (Sec. 5): prefill a keyed structure to 50% of its key range,
// then run a timed mixed read/insert/remove workload with per-thread key
// generators, and report throughput plus TM/persistence statistics.
//
// The benchmark binaries are thin wrappers over this module; it is equally
// usable from applications that want to measure their own configurations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "api/tm.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace nvhalt::workload {

enum class KeyDist { kUniform, kZipf };

/// Per-thread key stream. `zipf_theta` shapes the skew when dist is kZipf
/// (larger = hotter head; 0.99 is the YCSB default, ~1.2 concentrates most
/// draws on a handful of keys). Ignored for uniform draws.
class KeyGenerator {
 public:
  KeyGenerator(KeyDist dist, std::size_t key_range, std::uint64_t seed,
               double zipf_theta = 0.99)
      : dist_(dist), range_(key_range), rng_(seed) {
    if (dist_ == KeyDist::kZipf)
      zipf_ = std::make_unique<ZipfGenerator>(range_, zipf_theta, seed);
  }

  /// Keys are in [1, key_range] (0 is reserved by the structures).
  word_t next() {
    return 1 + (dist_ == KeyDist::kUniform ? rng_.next_bounded(range_) : zipf_->next());
  }

  /// Operation dice in [0, 100).
  std::uint64_t dice() { return rng_.next_bounded(100); }

 private:
  KeyDist dist_;
  std::size_t range_;
  Xoshiro256 rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

/// The structure under test, type-erased: any keyed container works.
struct KeyedOps {
  /// Each returns true on success; semantics as in the structures' API.
  virtual bool insert(int tid, word_t key, word_t val) = 0;
  virtual bool remove(int tid, word_t key) = 0;
  virtual bool contains(int tid, word_t key) = 0;
  virtual ~KeyedOps() = default;
};

/// Adapts any structure with insert/remove/contains(tid, ...) methods.
template <typename S>
class KeyedOpsAdapter final : public KeyedOps {
 public:
  explicit KeyedOpsAdapter(S& s) : s_(s) {}
  bool insert(int tid, word_t key, word_t val) override { return s_.insert(tid, key, val); }
  bool remove(int tid, word_t key) override { return s_.remove(tid, key); }
  bool contains(int tid, word_t key) override { return s_.contains(tid, key); }

 private:
  S& s_;
};

struct WorkloadSpec {
  /// Percentage of lookups; the remainder splits evenly insert/remove.
  int read_pct = 90;
  int threads = 1;
  std::size_t key_range = 1 << 14;
  int duration_ms = 150;
  KeyDist dist = KeyDist::kUniform;
  /// Skew exponent for kZipf key draws (unused for uniform).
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
};

struct WorkloadResult {
  std::uint64_t total_ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
};

/// Prefills `ops` with key_range/2 distinct uniform keys (value == key),
/// matching the paper's 50%-capacity prefill.
void prefill_half(KeyedOps& ops, std::size_t key_range, std::uint64_t seed);

/// Runs the timed mixed workload. Threads are given dense ids [0, threads).
WorkloadResult run_mixed(KeyedOps& ops, const WorkloadSpec& spec);

/// Delete-heavy churn parameters: the read percentage and key distribution
/// are fixed (0% lookups, inserts/removes 50/50, Zipfian theta 0.99) —
/// that corner is the allocator's worst case, so it gets its own driver.
struct ChurnSpec {
  int threads = 2;
  std::size_t key_range = 1 << 14;
  int duration_ms = 150;
  std::uint64_t seed = 1;
};

struct ChurnResult {
  WorkloadResult mixed;
  /// Allocator ledger for the measured phase: counters are deltas over the
  /// phase; `limbo` is the depth left behind when the phase ended.
  AllocStats alloc;
};

/// Runs the delete-heavy churn workload: every successful remove retires a
/// node through the epoch limbo and every insert asks for one back, with
/// Zipfian skew concentrating both on the same hot keys. Reports the
/// allocator's retire/reclaim ledger next to the throughput, so a
/// reclamation stall shows up as ballooning limbo rather than only as a
/// mysteriously slow cell.
ChurnResult run_churn(KeyedOps& ops, const TxAllocator& alloc, const ChurnSpec& spec);

}  // namespace nvhalt::workload
