// SPHT baseline (paper Sec. 2.1.4): Scalable Persistent Hardware
// Transactions (Castro et al., FAST'21), the state-of-the-art persistent
// HyTM the paper compares against.
//
// Design points reproduced here:
//  * The hardware path performs *uninstrumented* data reads and writes —
//    no per-address metadata — but every hardware transaction subscribes
//    to a single global fallback lock and aborts if it is (or becomes)
//    held.
//  * Writes are logged inside the transaction into a thread-private redo
//    buffer; after xend the buffer is appended to the thread's persistent
//    log (flush + fence).
//  * Commit timestamps come from a synchronized clock (rdtscp on real
//    hardware; a shared non-conflicting counter here). After persisting
//    its log, a thread blocks until every transaction with a smaller
//    timestamp is persisted, then advances the global persistent marker
//    and waits for the marker to be durably >= its own timestamp. This is
//    the ordering negotiation that lets transactions block each other even
//    when their data is disjoint — the overhead NV-HALT avoids.
//  * The software fallback immediately takes the global lock, disabling
//    all concurrency.
//  * Logs are bounded and must be replayed into the NVM heap image; the
//    benchmark replays after the measured phase, as the paper does
//    (16 replay threads by default, following the paper's configuration).
//  * Memory allocation is a per-thread bump pointer with no freeing — the
//    paper calls this out as artificially cheap but load-bearing for
//    SPHT's log replay, so it is reproduced faithfully.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "api/tm.hpp"
#include "baselines/spht/spht_log.hpp"
#include "htm/sim_htm.hpp"
#include "locks/contention.hpp"
#include "runtime/tm_runtime.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/common.hpp"

namespace nvhalt {

struct SphtConfig {
  /// Hardware attempts before falling back to the global lock.
  int htm_attempts = 10;
  /// Persistent log words per thread.
  std::size_t log_words_per_thread = std::size_t{1} << 16;
  /// Thread ids that may run transactions (sizes the registry, the log
  /// array and every per-thread structure). Clamped to [1, kMaxThreads].
  int max_threads = kMaxThreads;
  /// Threads used by replay(); the paper uses 16.
  int replay_threads = 16;
  /// Ablation class 3 (NO-PERSISTENT-HTXN): disable logging, timestamp
  /// ordering and marker persistence — volatile-only transactions.
  bool persist_txns = true;
  /// Bump-allocator chunk size in words (rounded up to whole segments of
  /// the underlying pool carver).
  std::size_t alloc_chunk_words = std::size_t{1} << 14;

  /// Adaptive HTM attempt budget (runtime::AdaptivePolicy); see
  /// NvHaltConfig::adaptive_htm_budget.
  bool adaptive_htm_budget = false;

  /// Checkpointing (DESIGN.md Sec. 13): checkpoint(tid) replays and
  /// truncates the persistent logs (SPHT's native compaction — after it,
  /// recovery replays only the delta logged since) and durably bumps a
  /// generation counter. Off by default; the generation word is allocated
  /// only when enabled so the raw layout stays byte-identical otherwise.
  bool checkpoint = false;

  /// Persistent flight recorder (telemetry/flight_recorder.hpp). Same
  /// conditional-reservation discipline as `checkpoint`: the recorder raw
  /// region exists only when enabled, records are written only at
  /// NVHALT_TELEMETRY >= 1.
  bool flight_recorder = false;
};

class SphtTm final : public runtime::TmRuntime {
 public:
  SphtTm(const SphtConfig& cfg, PmemPool& pool, htm::SimHtm& htm, TxAllocator& alloc_iface);
  ~SphtTm() override;

  void recover_data() override;
  void rebuild_allocator(std::span<const LiveBlock> live) override;

  /// Log replay + truncation as a checkpoint (cfg.checkpoint): bounded
  /// recovery follows directly from SPHT's redo-log design — after the
  /// truncation, recovery replays only the delta logged since. Returns
  /// false when checkpointing is off or transactions are not persisted.
  bool checkpoint(int tid) override;
  /// Durable checkpoint generation (0 when cfg.checkpoint is off).
  std::uint64_t checkpoint_generation() const {
    return ckpt_gen_raw_idx_ == 0 ? 0 : pool_.raw_load(ckpt_gen_raw_idx_);
  }

  PmemPool& pool() override { return pool_; }
  /// Note: SPHT does not use this allocator (see header comment); the
  /// reference is kept for interface compatibility.
  TxAllocator& allocator() override { return alloc_iface_; }
  const char* name() const override { return "SPHT"; }
  TmStats stats() const override;
  void reset_stats() override;
  telemetry::TmTelemetry telemetry() const override;
  /// SPHT has exactly one lock — the global fallback lock — so its
  /// contention observatory is a single stripe (stripe 0).
  const ContentionTable* contention() const override { return &contention_; }
  const telemetry::PostmortemReport* last_postmortem() const override {
    return last_postmortem_.get();
  }

  /// Flight recorder, or null when cfg.flight_recorder is off.
  telemetry::FlightRecorder* flight_recorder() { return frec_.get(); }

  /// Checkpoints every persisted log record into the NVM heap image,
  /// durably advances the marker over the checkpointed timestamps, and
  /// truncates the logs. Callable at full quiescence (benchmarks, as in
  /// the paper's setup) or under the global fallback lock with the
  /// log-persist phases drained (the full-log path).
  void replay(int nthreads);

  std::uint64_t persistent_marker() const {
    return gpm_volatile_.value.load(std::memory_order_acquire);
  }
  std::uint64_t durable_marker() const {
    return gpm_durable_.value.load(std::memory_order_acquire);
  }

  /// Total wall time the global fallback lock was held, in nanoseconds.
  /// While it is held, *all* concurrency is disabled (hardware transactions
  /// subscribe to the lock and abort) — the serialization the paper's
  /// Sec. 5.3 measures ("upwards of half of the entire measurement
  /// period in the fallback path").
  std::uint64_t global_lock_held_ns() const {
    return gl_held_ns_.value.load(std::memory_order_relaxed);
  }
  void reset_global_lock_held_ns() { gl_held_ns_.value.store(0, std::memory_order_relaxed); }

 protected:
  /// Unified retry loop with SPHT's primitives: each hardware attempt is
  /// preceded by a wait for the global fallback lock to clear, failed
  /// attempts back off (SPHT's historical behaviour), and the software
  /// fallback runs under the global lock.
  bool run_registered(int tid, TxMode mode, TxBody body) override;

 private:
  friend class SphtHwTx;
  friend class SphtSwTx;
  struct ThreadCtx;

  using AttemptResult = runtime::AttemptStatus;
  AttemptResult attempt_hw(int tid, TxBody body);
  AttemptResult attempt_sw(int tid, TxBody body);

  /// Post-commit persistence: log append, timestamp ordering wait, marker
  /// advance (Sec. 2.1.4). Returns once the transaction is durable.
  void persist_committed(int tid, std::uint64_t ts_commit);

  /// Ensures the durable marker catches up to the volatile one; returns
  /// when durable >= ts.
  void persist_marker_until(int tid, std::uint64_t ts);

  /// Handles a full log: quiesce via the global lock, replay, truncate.
  void replay_full_logs(int tid);

  /// Shared replay body. `durable_prefix_only` selects recovery semantics
  /// (apply only records at or below the durable marker) over checkpoint
  /// semantics (apply everything, then durably advance the marker before
  /// truncating). `caller_tid` is the invoking thread's pool tid, used for
  /// all serial flush/fence work.
  void replay_impl(int caller_tid, int nthreads, bool durable_prefix_only);

  gaddr_t bump_alloc(int tid, std::size_t nwords);

  /// Refills the calling thread's bump chunk outside any hardware
  /// transaction (chunk acquisition takes a global mutex, which would
  /// abort — and on real hardware does abort — a hardware transaction).
  void refill_bump_chunk(int tid);

  SphtConfig cfg_;
  PmemPool& pool_;
  htm::SimHtm& htm_;
  TxAllocator& alloc_iface_;
  SphtLog log_;

  CacheLinePadded<std::atomic<std::uint64_t>> global_lock_;  // 0 free, tid+1 held
  CacheLinePadded<std::atomic<std::uint64_t>> ts_source_;    // rdtscp stand-in
  CacheLinePadded<std::atomic<std::uint64_t>> gpm_volatile_;
  CacheLinePadded<std::atomic<std::uint64_t>> gpm_durable_;
  CacheLinePadded<std::atomic<std::uint64_t>> gl_held_ns_;
  std::size_t gpm_raw_idx_;
  std::size_t ckpt_gen_raw_idx_ = 0;  // allocated only when cfg_.checkpoint
  std::mutex gpm_mu_;
  ContentionTable contention_{1};  // one stripe: the global fallback lock
  std::unique_ptr<telemetry::FlightRecorder> frec_;  // only when cfg_.flight_recorder
  std::unique_ptr<telemetry::PostmortemReport> last_postmortem_;

  /// Published (ts << 1 | persisted) per thread; see persist_committed.
  std::unique_ptr<CacheLinePadded<std::atomic<std::uint64_t>>[]> ts_pub_;

  /// Trivial bump allocator (chunked, no free). Chunks are whole segments
  /// carved from the shared pool carver so SPHT's heap never collides with
  /// blocks handed out by the TxAllocator (e.g. structure root arrays).
  struct alignas(kCacheLineBytes) BumpState {
    gaddr_t cur = kNullAddr;
    std::size_t left = 0;
  };
  std::unique_ptr<BumpState[]> bump_;

  runtime::PerThread<ThreadCtx> ctx_;
};

}  // namespace nvhalt
